package hta

// One benchmark per table and figure of the paper's evaluation, plus
// the repository's ablations: `go test -bench=. -benchmem` regenerates
// every experiment. Each benchmark reports the headline simulated
// quantities as custom metrics (sim-seconds, core-seconds) so the
// bench output doubles as the results table.

import (
	"strings"
	"testing"
	"time"

	"hta/internal/experiments"
)

// metricName sanitizes run names into benchmark metric units (no
// whitespace allowed).
func metricName(parts ...string) string {
	repl := strings.NewReplacer(" ", "", "(", "", ")", "", "%", "pct")
	return repl.Replace(strings.Join(parts, "-"))
}

// BenchmarkFig2HPATargetSweep regenerates Fig. 2: the 200-job BLAST
// workload under HPA at target CPU 10/50/99 % plus the ideal fleet.
func BenchmarkFig2HPATargetSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig2(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				b.ReportMetric(row.Runtime.Seconds(), metricName(row.Config, "runtime-sim-s"))
			}
			b.ReportMetric(rep.Ideal.Runtime.Seconds(), "Ideal-runtime-sim-s")
		}
	}
}

// BenchmarkFig4WorkerSizing regenerates Fig. 4: fine- vs
// coarse-grained worker pods with and without known requirements.
func BenchmarkFig4WorkerSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig4(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for j, row := range rep.Rows {
				tag := []string{"a", "b", "c"}[j]
				b.ReportMetric(row.Runtime.Seconds(), tag+"-runtime-sim-s")
				b.ReportMetric(row.AvgBandwidth, tag+"-bandwidth-MBps")
			}
		}
	}
}

// BenchmarkFig6InitLatency regenerates Fig. 6: ten cold-start probes
// measuring the cluster's resource-initialization latency.
func BenchmarkFig6InitLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig6(10, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rep.MeanSec, "mean-init-s")
			b.ReportMetric(rep.StdSec, "std-init-s")
		}
	}
}

// BenchmarkFig10BlastWorkflow regenerates Fig. 10 (a, b and the
// summary table): the multistage BLAST workflow under HPA-20, HPA-50
// and HTA.
func BenchmarkFig10BlastWorkflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig10(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				b.ReportMetric(row.Runtime.Seconds(), metricName(row.Autoscaler, "runtime-sim-s"))
				b.ReportMetric(row.Waste, metricName(row.Autoscaler, "waste-core-s"))
			}
		}
	}
}

// BenchmarkFig11IOBound regenerates Fig. 11 (b and the summary
// table): 200 I/O-intensive tasks under HPA-20, HPA-50 and HTA.
func BenchmarkFig11IOBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig11(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				b.ReportMetric(row.Runtime.Seconds(), metricName(row.Autoscaler, "runtime-sim-s"))
				b.ReportMetric(row.Shortage, metricName(row.Autoscaler, "shortage-core-s"))
			}
		}
	}
}

// BenchmarkAblationFixedCycle regenerates ablation A1: HTA with the
// live-measured initialization time versus fixed 30 s / 600 s cycles.
func BenchmarkAblationFixedCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AblationFixedCycle(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rep.Full.Waste, "measured-waste-core-s")
			b.ReportMetric(rep.FixedSlow.Waste, "fixed600s-waste-core-s")
		}
	}
}

// BenchmarkAblationNoCategories regenerates ablation A2: HTA with and
// without per-category resource estimation.
func BenchmarkAblationNoCategories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AblationNoCategories(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rep.FullUtil*100, "with-estimation-cpu-pct")
			b.ReportMetric(rep.DisUtil*100, "without-estimation-cpu-pct")
		}
	}
}

// BenchmarkAblationHPAStabilization regenerates ablation A3: the HPA
// scale-down stabilization window sweep.
func BenchmarkAblationHPAStabilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHPAStabilization(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationQueueScaler regenerates ablation A4: a KEDA-style
// queue-proportional scaler against HTA.
func BenchmarkAblationQueueScaler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AblationQueueScaler(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rep.QPA.Waste, "qpa-waste-core-s")
			b.ReportMetric(rep.HTA.Waste, "hta-waste-core-s")
			b.ReportMetric(float64(rep.QPARequeues), "qpa-interrupted-dispatches")
		}
	}
}

// BenchmarkFullStackSmallWorkload measures the façade path end to
// end: build a system, run 50 tasks under HTA, tear down.
func BenchmarkFullStackSmallWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(SystemConfig{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.RunTasks(UniformTasks(50, 60e9))
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != 50 {
			b.Fatalf("completed = %d", res.Completed)
		}
		sys.Cluster().Stop()
	}
}

// BenchmarkAblationDispatchPolicy regenerates ablation A5: the
// dispatch-policy comparison at partial and saturated load.
func BenchmarkAblationDispatchPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AblationDispatchPolicy(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rep.Rows) > 2 {
			b.ReportMetric(rep.Rows[0].DeliveredMB, "firstfit-partial-MB")
			b.ReportMetric(rep.Rows[2].DeliveredMB, "worstfit-partial-MB")
		}
	}
}

// BenchmarkSweepInitLatency regenerates sweep S1: autoscaler behaviour
// as node-provisioning latency varies.
func BenchmarkSweepInitLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SweepInitLatency(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// scaleSweepMeans is the provisioning-latency grid the scale-sweep
// benchmarks fan out over: eight (latency, autoscaler) simulations.
var scaleSweepMeans = []time.Duration{
	30 * time.Second, 60 * time.Second, 140 * time.Second, 400 * time.Second,
}

// BenchmarkScaleSweep measures the parallel experiment harness: the
// init-latency sweep's eight independent simulations fanned out
// across GOMAXPROCS workers.
func BenchmarkScaleSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.SweepInitLatency(int64(i+1), scaleSweepMeans...)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 2*len(scaleSweepMeans) {
			b.Fatalf("rows = %d", len(rep.Rows))
		}
	}
}

// BenchmarkScaleSweepSerial is BenchmarkScaleSweep with the harness
// forced serial — the baseline the fan-out is measured against.
func BenchmarkScaleSweepSerial(b *testing.B) {
	old := experiments.MaxParallel
	experiments.MaxParallel = 1
	defer func() { experiments.MaxParallel = old }()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.SweepInitLatency(int64(i+1), scaleSweepMeans...)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 2*len(scaleSweepMeans) {
			b.Fatalf("rows = %d", len(rep.Rows))
		}
	}
}

// BenchmarkStreamDiurnal regenerates stream S2: a two-hour diurnal
// arrival stream under HPA-20% and HTA.
func BenchmarkStreamDiurnal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Stream(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				b.ReportMetric(row.Waste, metricName(row.Autoscaler, "waste-core-s"))
			}
		}
	}
}
