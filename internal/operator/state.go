package operator

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"hta/internal/monitor"
)

// persistedState is the operator's durable checkpoint: everything the
// feedback loop has *learned* and cannot cheaply re-derive after a
// restart. Pod membership is deliberately absent — it is re-derived
// from the API server on startup (the adoption list in Run), which is
// what makes the resume idempotent instead of replay-based.
type persistedState struct {
	Monitor    monitor.State `json:"monitor"`
	InitTimeNS int64         `json:"init_time_ns"`
	Measured   bool          `json:"measured"`
	Seq        int           `json:"seq"`
	SavedAt    time.Time     `json:"saved_at"`
}

// loadState restores a checkpoint written by a previous incarnation.
// A missing file is a fresh start; an unreadable file is an error (the
// operator should not silently discard learned state it was told to
// keep); an unparseable file is tolerated with a warning, because a
// checkpoint must never be able to brick the control loop.
func (o *Operator) loadState() error {
	if o.cfg.StatePath == "" {
		return nil
	}
	data, err := os.ReadFile(o.cfg.StatePath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("operator: read state: %w", err)
	}
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		o.cfg.Logf("operator: ignoring corrupt state %s: %v", o.cfg.StatePath, err)
		return nil
	}
	o.mon.ImportState(st.Monitor)
	o.mu.Lock()
	o.initTime = time.Duration(st.InitTimeNS)
	o.measured = st.Measured && st.InitTimeNS > 0
	if st.Seq > o.seq {
		o.seq = st.Seq
	}
	o.mu.Unlock()
	o.cfg.Logf("operator: resumed state from %s (%d categories, init %v, seq %d)",
		o.cfg.StatePath, len(st.Monitor.Categories), o.initTime, st.Seq)
	return nil
}

// saveState checkpoints the learned state atomically: write to a temp
// file, then rename over the previous checkpoint, so a crash at any
// instant leaves either the old or the new state — never a torn mix.
func (o *Operator) saveState() {
	if o.cfg.StatePath == "" {
		return
	}
	o.mu.Lock()
	st := persistedState{
		Monitor:    o.mon.ExportState(),
		InitTimeNS: int64(o.initTime),
		Measured:   o.measured,
		Seq:        o.seq,
		SavedAt:    time.Now().UTC(),
	}
	o.mu.Unlock()
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		o.cfg.Logf("operator: encode state: %v", err)
		return
	}
	tmp := o.cfg.StatePath + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		o.cfg.Logf("operator: write state: %v", err)
		return
	}
	if err := os.Rename(tmp, o.cfg.StatePath); err != nil {
		o.cfg.Logf("operator: commit state: %v", err)
	}
}
