// Package operator is the deployable form of HTA: the same
// well-informed feedback loop as internal/core, but actuating a real
// Kubernetes API (through internal/kubeclient) and a real TCP Work
// Queue master (internal/wq/wire) instead of the simulator. It is
// what the paper's "Makeflow Kubernetes Operator" (§V, Fig. 8) runs
// as: an informer watch over worker pods feeding the initialization-
// time tracker, a resource provisioner evaluating Algorithm 1 each
// cycle, and pod create/drain/delete actuation.
//
// The operator is exercised end-to-end in its tests against
// kubeclient/kubetest's fake API server with real TCP workers
// executing real shell commands.
package operator

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hta/internal/core"
	"hta/internal/kubeclient"
	"hta/internal/monitor"
	"hta/internal/resources"
	"hta/internal/wq"
	"hta/internal/wq/wire"
)

// Config wires the operator to its cluster and master.
type Config struct {
	// Client reaches the Kubernetes API (required).
	Client *kubeclient.Client
	// Master is the TCP Work Queue master tasks are submitted to
	// (required).
	Master *wire.Master
	// MasterAddr is advertised to worker pods via the WQ_MASTER
	// environment variable (default: Master.Addr()).
	MasterAddr string
	// WorkerImage is the worker container image (required).
	WorkerImage string
	// WorkerResources is the per-worker pod request and advertised
	// capacity (default 3 cores / 12 GiB).
	WorkerResources resources.Vector
	// Labels select the operator's worker pods (default
	// app=wq-worker, managed-by=hta).
	Labels map[string]string
	// InitialWorkers is the warm-up fleet size (default 3).
	InitialWorkers int
	// MinWorkers is the floor kept when idle (default 0).
	MinWorkers int
	// MaxWorkers is the pool quota (default 20).
	MaxWorkers int
	// Cycle is the planning interval when the system is balanced
	// (default 30 s; tests use much shorter).
	Cycle time.Duration
	// InitTimeFallback seeds the initialization-time estimate before
	// the first measured cold start (default 160 s).
	InitTimeFallback time.Duration
	// StatePath, when set, persists the operator's learned state —
	// per-category resource estimates, the measured initialization
	// time, and the pod-name sequence — as JSON at this path, and
	// reloads it on startup. A restarted operator then resumes with
	// its estimates intact instead of re-learning every category from
	// scratch. Checkpoints are written atomically (temp file + rename),
	// so a crash mid-write leaves the previous checkpoint readable.
	StatePath string
	// Logf, when set, receives operator activity lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if c.Client == nil || c.Master == nil {
		return c, fmt.Errorf("operator: Client and Master are required")
	}
	if c.WorkerImage == "" {
		return c, fmt.Errorf("operator: WorkerImage is required")
	}
	if c.MasterAddr == "" {
		c.MasterAddr = c.Master.Addr()
	}
	if c.WorkerResources.IsZero() {
		c.WorkerResources = resources.New(3, 12288, 100000)
	}
	if c.Labels == nil {
		c.Labels = map[string]string{"app": "wq-worker", "managed-by": "hta"}
	}
	if c.InitialWorkers == 0 {
		c.InitialWorkers = 3
	}
	if c.MaxWorkers == 0 {
		c.MaxWorkers = 20
	}
	if c.Cycle == 0 {
		c.Cycle = 30 * time.Second
	}
	if c.InitTimeFallback == 0 {
		c.InitTimeFallback = 160 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

type podState struct {
	createdAt time.Time
	running   bool
	draining  bool
}

// Operator runs the feedback loop.
type Operator struct {
	cfg Config
	mon *monitor.Monitor

	// planner carries Algorithm 1's reusable scratch state; it is
	// touched only by resize, which runs on the Run loop goroutine.
	planner core.Planner

	mu       sync.Mutex
	pods     map[string]*podState
	seq      int
	initTime time.Duration
	measured bool
}

// New builds an operator; call Run to start it.
func New(cfg Config) (*Operator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	o := &Operator{
		cfg:  cfg,
		mon:  monitor.New(monitor.Config{}),
		pods: make(map[string]*podState),
	}
	if err := o.loadState(); err != nil {
		return nil, err
	}
	cfg.Master.OnComplete(o.onTaskComplete)
	return o, nil
}

// Monitor exposes the per-category estimator.
func (o *Operator) Monitor() *monitor.Monitor { return o.mon }

// InitTime returns the current initialization-time estimate and
// whether it was measured from a live cold start.
func (o *Operator) InitTime() (time.Duration, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.measured {
		return o.cfg.InitTimeFallback, false
	}
	return o.initTime, true
}

// WorkerPods returns the operator's live pod count.
func (o *Operator) WorkerPods() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pods)
}

// onTaskComplete feeds the resource monitor: wall time plus the
// worker's rusage-measured CPU when reported, falling back to the
// declared requirement or allocation for the other dimensions.
func (o *Operator) onTaskComplete(r wire.Result) {
	measured := r.Task.Resources
	if measured.IsZero() {
		measured = r.Task.Allocated
	}
	if r.Task.MeasuredCPUMilli > 0 {
		// Prefer the worker's rusage measurement for CPU.
		measured.MilliCPU = r.Task.MeasuredCPUMilli
	}
	o.mon.Observe(wq.Task{
		TaskSpec: wq.TaskSpec{Category: r.Task.Category},
		Measured: measured,
		ExecWall: r.Task.Wall,
	})
}

// Run executes the control loop until ctx is canceled. It returns
// ctx.Err() on normal shutdown.
func (o *Operator) Run(ctx context.Context) error {
	events, err := o.cfg.Client.WatchPods(ctx, o.cfg.Labels)
	if err != nil {
		return err
	}
	// Adopt any pods that already exist (operator restart).
	existing, err := o.cfg.Client.ListPods(ctx, o.cfg.Labels)
	if err != nil {
		return err
	}
	o.mu.Lock()
	for _, p := range existing {
		o.pods[p.Metadata.Name] = &podState{
			createdAt: p.Metadata.Created(),
			running:   p.Status.Phase == kubeclient.PodRunning,
		}
		o.bumpSeqLocked(p.Metadata.Name)
	}
	warm := len(o.pods)
	o.mu.Unlock()

	for i := warm; i < o.cfg.InitialWorkers; i++ {
		if err := o.createWorkerPod(ctx); err != nil {
			return err
		}
	}

	timer := time.NewTimer(o.cfg.Cycle)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case ev, ok := <-events:
			if !ok {
				// Self-healing: a closed watch (API server restart,
				// dropped connection) is re-established with backoff
				// rather than taking the operator down.
				events, err = o.rewatch(ctx)
				if err != nil {
					return err
				}
				continue
			}
			if o.handlePodEvent(ev) {
				// A fresh init-time measurement is worth checkpointing
				// immediately — it is the scarcest signal the operator
				// learns.
				o.saveState()
			}
		case <-timer.C:
			next := o.resize(ctx)
			o.saveState()
			timer.Reset(next)
		}
	}
}

// rewatch re-establishes the pod watch with jittered exponential
// backoff, then resynchronizes the pod roster by listing — events
// missed while the watch was down (deletions in particular) would
// otherwise leave phantom entries in o.pods. It returns only on
// success or context cancellation.
func (o *Operator) rewatch(ctx context.Context) (<-chan kubeclient.PodEvent, error) {
	bo := wire.NewBackoff(200*time.Millisecond, 10*time.Second)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		events, err := o.cfg.Client.WatchPods(ctx, o.cfg.Labels)
		if err == nil {
			o.resync(ctx)
			o.cfg.Logf("operator: pod watch re-established after %d retries", bo.Attempts())
			return events, nil
		}
		d := bo.Next()
		o.cfg.Logf("operator: pod watch closed; retrying in %v: %v", d.Round(time.Millisecond), err)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(d):
		}
	}
}

// resync reconciles the pod roster with the API server's current
// list: pods created while the watch was down are adopted, pods
// deleted meanwhile are dropped.
func (o *Operator) resync(ctx context.Context) {
	existing, err := o.cfg.Client.ListPods(ctx, o.cfg.Labels)
	if err != nil {
		o.cfg.Logf("operator: resync list failed: %v", err)
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	seen := make(map[string]bool, len(existing))
	for _, p := range existing {
		name := p.Metadata.Name
		seen[name] = true
		st, ok := o.pods[name]
		if !ok {
			st = &podState{createdAt: p.Metadata.Created()}
			o.pods[name] = st
			o.bumpSeqLocked(name)
		}
		if p.Status.Phase == kubeclient.PodRunning {
			st.running = true
		}
	}
	for name := range o.pods {
		if !seen[name] {
			delete(o.pods, name)
		}
	}
}

// bumpSeqLocked keeps the name sequence ahead of adopted pods.
func (o *Operator) bumpSeqLocked(name string) {
	var n int
	if _, err := fmt.Sscanf(name, "wq-worker-%d", &n); err == nil && n > o.seq {
		o.seq = n
	}
}

// handlePodEvent updates the roster from one watch event and reports
// whether a new init-time measurement was taken (worth checkpointing).
func (o *Operator) handlePodEvent(ev kubeclient.PodEvent) bool {
	name := ev.Pod.Metadata.Name
	o.mu.Lock()
	defer o.mu.Unlock()
	st, mine := o.pods[name]
	switch ev.Type {
	case kubeclient.WatchAdded:
		if !mine {
			o.pods[name] = &podState{createdAt: time.Now()}
			o.bumpSeqLocked(name)
		}
	case kubeclient.WatchModified:
		if mine && !st.running && ev.Pod.Status.Phase == kubeclient.PodRunning {
			st.running = true
			// Cold-start measurement: creation request → Running.
			d := time.Since(st.createdAt)
			if d > 0 {
				o.initTime = d
				o.measured = true
				o.cfg.Logf("operator: measured init time %v from %s", d.Round(time.Millisecond), name)
				return true
			}
		}
	case kubeclient.WatchDeleted:
		if mine {
			delete(o.pods, name)
		}
	}
	return false
}

func (o *Operator) createWorkerPod(ctx context.Context) error {
	o.mu.Lock()
	o.seq++
	name := fmt.Sprintf("wq-worker-%d", o.seq)
	o.pods[name] = &podState{createdAt: time.Now()}
	o.mu.Unlock()

	pod := kubeclient.Pod{
		Metadata: kubeclient.ObjectMeta{Name: name, Labels: o.cfg.Labels},
		Spec: kubeclient.PodSpec{
			RestartPolicy: "Never",
			Containers: []kubeclient.Container{{
				Name:  "worker",
				Image: o.cfg.WorkerImage,
				Env: []kubeclient.EnvVar{
					{Name: "WQ_MASTER", Value: o.cfg.MasterAddr},
					{Name: "WQ_WORKER_ID", Value: name},
				},
				Resources: kubeclient.ResourceRequirements{
					Requests: kubeclient.ResourceList{
						"cpu":    kubeclient.FormatCPUMilli(o.cfg.WorkerResources.MilliCPU),
						"memory": kubeclient.FormatMemoryMB(o.cfg.WorkerResources.MemoryMB),
					},
				},
			}},
		},
	}
	if _, err := o.cfg.Client.CreatePod(ctx, pod); err != nil {
		o.mu.Lock()
		delete(o.pods, name)
		o.mu.Unlock()
		return fmt.Errorf("operator: create %s: %w", name, err)
	}
	o.cfg.Logf("operator: created worker pod %s", name)
	return nil
}

// resize runs one Algorithm 1 evaluation and actuates the decision,
// returning the delay until the next cycle.
func (o *Operator) resize(ctx context.Context) time.Duration {
	o.reapDrained(ctx)

	details := o.cfg.Master.WorkerDetails()
	var workers []core.WorkerInfo
	draining := make(map[string]bool)
	for _, d := range details {
		if d.Draining {
			draining[d.ID] = true
			continue
		}
		workers = append(workers, core.WorkerInfo{ID: d.ID, Capacity: d.Capacity})
	}
	initTime, _ := o.InitTime()
	dec := o.planner.EstimateScale(core.EstimateInput{
		Now:            time.Now(),
		InitTime:       initTime,
		DefaultCycle:   o.cfg.Cycle,
		Running:        convertTasks(o.cfg.Master.RunningTasks()),
		Waiting:        convertTasks(o.cfg.Master.WaitingTasks()),
		Estimator:      o.mon,
		Workers:        workers,
		WorkerTemplate: o.cfg.WorkerResources,
	})

	o.mu.Lock()
	connected := make(map[string]bool, len(details))
	for _, d := range details {
		connected[d.ID] = true
	}
	creating := 0
	for name, st := range o.pods {
		if !st.draining && !connected[name] {
			creating++
		}
	}
	total := len(o.pods)
	o.mu.Unlock()

	switch {
	case dec.ScaleChange > 0:
		n := dec.ScaleChange - creating
		if room := o.cfg.MaxWorkers - total; n > room {
			n = room
		}
		for i := 0; i < n; i++ {
			if err := o.createWorkerPod(ctx); err != nil {
				o.cfg.Logf("operator: %v", err)
				break
			}
		}
	case dec.ScaleChange < 0:
		o.drainIdle(-dec.ScaleChange, details)
	}
	next := dec.NextCycle
	if next < 100*time.Millisecond {
		next = o.cfg.Cycle
	}
	return next
}

// drainIdle drains up to n idle workers, respecting the floor.
func (o *Operator) drainIdle(n int, details []wire.WorkerDetail) {
	o.mu.Lock()
	headroom := len(o.pods) - o.cfg.MinWorkers
	o.mu.Unlock()
	if n > headroom {
		n = headroom
	}
	for _, d := range details {
		if n <= 0 {
			return
		}
		if d.Draining || d.Running > 0 {
			continue
		}
		if err := o.cfg.Master.Drain(d.ID); err != nil {
			continue
		}
		o.mu.Lock()
		if st, ok := o.pods[d.ID]; ok {
			st.draining = true
		}
		o.mu.Unlock()
		o.cfg.Logf("operator: draining worker %s", d.ID)
		n--
	}
}

// reapDrained deletes pods whose drained workers have disconnected.
func (o *Operator) reapDrained(ctx context.Context) {
	connected := make(map[string]bool)
	for _, id := range o.cfg.Master.Workers() {
		connected[id] = true
	}
	o.mu.Lock()
	var victims []string
	for name, st := range o.pods {
		if st.draining && !connected[name] {
			victims = append(victims, name)
		}
	}
	o.mu.Unlock()
	for _, name := range victims {
		if err := o.cfg.Client.DeletePod(ctx, name); err == nil {
			o.cfg.Logf("operator: deleted drained pod %s", name)
		}
		o.mu.Lock()
		delete(o.pods, name)
		o.mu.Unlock()
	}
}

// convertTasks maps wire tasks into the Algorithm 1 task view.
func convertTasks(in []wire.Task) []wq.Task {
	out := make([]wq.Task, 0, len(in))
	for _, t := range in {
		out = append(out, wq.Task{
			ID: t.ID,
			TaskSpec: wq.TaskSpec{
				Category:  t.Category,
				Resources: t.Resources,
			},
			WorkerID:  t.WorkerID,
			StartedAt: t.StartedAt,
			Allocated: t.Allocated,
		})
	}
	return out
}
