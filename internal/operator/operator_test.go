package operator

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hta/internal/dag"
	"hta/internal/flow"
	"hta/internal/kubeclient"
	"hta/internal/kubeclient/kubetest"
	"hta/internal/makeflow"
	"hta/internal/resources"
	"hta/internal/wq"
	"hta/internal/wq/wire"
)

// fakeKubelet watches the fake API server and behaves like a node
// agent: when a worker pod appears it marks it Running after a short
// startup delay and connects a *real* TCP worker (executing real
// shell commands) with the pod's identity and requested capacity.
// When the pod's worker disconnects (drain), nothing needs doing —
// the operator deletes the pod and the watch shows DELETED.
type fakeKubelet struct {
	t          *testing.T
	srv        *kubetest.Server
	client     *kubeclient.Client
	masterAddr string
	startup    time.Duration

	mu      sync.Mutex
	workers map[string]*wire.Worker
}

func startKubelet(t *testing.T, ctx context.Context, srv *kubetest.Server, client *kubeclient.Client, masterAddr string) *fakeKubelet {
	t.Helper()
	k := &fakeKubelet{
		t: t, srv: srv, client: client, masterAddr: masterAddr,
		startup: 50 * time.Millisecond,
		workers: make(map[string]*wire.Worker),
	}
	labels := map[string]string{"app": "wq-worker"}
	events, err := client.WatchPods(ctx, labels)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			for ev := range events {
				switch ev.Type {
				case kubeclient.WatchAdded:
					go k.startPod(ev.Pod)
				case kubeclient.WatchDeleted:
					k.stopPod(ev.Pod.Metadata.Name)
				}
			}
			// Watch dropped (fake API-server restart): re-establish,
			// like a real node agent. The initial sync replays existing
			// pods as ADDED; startPod ignores ones it already runs.
			if ctx.Err() != nil {
				return
			}
			time.Sleep(20 * time.Millisecond)
			if ch, err := client.WatchPods(ctx, labels); err == nil {
				events = ch
			}
		}
	}()
	t.Cleanup(func() {
		k.mu.Lock()
		defer k.mu.Unlock()
		for _, w := range k.workers {
			w.Close()
		}
	})
	return k
}

func (k *fakeKubelet) startPod(pod kubeclient.Pod) {
	name := pod.Metadata.Name
	k.mu.Lock()
	if _, running := k.workers[name]; running {
		k.mu.Unlock()
		return // replayed ADDED after a watch re-establishment
	}
	k.mu.Unlock()
	time.Sleep(k.startup)
	if err := k.srv.SetPodPhase("default", name, kubeclient.PodRunning); err != nil {
		return // pod already deleted
	}
	req := pod.Spec.Containers[0].Resources.Requests
	cpu, _ := kubeclient.ParseCPUQuantity(req["cpu"])
	mem, _ := kubeclient.ParseMemoryQuantity(req["memory"])
	w, err := wire.Connect(k.masterAddr, wire.WorkerConfig{
		ID:                name,
		Capacity:          resources.Vector{MilliCPU: cpu, MemoryMB: mem, DiskMB: 10000},
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		return
	}
	k.mu.Lock()
	k.workers[name] = w
	k.mu.Unlock()
}

func (k *fakeKubelet) stopPod(name string) {
	k.mu.Lock()
	w := k.workers[name]
	delete(k.workers, name)
	k.mu.Unlock()
	if w != nil {
		w.Close()
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// rig wires fake API server + TCP master + operator + fake kubelet.
type rig struct {
	srv    *kubetest.Server
	client *kubeclient.Client
	master *wire.Master
	op     *Operator
	cancel context.CancelFunc
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	srv := kubetest.NewServer()
	t.Cleanup(srv.Close)
	client, err := kubeclient.New(kubeclient.Config{BaseURL: srv.URL()})
	if err != nil {
		t.Fatal(err)
	}
	master, err := wire.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	startKubelet(t, ctx, srv, client, master.Addr())

	cfg.Client = client
	cfg.Master = master
	if cfg.WorkerImage == "" {
		cfg.WorkerImage = "wq-worker:latest"
	}
	if cfg.Cycle == 0 {
		cfg.Cycle = 120 * time.Millisecond
	}
	if cfg.InitTimeFallback == 0 {
		cfg.InitTimeFallback = 300 * time.Millisecond
	}
	op, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go op.Run(ctx)
	return &rig{srv: srv, client: client, master: master, op: op, cancel: cancel}
}

func TestOperatorEndToEnd(t *testing.T) {
	r := newRig(t, Config{
		WorkerResources: resources.New(2, 2048, 10000),
		InitialWorkers:  1,
		MinWorkers:      0,
		MaxWorkers:      5,
	})
	// Warm-up fleet connects.
	waitFor(t, func() bool { return r.master.Stats().Workers == 1 }, "initial worker")

	// Offer more work than one worker holds: 8 one-core tasks on
	// two-core workers.
	n := 8
	for i := 0; i < n; i++ {
		r.master.Submit(fmt.Sprintf("sleep 0.4 && echo task%d", i), "batch", resources.New(1, 256, 1))
	}
	// The operator scales up...
	waitFor(t, func() bool { return r.master.Stats().Workers >= 3 }, "scale-up")
	// ...everything completes...
	waitFor(t, func() bool { return r.master.Stats().Done == n }, "all tasks")
	for i := 1; i <= n; i++ {
		task, _ := r.master.Task(i)
		if task.ExitCode != 0 {
			t.Errorf("task %d exit = %d (%s)", i, task.ExitCode, task.Err)
		}
	}
	// ...and the idle fleet is drained away and its pods deleted.
	waitFor(t, func() bool { return r.master.Stats().Workers == 0 }, "drain")
	waitFor(t, func() bool { return r.srv.PodCount() == 0 }, "pod deletion")
	waitFor(t, func() bool { return r.op.WorkerPods() == 0 }, "operator bookkeeping")
	// The warm-up pod's cold start was measured.
	if d, measured := r.op.InitTime(); !measured || d <= 0 || d > 5*time.Second {
		t.Errorf("init time = %v measured=%v", d, measured)
	}
	// The monitor learned the category.
	if !r.op.Monitor().Known("batch") {
		t.Error("category never measured")
	}
}

func TestOperatorAdoptsExistingPods(t *testing.T) {
	srv := kubetest.NewServer()
	defer srv.Close()
	client, err := kubeclient.New(kubeclient.Config{BaseURL: srv.URL()})
	if err != nil {
		t.Fatal(err)
	}
	master, err := wire.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	// A pod from a previous operator incarnation already exists.
	_, err = client.CreatePod(context.Background(), kubeclient.Pod{
		Metadata: kubeclient.ObjectMeta{
			Name:   "wq-worker-7",
			Labels: map[string]string{"app": "wq-worker", "managed-by": "hta"},
		},
		Spec: kubeclient.PodSpec{Containers: []kubeclient.Container{{
			Name: "worker", Image: "wq-worker:latest",
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	op, err := New(Config{
		Client: client, Master: master,
		WorkerImage:    "wq-worker:latest",
		InitialWorkers: 2,
		Cycle:          100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go op.Run(ctx)
	// The operator adopts the pod and creates only one more (to reach
	// InitialWorkers=2), numbered after the adopted one.
	waitFor(t, func() bool { return srv.PodCount() == 2 }, "fleet completion")
	if _, ok := srv.Pod("default", "wq-worker-8"); !ok {
		t.Error("new pod not numbered after adopted wq-worker-7")
	}
	if got := op.WorkerPods(); got != 2 {
		t.Errorf("tracked pods = %d", got)
	}
}

func TestOperatorRewatchesAfterWatchDrop(t *testing.T) {
	r := newRig(t, Config{
		WorkerResources: resources.New(2, 2048, 10000),
		InitialWorkers:  1,
		MinWorkers:      2, // keep the idle fleet from draining mid-test
		MaxWorkers:      5,
	})
	waitFor(t, func() bool { return r.master.Stats().Workers == 1 }, "initial worker")

	// Sever every watch stream — an API-server restart from the
	// watchers' point of view. The operator must re-establish its
	// watch instead of dying.
	r.srv.DropWatches()

	// A pod created around the outage reaches the operator only
	// through the re-established watch (live event or resync list).
	_, err := r.client.CreatePod(context.Background(), kubeclient.Pod{
		Metadata: kubeclient.ObjectMeta{
			Name:   "wq-worker-99",
			Labels: map[string]string{"app": "wq-worker", "managed-by": "hta"},
		},
		Spec: kubeclient.PodSpec{Containers: []kubeclient.Container{{
			Name: "worker", Image: "wq-worker:latest",
			Resources: kubeclient.ResourceRequirements{Requests: kubeclient.ResourceList{
				"cpu":    kubeclient.FormatCPUMilli(2000),
				"memory": kubeclient.FormatMemoryMB(2048),
			}},
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.op.WorkerPods() == 2 }, "adoption after rewatch")

	// Live events flow again: a deletion is observed, not just listed.
	if err := r.client.DeletePod(context.Background(), "wq-worker-99"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.op.WorkerPods() == 1 }, "deletion after rewatch")
}

// TestOperatorRestartResumesLearnedState kills the operator process
// (context cancel) mid-life and starts a fresh incarnation against the
// same cluster, master, and state file: the new operator must load the
// learned category estimates and measured init time from its
// checkpoint, adopt the surviving pods, and not double-scale the
// fleet.
func TestOperatorRestartResumesLearnedState(t *testing.T) {
	srv := kubetest.NewServer()
	defer srv.Close()
	client, err := kubeclient.New(kubeclient.Config{BaseURL: srv.URL()})
	if err != nil {
		t.Fatal(err)
	}
	master, err := wire.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	// The kubelet outlives both operator incarnations, like a real
	// node agent outlives a control-plane restart.
	kctx, kcancel := context.WithCancel(context.Background())
	defer kcancel()
	startKubelet(t, kctx, srv, client, master.Addr())

	statePath := filepath.Join(t.TempDir(), "operator-state.json")
	cfg := Config{
		Client: client, Master: master,
		WorkerImage:      "wq-worker:latest",
		WorkerResources:  resources.New(2, 2048, 10000),
		InitialWorkers:   2,
		MinWorkers:       2, // keep the fleet alive across the restart
		MaxWorkers:       4,
		Cycle:            100 * time.Millisecond,
		InitTimeFallback: 300 * time.Millisecond,
		StatePath:        statePath,
	}

	op1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	go op1.Run(ctx1)
	waitFor(t, func() bool { return master.Stats().Workers == 2 }, "initial fleet")

	for i := 0; i < 4; i++ {
		master.Submit("sleep 0.2", "persist", resources.New(1, 128, 1))
	}
	waitFor(t, func() bool { return master.Stats().Done == 4 }, "first batch")
	waitFor(t, func() bool { return op1.Monitor().Known("persist") }, "category learned")
	waitFor(t, func() bool {
		d, measured := op1.InitTime()
		return measured && d > 0
	}, "init time measured")
	// Wait for a checkpoint carrying the learned category (written on
	// the next resize cycle at the latest).
	waitFor(t, func() bool {
		data, err := os.ReadFile(statePath)
		return err == nil && strings.Contains(string(data), "persist")
	}, "checkpoint written")
	wantInit, _ := op1.InitTime()
	wantEstimate, _ := op1.Monitor().EstimateResources("persist")

	cancel1() // the operator process dies; pods and master survive
	podsBefore := srv.PodCount()
	if podsBefore == 0 {
		t.Fatal("no pods survived the operator kill")
	}

	op2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Learned state is available immediately after New, before Run:
	// the checkpoint, not live traffic, is the source.
	if !op2.Monitor().Known("persist") {
		t.Fatal("restarted operator forgot the learned category")
	}
	if gotInit, measured := op2.InitTime(); !measured || gotInit != wantInit {
		t.Errorf("restarted init time = %v measured=%v, want %v measured", gotInit, measured, wantInit)
	}
	if got, ok := op2.Monitor().EstimateResources("persist"); !ok || got != wantEstimate {
		t.Errorf("restarted estimate = %+v, want %+v", got, wantEstimate)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go op2.Run(ctx2)
	// The new incarnation adopts the surviving pods instead of
	// creating a second fleet next to them.
	waitFor(t, func() bool { return op2.WorkerPods() == podsBefore }, "pod adoption")
	time.Sleep(3 * cfg.Cycle) // a few cycles to catch double-scaling
	if got := srv.PodCount(); got != podsBefore {
		t.Errorf("pod count %d after restart, want %d (no double-scale)", got, podsBefore)
	}

	// And the loop still works: new tasks complete on the adopted fleet.
	for i := 0; i < 4; i++ {
		master.Submit("sleep 0.1", "persist", resources.New(1, 128, 1))
	}
	waitFor(t, func() bool { return master.Stats().Done == 8 }, "post-restart batch")
}

// TestOperatorToleratesCorruptState starts against a torn checkpoint:
// the operator must log and start fresh, never fail construction.
func TestOperatorToleratesCorruptState(t *testing.T) {
	srv := kubetest.NewServer()
	defer srv.Close()
	client, _ := kubeclient.New(kubeclient.Config{BaseURL: srv.URL()})
	master, err := wire.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	statePath := filepath.Join(t.TempDir(), "state.json")
	if err := os.WriteFile(statePath, []byte(`{"monitor":{"categories":[{"cat`), 0o644); err != nil {
		t.Fatal(err)
	}
	op, err := New(Config{
		Client: client, Master: master,
		WorkerImage: "wq-worker:latest",
		StatePath:   statePath,
	})
	if err != nil {
		t.Fatalf("corrupt checkpoint bricked the operator: %v", err)
	}
	if op.Monitor().Known("anything") {
		t.Error("corrupt checkpoint produced learned state")
	}
}

func TestOperatorConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing client/master should fail")
	}
	srv := kubetest.NewServer()
	defer srv.Close()
	client, _ := kubeclient.New(kubeclient.Config{BaseURL: srv.URL()})
	master, err := wire.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	if _, err := New(Config{Client: client, Master: master}); err == nil {
		t.Error("missing image should fail")
	}
}

func TestOperatorRespectsMaxWorkers(t *testing.T) {
	r := newRig(t, Config{
		WorkerResources: resources.New(1, 1024, 10000),
		InitialWorkers:  1,
		MaxWorkers:      2,
	})
	waitFor(t, func() bool { return r.master.Stats().Workers == 1 }, "initial worker")
	for i := 0; i < 10; i++ {
		r.master.Submit("sleep 0.3", "cap", resources.New(1, 128, 1))
	}
	waitFor(t, func() bool { return r.master.Stats().Done == 10 }, "completion")
	if got := r.srv.PodCount(); got > 2 {
		t.Errorf("pods peaked at %d, want ≤ MaxWorkers 2", got)
	}
}

func TestOperatorRunsMakeflowWorkflow(t *testing.T) {
	r := newRig(t, Config{
		WorkerResources: resources.New(2, 2048, 10000),
		InitialWorkers:  1,
		MaxWorkers:      4,
	})
	waitFor(t, func() bool { return r.master.Stats().Workers == 1 }, "initial worker")

	parsed, err := makeflow.ParseString(`
CATEGORY=gen
CORES=1
nums.txt:
	seq 1 50 > nums.txt
CATEGORY=sum
CORES=1
total.txt: nums.txt
	awk '{s+=$1} END {print s}' nums.txt > total.txt
`)
	if err != nil {
		t.Fatal(err)
	}
	adapter := wire.NewFlowAdapter(r.master)
	runner := flow.NewRunner(parsed.Graph, adapter, func(n dag.Node) wq.TaskSpec {
		return wq.TaskSpec{Command: n.Command, Category: n.Category, Resources: n.Resources}
	})
	done := make(chan struct{})
	runner.OnAllDone(func() { close(done) })

	dir := t.TempDir()
	oldWD, _ := os.Getwd()
	os.Chdir(dir)
	defer os.Chdir(oldWD)

	runner.Start()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("workflow timed out: %+v", r.master.Stats())
	}
	if err := runner.Err(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile("total.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != "1275" {
		t.Errorf("total.txt = %q, want 1275 (sum 1..50)", got)
	}
}
