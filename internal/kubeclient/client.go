package kubeclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"slices"
	"strings"
	"time"
)

// Config describes how to reach the API server.
type Config struct {
	// BaseURL is the API server root, e.g. "https://10.0.0.1:6443"
	// or an httptest server URL.
	BaseURL string
	// Namespace scopes pod operations (default "default").
	Namespace string
	// BearerToken, when set, is sent as Authorization: Bearer.
	BearerToken string
	// HTTPClient overrides the transport (default http.DefaultClient;
	// real clusters need TLS configuration here).
	HTTPClient *http.Client
	// Timeout bounds non-watch requests (default 30 s).
	Timeout time.Duration
}

// Client is a minimal typed Kubernetes client.
type Client struct {
	cfg Config
}

// New validates the config and returns a client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("kubeclient: BaseURL required")
	}
	if _, err := url.Parse(cfg.BaseURL); err != nil {
		return nil, fmt.Errorf("kubeclient: bad BaseURL: %w", err)
	}
	if cfg.Namespace == "" {
		cfg.Namespace = "default"
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	return &Client{cfg: cfg}, nil
}

// Namespace returns the client's namespace.
func (c *Client) Namespace() string { return c.cfg.Namespace }

// apiError converts a non-2xx response into an error carrying the
// server's Status message.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 16*1024))
	var st Status
	if json.Unmarshal(body, &st) == nil && st.Message != "" {
		return fmt.Errorf("kubeclient: %s (HTTP %d)", st.Message, resp.StatusCode)
	}
	return fmt.Errorf("kubeclient: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

func (c *Client) do(ctx context.Context, method, path string, query url.Values, in, out any) error {
	u := strings.TrimSuffix(c.cfg.BaseURL, "/") + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("kubeclient: marshal: %w", err)
		}
		body = bytes.NewReader(data)
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return fmt.Errorf("kubeclient: request: %w", err)
	}
	req.Header.Set("Accept", "application/json")
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.cfg.BearerToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.cfg.BearerToken)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("kubeclient: %s %s: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return apiError(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("kubeclient: decode %s: %w", path, err)
	}
	return nil
}

func (c *Client) podsPath() string {
	return "/api/v1/namespaces/" + url.PathEscape(c.cfg.Namespace) + "/pods"
}

// CreatePod submits a pod and returns the server's stored object.
func (c *Client) CreatePod(ctx context.Context, pod Pod) (Pod, error) {
	pod.APIVersion, pod.Kind = "v1", "Pod"
	if pod.Metadata.Namespace == "" {
		pod.Metadata.Namespace = c.cfg.Namespace
	}
	var out Pod
	err := c.do(ctx, http.MethodPost, c.podsPath(), nil, pod, &out)
	return out, err
}

// GetPod fetches one pod.
func (c *Client) GetPod(ctx context.Context, name string) (Pod, error) {
	var out Pod
	err := c.do(ctx, http.MethodGet, c.podsPath()+"/"+url.PathEscape(name), nil, nil, &out)
	return out, err
}

// DeletePod removes a pod.
func (c *Client) DeletePod(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, c.podsPath()+"/"+url.PathEscape(name), nil, nil, nil)
}

// ListPods lists pods matching the label selector (empty = all),
// sorted by name.
func (c *Client) ListPods(ctx context.Context, selector map[string]string) ([]Pod, error) {
	q := url.Values{}
	if sel := FormatSelector(selector); sel != "" {
		q.Set("labelSelector", sel)
	}
	var list PodList
	if err := c.do(ctx, http.MethodGet, c.podsPath(), q, nil, &list); err != nil {
		return nil, err
	}
	slices.SortFunc(list.Items, func(a, b Pod) int {
		return strings.Compare(a.Metadata.Name, b.Metadata.Name)
	})
	return list.Items, nil
}

// ListNodes lists cluster nodes sorted by name.
func (c *Client) ListNodes(ctx context.Context) ([]Node, error) {
	var list NodeList
	if err := c.do(ctx, http.MethodGet, "/api/v1/nodes", nil, nil, &list); err != nil {
		return nil, err
	}
	slices.SortFunc(list.Items, func(a, b Node) int {
		return strings.Compare(a.Metadata.Name, b.Metadata.Name)
	})
	return list.Items, nil
}

// WatchPods opens a streaming watch for pods matching the selector.
// Events arrive on the returned channel until ctx is canceled or the
// server closes the stream, after which the channel closes.
func (c *Client) WatchPods(ctx context.Context, selector map[string]string) (<-chan PodEvent, error) {
	q := url.Values{}
	q.Set("watch", "true")
	if sel := FormatSelector(selector); sel != "" {
		q.Set("labelSelector", sel)
	}
	u := strings.TrimSuffix(c.cfg.BaseURL, "/") + c.podsPath() + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("kubeclient: watch request: %w", err)
	}
	req.Header.Set("Accept", "application/json")
	if c.cfg.BearerToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.cfg.BearerToken)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("kubeclient: watch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	ch := make(chan PodEvent, 16)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		dec := json.NewDecoder(resp.Body)
		for {
			var ev PodEvent
			if err := dec.Decode(&ev); err != nil {
				return
			}
			select {
			case ch <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, nil
}

// FormatSelector renders a label map as "k1=v1,k2=v2" with sorted
// keys.
func FormatSelector(sel map[string]string) string {
	if len(sel) == 0 {
		return ""
	}
	keys := make([]string, 0, len(sel))
	for k := range sel {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+sel[k])
	}
	return strings.Join(parts, ",")
}

// ParseSelector parses "k1=v1,k2=v2" into a label map.
func ParseSelector(s string) (map[string]string, error) {
	out := make(map[string]string)
	s = strings.TrimSpace(s)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("kubeclient: bad selector term %q", part)
		}
		out[k] = v
	}
	return out, nil
}
