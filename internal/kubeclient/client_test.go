package kubeclient_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"hta/internal/kubeclient"
	"hta/internal/kubeclient/kubetest"
)

func newClient(t *testing.T) (*kubetest.Server, *kubeclient.Client) {
	t.Helper()
	srv := kubetest.NewServer()
	t.Cleanup(srv.Close)
	c, err := kubeclient.New(kubeclient.Config{BaseURL: srv.URL(), Namespace: "default"})
	if err != nil {
		t.Fatal(err)
	}
	return srv, c
}

func workerPod(name string) kubeclient.Pod {
	return kubeclient.Pod{
		Metadata: kubeclient.ObjectMeta{
			Name:   name,
			Labels: map[string]string{"app": "wq-worker"},
		},
		Spec: kubeclient.PodSpec{
			Containers: []kubeclient.Container{{
				Name:  "worker",
				Image: "wq-worker:latest",
				Resources: kubeclient.ResourceRequirements{
					Requests: kubeclient.ResourceList{"cpu": "3", "memory": "12288Mi"},
				},
			}},
		},
	}
}

func TestPodLifecycle(t *testing.T) {
	srv, c := newClient(t)
	ctx := context.Background()

	created, err := c.CreatePod(ctx, workerPod("w1"))
	if err != nil {
		t.Fatal(err)
	}
	if created.Metadata.UID == "" || created.Metadata.CreationTimestamp == "" {
		t.Errorf("server did not fill metadata: %+v", created.Metadata)
	}
	if created.Status.Phase != kubeclient.PodPending {
		t.Errorf("phase = %q, want Pending", created.Status.Phase)
	}
	if created.Metadata.Created().IsZero() {
		t.Error("Created() is zero")
	}

	got, err := c.GetPod(ctx, "w1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Metadata.Name != "w1" || got.Spec.Containers[0].Image != "wq-worker:latest" {
		t.Errorf("pod = %+v", got)
	}

	srv.SetPodPhase("default", "w1", kubeclient.PodRunning)
	got, _ = c.GetPod(ctx, "w1")
	if got.Status.Phase != kubeclient.PodRunning || got.Status.StartTime == "" {
		t.Errorf("status = %+v", got.Status)
	}

	if err := c.DeletePod(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetPod(ctx, "w1"); err == nil {
		t.Error("get after delete should fail")
	}
	if err := c.DeletePod(ctx, "w1"); err == nil {
		t.Error("double delete should fail")
	}
}

func TestCreateValidationAndConflict(t *testing.T) {
	_, c := newClient(t)
	ctx := context.Background()
	if _, err := c.CreatePod(ctx, kubeclient.Pod{}); err == nil {
		t.Error("nameless pod should fail")
	}
	bad := workerPod("x")
	bad.Spec.Containers = nil
	if _, err := c.CreatePod(ctx, bad); err == nil {
		t.Error("containerless pod should fail")
	}
	if _, err := c.CreatePod(ctx, workerPod("dup")); err != nil {
		t.Fatal(err)
	}
	_, err := c.CreatePod(ctx, workerPod("dup"))
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("duplicate error = %v", err)
	}
}

func TestListPodsWithSelector(t *testing.T) {
	_, c := newClient(t)
	ctx := context.Background()
	c.CreatePod(ctx, workerPod("w2"))
	c.CreatePod(ctx, workerPod("w1"))
	other := workerPod("other")
	other.Metadata.Labels = map[string]string{"app": "something-else"}
	c.CreatePod(ctx, other)

	pods, err := c.ListPods(ctx, map[string]string{"app": "wq-worker"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pods) != 2 || pods[0].Metadata.Name != "w1" || pods[1].Metadata.Name != "w2" {
		t.Errorf("pods = %+v", pods)
	}
	all, err := c.ListPods(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("all pods = %d", len(all))
	}
}

func TestListNodes(t *testing.T) {
	srv, c := newClient(t)
	srv.AddNode("node-b", 3000, 12288)
	srv.AddNode("node-a", 4000, 16384)
	nodes, err := c.ListNodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].Metadata.Name != "node-a" {
		t.Fatalf("nodes = %+v", nodes)
	}
	cpu, err := kubeclient.ParseCPUQuantity(nodes[0].Status.Allocatable["cpu"])
	if err != nil || cpu != 4000 {
		t.Errorf("cpu = %d err=%v", cpu, err)
	}
	mem, err := kubeclient.ParseMemoryQuantity(nodes[0].Status.Allocatable["memory"])
	if err != nil || mem != 16384 {
		t.Errorf("mem = %d err=%v", mem, err)
	}
}

func TestWatchStreamsLifecycle(t *testing.T) {
	srv, c := newClient(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Pre-existing pod arrives as the initial ADDED.
	c.CreatePod(ctx, workerPod("pre"))
	events, err := c.WatchPods(ctx, map[string]string{"app": "wq-worker"})
	if err != nil {
		t.Fatal(err)
	}
	next := func(what string) kubeclient.PodEvent {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("watch closed waiting for %s", what)
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout waiting for %s", what)
		}
		panic("unreachable")
	}
	if ev := next("initial sync"); ev.Type != kubeclient.WatchAdded || ev.Pod.Metadata.Name != "pre" {
		t.Fatalf("initial = %+v", ev)
	}
	c.CreatePod(ctx, workerPod("live"))
	if ev := next("ADDED"); ev.Type != kubeclient.WatchAdded || ev.Pod.Metadata.Name != "live" {
		t.Fatalf("added = %+v", ev)
	}
	srv.SetPodPhase("default", "live", kubeclient.PodRunning)
	if ev := next("MODIFIED"); ev.Type != kubeclient.WatchModified || ev.Pod.Status.Phase != kubeclient.PodRunning {
		t.Fatalf("modified = %+v", ev)
	}
	c.DeletePod(ctx, "live")
	if ev := next("DELETED"); ev.Type != kubeclient.WatchDeleted {
		t.Fatalf("deleted = %+v", ev)
	}
	// Foreign-label pods never appear on this watch.
	other := workerPod("foreign")
	other.Metadata.Labels = map[string]string{"app": "else"}
	c.CreatePod(ctx, other)
	select {
	case ev := <-events:
		t.Fatalf("unexpected event %+v", ev)
	case <-time.After(100 * time.Millisecond):
	}
	cancel()
	// Channel closes after cancellation.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-events:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("watch channel never closed")
		}
	}
}

func TestAutoRun(t *testing.T) {
	srv, c := newClient(t)
	srv.AutoRun(30 * time.Millisecond)
	ctx := context.Background()
	c.CreatePod(ctx, workerPod("auto"))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		p, _ := c.GetPod(ctx, "auto")
		if p.Status.Phase == kubeclient.PodRunning {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("auto-run never transitioned the pod")
}

func TestQuantityParsing(t *testing.T) {
	cpu := map[string]int64{"2": 2000, "500m": 500, "1.5": 1500, "0": 0}
	for in, want := range cpu {
		got, err := kubeclient.ParseCPUQuantity(in)
		if err != nil || got != want {
			t.Errorf("ParseCPUQuantity(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "-1", "lots", "2mm"} {
		if _, err := kubeclient.ParseCPUQuantity(bad); err == nil {
			t.Errorf("ParseCPUQuantity(%q) should fail", bad)
		}
	}
	mem := map[string]int64{
		"4Gi": 4096, "4096Mi": 4096, "1048576Ki": 1024,
		"1G": 953, "500M": 476, "1073741824": 1024,
	}
	for in, want := range mem {
		got, err := kubeclient.ParseMemoryQuantity(in)
		if err != nil || got != want {
			t.Errorf("ParseMemoryQuantity(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "-5Mi", "huge"} {
		if _, err := kubeclient.ParseMemoryQuantity(bad); err == nil {
			t.Errorf("ParseMemoryQuantity(%q) should fail", bad)
		}
	}
	if kubeclient.FormatCPUMilli(3000) != "3" || kubeclient.FormatCPUMilli(2500) != "2500m" {
		t.Error("FormatCPUMilli wrong")
	}
	if kubeclient.FormatMemoryMB(4096) != "4096Mi" {
		t.Error("FormatMemoryMB wrong")
	}
}

func TestSelectorRoundTrip(t *testing.T) {
	sel := map[string]string{"b": "2", "a": "1"}
	s := kubeclient.FormatSelector(sel)
	if s != "a=1,b=2" {
		t.Errorf("FormatSelector = %q", s)
	}
	back, err := kubeclient.ParseSelector(s)
	if err != nil || back["a"] != "1" || back["b"] != "2" {
		t.Errorf("ParseSelector = %v, %v", back, err)
	}
	if _, err := kubeclient.ParseSelector("noequals"); err == nil {
		t.Error("bad selector should fail")
	}
	if got := kubeclient.FormatSelector(nil); got != "" {
		t.Errorf("empty selector = %q", got)
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := kubeclient.New(kubeclient.Config{}); err == nil {
		t.Error("empty BaseURL should fail")
	}
	c, err := kubeclient.New(kubeclient.Config{BaseURL: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Namespace() != "default" {
		t.Errorf("namespace = %q", c.Namespace())
	}
	// Unreachable server surfaces a transport error.
	if _, err := c.ListNodes(context.Background()); err == nil {
		t.Error("unreachable server should fail")
	}
}
