// Package kubeclient is a minimal, dependency-free Kubernetes REST
// client covering exactly the API surface the HTA operator needs:
// pod CRUD, node listing, and label-selector watches. It speaks the
// real API-server wire format (JSON objects, `?watch=true` streaming
// event frames, `labelSelector` queries), so it works against a real
// cluster; the sibling kubetest package provides an in-process fake
// API server for offline tests.
package kubeclient

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ObjectMeta is the metadata block common to all objects.
type ObjectMeta struct {
	Name              string            `json:"name"`
	Namespace         string            `json:"namespace,omitempty"`
	UID               string            `json:"uid,omitempty"`
	Labels            map[string]string `json:"labels,omitempty"`
	CreationTimestamp string            `json:"creationTimestamp,omitempty"`
}

// Created parses the creation timestamp (zero time if unset).
func (m ObjectMeta) Created() time.Time {
	t, err := time.Parse(time.RFC3339, m.CreationTimestamp)
	if err != nil {
		return time.Time{}
	}
	return t
}

// ResourceList maps resource names to quantity strings, e.g.
// {"cpu": "500m", "memory": "4Gi"}.
type ResourceList map[string]string

// ResourceRequirements carries requests and limits.
type ResourceRequirements struct {
	Requests ResourceList `json:"requests,omitempty"`
	Limits   ResourceList `json:"limits,omitempty"`
}

// Container is a pod container.
type Container struct {
	Name      string               `json:"name"`
	Image     string               `json:"image"`
	Command   []string             `json:"command,omitempty"`
	Args      []string             `json:"args,omitempty"`
	Env       []EnvVar             `json:"env,omitempty"`
	Resources ResourceRequirements `json:"resources,omitempty"`
}

// EnvVar is a container environment variable.
type EnvVar struct {
	Name  string `json:"name"`
	Value string `json:"value,omitempty"`
}

// PodSpec is the pod specification subset we use.
type PodSpec struct {
	NodeName      string      `json:"nodeName,omitempty"`
	Containers    []Container `json:"containers"`
	RestartPolicy string      `json:"restartPolicy,omitempty"`
}

// Pod phases.
const (
	PodPending   = "Pending"
	PodRunning   = "Running"
	PodSucceeded = "Succeeded"
	PodFailed    = "Failed"
)

// PodStatus is the status subset we use.
type PodStatus struct {
	Phase     string `json:"phase,omitempty"`
	Reason    string `json:"reason,omitempty"`
	StartTime string `json:"startTime,omitempty"`
	HostIP    string `json:"hostIP,omitempty"`
	PodIP     string `json:"podIP,omitempty"`
}

// Pod is a Kubernetes pod.
type Pod struct {
	APIVersion string     `json:"apiVersion,omitempty"`
	Kind       string     `json:"kind,omitempty"`
	Metadata   ObjectMeta `json:"metadata"`
	Spec       PodSpec    `json:"spec"`
	Status     PodStatus  `json:"status,omitempty"`
}

// PodList is the list envelope.
type PodList struct {
	Items []Pod `json:"items"`
}

// NodeStatus is the node status subset we use.
type NodeStatus struct {
	Allocatable ResourceList `json:"allocatable,omitempty"`
	Capacity    ResourceList `json:"capacity,omitempty"`
}

// Node is a cluster node.
type Node struct {
	APIVersion string     `json:"apiVersion,omitempty"`
	Kind       string     `json:"kind,omitempty"`
	Metadata   ObjectMeta `json:"metadata"`
	Status     NodeStatus `json:"status,omitempty"`
}

// NodeList is the list envelope.
type NodeList struct {
	Items []Node `json:"items"`
}

// Watch event types, matching the API server's frames.
const (
	WatchAdded    = "ADDED"
	WatchModified = "MODIFIED"
	WatchDeleted  = "DELETED"
)

// PodEvent is one watch frame.
type PodEvent struct {
	Type string `json:"type"`
	Pod  Pod    `json:"object"`
}

// Status is the API server's error envelope.
type Status struct {
	Kind    string `json:"kind,omitempty"`
	Message string `json:"message,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Code    int    `json:"code,omitempty"`
}

// ParseCPUQuantity converts a Kubernetes CPU quantity ("2", "500m",
// "1.5") to millicores.
func ParseCPUQuantity(q string) (int64, error) {
	q = strings.TrimSpace(q)
	if q == "" {
		return 0, fmt.Errorf("kubeclient: empty cpu quantity")
	}
	if strings.HasSuffix(q, "m") {
		n, err := strconv.ParseInt(strings.TrimSuffix(q, "m"), 10, 64)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("kubeclient: bad millicpu quantity %q", q)
		}
		return n, nil
	}
	f, err := strconv.ParseFloat(q, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("kubeclient: bad cpu quantity %q", q)
	}
	return int64(f * 1000), nil
}

// ParseMemoryQuantity converts a Kubernetes memory quantity ("4Gi",
// "4096Mi", "512Ki", "1000000", "1G", "500M") to mebibytes (binary
// suffixes) or megabytes (decimal suffixes), both reported as MB for
// this repository's resource vectors.
func ParseMemoryQuantity(q string) (int64, error) {
	q = strings.TrimSpace(q)
	if q == "" {
		return 0, fmt.Errorf("kubeclient: empty memory quantity")
	}
	type suffix struct {
		s   string
		mul float64 // bytes
	}
	suffixes := []suffix{
		{"Ki", 1 << 10}, {"Mi", 1 << 20}, {"Gi", 1 << 30}, {"Ti", 1 << 40},
		{"k", 1e3}, {"K", 1e3}, {"M", 1e6}, {"G", 1e9}, {"T", 1e12},
	}
	mul := 1.0
	num := q
	for _, sf := range suffixes {
		if strings.HasSuffix(q, sf.s) {
			mul = sf.mul
			num = strings.TrimSuffix(q, sf.s)
			break
		}
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("kubeclient: bad memory quantity %q", q)
	}
	return int64(f * mul / (1 << 20)), nil
}

// FormatCPUMilli renders millicores as a quantity string.
func FormatCPUMilli(milli int64) string {
	if milli%1000 == 0 {
		return strconv.FormatInt(milli/1000, 10)
	}
	return fmt.Sprintf("%dm", milli)
}

// FormatMemoryMB renders mebibytes as a quantity string.
func FormatMemoryMB(mb int64) string { return fmt.Sprintf("%dMi", mb) }
