// Package kubetest provides an in-process fake Kubernetes API server
// implementing the surface kubeclient speaks — pod CRUD, node
// listing, and streaming label-selector watches — so the HTA operator
// and client are testable without a cluster.
package kubetest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"hta/internal/kubeclient"
)

// Server is a fake API server backed by an in-memory store.
type Server struct {
	srv *httptest.Server

	mu       sync.Mutex
	pods     map[string]kubeclient.Pod // ns/name
	nodes    map[string]kubeclient.Node
	watchers map[int]*watcher
	nextUID  int
	nextW    int
	autoRun  time.Duration // auto-transition Pending→Running delay; 0 = manual
}

type watcher struct {
	ns       string
	selector map[string]string
	ch       chan kubeclient.PodEvent
	drop     chan struct{}
}

// NewServer starts the fake API server.
func NewServer() *Server {
	s := &Server{
		pods:     make(map[string]kubeclient.Pod),
		nodes:    make(map[string]kubeclient.Node),
		watchers: make(map[int]*watcher),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/nodes", s.listNodes)
	mux.HandleFunc("GET /api/v1/namespaces/{ns}/pods", s.listOrWatchPods)
	mux.HandleFunc("POST /api/v1/namespaces/{ns}/pods", s.createPod)
	mux.HandleFunc("GET /api/v1/namespaces/{ns}/pods/{name}", s.getPod)
	mux.HandleFunc("DELETE /api/v1/namespaces/{ns}/pods/{name}", s.deletePod)
	s.srv = httptest.NewServer(mux)
	return s
}

// URL returns the server's base URL.
func (s *Server) URL() string { return s.srv.URL }

// Close shuts the server down and terminates all watches.
func (s *Server) Close() {
	s.srv.CloseClientConnections()
	s.srv.Close()
}

// DropWatches terminates every open watch stream without shutting the
// server down — an API-server restart from the watchers' point of
// view. Clients see their event channels close and must re-watch.
func (s *Server) DropWatches() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, wt := range s.watchers {
		close(wt.drop)
		delete(s.watchers, id)
	}
}

// AutoRun makes created pods transition Pending → Running after the
// delay, like a cluster whose scheduler and kubelet take that long.
func (s *Server) AutoRun(delay time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.autoRun = delay
}

// AddNode registers a ready node with the given allocatable
// resources.
func (s *Server) AddNode(name string, cpuMilli, memMB int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes[name] = kubeclient.Node{
		APIVersion: "v1", Kind: "Node",
		Metadata: kubeclient.ObjectMeta{Name: name},
		Status: kubeclient.NodeStatus{
			Allocatable: kubeclient.ResourceList{
				"cpu":    kubeclient.FormatCPUMilli(cpuMilli),
				"memory": kubeclient.FormatMemoryMB(memMB),
			},
		},
	}
}

// SetPodPhase transitions a pod's phase and broadcasts MODIFIED.
func (s *Server) SetPodPhase(ns, name, phase string) error {
	s.mu.Lock()
	key := ns + "/" + name
	pod, ok := s.pods[key]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("kubetest: pod %s not found", key)
	}
	pod.Status.Phase = phase
	if phase == kubeclient.PodRunning && pod.Status.StartTime == "" {
		pod.Status.StartTime = time.Now().UTC().Format(time.RFC3339)
	}
	s.pods[key] = pod
	s.broadcastLocked(kubeclient.WatchModified, pod)
	s.mu.Unlock()
	return nil
}

// Pod returns a stored pod.
func (s *Server) Pod(ns, name string) (kubeclient.Pod, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pods[ns+"/"+name]
	return p, ok
}

// PodCount returns the number of stored pods.
func (s *Server) PodCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pods)
}

// --- handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeStatus(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, kubeclient.Status{Kind: "Status", Message: msg, Code: code})
}

func matches(pod kubeclient.Pod, sel map[string]string) bool {
	for k, v := range sel {
		if pod.Metadata.Labels[k] != v {
			return false
		}
	}
	return true
}

func (s *Server) listNodes(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := kubeclient.NodeList{}
	for _, n := range s.nodes {
		list.Items = append(list.Items, n)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) listOrWatchPods(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	sel, err := kubeclient.ParseSelector(r.URL.Query().Get("labelSelector"))
	if err != nil {
		writeStatus(w, http.StatusBadRequest, err.Error())
		return
	}
	if r.URL.Query().Get("watch") == "true" {
		s.watchPods(w, r, ns, sel)
		return
	}
	s.mu.Lock()
	list := kubeclient.PodList{}
	for _, p := range s.pods {
		if p.Metadata.Namespace == ns && matches(p, sel) {
			list.Items = append(list.Items, p)
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) watchPods(w http.ResponseWriter, r *http.Request, ns string, sel map[string]string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeStatus(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	wt := &watcher{ns: ns, selector: sel, ch: make(chan kubeclient.PodEvent, 64), drop: make(chan struct{})}
	s.mu.Lock()
	// Initial sync: existing pods arrive as ADDED, as a
	// resourceVersion=0 watch would deliver.
	for _, p := range s.pods {
		if p.Metadata.Namespace == ns && matches(p, sel) {
			wt.ch <- kubeclient.PodEvent{Type: kubeclient.WatchAdded, Pod: p}
		}
	}
	s.nextW++
	id := s.nextW
	s.watchers[id] = wt
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.watchers, id)
		s.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-wt.drop:
			return
		case ev := <-wt.ch:
			if err := enc.Encode(ev); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// broadcastLocked fans an event out to matching watchers; the caller
// holds s.mu.
func (s *Server) broadcastLocked(typ string, pod kubeclient.Pod) {
	for _, wt := range s.watchers {
		if pod.Metadata.Namespace != wt.ns || !matches(pod, wt.selector) {
			continue
		}
		select {
		case wt.ch <- kubeclient.PodEvent{Type: typ, Pod: pod}:
		default: // slow watcher: drop rather than block the store
		}
	}
}

func (s *Server) createPod(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	var pod kubeclient.Pod
	if err := json.NewDecoder(r.Body).Decode(&pod); err != nil {
		writeStatus(w, http.StatusBadRequest, "malformed pod: "+err.Error())
		return
	}
	if pod.Metadata.Name == "" {
		writeStatus(w, http.StatusUnprocessableEntity, "pod name required")
		return
	}
	if len(pod.Spec.Containers) == 0 {
		writeStatus(w, http.StatusUnprocessableEntity, "pod needs at least one container")
		return
	}
	pod.Metadata.Namespace = ns
	key := ns + "/" + pod.Metadata.Name
	s.mu.Lock()
	if _, dup := s.pods[key]; dup {
		s.mu.Unlock()
		writeStatus(w, http.StatusConflict, fmt.Sprintf("pods %q already exists", pod.Metadata.Name))
		return
	}
	s.nextUID++
	pod.APIVersion, pod.Kind = "v1", "Pod"
	pod.Metadata.UID = fmt.Sprintf("uid-%d", s.nextUID)
	pod.Metadata.CreationTimestamp = time.Now().UTC().Format(time.RFC3339)
	if pod.Status.Phase == "" {
		pod.Status.Phase = kubeclient.PodPending
	}
	s.pods[key] = pod
	s.broadcastLocked(kubeclient.WatchAdded, pod)
	autoRun := s.autoRun
	s.mu.Unlock()
	if autoRun > 0 {
		name := pod.Metadata.Name
		time.AfterFunc(autoRun, func() { _ = s.SetPodPhase(ns, name, kubeclient.PodRunning) })
	}
	writeJSON(w, http.StatusCreated, pod)
}

func (s *Server) getPod(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("ns") + "/" + r.PathValue("name")
	s.mu.Lock()
	pod, ok := s.pods[key]
	s.mu.Unlock()
	if !ok {
		writeStatus(w, http.StatusNotFound, fmt.Sprintf("pods %q not found", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, pod)
}

func (s *Server) deletePod(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("ns") + "/" + r.PathValue("name")
	s.mu.Lock()
	pod, ok := s.pods[key]
	if ok {
		delete(s.pods, key)
		s.broadcastLocked(kubeclient.WatchDeleted, pod)
	}
	s.mu.Unlock()
	if !ok {
		writeStatus(w, http.StatusNotFound, fmt.Sprintf("pods %q not found", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, kubeclient.Status{Kind: "Status", Message: "deleted", Code: 200})
}
