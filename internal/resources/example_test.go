package resources_test

import (
	"fmt"

	"hta/internal/resources"
)

func ExampleParse() {
	v, err := resources.Parse("cores=2,memory=4096,disk=100")
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output: 2.000c 4096MB 100MB-disk
}

func ExampleVector_DivCeil() {
	demand := resources.New(7, 20000, 0) // 7 cores, ~20 GB
	node := resources.New(3, 12288, 100000)
	n, err := demand.DivCeil(node)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d nodes needed\n", n)
	// Output: 3 nodes needed
}
