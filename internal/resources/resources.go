// Package resources provides the resource vectors used throughout the
// stack: CPU (millicores), memory (MB) and disk (MB). The same vector
// type describes task requirements, worker capacities, node
// allocatables and aggregate supply/demand accounting, mirroring the
// (cores, memory, disk) triples of Work Queue and Kubernetes.
package resources

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Vector is a (CPU, memory, disk) resource amount. CPU is in
// millicores (1000 = one core) as in Kubernetes; memory and disk are
// in megabytes. Vectors may be negative in intermediate accounting
// (e.g. shortage = demand - supply).
type Vector struct {
	MilliCPU int64 // 1000 = 1 core
	MemoryMB int64
	DiskMB   int64
}

// Zero is the empty resource vector.
var Zero = Vector{}

// Cores builds a vector with only whole cores set.
func Cores(n float64) Vector { return Vector{MilliCPU: int64(n * 1000)} }

// New builds a vector from cores, memory MB and disk MB.
func New(cores float64, memMB, diskMB int64) Vector {
	return Vector{MilliCPU: int64(cores * 1000), MemoryMB: memMB, DiskMB: diskMB}
}

// CoresValue returns the CPU amount in cores as a float.
func (v Vector) CoresValue() float64 { return float64(v.MilliCPU) / 1000 }

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	return Vector{v.MilliCPU + w.MilliCPU, v.MemoryMB + w.MemoryMB, v.DiskMB + w.DiskMB}
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	return Vector{v.MilliCPU - w.MilliCPU, v.MemoryMB - w.MemoryMB, v.DiskMB - w.DiskMB}
}

// Scale returns v with every component multiplied by n.
func (v Vector) Scale(n int64) Vector {
	return Vector{v.MilliCPU * n, v.MemoryMB * n, v.DiskMB * n}
}

// Max returns the component-wise maximum of v and w.
func (v Vector) Max(w Vector) Vector {
	return Vector{max64(v.MilliCPU, w.MilliCPU), max64(v.MemoryMB, w.MemoryMB), max64(v.DiskMB, w.DiskMB)}
}

// Min returns the component-wise minimum of v and w.
func (v Vector) Min(w Vector) Vector {
	return Vector{min64(v.MilliCPU, w.MilliCPU), min64(v.MemoryMB, w.MemoryMB), min64(v.DiskMB, w.DiskMB)}
}

// ClampNonNegative returns v with negative components set to zero.
func (v Vector) ClampNonNegative() Vector { return v.Max(Zero) }

// Fits reports whether v fits within capacity w on every dimension.
func (v Vector) Fits(w Vector) bool {
	return v.MilliCPU <= w.MilliCPU && v.MemoryMB <= w.MemoryMB && v.DiskMB <= w.DiskMB
}

// IsZero reports whether every component is zero.
func (v Vector) IsZero() bool { return v == Zero }

// IsNonNegative reports whether every component is >= 0.
func (v Vector) IsNonNegative() bool {
	return v.MilliCPU >= 0 && v.MemoryMB >= 0 && v.DiskMB >= 0
}

// IsPositive reports whether every component is > 0.
func (v Vector) IsPositive() bool {
	return v.MilliCPU > 0 && v.MemoryMB > 0 && v.DiskMB > 0
}

// AnyPositive reports whether any component is > 0.
func (v Vector) AnyPositive() bool {
	return v.MilliCPU > 0 || v.MemoryMB > 0 || v.DiskMB > 0
}

// DivCeil returns the smallest n such that v fits into n copies of
// unit, considering each dimension; it is the number of unit-sized
// workers needed to cover demand v. A zero unit dimension with a
// positive demand on that dimension returns an error.
func (v Vector) DivCeil(unit Vector) (int, error) {
	n := 0
	dims := [][2]int64{
		{v.MilliCPU, unit.MilliCPU},
		{v.MemoryMB, unit.MemoryMB},
		{v.DiskMB, unit.DiskMB},
	}
	for _, d := range dims {
		need, per := d[0], d[1]
		if need <= 0 {
			continue
		}
		if per <= 0 {
			return 0, fmt.Errorf("resources: demand %d on dimension with zero unit capacity", need)
		}
		k := int((need + per - 1) / per)
		if k > n {
			n = k
		}
	}
	return n, nil
}

// String renders the vector as "2.000c 4096MB 10240MB-disk".
func (v Vector) String() string {
	return fmt.Sprintf("%.3fc %dMB %dMB-disk", v.CoresValue(), v.MemoryMB, v.DiskMB)
}

// Parse parses a vector from a compact spec like
// "cores=2,memory=4096,disk=1024". Missing fields default to zero.
// Cores may be fractional ("cores=0.5") or millicores ("cpu=500m").
func Parse(s string) (Vector, error) {
	var v Vector
	s = strings.TrimSpace(s)
	if s == "" {
		return v, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Zero, fmt.Errorf("resources: malformed field %q (want key=value)", part)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "cores", "cpu":
			m, err := parseCPU(val)
			if err != nil {
				return Zero, err
			}
			v.MilliCPU = m
		case "memory", "mem":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Zero, fmt.Errorf("resources: bad memory %q: %v", val, err)
			}
			v.MemoryMB = n
		case "disk":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Zero, fmt.Errorf("resources: bad disk %q: %v", val, err)
			}
			v.DiskMB = n
		default:
			return Zero, fmt.Errorf("resources: unknown field %q", key)
		}
	}
	return v, nil
}

func parseCPU(val string) (int64, error) {
	if strings.HasSuffix(val, "m") {
		n, err := strconv.ParseInt(strings.TrimSuffix(val, "m"), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("resources: bad millicores %q: %v", val, err)
		}
		return n, nil
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("resources: bad cores %q: %v", val, err)
	}
	return int64(f * 1000), nil
}

// ErrInsufficient is returned by Pool.Acquire when the request does
// not fit the available resources.
var ErrInsufficient = errors.New("resources: insufficient resources")

// Pool tracks capacity and in-use amounts for an allocatable entity
// (a worker, a node). The zero Pool has zero capacity.
type Pool struct {
	capacity Vector
	used     Vector
}

// NewPool returns a Pool with the given capacity.
func NewPool(capacity Vector) *Pool {
	p := MakePool(capacity)
	return &p
}

// MakePool returns a Pool value with the given capacity, for callers
// that embed the pool instead of pointing at a separate allocation.
func MakePool(capacity Vector) Pool {
	if !capacity.IsNonNegative() {
		panic(fmt.Sprintf("resources: negative pool capacity %v", capacity))
	}
	return Pool{capacity: capacity}
}

// Capacity returns the pool's total capacity.
func (p *Pool) Capacity() Vector { return p.capacity }

// Used returns the amount currently acquired.
func (p *Pool) Used() Vector { return p.used }

// Available returns capacity minus used.
func (p *Pool) Available() Vector { return p.capacity.Sub(p.used) }

// CanFit reports whether v could be acquired now.
func (p *Pool) CanFit(v Vector) bool { return p.used.Add(v).Fits(p.capacity) }

// Acquire reserves v from the pool, or returns ErrInsufficient.
func (p *Pool) Acquire(v Vector) error {
	if !v.IsNonNegative() {
		return fmt.Errorf("resources: acquire of negative vector %v", v)
	}
	if !p.CanFit(v) {
		return fmt.Errorf("%w: need %v, available %v", ErrInsufficient, v, p.Available())
	}
	p.used = p.used.Add(v)
	return nil
}

// Release returns v to the pool. Releasing more than is in use is a
// programming error and panics.
func (p *Pool) Release(v Vector) {
	u := p.used.Sub(v)
	if !u.IsNonNegative() {
		panic(fmt.Sprintf("resources: release %v exceeds used %v", v, p.used))
	}
	p.used = u
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
