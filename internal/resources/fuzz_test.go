package resources

import "testing"

// FuzzParse ensures the resource-spec parser never panics and that
// accepted specs render and stay non-negative when inputs are.
func FuzzParse(f *testing.F) {
	f.Add("cores=2,memory=4096,disk=100")
	f.Add("cpu=500m")
	f.Add(" mem=8 , disk=9 ")
	f.Add("cores=0.25")
	f.Add(",,,")
	f.Add("cores==1")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			return
		}
		_ = v.String()
		// Round-trip arithmetic identities hold for any parsed value.
		if v.Add(Zero) != v || v.Sub(Zero) != v {
			t.Fatalf("identity broken for %q -> %v", s, v)
		}
	})
}
