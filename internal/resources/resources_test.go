package resources

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genVector makes quick generate bounded, well-behaved vectors.
func genVector(r *rand.Rand, bound int64) Vector {
	return Vector{
		MilliCPU: r.Int63n(bound),
		MemoryMB: r.Int63n(bound),
		DiskMB:   r.Int63n(bound),
	}
}

type boundedVec Vector

func (boundedVec) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(boundedVec(genVector(r, 1<<20)))
}

func TestArithmetic(t *testing.T) {
	a := New(2, 4096, 100)
	b := New(0.5, 1024, 50)
	if got := a.Add(b); got != New(2.5, 5120, 150) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != New(1.5, 3072, 50) {
		t.Errorf("Sub = %v", got)
	}
	if got := b.Scale(3); got != New(1.5, 3072, 150) {
		t.Errorf("Scale = %v", got)
	}
}

func TestFits(t *testing.T) {
	cap := New(3, 12288, 100000)
	if !New(1, 4096, 0).Fits(cap) {
		t.Error("small should fit")
	}
	if New(4, 1, 1).Fits(cap) {
		t.Error("cpu overflow should not fit")
	}
	if New(1, 20000, 1).Fits(cap) {
		t.Error("memory overflow should not fit")
	}
	if !cap.Fits(cap) {
		t.Error("exact fit should fit")
	}
}

func TestPredicates(t *testing.T) {
	if !Zero.IsZero() || !Zero.IsNonNegative() || Zero.IsPositive() || Zero.AnyPositive() {
		t.Error("Zero predicates wrong")
	}
	v := Vector{MilliCPU: -1, MemoryMB: 5}
	if v.IsNonNegative() {
		t.Error("negative cpu should not be non-negative")
	}
	if !v.AnyPositive() {
		t.Error("AnyPositive should see memory")
	}
	if !v.ClampNonNegative().IsNonNegative() {
		t.Error("clamp failed")
	}
	if v.ClampNonNegative().MemoryMB != 5 {
		t.Error("clamp must not touch positive components")
	}
}

func TestDivCeil(t *testing.T) {
	unit := New(3, 12288, 100000)
	cases := []struct {
		demand Vector
		want   int
	}{
		{Zero, 0},
		{New(1, 1, 1), 1},
		{New(3, 1, 1), 1},
		{New(3.001, 1, 1), 2},
		{New(60, 1, 1), 20},
		{New(1, 13000, 1), 2},       // memory-bound
		{Vector{MilliCPU: -500}, 0}, // negative demand needs nothing
		{New(2, 24576, 150000), 2},  // max across dimensions
	}
	for _, c := range cases {
		got, err := c.demand.DivCeil(unit)
		if err != nil {
			t.Fatalf("DivCeil(%v) error: %v", c.demand, err)
		}
		if got != c.want {
			t.Errorf("DivCeil(%v) = %d, want %d", c.demand, got, c.want)
		}
	}
	if _, err := New(1, 0, 0).DivCeil(Vector{MemoryMB: 10}); err == nil {
		t.Error("DivCeil with zero-capacity dimension should error")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Vector
		ok   bool
	}{
		{"", Zero, true},
		{"cores=2,memory=4096,disk=100", New(2, 4096, 100), true},
		{"cpu=500m", Vector{MilliCPU: 500}, true},
		{"cores=0.25", Vector{MilliCPU: 250}, true},
		{" mem=8 , disk=9 ", Vector{MemoryMB: 8, DiskMB: 9}, true},
		{"bogus=1", Zero, false},
		{"cores", Zero, false},
		{"cores=abc", Zero, false},
		{"memory=1.5", Zero, false},
		{"cpu=12xm", Zero, false},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.ok && err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("Parse(%q) should fail", c.in)
			}
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseRoundTripValues(t *testing.T) {
	v := New(1.5, 2048, 512)
	if v.String() != "1.500c 2048MB 512MB-disk" {
		t.Errorf("String = %q", v.String())
	}
}

func TestPool(t *testing.T) {
	p := NewPool(New(3, 12288, 1000))
	if err := p.Acquire(New(2, 4096, 100)); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if got := p.Available(); got != New(1, 8192, 900) {
		t.Errorf("Available = %v", got)
	}
	err := p.Acquire(New(2, 1, 1))
	if !errors.Is(err, ErrInsufficient) {
		t.Errorf("over-acquire error = %v, want ErrInsufficient", err)
	}
	p.Release(New(2, 4096, 100))
	if !p.Used().IsZero() {
		t.Errorf("Used = %v after full release", p.Used())
	}
}

func TestPoolAcquireNegative(t *testing.T) {
	p := NewPool(New(3, 1, 1))
	if err := p.Acquire(Vector{MilliCPU: -5}); err == nil {
		t.Error("negative acquire should fail")
	}
}

func TestPoolOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(New(1, 1, 1)).Release(New(1, 0, 0))
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(Vector{MilliCPU: -1})
}

// Property: Add is commutative and associative; Sub inverts Add.
func TestPropertyAddSub(t *testing.T) {
	f := func(a, b, c boundedVec) bool {
		va, vb, vc := Vector(a), Vector(b), Vector(c)
		if va.Add(vb) != vb.Add(va) {
			return false
		}
		if va.Add(vb).Add(vc) != va.Add(vb.Add(vc)) {
			return false
		}
		return va.Add(vb).Sub(vb) == va
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Fits is reflexive and monotone under Add.
func TestPropertyFitsMonotone(t *testing.T) {
	f := func(a, b boundedVec) bool {
		va, vb := Vector(a), Vector(b)
		if !va.Fits(va) {
			return false
		}
		// a fits a+b always (b non-negative by construction).
		return va.Fits(va.Add(vb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DivCeil(unit) copies of unit always cover the demand.
func TestPropertyDivCeilCovers(t *testing.T) {
	f := func(a boundedVec, c1, c2, c3 uint16) bool {
		demand := Vector(a)
		unit := Vector{int64(c1) + 1, int64(c2) + 1, int64(c3) + 1}
		n, err := demand.DivCeil(unit)
		if err != nil {
			return false
		}
		if !demand.Fits(unit.Scale(int64(n))) {
			return false
		}
		// Minimality: n-1 copies must not cover (when n > 0).
		if n > 0 && demand.Fits(unit.Scale(int64(n-1))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: pool conservation — used + available == capacity after
// any sequence of successful acquires/releases.
func TestPropertyPoolConservation(t *testing.T) {
	f := func(reqs []boundedVec) bool {
		capacity := New(1000, 1<<21, 1<<21)
		p := NewPool(capacity)
		var held []Vector
		for i, rq := range reqs {
			v := Vector(rq)
			if i%3 == 2 && len(held) > 0 {
				p.Release(held[len(held)-1])
				held = held[:len(held)-1]
				continue
			}
			if p.Acquire(v) == nil {
				held = append(held, v)
			}
			if p.Used().Add(p.Available()) != capacity {
				return false
			}
			if !p.Used().IsNonNegative() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	a, b := New(1, 100, 5), New(2, 50, 5)
	if a.Max(b) != New(2, 100, 5) {
		t.Errorf("Max = %v", a.Max(b))
	}
	if a.Min(b) != New(1, 50, 5) {
		t.Errorf("Min = %v", a.Min(b))
	}
}

func TestCoresHelpers(t *testing.T) {
	if Cores(2.5).MilliCPU != 2500 {
		t.Errorf("Cores(2.5) = %v", Cores(2.5))
	}
	if New(1.25, 0, 0).CoresValue() != 1.25 {
		t.Errorf("CoresValue = %v", New(1.25, 0, 0).CoresValue())
	}
}
