package kubesim

import (
	"slices"
	"strings"

	"hta/internal/resources"
)

// This file retains the pre-index control-plane primitives verbatim.
// A cluster built with Config.NaiveScheduling routes every scheduling
// predicate and sweep through them, giving differential tests and
// benchmarks a reference whose decisions the indexed fast path must
// reproduce byte-for-byte: the naive forms recompute node occupancy by
// scanning the entire pod store and re-sort the node roster on every
// pass, which is exactly the O(pending × nodes × pods) behaviour the
// indexes remove.

// naiveNodeIsEmpty scans the whole pod store for a live pod bound to
// the node.
func (c *Cluster) naiveNodeIsEmpty(n *Node) bool {
	for _, p := range c.pods {
		if p.NodeName == n.Name && !p.Terminal() {
			return false
		}
	}
	return true
}

// naiveNodeFree recomputes the node's free capacity by subtracting
// every live bound pod's request from its allocatable.
func (c *Cluster) naiveNodeFree(n *Node) resources.Vector {
	free := n.Allocatable
	for _, q := range c.pods {
		if q.NodeName == n.Name && !q.Terminal() {
			free = free.Sub(q.Resources)
		}
	}
	return free
}

// naiveSortedNodes rebuilds and sorts the node roster from scratch.
func (c *Cluster) naiveSortedNodes() []*Node {
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	slices.SortFunc(out, func(a, b *Node) int {
		if c := a.CreatedAt.Compare(b.CreatedAt); c != 0 {
			return c
		}
		return strings.Compare(a.Name, b.Name)
	})
	return out
}

// naivePendingUnbound scans the whole pod store for Pending unbound
// pods, appending them to out.
func (c *Cluster) naivePendingUnbound(out []*Pod) []*Pod {
	for _, p := range c.pods {
		if p.Phase == PodPending && p.NodeName == "" {
			out = append(out, p)
		}
	}
	return out
}
