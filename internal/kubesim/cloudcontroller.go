package kubesim

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"hta/internal/resources"
)

// addNode registers a ready node with the API server.
func (c *Cluster) addNode() *Node {
	c.nodeSeq++
	now := c.eng.Now()
	n := &Node{
		Name:        fmt.Sprintf("node-%d", c.nodeSeq),
		Allocatable: c.cfg.NodeAllocatable,
		Ready:       true,
		CreatedAt:   now,
		ReadyAt:     now,
		Images:      make(map[string]bool),
		EmptySince:  now,
	}
	c.nodes[n.Name] = n
	c.nodeDirty = true
	c.recordEvent("node/"+n.Name, ReasonNodeReady, "node is ready")
	c.notifyNode(Added, n)
	return n
}

func (c *Cluster) removeNode(n *Node) {
	delete(c.nodes, n.Name)
	delete(c.podsByNode, n.Name)
	c.nodeDirty = true
	c.recordEvent("node/"+n.Name, ReasonNodeRemoved, "empty node removed")
	c.notifyNode(Deleted, n)
}

// cloudControllerOnce is the cloud-controller-manager / cluster-
// autoscaler loop: reserve machines for unschedulable pods (batched
// per loop iteration, so same-batch nodes share provisioning latency,
// matching the paper's observation in §IV-B) and release nodes that
// have been empty longer than ScaleDownDelay. Both sweeps share one
// node-roster snapshot per sync; the reference path re-sorts before
// the scale-down sweep, as the pre-index controller did.
func (c *Cluster) cloudControllerOnce() {
	nodes := c.sortedNodes()
	c.scaleUpForPending(nodes)
	if c.cfg.NaiveScheduling {
		nodes = c.naiveSortedNodes()
	}
	c.scaleDownEmpty(nodes)
}

func (c *Cluster) scaleUpForPending(nodes []*Node) {
	unsched := c.pendingScratch[:0]
	if c.cfg.NaiveScheduling {
		for _, p := range c.pods {
			if p.Phase == PodPending && p.NodeName == "" && p.UnschedulableSeen {
				// A node of the standard shape must be able to host the
				// pod at all, or provisioning would never help.
				if p.Resources.Fits(c.cfg.NodeAllocatable) {
					unsched = append(unsched, p)
				}
			}
		}
	} else {
		for _, p := range c.pendingPods {
			if p.UnschedulableSeen && p.Resources.Fits(c.cfg.NodeAllocatable) {
				unsched = append(unsched, p)
			}
		}
	}
	// Deterministic queue order: the bin-packed node estimate below is
	// order-sensitive for mixed pod sizes.
	slices.SortFunc(unsched, func(a, b *Pod) int { return cmp.Compare(a.UID, b.UID) })
	c.pendingScratch = unsched
	defer c.releaseScratch(unsched)
	if len(unsched) == 0 {
		return
	}
	// Nodes already being reserved will absorb part of the pending
	// demand; only provision the remainder.
	needed := c.nodesNeededFor(nodes, unsched) - c.provisioning
	room := c.cfg.MaxNodes - len(c.nodes) - c.provisioning
	if needed > room {
		needed = room
	}
	if needed <= 0 {
		return
	}
	// One latency sample per batch: machines reserved together in the
	// same zone become ready at nearly the same time, so the wave is a
	// single batch event — one ready time, one heap settle — rather
	// than per-node timers with per-node jitter.
	base := c.rng.TruncNormal(
		c.cfg.ProvisionMean.Seconds(),
		c.cfg.ProvisionStdDev.Seconds(),
		c.cfg.ProvisionMin.Seconds(),
		c.cfg.ProvisionMean.Seconds()+10*c.cfg.ProvisionStdDev.Seconds(),
	)
	jitter := c.rng.Normal(0, 0.5)
	if jitter < 0 {
		jitter = -jitter
	}
	c.provisioning += needed
	c.recordEvent("cluster", ReasonScaleUp,
		fmt.Sprintf("reserving %d nodes (pending unschedulable pods: %d)", needed, len(unsched)))
	d := time.Duration((base + jitter) * float64(time.Second))
	c.eng.AfterBatchN(d, c.lane, "node-provision", needed, func() {
		c.provisioning--
		c.addNode()
	})
}

// nodesNeededFor first-fit packs the pending pods onto the free
// space of existing ready nodes (capacity the scheduler has not yet
// used, e.g. a node that just came up) and then onto hypothetical
// empty nodes of the configured shape, returning only the count of
// new nodes required.
func (c *Cluster) nodesNeededFor(nodes []*Node, pods []*Pod) int {
	var existing []resources.Vector
	for _, n := range nodes {
		if !n.Ready {
			continue
		}
		existing = append(existing, c.nodeFree(n))
	}
	var bins []resources.Vector // free space per hypothetical new node
	for _, p := range pods {
		placedExisting := false
		for i := range existing {
			if p.Resources.Fits(existing[i]) {
				existing[i] = existing[i].Sub(p.Resources)
				placedExisting = true
				break
			}
		}
		if placedExisting {
			continue
		}
		placed := false
		for i := range bins {
			if p.Resources.Fits(bins[i]) {
				bins[i] = bins[i].Sub(p.Resources)
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, c.cfg.NodeAllocatable.Sub(p.Resources))
		}
	}
	return len(bins)
}

func (c *Cluster) scaleDownEmpty(nodes []*Node) {
	now := c.eng.Now()
	for _, n := range nodes {
		if len(c.nodes)+c.provisioning <= c.cfg.MinNodes {
			return
		}
		if !n.Ready || n.EmptySince.IsZero() {
			continue
		}
		if now.Sub(n.EmptySince) < c.cfg.ScaleDownDelay {
			continue
		}
		if !c.nodeIsEmpty(n) {
			// Stale stamp; clear it.
			n.EmptySince = time.Time{}
			continue
		}
		c.recordEvent("cluster", ReasonScaleDown, "removing empty node "+n.Name)
		c.removeNode(n)
	}
}

// FailNode simulates an abrupt node loss (hardware failure): the node
// disappears from the fleet and every pod bound to it is killed, which
// informers observe as Deleted events with reason Killing. The cloud
// controller will re-provision on the next cycle if the dead pods'
// owners recreate them.
func (c *Cluster) FailNode(name string) error {
	return c.failNode(name, ReasonNodeFailure)
}

// PreemptNode simulates a cloud provider reclaiming a preemptible
// (spot) machine — mechanically identical to FailNode but recorded
// with reason Preempted so observers can distinguish reclaim storms
// from hardware faults.
func (c *Cluster) PreemptNode(name string) error {
	return c.failNode(name, ReasonPreempted)
}

func (c *Cluster) failNode(name, reason string) error {
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("kubesim: node %q not found", name)
	}
	var victims []string
	if c.cfg.NaiveScheduling {
		for _, p := range c.ListPods(nil) {
			if p.NodeName == name && !p.Terminal() {
				victims = append(victims, p.Name)
			}
		}
	} else {
		bound := make([]*Pod, 0, len(c.podsByNode[name]))
		for _, p := range c.podsByNode[name] {
			bound = append(bound, p)
		}
		slices.SortFunc(bound, func(a, b *Pod) int { return cmp.Compare(a.UID, b.UID) })
		for _, p := range bound {
			victims = append(victims, p.Name)
		}
	}
	for _, v := range victims {
		if err := c.DeletePod(v); err != nil {
			return err
		}
	}
	c.recordEvent("node/"+name, reason, fmt.Sprintf("node lost with %d pods", len(victims)))
	c.removeNode(n)
	return nil
}
