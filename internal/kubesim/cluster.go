package kubesim

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
)

// Config parameterizes the simulated cluster. Zero values take the
// defaults documented on each field, which are calibrated to the
// paper's GKE testbed (n1-standard-4 nodes with ~3 allocatable cores,
// provisioning latency ≈ N(157.4 s, 4.2 s) including image pull).
type Config struct {
	// InitialNodes is the number of nodes present at start
	// (default 3, the paper's minimum GKE cluster).
	InitialNodes int
	// MinNodes is the floor the cloud controller never scales below
	// (default 1).
	MinNodes int
	// MaxNodes is the resource quota (default 20, the paper's cap).
	MaxNodes int
	// NodeAllocatable is the per-node allocatable resource vector
	// (default 3 cores, 12 GB RAM, 100 GB disk — an n1-standard-4
	// after system reservations, matching the paper's "20 nodes, 60
	// cores").
	NodeAllocatable resources.Vector
	// ProvisionMean/ProvisionStdDev describe machine-reservation
	// latency (defaults 140 s and 4 s; with the control-plane loops,
	// image pull and container start this yields the ≈157 s
	// end-to-end initialization of Fig. 6).
	ProvisionMean   time.Duration
	ProvisionStdDev time.Duration
	// ProvisionMin bounds the truncated-normal sample from below
	// (default 30 s).
	ProvisionMin time.Duration
	// ImageSizesMB maps image names to sizes; unknown images use
	// DefaultImageSizeMB.
	ImageSizesMB map[string]float64
	// DefaultImageSizeMB is used for unlisted images (default 700).
	DefaultImageSizeMB float64
	// ImagePullMBps is the node's registry bandwidth (default 100).
	ImagePullMBps float64
	// ContainerStartDelay is the time from image-present to Running
	// (default 1 s).
	ContainerStartDelay time.Duration
	// PullBackoffBase/PullBackoffMax bound the kubelet's exponential
	// backoff between failed image-pull attempts (defaults 10 s and
	// 5 min, the kubelet's image backoff).
	PullBackoffBase time.Duration
	PullBackoffMax  time.Duration
	// SchedulerInterval is the binding loop period (default 1 s).
	SchedulerInterval time.Duration
	// AutoscalerInterval is the cloud-controller loop period
	// (default 10 s); scale-ups are batched at this granularity.
	AutoscalerInterval time.Duration
	// ScaleDownDelay is how long a node must stay empty before the
	// cloud controller removes it (default 10 min, GKE's default).
	ScaleDownDelay time.Duration
	// Seed drives all stochastic latencies.
	Seed int64
	// NaiveScheduling switches the control plane to the retained
	// reference implementations of the scheduling predicates and
	// sweeps (full pod-store scans, fresh node sorts per pass). The
	// decisions are identical to the indexed fast path; the flag
	// exists for differential tests and benchmark baselines.
	NaiveScheduling bool
}

func (c Config) withDefaults() Config {
	if c.InitialNodes == 0 {
		c.InitialNodes = 3
	}
	if c.MinNodes == 0 {
		c.MinNodes = 1
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 20
	}
	if c.NodeAllocatable.IsZero() {
		c.NodeAllocatable = resources.New(3, 12288, 100000)
	}
	if c.ProvisionMean == 0 {
		c.ProvisionMean = 140 * time.Second
	}
	if c.ProvisionStdDev == 0 {
		c.ProvisionStdDev = 4 * time.Second
	}
	if c.ProvisionMin == 0 {
		c.ProvisionMin = 30 * time.Second
	}
	if c.DefaultImageSizeMB == 0 {
		c.DefaultImageSizeMB = 700
	}
	if c.ImagePullMBps == 0 {
		c.ImagePullMBps = 100
	}
	if c.ContainerStartDelay == 0 {
		c.ContainerStartDelay = time.Second
	}
	if c.PullBackoffBase == 0 {
		c.PullBackoffBase = 10 * time.Second
	}
	if c.PullBackoffMax == 0 {
		c.PullBackoffMax = 5 * time.Minute
	}
	if c.SchedulerInterval == 0 {
		c.SchedulerInterval = time.Second
	}
	if c.AutoscalerInterval == 0 {
		c.AutoscalerInterval = 10 * time.Second
	}
	if c.ScaleDownDelay == 0 {
		c.ScaleDownDelay = 10 * time.Minute
	}
	return c
}

// Cluster is the simulated control plane plus node fleet. All methods
// must be called from the owning goroutine (engine callbacks or the
// code driving the engine); the simulation is single-threaded.
type Cluster struct {
	eng  *simclock.Engine
	lane simclock.Lane // engine lane for controller batches
	cfg  Config
	rng  *simclock.RNG

	pods         map[string]*Pod
	nodes        map[string]*Node
	services     map[string]*Service
	statefulsets map[string]*StatefulSet

	// Incremental scheduling indexes. podsByNode holds the live
	// (non-terminal) pods bound to each node; podsByLabel holds every
	// stored pod under each of its label pairs (labels are immutable
	// after CreatePod); pendingPods holds Pending pods not yet bound.
	// nodeList caches the age-sorted node roster and is invalidated on
	// node add/remove. The naive reference path (Config.NaiveScheduling)
	// ignores all four and rescans the stores.
	podsByNode  map[string]map[string]*Pod
	podsByLabel map[string]map[string]*Pod
	pendingPods map[string]*Pod
	nodeList    []*Node
	nodeDirty   bool

	pendingScratch []*Pod // reused by scheduleOnce/scaleUpForPending

	uid     int64
	nodeSeq int

	events       []Event
	podHandlers  []func(PodWatchEvent)
	nodeHandlers []func(NodeWatchEvent)

	tickers      []*simclock.Ticker
	schedTicker  *simclock.Ticker
	provisioning int                 // node count currently being reserved
	pulls        map[string][]func() // node/image -> waiters
	pullFault    func(node, image string, attempt int) PullFault
	stopped      bool
}

// NewCluster builds a cluster with cfg.InitialNodes ready nodes and
// starts the scheduler and cloud-controller loops on eng.
func NewCluster(eng *simclock.Engine, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		eng:          eng,
		lane:         eng.NewLane("kubesim"),
		cfg:          cfg,
		rng:          simclock.NewRNG(cfg.Seed),
		pods:         make(map[string]*Pod),
		nodes:        make(map[string]*Node),
		services:     make(map[string]*Service),
		statefulsets: make(map[string]*StatefulSet),
		podsByNode:   make(map[string]map[string]*Pod),
		podsByLabel:  make(map[string]map[string]*Pod),
		pendingPods:  make(map[string]*Pod),
		pulls:        make(map[string][]func()),
	}
	for i := 0; i < cfg.InitialNodes; i++ {
		c.addNode()
	}
	c.schedTicker = eng.Every(cfg.SchedulerInterval, "kube-scheduler", c.scheduleOnce)
	c.tickers = append(c.tickers,
		c.schedTicker,
		eng.Every(cfg.AutoscalerInterval, "cloud-controller", c.cloudControllerOnce),
	)
	return c
}

// Stop cancels all control loops; the cluster becomes inert so the
// discrete-event engine can drain.
func (c *Cluster) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	for _, t := range c.tickers {
		t.Stop()
	}
}

// Config returns the effective configuration (defaults applied).
func (c *Cluster) Config() Config { return c.cfg }

// SetSchedulerSlowdown stretches the binding-loop period to factor
// times the configured interval — the gray degradation of a scheduler
// that still works, just slowly. Factor 1 (or less) restores the
// configured cadence; the wait restarts from now either way.
func (c *Cluster) SetSchedulerSlowdown(factor float64) {
	if c.stopped || c.schedTicker == nil {
		return
	}
	if factor < 1 {
		factor = 1
	}
	c.schedTicker.Reset(time.Duration(float64(c.cfg.SchedulerInterval) * factor))
}

// SetNaiveScheduling switches the control plane between the indexed
// read paths and the retained naive reference forms at runtime. Index
// maintenance is unconditional, so the switch is valid at any point in
// a cluster's life; benchmarks use it to build large fixtures with the
// indexed paths before timing the naive ones.
func (c *Cluster) SetNaiveScheduling(naive bool) { c.cfg.NaiveScheduling = naive }

// Clock returns the cluster's simulation clock.
func (c *Cluster) Clock() simclock.Clock { return c.eng }

// Engine returns the underlying discrete-event engine.
func (c *Cluster) Engine() *simclock.Engine { return c.eng }

// --- event plumbing ---

func (c *Cluster) recordEvent(object, reason, message string) {
	c.events = append(c.events, Event{
		Time:    c.eng.Now(),
		Object:  object,
		Reason:  reason,
		Message: message,
	})
}

// RecordEvent appends a controller-authored event to the cluster's
// event log, the way an operator posts Events against the objects it
// manages (kubectl describe visibility). HTA uses it to surface
// crash-recovery activity: reattached workers, adopted pods,
// reconcile corrections.
func (c *Cluster) RecordEvent(object, reason, message string) {
	c.recordEvent(object, reason, message)
}

// Events returns the full control-plane event log.
func (c *Cluster) Events() []Event { return append([]Event(nil), c.events...) }

// EventsFor returns the events whose object matches exactly (e.g.
// "pod/wq-worker-3") — the per-object view kubectl describe shows.
func (c *Cluster) EventsFor(object string) []Event {
	var out []Event
	for _, ev := range c.events {
		if ev.Object == object {
			out = append(out, ev)
		}
	}
	return out
}

// OnPod registers an informer-style handler for pod watch events.
func (c *Cluster) OnPod(h func(PodWatchEvent)) { c.podHandlers = append(c.podHandlers, h) }

// OnNode registers an informer-style handler for node watch events.
func (c *Cluster) OnNode(h func(NodeWatchEvent)) { c.nodeHandlers = append(c.nodeHandlers, h) }

func (c *Cluster) notifyPod(t WatchEventType, p *Pod, reason string) {
	ev := PodWatchEvent{Type: t, Pod: p.DeepCopy(), Reason: reason}
	for _, h := range c.podHandlers {
		h(ev)
	}
}

func (c *Cluster) notifyNode(t WatchEventType, n *Node) {
	ev := NodeWatchEvent{Type: t, Node: n.DeepCopy()}
	for _, h := range c.nodeHandlers {
		h(ev)
	}
}

// --- pod API ---

// CreatePod submits a pod to the API server. The pod starts Pending
// and is bound by the scheduler loop.
func (c *Cluster) CreatePod(spec PodSpec) (Pod, error) {
	if spec.Name == "" {
		return Pod{}, fmt.Errorf("kubesim: pod with empty name")
	}
	if _, dup := c.pods[spec.Name]; dup {
		return Pod{}, fmt.Errorf("kubesim: pod %q already exists", spec.Name)
	}
	if !spec.Resources.IsNonNegative() {
		return Pod{}, fmt.Errorf("kubesim: pod %q has negative resource requests %v", spec.Name, spec.Resources)
	}
	c.uid++
	labels := make(map[string]string, len(spec.Labels))
	for k, v := range spec.Labels {
		labels[k] = v
	}
	p := &Pod{
		Name:      spec.Name,
		UID:       c.uid,
		Image:     spec.Image,
		Resources: spec.Resources,
		Labels:    labels,
		Phase:     PodPending,
		CreatedAt: c.eng.Now(),
		usage:     spec.Usage,
	}
	c.pods[spec.Name] = p
	c.indexPod(p)
	c.notifyPod(Added, p, "")
	return p.DeepCopy(), nil
}

// labelKey composes the podsByLabel index key for one label pair.
func labelKey(k, v string) string { return k + "\x00" + v }

// indexPod registers a freshly stored pod in the label and pending
// indexes. Pod labels are immutable after creation, so membership only
// changes at create/delete time.
func (c *Cluster) indexPod(p *Pod) {
	for k, v := range p.Labels {
		key := labelKey(k, v)
		m := c.podsByLabel[key]
		if m == nil {
			m = make(map[string]*Pod)
			c.podsByLabel[key] = m
		}
		m[p.Name] = p
	}
	if p.Phase == PodPending && p.NodeName == "" {
		c.pendingPods[p.Name] = p
	}
}

// unindexPod removes a pod from the label and pending indexes at
// deletion time.
func (c *Cluster) unindexPod(p *Pod) {
	for k, v := range p.Labels {
		key := labelKey(k, v)
		if m := c.podsByLabel[key]; m != nil {
			delete(m, p.Name)
			if len(m) == 0 {
				delete(c.podsByLabel, key)
			}
		}
	}
	delete(c.pendingPods, p.Name)
}

// release removes a formerly live, bound pod from its node's
// incremental accounting. Callers invoke it exactly once, at the
// pod's live→terminal (or live→deleted) transition.
func (c *Cluster) release(p *Pod) {
	if p.NodeName == "" {
		return
	}
	if n, ok := c.nodes[p.NodeName]; ok {
		n.Allocated = n.Allocated.Sub(p.Resources)
		n.livePods--
	}
	if m := c.podsByNode[p.NodeName]; m != nil {
		delete(m, p.Name)
		if len(m) == 0 {
			delete(c.podsByNode, p.NodeName)
		}
	}
}

// selectorBucket returns the smallest label-index bucket covering a
// non-empty selector; every pod matching the selector is in it. A nil
// return means no stored pod matches.
func (c *Cluster) selectorBucket(selector map[string]string) map[string]*Pod {
	var smallest map[string]*Pod
	for k, v := range selector {
		m := c.podsByLabel[labelKey(k, v)]
		if len(m) == 0 {
			return nil
		}
		if smallest == nil || len(m) < len(smallest) {
			smallest = m
		}
	}
	return smallest
}

// DeletePod removes a pod. A running pod is killed (its node is freed
// immediately); informers see a Deleted event with reason Killing.
func (c *Cluster) DeletePod(name string) error {
	p, ok := c.pods[name]
	if !ok {
		return fmt.Errorf("kubesim: pod %q not found", name)
	}
	reason := ""
	if p.Phase == PodRunning || (p.Phase == PodPending && p.NodeName != "") {
		reason = ReasonKilling
		c.recordEvent("pod/"+name, ReasonKilling, "stopping container")
	}
	c.unbind(p)
	c.unindexPod(p)
	delete(c.pods, name)
	c.notifyPod(Deleted, p, reason)
	return nil
}

// MarkPodSucceeded transitions a running pod to Succeeded — the
// graceful exit of a drained worker. The node is freed.
func (c *Cluster) MarkPodSucceeded(name string) error {
	p, ok := c.pods[name]
	if !ok {
		return fmt.Errorf("kubesim: pod %q not found", name)
	}
	if p.Phase != PodRunning {
		return fmt.Errorf("kubesim: pod %q is %s, not Running", name, p.Phase)
	}
	p.Phase = PodSucceeded
	p.FinishedAt = c.eng.Now()
	c.release(p)
	c.freeNodeOf(p)
	c.recordEvent("pod/"+name, ReasonCompleted, "container exited 0")
	c.notifyPod(Modified, p, ReasonCompleted)
	return nil
}

// GetPod returns a copy of the named pod.
func (c *Cluster) GetPod(name string) (Pod, bool) {
	p, ok := c.pods[name]
	if !ok {
		return Pod{}, false
	}
	return p.DeepCopy(), true
}

// ListPods returns copies of all pods matching the selector (nil
// selects everything), sorted by creation then name. With a non-empty
// selector the lookup walks only the smallest matching label bucket
// instead of the whole store.
func (c *Cluster) ListPods(selector map[string]string) []Pod {
	var out []Pod
	if len(selector) == 0 || c.cfg.NaiveScheduling {
		for _, p := range c.pods {
			if p.MatchesSelector(selector) {
				out = append(out, p.DeepCopy())
			}
		}
	} else {
		for _, p := range c.selectorBucket(selector) {
			if p.MatchesSelector(selector) {
				out = append(out, p.DeepCopy())
			}
		}
	}
	slices.SortFunc(out, func(a, b Pod) int { return cmp.Compare(a.UID, b.UID) })
	return out
}

// --- node accessors ---

// Nodes returns copies of all nodes sorted by name sequence.
func (c *Cluster) Nodes() []Node {
	nodes := c.sortedNodes()
	out := make([]Node, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.DeepCopy())
	}
	return out
}

// ReadyNodes returns the number of ready nodes.
func (c *Cluster) ReadyNodes() int {
	n := 0
	for _, node := range c.nodes {
		if node.Ready {
			n++
		}
	}
	return n
}

// NodeCount returns ready plus provisioning node count.
func (c *Cluster) NodeCount() int { return len(c.nodes) + c.provisioning }

// ReadyNodeNames returns the names of ready nodes in scheduler order
// (creation time, then name) — a deterministic roster for fault
// injectors picking victims.
func (c *Cluster) ReadyNodeNames() []string {
	nodes := c.sortedNodes()
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n.Ready {
			out = append(out, n.Name)
		}
	}
	return out
}

// PodsOnNode returns the count of non-terminal pods bound to the node.
func (c *Cluster) PodsOnNode(name string) int {
	if c.cfg.NaiveScheduling {
		n := 0
		for _, p := range c.pods {
			if p.NodeName == name && !p.Terminal() {
				n++
			}
		}
		return n
	}
	return len(c.podsByNode[name])
}

// TotalAllocatable returns the summed allocatable of ready nodes.
func (c *Cluster) TotalAllocatable() resources.Vector {
	var v resources.Vector
	for _, n := range c.nodes {
		if n.Ready {
			v = v.Add(n.Allocatable)
		}
	}
	return v
}

// --- services & statefulsets ---

// CreateService stores a service object.
func (c *Cluster) CreateService(s Service) error {
	if s.Name == "" {
		return fmt.Errorf("kubesim: service with empty name")
	}
	if _, dup := c.services[s.Name]; dup {
		return fmt.Errorf("kubesim: service %q already exists", s.Name)
	}
	cp := s
	c.services[s.Name] = &cp
	return nil
}

// GetService returns the named service.
func (c *Cluster) GetService(name string) (Service, bool) {
	s, ok := c.services[name]
	if !ok {
		return Service{}, false
	}
	return *s, true
}

// CreateStatefulSet stores the set and creates its pods with sticky
// identities name-0 .. name-(replicas-1). If a member pod is later
// deleted, the controller recreates it with the same identity.
func (c *Cluster) CreateStatefulSet(ss StatefulSet) error {
	if ss.Name == "" {
		return fmt.Errorf("kubesim: statefulset with empty name")
	}
	if _, dup := c.statefulsets[ss.Name]; dup {
		return fmt.Errorf("kubesim: statefulset %q already exists", ss.Name)
	}
	cp := ss
	c.statefulsets[ss.Name] = &cp
	c.reconcileStatefulSet(&cp)
	return nil
}

// DeleteStatefulSet removes the set and all its member pods.
func (c *Cluster) DeleteStatefulSet(name string) error {
	ss, ok := c.statefulsets[name]
	if !ok {
		return fmt.Errorf("kubesim: statefulset %q not found", name)
	}
	delete(c.statefulsets, name)
	for i := 0; i < ss.Replicas; i++ {
		podName := fmt.Sprintf("%s-%d", ss.Name, i)
		if _, ok := c.pods[podName]; ok {
			if err := c.DeletePod(podName); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Cluster) reconcileStatefulSet(ss *StatefulSet) {
	for i := 0; i < ss.Replicas; i++ {
		podName := fmt.Sprintf("%s-%d", ss.Name, i)
		if _, ok := c.pods[podName]; ok {
			continue
		}
		spec := ss.Template
		spec.Name = podName
		labels := make(map[string]string, len(ss.Template.Labels)+1)
		for k, v := range ss.Template.Labels {
			labels[k] = v
		}
		labels["statefulset"] = ss.Name
		spec.Labels = labels
		// Creation cannot fail: name is free and template was
		// accepted at CreateStatefulSet time.
		if _, err := c.CreatePod(spec); err != nil {
			c.recordEvent("statefulset/"+ss.Name, "FailedCreate", err.Error())
		}
	}
}

// --- metrics ---

// PodUsage returns the pod's instantaneous usage, or zero if it has
// no reporter or is not running.
func (c *Cluster) PodUsage(name string) resources.Vector {
	p, ok := c.pods[name]
	if !ok || p.Phase != PodRunning || p.usage == nil {
		return resources.Zero
	}
	return p.usage()
}

// AvgCPUUtilization returns the mean CPU utilization (used/requested)
// across running pods matching the selector, and the number of pods
// considered. Pods without usage reporters count as zero usage, as a
// metrics server would report an idle container.
func (c *Cluster) AvgCPUUtilization(selector map[string]string) (float64, int) {
	var usedMilli, reqMilli int64
	n := 0
	sample := func(p *Pod) {
		if !p.MatchesSelector(selector) || p.Phase != PodRunning {
			return
		}
		n++
		reqMilli += p.Resources.MilliCPU
		if p.usage != nil {
			usedMilli += p.usage().MilliCPU
		}
	}
	if len(selector) == 0 || c.cfg.NaiveScheduling {
		for _, p := range c.pods {
			sample(p)
		}
	} else {
		for _, p := range c.selectorBucket(selector) {
			sample(p)
		}
	}
	if reqMilli == 0 {
		return 0, n
	}
	return float64(usedMilli) / float64(reqMilli), n
}

// UsedCPUCores returns the instantaneous CPU consumption summed over
// all running pods, in cores.
func (c *Cluster) UsedCPUCores() float64 {
	var used int64
	for _, p := range c.pods {
		if p.Phase == PodRunning && p.usage != nil {
			used += p.usage().MilliCPU
		}
	}
	return float64(used) / 1000
}
