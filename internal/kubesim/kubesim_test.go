package kubesim

import (
	"strings"
	"testing"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func newTestCluster(t *testing.T, cfg Config) (*simclock.Engine, *Cluster) {
	t.Helper()
	eng := simclock.NewEngine(t0)
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	c := NewCluster(eng, cfg)
	t.Cleanup(c.Stop)
	return eng, c
}

func smallPod(name string) PodSpec {
	return PodSpec{
		Name:      name,
		Image:     "wq-worker",
		Resources: resources.New(1, 1024, 100),
		Labels:    map[string]string{"app": "worker"},
	}
}

func TestInitialNodes(t *testing.T) {
	_, c := newTestCluster(t, Config{InitialNodes: 3})
	if got := c.ReadyNodes(); got != 3 {
		t.Fatalf("ReadyNodes = %d, want 3", got)
	}
	if got := c.TotalAllocatable(); got != resources.New(9, 36864, 300000) {
		t.Errorf("TotalAllocatable = %v", got)
	}
}

func TestPodScheduleAndRun(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1})
	if _, err := c.CreatePod(smallPod("w1")); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(30 * time.Second)
	p, ok := c.GetPod("w1")
	if !ok {
		t.Fatal("pod vanished")
	}
	if p.Phase != PodRunning {
		t.Fatalf("phase = %s, want Running", p.Phase)
	}
	if p.NodeName == "" || p.ScheduledAt.IsZero() || p.RunningAt.IsZero() {
		t.Errorf("lifecycle fields not set: %+v", p)
	}
	if !p.PulledImage {
		t.Error("first pod on node should have pulled the image")
	}
	if p.UnschedulableSeen {
		t.Error("pod fit immediately; no FailedScheduling expected")
	}
	// Startup = schedule (≤1s) + pull (700MB @ 100MB/s ≈ 7s ± 5%) + start 1s.
	startup := p.RunningAt.Sub(p.CreatedAt)
	if startup < 7*time.Second || startup > 12*time.Second {
		t.Errorf("startup took %v, want ≈8-9s", startup)
	}
}

func TestImageCachedSecondPod(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1})
	c.CreatePod(smallPod("w1"))
	eng.RunFor(30 * time.Second)
	c.CreatePod(smallPod("w2"))
	eng.RunFor(10 * time.Second)
	p, _ := c.GetPod("w2")
	if p.Phase != PodRunning {
		t.Fatalf("w2 phase = %s", p.Phase)
	}
	if p.PulledImage {
		t.Error("second pod on node should reuse cached image")
	}
	// Startup bounded by schedule interval + start delay.
	if startup := p.RunningAt.Sub(p.CreatedAt); startup > 3*time.Second {
		t.Errorf("cached startup = %v, want ≤3s", startup)
	}
}

func TestConcurrentPullsDeduplicated(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1})
	c.CreatePod(smallPod("w1"))
	c.CreatePod(smallPod("w2"))
	eng.RunFor(30 * time.Second)
	pulls := 0
	for _, ev := range c.Events() {
		if ev.Reason == ReasonPulling {
			pulls++
		}
	}
	if pulls != 1 {
		t.Errorf("Pulling events = %d, want 1 (deduplicated)", pulls)
	}
	for _, name := range []string{"w1", "w2"} {
		if p, _ := c.GetPod(name); p.Phase != PodRunning {
			t.Errorf("%s phase = %s", name, p.Phase)
		}
	}
}

func TestUnschedulableTriggersScaleUp(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1, MaxNodes: 5})
	// Node-sized pods; the single node takes one, the second must wait
	// for provisioning.
	spec := smallPod("big1")
	spec.Resources = c.Config().NodeAllocatable
	c.CreatePod(spec)
	spec.Name = "big2"
	c.CreatePod(spec)
	eng.RunFor(400 * time.Second)

	p2, _ := c.GetPod("big2")
	if p2.Phase != PodRunning {
		t.Fatalf("big2 phase = %s", p2.Phase)
	}
	if !p2.UnschedulableSeen {
		t.Error("big2 should have seen FailedScheduling")
	}
	if c.ReadyNodes() != 2 {
		t.Errorf("ReadyNodes = %d, want 2", c.ReadyNodes())
	}
	// Initialization time ≈ autoscaler delay (≤10s) + provisioning
	// (~150s) + pull (~7s) + start (1s): the paper's ≈157s regime.
	init := p2.RunningAt.Sub(p2.CreatedAt)
	if init < 120*time.Second || init > 200*time.Second {
		t.Errorf("init time = %v, want ≈160s", init)
	}
	var sawFailed, sawScaleUp bool
	for _, ev := range c.Events() {
		if ev.Reason == ReasonFailedScheduling && ev.Object == "pod/big2" {
			sawFailed = true
		}
		if ev.Reason == ReasonScaleUp {
			sawScaleUp = true
		}
	}
	if !sawFailed || !sawScaleUp {
		t.Errorf("events missing: FailedScheduling=%v ScaleUp=%v", sawFailed, sawScaleUp)
	}
}

func TestMaxNodesQuota(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1, MaxNodes: 3})
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		spec := smallPod(n)
		spec.Resources = c.Config().NodeAllocatable
		c.CreatePod(spec)
	}
	eng.RunFor(20 * time.Minute)
	if got := c.ReadyNodes(); got != 3 {
		t.Errorf("ReadyNodes = %d, want quota 3", got)
	}
	running := 0
	for _, p := range c.ListPods(nil) {
		if p.Phase == PodRunning {
			running++
		}
	}
	if running != 3 {
		t.Errorf("running pods = %d, want 3", running)
	}
}

func TestScaleDownRemovesEmptyNodes(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1, MaxNodes: 4, MinNodes: 1, ScaleDownDelay: 2 * time.Minute})
	spec := smallPod("big")
	spec.Resources = c.Config().NodeAllocatable
	c.CreatePod(spec)
	spec.Name = "big2"
	c.CreatePod(spec)
	eng.RunFor(300 * time.Second)
	if c.ReadyNodes() != 2 {
		t.Fatalf("ReadyNodes = %d, want 2 after scale-up", c.ReadyNodes())
	}
	// Free both nodes; after the delay the cluster shrinks to MinNodes.
	c.DeletePod("big")
	c.DeletePod("big2")
	eng.RunFor(5 * time.Minute)
	if got := c.ReadyNodes(); got != 1 {
		t.Errorf("ReadyNodes = %d, want MinNodes 1", got)
	}
}

func TestNodeNotRemovedWhileOccupied(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 2, MinNodes: 1, ScaleDownDelay: time.Minute})
	c.CreatePod(smallPod("w1"))
	eng.RunFor(10 * time.Minute)
	p, _ := c.GetPod("w1")
	if p.Phase != PodRunning {
		t.Fatalf("w1 phase = %s", p.Phase)
	}
	// The empty node was removed, the occupied one kept.
	if got := c.ReadyNodes(); got != 1 {
		t.Errorf("ReadyNodes = %d, want 1", got)
	}
	if _, ok := c.GetPod("w1"); !ok {
		t.Error("pod evicted")
	}
}

func TestDeletePodFreesNodeImmediately(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1})
	spec := smallPod("big")
	spec.Resources = c.Config().NodeAllocatable
	c.CreatePod(spec)
	eng.RunFor(30 * time.Second)
	c.DeletePod("big")
	spec.Name = "big2"
	c.CreatePod(spec)
	eng.RunFor(30 * time.Second)
	p, _ := c.GetPod("big2")
	if p.Phase != PodRunning {
		t.Errorf("big2 phase = %s, want Running on freed node", p.Phase)
	}
	if p.UnschedulableSeen {
		t.Error("big2 should have been schedulable immediately")
	}
}

func TestMarkPodSucceeded(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1})
	c.CreatePod(smallPod("w1"))
	eng.RunFor(30 * time.Second)
	if err := c.MarkPodSucceeded("w1"); err != nil {
		t.Fatal(err)
	}
	p, _ := c.GetPod("w1")
	if p.Phase != PodSucceeded || p.FinishedAt.IsZero() {
		t.Errorf("pod = %+v", p)
	}
	if err := c.MarkPodSucceeded("w1"); err == nil {
		t.Error("double MarkPodSucceeded should fail")
	}
	if err := c.MarkPodSucceeded("nope"); err == nil {
		t.Error("unknown pod should fail")
	}
}

func TestCreatePodValidation(t *testing.T) {
	_, c := newTestCluster(t, Config{})
	if _, err := c.CreatePod(PodSpec{Name: ""}); err == nil {
		t.Error("empty name should fail")
	}
	c.CreatePod(smallPod("dup"))
	if _, err := c.CreatePod(smallPod("dup")); err == nil {
		t.Error("duplicate should fail")
	}
	bad := smallPod("neg")
	bad.Resources = resources.Vector{MilliCPU: -1}
	if _, err := c.CreatePod(bad); err == nil {
		t.Error("negative resources should fail")
	}
	if err := c.DeletePod("nope"); err == nil {
		t.Error("deleting unknown pod should fail")
	}
}

func TestPodWatchEventSequence(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1})
	var reasons []string
	c.OnPod(func(ev PodWatchEvent) {
		if ev.Pod.Name != "w1" {
			return
		}
		key := string(ev.Type)
		if ev.Reason != "" {
			key += "/" + ev.Reason
		}
		reasons = append(reasons, key)
	})
	c.CreatePod(smallPod("w1"))
	eng.RunFor(30 * time.Second)
	c.DeletePod("w1")
	want := []string{"ADDED", "MODIFIED/Scheduled", "MODIFIED/Pulling", "MODIFIED/Pulled", "MODIFIED/Started", "DELETED/Killing"}
	if strings.Join(reasons, ",") != strings.Join(want, ",") {
		t.Errorf("event sequence = %v, want %v", reasons, want)
	}
}

func TestStatefulSetStickyIdentity(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 2})
	err := c.CreateStatefulSet(StatefulSet{
		Name:     "wq-master",
		Replicas: 1,
		Template: PodSpec{Image: "wq-master", Resources: resources.New(1, 2048, 1000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(30 * time.Second)
	p, ok := c.GetPod("wq-master-0")
	if !ok || p.Phase != PodRunning {
		t.Fatalf("master pod = %+v ok=%v", p, ok)
	}
	if p.Labels["statefulset"] != "wq-master" {
		t.Errorf("labels = %v", p.Labels)
	}
	// Kill it; the controller recreates the same identity.
	c.DeletePod("wq-master-0")
	eng.RunFor(30 * time.Second)
	p, ok = c.GetPod("wq-master-0")
	if !ok || p.Phase != PodRunning {
		t.Errorf("master not recreated: %+v ok=%v", p, ok)
	}
	if err := c.DeleteStatefulSet("wq-master"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetPod("wq-master-0"); ok {
		t.Error("member pod not deleted with the set")
	}
	if err := c.DeleteStatefulSet("wq-master"); err == nil {
		t.Error("double delete should fail")
	}
}

func TestServiceStore(t *testing.T) {
	_, c := newTestCluster(t, Config{})
	if err := c.CreateService(Service{Name: "master", Selector: map[string]string{"app": "master"}, Port: 9123}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateService(Service{Name: "master"}); err == nil {
		t.Error("duplicate service should fail")
	}
	if _, ok := c.GetService("master"); !ok {
		t.Error("service not stored")
	}
	if err := c.CreateService(Service{}); err == nil {
		t.Error("empty name should fail")
	}
}

func TestUsageMetrics(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 2})
	spec := smallPod("w1")
	spec.Resources = resources.New(2, 1024, 100)
	spec.Usage = func() resources.Vector { return resources.New(1, 512, 0) }
	c.CreatePod(spec)
	eng.RunFor(30 * time.Second)
	util, n := c.AvgCPUUtilization(map[string]string{"app": "worker"})
	if n != 1 {
		t.Fatalf("pods considered = %d", n)
	}
	if util < 0.49 || util > 0.51 {
		t.Errorf("utilization = %v, want 0.5", util)
	}
	if got := c.UsedCPUCores(); got != 1 {
		t.Errorf("UsedCPUCores = %v", got)
	}
	if got := c.PodUsage("w1"); got != resources.New(1, 512, 0) {
		t.Errorf("PodUsage = %v", got)
	}
}

func TestSetPodUsage(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1})
	c.CreatePod(smallPod("w1"))
	eng.RunFor(30 * time.Second)
	if err := c.SetPodUsage("w1", func() resources.Vector { return resources.Cores(0.9) }); err != nil {
		t.Fatal(err)
	}
	util, _ := c.AvgCPUUtilization(map[string]string{"app": "worker"})
	if util < 0.89 || util > 0.91 {
		t.Errorf("utilization = %v, want 0.9", util)
	}
	if err := c.SetPodUsage("nope", nil); err == nil {
		t.Error("unknown pod should fail")
	}
}

func TestWorkerSetScalesUpAndDown(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 5})
	ws := NewWorkerSet(c, "workers", smallPod(""), 3)
	defer ws.Stop()
	eng.RunFor(30 * time.Second)
	if got := len(ws.LivePods()); got != 3 {
		t.Fatalf("live pods = %d, want 3", got)
	}
	ws.SetReplicas(5)
	eng.RunFor(30 * time.Second)
	if got := len(ws.LivePods()); got != 5 {
		t.Fatalf("live pods = %d, want 5", got)
	}
	ws.SetReplicas(2)
	eng.RunFor(time.Second)
	if got := len(ws.LivePods()); got != 2 {
		t.Fatalf("live pods = %d after scale-down, want 2", got)
	}
	if ws.Replicas() != 2 {
		t.Errorf("Replicas = %d", ws.Replicas())
	}
}

func TestWorkerSetDeletionPrefersPending(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1, MaxNodes: 1})
	spec := smallPod("")
	spec.Resources = c.Config().NodeAllocatable // one per node; only 1 can run
	ws := NewWorkerSet(c, "workers", spec, 2)
	defer ws.Stop()
	eng.RunFor(30 * time.Second)
	pods := ws.LivePods()
	if len(pods) != 2 {
		t.Fatalf("live = %d", len(pods))
	}
	var runningName string
	for _, p := range pods {
		if p.Phase == PodRunning {
			runningName = p.Name
		}
	}
	if runningName == "" {
		t.Fatal("no running pod")
	}
	ws.SetReplicas(1)
	eng.RunFor(time.Second)
	left := ws.LivePods()
	if len(left) != 1 || left[0].Name != runningName {
		t.Errorf("survivor = %v, want running pod %s", left, runningName)
	}
}

func TestWorkerSetGarbageCollectsSucceeded(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 3})
	ws := NewWorkerSet(c, "workers", smallPod(""), 2)
	defer ws.Stop()
	eng.RunFor(30 * time.Second)
	pods := ws.LivePods()
	c.MarkPodSucceeded(pods[0].Name)
	eng.RunFor(10 * time.Second)
	// GC removed the succeeded pod and the set replaced it.
	if _, ok := c.GetPod(pods[0].Name); ok {
		t.Error("succeeded pod not garbage-collected")
	}
	if got := len(ws.LivePods()); got != 2 {
		t.Errorf("live = %d, want 2", got)
	}
}

func TestNegativeReplicasClamped(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1})
	ws := NewWorkerSet(c, "workers", smallPod(""), 1)
	defer ws.Stop()
	eng.RunFor(20 * time.Second)
	ws.SetReplicas(-5)
	eng.RunFor(time.Second)
	if got := len(ws.LivePods()); got != 0 {
		t.Errorf("live = %d, want 0", got)
	}
}

func TestProvisioningLatencyDistribution(t *testing.T) {
	// Ten probe rounds: create an unsatisfiable pod, measure creation
	// → Running; the distribution must center near the configured
	// provisioning mean (Fig. 6's experiment).
	eng, c := newTestCluster(t, Config{InitialNodes: 1, MaxNodes: 30, Seed: 7})
	type probe struct {
		name string
		dur  time.Duration
	}
	var probes []probe
	node := c.Config().NodeAllocatable
	for i := 0; i < 10; i++ {
		name := "probe" + string(rune('a'+i))
		spec := PodSpec{Name: name, Image: "wq-worker", Resources: node}
		c.CreatePod(spec)
		eng.RunFor(6 * time.Minute)
		p, _ := c.GetPod(name)
		if p.Phase != PodRunning {
			t.Fatalf("probe %s phase = %s", name, p.Phase)
		}
		if i == 0 {
			// First probe fits the initial empty node: not an init
			// measurement.
			continue
		}
		probes = append(probes, probe{name, p.RunningAt.Sub(p.CreatedAt)})
	}
	var sum time.Duration
	for _, pr := range probes {
		if pr.dur < 100*time.Second || pr.dur > 220*time.Second {
			t.Errorf("probe %s init = %v, out of plausible range", pr.name, pr.dur)
		}
		sum += pr.dur
	}
	mean := sum / time.Duration(len(probes))
	if mean < 140*time.Second || mean > 185*time.Second {
		t.Errorf("mean init = %v, want ≈160s", mean)
	}
}

func TestStopQuiescesEngine(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1})
	c.CreatePod(smallPod("w1"))
	eng.RunFor(30 * time.Second)
	c.Stop()
	eng.Run() // must terminate: no live tickers remain
	if p, _ := c.GetPod("w1"); p.Phase != PodRunning {
		t.Errorf("pod disturbed by Stop: %s", p.Phase)
	}
}

func TestFailNodeKillsPodsAndRemovesNode(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 2, MaxNodes: 4})
	c.CreatePod(smallPod("w1"))
	c.CreatePod(smallPod("w2"))
	eng.RunFor(30 * time.Second)
	p1, _ := c.GetPod("w1")
	if p1.Phase != PodRunning {
		t.Fatalf("w1 = %s", p1.Phase)
	}
	var deleted []string
	c.OnPod(func(ev PodWatchEvent) {
		if ev.Type == Deleted {
			deleted = append(deleted, ev.Pod.Name)
		}
	})
	if err := c.FailNode(p1.NodeName); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetPod("w1"); ok {
		t.Error("pod on failed node still exists")
	}
	found := false
	for _, n := range c.Nodes() {
		if n.Name == p1.NodeName {
			found = true
		}
	}
	if found {
		t.Error("failed node still in fleet")
	}
	if len(deleted) == 0 {
		t.Error("no Deleted events observed")
	}
	if err := c.FailNode("ghost"); err == nil {
		t.Error("failing unknown node should error")
	}
}

func TestFailNodeTriggersReprovision(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1, MaxNodes: 3})
	spec := smallPod("big")
	spec.Resources = c.Config().NodeAllocatable
	c.CreatePod(spec)
	eng.RunFor(30 * time.Second)
	p, _ := c.GetPod("big")
	node := p.NodeName
	c.FailNode(node)
	// The owner recreates the pod (here: the test); the cloud
	// controller provisions a fresh node for it.
	spec.Name = "big2"
	c.CreatePod(spec)
	eng.RunFor(5 * time.Minute)
	p2, _ := c.GetPod("big2")
	if p2.Phase != PodRunning {
		t.Fatalf("replacement pod = %s", p2.Phase)
	}
	if p2.NodeName == node {
		t.Error("replacement landed on the failed node")
	}
}

func TestEventsFor(t *testing.T) {
	eng, c := newTestCluster(t, Config{InitialNodes: 1})
	c.CreatePod(smallPod("w1"))
	c.CreatePod(smallPod("w2"))
	eng.RunFor(30 * time.Second)
	evs := c.EventsFor("pod/w1")
	if len(evs) == 0 {
		t.Fatal("no events for pod/w1")
	}
	for _, ev := range evs {
		if ev.Object != "pod/w1" {
			t.Errorf("foreign event %v", ev)
		}
	}
	if got := c.EventsFor("pod/ghost"); got != nil {
		t.Errorf("ghost events = %v", got)
	}
}
