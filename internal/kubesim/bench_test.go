package kubesim

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"hta/internal/simclock"
)

// BenchmarkSchedulerSweep measures one scheduler pass over a cluster
// with 100 nodes and 300 pods.
func BenchmarkSchedulerSweep(b *testing.B) {
	eng := simclock.NewEngine(t0)
	c := NewCluster(eng, Config{InitialNodes: 100, MaxNodes: 100, Seed: 1})
	defer c.Stop()
	for i := 0; i < 300; i++ {
		c.CreatePod(smallPod(fmt.Sprintf("p%d", i)))
	}
	eng.RunFor(time.Minute) // bind + start everything
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.scheduleOnce()
	}
}

// benchChurnCluster builds the ISSUE's scheduling stress fixture: a
// 2000-node cluster with 4000 one-core resident pods bound across the
// first third of the fleet. The mass placement always runs with the
// indexed predicates — a naive mass pass at this scale takes minutes
// and is setup, not the thing measured — and the requested mode is
// restored before the churn rounds.
func benchChurnCluster(b *testing.B, naive bool) *Cluster {
	b.Helper()
	eng := simclock.NewEngine(t0)
	c := NewCluster(eng, Config{
		InitialNodes:    2000,
		MinNodes:        2000,
		MaxNodes:        2000,
		Seed:            1,
		NaiveScheduling: naive,
	})
	b.Cleanup(c.Stop)
	c.cfg.NaiveScheduling = false
	for i := 0; i < 4000; i++ {
		if _, err := c.CreatePod(smallPod(fmt.Sprintf("resident-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	c.scheduleOnce()
	if n := len(c.pendingPods); n != 0 {
		b.Fatalf("%d residents unschedulable after setup", n)
	}
	c.cfg.NaiveScheduling = naive
	return c
}

// churnRound deletes the 1000 pods bound to the lowest-indexed nodes,
// creates 1000 replacements and runs one scheduler pass. Victims come
// from the front of the first-fit order so the freed slots refill in a
// steady state round after round, keeping the round's cost dominated
// by the scheduling predicates rather than scan depth.
func churnRound(b *testing.B, c *Cluster, round int) {
	b.Helper()
	victims := make([]string, 0, 1000)
	for _, n := range c.sortedNodes() {
		if len(victims) == 1000 {
			break
		}
		bucket := make([]string, 0, len(c.podsByNode[n.Name]))
		for name := range c.podsByNode[n.Name] {
			bucket = append(bucket, name)
		}
		sort.Strings(bucket)
		for _, name := range bucket {
			if len(victims) == 1000 {
				break
			}
			victims = append(victims, name)
		}
	}
	for _, name := range victims {
		if err := c.DeletePod(name); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		if _, err := c.CreatePod(smallPod(fmt.Sprintf("churn-%d-%d", round, i))); err != nil {
			b.Fatal(err)
		}
	}
	c.scheduleOnce()
	if n := len(c.pendingPods); n != 0 {
		b.Fatalf("round %d: %d pods unschedulable", round, n)
	}
}

func benchKubesimChurn(b *testing.B, naive bool) {
	c := benchChurnCluster(b, naive)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 4; r++ {
			churnRound(b, c, i*4+r)
		}
	}
}

// BenchmarkKubesimSchedule measures the indexed control plane on the
// 2000-node cluster under 4000 pods of churn per iteration.
func BenchmarkKubesimSchedule(b *testing.B) { benchKubesimChurn(b, false) }

// BenchmarkKubesimScheduleNaive runs the identical churn with the
// retained naive predicates — the baseline for the speedup claim.
func BenchmarkKubesimScheduleNaive(b *testing.B) { benchKubesimChurn(b, true) }

// BenchmarkClusterLifecycle measures a complete scale-up/down cycle:
// 20 node-sized pods on a 3-node cluster growing to quota.
func BenchmarkClusterLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := simclock.NewEngine(t0)
		c := NewCluster(eng, Config{InitialNodes: 3, MaxNodes: 20, Seed: int64(i + 1)})
		for j := 0; j < 20; j++ {
			spec := smallPod(fmt.Sprintf("p%d", j))
			spec.Resources = c.Config().NodeAllocatable
			c.CreatePod(spec)
		}
		eng.RunFor(10 * time.Minute)
		if got := c.ReadyNodes(); got != 20 {
			b.Fatalf("nodes = %d", got)
		}
		c.Stop()
	}
}
