package kubesim

import (
	"fmt"
	"testing"
	"time"

	"hta/internal/simclock"
)

// BenchmarkSchedulerSweep measures one scheduler pass over a cluster
// with 100 nodes and 300 pods.
func BenchmarkSchedulerSweep(b *testing.B) {
	eng := simclock.NewEngine(t0)
	c := NewCluster(eng, Config{InitialNodes: 100, MaxNodes: 100, Seed: 1})
	defer c.Stop()
	for i := 0; i < 300; i++ {
		c.CreatePod(smallPod(fmt.Sprintf("p%d", i)))
	}
	eng.RunFor(time.Minute) // bind + start everything
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.scheduleOnce()
	}
}

// BenchmarkClusterLifecycle measures a complete scale-up/down cycle:
// 20 node-sized pods on a 3-node cluster growing to quota.
func BenchmarkClusterLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := simclock.NewEngine(t0)
		c := NewCluster(eng, Config{InitialNodes: 3, MaxNodes: 20, Seed: int64(i + 1)})
		for j := 0; j < 20; j++ {
			spec := smallPod(fmt.Sprintf("p%d", j))
			spec.Resources = c.Config().NodeAllocatable
			c.CreatePod(spec)
		}
		eng.RunFor(10 * time.Minute)
		if got := c.ReadyNodes(); got != 20 {
			b.Fatalf("nodes = %d", got)
		}
		c.Stop()
	}
}
