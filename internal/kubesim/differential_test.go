package kubesim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
)

// churnResult captures everything observable about a cluster run: the
// full control-plane event log (which embeds every bind, every
// FailedScheduling record, every scale-up/down and node loss in
// order), plus the final pod and node states.
type churnResult struct {
	events []Event
	pods   []Pod
	nodes  []Node
}

// runChurnScript drives a cluster through a seeded, randomized
// node/pod churn: mixed-size pod creation, deletions, graceful
// completions, chaos-style node preemptions and failures, image-pull
// faults, and a WorkerSet resizing under it. Every decision the script
// makes is derived from cluster state that the differential assertion
// proves identical, so the naive and indexed clusters replay the exact
// same operation sequence.
func runChurnScript(t *testing.T, seed int64, naive bool) churnResult {
	t.Helper()
	eng := simclock.NewEngine(t0)
	c := NewCluster(eng, Config{
		InitialNodes:    6,
		MinNodes:        2,
		MaxNodes:        14,
		Seed:            seed,
		NaiveScheduling: naive,
		ScaleDownDelay:  90 * time.Second,
	})
	defer c.Stop()
	// Deterministic pull fault: fails the first attempt for a slice of
	// node/image pairs, exercising the kubelet backoff path.
	c.SetPullFault(func(node, image string, attempt int) PullFault {
		if attempt == 1 && (len(node)+len(image))%5 == 0 {
			return PullFault{Fail: true}
		}
		return PullFault{}
	})
	ws := NewWorkerSet(c, "churn-ws", PodSpec{
		Image:     "wq-worker:latest",
		Resources: resources.New(1, 2048, 100),
		Labels:    map[string]string{"app": "worker"},
	}, 3)
	defer ws.Stop()

	rng := rand.New(rand.NewSource(seed))
	cpus := []float64{0.5, 1, 2, 3, 4} // 4 cores never fits a node
	mems := []int64{512, 2048, 4096}
	podN := 0
	for step := 0; step < 80; step++ {
		switch rng.Intn(6) {
		case 0, 1: // create a burst of mixed-size pods
			for i := rng.Intn(5); i >= 0; i-- {
				podN++
				spec := PodSpec{
					Name:      fmt.Sprintf("churn-%d", podN),
					Image:     fmt.Sprintf("img-%d", rng.Intn(3)),
					Resources: resources.New(cpus[rng.Intn(len(cpus))], mems[rng.Intn(len(mems))], 100),
					Labels:    map[string]string{"tier": fmt.Sprintf("t%d", rng.Intn(3))},
				}
				if _, err := c.CreatePod(spec); err != nil {
					t.Fatalf("create: %v", err)
				}
			}
		case 2: // delete a random pod
			if pods := c.ListPods(nil); len(pods) > 0 {
				_ = c.DeletePod(pods[rng.Intn(len(pods))].Name)
			}
		case 3: // gracefully complete a random running pod
			var run []Pod
			for _, p := range c.ListPods(nil) {
				if p.Phase == PodRunning {
					run = append(run, p)
				}
			}
			if len(run) > 0 {
				if err := c.MarkPodSucceeded(run[rng.Intn(len(run))].Name); err != nil {
					t.Fatalf("succeed: %v", err)
				}
			}
		case 4: // chaos: preempt or hard-fail a node
			if names := c.ReadyNodeNames(); len(names) > 2 {
				name := names[rng.Intn(len(names))]
				var err error
				if rng.Intn(2) == 0 {
					err = c.PreemptNode(name)
				} else {
					err = c.FailNode(name)
				}
				if err != nil {
					t.Fatalf("node loss: %v", err)
				}
			}
		case 5: // resize the worker set
			ws.SetReplicas(rng.Intn(8))
		}
		eng.RunFor(time.Duration(rng.Intn(25)+1) * time.Second)
	}
	eng.RunFor(5 * time.Minute)
	return churnResult{events: c.Events(), pods: c.ListPods(nil), nodes: c.Nodes()}
}

func diffEvents(t *testing.T, naive, indexed []Event) {
	t.Helper()
	n := len(naive)
	if len(indexed) < n {
		n = len(indexed)
	}
	for i := 0; i < n; i++ {
		if naive[i] != indexed[i] {
			t.Fatalf("event %d diverges:\n  naive:   %v\n  indexed: %v", i, naive[i], indexed[i])
		}
	}
	if len(naive) != len(indexed) {
		t.Fatalf("event count diverges: naive %d, indexed %d", len(naive), len(indexed))
	}
}

// TestDifferentialSchedulingIdentical pins the tentpole's contract:
// for fixed seeds, the indexed control plane reproduces the naive
// reference's bind sequence, event stream (FailedScheduling records
// included) and final state byte-for-byte across randomized churn with
// chaos-driven preemptions.
func TestDifferentialSchedulingIdentical(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			naive := runChurnScript(t, seed, true)
			indexed := runChurnScript(t, seed, false)
			diffEvents(t, naive.events, indexed.events)
			if len(naive.events) < 100 {
				t.Errorf("script too quiet: only %d events", len(naive.events))
			}
			if len(naive.pods) != len(indexed.pods) {
				t.Fatalf("pod count diverges: %d vs %d", len(naive.pods), len(indexed.pods))
			}
			for i := range naive.pods {
				a, b := naive.pods[i], indexed.pods[i]
				a.usage, b.usage = nil, nil
				if a.Name != b.Name || a.UID != b.UID || a.Phase != b.Phase ||
					a.NodeName != b.NodeName || !a.ScheduledAt.Equal(b.ScheduledAt) ||
					!a.FinishedAt.Equal(b.FinishedAt) || a.UnschedulableSeen != b.UnschedulableSeen {
					t.Fatalf("pod %d diverges:\n  naive:   %+v\n  indexed: %+v", i, a, b)
				}
			}
			if len(naive.nodes) != len(indexed.nodes) {
				t.Fatalf("node count diverges: %d vs %d", len(naive.nodes), len(indexed.nodes))
			}
			for i := range naive.nodes {
				a, b := naive.nodes[i], indexed.nodes[i]
				if a.Name != b.Name || a.Allocated != b.Allocated ||
					a.livePods != b.livePods || !a.EmptySince.Equal(b.EmptySince) {
					t.Fatalf("node %d diverges:\n  naive:   %+v\n  indexed: %+v", i, a, b)
				}
			}
		})
	}
}

// TestIndexInvariants replays churn on an indexed cluster and, at
// every step, cross-checks each incremental structure against a fresh
// naive recomputation from the pod store.
func TestIndexInvariants(t *testing.T) {
	eng := simclock.NewEngine(t0)
	c := NewCluster(eng, Config{InitialNodes: 4, MaxNodes: 10, Seed: 7, ScaleDownDelay: time.Minute})
	defer c.Stop()
	rng := rand.New(rand.NewSource(42))
	check := func(step int) {
		t.Helper()
		for _, n := range c.nodes {
			wantFree := c.naiveNodeFree(n)
			if got := n.Allocatable.Sub(n.Allocated); got != wantFree {
				t.Fatalf("step %d: node %s Allocated drift: free %v, naive %v", step, n.Name, got, wantFree)
			}
			live := 0
			for _, p := range c.pods {
				if p.NodeName == n.Name && !p.Terminal() {
					live++
				}
			}
			if n.livePods != live {
				t.Fatalf("step %d: node %s livePods %d, naive %d", step, n.Name, n.livePods, live)
			}
			if len(c.podsByNode[n.Name]) != live {
				t.Fatalf("step %d: node %s podsByNode size %d, naive %d", step, n.Name, len(c.podsByNode[n.Name]), live)
			}
			if c.nodeIsEmpty(n) != c.naiveNodeIsEmpty(n) {
				t.Fatalf("step %d: node %s emptiness disagrees", step, n.Name)
			}
		}
		pending := 0
		for _, p := range c.pods {
			if p.Phase == PodPending && p.NodeName == "" {
				pending++
				if c.pendingPods[p.Name] != p {
					t.Fatalf("step %d: pod %s missing from pending index", step, p.Name)
				}
			}
		}
		if len(c.pendingPods) != pending {
			t.Fatalf("step %d: pending index size %d, naive %d", step, len(c.pendingPods), pending)
		}
		for _, sel := range []map[string]string{
			{"tier": "t0"}, {"tier": "t1"}, {"tier": "t0", "app": "x"},
		} {
			got := c.ListPods(sel)
			var want []Pod
			for _, p := range c.ListPods(nil) {
				if p.MatchesSelector(sel) {
					want = append(want, p)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("step %d: ListPods(%v) size %d, naive %d", step, sel, len(got), len(want))
			}
			for i := range got {
				if got[i].Name != want[i].Name {
					t.Fatalf("step %d: ListPods(%v)[%d] = %s, naive %s", step, sel, i, got[i].Name, want[i].Name)
				}
			}
		}
		roster := c.sortedNodes()
		fresh := c.naiveSortedNodes()
		if len(roster) != len(fresh) {
			t.Fatalf("step %d: cached roster size %d, fresh %d", step, len(roster), len(fresh))
		}
		for i := range roster {
			if roster[i] != fresh[i] {
				t.Fatalf("step %d: roster[%d] = %s, fresh %s", step, i, roster[i].Name, fresh[i].Name)
			}
		}
	}
	podN := 0
	for step := 0; step < 60; step++ {
		switch rng.Intn(5) {
		case 0, 1:
			podN++
			_, err := c.CreatePod(PodSpec{
				Name:      fmt.Sprintf("inv-%d", podN),
				Image:     "img",
				Resources: resources.New(1, 2048, 100),
				Labels:    map[string]string{"tier": fmt.Sprintf("t%d", rng.Intn(2)), "app": "x"},
			})
			if err != nil {
				t.Fatal(err)
			}
		case 2:
			if pods := c.ListPods(nil); len(pods) > 0 {
				_ = c.DeletePod(pods[rng.Intn(len(pods))].Name)
			}
		case 3:
			var run []Pod
			for _, p := range c.ListPods(nil) {
				if p.Phase == PodRunning {
					run = append(run, p)
				}
			}
			if len(run) > 0 {
				_ = c.MarkPodSucceeded(run[rng.Intn(len(run))].Name)
			}
		case 4:
			if names := c.ReadyNodeNames(); len(names) > 1 {
				_ = c.PreemptNode(names[rng.Intn(len(names))])
			}
		}
		eng.RunFor(time.Duration(rng.Intn(15)+1) * time.Second)
		check(step)
	}
}
