package kubesim

import "time"

// kubeletStart drives a freshly bound pod through the node-local part
// of its lifecycle: pull the container image if the node does not
// have it ("No Container Image" in the paper's worker-pod lifecycle),
// then start the container after a short delay.
func (c *Cluster) kubeletStart(p *Pod, n *Node) {
	if n.Images[p.Image] {
		c.containerStart(p, n)
		return
	}
	p.PulledImage = true
	key := n.Name + "\x00" + p.Image
	if _, inflight := c.pulls[key]; inflight {
		c.pulls[key] = append(c.pulls[key], func() { c.containerStart(p, n) })
		return
	}
	c.pulls[key] = []func(){func() { c.containerStart(p, n) }}
	c.recordEvent("pod/"+p.Name, ReasonPulling, "pulling image "+p.Image)
	c.notifyPod(Modified, p, ReasonPulling)

	d := c.pullDuration(p.Image)
	c.eng.After(d, "kubelet-image-pull", func() {
		waiters := c.pulls[key]
		delete(c.pulls, key)
		if _, alive := c.nodes[n.Name]; !alive {
			return
		}
		n.Images[p.Image] = true
		c.recordEvent("node/"+n.Name, ReasonPulled, "pulled image "+p.Image)
		if cur, ok := c.pods[p.Name]; ok && cur == p && !p.Terminal() {
			c.notifyPod(Modified, p, ReasonPulled)
		}
		for _, w := range waiters {
			w()
		}
	})
}

func (c *Cluster) pullDuration(image string) time.Duration {
	size := c.cfg.DefaultImageSizeMB
	if s, ok := c.cfg.ImageSizesMB[image]; ok {
		size = s
	}
	secs := c.rng.Jitter(size/c.cfg.ImagePullMBps, 0.05)
	return time.Duration(secs * float64(time.Second))
}

// containerStart transitions the pod to Running after the container
// start delay, provided it is still bound and alive.
func (c *Cluster) containerStart(p *Pod, n *Node) {
	c.eng.After(c.cfg.ContainerStartDelay, "kubelet-container-start", func() {
		cur, ok := c.pods[p.Name]
		if !ok || cur != p || p.Terminal() || p.NodeName != n.Name {
			return
		}
		if _, alive := c.nodes[n.Name]; !alive {
			return
		}
		p.Phase = PodRunning
		p.RunningAt = c.eng.Now()
		c.recordEvent("pod/"+p.Name, ReasonStarted, "container started on "+n.Name)
		c.notifyPod(Modified, p, ReasonStarted)
	})
}
