package kubesim

import "time"

// PullFault is a fault injector's verdict on one image-pull attempt.
type PullFault struct {
	// Fail makes the attempt spend its full duration and then fail
	// (ErrImagePull); the kubelet retries with exponential backoff.
	Fail bool
	// Slowdown multiplies the attempt's duration when > 1 (registry
	// throttling, cold CDN edge).
	Slowdown float64
}

// SetPullFault installs a hook consulted once per image-pull attempt.
// Pass nil to remove it.
func (c *Cluster) SetPullFault(hook func(node, image string, attempt int) PullFault) {
	c.pullFault = hook
}

// kubeletStart drives a freshly bound pod through the node-local part
// of its lifecycle: pull the container image if the node does not
// have it ("No Container Image" in the paper's worker-pod lifecycle),
// then start the container after a short delay.
//
// Node.Allocated and the live-pod count were already charged at bind
// time (requests are reserved the moment the scheduler binds, exactly
// as kube-scheduler accounts them), so the Pulling→Started transitions
// below deliberately leave the incremental accounting untouched; the
// charge is reversed once, in Cluster.release, when the pod leaves the
// live set.
func (c *Cluster) kubeletStart(p *Pod, n *Node) {
	if n.Images[p.Image] {
		c.containerStart(p, n)
		return
	}
	p.PulledImage = true
	key := n.Name + "\x00" + p.Image
	if _, inflight := c.pulls[key]; inflight {
		c.pulls[key] = append(c.pulls[key], func() { c.containerStart(p, n) })
		return
	}
	c.pulls[key] = []func(){func() { c.containerStart(p, n) }}
	c.recordEvent("pod/"+p.Name, ReasonPulling, "pulling image "+p.Image)
	c.notifyPod(Modified, p, ReasonPulling)
	c.startPull(p, n, key, 1)
}

// startPull runs one image-pull attempt. A failed attempt (per the
// pull-fault hook) consumes its duration, records ErrImagePull and
// retries with exponential backoff, like a real kubelet's image
// backoff; waiters stay queued until an attempt succeeds.
func (c *Cluster) startPull(p *Pod, n *Node, key string, attempt int) {
	d := c.pullDuration(p.Image)
	var fault PullFault
	if c.pullFault != nil {
		fault = c.pullFault(n.Name, p.Image, attempt)
		if fault.Slowdown > 1 {
			d = time.Duration(float64(d) * fault.Slowdown)
		}
	}
	c.eng.After(d, "kubelet-image-pull", func() {
		if _, alive := c.nodes[n.Name]; !alive {
			delete(c.pulls, key)
			return
		}
		if fault.Fail {
			c.recordEvent("node/"+n.Name, ReasonPullFailed,
				"failed to pull image "+p.Image)
			backoff := c.cfg.PullBackoffBase
			for i := 1; i < attempt; i++ {
				backoff *= 2
				if backoff >= c.cfg.PullBackoffMax {
					backoff = c.cfg.PullBackoffMax
					break
				}
			}
			c.eng.After(backoff, "kubelet-pull-backoff", func() {
				if _, alive := c.nodes[n.Name]; !alive {
					delete(c.pulls, key)
					return
				}
				c.startPull(p, n, key, attempt+1)
			})
			return
		}
		waiters := c.pulls[key]
		delete(c.pulls, key)
		n.Images[p.Image] = true
		c.recordEvent("node/"+n.Name, ReasonPulled, "pulled image "+p.Image)
		if cur, ok := c.pods[p.Name]; ok && cur == p && !p.Terminal() {
			c.notifyPod(Modified, p, ReasonPulled)
		}
		for _, w := range waiters {
			w()
		}
	})
}

func (c *Cluster) pullDuration(image string) time.Duration {
	size := c.cfg.DefaultImageSizeMB
	if s, ok := c.cfg.ImageSizesMB[image]; ok {
		size = s
	}
	secs := c.rng.Jitter(size/c.cfg.ImagePullMBps, 0.05)
	return time.Duration(secs * float64(time.Second))
}

// containerStart transitions the pod to Running after the container
// start delay, provided it is still bound and alive.
func (c *Cluster) containerStart(p *Pod, n *Node) {
	c.eng.After(c.cfg.ContainerStartDelay, "kubelet-container-start", func() {
		cur, ok := c.pods[p.Name]
		if !ok || cur != p || p.Terminal() || p.NodeName != n.Name {
			return
		}
		if _, alive := c.nodes[n.Name]; !alive {
			return
		}
		p.Phase = PodRunning
		p.RunningAt = c.eng.Now()
		c.recordEvent("pod/"+p.Name, ReasonStarted, "container started on "+n.Name)
		c.notifyPod(Modified, p, ReasonStarted)
	})
}
