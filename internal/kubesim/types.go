// Package kubesim is a discrete-event simulation of the slice of
// Kubernetes that an HTC autoscaler interacts with: an API server
// holding Pods, Nodes, StatefulSets and Services with watchable
// lifecycle events; a scheduler that binds pods and emits
// Insufficient-Resource events; kubelets that pull images and start
// containers; and a cloud controller manager that reserves and
// releases nodes with realistic provisioning latency.
//
// The simulator reproduces the control-plane *behaviour* the paper
// measures on GKE (Fig. 6 and §V-B): pods created with requirements
// no node can satisfy stay Pending with a FailedScheduling event, the
// cloud controller reserves machines in batches, kubelets pull the
// container image on first use of a node, and the pod transitions to
// Running only after the full cycle — so a client watching pod events
// observes the same four-state lifecycle (No Available Node → No
// Container Image → Running → Stopped) the paper's informer cache
// tracks.
package kubesim

import (
	"fmt"
	"time"

	"hta/internal/resources"
)

// PodPhase is the lifecycle phase of a pod, mirroring Kubernetes.
type PodPhase string

// Pod phases.
const (
	PodPending   PodPhase = "Pending"
	PodRunning   PodPhase = "Running"
	PodSucceeded PodPhase = "Succeeded"
	PodFailed    PodPhase = "Failed"
)

// Event reasons emitted by the control plane.
const (
	ReasonFailedScheduling = "FailedScheduling" // no node with enough resources
	ReasonScheduled        = "Scheduled"
	ReasonPulling          = "Pulling"
	ReasonPulled           = "Pulled"
	ReasonStarted          = "Started"
	ReasonKilling          = "Killing"
	ReasonCompleted        = "Completed"
	ReasonNodeReady        = "NodeReady"
	ReasonNodeRemoved      = "NodeRemoved"
	ReasonScaleUp          = "TriggeredScaleUp"
	ReasonScaleDown        = "ScaleDown"
	ReasonNodeFailure      = "NodeFailure" // abrupt node loss (hardware)
	ReasonPreempted        = "Preempted"   // spot/preemptible reclaim
	ReasonPullFailed       = "ErrImagePull"
)

// Event is a timestamped control-plane event attached to an object.
type Event struct {
	Time    time.Time
	Object  string // "pod/NAME", "node/NAME", ...
	Reason  string
	Message string
}

func (e Event) String() string {
	return fmt.Sprintf("%s %s %s: %s", e.Time.Format("15:04:05"), e.Object, e.Reason, e.Message)
}

// PodSpec describes a pod to create.
type PodSpec struct {
	Name      string
	Image     string
	Resources resources.Vector // resource requests
	Labels    map[string]string
	// Usage, when non-nil, reports the pod's instantaneous resource
	// consumption; the metrics server uses it for HPA utilization.
	Usage func() resources.Vector
}

// Pod is the stored pod object. Clients receive copies.
type Pod struct {
	Name      string
	UID       int64
	Image     string
	Resources resources.Vector
	Labels    map[string]string

	Phase    PodPhase
	NodeName string

	CreatedAt   time.Time
	ScheduledAt time.Time // zero until bound
	RunningAt   time.Time // zero until started
	FinishedAt  time.Time // zero until terminal

	// UnschedulableSeen records that the scheduler failed to place
	// the pod at least once (the paper's "No Available Node" state).
	UnschedulableSeen bool
	// PulledImage records that the kubelet had to pull the image (the
	// paper's "No Container Image" state).
	PulledImage bool

	usage func() resources.Vector
}

// DeepCopy returns a copy safe to hand to clients.
func (p *Pod) DeepCopy() Pod {
	cp := *p
	cp.Labels = make(map[string]string, len(p.Labels))
	for k, v := range p.Labels {
		cp.Labels[k] = v
	}
	return cp
}

// MatchesSelector reports whether the pod's labels contain every
// key/value of sel.
func (p *Pod) MatchesSelector(sel map[string]string) bool {
	for k, v := range sel {
		if p.Labels[k] != v {
			return false
		}
	}
	return true
}

// Terminal reports whether the pod reached a terminal phase.
func (p *Pod) Terminal() bool { return p.Phase == PodSucceeded || p.Phase == PodFailed }

// Node is a cluster machine.
type Node struct {
	Name        string
	Allocatable resources.Vector
	// Allocated is the summed resource requests of live (non-terminal)
	// pods bound to the node, maintained incrementally on bind and
	// release so scheduling predicates never rescan the pod store.
	Allocated resources.Vector
	Ready     bool
	CreatedAt time.Time
	ReadyAt   time.Time
	// Images lists container images already present on the node.
	Images map[string]bool
	// EmptySince is the time the node last became free of pods; zero
	// while occupied.
	EmptySince time.Time

	// livePods counts the non-terminal pods bound to the node; kept in
	// lockstep with Allocated.
	livePods int
}

// DeepCopy returns a copy safe to hand to clients.
func (n *Node) DeepCopy() Node {
	cp := *n
	cp.Images = make(map[string]bool, len(n.Images))
	for k, v := range n.Images {
		cp.Images[k] = v
	}
	return cp
}

// Service is a named network endpoint selecting a set of pods. The
// simulation stores it for API fidelity; HTA creates one for the
// master pod as the paper's deployment does.
type Service struct {
	Name     string
	Selector map[string]string
	Port     int
}

// StatefulSet keeps a fixed number of pods with sticky identities
// (name-0, name-1, ...). The paper wraps the Work Queue master in a
// single-replica StatefulSet so a restarted master keeps its identity.
type StatefulSet struct {
	Name     string
	Replicas int
	Template PodSpec
}

// WatchEventType distinguishes watch notifications.
type WatchEventType string

// Watch event types.
const (
	Added    WatchEventType = "ADDED"
	Modified WatchEventType = "MODIFIED"
	Deleted  WatchEventType = "DELETED"
)

// PodWatchEvent is delivered to pod informers.
type PodWatchEvent struct {
	Type WatchEventType
	Pod  Pod
	// Reason carries the control-plane event reason that caused the
	// modification, when there is one.
	Reason string
}

// NodeWatchEvent is delivered to node informers.
type NodeWatchEvent struct {
	Type WatchEventType
	Node Node
}
