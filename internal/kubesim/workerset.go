package kubesim

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
)

// WorkerSet is a ReplicaSet-style controller: it keeps Replicas live
// pods created from a template. The HPA baseline scales worker pods
// through a WorkerSet, and — exactly as the paper criticizes — a
// scale-down deletes pods immediately, interrupting whatever jobs the
// corresponding workers are running. (HTA instead manages pod
// lifecycles directly and drains workers before removal.)
type WorkerSet struct {
	c        *Cluster
	name     string
	template PodSpec
	replicas int
	seq      int
	ticker   *simclock.Ticker
}

// workerSetReconcileInterval matches the kube-controller-manager's
// fast reconcile cadence.
const workerSetReconcileInterval = 5 * time.Second

// NewWorkerSet creates the controller and immediately reconciles to
// the requested replica count.
func NewWorkerSet(c *Cluster, name string, template PodSpec, replicas int) *WorkerSet {
	ws := &WorkerSet{c: c, name: name, template: template, replicas: replicas}
	ws.ticker = c.eng.Every(workerSetReconcileInterval, "workerset-"+name, ws.Reconcile)
	ws.Reconcile()
	return ws
}

// Stop halts reconciliation. Existing pods are left as they are.
func (ws *WorkerSet) Stop() { ws.ticker.Stop() }

// Selector returns the label selector matching this set's pods.
func (ws *WorkerSet) Selector() map[string]string {
	return map[string]string{"workerset": ws.name}
}

// Replicas returns the desired replica count.
func (ws *WorkerSet) Replicas() int { return ws.replicas }

// SetReplicas changes the desired count and reconciles immediately.
func (ws *WorkerSet) SetReplicas(n int) {
	if n < 0 {
		n = 0
	}
	ws.replicas = n
	ws.Reconcile()
}

// LivePods returns the set's non-terminal pods sorted by UID.
func (ws *WorkerSet) LivePods() []Pod {
	var out []Pod
	for _, p := range ws.c.ListPods(ws.Selector()) {
		if !p.Terminal() {
			out = append(out, p)
		}
	}
	return out
}

// Reconcile creates or deletes pods to match the desired count. The
// periodic sync lists through the cluster's label index, so its cost
// scales with this set's pod count rather than the whole store.
func (ws *WorkerSet) Reconcile() {
	pods := ws.c.ListPods(ws.Selector())
	var live []Pod
	for _, p := range pods {
		if p.Terminal() {
			// Garbage-collect finished pods.
			_ = ws.c.DeletePod(p.Name)
			continue
		}
		live = append(live, p)
	}
	switch {
	case len(live) < ws.replicas:
		for i := len(live); i < ws.replicas; i++ {
			ws.createPod()
		}
	case len(live) > ws.replicas:
		victims := ws.deletionOrder(live)
		for i := 0; i < len(live)-ws.replicas; i++ {
			_ = ws.c.DeletePod(victims[i].Name)
		}
	}
}

func (ws *WorkerSet) createPod() {
	for {
		ws.seq++
		name := fmt.Sprintf("%s-%d", ws.name, ws.seq)
		if _, exists := ws.c.GetPod(name); exists {
			continue
		}
		spec := ws.template
		spec.Name = name
		labels := make(map[string]string, len(ws.template.Labels)+1)
		for k, v := range ws.template.Labels {
			labels[k] = v
		}
		labels["workerset"] = ws.name
		spec.Labels = labels
		if _, err := ws.c.CreatePod(spec); err != nil {
			ws.c.recordEvent("workerset/"+ws.name, "FailedCreate", err.Error())
		}
		return
	}
}

// deletionOrder ranks pods for removal: not-yet-running pods first
// (cheapest to kill), then newest running pods — the default
// ReplicaSet victim ordering.
func (ws *WorkerSet) deletionOrder(live []Pod) []Pod {
	out := append([]Pod(nil), live...)
	rank := func(p Pod) int {
		if p.Phase == PodPending {
			return 0
		}
		return 1
	}
	slices.SortFunc(out, func(a, b Pod) int {
		if c := cmp.Compare(rank(a), rank(b)); c != 0 {
			return c
		}
		return cmp.Compare(b.UID, a.UID) // newest first
	})
	return out
}

// SetPodUsage attaches a usage reporter to an existing pod so the
// metrics server can observe its consumption. The glue layer calls
// this once it has spawned the worker process for the pod.
func (c *Cluster) SetPodUsage(name string, fn func() resources.Vector) error {
	p, ok := c.pods[name]
	if !ok {
		return fmt.Errorf("kubesim: pod %q not found", name)
	}
	p.usage = fn
	return nil
}
