package kubesim

import (
	"fmt"
	"sort"
	"time"
)

// nodeIsEmpty reports whether no live pod is bound to the node.
func (c *Cluster) nodeIsEmpty(n *Node) bool {
	for _, p := range c.pods {
		if p.NodeName == n.Name && !p.Terminal() {
			return false
		}
	}
	return true
}

// freeNodeOf updates the hosting node's emptiness stamp after a pod
// stopped consuming it.
func (c *Cluster) freeNodeOf(p *Pod) {
	if p.NodeName == "" {
		return
	}
	n, ok := c.nodes[p.NodeName]
	if !ok {
		return
	}
	if c.nodeIsEmpty(n) {
		n.EmptySince = c.eng.Now()
	}
}

// unbind terminates a pod (if live) and updates node accounting. The
// caller is responsible for store removal and notifications.
func (c *Cluster) unbind(p *Pod) {
	if !p.Terminal() {
		p.Phase = PodFailed
		p.FinishedAt = c.eng.Now()
	}
	c.freeNodeOf(p)
}

// scheduleOnce is the kube-scheduler sync loop: bind pending pods to
// ready nodes with sufficient free resources, first-fit in node-age
// order; emit FailedScheduling for pods that cannot be placed. The
// controller-manager's StatefulSet reconciliation piggybacks on the
// same loop.
func (c *Cluster) scheduleOnce() {
	for _, ss := range c.statefulsets {
		c.reconcileStatefulSet(ss)
	}

	var pending []*Pod
	for _, p := range c.pods {
		if p.Phase == PodPending && p.NodeName == "" {
			pending = append(pending, p)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].UID < pending[j].UID })

	nodes := c.sortedNodes()
	for _, p := range pending {
		placed := false
		for _, n := range nodes {
			if !n.Ready {
				continue
			}
			if c.fitsOnNode(p, n) {
				c.bind(p, n)
				placed = true
				break
			}
		}
		if !placed && !p.UnschedulableSeen {
			p.UnschedulableSeen = true
			c.recordEvent("pod/"+p.Name, ReasonFailedScheduling,
				fmt.Sprintf("0/%d nodes are available: Insufficient resources (request %v)", len(nodes), p.Resources))
			c.notifyPod(Modified, p, ReasonFailedScheduling)
		}
	}
}

func (c *Cluster) sortedNodes() []*Node {
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func (c *Cluster) fitsOnNode(p *Pod, n *Node) bool {
	free := n.Allocatable
	for _, q := range c.pods {
		if q.NodeName == n.Name && !q.Terminal() {
			free = free.Sub(q.Resources)
		}
	}
	return p.Resources.Fits(free)
}

func (c *Cluster) bind(p *Pod, n *Node) {
	p.NodeName = n.Name
	p.ScheduledAt = c.eng.Now()
	n.EmptySince = time.Time{}
	c.recordEvent("pod/"+p.Name, ReasonScheduled, "bound to "+n.Name)
	c.notifyPod(Modified, p, ReasonScheduled)
	c.kubeletStart(p, n)
}
