package kubesim

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"hta/internal/resources"
)

// nodeIsEmpty reports whether no live pod is bound to the node.
func (c *Cluster) nodeIsEmpty(n *Node) bool {
	if c.cfg.NaiveScheduling {
		return c.naiveNodeIsEmpty(n)
	}
	return n.livePods == 0
}

// nodeFree returns the node's unallocated capacity.
func (c *Cluster) nodeFree(n *Node) resources.Vector {
	if c.cfg.NaiveScheduling {
		return c.naiveNodeFree(n)
	}
	return n.Allocatable.Sub(n.Allocated)
}

// freeNodeOf updates the hosting node's emptiness stamp after a pod
// stopped consuming it.
func (c *Cluster) freeNodeOf(p *Pod) {
	if p.NodeName == "" {
		return
	}
	n, ok := c.nodes[p.NodeName]
	if !ok {
		return
	}
	if c.nodeIsEmpty(n) {
		n.EmptySince = c.eng.Now()
	}
}

// unbind terminates a pod (if live) and updates node accounting. The
// caller is responsible for store removal and notifications.
func (c *Cluster) unbind(p *Pod) {
	if !p.Terminal() {
		p.Phase = PodFailed
		p.FinishedAt = c.eng.Now()
		c.release(p)
	}
	c.freeNodeOf(p)
}

// pendingUnbound returns the Pending, not-yet-bound pods in UID order,
// reusing the cluster's scratch slice.
func (c *Cluster) pendingUnbound() []*Pod {
	pending := c.pendingScratch[:0]
	if c.cfg.NaiveScheduling {
		pending = c.naivePendingUnbound(pending)
	} else {
		for _, p := range c.pendingPods {
			pending = append(pending, p)
		}
	}
	slices.SortFunc(pending, func(a, b *Pod) int { return cmp.Compare(a.UID, b.UID) })
	c.pendingScratch = pending
	return pending
}

// releaseScratch drops the pod references held by the pending scratch
// slice so deleted pods can be collected.
func (c *Cluster) releaseScratch(pending []*Pod) {
	for i := range pending {
		pending[i] = nil
	}
}

// scheduleOnce is the kube-scheduler sync loop: bind pending pods to
// ready nodes with sufficient free resources, first-fit in node-age
// order; emit FailedScheduling for pods that cannot be placed. The
// controller-manager's StatefulSet reconciliation piggybacks on the
// same loop.
func (c *Cluster) scheduleOnce() {
	for _, ss := range c.statefulsets {
		c.reconcileStatefulSet(ss)
	}

	pending := c.pendingUnbound()
	nodes := c.sortedNodes()
	for _, p := range pending {
		placed := false
		for _, n := range nodes {
			if !n.Ready {
				continue
			}
			if c.fitsOnNode(p, n) {
				c.bind(p, n)
				placed = true
				break
			}
		}
		if !placed && !p.UnschedulableSeen {
			p.UnschedulableSeen = true
			c.recordEvent("pod/"+p.Name, ReasonFailedScheduling,
				fmt.Sprintf("0/%d nodes are available: Insufficient resources (request %v)", len(nodes), p.Resources))
			c.notifyPod(Modified, p, ReasonFailedScheduling)
		}
	}
	c.releaseScratch(pending)
}

// sortedNodes returns the node roster sorted by creation time then
// name. The fast path serves a cached slice invalidated on node
// add/remove; a rebuild allocates a fresh backing array so callers
// holding an older snapshot can keep iterating it safely.
func (c *Cluster) sortedNodes() []*Node {
	if c.cfg.NaiveScheduling {
		return c.naiveSortedNodes()
	}
	if c.nodeDirty || c.nodeList == nil {
		out := make([]*Node, 0, len(c.nodes))
		for _, n := range c.nodes {
			out = append(out, n)
		}
		slices.SortFunc(out, func(a, b *Node) int {
			if c := a.CreatedAt.Compare(b.CreatedAt); c != 0 {
				return c
			}
			return cmp.Compare(a.Name, b.Name)
		})
		c.nodeList = out
		c.nodeDirty = false
	}
	return c.nodeList
}

func (c *Cluster) fitsOnNode(p *Pod, n *Node) bool {
	return p.Resources.Fits(c.nodeFree(n))
}

func (c *Cluster) bind(p *Pod, n *Node) {
	p.NodeName = n.Name
	p.ScheduledAt = c.eng.Now()
	n.EmptySince = time.Time{}
	n.Allocated = n.Allocated.Add(p.Resources)
	n.livePods++
	m := c.podsByNode[n.Name]
	if m == nil {
		m = make(map[string]*Pod)
		c.podsByNode[n.Name] = m
	}
	m[p.Name] = p
	delete(c.pendingPods, p.Name)
	c.recordEvent("pod/"+p.Name, ReasonScheduled, "bound to "+n.Name)
	c.notifyPod(Modified, p, ReasonScheduled)
	c.kubeletStart(p, n)
}
