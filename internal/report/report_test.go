package report

import (
	"encoding/xml"
	"strings"
	"testing"
	"time"

	"hta/internal/metrics"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func sampleSeries(name string, vals ...float64) *metrics.Series {
	s := metrics.NewSeries(name)
	for i, v := range vals {
		s.Add(t0.Add(time.Duration(i)*time.Minute), v)
	}
	return s
}

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	if err := xml.Unmarshal([]byte(svg), new(any)); err != nil {
		t.Fatalf("SVG not well-formed: %v\n%s", err, svg)
	}
}

func TestLineChartBasics(t *testing.T) {
	supply := sampleSeries("supply", 9, 60, 60, 30)
	inUse := sampleSeries("in-use", 3, 55, 58, 28)
	svg := LineChart([]*metrics.Series{supply, inUse}, ChartOptions{
		Title:  "Fig. 10b",
		YLabel: "cores",
		End:    t0.Add(5 * time.Minute),
	})
	wellFormed(t, svg)
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	for _, want := range []string{"Fig. 10b", "cores", "supply", "in-use"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestLineChartEmpty(t *testing.T) {
	svg := LineChart(nil, ChartOptions{})
	wellFormed(t, svg)
	if !strings.Contains(svg, "no data") {
		t.Error("empty chart should say so")
	}
	svg = LineChart([]*metrics.Series{metrics.NewSeries("e")}, ChartOptions{})
	wellFormed(t, svg)
}

func TestLineChartEscapesLabels(t *testing.T) {
	s := sampleSeries(`a<b&"c"`, 1, 2)
	svg := LineChart([]*metrics.Series{s}, ChartOptions{Title: "x<y>", End: t0.Add(time.Hour)})
	wellFormed(t, svg)
	if strings.Contains(svg, "a<b") {
		t.Error("series name not escaped")
	}
}

func TestLineChartZeroValues(t *testing.T) {
	s := sampleSeries("flat", 0, 0, 0)
	svg := LineChart([]*metrics.Series{s}, ChartOptions{End: t0.Add(time.Hour)})
	wellFormed(t, svg)
}

func TestPageRender(t *testing.T) {
	p := NewPage("Test & Report")
	sec := p.AddSection("Fig. X", "Some <preamble>.")
	sec.AddRow("Autoscaler", "Runtime")
	sec.AddRow("HTA", "3556 s")
	sec.AddChart("chart", "cores", t0.Add(time.Minute), sampleSeries("s", 1, 2))
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "Test &amp; Report", "Fig. X",
		"Some &lt;preamble&gt;.", "<th>Autoscaler</th>", "<td>3556 s</td>", "<svg",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{0: "0", 7: "7", 2.5: "2.5", 1500: "1.5k"}
	for in, want := range cases {
		if got := formatTick(in); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", in, got, want)
		}
	}
}
