// Package report renders experiment results as a self-contained HTML
// page with inline SVG charts — the closest this repository gets to
// the paper's figures. It depends only on the standard library.
package report

import (
	"fmt"
	"math"
	"strings"
	"time"

	"hta/internal/metrics"
)

// ChartOptions style a line chart.
type ChartOptions struct {
	Title  string
	YLabel string
	Width  int // pixels (default 640)
	Height int // pixels (default 280)
	// End extends the final step of every series.
	End time.Time
}

// chart palette: distinguishable line colors.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"}

const (
	marginLeft   = 56
	marginRight  = 16
	marginTop    = 28
	marginBottom = 40
)

// LineChart renders step-function series as an SVG string. Series are
// drawn as right-continuous steps, matching how the sampler records
// supply/demand.
func LineChart(series []*metrics.Series, opt ChartOptions) string {
	if opt.Width == 0 {
		opt.Width = 640
	}
	if opt.Height == 0 {
		opt.Height = 280
	}
	var start time.Time
	haveData := false
	maxY := 0.0
	for _, s := range series {
		if s.Len() == 0 {
			continue
		}
		t0, _ := s.At(0)
		if !haveData || t0.Before(start) {
			start = t0
			haveData = true
		}
		if v := s.Max(); v > maxY {
			maxY = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`,
		opt.Width, opt.Height, opt.Width, opt.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, opt.Width, opt.Height)
	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13" font-weight="bold">%s</text>`, marginLeft, escape(opt.Title))
	}
	if !haveData {
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#888">no data</text></svg>`, opt.Width/2-24, opt.Height/2)
		return b.String()
	}
	end := opt.End
	if end.Before(start) || end.Equal(start) {
		end = start.Add(time.Second)
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY *= 1.05 // headroom

	plotW := float64(opt.Width - marginLeft - marginRight)
	plotH := float64(opt.Height - marginTop - marginBottom)
	xOf := func(t time.Time) float64 {
		return float64(marginLeft) + plotW*t.Sub(start).Seconds()/end.Sub(start).Seconds()
	}
	yOf := func(v float64) float64 {
		return float64(marginTop) + plotH*(1-v/maxY)
	}

	// Axes and grid.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`,
		marginLeft, opt.Height-marginBottom, opt.Width-marginRight, opt.Height-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`,
		marginLeft, marginTop, marginLeft, opt.Height-marginBottom)
	for i := 0; i <= 4; i++ {
		v := maxY * float64(i) / 4
		y := yOf(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`,
			marginLeft, y, opt.Width-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" fill="#555">%s</text>`,
			marginLeft-6, y+4, formatTick(v))
	}
	for i := 0; i <= 5; i++ {
		t := start.Add(time.Duration(float64(end.Sub(start)) * float64(i) / 5))
		x := xOf(t)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#555">%.0fs</text>`,
			x, opt.Height-marginBottom+16, t.Sub(start).Seconds())
	}
	if opt.YLabel != "" {
		fmt.Fprintf(&b, `<text x="12" y="%d" transform="rotate(-90 12 %d)" text-anchor="middle" fill="#333">%s</text>`,
			(marginTop+opt.Height-marginBottom)/2, (marginTop+opt.Height-marginBottom)/2, escape(opt.YLabel))
	}

	// Step polylines.
	for si, s := range series {
		if s.Len() == 0 {
			continue
		}
		color := palette[si%len(palette)]
		var pts strings.Builder
		var prevY float64
		for i := 0; i < s.Len(); i++ {
			ts, v := s.At(i)
			x, y := xOf(ts), yOf(v)
			if i == 0 {
				fmt.Fprintf(&pts, "%.1f,%.1f", x, y)
			} else {
				fmt.Fprintf(&pts, " %.1f,%.1f %.1f,%.1f", x, prevY, x, y)
			}
			prevY = y
		}
		fmt.Fprintf(&pts, " %.1f,%.1f", xOf(end), prevY)
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`, pts.String(), color)
		// Legend entry.
		lx := marginLeft + 8 + si*120
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="3" fill="%s"/>`, lx, marginTop-8, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#333">%s</text>`, lx+14, marginTop-4, escape(s.Name))
	}
	b.WriteString("</svg>")
	return b.String()
}

func formatTick(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.1fk", v/1000)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
