package core

import (
	"time"

	"hta/internal/simclock"
)

// PanicConfig is the fast-path spike policy layered over Algorithm
// 1's per-cycle cadence, modeled on kthena's autoscaler: a panic
// threshold on short-window queue growth that bypasses the resize
// cycle, plus the steady-state damping (tolerance band, scale-down
// stabilization, per-direction cooldowns) that stops the cadence from
// thrashing around zero shortage. The zero value disables the whole
// layer — the decision path is then byte-identical to the plain
// per-cycle autoscaler.
type PanicConfig struct {
	// Enabled turns the panic checker and the decision governor on.
	Enabled bool
	// ThresholdPercent is the queue-growth trigger: panic when the
	// waiting depth exceeds the depth Window ago by more than this
	// percentage (default 150, i.e. 2.5x). A baseline of zero
	// triggers on MinGrowth alone (a spike out of an empty queue).
	ThresholdPercent float64
	// Window is the growth-measurement horizon (default 30 s) — much
	// shorter than a resize cycle, so a burst is seen while the
	// per-cycle loop is still asleep.
	Window time.Duration
	// CheckInterval is the sampling period of the panic checker
	// (default 5 s).
	CheckInterval time.Duration
	// MinGrowth is the minimum absolute depth growth over Window that
	// can trigger a panic (default 8 tasks) — percentage growth on a
	// near-empty queue is noise.
	MinGrowth int
	// StabilizationWindow damps scale-downs two ways: after a panic,
	// scale-downs are suppressed for this long (the burst that caused
	// the panic is likely not over); and a per-cycle scale-down only
	// applies once downward proposals have persisted for this long
	// (default 2 min).
	StabilizationWindow time.Duration
	// TolerancePercent is the dead band around zero shortage: a
	// proposed change of at most this percentage of the current fleet
	// is held at zero instead of churning pods (default 10).
	TolerancePercent float64
	// ScaleUpCooldown is the minimum spacing between successive panic
	// scale-ups (default Window), so a sustained storm produces one
	// panic per window, not one per check. The per-cycle path is not
	// gated: capacity the planner asks for is never delayed.
	ScaleUpCooldown time.Duration
	// ScaleDownCooldown is the minimum spacing between applied
	// scale-downs (default 1 min).
	ScaleDownCooldown time.Duration
}

func (p PanicConfig) withDefaults() PanicConfig {
	if !p.Enabled {
		return p
	}
	if p.ThresholdPercent == 0 {
		p.ThresholdPercent = 150
	}
	if p.Window == 0 {
		p.Window = 30 * time.Second
	}
	if p.CheckInterval == 0 {
		p.CheckInterval = 5 * time.Second
	}
	if p.MinGrowth == 0 {
		p.MinGrowth = 8
	}
	if p.StabilizationWindow == 0 {
		p.StabilizationWindow = 2 * time.Minute
	}
	if p.TolerancePercent == 0 {
		p.TolerancePercent = 10
	}
	if p.ScaleUpCooldown == 0 {
		p.ScaleUpCooldown = p.Window
	}
	if p.ScaleDownCooldown == 0 {
		p.ScaleDownCooldown = time.Minute
	}
	return p
}

// depthSample is one panic-checker observation of the queue.
type depthSample struct {
	at    time.Time
	depth int
}

// panicState is the autoscaler's spike-path bookkeeping. It lives in
// its own struct so Crash can drop it wholesale (the restarted
// controller re-learns the queue trajectory from scratch).
type panicState struct {
	ticker  *simclock.Ticker
	samples []depthSample // recent depth observations, oldest first

	lastPanic  time.Time
	panicUntil time.Time // scale-downs suppressed until here
	downSince  time.Time // first of the current run of downward proposals
	lastDown   time.Time // last applied scale-down
	panics     int
}

// PanicCount returns how many panic scale-ups fired.
func (a *Autoscaler) PanicCount() int { return a.panicSt.panics }

// startPanicChecker arms the fast sampling loop. No-op while the
// policy is disabled.
func (a *Autoscaler) startPanicChecker() {
	if !a.cfg.Panic.Enabled || a.panicSt.ticker != nil {
		return
	}
	a.panicSt.ticker = a.eng.Every(a.cfg.Panic.CheckInterval, "hta-panic-check", a.panicCheck)
}

// stopPanicChecker stops the sampling loop (clean-up, crash).
func (a *Autoscaler) stopPanicChecker() {
	if a.panicSt.ticker != nil {
		a.panicSt.ticker.Stop()
		a.panicSt.ticker = nil
	}
}

// panicCheck samples the queue depth and fires an immediate scale-up
// when the short-window growth crosses the panic threshold. The
// shortage is computed by Algorithm 1 itself with a zero-length
// window: running tasks hold their allocations, no completions are
// predicted, and the entire unplaced backlog bin-packs into new
// workers — the instantaneous shortage, not the forecast one.
func (a *Autoscaler) panicCheck() {
	if a.down || a.shutdown || a.cleaned {
		return
	}
	cfg := a.cfg.Panic
	now := a.eng.Now()
	depth := a.master.Stats().Waiting
	st := &a.panicSt

	// Maintain the window of samples; the baseline is the oldest
	// observation still inside it.
	cutoff := now.Add(-cfg.Window)
	keep := 0
	for keep < len(st.samples) && st.samples[keep].at.Before(cutoff) {
		keep++
	}
	// Keep one sample at or before the cutoff so the baseline spans
	// the full window rather than shrinking to the newest sample.
	if keep > 0 {
		keep--
	}
	st.samples = append(st.samples[:copy(st.samples, st.samples[keep:])], depthSample{at: now, depth: depth})

	if !a.everSubmitted {
		// Quiet-queue samples still enter the window so the first burst
		// is measured against a real baseline; only triggering waits.
		return
	}
	baseline := st.samples[0].depth
	growth := depth - baseline
	if growth < cfg.MinGrowth {
		return
	}
	if float64(depth) <= float64(baseline)*(1+cfg.ThresholdPercent/100) {
		return
	}
	if !st.lastPanic.IsZero() && now.Sub(st.lastPanic) < cfg.ScaleUpCooldown {
		return
	}

	dec := a.instantShortage()
	if dec.ScaleChange <= 0 {
		return
	}
	st.lastPanic = now
	st.panicUntil = now.Add(cfg.StabilizationWindow)
	st.downSince = time.Time{}
	// New capacity arrives one init time from now; pull the regular
	// cycle to that horizon instead of letting it fire mid-flight with
	// a stale view.
	dec.NextCycle = a.planningInitTime()
	a.Decisions = append(a.Decisions, DecisionRecord{At: now, Decision: dec, Panic: true})
	st.panics++
	a.apply(dec)
	a.cycleTimer.Stop()
	a.scheduleNext(dec.NextCycle)
}

// instantShortage evaluates Algorithm 1 with a zero-length window.
func (a *Autoscaler) instantShortage() Decision {
	in := a.estimateInput()
	in.InitTime = 0
	return a.planner.EstimateScale(in)
}

// planningInitTime is the init time decide() plans with.
func (a *Autoscaler) planningInitTime() time.Duration {
	if a.cfg.DisableInitFeedback {
		return a.cfg.InitTimeFallback
	}
	return a.tracker.Latest()
}

// governDecision applies the steady-state damping to a per-cycle
// decision: the tolerance dead band, the post-panic hold, the
// scale-down stabilization window and the scale-down cooldown. With
// the policy disabled it returns the decision untouched — the
// per-cycle path must stay byte-identical to the plain autoscaler
// (pinned by TestGovernorDisabledIsIdentity).
func (a *Autoscaler) governDecision(dec Decision) Decision {
	cfg := a.cfg.Panic
	if !cfg.Enabled {
		return dec
	}
	now := a.eng.Now()
	st := &a.panicSt

	if tol := int(float64(a.WorkerPodCount()) * cfg.TolerancePercent / 100); dec.ScaleChange != 0 &&
		abs(dec.ScaleChange) <= tol {
		dec.ScaleChange = 0
		dec.NextCycle = a.cfg.DefaultCycle
	}
	if dec.ScaleChange >= 0 {
		st.downSince = time.Time{}
		return dec
	}
	// Downward proposal: hold it unless it is sustained, outside the
	// post-panic window, and off cooldown. A held-down decision
	// re-checks at the default cadence rather than sleeping through
	// its own stabilization window.
	hold := func() Decision {
		dec.ScaleChange = 0
		dec.NextCycle = a.cfg.DefaultCycle
		return dec
	}
	if now.Before(st.panicUntil) {
		return hold()
	}
	if st.downSince.IsZero() {
		st.downSince = now
		return hold()
	}
	if now.Sub(st.downSince) < cfg.StabilizationWindow {
		return hold()
	}
	if !st.lastDown.IsZero() && now.Sub(st.lastDown) < cfg.ScaleDownCooldown {
		return hold()
	}
	st.lastDown = now
	return dec
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
