package core

import (
	"strings"
	"testing"
	"time"

	"hta/internal/flow"
	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/workload"
	"hta/internal/wq"
)

// stack wires engine + cluster + master + HTA.
type stack struct {
	eng     *simclock.Engine
	cluster *kubesim.Cluster
	master  *wq.Master
	a       *Autoscaler
}

func newStack(t *testing.T, kcfg kubesim.Config, hcfg Config) *stack {
	t.Helper()
	eng := simclock.NewEngine(t0)
	if kcfg.Seed == 0 {
		kcfg.Seed = 1
	}
	cluster := kubesim.NewCluster(eng, kcfg)
	master := wq.NewMaster(eng, nil)
	a := New(eng, cluster, master, hcfg)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	return &stack{eng: eng, cluster: cluster, master: master, a: a}
}

// runToCompletion executes the given flat specs through HTA and
// returns the workload runtime. It fails the test on timeout.
func (s *stack) runToCompletion(t *testing.T, specs []wq.TaskSpec, timeout time.Duration) time.Duration {
	t.Helper()
	g, specFn, err := flow.FromSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	r := flow.NewRunner(g, s.a, specFn)
	finished := false
	var runtime time.Duration
	r.OnAllDone(func() {
		runtime = s.eng.Elapsed()
		s.a.Shutdown(func() { finished = true })
	})
	r.Start()
	deadline := t0.Add(timeout)
	s.eng.RunWhile(func() bool { return !finished && s.eng.Now().Before(deadline) })
	if !finished {
		t.Fatalf("workload did not finish within %v (completed %d/%d, stats %+v, pods %d)",
			timeout, s.master.CompletedCount(), len(specs), s.master.Stats(), s.a.WorkerPodCount())
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return runtime
}

func TestStartDeploysFramework(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 10}, Config{})
	s.eng.RunFor(time.Minute)
	if _, ok := s.cluster.GetPod("wq-master-0"); !ok {
		t.Error("master StatefulSet pod missing")
	}
	if _, ok := s.cluster.GetService("wq-master"); !ok {
		t.Error("master service missing")
	}
	// 3 initial worker pods connect as workers.
	if got := len(s.master.Workers()); got != 3 {
		t.Errorf("workers = %d, want 3", got)
	}
	if err := s.a.Start(); err == nil {
		t.Error("double Start should fail")
	}
}

func TestWarmupHoldsBackUnknownCategories(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 10}, Config{})
	specs := workload.UniformParams{N: 10, Category: "x", Exec: 30 * time.Second, CPUMilli: 900}.Specs()
	for _, spec := range specs {
		s.a.Submit(spec)
	}
	// Exactly one probe goes to the master; nine are held.
	if got := s.master.Stats(); got.Waiting+got.Running != 1 {
		t.Errorf("probe tasks at master = %d, want 1", got.Waiting+got.Running)
	}
	if got := s.a.HeldTasks(); got != 9 {
		t.Errorf("held = %d, want 9", got)
	}
	// After the probe completes the rest are released.
	s.eng.RunFor(3 * time.Minute)
	if got := s.a.HeldTasks(); got != 0 {
		t.Errorf("held after probe = %d, want 0", got)
	}
	if got := s.master.CompletedCount(); got < 1 {
		t.Errorf("completed = %d", got)
	}
}

func TestDeclaredTasksBypassWarmup(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 10}, Config{})
	p := workload.UniformParams{N: 5, Category: "x", Exec: 30 * time.Second,
		Resources: resources.New(1, 1024, 10), CPUMilli: 900}
	for _, spec := range p.Specs() {
		s.a.Submit(spec)
	}
	if got := s.a.HeldTasks(); got != 0 {
		t.Errorf("held = %d, want 0 for declared tasks", got)
	}
}

func TestEndToEndSmallWorkload(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 10}, Config{})
	specs := workload.UniformParams{N: 30, Category: "x", Exec: 60 * time.Second, CPUMilli: 900, Seed: 2}.Specs()
	runtime := s.runToCompletion(t, specs, 4*time.Hour)
	if runtime <= 0 {
		t.Fatal("zero runtime")
	}
	// Clean-up stage: no worker pods, no master statefulset left.
	s.eng.RunFor(time.Minute)
	if got := s.a.WorkerPodCount(); got != 0 {
		t.Errorf("worker pods after cleanup = %d", got)
	}
	if _, ok := s.cluster.GetPod("wq-master-0"); ok {
		t.Error("master pod not cleaned up")
	}
	if len(s.a.Decisions) == 0 {
		t.Error("no resize decisions recorded")
	}
}

func TestScalesUpBeyondInitialNodes(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 10}, Config{})
	// 90 one-core tasks of 5 min: strong sustained demand.
	specs := workload.UniformParams{N: 90, Category: "x", Exec: 5 * time.Minute, CPUMilli: 900, Seed: 3}.Specs()
	g, specFn, _ := flow.FromSpecs(specs)
	r := flow.NewRunner(g, s.a, specFn)
	r.Start()
	s.eng.RunFor(20 * time.Minute)
	if got := s.cluster.ReadyNodes(); got < 8 {
		t.Errorf("ready nodes = %d, want scale-up toward 10", got)
	}
	if got := s.a.WorkerPodCount(); got < 8 {
		t.Errorf("worker pods = %d, want near quota", got)
	}
}

func TestScalesDownAfterPeak(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 10, ScaleDownDelay: 2 * time.Minute}, Config{})
	specs := workload.UniformParams{N: 60, Category: "x", Exec: 2 * time.Minute, CPUMilli: 900, Seed: 4}.Specs()
	runtime := s.runToCompletion(t, specs, 6*time.Hour)
	_ = runtime
	// After cleanup + node scale-down delay, the cluster shrinks to
	// its minimum.
	s.eng.RunFor(20 * time.Minute)
	if got := s.a.WorkerPodCount(); got != 0 {
		t.Errorf("worker pods = %d after completion", got)
	}
	if got := s.cluster.ReadyNodes(); got > 3 {
		t.Errorf("nodes = %d, want scale-down after drain", got)
	}
}

func TestWorkerPodKilledTasksRequeue(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 5}, Config{})
	specs := workload.UniformParams{N: 6, Category: "x", Exec: 10 * time.Minute, CPUMilli: 900, Seed: 5}.Specs()
	g, specFn, _ := flow.FromSpecs(specs)
	r := flow.NewRunner(g, s.a, specFn)
	finished := false
	r.OnAllDone(func() { s.a.Shutdown(func() { finished = true }) })
	r.Start()
	s.eng.RunFor(5 * time.Minute)
	// Kill one active worker pod out from under HTA (simulates node
	// failure / eviction).
	var victim string
	for _, p := range s.cluster.ListPods(workerLabels()) {
		if p.Phase == kubesim.PodRunning {
			victim = p.Name
			break
		}
	}
	if victim == "" {
		t.Fatal("no running worker pod to kill")
	}
	if err := s.cluster.DeletePod(victim); err != nil {
		t.Fatal(err)
	}
	deadline := t0.Add(8 * time.Hour)
	s.eng.RunWhile(func() bool { return !finished && s.eng.Now().Before(deadline) })
	if !finished {
		t.Fatalf("workload stuck after pod kill: %+v", s.master.Stats())
	}
	if got := s.master.CompletedCount(); got != 6 {
		t.Errorf("completed = %d, want 6", got)
	}
}

func TestLifecycleTrackerMeasuresColdStarts(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 10}, Config{})
	specs := workload.UniformParams{N: 60, Category: "x", Exec: 5 * time.Minute, CPUMilli: 900, Seed: 6}.Specs()
	g, specFn, _ := flow.FromSpecs(specs)
	flow.NewRunner(g, s.a, specFn).Start()
	s.eng.RunFor(15 * time.Minute)
	if !s.a.Tracker().Measured() {
		t.Fatal("no initialization-time measurement after scale-up")
	}
	got := s.a.Tracker().Latest()
	if got < 100*time.Second || got > 220*time.Second {
		t.Errorf("init time = %v, want ≈160s", got)
	}
	mean, std := s.a.Tracker().MeanStd()
	if mean < 100 || mean > 220 {
		t.Errorf("mean = %v", mean)
	}
	if std < 0 || std > 30 {
		t.Errorf("std = %v", std)
	}
}

func TestTrackerIgnoresWarmStarts(t *testing.T) {
	eng := simclock.NewEngine(t0)
	cluster := kubesim.NewCluster(eng, kubesim.Config{InitialNodes: 2, Seed: 1})
	defer cluster.Stop()
	lt := NewLifecycleTracker(cluster, nil, 99*time.Second)
	cluster.CreatePod(kubesim.PodSpec{Name: "warm", Image: "img", Resources: resources.Cores(1)})
	eng.RunFor(time.Minute)
	if lt.Measured() {
		t.Error("warm start should not produce a measurement")
	}
	if lt.Latest() != 99*time.Second {
		t.Errorf("Latest = %v, want fallback", lt.Latest())
	}
	if mean, std := lt.MeanStd(); mean != 0 || std != 0 {
		t.Errorf("MeanStd = %v, %v", mean, std)
	}
}

func TestShutdownBeforeWorkIsImmediate(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 2, MaxNodes: 4}, Config{InitialWorkers: 2})
	s.eng.RunFor(time.Minute)
	finished := false
	s.a.Shutdown(func() { finished = true })
	s.eng.RunFor(time.Minute)
	if !finished {
		t.Fatal("shutdown never completed")
	}
	if got := s.a.WorkerPodCount(); got != 0 {
		t.Errorf("worker pods = %d", got)
	}
}

func TestMaxWorkersRespected(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 10}, Config{MaxWorkers: 4})
	specs := workload.UniformParams{N: 100, Category: "x", Exec: 5 * time.Minute, CPUMilli: 900, Seed: 7}.Specs()
	g, specFn, _ := flow.FromSpecs(specs)
	flow.NewRunner(g, s.a, specFn).Start()
	s.eng.RunFor(20 * time.Minute)
	if got := s.a.WorkerPodCount(); got > 4 {
		t.Errorf("worker pods = %d, want ≤ 4", got)
	}
}

func TestNodeFailureRecovery(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 6}, Config{})
	specs := workload.UniformParams{N: 12, Category: "x", Exec: 8 * time.Minute, CPUMilli: 900, Seed: 11}.Specs()
	g, specFn, _ := flow.FromSpecs(specs)
	r := flow.NewRunner(g, s.a, specFn)
	finished := false
	r.OnAllDone(func() { s.a.Shutdown(func() { finished = true }) })
	r.Start()
	s.eng.RunFor(5 * time.Minute)
	// Kill the node hosting a running worker pod.
	var victim string
	for _, p := range s.cluster.ListPods(workerLabels()) {
		if p.Phase == kubesim.PodRunning {
			victim = p.NodeName
			break
		}
	}
	if victim == "" {
		t.Fatal("no running worker to orphan")
	}
	if err := s.cluster.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	deadline := t0.Add(10 * time.Hour)
	s.eng.RunWhile(func() bool { return !finished && s.eng.Now().Before(deadline) })
	if !finished {
		t.Fatalf("workload stuck after node failure: %+v", s.master.Stats())
	}
	if got := s.master.CompletedCount(); got != 12 {
		t.Errorf("completed = %d, want 12", got)
	}
}

func TestStatusProgression(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 6}, Config{})
	st := s.a.Status()
	if st.Stage != "warm-up" {
		t.Errorf("initial stage = %q", st.Stage)
	}
	specs := workload.UniformParams{N: 10, Category: "x", Exec: time.Minute, CPUMilli: 900, Seed: 12}.Specs()
	g, specFn, _ := flow.FromSpecs(specs)
	r := flow.NewRunner(g, s.a, specFn)
	finished := false
	r.OnAllDone(func() { s.a.Shutdown(func() { finished = true }) })
	r.Start()
	s.eng.RunFor(2 * time.Minute)
	st = s.a.Status()
	if st.Stage != "runtime" {
		t.Errorf("mid-run stage = %q", st.Stage)
	}
	if st.WorkersActive == 0 || st.Decisions == 0 {
		t.Errorf("status = %+v", st)
	}
	if len(st.KnownCategories) != 1 || st.KnownCategories[0] != "x" {
		t.Errorf("categories = %v", st.KnownCategories)
	}
	deadline := t0.Add(8 * time.Hour)
	s.eng.RunWhile(func() bool { return !finished && s.eng.Now().Before(deadline) })
	if !finished {
		t.Fatal("never finished")
	}
	st = s.a.Status()
	if st.Stage != "done" {
		t.Errorf("final stage = %q", st.Stage)
	}
	if st.Completed != 10 {
		t.Errorf("completed = %d", st.Completed)
	}
	if got := st.String(); !strings.Contains(got, "[done]") {
		t.Errorf("String() = %q", got)
	}
}
