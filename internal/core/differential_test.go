package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hta/internal/resources"
	"hta/internal/wq"
)

// randomEstimateInput builds an adversarial Algorithm 1 snapshot:
// mixed known/unknown/oversized categories, zero and equal execution
// times (stressing completion-event tie-breaking in the heap), tasks
// on ghost workers, declared-resource overrides, capacity discounts,
// and occasionally no estimator at all.
func randomEstimateInput(rng *rand.Rand) EstimateInput {
	est := &mapEstimator{
		res: map[string]resources.Vector{
			"a":    resources.New(1, 3800, 0),
			"b":    resources.New(0.5, 1024, 10),
			"big":  resources.New(2, 8192, 0),
			"huge": resources.New(64, 1, 1), // never fits anywhere
			"zero": {},                      // zero estimate = unknown size
		},
		dur: map[string]time.Duration{
			"a":       60 * time.Second,
			"b":       60 * time.Second, // same as a: equal-time events
			"big":     0,                // completes instantly on dispatch
			"huge":    time.Hour,
			"zero":    45 * time.Second,
			"nores":   90 * time.Second, // exec known, size unknown
			"mystery": 0,
		},
	}
	delete(est.dur, "mystery") // truly unmeasured category
	in := EstimateInput{
		Now:            t0,
		InitTime:       time.Duration(10+rng.Intn(300)) * time.Second,
		DefaultCycle:   time.Duration(5+rng.Intn(60)) * time.Second,
		WorkerTemplate: nodeCap,
		Estimator:      est,
	}
	if rng.Intn(10) == 0 {
		in.Estimator = nil
	}
	switch rng.Intn(4) {
	case 0:
		in.CapacityDiscount = 0.25
	case 1:
		in.CapacityDiscount = 0.5
	}
	cats := []string{"a", "b", "big", "huge", "zero", "nores", "mystery"}
	for i := rng.Intn(31); i > 0; i-- {
		cap := nodeCap
		if rng.Intn(4) == 0 {
			cap = resources.New(8, 32768, 200000)
		}
		in.Workers = append(in.Workers, WorkerInfo{ID: fmt.Sprintf("w%d", len(in.Workers)), Capacity: cap})
	}
	for i := rng.Intn(61); i > 0; i-- {
		wid := "ghost"
		if len(in.Workers) > 0 && rng.Intn(8) != 0 {
			wid = in.Workers[rng.Intn(len(in.Workers))].ID
		}
		in.Running = append(in.Running, wq.Task{
			TaskSpec:  wq.TaskSpec{Category: cats[rng.Intn(len(cats))]},
			WorkerID:  wid,
			StartedAt: t0.Add(-time.Duration(rng.Intn(200)) * time.Second),
			Allocated: resources.New(1, 3800, 0),
		})
	}
	for i := rng.Intn(201); i > 0; i-- {
		task := wq.Task{TaskSpec: wq.TaskSpec{Category: cats[rng.Intn(len(cats))]}}
		if rng.Intn(6) == 0 {
			task.Resources = resources.New(float64(1+rng.Intn(3)), 2048, 0)
		}
		in.Waiting = append(in.Waiting, task)
	}
	return in
}

// TestDifferentialEstimateIdentical pins the tentpole's contract: the
// grouped planner returns Decisions byte-identical to the retained
// per-task reference on randomized queues, with one Planner reused
// across every iteration so stale scratch state would be caught too.
func TestDifferentialEstimateIdentical(t *testing.T) {
	var p Planner
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 25; iter++ {
			in := randomEstimateInput(rng)
			want := ReferenceEstimateScale(in)
			got := p.EstimateScale(in)
			if got != want {
				t.Fatalf("seed %d iter %d: planner %+v, reference %+v\ninput: init=%v cycle=%v workers=%d running=%d waiting=%d discount=%v estimator=%v",
					seed, iter, got, want, in.InitTime, in.DefaultCycle,
					len(in.Workers), len(in.Running), len(in.Waiting),
					in.CapacityDiscount, in.Estimator != nil)
			}
		}
	}
}

// TestPackageFuncMatchesPlanner keeps the convenience wrapper honest.
func TestPackageFuncMatchesPlanner(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var p Planner
	for i := 0; i < 50; i++ {
		in := randomEstimateInput(rng)
		if got, want := EstimateScale(in), p.EstimateScale(in); got != want {
			t.Fatalf("iter %d: wrapper %+v, planner %+v", i, got, want)
		}
	}
}

// TestPlannerZeroAllocSteadyState pins the scratch-reuse satellite: a
// warmed planner re-evaluating a busy snapshot allocates nothing.
func TestPlannerZeroAllocSteadyState(t *testing.T) {
	in := baseInput()
	for i := 0; i < 50; i++ {
		in.Workers = append(in.Workers, WorkerInfo{ID: fmt.Sprintf("w%d", i), Capacity: nodeCap})
	}
	alloc := resources.New(1, 3800, 0)
	for i := 0; i < 120; i++ {
		in.Running = append(in.Running, running(fmt.Sprintf("w%d", i%50), "c", t0.Add(-time.Duration(i)*time.Second), alloc))
	}
	in.Waiting = waiting(1000, "c")
	var p Planner
	p.EstimateScale(in) // warm the scratch state
	if avg := testing.AllocsPerRun(20, func() { p.EstimateScale(in) }); avg != 0 {
		t.Errorf("steady-state EstimateScale allocates %.1f times per run, want 0", avg)
	}
}
