package core

import (
	"container/heap"
	"time"

	"hta/internal/resources"
)

// This file retains the original per-task Algorithm 1 evaluator
// verbatim. It is the behavioural reference for the grouped planner in
// estimate.go: differential tests assert the two return identical
// Decisions on randomized inputs, and the benchmarks use it as the
// naive baseline. Its cost is O(events × waiting × workers) — every
// completion event rescans the whole waiting queue against every pool.

type eventQueue []completionEvent

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(completionEvent)) }
func (q *eventQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// ReferenceEstimateScale is the retained naive implementation of the
// paper's Algorithm 1. EstimateScale returns byte-identical Decisions;
// use this form only as a test oracle or benchmark baseline.
func ReferenceEstimateScale(in EstimateInput) Decision {
	if in.DefaultCycle <= 0 {
		in.DefaultCycle = 30 * time.Second
	}
	// Per-worker simulated free capacity, discounted by the caller's
	// preemption hedge. Vector.Scale is integer-only, so components
	// scale individually.
	pools := make([]resources.Vector, len(in.Workers))
	index := make(map[string]int, len(in.Workers))
	for i, w := range in.Workers {
		pools[i] = discountCapacity(w.Capacity, in.CapacityDiscount)
		index[w.ID] = i
	}

	events := &eventQueue{}
	var maxRemaining time.Duration
	for _, t := range in.Running {
		wi, ok := index[t.WorkerID]
		if !ok {
			// Task on a draining or unknown worker: its capacity is
			// not part of the active pool.
			continue
		}
		pools[wi] = pools[wi].Sub(t.Allocated)
		rem, known := remainingTime(in, t)
		if !known || rem > in.InitTime {
			if rem > maxRemaining {
				maxRemaining = rem
			}
			continue // holds its allocation past the window
		}
		heap.Push(events, completionEvent{at: rem, worker: wi, alloc: t.Allocated})
	}

	// Waiting tasks in queue order with their predicted sizes.
	type pendingTask struct {
		res    resources.Vector
		known  bool
		exec   time.Duration
		hasExc bool
		placed bool
	}
	waiting := make([]pendingTask, len(in.Waiting))
	for i, t := range in.Waiting {
		pt := pendingTask{}
		if !t.Resources.IsZero() {
			pt.res, pt.known = t.Resources, true
		} else if in.Estimator != nil {
			if v, ok := in.Estimator.EstimateResources(t.Category); ok && !v.IsZero() {
				pt.res, pt.known = v, true
			}
		}
		if in.Estimator != nil {
			if d, ok := in.Estimator.EstimateExecTime(t.Category); ok {
				pt.exec, pt.hasExc = d, true
			}
		}
		waiting[i] = pt
	}

	// tryDispatch places waiting tasks into current free capacity at
	// simulated time at, mirroring the master's policy: known sizes
	// first-fit, unknown sizes exclusively on an idle worker.
	used := make([]bool, len(pools)) // worker fully dedicated (exclusive)
	busy := make([]int, len(pools))  // live task count per worker
	for _, t := range in.Running {
		if wi, ok := index[t.WorkerID]; ok {
			busy[wi]++
		}
	}
	// Re-derive busy decrements through events: track per event.
	// (completionEvent frees one task's allocation on its worker.)
	tryDispatch := func(at time.Duration) {
		for i := range waiting {
			pt := &waiting[i]
			if pt.placed {
				continue
			}
			placedAt := -1
			if pt.known {
				for wi := range pools {
					if used[wi] {
						continue
					}
					if pt.res.Fits(pools[wi]) {
						placedAt = wi
						break
					}
				}
			} else {
				for wi := range pools {
					if busy[wi] == 0 && !used[wi] {
						placedAt = wi
						break
					}
				}
			}
			if placedAt < 0 {
				continue
			}
			pt.placed = true
			busy[placedAt]++
			alloc := pt.res
			if !pt.known {
				alloc = pools[placedAt] // whole remaining (idle) worker
				used[placedAt] = true
			}
			pools[placedAt] = pools[placedAt].Sub(alloc)
			if pt.hasExc && at+pt.exec <= in.InitTime {
				heap.Push(events, completionEvent{at: at + pt.exec, worker: placedAt, alloc: alloc})
			} else {
				rem := at + pt.exec
				if !pt.hasExc {
					rem = in.InitTime + in.DefaultCycle
				}
				if rem > maxRemaining {
					maxRemaining = rem
				}
			}
		}
	}

	tryDispatch(0)
	for events.Len() > 0 {
		ev := heap.Pop(events).(completionEvent)
		if ev.at > in.InitTime {
			break
		}
		pools[ev.worker] = pools[ev.worker].Add(ev.alloc)
		busy[ev.worker]--
		used[ev.worker] = false
		tryDispatch(ev.at)
	}

	unplaced := 0
	for _, pt := range waiting {
		if !pt.placed {
			unplaced++
		}
	}
	idle := 0
	for wi := range pools {
		if busy[wi] == 0 {
			idle++
		}
	}
	// Everything dispatched within the cycle: resources are
	// sufficient. Workers predicted idle at the window's end are
	// drained — the "removing idle resources" half of the paper's
	// queue-driven policy (§IV-B), which produces the mid-workflow
	// supply dip of Fig. 10b. (The paper's printed Algorithm 1
	// returns 0 here; without the drain, a stage boundary leaves the
	// whole fleet idle for a full stage.)
	if unplaced == 0 {
		return Decision{
			ScaleChange:          -idle,
			NextCycle:            in.DefaultCycle,
			PredictedIdleWorkers: idle,
		}
	}

	// Spare whole workers at the end of the window: scale down by
	// the number of idle workers (paper line 22-24).
	if idle > 0 {
		next := maxRemaining
		if next <= 0 || next > in.InitTime {
			next = in.InitTime
		}
		if next < in.DefaultCycle {
			next = in.DefaultCycle
		}
		return Decision{
			ScaleChange:          -idle,
			NextCycle:            next,
			PredictedIdleWorkers: idle,
			UnplacedWaiting:      unplaced,
		}
	}

	// Shortage: first-fit pack the unplaced tasks onto hypothetical
	// new workers (paper line 25, WorkerRequired).
	var bins []resources.Vector
	for i, pt := range waiting {
		if pt.placed {
			continue
		}
		res := waiting[i].res
		if !pt.known || !res.Fits(in.WorkerTemplate) {
			// Unknown-size tasks run exclusively; oversized estimates
			// are clamped to a whole worker.
			res = in.WorkerTemplate
		}
		placed := false
		for b := range bins {
			if res.Fits(bins[b]) {
				bins[b] = bins[b].Sub(res)
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, in.WorkerTemplate.Sub(res))
		}
	}
	return Decision{
		ScaleChange:     len(bins),
		NextCycle:       in.InitTime,
		UnplacedWaiting: unplaced,
	}
}
