package core

import (
	"math/rand"
	"testing"
	"time"

	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/wq"
)

// TestGovernorDisabledIsIdentity pins the byte-identity contract of
// the non-panic path: with the zero PanicConfig, governDecision
// returns every decision untouched, for adversarial inputs across
// many seeds (house style for wrappers around the decision path).
func TestGovernorDisabledIsIdentity(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 20}, Config{})
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			in := Decision{
				ScaleChange:          rng.Intn(41) - 20,
				NextCycle:            time.Duration(rng.Intn(600)) * time.Second,
				PredictedIdleWorkers: rng.Intn(10),
				UnplacedWaiting:      rng.Intn(1000),
			}
			if got := s.a.governDecision(in); got != in {
				t.Fatalf("seed %d iter %d: governDecision(%+v) = %+v with panic disabled", seed, i, in, got)
			}
		}
	}
	if s.a.panicSt.ticker != nil {
		t.Error("panic checker armed with panic disabled")
	}
}

// TestPanicFiresOnBurst checks the fast path: a submission burst into
// a small fleet triggers a panic scale-up within the check window,
// long before the per-cycle loop (parked on a long cycle) would have
// reacted.
func TestPanicFiresOnBurst(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 2, MaxNodes: 40, ProvisionMean: 10 * time.Second},
		Config{
			InitialWorkers: 2,
			DefaultCycle:   5 * time.Minute, // cadence asleep: only panic can react quickly
			Panic: PanicConfig{
				Enabled:       true,
				Window:        30 * time.Second,
				CheckInterval: 5 * time.Second,
				MinGrowth:     8,
			},
		})
	s.eng.RunFor(2 * time.Minute) // initial workers up
	for i := 0; i < 60; i++ {
		s.a.Submit(wq.TaskSpec{
			Category:  "burst",
			Resources: nodeSized(s, 4),
			Profile:   wq.Profile{ExecDuration: 10 * time.Minute, UsedCPUMilli: 900},
		})
	}
	s.eng.RunFor(time.Minute)
	if got := s.a.PanicCount(); got == 0 {
		t.Fatalf("no panic fired on a 60-task burst (decisions: %+v)", s.a.Decisions)
	}
	var panicRec *DecisionRecord
	for i := range s.a.Decisions {
		if s.a.Decisions[i].Panic {
			panicRec = &s.a.Decisions[i]
			break
		}
	}
	if panicRec == nil {
		t.Fatal("PanicCount > 0 but no Panic decision recorded")
	}
	if panicRec.ScaleChange <= 0 {
		t.Errorf("panic decision ScaleChange = %d, want > 0", panicRec.ScaleChange)
	}
	if got := panicRec.At.Sub(t0); got > 3*time.Minute {
		t.Errorf("panic fired at +%v, want within the first minute of the burst", got)
	}
	if got := s.a.WorkerPodCount(); got <= 2 {
		t.Errorf("fleet = %d after panic, want > 2", got)
	}
}

// nodeSized returns a declared requirement filling the given number
// of quarters of one node.
func nodeSized(s *stack, quarters int64) resources.Vector {
	alloc := s.cluster.Config().NodeAllocatable
	alloc.MilliCPU = alloc.MilliCPU * quarters / 4
	alloc.MemoryMB = alloc.MemoryMB * quarters / 4
	alloc.DiskMB = alloc.DiskMB * quarters / 4
	return alloc
}

// TestGovernorDamping unit-tests the steady-state rules with a
// controlled clock: tolerance dead band, scale-down stabilization,
// post-panic hold, and the scale-down cooldown.
func TestGovernorDamping(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 10, MaxNodes: 40},
		Config{InitialWorkers: 10, Panic: PanicConfig{
			Enabled:             true,
			TolerancePercent:    10,
			StabilizationWindow: 2 * time.Minute,
			ScaleDownCooldown:   time.Minute,
		}})
	s.eng.RunFor(3 * time.Minute) // 10 workers active
	fleet := s.a.WorkerPodCount()
	if fleet != 10 {
		t.Fatalf("fleet = %d, want 10", fleet)
	}

	// Tolerance band: |change| <= 10% of 10 workers is held at zero.
	if got := s.a.governDecision(Decision{ScaleChange: 1}); got.ScaleChange != 0 {
		t.Errorf("+1 within tolerance not damped: %+v", got)
	}
	if got := s.a.governDecision(Decision{ScaleChange: -1}); got.ScaleChange != 0 {
		t.Errorf("-1 within tolerance not damped: %+v", got)
	}
	if got := s.a.governDecision(Decision{ScaleChange: 5}); got.ScaleChange != 5 {
		t.Errorf("+5 beyond tolerance damped: %+v", got)
	}

	// Scale-down stabilization: the first -5 starts the clock and is
	// held; a -5 before the window elapses is held; after the window
	// it applies.
	if got := s.a.governDecision(Decision{ScaleChange: -5}); got.ScaleChange != 0 {
		t.Errorf("first -5 applied without stabilization: %+v", got)
	}
	s.eng.RunFor(time.Minute)
	if got := s.a.governDecision(Decision{ScaleChange: -5}); got.ScaleChange != 0 {
		t.Errorf("-5 inside stabilization window applied: %+v", got)
	}
	s.eng.RunFor(90 * time.Second)
	if got := s.a.governDecision(Decision{ScaleChange: -5}); got.ScaleChange != -5 {
		t.Errorf("sustained -5 after stabilization held: %+v", got)
	}

	// Cooldown: an immediate second scale-down is held.
	if got := s.a.governDecision(Decision{ScaleChange: -5}); got.ScaleChange != 0 {
		t.Errorf("-5 inside cooldown applied: %+v", got)
	}
	s.eng.RunFor(2 * time.Minute)
	if got := s.a.governDecision(Decision{ScaleChange: -5}); got.ScaleChange != -5 {
		t.Errorf("-5 after cooldown held: %+v", got)
	}

	// An upward proposal resets the down-streak clock.
	if got := s.a.governDecision(Decision{ScaleChange: 5}); got.ScaleChange != 5 {
		t.Fatalf("+5 held: %+v", got)
	}
	s.eng.RunFor(5 * time.Minute)
	if got := s.a.governDecision(Decision{ScaleChange: -5}); got.ScaleChange != 0 {
		t.Errorf("-5 right after an up-proposal applied (streak not reset): %+v", got)
	}

	// Post-panic hold: simulate a panic, downs are suppressed until
	// panicUntil even for a sustained streak.
	s.a.panicSt.panicUntil = s.eng.Now().Add(2 * time.Minute)
	s.a.panicSt.downSince = time.Time{}
	s.eng.RunFor(time.Minute)
	if got := s.a.governDecision(Decision{ScaleChange: -5}); got.ScaleChange != 0 {
		t.Errorf("-5 inside post-panic hold applied: %+v", got)
	}
}

// TestPanicCheckerStopsOnCrash: the fast path dies with the
// controller and re-arms on restore.
func TestPanicCheckerStopsOnCrash(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 2, MaxNodes: 10},
		Config{InitialWorkers: 2, Panic: PanicConfig{Enabled: true}})
	s.eng.RunFor(time.Minute)
	if s.a.panicSt.ticker == nil {
		t.Fatal("panic checker not armed on Start")
	}
	st := s.a.Crash()
	if s.a.panicSt.ticker != nil {
		t.Fatal("panic checker still armed after Crash")
	}
	s.eng.RunFor(time.Minute)
	s.a.Restore(st)
	if s.a.panicSt.ticker == nil {
		t.Fatal("panic checker not re-armed after Restore")
	}
	s.eng.RunFor(time.Minute)
}
