package core

import (
	"testing"
	"time"

	"hta/internal/kubesim"
	"hta/internal/workload"
)

func TestRestoreAdoptsPodsStartedDuringDowntime(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 10}, Config{InitialWorkers: 3})
	// Crash before the worker pods come up: their Started events fire
	// into a dead controller and are lost.
	st := s.a.Crash()
	s.eng.RunFor(5 * time.Minute)
	if got := len(s.master.Workers()); got != 0 {
		t.Fatalf("workers registered while controller down = %d, want 0", got)
	}
	running := 0
	for _, p := range s.cluster.ListPods(map[string]string{"app": "wq-worker"}) {
		if p.Phase == kubesim.PodRunning {
			running++
		}
	}
	if running != 3 {
		t.Fatalf("running worker pods = %d, want 3", running)
	}

	corrections := s.a.Restore(st)
	if corrections != 3 {
		t.Fatalf("corrections = %d, want 3 (one adoption per pod)", corrections)
	}
	if got := len(s.master.Workers()); got != 3 {
		t.Fatalf("workers after restore = %d, want 3 (adopted, not recreated)", got)
	}
	// Idempotence: restoring the same checkpoint again finds nothing to
	// fix and must not double-register anything.
	st2 := s.a.Crash()
	if c := s.a.Restore(st2); c != 0 {
		t.Fatalf("second restore corrections = %d, want 0", c)
	}
	if got := s.a.WorkerPodCount(); got != 3 {
		t.Fatalf("pod count after second restore = %d, want 3", got)
	}
}

func TestRestoreRemovesWorkersWhosePodVanished(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 10}, Config{InitialWorkers: 2})
	s.eng.RunFor(5 * time.Minute)
	if got := len(s.master.Workers()); got != 2 {
		t.Fatalf("workers = %d, want 2", got)
	}
	victim := s.master.Workers()[0]
	st := s.a.Crash()
	if err := s.cluster.DeletePod(victim); err != nil {
		t.Fatal(err)
	}
	s.eng.RunFor(time.Minute)
	if got := len(s.master.Workers()); got != 2 {
		t.Fatalf("master noticed deletion while controller down: %d workers", got)
	}
	if c := s.a.Restore(st); c != 1 {
		t.Fatalf("corrections = %d, want 1 (vanished worker removed)", c)
	}
	if got := len(s.master.Workers()); got != 1 {
		t.Fatalf("workers after restore = %d, want 1", got)
	}
}

func TestCrashRestoreKeepsLearnedStateAndFinishesWorkload(t *testing.T) {
	s := newStack(t, kubesim.Config{InitialNodes: 3, MaxNodes: 10}, Config{InitialWorkers: 3})
	specs := workload.UniformParams{N: 40, Category: "x", Exec: 2 * time.Minute, Seed: 9}.Specs()
	s.eng.RunFor(time.Minute)
	for _, spec := range specs {
		s.a.Submit(spec)
	}
	// Run until the category is measured mid-workload.
	s.eng.RunWhile(func() bool {
		return !s.a.Monitor().Known("x") && s.eng.Elapsed() < time.Hour
	})
	if !s.a.Monitor().Known("x") {
		t.Fatal("category never measured")
	}
	est, _ := s.a.Monitor().EstimateResources("x")

	st := s.a.Crash()
	s.eng.RunFor(30 * time.Second)
	s.a.Restore(st)

	if !s.a.Monitor().Known("x") {
		t.Fatal("restore lost the measured category")
	}
	if got, _ := s.a.Monitor().EstimateResources("x"); got != est {
		t.Fatalf("estimate changed across restart: %v -> %v", est, got)
	}
	deadline := t0.Add(4 * time.Hour)
	s.eng.RunWhile(func() bool {
		return s.master.CompletedCount() < len(specs) && s.eng.Now().Before(deadline)
	})
	if got := s.master.CompletedCount(); got != len(specs) {
		t.Fatalf("completed = %d/%d after restart", got, len(specs))
	}
	if sub := s.master.SubmittedCount(); sub != len(specs) {
		t.Fatalf("submitted = %d, want %d (no double submission)", sub, len(specs))
	}
}
