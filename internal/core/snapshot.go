package core

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"hta/internal/kubesim"
	"hta/internal/monitor"
	"hta/internal/resources"
	"hta/internal/wq"
)

// AutoscalerState is the checkpoint an HTA controller persists: the
// learned feedback state (category measurements, initialization
// times, loss history) plus the submission-side bookkeeping that is
// not reconstructible from the cluster (held tasks, active probes).
// Pod membership is deliberately absent — it is owned by the API
// server and re-derived from a label-selector list on Restore, which
// is what makes the restore idempotent.
type AutoscalerState struct {
	Monitor monitor.State
	Tracker TrackerState

	RecentKills []time.Time
	LastStale   time.Time

	Held        map[string][]wq.TaskSpec
	ProbeActive []string // categories with a probe in flight, sorted

	PodSeq        int
	EverSubmitted bool
	WarmupOver    bool
}

// Snapshot captures the controller's checkpoint without disturbing
// it. Held task specs are deep-copied.
func (a *Autoscaler) Snapshot() AutoscalerState {
	st := AutoscalerState{
		Monitor:       a.mon.ExportState(),
		Tracker:       a.tracker.ExportState(),
		RecentKills:   append([]time.Time(nil), a.recentKills...),
		LastStale:     a.lastStale,
		PodSeq:        a.podSeq,
		EverSubmitted: a.everSubmitted,
		WarmupOver:    a.warmupOver,
	}
	if len(a.held) > 0 {
		st.Held = make(map[string][]wq.TaskSpec, len(a.held))
		for cat, hs := range a.held {
			st.Held[cat] = append([]wq.TaskSpec(nil), hs...)
		}
	}
	for cat := range a.probeActive {
		st.ProbeActive = append(st.ProbeActive, cat)
	}
	slices.Sort(st.ProbeActive)
	return st
}

// Crash models the controller process dying: the resize loop stops,
// every subscription goes deaf, and all in-memory state is dropped.
// The returned checkpoint is what the process had persisted. Worker
// pods and the master keep running without it. Crash while already
// down returns the zero state.
func (a *Autoscaler) Crash() AutoscalerState {
	if a.down {
		return AutoscalerState{}
	}
	st := a.Snapshot()
	a.cycleTimer.Stop()
	a.stopPanicChecker()
	a.panicSt = panicState{}
	a.pods = make(map[string]workerPodState)
	a.held = make(map[string][]wq.TaskSpec)
	a.probeActive = make(map[string]bool)
	a.recentKills = nil
	a.lastStale = time.Time{}
	a.down = true
	return st
}

// Restore restarts the controller from its checkpoint and reconciles
// it against the live system, idempotently:
//
//   - a Running worker pod unknown to the master is adopted
//     (registered as a worker) rather than recreated — no double
//     scale-up;
//   - a master worker whose pod no longer exists is removed and its
//     tasks requeued — the pod deletion happened while nobody was
//     listening;
//   - held categories measured during the downtime are released —
//     their probe completed even though the completion event was
//     missed;
//   - everSubmitted is recomputed from the master's submission count,
//     covering tasks submitted directly while the controller was
//     away.
//
// The learned state (estimates, init times, loss history) is imported
// as-is, so no re-learning happens. Restore returns the number of
// divergences it corrected.
func (a *Autoscaler) Restore(st AutoscalerState) int {
	a.down = false
	a.mon.ImportState(st.Monitor)
	a.tracker.ImportState(st.Tracker)
	a.recentKills = append([]time.Time(nil), st.RecentKills...)
	a.lastStale = st.LastStale
	a.podSeq = st.PodSeq
	a.everSubmitted = st.EverSubmitted || a.master.SubmittedCount() > 0
	a.warmupOver = st.WarmupOver
	a.held = make(map[string][]wq.TaskSpec, len(st.Held))
	for cat, hs := range st.Held {
		a.held[cat] = append([]wq.TaskSpec(nil), hs...)
	}
	a.probeActive = make(map[string]bool, len(st.ProbeActive))
	for _, cat := range st.ProbeActive {
		a.probeActive[cat] = true
	}

	corrections := 0
	// Re-derive pod membership from the API server.
	a.pods = make(map[string]workerPodState)
	live := a.cluster.ListPods(workerLabels())
	slices.SortFunc(live, func(a, b kubesim.Pod) int { return strings.Compare(a.Name, b.Name) })
	for _, p := range live {
		switch p.Phase {
		case kubesim.PodPending:
			a.pods[p.Name] = podCreating
		case kubesim.PodRunning:
			a.pods[p.Name] = podActive
			if _, known := a.master.WorkerCapacity(p.Name); !known {
				// The pod came up while the controller was down; adopt it.
				name := p.Name
				if err := a.master.AddWorker(name, p.Resources); err == nil {
					_ = a.cluster.SetPodUsage(name, func() resources.Vector {
						return a.master.WorkerUsage(name)
					})
					a.cluster.RecordEvent("pod/"+name, "Adopted",
						"restarted controller registered running pod as worker")
					corrections++
				}
			}
		}
	}
	// Master workers whose pod vanished during the downtime: the
	// deletion event was missed, so requeue their tasks now.
	for _, id := range a.master.Workers() {
		if !strings.HasPrefix(id, "wq-worker-") {
			continue // not a pod this controller manages
		}
		if _, mine := a.pods[id]; !mine {
			a.noteWorkerLoss()
			_ = a.master.KillWorker(id)
			a.cluster.RecordEvent("pod/"+id, "Reconciled",
				"removed worker whose pod was deleted during controller downtime")
			corrections++
		}
	}
	// Held categories measured while the controller was away.
	cats := make([]string, 0, len(a.held))
	for cat := range a.held {
		cats = append(cats, cat)
	}
	slices.Sort(cats)
	for _, cat := range cats {
		if !a.mon.Known(cat) {
			continue
		}
		hs := a.held[cat]
		delete(a.held, cat)
		for _, spec := range hs {
			a.master.Submit(spec)
		}
		a.cluster.RecordEvent("cluster", "ReleasedHeld",
			fmt.Sprintf("released %d held task(s) of measured category %s", len(hs), cat))
		corrections++
	}
	if a.started && !a.cleaned {
		a.scheduleNext(a.cfg.DefaultCycle)
		a.startPanicChecker()
	}
	return corrections
}

// Down reports whether the controller is crashed (between Crash and
// Restore).
func (a *Autoscaler) Down() bool { return a.down }

// OnMasterRestored reconciles the controller after a *master* restart
// it survived: drain requests die with the old master process (a
// reattached worker is not draining), so pods the controller still
// thinks are draining but whose worker reattached are flipped back to
// active; a later resize re-drains them if capacity is still surplus.
// Returns the number of corrections.
func (a *Autoscaler) OnMasterRestored() int {
	corrections := 0
	for _, name := range a.sortedPodNames() {
		if a.pods[name] != podDraining {
			continue
		}
		if _, alive := a.master.WorkerCapacity(name); alive {
			a.pods[name] = podActive
			a.cluster.RecordEvent("pod/"+name, "DrainReset",
				"drain request lost in master restart; pod active again")
			corrections++
		}
	}
	return corrections
}
