package core

import (
	"math"
	"time"

	"hta/internal/kubesim"
)

// LifecycleTracker watches worker-pod events through the informer
// cache and derives the cluster manager's latest resource-
// initialization time (paper §V-B): for every pod whose creation
// passed through all three states — No Available Node
// (FailedScheduling), No Container Image (Pulling) and Running — the
// interval from the creation request to readiness is recorded as the
// newest initialization-time sample.
type LifecycleTracker struct {
	fallback time.Duration
	selector map[string]string

	latest  time.Duration
	samples []time.Duration
}

// NewLifecycleTracker subscribes to the cluster's pod informer.
// fallback is returned by Latest until the first measurement; pods
// not matching the selector (nil = all) are ignored.
func NewLifecycleTracker(cluster *kubesim.Cluster, selector map[string]string, fallback time.Duration) *LifecycleTracker {
	lt := &LifecycleTracker{fallback: fallback, selector: selector}
	cluster.OnPod(lt.onPod)
	return lt
}

func (lt *LifecycleTracker) onPod(ev kubesim.PodWatchEvent) {
	if ev.Type != kubesim.Modified || ev.Reason != kubesim.ReasonStarted {
		return
	}
	if !ev.Pod.MatchesSelector(lt.selector) {
		return
	}
	// Only pods that experienced the full cold path measure the
	// cluster's initialization latency; a pod that landed on an
	// existing warm node says nothing about provisioning.
	if !ev.Pod.UnschedulableSeen || !ev.Pod.PulledImage {
		return
	}
	d := ev.Pod.RunningAt.Sub(ev.Pod.CreatedAt)
	if d <= 0 {
		return
	}
	lt.latest = d
	lt.samples = append(lt.samples, d)
}

// TrackerState is the serializable form of the tracker's
// measurements, for control-plane checkpoints.
type TrackerState struct {
	// Latest is the current estimate; 0 means unmeasured (or marked
	// stale), in which case Latest() serves the fallback.
	Latest  time.Duration
	Samples []time.Duration
}

// ExportState returns a deep copy of the tracker's measurements.
func (lt *LifecycleTracker) ExportState() TrackerState {
	return TrackerState{
		Latest:  lt.latest,
		Samples: append([]time.Duration(nil), lt.samples...),
	}
}

// ImportState replaces the tracker's measurements with the exported
// state (the fallback and selector are construction-time and keep
// their current values).
func (lt *LifecycleTracker) ImportState(st TrackerState) {
	lt.latest = st.Latest
	lt.samples = append([]time.Duration(nil), st.Samples...)
}

// MarkStale discards the current initialization-time estimate:
// Latest returns the fallback again until a fresh cold-start sample
// arrives. HTA calls this after a failure burst, when the last
// measurement predates the fault and may describe a cluster that no
// longer exists (recorded samples are kept for reporting).
func (lt *LifecycleTracker) MarkStale() { lt.latest = 0 }

// Latest returns the most recent initialization time, or the
// fallback before any measurement.
func (lt *LifecycleTracker) Latest() time.Duration {
	if lt.latest == 0 {
		return lt.fallback
	}
	return lt.latest
}

// Measured reports whether at least one sample has been observed.
func (lt *LifecycleTracker) Measured() bool { return lt.latest != 0 }

// Samples returns all observed initialization times in order.
func (lt *LifecycleTracker) Samples() []time.Duration {
	return append([]time.Duration(nil), lt.samples...)
}

// MeanStd returns the sample mean and standard deviation in seconds
// (0, 0 when empty) — the Fig. 6 statistics.
func (lt *LifecycleTracker) MeanStd() (mean, std float64) {
	if len(lt.samples) == 0 {
		return 0, 0
	}
	for _, d := range lt.samples {
		mean += d.Seconds()
	}
	mean /= float64(len(lt.samples))
	if len(lt.samples) > 1 {
		var ss float64
		for _, d := range lt.samples {
			diff := d.Seconds() - mean
			ss += diff * diff
		}
		// Population standard deviation, as Fig. 6 reports.
		std = math.Sqrt(ss / float64(len(lt.samples)))
	}
	return mean, std
}
