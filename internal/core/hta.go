package core

import (
	"fmt"
	"slices"
	"time"

	"hta/internal/kubesim"
	"hta/internal/monitor"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// Config tunes the HTA middleware.
type Config struct {
	// WorkerImage is the worker-pod container image (default
	// "wq-worker").
	WorkerImage string
	// MasterImage is the master container image (default
	// "wq-master").
	MasterImage string
	// InitialWorkers is the warm-up worker-pod count (default 3,
	// matching the paper's initial 3-node cluster).
	InitialWorkers int
	// MaxWorkers caps the worker-pod pool (default: the cluster's
	// MaxNodes quota).
	MaxWorkers int
	// DefaultCycle is the resize interval while supply and demand
	// are balanced (default 30 s).
	DefaultCycle time.Duration
	// InitTimeFallback seeds the initialization-time estimate before
	// the first live measurement (default 160 s, the paper's
	// observed GKE latency).
	InitTimeFallback time.Duration
	// Monitor configures the per-category resource estimator.
	Monitor monitor.Config
	// DeployMaster controls whether HTA creates the master
	// StatefulSet and its Services on the cluster (default true).
	DeployMaster *bool
	// DisableInitFeedback (ablation A1) makes HTA ignore measured
	// initialization times and always plan with InitTimeFallback.
	DisableInitFeedback bool
	// DisableEstimator (ablation A2) turns off per-category resource
	// estimation: tasks with unknown requirements are dispatched
	// conservatively (one per worker) for the whole run and warm-up
	// holdback is skipped.
	DisableEstimator bool
	// Panic layers the kthena-style spike fast path and steady-state
	// damping over the resize loop (see panic.go). The zero value
	// disables it, leaving the decision path byte-identical to the
	// plain per-cycle autoscaler.
	Panic PanicConfig
}

func (c Config) withDefaults(cluster *kubesim.Cluster) Config {
	if c.WorkerImage == "" {
		c.WorkerImage = "wq-worker"
	}
	if c.MasterImage == "" {
		c.MasterImage = "wq-master"
	}
	if c.InitialWorkers == 0 {
		c.InitialWorkers = 3
	}
	if c.MaxWorkers == 0 {
		c.MaxWorkers = cluster.Config().MaxNodes
	}
	if c.DefaultCycle == 0 {
		c.DefaultCycle = 30 * time.Second
	}
	if c.InitTimeFallback == 0 {
		c.InitTimeFallback = 160 * time.Second
	}
	c.Panic = c.Panic.withDefaults()
	if c.DeployMaster == nil {
		yes := true
		c.DeployMaster = &yes
	}
	return c
}

// workerPodState tracks each worker pod HTA manages.
type workerPodState int

const (
	podCreating workerPodState = iota // created, worker not yet connected
	podActive                         // worker connected to the master
	podDraining                       // drain requested
)

// Autoscaler is the HTA middleware: it deploys the Work Queue
// framework on the cluster, relays workflow tasks to the master
// (holding back all but one probe task per unmeasured category during
// warm-up), and runs the feedback resize loop.
type Autoscaler struct {
	eng     *simclock.Engine
	cluster *kubesim.Cluster
	master  *wq.Master
	mon     *monitor.Monitor
	tracker *LifecycleTracker
	cfg     Config

	pods   map[string]workerPodState
	podSeq int

	held        map[string][]wq.TaskSpec // category -> held task specs
	probeActive map[string]bool

	// recentKills timestamps worker pods killed underneath HTA
	// (preemptions, crashes), pruned to the planning window; they feed
	// Algorithm 1's capacity discount and the init-time staleness
	// heuristic.
	recentKills []time.Time
	lastStale   time.Time

	// planner holds Algorithm 1's reusable scratch state so the
	// per-cycle estimate allocates nothing in steady state.
	planner Planner

	// panicSt is the spike fast path's bookkeeping (see panic.go);
	// inert while cfg.Panic is disabled.
	panicSt panicState

	cycleTimer    simclock.Timer
	started       bool
	shutdown      bool
	cleaned       bool
	everSubmitted bool
	warmupOver    bool
	onDone        func()

	// down marks the window between Crash and Restore (see
	// snapshot.go): subscriptions stay registered but are ignored, the
	// way events published while a controller process is dead never
	// reach it.
	down bool

	// Decisions records every resize decision for observability.
	Decisions []DecisionRecord
}

// DecisionRecord is one resize decision with its timestamp. Panic
// marks decisions taken by the spike fast path outside the per-cycle
// cadence.
type DecisionRecord struct {
	At time.Time
	Decision
	Panic bool
}

// workerLabels mark the pods HTA manages.
func workerLabels() map[string]string {
	return map[string]string{"app": "wq-worker", "managed-by": "hta"}
}

// New wires an HTA instance to a cluster and a master. Call Start to
// deploy and begin autoscaling.
func New(eng *simclock.Engine, cluster *kubesim.Cluster, master *wq.Master, cfg Config) *Autoscaler {
	cfg = cfg.withDefaults(cluster)
	a := &Autoscaler{
		eng:         eng,
		cluster:     cluster,
		master:      master,
		mon:         monitor.New(cfg.Monitor),
		cfg:         cfg,
		pods:        make(map[string]workerPodState),
		held:        make(map[string][]wq.TaskSpec),
		probeActive: make(map[string]bool),
	}
	a.tracker = NewLifecycleTracker(cluster, workerLabels(), cfg.InitTimeFallback)
	if !cfg.DisableEstimator {
		master.SetEstimator(a.mon)
	}
	master.OnComplete(a.onTaskComplete)
	master.OnTaskFailed(a.onTaskFailed)
	cluster.OnPod(a.onPodEvent)
	return a
}

// Monitor exposes the per-category estimator (for reporting).
func (a *Autoscaler) Monitor() *monitor.Monitor { return a.mon }

// Tracker exposes the initialization-time tracker.
func (a *Autoscaler) Tracker() *LifecycleTracker { return a.tracker }

// Start runs the warm-up stage: deploy the master StatefulSet and its
// services, create the initial worker pods, and begin the resize
// loop.
func (a *Autoscaler) Start() error {
	if a.started {
		return fmt.Errorf("hta: Start called twice")
	}
	a.started = true
	if *a.cfg.DeployMaster {
		err := a.cluster.CreateStatefulSet(kubesim.StatefulSet{
			Name:     "wq-master",
			Replicas: 1,
			Template: kubesim.PodSpec{
				Image:  a.cfg.MasterImage,
				Labels: map[string]string{"app": "wq-master"},
			},
		})
		if err != nil {
			return err
		}
		for _, svc := range []kubesim.Service{
			{Name: "wq-master", Selector: map[string]string{"app": "wq-master"}, Port: 9123},
			{Name: "wq-master-external", Selector: map[string]string{"app": "wq-master"}, Port: 9123},
		} {
			if err := a.cluster.CreateService(svc); err != nil {
				return err
			}
		}
	}
	for i := 0; i < a.cfg.InitialWorkers; i++ {
		a.createWorkerPod()
	}
	a.scheduleNext(a.cfg.DefaultCycle)
	a.startPanicChecker()
	return nil
}

// Submit relays a workflow task toward the master. During the
// warm-up stage — until the first task of the workload completes —
// tasks of a category with neither declared resources nor completed
// measurements are held back behind a single probe task (paper §V-C
// stage 1: "HTA sends out only a portion of jobs with one job per
// category"); the rest of the category is released when its probe
// completes. After warm-up, unknown tasks go straight to the master,
// where the first of each new category still runs exclusively and is
// measured (paper §IV-A).
func (a *Autoscaler) Submit(spec wq.TaskSpec) int {
	if a.down {
		// No controller to hold tasks back: clients talk straight to the
		// master (Restore reconciles everSubmitted from the master's
		// submission count).
		return a.master.Submit(spec)
	}
	a.everSubmitted = true
	if a.cfg.DisableEstimator || a.warmupOver || !spec.Resources.IsZero() || a.mon.Known(spec.Category) {
		return a.master.Submit(spec)
	}
	if !a.probeActive[spec.Category] {
		a.probeActive[spec.Category] = true
		return a.master.Submit(spec)
	}
	a.held[spec.Category] = append(a.held[spec.Category], spec)
	return 0
}

// HeldTasks returns how many tasks are held back awaiting category
// measurements.
func (a *Autoscaler) HeldTasks() int {
	n := 0
	for _, hs := range a.held {
		n += len(hs)
	}
	return n
}

// OnComplete subscribes to task completions (delegates to the
// master; HTA's own bookkeeping runs first).
func (a *Autoscaler) OnComplete(fn func(wq.Result)) { a.master.OnComplete(fn) }

// OnTaskFailed subscribes to permanent task failures (delegates to
// the master; HTA's own bookkeeping runs first).
func (a *Autoscaler) OnTaskFailed(fn func(wq.Task)) { a.master.OnTaskFailed(fn) }

// Shutdown enters the clean-up stage: once the queue drains, all
// workers are drained, the deployment units are deleted, and onDone
// fires.
func (a *Autoscaler) Shutdown(onDone func()) {
	a.shutdown = true
	a.onDone = onDone
	a.maybeCleanup()
}

func (a *Autoscaler) onTaskComplete(r wq.Result) {
	if a.down {
		return
	}
	a.mon.Observe(r.Task)
	a.warmupOver = true
	// Release any held tasks of the now-measured category.
	if hs := a.held[r.Task.Category]; len(hs) > 0 {
		delete(a.held, r.Task.Category)
		for _, spec := range hs {
			a.master.Submit(spec)
		}
	}
	a.maybeCleanup()
}

func (a *Autoscaler) maybeCleanup() {
	if !a.shutdown || a.cleaned {
		return
	}
	s := a.master.Stats()
	if s.Waiting > 0 || s.Running > 0 || a.HeldTasks() > 0 {
		return
	}
	a.cleaned = true
	a.cycleTimer.Stop()
	a.stopPanicChecker()
	for _, name := range a.sortedPodNames() {
		if a.pods[name] != podDraining {
			a.drainPod(name)
		}
	}
	if *a.cfg.DeployMaster {
		// Best-effort removal of the deployment units.
		_ = a.cluster.DeleteStatefulSet("wq-master")
	}
	if a.onDone != nil {
		done := a.onDone
		a.onDone = nil
		a.eng.After(0, "hta-shutdown-done", done)
	}
}

// --- pod/worker glue ---

func (a *Autoscaler) createWorkerPod() {
	a.podSeq++
	name := fmt.Sprintf("wq-worker-%d", a.podSeq)
	// One worker-pod per node: the pod requests the node's entire
	// allocatable vector (paper §IV-A).
	spec := kubesim.PodSpec{
		Name:      name,
		Image:     a.cfg.WorkerImage,
		Resources: a.cluster.Config().NodeAllocatable,
		Labels:    workerLabels(),
	}
	if _, err := a.cluster.CreatePod(spec); err != nil {
		a.podSeq--
		return
	}
	a.pods[name] = podCreating
}

func (a *Autoscaler) onPodEvent(ev kubesim.PodWatchEvent) {
	if a.down {
		return
	}
	name := ev.Pod.Name
	st, mine := a.pods[name]
	if !mine {
		return
	}
	switch {
	case ev.Type == kubesim.Modified && ev.Reason == kubesim.ReasonStarted:
		if st != podCreating {
			return
		}
		a.pods[name] = podActive
		if err := a.master.AddWorker(name, ev.Pod.Resources); err == nil {
			_ = a.cluster.SetPodUsage(name, func() resources.Vector {
				return a.master.WorkerUsage(name)
			})
		}
	case ev.Type == kubesim.Deleted:
		delete(a.pods, name)
		if st == podActive && ev.Reason == kubesim.ReasonKilling {
			// Pod killed underneath us (preemption, node failure):
			// requeue its tasks and remember the loss for planning.
			a.noteWorkerLoss()
			_ = a.master.KillWorker(name)
		}
	}
}

// failureBurstKills is how many worker losses within one planning
// window count as a burst, after which the measured initialization
// time is considered stale and re-measured from the next cold start.
const failureBurstKills = 2

// killWindow is the horizon over which worker losses stay relevant:
// the planning window itself (capacity lost longer ago than one init
// time has already been replanned around).
func (a *Autoscaler) killWindow() time.Duration {
	w := a.tracker.Latest()
	if min := 2 * a.cfg.DefaultCycle; w < min {
		w = min
	}
	return w
}

func (a *Autoscaler) pruneKills(now time.Time) {
	cutoff := now.Add(-a.killWindow())
	keep := a.recentKills[:0]
	for _, ts := range a.recentKills {
		if ts.After(cutoff) {
			keep = append(keep, ts)
		}
	}
	a.recentKills = keep
}

func (a *Autoscaler) noteWorkerLoss() {
	now := a.eng.Now()
	a.pruneKills(now)
	a.recentKills = append(a.recentKills, now)
	if len(a.recentKills) >= failureBurstKills &&
		(a.lastStale.IsZero() || now.Sub(a.lastStale) > a.killWindow()) {
		// A burst of losses means the last measured init time predates
		// the fault regime; fall back and re-measure from the next
		// cold-started pod.
		a.tracker.MarkStale()
		a.lastStale = now
	}
}

// capacityDiscount is Algorithm 1's preemption hedge: the fraction of
// current capacity assumed to vanish within the window, from the
// observed loss rate (losses / (losses + live workers)), capped at
// one half so the planner never writes off a majority of the fleet.
func (a *Autoscaler) capacityDiscount(liveWorkers int) float64 {
	k := len(a.recentKills)
	if k == 0 || liveWorkers == 0 {
		return 0
	}
	d := float64(k) / float64(k+liveWorkers)
	if d > 0.5 {
		d = 0.5
	}
	return d
}

// onTaskFailed reacts to a quarantined task. A quarantined probe can
// never report a measurement, so tasks held behind it are released
// (each runs conservatively until one completes and the category is
// measured); without this, a poison probe would strand its category
// forever.
func (a *Autoscaler) onTaskFailed(t wq.Task) {
	if a.down {
		return
	}
	if a.probeActive[t.Category] && !a.mon.Known(t.Category) {
		delete(a.probeActive, t.Category)
		if hs := a.held[t.Category]; len(hs) > 0 {
			delete(a.held, t.Category)
			for _, spec := range hs {
				a.master.Submit(spec)
			}
		}
	}
	a.maybeCleanup()
}

func (a *Autoscaler) drainPod(name string) {
	st := a.pods[name]
	switch st {
	case podCreating:
		// Never connected: delete outright.
		delete(a.pods, name)
		_ = a.cluster.DeletePod(name)
		return
	case podDraining:
		return
	}
	a.pods[name] = podDraining
	err := a.master.DrainWorker(name, func() {
		// Worker exited cleanly; the pod completes and is removed.
		if _, ok := a.pods[name]; !ok {
			return
		}
		delete(a.pods, name)
		_ = a.cluster.MarkPodSucceeded(name)
		_ = a.cluster.DeletePod(name)
	})
	if err != nil {
		// Worker never connected or already gone.
		delete(a.pods, name)
		_ = a.cluster.DeletePod(name)
	}
}

func (a *Autoscaler) podCounts() (creating, active, draining int) {
	for _, st := range a.pods {
		switch st {
		case podCreating:
			creating++
		case podActive:
			active++
		case podDraining:
			draining++
		}
	}
	return
}

// WorkerPodCount returns the number of live (non-draining) worker
// pods HTA manages.
func (a *Autoscaler) WorkerPodCount() int {
	creating, active, _ := a.podCounts()
	return creating + active
}

// --- resize loop ---

func (a *Autoscaler) scheduleNext(d time.Duration) {
	if d < time.Second {
		d = time.Second
	}
	a.cycleTimer = a.eng.After(d, "hta-resize", a.resizeOnce)
}

func (a *Autoscaler) resizeOnce() {
	if a.shutdown {
		a.maybeCleanup()
		if !a.cleaned {
			// Queue not drained yet; keep cycling.
			a.scheduleNext(a.cfg.DefaultCycle)
		}
		return
	}
	if !a.everSubmitted {
		// Warm-up stage: keep the initial fleet until the first batch
		// arrives.
		a.scheduleNext(a.cfg.DefaultCycle)
		return
	}
	dec := a.decide()
	if dec.ScaleChange < 0 && a.HeldTasks() > 0 {
		// Held tasks are demand that will be released the moment a
		// category probe completes; keep the fleet for them.
		dec.ScaleChange = 0
	}
	dec = a.governDecision(dec)
	a.Decisions = append(a.Decisions, DecisionRecord{At: a.eng.Now(), Decision: dec})
	a.apply(dec)
	a.scheduleNext(dec.NextCycle)
}

// decide assembles Algorithm 1's inputs from the live system and
// evaluates it.
func (a *Autoscaler) decide() Decision {
	return a.planner.EstimateScale(a.estimateInput())
}

// estimateInput snapshots Algorithm 1's inputs from the live system;
// shared by the per-cycle decision and the panic fast path.
func (a *Autoscaler) estimateInput() EstimateInput {
	var workers []WorkerInfo
	for _, id := range a.master.Workers() {
		if a.pods[id] == podDraining {
			continue
		}
		if cap, ok := a.master.WorkerCapacity(id); ok {
			workers = append(workers, WorkerInfo{ID: id, Capacity: cap})
		}
	}
	var estimator wq.Estimator
	if !a.cfg.DisableEstimator {
		estimator = a.mon
	}
	a.pruneKills(a.eng.Now())
	return EstimateInput{
		Now:              a.eng.Now(),
		InitTime:         a.planningInitTime(),
		DefaultCycle:     a.cfg.DefaultCycle,
		Running:          a.master.RunningTasks(),
		Waiting:          a.master.WaitingTasks(),
		Estimator:        estimator,
		Workers:          workers,
		WorkerTemplate:   a.cluster.Config().NodeAllocatable,
		CapacityDiscount: a.capacityDiscount(len(workers)),
	}
}

func (a *Autoscaler) apply(dec Decision) {
	creating, active, _ := a.podCounts()
	switch {
	case dec.ScaleChange > 0:
		// Pods already being created absorb part of the need.
		n := dec.ScaleChange - creating
		if room := a.cfg.MaxWorkers - creating - active; n > room {
			n = room
		}
		for i := 0; i < n; i++ {
			a.createWorkerPod()
		}
	case dec.ScaleChange < 0:
		a.drainIdle(-dec.ScaleChange)
	}
}

// sortedPodNames returns managed pod names in deterministic order.
func (a *Autoscaler) sortedPodNames() []string {
	names := make([]string, 0, len(a.pods))
	for name := range a.pods {
		names = append(names, name)
	}
	slices.Sort(names)
	return names
}

// drainIdle drains up to n idle workers (and surplus still-creating
// pods first, which are free to cancel).
func (a *Autoscaler) drainIdle(n int) {
	for _, name := range a.sortedPodNames() {
		if n == 0 {
			return
		}
		if a.pods[name] == podCreating {
			a.drainPod(name)
			n--
		}
	}
	for _, id := range a.master.Workers() {
		if n == 0 {
			return
		}
		if a.pods[id] != podActive || a.master.WorkerBusy(id) {
			continue
		}
		a.drainPod(id)
		n--
	}
}

// Status is a point-in-time snapshot of the autoscaler, for
// dashboards and CLIs.
type Status struct {
	Stage string // "warm-up", "runtime", "clean-up", "done"

	WorkersActive   int
	WorkersCreating int
	WorkersDraining int

	QueueWaiting int
	QueueRunning int
	TasksHeld    int
	Completed    int

	InitTime         time.Duration // current planning window
	InitTimeMeasured bool
	KnownCategories  []string
	Decisions        int
}

// Status reports the autoscaler's current state.
func (a *Autoscaler) Status() Status {
	s := a.master.Stats()
	creating, active, draining := a.podCounts()
	st := Status{
		WorkersActive:    active,
		WorkersCreating:  creating,
		WorkersDraining:  draining,
		QueueWaiting:     s.Waiting,
		QueueRunning:     s.Running,
		TasksHeld:        a.HeldTasks(),
		Completed:        a.master.CompletedCount(),
		InitTime:         a.tracker.Latest(),
		InitTimeMeasured: a.tracker.Measured(),
		KnownCategories:  a.mon.Categories(),
		Decisions:        len(a.Decisions),
	}
	switch {
	case a.cleaned:
		st.Stage = "done"
	case a.shutdown:
		st.Stage = "clean-up"
	case !a.warmupOver:
		st.Stage = "warm-up"
	default:
		st.Stage = "runtime"
	}
	return st
}

// String renders a one-line status summary.
func (s Status) String() string {
	return fmt.Sprintf("[%s] workers=%d(+%d creating, %d draining) queue=%d/%d held=%d done=%d init=%.0fs cats=%d",
		s.Stage, s.WorkersActive, s.WorkersCreating, s.WorkersDraining,
		s.QueueWaiting, s.QueueRunning, s.TasksHeld, s.Completed,
		s.InitTime.Seconds(), len(s.KnownCategories))
}
