package core

import (
	"fmt"
	"testing"
	"time"

	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// scaleBenchInput builds the ISSUE's Algorithm 1 stress snapshot: 1000
// workers each running one long task (about half complete inside the
// window), and 10000 waiting tasks arriving in category blocks of 50 —
// four estimator-known categories, one declared-resources block and one
// unmeasured probe category.
func scaleBenchInput() EstimateInput {
	in := EstimateInput{
		Now:            t0,
		InitTime:       160 * time.Second,
		DefaultCycle:   30 * time.Second,
		WorkerTemplate: nodeCap,
		Estimator: &mapEstimator{
			res: map[string]resources.Vector{
				"c0": resources.New(1, 3800, 0),
				"c1": resources.New(1, 3800, 0),
				"c2": resources.New(1, 3800, 0),
				"c3": resources.New(1, 3800, 0),
			},
			dur: map[string]time.Duration{
				"c0": 200 * time.Second,
				"c1": 300 * time.Second,
				"c2": 400 * time.Second,
				"c3": 500 * time.Second,
				"lr": 300 * time.Second,
			},
		},
	}
	alloc := resources.New(1, 3800, 0)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("w%d", i)
		in.Workers = append(in.Workers, WorkerInfo{ID: id, Capacity: nodeCap})
		in.Running = append(in.Running, wq.Task{
			TaskSpec:  wq.TaskSpec{Category: "lr"},
			WorkerID:  id,
			StartedAt: t0.Add(-time.Duration(i%300) * time.Second),
			Allocated: alloc,
		})
	}
	for i := 0; i < 10000; i++ {
		t := wq.Task{}
		switch (i / 50) % 6 {
		case 0, 1, 2, 3:
			t.Category = fmt.Sprintf("c%d", (i/50)%6)
		case 4:
			t.Category = "c0"
			t.Resources = resources.New(2, 2048, 0)
		case 5:
			t.Category = "probe" // unmeasured: needs an idle worker
		}
		in.Waiting = append(in.Waiting, t)
	}
	return in
}

// BenchmarkEstimateScale measures the grouped planner on the 10k-task
// × 1k-worker snapshot, reusing one Planner across iterations the way
// the autoscaler does (steady state should report zero allocs/op).
func BenchmarkEstimateScale(b *testing.B) {
	in := scaleBenchInput()
	var p Planner
	p.EstimateScale(in)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if dec := p.EstimateScale(in); dec.ScaleChange <= 0 {
			b.Fatalf("expected a scale-up, got %+v", dec)
		}
	}
}

// BenchmarkEstimateScaleNaive runs the retained per-task reference on
// the same snapshot — the baseline for the speedup claim.
func BenchmarkEstimateScaleNaive(b *testing.B) {
	in := scaleBenchInput()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if dec := ReferenceEstimateScale(in); dec.ScaleChange <= 0 {
			b.Fatalf("expected a scale-up, got %+v", dec)
		}
	}
}

// BenchmarkEstimateScaleSmall keeps the original 20-worker, 300-task
// scenario for historical comparison with earlier benchmark records.
func BenchmarkEstimateScaleSmall(b *testing.B) {
	in := EstimateInput{
		Now:            t0,
		InitTime:       160 * time.Second,
		DefaultCycle:   30 * time.Second,
		WorkerTemplate: nodeCap,
		Estimator: &mapEstimator{
			res: map[string]resources.Vector{"c": resources.New(1, 3800, 0)},
			dur: map[string]time.Duration{"c": 300 * time.Second},
		},
	}
	for i := 0; i < 20; i++ {
		in.Workers = append(in.Workers, WorkerInfo{ID: fmt.Sprintf("w%d", i), Capacity: nodeCap})
	}
	alloc := resources.New(1, 3800, 0)
	for i := 0; i < 60; i++ {
		in.Running = append(in.Running, wq.Task{
			TaskSpec:  wq.TaskSpec{Category: "c"},
			WorkerID:  fmt.Sprintf("w%d", i%20),
			StartedAt: t0.Add(-time.Duration(i) * time.Second),
			Allocated: alloc,
		})
	}
	in.Waiting = waiting(300, "c")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dec := EstimateScale(in)
		if dec.ScaleChange == 0 && dec.UnplacedWaiting == 0 {
			b.Fatal("unexpected trivial decision")
		}
	}
}

// BenchmarkPanicBurst runs the panic fast path end to end — a
// submission burst into a small simulated fleet gets sampled,
// triggers, and scales — so regressions in the checker's sampling or
// the instantaneous-shortage evaluation show up as sim wall time. One
// iteration is one full scenario.
func BenchmarkPanicBurst(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := simclock.NewEngine(t0)
		cluster := kubesim.NewCluster(eng, kubesim.Config{
			InitialNodes:  2,
			MaxNodes:      40,
			ProvisionMean: 10 * time.Second,
			Seed:          1,
		})
		master := wq.NewMaster(eng, nil)
		a := New(eng, cluster, master, Config{
			InitialWorkers: 2,
			DefaultCycle:   5 * time.Minute, // cadence asleep: only panic reacts
			Panic:          PanicConfig{Enabled: true},
		})
		if err := a.Start(); err != nil {
			b.Fatal(err)
		}
		eng.RunFor(2 * time.Minute)
		for j := 0; j < 60; j++ {
			a.Submit(wq.TaskSpec{
				Category:  "burst",
				Resources: resources.New(1, 3072, 0),
				Profile:   wq.Profile{ExecDuration: 10 * time.Minute, UsedCPUMilli: 900},
			})
		}
		eng.RunFor(time.Minute)
		if a.PanicCount() == 0 {
			b.Fatal("no panic fired on the burst")
		}
		cluster.Stop()
	}
}
