package core

import (
	"fmt"
	"testing"
	"time"

	"hta/internal/resources"
	"hta/internal/wq"
)

// BenchmarkEstimateScale measures Algorithm 1 on a busy snapshot:
// 20 workers, 60 running tasks, 300 waiting.
func BenchmarkEstimateScale(b *testing.B) {
	in := EstimateInput{
		Now:            t0,
		InitTime:       160 * time.Second,
		DefaultCycle:   30 * time.Second,
		WorkerTemplate: nodeCap,
		Estimator: &mapEstimator{
			res: map[string]resources.Vector{"c": resources.New(1, 3800, 0)},
			dur: map[string]time.Duration{"c": 300 * time.Second},
		},
	}
	for i := 0; i < 20; i++ {
		in.Workers = append(in.Workers, WorkerInfo{ID: fmt.Sprintf("w%d", i), Capacity: nodeCap})
	}
	alloc := resources.New(1, 3800, 0)
	for i := 0; i < 60; i++ {
		in.Running = append(in.Running, wq.Task{
			TaskSpec:  wq.TaskSpec{Category: "c"},
			WorkerID:  fmt.Sprintf("w%d", i%20),
			StartedAt: t0.Add(-time.Duration(i) * time.Second),
			Allocated: alloc,
		})
	}
	in.Waiting = waiting(300, "c")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dec := EstimateScale(in)
		if dec.ScaleChange == 0 && dec.UnplacedWaiting == 0 {
			b.Fatal("unexpected trivial decision")
		}
	}
}
