// Package core implements the paper's contribution: the
// High-Throughput Autoscaler (HTA), a well-informed feedback
// autoscaler for HTC workloads on a container orchestrator.
//
// HTA combines three signals: the job scheduler's queue state, the
// per-category resource consumption and execution time of completed
// jobs (the feedback input, via the resource monitor), and the
// cluster manager's resource-initialization time (measured live from
// worker-pod lifecycle events). Every resource-initialization cycle
// it simulates the dispatch of the current queue over the next cycle
// (Algorithm 1 of the paper), computes the resource shortage at the
// cycle's end, and resizes the worker-pod pool accordingly — creating
// node-sized worker pods on scale-up and draining idle workers (never
// killing running jobs) on scale-down.
package core

import (
	"time"

	"hta/internal/resources"
	"hta/internal/wq"
)

// WorkerInfo describes an active (non-draining) worker for the
// estimation simulation.
type WorkerInfo struct {
	ID       string
	Capacity resources.Vector
}

// EstimateInput carries the paper's Algorithm 1 inputs: the latest
// resource-initialization time, the running and waiting task sets,
// per-category runtime information (via the estimator), and the
// active workers.
type EstimateInput struct {
	// Now is the time the estimate is made (running tasks' elapsed
	// time is measured against it).
	Now time.Time
	// InitTime is the latest measured resource-initialization time —
	// the length of the simulated window.
	InitTime time.Duration
	// DefaultCycle is returned as the next-action delay when the
	// queue drains within the window.
	DefaultCycle time.Duration
	// Running and Waiting are the scheduler's task snapshots.
	Running []wq.Task
	Waiting []wq.Task
	// Estimator supplies per-category resource and execution-time
	// predictions (the resource monitor). It must be pure for the
	// duration of one estimate: the planner memoizes one lookup per
	// category instead of re-querying per task.
	Estimator wq.Estimator
	// Workers are the active workers, in dispatch order.
	Workers []WorkerInfo
	// WorkerTemplate is the capacity of a newly created worker
	// (node-sized, per the paper's one-worker-per-node deployment).
	WorkerTemplate resources.Vector
	// CapacityDiscount in [0, 1) shrinks every existing worker's
	// simulated capacity by that fraction — the autoscaler's hedge
	// against recently observed preemptions: capacity that may vanish
	// within the window is not counted on, so the plan over-provisions
	// to compensate. 0 = trust the fleet fully.
	CapacityDiscount float64
}

// Decision is Algorithm 1's output.
type Decision struct {
	// ScaleChange is the desired change in worker count: positive =
	// create workers, negative = drain idle workers, zero = hold.
	ScaleChange int
	// NextCycle is the recommended delay until the next resize
	// action: the init time when scaling up (the new resources take
	// that long to arrive), the longest predicted remaining runtime
	// when scaling down, or DefaultCycle when balanced.
	NextCycle time.Duration

	// Diagnostics.
	PredictedIdleWorkers int
	UnplacedWaiting      int
}

// completionEvent is a predicted task completion inside the window.
type completionEvent struct {
	at     time.Duration // offset from Now
	worker int           // index into pools
	alloc  resources.Vector
}

// groupKey identifies waiting tasks that are indistinguishable to the
// simulation: same predicted size, same knownness, same predicted
// execution time. Category names that map to identical predictions
// merge — the dispatch policy cannot tell them apart.
type groupKey struct {
	res    resources.Vector
	known  bool
	exec   time.Duration
	hasExc bool
}

// taskRun is a maximal run of consecutive waiting tasks sharing one
// groupKey; the simulation places it as a count instead of per-task
// structs. count is the still-unplaced remainder.
type taskRun struct {
	key   groupKey
	group int // index into Planner.groups
	count int
}

// groupState carries per-key first-fit resume pointers. Within one
// dispatch pass pools only shrink and exclusivity flags only set, so a
// prefix of pools that rejected the key keeps rejecting it and can be
// skipped; the same monotonicity holds for the shortage-phase bins.
type groupState struct {
	poolPtr int
	binPtr  int
}

// catEstimate memoizes one estimator lookup per category per call.
type catEstimate struct {
	res    resources.Vector
	resOK  bool
	exec   time.Duration
	execOK bool
}

// Planner evaluates Algorithm 1 with reusable scratch state so
// steady-state cycles allocate nothing. The zero value is ready to
// use; a Planner is not safe for concurrent use.
type Planner struct {
	pools    []resources.Vector
	index    map[string]int
	used     []bool
	busy     []int
	events   []completionEvent // binary min-heap ordered like container/heap
	runs     []taskRun
	pending  []int // indexes of runs with unplaced tasks, queue order
	groups   []groupState
	groupIdx map[groupKey]int
	cats     map[string]catEstimate
	bins     []resources.Vector
}

// EstimateScale implements the paper's Algorithm 1. It simulates the
// execution of the workflow over one resource-initialization cycle:
// running tasks free their allocations at their predicted completion
// times, waiting tasks are dispatched into freed capacity (and may
// themselves complete within the window), and the final balance
// decides the scaling action. It is a convenience wrapper allocating a
// fresh Planner; long-lived callers should hold a Planner and call its
// method to reuse the scratch state across cycles.
func EstimateScale(in EstimateInput) Decision {
	var p Planner
	return p.EstimateScale(in)
}

// EstimateScale evaluates Algorithm 1 on the planner's scratch state.
// Decisions are byte-identical to ReferenceEstimateScale: the grouped
// simulation replays the exact placement and event sequence of the
// per-task form, it just skips work that provably cannot change it.
func (p *Planner) EstimateScale(in EstimateInput) Decision {
	if in.DefaultCycle <= 0 {
		in.DefaultCycle = 30 * time.Second
	}
	p.reset(len(in.Workers))

	for i, w := range in.Workers {
		p.pools = append(p.pools, discountCapacity(w.Capacity, in.CapacityDiscount))
		p.index[w.ID] = i
		p.used = append(p.used, false)
		p.busy = append(p.busy, 0)
	}

	var maxRemaining time.Duration
	for _, t := range in.Running {
		wi, ok := p.index[t.WorkerID]
		if !ok {
			// Task on a draining or unknown worker: its capacity is
			// not part of the active pool.
			continue
		}
		p.pools[wi] = p.pools[wi].Sub(t.Allocated)
		p.busy[wi]++
		rem, known := p.remainingTime(in, t)
		if !known || rem > in.InitTime {
			if rem > maxRemaining {
				maxRemaining = rem
			}
			continue // holds its allocation past the window
		}
		p.pushEvent(completionEvent{at: rem, worker: wi, alloc: t.Allocated})
	}

	p.buildRuns(in)

	// Initial dispatch pass at t=0: walk the runs in queue order,
	// first-fit over all pools with per-key resume pointers.
	for ri := range p.runs {
		r := &p.runs[ri]
		g := &p.groups[r.group]
		for r.count > 0 {
			wi := g.poolPtr
			if r.key.known {
				for wi < len(p.pools) && (p.used[wi] || !r.key.res.Fits(p.pools[wi])) {
					wi++
				}
			} else {
				for wi < len(p.pools) && (p.busy[wi] != 0 || p.used[wi]) {
					wi++
				}
			}
			g.poolPtr = wi
			if wi == len(p.pools) {
				break
			}
			if r.key.known {
				p.placeBatch(in, r, wi, 0, &maxRemaining)
			} else {
				p.placeOneExclusive(in, r, wi, 0, &maxRemaining)
			}
		}
		if r.count > 0 {
			p.pending = append(p.pending, ri)
		}
	}
	minKnown, haveKnown, unknownPending := p.pendingBounds()

	for len(p.events) > 0 {
		ev := p.popEvent()
		if ev.at > in.InitTime {
			break
		}
		w := ev.worker
		p.pools[w] = p.pools[w].Add(ev.alloc)
		p.busy[w]--
		p.used[w] = false
		// Only worker w gained capacity (or idleness) since every
		// pending run last failed against the whole fleet, so only w
		// can accept a task now. Skip the pass outright if even the
		// component-wise minimum pending request cannot fit.
		if !(haveKnown && minKnown.Fits(p.pools[w])) &&
			!(unknownPending && p.busy[w] == 0) {
			continue
		}
		changed := false
		for _, ri := range p.pending {
			r := &p.runs[ri]
			if r.count == 0 {
				continue
			}
			if r.key.known {
				if !p.used[w] && r.key.res.Fits(p.pools[w]) {
					p.placeBatch(in, r, w, ev.at, &maxRemaining)
					changed = true
				}
			} else if p.busy[w] == 0 && !p.used[w] {
				p.placeOneExclusive(in, r, w, ev.at, &maxRemaining)
				changed = true
			}
		}
		if changed {
			p.compactPending()
			minKnown, haveKnown, unknownPending = p.pendingBounds()
		}
	}

	unplaced := 0
	for _, ri := range p.pending {
		unplaced += p.runs[ri].count
	}
	idle := 0
	for wi := range p.pools {
		if p.busy[wi] == 0 {
			idle++
		}
	}
	// Everything dispatched within the cycle: resources are
	// sufficient. Workers predicted idle at the window's end are
	// drained — the "removing idle resources" half of the paper's
	// queue-driven policy (§IV-B), which produces the mid-workflow
	// supply dip of Fig. 10b. (The paper's printed Algorithm 1
	// returns 0 here; without the drain, a stage boundary leaves the
	// whole fleet idle for a full stage.)
	if unplaced == 0 {
		return Decision{
			ScaleChange:          -idle,
			NextCycle:            in.DefaultCycle,
			PredictedIdleWorkers: idle,
		}
	}

	// Spare whole workers at the end of the window: scale down by
	// the number of idle workers (paper line 22-24).
	if idle > 0 {
		next := maxRemaining
		if next <= 0 || next > in.InitTime {
			next = in.InitTime
		}
		if next < in.DefaultCycle {
			next = in.DefaultCycle
		}
		return Decision{
			ScaleChange:          -idle,
			NextCycle:            next,
			PredictedIdleWorkers: idle,
			UnplacedWaiting:      unplaced,
		}
	}

	// Shortage: first-fit pack the unplaced tasks onto hypothetical
	// new workers (paper line 25, WorkerRequired). Bins only shrink,
	// so each key resumes from the first bin that has not rejected it.
	p.bins = p.bins[:0]
	for _, ri := range p.pending {
		r := &p.runs[ri]
		res := r.key.res
		if !r.key.known || !res.Fits(in.WorkerTemplate) {
			// Unknown-size tasks run exclusively; oversized estimates
			// are clamped to a whole worker.
			res = in.WorkerTemplate
		}
		g := &p.groups[r.group]
		for i := 0; i < r.count; i++ {
			b := g.binPtr
			for b < len(p.bins) && !res.Fits(p.bins[b]) {
				b++
			}
			g.binPtr = b
			if b == len(p.bins) {
				p.bins = append(p.bins, in.WorkerTemplate.Sub(res))
			} else {
				p.bins[b] = p.bins[b].Sub(res)
			}
		}
	}
	return Decision{
		ScaleChange:     len(p.bins),
		NextCycle:       in.InitTime,
		UnplacedWaiting: unplaced,
	}
}

// reset prepares the scratch state for a fresh evaluation.
func (p *Planner) reset(workers int) {
	p.pools = p.pools[:0]
	p.used = p.used[:0]
	p.busy = p.busy[:0]
	p.events = p.events[:0]
	p.runs = p.runs[:0]
	p.pending = p.pending[:0]
	p.groups = p.groups[:0]
	p.bins = p.bins[:0]
	if p.index == nil {
		p.index = make(map[string]int, workers)
		p.groupIdx = make(map[groupKey]int)
		p.cats = make(map[string]catEstimate)
	} else {
		clear(p.index)
		clear(p.groupIdx)
		clear(p.cats)
	}
}

// catEstimate memoizes the estimator's per-category answers; the
// estimator is assumed pure within one evaluation.
func (p *Planner) catEstimate(in EstimateInput, cat string) catEstimate {
	if ce, ok := p.cats[cat]; ok {
		return ce
	}
	var ce catEstimate
	if in.Estimator != nil {
		ce.res, ce.resOK = in.Estimator.EstimateResources(cat)
		ce.exec, ce.execOK = in.Estimator.EstimateExecTime(cat)
	}
	p.cats[cat] = ce
	return ce
}

// remainingTime predicts how much longer a running task needs, via the
// memoized per-category execution time.
func (p *Planner) remainingTime(in EstimateInput, t wq.Task) (time.Duration, bool) {
	ce := p.catEstimate(in, t.Category)
	if !ce.execOK {
		return 0, false
	}
	elapsed := in.Now.Sub(t.StartedAt)
	rem := ce.exec - elapsed
	if rem < 0 {
		rem = 0
	}
	return rem, true
}

// buildRuns compresses the waiting queue into maximal runs of
// identically predicted tasks, preserving queue order.
func (p *Planner) buildRuns(in EstimateInput) {
	for i := range in.Waiting {
		t := &in.Waiting[i]
		var key groupKey
		if !t.Resources.IsZero() {
			key.res, key.known = t.Resources, true
			ce := p.catEstimate(in, t.Category)
			key.exec, key.hasExc = ce.exec, ce.execOK
		} else {
			ce := p.catEstimate(in, t.Category)
			if ce.resOK && !ce.res.IsZero() {
				key.res, key.known = ce.res, true
			}
			key.exec, key.hasExc = ce.exec, ce.execOK
		}
		if !key.hasExc {
			key.exec = 0
		}
		if n := len(p.runs); n > 0 && p.runs[n-1].key == key {
			p.runs[n-1].count++
			continue
		}
		gi, ok := p.groupIdx[key]
		if !ok {
			gi = len(p.groups)
			p.groups = append(p.groups, groupState{})
			p.groupIdx[key] = gi
		}
		p.runs = append(p.runs, taskRun{key: key, group: gi, count: 1})
	}
}

// placeBatch places as many tasks of the run as fit on pool wi at
// simulated time at — the exact sequence of single placements the
// per-task form performs, collapsed into one capacity division.
func (p *Planner) placeBatch(in EstimateInput, r *taskRun, wi int, at time.Duration, maxRemaining *time.Duration) {
	res := r.key.res
	k := r.count
	// Only strictly positive components bound the batch; Fits already
	// held once, so the quotients are ≥ 1.
	if res.MilliCPU > 0 {
		if q := int(p.pools[wi].MilliCPU / res.MilliCPU); q < k {
			k = q
		}
	}
	if res.MemoryMB > 0 {
		if q := int(p.pools[wi].MemoryMB / res.MemoryMB); q < k {
			k = q
		}
	}
	if res.DiskMB > 0 {
		if q := int(p.pools[wi].DiskMB / res.DiskMB); q < k {
			k = q
		}
	}
	for i := 0; i < k; i++ {
		p.busy[wi]++
		p.pools[wi] = p.pools[wi].Sub(res)
		p.finishPlacement(in, r.key, wi, at, res, maxRemaining)
	}
	r.count -= k
}

// placeOneExclusive dedicates the idle pool wi to one unknown-size
// task of the run.
func (p *Planner) placeOneExclusive(in EstimateInput, r *taskRun, wi int, at time.Duration, maxRemaining *time.Duration) {
	alloc := p.pools[wi] // whole remaining (idle) worker
	p.used[wi] = true
	p.busy[wi]++
	p.pools[wi] = p.pools[wi].Sub(alloc)
	p.finishPlacement(in, r.key, wi, at, alloc, maxRemaining)
	r.count--
}

// finishPlacement replays the per-task epilogue: queue a completion
// event when the task finishes inside the window, otherwise extend the
// predicted busy horizon.
func (p *Planner) finishPlacement(in EstimateInput, key groupKey, wi int, at time.Duration, alloc resources.Vector, maxRemaining *time.Duration) {
	if key.hasExc && at+key.exec <= in.InitTime {
		p.pushEvent(completionEvent{at: at + key.exec, worker: wi, alloc: alloc})
		return
	}
	rem := at + key.exec
	if !key.hasExc {
		rem = in.InitTime + in.DefaultCycle
	}
	if rem > *maxRemaining {
		*maxRemaining = rem
	}
}

// compactPending drops fully placed runs from the pending list.
func (p *Planner) compactPending() {
	out := p.pending[:0]
	for _, ri := range p.pending {
		if p.runs[ri].count > 0 {
			out = append(out, ri)
		}
	}
	p.pending = out
}

// pendingBounds summarizes the pending runs for the per-event early
// exit: the component-wise minimum of the known requests (if even that
// cannot fit a freed pool, no known task can) and whether any
// unknown-size task still waits for an idle worker.
func (p *Planner) pendingBounds() (minKnown resources.Vector, haveKnown, unknownPending bool) {
	for _, ri := range p.pending {
		r := &p.runs[ri]
		if !r.key.known {
			unknownPending = true
			continue
		}
		if !haveKnown {
			minKnown, haveKnown = r.key.res, true
			continue
		}
		if r.key.res.MilliCPU < minKnown.MilliCPU {
			minKnown.MilliCPU = r.key.res.MilliCPU
		}
		if r.key.res.MemoryMB < minKnown.MemoryMB {
			minKnown.MemoryMB = r.key.res.MemoryMB
		}
		if r.key.res.DiskMB < minKnown.DiskMB {
			minKnown.DiskMB = r.key.res.DiskMB
		}
	}
	return minKnown, haveKnown, unknownPending
}

// pushEvent and popEvent implement the same binary heap as
// container/heap over the typed slice (identical sift directions and
// tie handling), so the event order — and therefore every dispatch
// decision — matches the reference exactly, without interface boxing.
func (p *Planner) pushEvent(e completionEvent) {
	p.events = append(p.events, e)
	j := len(p.events) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(p.events[j].at < p.events[i].at) {
			break
		}
		p.events[i], p.events[j] = p.events[j], p.events[i]
		j = i
	}
}

func (p *Planner) popEvent() completionEvent {
	n := len(p.events) - 1
	p.events[0], p.events[n] = p.events[n], p.events[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && p.events[j2].at < p.events[j1].at {
			j = j2
		}
		if !(p.events[j].at < p.events[i].at) {
			break
		}
		p.events[i], p.events[j] = p.events[j], p.events[i]
		i = j
	}
	e := p.events[n]
	p.events = p.events[:n]
	return e
}

// discountCapacity shrinks a capacity vector by fraction d in [0, 1).
func discountCapacity(v resources.Vector, d float64) resources.Vector {
	if d <= 0 {
		return v
	}
	if d >= 1 {
		d = 1
	}
	f := 1 - d
	return resources.Vector{
		MilliCPU: int64(float64(v.MilliCPU) * f),
		MemoryMB: int64(float64(v.MemoryMB) * f),
		DiskMB:   int64(float64(v.DiskMB) * f),
	}
}

// remainingTime predicts how much longer a running task needs, based
// on the category's mean measured wall time. The second return is
// false when the category has no measurements yet (warm-up probes).
func remainingTime(in EstimateInput, t wq.Task) (time.Duration, bool) {
	if in.Estimator == nil {
		return 0, false
	}
	est, ok := in.Estimator.EstimateExecTime(t.Category)
	if !ok {
		return 0, false
	}
	elapsed := in.Now.Sub(t.StartedAt)
	rem := est - elapsed
	if rem < 0 {
		rem = 0
	}
	return rem, true
}
