// Package core implements the paper's contribution: the
// High-Throughput Autoscaler (HTA), a well-informed feedback
// autoscaler for HTC workloads on a container orchestrator.
//
// HTA combines three signals: the job scheduler's queue state, the
// per-category resource consumption and execution time of completed
// jobs (the feedback input, via the resource monitor), and the
// cluster manager's resource-initialization time (measured live from
// worker-pod lifecycle events). Every resource-initialization cycle
// it simulates the dispatch of the current queue over the next cycle
// (Algorithm 1 of the paper), computes the resource shortage at the
// cycle's end, and resizes the worker-pod pool accordingly — creating
// node-sized worker pods on scale-up and draining idle workers (never
// killing running jobs) on scale-down.
package core

import (
	"container/heap"
	"time"

	"hta/internal/resources"
	"hta/internal/wq"
)

// WorkerInfo describes an active (non-draining) worker for the
// estimation simulation.
type WorkerInfo struct {
	ID       string
	Capacity resources.Vector
}

// EstimateInput carries the paper's Algorithm 1 inputs: the latest
// resource-initialization time, the running and waiting task sets,
// per-category runtime information (via the estimator), and the
// active workers.
type EstimateInput struct {
	// Now is the time the estimate is made (running tasks' elapsed
	// time is measured against it).
	Now time.Time
	// InitTime is the latest measured resource-initialization time —
	// the length of the simulated window.
	InitTime time.Duration
	// DefaultCycle is returned as the next-action delay when the
	// queue drains within the window.
	DefaultCycle time.Duration
	// Running and Waiting are the scheduler's task snapshots.
	Running []wq.Task
	Waiting []wq.Task
	// Estimator supplies per-category resource and execution-time
	// predictions (the resource monitor).
	Estimator wq.Estimator
	// Workers are the active workers, in dispatch order.
	Workers []WorkerInfo
	// WorkerTemplate is the capacity of a newly created worker
	// (node-sized, per the paper's one-worker-per-node deployment).
	WorkerTemplate resources.Vector
	// CapacityDiscount in [0, 1) shrinks every existing worker's
	// simulated capacity by that fraction — the autoscaler's hedge
	// against recently observed preemptions: capacity that may vanish
	// within the window is not counted on, so the plan over-provisions
	// to compensate. 0 = trust the fleet fully.
	CapacityDiscount float64
}

// Decision is Algorithm 1's output.
type Decision struct {
	// ScaleChange is the desired change in worker count: positive =
	// create workers, negative = drain idle workers, zero = hold.
	ScaleChange int
	// NextCycle is the recommended delay until the next resize
	// action: the init time when scaling up (the new resources take
	// that long to arrive), the longest predicted remaining runtime
	// when scaling down, or DefaultCycle when balanced.
	NextCycle time.Duration

	// Diagnostics.
	PredictedIdleWorkers int
	UnplacedWaiting      int
}

// completionEvent is a predicted task completion inside the window.
type completionEvent struct {
	at     time.Duration // offset from Now
	worker int           // index into pools
	alloc  resources.Vector
}

type eventQueue []completionEvent

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(completionEvent)) }
func (q *eventQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// EstimateScale implements the paper's Algorithm 1. It simulates the
// execution of the workflow over one resource-initialization cycle:
// running tasks free their allocations at their predicted completion
// times, waiting tasks are dispatched into freed capacity (and may
// themselves complete within the window), and the final balance
// decides the scaling action.
func EstimateScale(in EstimateInput) Decision {
	if in.DefaultCycle <= 0 {
		in.DefaultCycle = 30 * time.Second
	}
	// Per-worker simulated free capacity, discounted by the caller's
	// preemption hedge. Vector.Scale is integer-only, so components
	// scale individually.
	pools := make([]resources.Vector, len(in.Workers))
	index := make(map[string]int, len(in.Workers))
	for i, w := range in.Workers {
		pools[i] = discountCapacity(w.Capacity, in.CapacityDiscount)
		index[w.ID] = i
	}

	events := &eventQueue{}
	var maxRemaining time.Duration
	for _, t := range in.Running {
		wi, ok := index[t.WorkerID]
		if !ok {
			// Task on a draining or unknown worker: its capacity is
			// not part of the active pool.
			continue
		}
		pools[wi] = pools[wi].Sub(t.Allocated)
		rem, known := remainingTime(in, t)
		if !known || rem > in.InitTime {
			if rem > maxRemaining {
				maxRemaining = rem
			}
			continue // holds its allocation past the window
		}
		heap.Push(events, completionEvent{at: rem, worker: wi, alloc: t.Allocated})
	}

	// Waiting tasks in queue order with their predicted sizes.
	type pendingTask struct {
		res    resources.Vector
		known  bool
		exec   time.Duration
		hasExc bool
		placed bool
	}
	waiting := make([]pendingTask, len(in.Waiting))
	for i, t := range in.Waiting {
		pt := pendingTask{}
		if !t.Resources.IsZero() {
			pt.res, pt.known = t.Resources, true
		} else if in.Estimator != nil {
			if v, ok := in.Estimator.EstimateResources(t.Category); ok && !v.IsZero() {
				pt.res, pt.known = v, true
			}
		}
		if in.Estimator != nil {
			if d, ok := in.Estimator.EstimateExecTime(t.Category); ok {
				pt.exec, pt.hasExc = d, true
			}
		}
		waiting[i] = pt
	}

	// tryDispatch places waiting tasks into current free capacity at
	// simulated time at, mirroring the master's policy: known sizes
	// first-fit, unknown sizes exclusively on an idle worker.
	used := make([]bool, len(pools)) // worker fully dedicated (exclusive)
	busy := make([]int, len(pools))  // live task count per worker
	for _, t := range in.Running {
		if wi, ok := index[t.WorkerID]; ok {
			busy[wi]++
		}
	}
	// Re-derive busy decrements through events: track per event.
	// (completionEvent frees one task's allocation on its worker.)
	tryDispatch := func(at time.Duration) {
		for i := range waiting {
			pt := &waiting[i]
			if pt.placed {
				continue
			}
			placedAt := -1
			if pt.known {
				for wi := range pools {
					if used[wi] {
						continue
					}
					if pt.res.Fits(pools[wi]) {
						placedAt = wi
						break
					}
				}
			} else {
				for wi := range pools {
					if busy[wi] == 0 && !used[wi] {
						placedAt = wi
						break
					}
				}
			}
			if placedAt < 0 {
				continue
			}
			pt.placed = true
			busy[placedAt]++
			alloc := pt.res
			if !pt.known {
				alloc = pools[placedAt] // whole remaining (idle) worker
				used[placedAt] = true
			}
			pools[placedAt] = pools[placedAt].Sub(alloc)
			if pt.hasExc && at+pt.exec <= in.InitTime {
				heap.Push(events, completionEvent{at: at + pt.exec, worker: placedAt, alloc: alloc})
			} else {
				rem := at + pt.exec
				if !pt.hasExc {
					rem = in.InitTime + in.DefaultCycle
				}
				if rem > maxRemaining {
					maxRemaining = rem
				}
			}
		}
	}

	tryDispatch(0)
	for events.Len() > 0 {
		ev := heap.Pop(events).(completionEvent)
		if ev.at > in.InitTime {
			break
		}
		pools[ev.worker] = pools[ev.worker].Add(ev.alloc)
		busy[ev.worker]--
		used[ev.worker] = false
		tryDispatch(ev.at)
	}

	unplaced := 0
	for _, pt := range waiting {
		if !pt.placed {
			unplaced++
		}
	}
	idle := 0
	for wi := range pools {
		if busy[wi] == 0 {
			idle++
		}
	}
	// Everything dispatched within the cycle: resources are
	// sufficient. Workers predicted idle at the window's end are
	// drained — the "removing idle resources" half of the paper's
	// queue-driven policy (§IV-B), which produces the mid-workflow
	// supply dip of Fig. 10b. (The paper's printed Algorithm 1
	// returns 0 here; without the drain, a stage boundary leaves the
	// whole fleet idle for a full stage.)
	if unplaced == 0 {
		return Decision{
			ScaleChange:          -idle,
			NextCycle:            in.DefaultCycle,
			PredictedIdleWorkers: idle,
		}
	}

	// Spare whole workers at the end of the window: scale down by
	// the number of idle workers (paper line 22-24).
	if idle > 0 {
		next := maxRemaining
		if next <= 0 || next > in.InitTime {
			next = in.InitTime
		}
		if next < in.DefaultCycle {
			next = in.DefaultCycle
		}
		return Decision{
			ScaleChange:          -idle,
			NextCycle:            next,
			PredictedIdleWorkers: idle,
			UnplacedWaiting:      unplaced,
		}
	}

	// Shortage: first-fit pack the unplaced tasks onto hypothetical
	// new workers (paper line 25, WorkerRequired).
	var bins []resources.Vector
	for i, pt := range waiting {
		if pt.placed {
			continue
		}
		res := waiting[i].res
		if !pt.known || !res.Fits(in.WorkerTemplate) {
			// Unknown-size tasks run exclusively; oversized estimates
			// are clamped to a whole worker.
			res = in.WorkerTemplate
		}
		placed := false
		for b := range bins {
			if res.Fits(bins[b]) {
				bins[b] = bins[b].Sub(res)
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, in.WorkerTemplate.Sub(res))
		}
	}
	return Decision{
		ScaleChange:     len(bins),
		NextCycle:       in.InitTime,
		UnplacedWaiting: unplaced,
	}
}

// discountCapacity shrinks a capacity vector by fraction d in [0, 1).
func discountCapacity(v resources.Vector, d float64) resources.Vector {
	if d <= 0 {
		return v
	}
	if d >= 1 {
		d = 1
	}
	f := 1 - d
	return resources.Vector{
		MilliCPU: int64(float64(v.MilliCPU) * f),
		MemoryMB: int64(float64(v.MemoryMB) * f),
		DiskMB:   int64(float64(v.DiskMB) * f),
	}
}

// remainingTime predicts how much longer a running task needs, based
// on the category's mean measured wall time. The second return is
// false when the category has no measurements yet (warm-up probes).
func remainingTime(in EstimateInput, t wq.Task) (time.Duration, bool) {
	if in.Estimator == nil {
		return 0, false
	}
	est, ok := in.Estimator.EstimateExecTime(t.Category)
	if !ok {
		return 0, false
	}
	elapsed := in.Now.Sub(t.StartedAt)
	rem := est - elapsed
	if rem < 0 {
		rem = 0
	}
	return rem, true
}
