package core

import (
	"testing"
	"testing/quick"
	"time"

	"hta/internal/resources"
	"hta/internal/wq"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

var nodeCap = resources.New(3, 12288, 100000)

type mapEstimator struct {
	res map[string]resources.Vector
	dur map[string]time.Duration
}

func (m *mapEstimator) EstimateResources(cat string) (resources.Vector, bool) {
	v, ok := m.res[cat]
	return v, ok
}

func (m *mapEstimator) EstimateExecTime(cat string) (time.Duration, bool) {
	d, ok := m.dur[cat]
	return d, ok
}

func baseInput() EstimateInput {
	return EstimateInput{
		Now:            t0,
		InitTime:       160 * time.Second,
		DefaultCycle:   30 * time.Second,
		WorkerTemplate: nodeCap,
		Estimator: &mapEstimator{
			res: map[string]resources.Vector{"c": resources.New(1, 3800, 0)},
			dur: map[string]time.Duration{"c": 60 * time.Second},
		},
	}
}

func waiting(n int, cat string) []wq.Task {
	out := make([]wq.Task, n)
	for i := range out {
		out[i] = wq.Task{ID: 100 + i, TaskSpec: wq.TaskSpec{Category: cat}}
	}
	return out
}

func running(worker string, cat string, started time.Time, alloc resources.Vector) wq.Task {
	return wq.Task{
		TaskSpec:  wq.TaskSpec{Category: cat},
		WorkerID:  worker,
		StartedAt: started,
		Allocated: alloc,
	}
}

func TestEmptyQueueDrainsIdleWorkers(t *testing.T) {
	in := baseInput()
	in.Workers = []WorkerInfo{{ID: "w1", Capacity: nodeCap}}
	dec := EstimateScale(in)
	if dec.ScaleChange != -1 || dec.NextCycle != 30*time.Second {
		t.Errorf("decision = %+v, want drain idle / default-cycle", dec)
	}
}

func TestEmptyQueueKeepsBusyWorkers(t *testing.T) {
	in := baseInput()
	in.Workers = []WorkerInfo{{ID: "w1", Capacity: nodeCap}}
	est := in.Estimator.(*mapEstimator)
	est.dur["c"] = time.Hour // outlives the window
	in.Running = []wq.Task{running("w1", "c", t0, resources.New(1, 3800, 0))}
	dec := EstimateScale(in)
	if dec.ScaleChange != 0 {
		t.Errorf("ScaleChange = %d, want 0 (worker busy past window)", dec.ScaleChange)
	}
}

func TestShortageScalesUp(t *testing.T) {
	in := baseInput()
	// No workers, 9 one-core tasks: 3 fit per node-sized worker.
	in.Waiting = waiting(9, "c")
	dec := EstimateScale(in)
	if dec.ScaleChange != 3 {
		t.Errorf("ScaleChange = %d, want 3", dec.ScaleChange)
	}
	if dec.NextCycle != in.InitTime {
		t.Errorf("NextCycle = %v, want init time", dec.NextCycle)
	}
	if dec.UnplacedWaiting != 9 {
		t.Errorf("UnplacedWaiting = %d", dec.UnplacedWaiting)
	}
}

func TestMemoryBoundPacking(t *testing.T) {
	in := baseInput()
	// 3800 MB tasks: memory admits 3 per 12288 MB worker, CPU admits
	// 3 — consistent; 7 tasks need 3 workers.
	in.Waiting = waiting(7, "c")
	dec := EstimateScale(in)
	if dec.ScaleChange != 3 {
		t.Errorf("ScaleChange = %d, want 3", dec.ScaleChange)
	}
}

func TestRunningCompletionsAbsorbQueue(t *testing.T) {
	in := baseInput()
	in.Workers = []WorkerInfo{{ID: "w1", Capacity: nodeCap}}
	// Three running tasks started 30 s ago (60 s mean ⇒ done in 30 s,
	// inside the 160 s window) plus three waiting: the waiting tasks
	// reuse the freed capacity, and they too finish inside the window.
	started := t0.Add(-30 * time.Second)
	alloc := resources.New(1, 3800, 0)
	for _, id := range []string{"a", "b", "c"} {
		_ = id
		in.Running = append(in.Running, running("w1", "c", started, alloc))
	}
	in.Waiting = waiting(3, "c")
	dec := EstimateScale(in)
	// Queue absorbed; the lone worker then sits idle at the window
	// end, so the greedy policy releases it.
	if dec.ScaleChange != -1 {
		t.Errorf("ScaleChange = %d, want -1 (absorbed, then idle)", dec.ScaleChange)
	}
}

func TestLongQueueStillScalesDespiteCompletions(t *testing.T) {
	in := baseInput()
	in.Workers = []WorkerInfo{{ID: "w1", Capacity: nodeCap}}
	started := t0.Add(-30 * time.Second)
	alloc := resources.New(1, 3800, 0)
	for i := 0; i < 3; i++ {
		in.Running = append(in.Running, running("w1", "c", started, alloc))
	}
	// 60 waiting one-minute tasks: one worker turns over ~3 slots
	// every 60 s; within 160 s it absorbs ~9-12, leaving ~50 → ~17
	// new workers.
	in.Waiting = waiting(60, "c")
	dec := EstimateScale(in)
	if dec.ScaleChange < 10 {
		t.Errorf("ScaleChange = %d, want substantial scale-up", dec.ScaleChange)
	}
}

func TestIdleWorkersScaleDown(t *testing.T) {
	in := baseInput()
	in.Workers = []WorkerInfo{
		{ID: "w1", Capacity: nodeCap},
		{ID: "w2", Capacity: nodeCap},
		{ID: "w3", Capacity: nodeCap},
	}
	// One long-running task on w1 that outlives the window; a waiting
	// task too big to fit anywhere (oversized estimate) keeps the
	// queue non-empty, while w2/w3 sit idle.
	est := in.Estimator.(*mapEstimator)
	est.res["huge"] = resources.New(64, 1, 1)
	est.dur["c"] = time.Hour
	in.Running = []wq.Task{running("w1", "c", t0, nodeCap)}
	in.Waiting = waiting(1, "huge")
	dec := EstimateScale(in)
	if dec.ScaleChange != -2 {
		t.Errorf("ScaleChange = %d, want -2 (w2, w3 idle)", dec.ScaleChange)
	}
	if dec.PredictedIdleWorkers != 2 {
		t.Errorf("PredictedIdleWorkers = %d", dec.PredictedIdleWorkers)
	}
}

func TestUnknownCategoryConservative(t *testing.T) {
	in := baseInput()
	// Unknown category: each task assumed to need a whole worker.
	in.Waiting = waiting(4, "mystery")
	dec := EstimateScale(in)
	if dec.ScaleChange != 4 {
		t.Errorf("ScaleChange = %d, want 4 exclusive workers", dec.ScaleChange)
	}
}

func TestUnknownRunningTaskHoldsAllocationPastWindow(t *testing.T) {
	in := baseInput()
	in.Workers = []WorkerInfo{{ID: "w1", Capacity: nodeCap}}
	// A warm-up probe with no measurements holds the whole worker;
	// 3 known waiting tasks need a new worker.
	in.Running = []wq.Task{running("w1", "mystery", t0, nodeCap)}
	in.Waiting = waiting(3, "c")
	dec := EstimateScale(in)
	if dec.ScaleChange != 1 {
		t.Errorf("ScaleChange = %d, want 1", dec.ScaleChange)
	}
}

func TestDeclaredResourcesBypassEstimator(t *testing.T) {
	in := baseInput()
	in.Estimator = nil
	w := waiting(6, "whatever")
	for i := range w {
		w[i].Resources = resources.New(1, 4096, 0)
	}
	in.Waiting = w
	dec := EstimateScale(in)
	if dec.ScaleChange != 2 {
		t.Errorf("ScaleChange = %d, want 2 (3 × 1c/4GB per node)", dec.ScaleChange)
	}
}

func TestOversizedTaskClampedToWholeWorker(t *testing.T) {
	in := baseInput()
	est := in.Estimator.(*mapEstimator)
	est.res["big"] = resources.New(8, 1, 1) // larger than any node
	in.Waiting = waiting(2, "big")
	dec := EstimateScale(in)
	if dec.ScaleChange != 2 {
		t.Errorf("ScaleChange = %d, want 2 whole workers", dec.ScaleChange)
	}
}

func TestRunningOnDrainingWorkerIgnored(t *testing.T) {
	in := baseInput()
	// Task on a worker not in the active list must not corrupt pools.
	in.Running = []wq.Task{running("ghost", "c", t0, resources.New(1, 3800, 0))}
	in.Waiting = waiting(3, "c")
	dec := EstimateScale(in)
	if dec.ScaleChange != 1 {
		t.Errorf("ScaleChange = %d, want 1", dec.ScaleChange)
	}
}

func TestDispatchedTasksCompleteWithinWindow(t *testing.T) {
	in := baseInput()
	in.InitTime = 200 * time.Second
	in.Workers = []WorkerInfo{{ID: "w1", Capacity: nodeCap}}
	// 6 waiting 60 s tasks on one 3-slot worker: waves at 0 s and
	// 60 s, all done by 120 s < 200 s ⇒ no scale-up; the worker is
	// idle at the window end and may be released.
	in.Waiting = waiting(6, "c")
	dec := EstimateScale(in)
	if dec.ScaleChange > 0 {
		t.Errorf("ScaleChange = %d, want no scale-up", dec.ScaleChange)
	}
	if dec.UnplacedWaiting != 0 {
		t.Errorf("UnplacedWaiting = %d", dec.UnplacedWaiting)
	}
}

func TestDefaultCycleDefaulted(t *testing.T) {
	in := baseInput()
	in.DefaultCycle = 0
	in.Workers = []WorkerInfo{{ID: "w1", Capacity: nodeCap}}
	dec := EstimateScale(in)
	if dec.NextCycle != 30*time.Second {
		t.Errorf("NextCycle = %v, want defaulted 30s", dec.NextCycle)
	}
}

// Property: for any mix of waiting tasks and workers, Algorithm 1's
// scale-up never exceeds one worker per waiting task, its scale-down
// never exceeds the worker count, and the decision is deterministic.
func TestPropertyEstimateBounds(t *testing.T) {
	f := func(nWaiting, nWorkers, nRunning uint8, initSecs uint16) bool {
		in := baseInput()
		in.InitTime = time.Duration(initSecs%600+10) * time.Second
		w := int(nWaiting % 100)
		in.Waiting = waiting(w, "c")
		for i := 0; i < int(nWorkers%20); i++ {
			in.Workers = append(in.Workers, WorkerInfo{
				ID: string(rune('a' + i)), Capacity: nodeCap,
			})
		}
		alloc := resources.New(1, 3800, 0)
		for i := 0; i < int(nRunning%30) && len(in.Workers) > 0; i++ {
			wid := in.Workers[i%len(in.Workers)].ID
			in.Running = append(in.Running, running(wid, "c", t0.Add(-time.Duration(i)*time.Second), alloc))
		}
		// Skip physically impossible snapshots (more allocation than
		// capacity on a worker).
		perWorker := make(map[string]int)
		for _, r := range in.Running {
			perWorker[r.WorkerID]++
			if perWorker[r.WorkerID] > 3 {
				return true
			}
		}
		d1 := EstimateScale(in)
		d2 := EstimateScale(in)
		if d1 != d2 {
			return false // non-deterministic
		}
		if d1.ScaleChange > w {
			return false // never more than one new worker per task
		}
		if d1.ScaleChange < -len(in.Workers) {
			return false // cannot drain more workers than exist
		}
		return d1.NextCycle > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: adding workers never increases the scale-up request.
func TestPropertyMoreWorkersLessScaleUp(t *testing.T) {
	f := func(nWaiting uint8, extra uint8) bool {
		base := baseInput()
		base.Waiting = waiting(int(nWaiting%60)+1, "c")
		small := EstimateScale(base)

		more := baseInput()
		more.Waiting = waiting(int(nWaiting%60)+1, "c")
		for i := 0; i <= int(extra%10); i++ {
			more.Workers = append(more.Workers, WorkerInfo{
				ID: string(rune('a' + i)), Capacity: nodeCap,
			})
		}
		bigger := EstimateScale(more)
		return bigger.ScaleChange <= small.ScaleChange
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
