package workload

import (
	"testing"
	"time"
)

// TestBurstRaisesLocalRate: arrivals inside a 5x burst window are
// much denser than the same window without the burst.
func TestBurstRaisesLocalRate(t *testing.T) {
	base := DefaultStream()
	base.Amplitude = 0
	base.Period = 0
	burst := base
	burst.Bursts = []Burst{{Start: 30 * time.Minute, Duration: 10 * time.Minute, Multiplier: 5}}

	count := func(tasks []TimedTask, from, to time.Duration) int {
		n := 0
		for _, tt := range tasks {
			if tt.At >= from && tt.At < to {
				n++
			}
		}
		return n
	}
	inBurst := count(burst.Tasks(), 30*time.Minute, 40*time.Minute)
	outside := count(burst.Tasks(), 50*time.Minute, 60*time.Minute)
	// 10 min at 10/min = ~100 flat, ~500 inside the burst.
	if inBurst < 3*outside {
		t.Errorf("burst window %d arrivals vs %d outside; want >= 3x", inBurst, outside)
	}
	flat := count(base.Tasks(), 50*time.Minute, 60*time.Minute)
	if flat < 60 || flat > 160 {
		t.Errorf("flat window count = %d, want ~100", flat)
	}
}

// TestEmptyBurstsKeepStreamIdentical pins that adding the Bursts
// field did not change the generated stream for burst-free params:
// the thinning envelope and RNG draw order are untouched.
func TestEmptyBurstsKeepStreamIdentical(t *testing.T) {
	a := DefaultStream().Tasks()
	withEmpty := DefaultStream()
	withEmpty.Bursts = []Burst{}
	b := withEmpty.Tasks()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Spec.Profile != b[i].Spec.Profile {
			t.Fatalf("task %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestDayTraceShape: deterministic under seed, sorted, and the 9:00
// spike is visibly denser than the overnight trough.
func TestDayTraceShape(t *testing.T) {
	p := DayTrace(7)
	tasks := p.Tasks()
	again := DayTrace(7).Tasks()
	if len(tasks) != len(again) {
		t.Fatalf("nondeterministic: %d vs %d arrivals", len(tasks), len(again))
	}
	for i := range tasks {
		if tasks[i].At != again[i].At {
			t.Fatalf("arrival %d differs across runs", i)
		}
		if i > 0 && tasks[i].At < tasks[i-1].At {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
	count := func(from, to time.Duration) int {
		n := 0
		for _, tt := range tasks {
			if tt.At >= from && tt.At < to {
				n++
			}
		}
		return n
	}
	spike := count(9*time.Hour, 9*time.Hour+15*time.Minute)
	night := count(3*time.Hour, 3*time.Hour+15*time.Minute)
	if spike < 4*night {
		t.Errorf("morning spike %d vs overnight %d arrivals; want >= 4x", spike, night)
	}
	if len(tasks) < 3000 {
		t.Errorf("day trace has %d arrivals, want thousands", len(tasks))
	}
	if DayTrace(8).Tasks()[0].At == tasks[0].At {
		t.Error("different seeds produced the same first arrival")
	}
}

// TestWorkflowStream: batch arrivals are deterministic, sized around
// TasksPerWorkflow, and Flatten preserves order and count.
func TestWorkflowStream(t *testing.T) {
	p := WorkflowStreamParams{
		Stream: StreamParams{
			Window:     2 * time.Hour,
			BasePerMin: 1,
			Category:   "wf",
			Exec:       2 * time.Minute,
			Jitter:     0.1,
			CPUMilli:   870,
			MemMB:      1024,
			Seed:       3,
		},
		TasksPerWorkflow: 20,
		SizeJitter:       0.3,
	}
	wfs := p.Workflows()
	if len(wfs) < 60 || len(wfs) > 200 {
		t.Fatalf("workflows = %d, want ~120", len(wfs))
	}
	again := p.Workflows()
	total := 0
	for i, wf := range wfs {
		if len(wf.Tasks) < 14 || len(wf.Tasks) > 26 {
			t.Fatalf("workflow %d has %d tasks, want 20 +- 30%%", i, len(wf.Tasks))
		}
		if again[i].At != wf.At || len(again[i].Tasks) != len(wf.Tasks) {
			t.Fatalf("workflow %d not deterministic", i)
		}
		if i > 0 && wf.At < wfs[i-1].At {
			t.Fatalf("workflow arrivals not sorted at %d", i)
		}
		for j, spec := range wf.Tasks {
			if spec.Tag == "" || spec.Category != "wf" {
				t.Fatalf("workflow %d task %d spec malformed: %+v", i, j, spec)
			}
		}
		total += len(wf.Tasks)
	}
	flat := Flatten(wfs)
	if len(flat) != total {
		t.Fatalf("Flatten lost tasks: %d vs %d", len(flat), total)
	}
	for i := 1; i < len(flat); i++ {
		if flat[i].At < flat[i-1].At {
			t.Fatalf("flattened arrivals not sorted at %d", i)
		}
	}
}
