package workload

import (
	"strings"
	"testing"
)

// FuzzReadTrace ensures arbitrary CSV never panics the trace reader
// and accepted traces produce sane specs.
func FuzzReadTrace(f *testing.F) {
	f.Add(sampleTrace)
	f.Add("category,exec_s\nx,1\n")
	f.Add("exec_s,category,cores\n5,c,2\n")
	f.Add("category,exec_s\n\"a,b\",3\n")
	f.Fuzz(func(t *testing.T, src string) {
		specs, err := ReadTrace(strings.NewReader(src))
		if err != nil {
			return
		}
		for _, s := range specs {
			if s.Category == "" {
				t.Fatal("accepted spec with empty category")
			}
			if s.Profile.ExecDuration < 0 {
				t.Fatal("accepted negative duration")
			}
		}
	})
}
