package workload

import (
	"strings"
	"testing"
	"time"
)

const sampleTrace = `category,exec_s,cpu_milli,memory_mb,disk_mb,input_mb,output_mb,cores
align,53.5,870,3800,1500,0,0.6,1
align,49.1,850,3700,1500,0,0.6,1
io,100,150,256,4000,0,0,0
`

func TestReadTrace(t *testing.T) {
	specs, err := ReadTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	a := specs[0]
	if a.Category != "align" {
		t.Errorf("category = %q", a.Category)
	}
	if a.Profile.ExecDuration != 53500*time.Millisecond {
		t.Errorf("exec = %v", a.Profile.ExecDuration)
	}
	if a.Profile.UsedCPUMilli != 870 || a.Profile.UsedMemoryMB != 3800 {
		t.Errorf("profile = %+v", a.Profile)
	}
	if a.Resources.MilliCPU != 1000 || a.Resources.MemoryMB != 3800 {
		t.Errorf("declared = %v", a.Resources)
	}
	if a.OutputMB != 0.6 {
		t.Errorf("output = %v", a.OutputMB)
	}
	// cores=0 leaves requirements unknown.
	if !specs[2].Resources.IsZero() {
		t.Errorf("io task resources = %v, want unknown", specs[2].Resources)
	}
}

func TestReadTraceColumnOrderIrrelevant(t *testing.T) {
	src := "exec_s,category\n10,stage1\n"
	specs, err := ReadTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Category != "stage1" || specs[0].Profile.ExecDuration != 10*time.Second {
		t.Errorf("spec = %+v", specs[0])
	}
	// Defaults applied for missing columns.
	if specs[0].Profile.UsedCPUMilli != 900 || specs[0].Profile.UsedMemoryMB != 512 {
		t.Errorf("defaults = %+v", specs[0].Profile)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing category column", "exec_s\n10\n"},
		{"missing exec column", "category\nx\n"},
		{"empty category", "category,exec_s\n,10\n"},
		{"negative exec", "category,exec_s\nx,-5\n"},
		{"bad number", "category,exec_s,cpu_milli\nx,10,lots\n"},
		{"no tasks", "category,exec_s\n"},
		{"empty file", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(c.src)); err == nil {
				t.Errorf("ReadTrace(%q) should fail", c.src)
			}
		})
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig := DefaultIOBound()
	orig.N = 5
	specs := orig.Specs()
	var b strings.Builder
	if err := WriteTrace(&b, specs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(specs) {
		t.Fatalf("round trip count = %d", len(back))
	}
	for i := range specs {
		if back[i].Category != specs[i].Category {
			t.Errorf("spec %d category %q != %q", i, back[i].Category, specs[i].Category)
		}
		if back[i].Profile.ExecDuration != specs[i].Profile.ExecDuration {
			t.Errorf("spec %d exec %v != %v", i, back[i].Profile.ExecDuration, specs[i].Profile.ExecDuration)
		}
		if back[i].Resources != specs[i].Resources {
			t.Errorf("spec %d resources %v != %v", i, back[i].Resources, specs[i].Resources)
		}
	}
}
