package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBlastFlatDefaults(t *testing.T) {
	p := DefaultBlastFlat(200)
	specs := p.Specs()
	if len(specs) != 200 {
		t.Fatalf("specs = %d", len(specs))
	}
	for i, s := range specs {
		if s.Category != "align" {
			t.Fatalf("spec %d category = %q", i, s.Category)
		}
		if s.Resources.IsZero() {
			t.Fatalf("spec %d requirements unknown, want declared", i)
		}
		if len(s.SharedInputs) != 1 || s.SharedInputs[0].SizeMB != BlastSharedDBMB {
			t.Fatalf("spec %d shared inputs = %v", i, s.SharedInputs)
		}
		if s.OutputMB != BlastOutputMB {
			t.Fatalf("spec %d output = %v", i, s.OutputMB)
		}
		d := s.Profile.ExecDuration
		mean := float64(BlastExecMean)
		lo := time.Duration(mean * 0.89)
		hi := time.Duration(mean * 1.11)
		if d < lo || d > hi {
			t.Fatalf("spec %d exec = %v outside jitter band", i, d)
		}
	}
}

func TestBlastFlatDeterministicBySeed(t *testing.T) {
	a := DefaultBlastFlat(20).Specs()
	b := DefaultBlastFlat(20).Specs()
	for i := range a {
		if a[i].Profile.ExecDuration != b[i].Profile.ExecDuration {
			t.Fatal("same seed produced different workloads")
		}
	}
	p := DefaultBlastFlat(20)
	p.Seed = 99
	c := p.Specs()
	same := true
	for i := range a {
		if a[i].Profile.ExecDuration != c[i].Profile.ExecDuration {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestMultistageStructure(t *testing.T) {
	p := DefaultMultistage()
	g, specFn, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 200+34+164 {
		t.Fatalf("Len = %d", g.Len())
	}
	counts := g.CategoryCounts()
	if counts["stage1"] != 200 || counts["stage2"] != 34 || counts["stage3"] != 164 {
		t.Errorf("category counts = %v", counts)
	}
	levels := g.Levels()
	if len(levels) != 3 {
		t.Fatalf("levels = %d", len(levels))
	}
	if len(levels[0]) != 200 || len(levels[1]) != 34 || len(levels[2]) != 164 {
		t.Errorf("level sizes = %d/%d/%d", len(levels[0]), len(levels[1]), len(levels[2]))
	}
	// Only stage1 is initially ready.
	if got := len(g.Ready()); got != 200 {
		t.Errorf("ready = %d, want 200", got)
	}
	// Every stage2 node depends only on stage1 nodes.
	for _, id := range levels[1] {
		deps := g.Dependencies(id)
		if len(deps) == 0 {
			t.Errorf("%s has no dependencies", id)
		}
	}
	// Specs resolve for every node with unknown resources (HTA mode).
	for _, id := range g.IDs() {
		n, _ := g.Node(id)
		s := specFn(n)
		if s.Category != n.Category {
			t.Fatalf("spec category mismatch for %s", id)
		}
		if !s.Resources.IsZero() {
			t.Fatalf("default multistage should leave resources unknown")
		}
		if s.Profile.ExecDuration <= 0 {
			t.Fatalf("spec %s has no duration", id)
		}
	}
}

func TestMultistageDeclared(t *testing.T) {
	p := DefaultMultistage()
	p.Declared = true
	g, specFn, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, _ := g.Node("s1_0")
	if specFn(n).Resources.IsZero() {
		t.Error("declared mode left resources unknown")
	}
}

func TestIOBoundDefaults(t *testing.T) {
	specs := DefaultIOBound().Specs()
	if len(specs) != 200 {
		t.Fatalf("specs = %d", len(specs))
	}
	for _, s := range specs {
		if s.Category != "io" {
			t.Fatalf("category = %q", s.Category)
		}
		if s.Profile.UsedCPUMilli != IOBoundCPUMilli {
			t.Fatalf("cpu = %d", s.Profile.UsedCPUMilli)
		}
		if !s.Resources.IsZero() {
			t.Fatal("default io workload should be undeclared")
		}
	}
}

func TestUniformParams(t *testing.T) {
	specs := UniformParams{N: 5, Exec: time.Second}.Specs()
	if len(specs) != 5 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[0].Category != "uniform" {
		t.Errorf("default category = %q", specs[0].Category)
	}
}

// Property: multistage partitions cover every previous-stage output
// exactly — no stage-k output is orphaned.
func TestPropertyMultistagePartitionCovers(t *testing.T) {
	f := func(a, b, c uint8) bool {
		p := DefaultMultistage()
		p.StageCounts = [3]int{int(a%50) + 1, int(b%50) + 1, int(c%50) + 1}
		g, _, err := p.Build()
		if err != nil {
			return false
		}
		// Every stage1/stage2 node must have at least one dependent
		// unless it is in the final stage.
		levels := g.Levels()
		if len(levels) < 2 {
			return false
		}
		for li := 0; li+1 < len(levels); li++ {
			for _, id := range levels[li] {
				if len(g.Dependents(id)) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestJitterZeroMean(t *testing.T) {
	specs := UniformParams{N: 1}.Specs()
	if specs[0].Profile.ExecDuration != 0 {
		t.Errorf("zero mean produced %v", specs[0].Profile.ExecDuration)
	}
}

func TestStreamArrivals(t *testing.T) {
	p := DefaultStream()
	tasks := p.Tasks()
	if len(tasks) == 0 {
		t.Fatal("no arrivals")
	}
	// Expected count ≈ base rate × window = 10/min × 120min = 1200.
	if len(tasks) < 900 || len(tasks) > 1500 {
		t.Errorf("arrivals = %d, want ≈1200", len(tasks))
	}
	for i := 1; i < len(tasks); i++ {
		if tasks[i].At < tasks[i-1].At {
			t.Fatal("arrivals not sorted")
		}
	}
	last := tasks[len(tasks)-1]
	if last.At >= p.Window {
		t.Errorf("arrival at %v beyond window %v", last.At, p.Window)
	}
	if tasks[0].Spec.Category != "stream" || tasks[0].Spec.Profile.ExecDuration <= 0 {
		t.Errorf("spec = %+v", tasks[0].Spec)
	}
	// Default stream leaves requirements unknown.
	if !tasks[0].Spec.Resources.IsZero() {
		t.Error("default stream should be undeclared")
	}
}

func TestStreamDeterministicAndSeeded(t *testing.T) {
	a := DefaultStream().Tasks()
	b := DefaultStream().Tasks()
	if len(a) != len(b) {
		t.Fatal("same seed diverged")
	}
	for i := range a {
		if a[i].At != b[i].At {
			t.Fatal("same seed diverged in arrival times")
		}
	}
	p := DefaultStream()
	p.Seed = 99
	c := p.Tasks()
	if len(c) == len(a) && c[0].At == a[0].At && c[len(c)-1].At == a[len(a)-1].At {
		t.Error("different seeds produced identical streams")
	}
}

func TestStreamWaveModulatesRate(t *testing.T) {
	p := DefaultStream()
	p.Seed = 3
	tasks := p.Tasks()
	// Count arrivals in the first quarter-period (crest, sin>0) vs the
	// third quarter (trough, sin<0).
	crest, trough := 0, 0
	for _, tt := range tasks {
		phase := tt.At % p.Period
		switch {
		case phase < p.Period/2:
			crest++
		default:
			trough++
		}
	}
	if crest <= trough {
		t.Errorf("crest %d <= trough %d; wave not visible", crest, trough)
	}
}

func TestStreamValidation(t *testing.T) {
	p := DefaultStream()
	p.Amplitude = 1.5
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for amplitude >= 1")
		}
	}()
	p.Tasks()
}

func TestStreamEmptyParams(t *testing.T) {
	if got := (StreamParams{}).Tasks(); got != nil {
		t.Errorf("zero params produced %d tasks", len(got))
	}
}

func TestStreamDeclared(t *testing.T) {
	p := DefaultStream()
	p.Declared = true
	p.Window = 10 * time.Minute
	tasks := p.Tasks()
	if len(tasks) == 0 {
		t.Fatal("no tasks")
	}
	if tasks[0].Spec.Resources.MilliCPU != 1000 {
		t.Errorf("declared = %v", tasks[0].Spec.Resources)
	}
}
