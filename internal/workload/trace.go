package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"hta/internal/resources"
	"hta/internal/wq"
)

// TraceColumns documents the CSV schema ReadTrace accepts. The header
// row is required; columns may appear in any order and unknown
// columns are ignored:
//
//	category   string  (required) task category / stage tag
//	exec_s     float   (required) execution time in seconds
//	cpu_milli  int     busy millicores while executing (default 900)
//	memory_mb  int     peak memory (default 512)
//	disk_mb    int     peak scratch disk (default 0)
//	input_mb   float   private input size (default 0)
//	output_mb  float   output size (default 0)
//	cores      float   declared requirement in cores (0 = unknown)
//
// This lets a user replay the per-task measurements of a real HTC run
// (e.g. exported from Work Queue's resource monitor) through the
// simulated autoscalers.
const TraceColumns = "category,exec_s,cpu_milli,memory_mb,disk_mb,input_mb,output_mb,cores"

// ReadTrace parses a task trace CSV into task specs, in file order.
func ReadTrace(r io.Reader) ([]wq.TaskSpec, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, name := range header {
		col[name] = i
	}
	for _, required := range []string{"category", "exec_s"} {
		if _, ok := col[required]; !ok {
			return nil, fmt.Errorf("workload: trace missing required column %q (schema: %s)", required, TraceColumns)
		}
	}

	get := func(rec []string, name string) (string, bool) {
		i, ok := col[name]
		if !ok || i >= len(rec) {
			return "", false
		}
		return rec[i], true
	}
	getFloat := func(rec []string, name string, def float64) (float64, error) {
		s, ok := get(rec, name)
		if !ok || s == "" {
			return def, nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("workload: bad %s value %q", name, s)
		}
		return v, nil
	}

	var specs []wq.TaskSpec
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		category, _ := get(rec, "category")
		if category == "" {
			return nil, fmt.Errorf("workload: trace line %d: empty category", line)
		}
		execS, err := getFloat(rec, "exec_s", -1)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if execS < 0 {
			return nil, fmt.Errorf("workload: trace line %d: missing or negative exec_s", line)
		}
		cpu, err := getFloat(rec, "cpu_milli", 900)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		mem, err := getFloat(rec, "memory_mb", 512)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		disk, err := getFloat(rec, "disk_mb", 0)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		inMB, err := getFloat(rec, "input_mb", 0)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		outMB, err := getFloat(rec, "output_mb", 0)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		cores, err := getFloat(rec, "cores", 0)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		spec := wq.TaskSpec{
			Command:  fmt.Sprintf("trace-task %d", line-2),
			Category: category,
			InputMB:  inMB,
			OutputMB: outMB,
			Profile: wq.Profile{
				ExecDuration: time.Duration(execS * float64(time.Second)),
				UsedCPUMilli: int64(cpu),
				UsedMemoryMB: int64(mem),
				UsedDiskMB:   int64(disk),
			},
		}
		if cores > 0 {
			spec.Resources = resources.Vector{
				MilliCPU: int64(cores * 1000),
				MemoryMB: int64(mem),
				DiskMB:   int64(disk),
			}
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("workload: trace contains no tasks")
	}
	return specs, nil
}

// WriteTrace writes task specs back out in the ReadTrace schema —
// useful for exporting a generated workload or round-tripping a
// modified trace.
func WriteTrace(w io.Writer, specs []wq.TaskSpec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"category", "exec_s", "cpu_milli", "memory_mb", "disk_mb", "input_mb", "output_mb", "cores"}); err != nil {
		return err
	}
	for _, s := range specs {
		row := []string{
			s.Category,
			strconv.FormatFloat(s.Profile.ExecDuration.Seconds(), 'f', -1, 64),
			strconv.FormatInt(s.Profile.UsedCPUMilli, 10),
			strconv.FormatInt(s.Profile.UsedMemoryMB, 10),
			strconv.FormatInt(s.Profile.UsedDiskMB, 10),
			strconv.FormatFloat(s.InputMB, 'f', -1, 64),
			strconv.FormatFloat(s.OutputMB, 'f', -1, 64),
			strconv.FormatFloat(s.Resources.CoresValue(), 'f', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
