// Package workload generates the synthetic workloads of the paper's
// evaluation: flat BLAST-style bags of tasks (Fig. 2 and Fig. 4), the
// three-stage BLAST workflow (Fig. 10), and the I/O-bound dd workload
// (Fig. 11). Generators are parameterized and seeded; the defaults
// are calibrated so the simulated experiments land in the paper's
// regime (see params.go for the calibration rationale).
package workload

import (
	"fmt"
	"time"

	"hta/internal/dag"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// BlastFlatParams describes a flat bag of alignment tasks sharing a
// cacheable database input.
type BlastFlatParams struct {
	N          int           // number of tasks
	ExecMean   time.Duration // mean execution time
	ExecJitter float64       // ± fraction of uniform jitter
	CPUMilli   int64         // busy CPU while executing
	MemMB      int64         // peak memory
	SharedDBMB float64       // cacheable shared input size
	InputMB    float64       // per-task private input
	OutputMB   float64       // per-task output
	// Declared attaches the known requirement (1 core, MemMB) to the
	// tasks; false leaves requirements unknown (conservative
	// dispatch).
	Declared bool
	Seed     int64
}

// DefaultBlastFlat returns the Fig. 2 calibration: n jobs of ≈53 s at
// ≈87 % CPU over a shared 1.4 GB database, requirements known.
func DefaultBlastFlat(n int) BlastFlatParams {
	return BlastFlatParams{
		N:          n,
		ExecMean:   BlastExecMean,
		ExecJitter: 0.10,
		CPUMilli:   BlastCPUMilli,
		MemMB:      BlastMemMB,
		SharedDBMB: BlastSharedDBMB,
		OutputMB:   BlastOutputMB,
		Declared:   true,
		Seed:       1,
	}
}

// Specs generates the task list.
func (p BlastFlatParams) Specs() []wq.TaskSpec {
	rng := simclock.NewRNG(p.Seed)
	specs := make([]wq.TaskSpec, 0, p.N)
	for i := 0; i < p.N; i++ {
		spec := wq.TaskSpec{
			Command:  fmt.Sprintf("blastall -i query.%d -o out.%d", i, i),
			Category: "align",
			InputMB:  p.InputMB,
			OutputMB: p.OutputMB,
			Profile: wq.Profile{
				ExecDuration: jitterDuration(rng, p.ExecMean, p.ExecJitter),
				UsedCPUMilli: p.CPUMilli,
				UsedMemoryMB: p.MemMB,
			},
		}
		if p.SharedDBMB > 0 {
			spec.SharedInputs = []wq.File{{Name: "nt.db", SizeMB: p.SharedDBMB}}
		}
		if p.Declared {
			spec.Resources = resources.Vector{MilliCPU: 1000, MemoryMB: p.MemMB}
		}
		specs = append(specs, spec)
	}
	return specs
}

// MultistageParams describes the Fig. 10 workflow: three stages of
// parallel tasks with file dependencies between consecutive stages.
type MultistageParams struct {
	StageCounts [3]int
	ExecMeans   [3]time.Duration
	ExecJitter  float64
	CPUMilli    int64
	MemMB       int64
	OutputMB    float64
	// Declared marks requirements as known; the HTA runs leave this
	// false so the warm-up stage measures each category.
	Declared bool
	Seed     int64
}

// DefaultMultistage returns the paper's stage structure: 200, 34 and
// 164 tasks of ≈5 minutes each.
func DefaultMultistage() MultistageParams {
	return MultistageParams{
		StageCounts: [3]int{200, 34, 164},
		ExecMeans:   [3]time.Duration{MultistageExec, MultistageExec, MultistageExec},
		ExecJitter:  0.10,
		CPUMilli:    BlastCPUMilli,
		MemMB:       BlastMemMB,
		OutputMB:    BlastOutputMB,
		Seed:        1,
	}
}

// Build constructs the DAG and the spec function mapping nodes to
// tasks. Each stage ends in a reduce, so every stage k+1 task
// consumes all stage k outputs — stages are separated by barriers,
// giving the workflow the distinct per-stage demand profile of the
// paper's Fig. 10a (including the mid-workflow dip that a reactive
// autoscaler fails to follow).
func (p MultistageParams) Build() (*dag.Graph, func(dag.Node) wq.TaskSpec, error) {
	rng := simclock.NewRNG(p.Seed)
	g := dag.NewGraph()
	specs := make(map[string]wq.TaskSpec)

	declared := resources.Zero
	if p.Declared {
		declared = resources.Vector{MilliCPU: 1000, MemoryMB: p.MemMB}
	}

	for stage := 0; stage < 3; stage++ {
		n := p.StageCounts[stage]
		prev := 0
		if stage > 0 {
			prev = p.StageCounts[stage-1]
		}
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("s%d_%d", stage+1, i)
			node := dag.Node{
				ID:       id,
				Category: fmt.Sprintf("stage%d", stage+1),
				Outputs:  []string{id + ".out"},
			}
			if stage > 0 {
				// Barrier: consume every previous-stage output.
				for j := 0; j < prev; j++ {
					node.Inputs = append(node.Inputs, fmt.Sprintf("s%d_%d.out", stage, j))
				}
			}
			if err := g.Add(node); err != nil {
				return nil, nil, err
			}
			specs[id] = wq.TaskSpec{
				Command:   "blast-stage " + id,
				Category:  node.Category,
				Resources: declared,
				OutputMB:  p.OutputMB,
				Profile: wq.Profile{
					ExecDuration: jitterDuration(rng, p.ExecMeans[stage], p.ExecJitter),
					UsedCPUMilli: p.CPUMilli,
					UsedMemoryMB: p.MemMB,
				},
			}
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, nil, err
	}
	return g, func(n dag.Node) wq.TaskSpec { return specs[n.ID] }, nil
}

// IOBoundParams describes the Fig. 11 synthetic workload: parallel dd
// tasks that keep a processor busy with I/O while consuming little
// CPU.
type IOBoundParams struct {
	N          int
	ExecMean   time.Duration
	ExecJitter float64
	CPUMilli   int64 // low: the tasks wait on the disk
	MemMB      int64
	DiskMB     int64
	InputMB    float64 // per-task input streamed from the master
	OutputMB   float64 // per-task result shipped back
	Declared   bool
	Seed       int64
}

// DefaultIOBound returns the Fig. 11 calibration: 200 dd tasks of
// ≈100 s at ≈15 % CPU.
func DefaultIOBound() IOBoundParams {
	return IOBoundParams{
		N:          200,
		ExecMean:   IOBoundExec,
		ExecJitter: 0.10,
		CPUMilli:   IOBoundCPUMilli,
		MemMB:      IOBoundMemMB,
		DiskMB:     IOBoundDiskMB,
		Seed:       1,
	}
}

// Specs generates the task list.
func (p IOBoundParams) Specs() []wq.TaskSpec {
	rng := simclock.NewRNG(p.Seed)
	specs := make([]wq.TaskSpec, 0, p.N)
	for i := 0; i < p.N; i++ {
		spec := wq.TaskSpec{
			Command:  fmt.Sprintf("dd if=/dev/sdb of=scratch.%d bs=1M", i),
			Category: "io",
			InputMB:  p.InputMB,
			OutputMB: p.OutputMB,
			Profile: wq.Profile{
				ExecDuration: jitterDuration(rng, p.ExecMean, p.ExecJitter),
				UsedCPUMilli: p.CPUMilli,
				UsedMemoryMB: p.MemMB,
				UsedDiskMB:   p.DiskMB,
			},
		}
		if p.Declared {
			spec.Resources = resources.Vector{MilliCPU: 1000, MemoryMB: p.MemMB, DiskMB: p.DiskMB}
		}
		specs = append(specs, spec)
	}
	return specs
}

// UniformParams is a generic bag-of-tasks generator for tests and
// examples.
type UniformParams struct {
	N         int
	Category  string
	Exec      time.Duration
	Jitter    float64
	Resources resources.Vector
	CPUMilli  int64
	Seed      int64
}

// Specs generates the task list.
func (p UniformParams) Specs() []wq.TaskSpec {
	rng := simclock.NewRNG(p.Seed)
	cat := p.Category
	if cat == "" {
		cat = "uniform"
	}
	specs := make([]wq.TaskSpec, 0, p.N)
	for i := 0; i < p.N; i++ {
		specs = append(specs, wq.TaskSpec{
			Command:   fmt.Sprintf("task %d", i),
			Category:  cat,
			Resources: p.Resources,
			Profile: wq.Profile{
				ExecDuration: jitterDuration(rng, p.Exec, p.Jitter),
				UsedCPUMilli: p.CPUMilli,
			},
		})
	}
	return specs
}

func jitterDuration(rng *simclock.RNG, mean time.Duration, frac float64) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(rng.Jitter(float64(mean), frac))
}
