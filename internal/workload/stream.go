package workload

import (
	"fmt"
	"math"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// TimedTask is a task together with its arrival offset from the start
// of the run — the open-loop submission model of a shared HTC
// facility, as opposed to the paper's all-at-once batch workflows.
type TimedTask struct {
	At   time.Duration
	Spec wq.TaskSpec
}

// Burst multiplies the arrival rate over one interval — a traffic
// spike (Multiplier > 1) or a lull (Multiplier < 1) layered on top of
// the diurnal sinusoid.
type Burst struct {
	Start      time.Duration
	Duration   time.Duration
	Multiplier float64
}

// StreamParams generates an inhomogeneous Poisson arrival stream
// whose rate follows a sinusoid with optional burst windows:
//
//	rate(t) = Base × (1 + Amplitude × sin(2πt/Period)) × burst(t)
//
// — the diurnal load pattern an elastic facility sees, plus the
// spikes that break naive per-cycle autoscaling.
type StreamParams struct {
	// Window is the submission window length.
	Window time.Duration
	// BasePerMin is the mean arrival rate in tasks per minute.
	BasePerMin float64
	// Amplitude in [0, 1) modulates the rate around the base.
	Amplitude float64
	// Period is the wavelength of the modulation.
	Period time.Duration
	// Bursts are rate-multiplier windows (empty = pure sinusoid; the
	// generated stream is then identical to pre-burst versions of
	// this package for the same seed).
	Bursts []Burst

	Category string
	Exec     time.Duration
	Jitter   float64
	CPUMilli int64
	MemMB    int64
	Declared bool
	Seed     int64
}

// burstMult returns the burst multiplier in effect at t.
func (p StreamParams) burstMult(t time.Duration) float64 {
	m := 1.0
	for _, b := range p.Bursts {
		if t >= b.Start && t < b.Start+b.Duration && b.Multiplier > 0 {
			m *= b.Multiplier
		}
	}
	return m
}

// maxBurstMult bounds burstMult from above for the thinning envelope.
// Overlapping bursts multiply, so the bound is the product of all
// multipliers above one.
func (p StreamParams) maxBurstMult() float64 {
	m := 1.0
	for _, b := range p.Bursts {
		if b.Multiplier > 1 {
			m *= b.Multiplier
		}
	}
	return m
}

// DefaultStream returns a two-hour diurnal stream whose concurrency
// demand swings between ≈6 and ≈54 cores — inside a 20-node (60-core)
// quota, so a well-informed autoscaler can track the whole wave.
func DefaultStream() StreamParams {
	return StreamParams{
		Window:     2 * time.Hour,
		BasePerMin: 10,
		Amplitude:  0.8,
		Period:     30 * time.Minute,
		Category:   "stream",
		Exec:       3 * time.Minute,
		Jitter:     0.15,
		CPUMilli:   870,
		MemMB:      2048,
		Seed:       1,
	}
}

// Tasks generates the arrival stream (sorted by arrival time) via
// Poisson thinning.
func (p StreamParams) Tasks() []TimedTask {
	if p.Window <= 0 || p.BasePerMin <= 0 {
		return nil
	}
	if p.Amplitude < 0 || p.Amplitude >= 1 {
		panic(fmt.Sprintf("workload: stream amplitude %v outside [0, 1)", p.Amplitude))
	}
	rng := simclock.NewRNG(p.Seed)
	maxRate := p.BasePerMin * (1 + p.Amplitude) * p.maxBurstMult() / 60 // per second
	rate := func(t time.Duration) float64 {
		mod := 1.0
		if p.Period > 0 {
			mod = 1 + p.Amplitude*math.Sin(2*math.Pi*t.Seconds()/p.Period.Seconds())
		}
		return p.BasePerMin * mod * p.burstMult(t) / 60
	}
	declared := resources.Zero
	if p.Declared {
		declared = resources.Vector{MilliCPU: 1000, MemoryMB: p.MemMB}
	}
	var out []TimedTask
	t := time.Duration(0)
	i := 0
	for {
		// Exponential inter-arrival at the envelope rate.
		u := rng.Float64()
		if u == 0 {
			u = 1e-12
		}
		t += time.Duration(-math.Log(u) / maxRate * float64(time.Second))
		if t >= p.Window {
			break
		}
		// Thinning: accept with probability rate(t)/maxRate.
		if rng.Float64() > rate(t)/maxRate {
			continue
		}
		out = append(out, TimedTask{
			At: t,
			Spec: wq.TaskSpec{
				Command:   fmt.Sprintf("stream-task %d", i),
				Category:  p.Category,
				Resources: declared,
				Profile: wq.Profile{
					ExecDuration: jitterDuration(rng, p.Exec, p.Jitter),
					UsedCPUMilli: p.CPUMilli,
					UsedMemoryMB: p.MemMB,
				},
			},
		})
		i++
	}
	return out
}

// BurstyStream is DefaultStream with two sharp spikes riding the
// sinusoid — the workload the admission guardrails and the panic
// fast path exist for.
func BurstyStream(seed int64) StreamParams {
	p := DefaultStream()
	p.Seed = seed
	p.Bursts = []Burst{
		{Start: 20 * time.Minute, Duration: 5 * time.Minute, Multiplier: 5},
		{Start: 70 * time.Minute, Duration: 10 * time.Minute, Multiplier: 4},
	}
	return p
}

// DayTrace is a trace-driven day: a 24-hour diurnal swing (quiet
// overnight, busy through the working day) with two morning spikes —
// the 9:00 login storm and a 9:40 aftershock — plus a smaller
// after-lunch bump. Roughly 6k task arrivals at the default rate.
func DayTrace(seed int64) StreamParams {
	return StreamParams{
		Window:     24 * time.Hour,
		BasePerMin: 4,
		Amplitude:  0.7,
		Period:     24 * time.Hour,
		Bursts: []Burst{
			{Start: 9 * time.Hour, Duration: 15 * time.Minute, Multiplier: 6},
			{Start: 9*time.Hour + 40*time.Minute, Duration: 10 * time.Minute, Multiplier: 4},
			{Start: 13*time.Hour + 30*time.Minute, Duration: 20 * time.Minute, Multiplier: 2},
		},
		Category: "day",
		Exec:     3 * time.Minute,
		Jitter:   0.15,
		CPUMilli: 870,
		MemMB:    2048,
		Seed:     seed,
	}
}

// TimedWorkflow is one workflow submission: a batch of tasks arriving
// together at At — a user handing a whole DAG stage to the facility,
// as opposed to TimedTask's independent arrivals.
type TimedWorkflow struct {
	At    time.Duration
	Name  string
	Tasks []wq.TaskSpec
}

// WorkflowStreamParams generates Poisson arrivals of workflow
// submissions: the Stream field drives the arrival process (its
// BasePerMin is workflows per minute), and each arrival expands into
// a batch of TasksPerWorkflow tasks (± SizeJitter).
type WorkflowStreamParams struct {
	Stream           StreamParams
	TasksPerWorkflow int
	// SizeJitter in [0, 1) varies the batch size uniformly by that
	// fraction around TasksPerWorkflow.
	SizeJitter float64
}

// Workflows generates the workflow arrival stream, sorted by arrival
// time and deterministic under the stream seed.
func (p WorkflowStreamParams) Workflows() []TimedWorkflow {
	sp := p.Stream
	if sp.Window <= 0 || sp.BasePerMin <= 0 || p.TasksPerWorkflow <= 0 {
		return nil
	}
	if sp.Amplitude < 0 || sp.Amplitude >= 1 {
		panic(fmt.Sprintf("workload: stream amplitude %v outside [0, 1)", sp.Amplitude))
	}
	rng := simclock.NewRNG(sp.Seed)
	maxRate := sp.BasePerMin * (1 + sp.Amplitude) * sp.maxBurstMult() / 60
	rate := func(t time.Duration) float64 {
		mod := 1.0
		if sp.Period > 0 {
			mod = 1 + sp.Amplitude*math.Sin(2*math.Pi*t.Seconds()/sp.Period.Seconds())
		}
		return sp.BasePerMin * mod * sp.burstMult(t) / 60
	}
	declared := resources.Zero
	if sp.Declared {
		declared = resources.Vector{MilliCPU: 1000, MemoryMB: sp.MemMB}
	}
	var out []TimedWorkflow
	t := time.Duration(0)
	for {
		u := rng.Float64()
		if u == 0 {
			u = 1e-12
		}
		t += time.Duration(-math.Log(u) / maxRate * float64(time.Second))
		if t >= sp.Window {
			break
		}
		if rng.Float64() > rate(t)/maxRate {
			continue
		}
		n := p.TasksPerWorkflow
		if p.SizeJitter > 0 {
			span := float64(n) * p.SizeJitter
			n += int((2*rng.Float64() - 1) * span)
			if n < 1 {
				n = 1
			}
		}
		name := fmt.Sprintf("wf-%d", len(out))
		tasks := make([]wq.TaskSpec, n)
		for i := range tasks {
			tasks[i] = wq.TaskSpec{
				Tag:       fmt.Sprintf("%s/t%d", name, i),
				Command:   fmt.Sprintf("%s task %d", name, i),
				Category:  sp.Category,
				Resources: declared,
				Profile: wq.Profile{
					ExecDuration: jitterDuration(rng, sp.Exec, sp.Jitter),
					UsedCPUMilli: sp.CPUMilli,
					UsedMemoryMB: sp.MemMB,
				},
			}
		}
		out = append(out, TimedWorkflow{At: t, Name: name, Tasks: tasks})
	}
	return out
}

// Flatten expands workflow arrivals into per-task arrivals (every
// task of a workflow arrives at the workflow's submission time).
func Flatten(wfs []TimedWorkflow) []TimedTask {
	var out []TimedTask
	for _, wf := range wfs {
		for _, spec := range wf.Tasks {
			out = append(out, TimedTask{At: wf.At, Spec: spec})
		}
	}
	return out
}
