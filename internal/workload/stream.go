package workload

import (
	"fmt"
	"math"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// TimedTask is a task together with its arrival offset from the start
// of the run — the open-loop submission model of a shared HTC
// facility, as opposed to the paper's all-at-once batch workflows.
type TimedTask struct {
	At   time.Duration
	Spec wq.TaskSpec
}

// StreamParams generates an inhomogeneous Poisson arrival stream
// whose rate follows a sinusoid:
//
//	rate(t) = Base × (1 + Amplitude × sin(2πt/Period))
//
// — the diurnal load pattern an elastic facility sees.
type StreamParams struct {
	// Window is the submission window length.
	Window time.Duration
	// BasePerMin is the mean arrival rate in tasks per minute.
	BasePerMin float64
	// Amplitude in [0, 1) modulates the rate around the base.
	Amplitude float64
	// Period is the wavelength of the modulation.
	Period time.Duration

	Category string
	Exec     time.Duration
	Jitter   float64
	CPUMilli int64
	MemMB    int64
	Declared bool
	Seed     int64
}

// DefaultStream returns a two-hour diurnal stream whose concurrency
// demand swings between ≈6 and ≈54 cores — inside a 20-node (60-core)
// quota, so a well-informed autoscaler can track the whole wave.
func DefaultStream() StreamParams {
	return StreamParams{
		Window:     2 * time.Hour,
		BasePerMin: 10,
		Amplitude:  0.8,
		Period:     30 * time.Minute,
		Category:   "stream",
		Exec:       3 * time.Minute,
		Jitter:     0.15,
		CPUMilli:   870,
		MemMB:      2048,
		Seed:       1,
	}
}

// Tasks generates the arrival stream (sorted by arrival time) via
// Poisson thinning.
func (p StreamParams) Tasks() []TimedTask {
	if p.Window <= 0 || p.BasePerMin <= 0 {
		return nil
	}
	if p.Amplitude < 0 || p.Amplitude >= 1 {
		panic(fmt.Sprintf("workload: stream amplitude %v outside [0, 1)", p.Amplitude))
	}
	rng := simclock.NewRNG(p.Seed)
	maxRate := p.BasePerMin * (1 + p.Amplitude) / 60 // per second
	rate := func(t time.Duration) float64 {
		mod := 1.0
		if p.Period > 0 {
			mod = 1 + p.Amplitude*math.Sin(2*math.Pi*t.Seconds()/p.Period.Seconds())
		}
		return p.BasePerMin * mod / 60
	}
	declared := resources.Zero
	if p.Declared {
		declared = resources.Vector{MilliCPU: 1000, MemoryMB: p.MemMB}
	}
	var out []TimedTask
	t := time.Duration(0)
	i := 0
	for {
		// Exponential inter-arrival at the envelope rate.
		u := rng.Float64()
		if u == 0 {
			u = 1e-12
		}
		t += time.Duration(-math.Log(u) / maxRate * float64(time.Second))
		if t >= p.Window {
			break
		}
		// Thinning: accept with probability rate(t)/maxRate.
		if rng.Float64() > rate(t)/maxRate {
			continue
		}
		out = append(out, TimedTask{
			At: t,
			Spec: wq.TaskSpec{
				Command:   fmt.Sprintf("stream-task %d", i),
				Category:  p.Category,
				Resources: declared,
				Profile: wq.Profile{
					ExecDuration: jitterDuration(rng, p.Exec, p.Jitter),
					UsedCPUMilli: p.CPUMilli,
					UsedMemoryMB: p.MemMB,
				},
			},
		})
		i++
	}
	return out
}
