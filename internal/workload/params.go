package workload

import "time"

// Calibration constants. Each value is chosen so the simulated
// experiments land in the regime the paper reports; the paper figures
// cited below are the calibration targets, not guaranteed outputs.
const (
	// BlastExecMean is the per-job execution time of a flat BLAST
	// alignment. Fig. 2's ideal completion is 240 s for 200 jobs on
	// 15 three-core nodes (45 slots): 200/45 waves × ≈53 s ≈ 236 s.
	BlastExecMean = 53 * time.Second

	// BlastCPUMilli is the busy CPU of an alignment job. Fig. 4a
	// reports ≈87 % CPU on one-core workers.
	BlastCPUMilli = 870

	// BlastMemMB is the alignment's peak memory: ≈3.8 GB, so three
	// jobs fit a 12 GB node (the paper packs 3 jobs per n1-standard-4
	// in configuration (c)).
	BlastMemMB = 3800

	// BlastSharedDBMB is the cacheable shared input of Fig. 4:
	// "a (cacheable) 1.4 GB shareable input".
	BlastSharedDBMB = 1400

	// BlastOutputMB is the per-job output: "600 KB output".
	BlastOutputMB = 0.6

	// MultistageExec is the per-task execution time of the Fig. 10
	// workflow: 398 tasks × ≈300 s ÷ 60 cores ≈ 1990 s of pure
	// compute, which with autoscaler ramps lands near the paper's
	// 2480-3060 s runtimes.
	MultistageExec = 300 * time.Second

	// IOBoundExec is the dd task duration of Fig. 11. With the HPA
	// pinned at 3 one-core workers (usage ≈15 % < the 20 % target,
	// ratio 0.75 ⇒ ceil(3×0.75)=3), 200 tasks × 100 s ÷ 3 ≈ 6670 s —
	// the paper's HPA-20% runtime.
	IOBoundExec = 100 * time.Second

	// IOBoundCPUMilli is the dd task's busy CPU: "CPU load is rarely
	// over 20 %" — we use 15 %.
	IOBoundCPUMilli = 150

	// IOBoundMemMB and IOBoundDiskMB are modest: dd streams data.
	IOBoundMemMB  = 256
	IOBoundDiskMB = 4000

	// MasterEgressMBps is the master's egress capacity and
	// StreamContention the per-extra-stream efficiency factor: with
	// 15 concurrent streams the aggregate is 600×0.96¹⁴ ≈ 340 MB/s
	// and with 5 streams ≈ 510 MB/s, reproducing Fig. 4's
	// 278 vs 452 MB/s average-bandwidth gap between fine- and
	// coarse-grained configurations.
	MasterEgressMBps  = 600.0
	StreamContention  = 0.96
	WorkerIngressMBps = 0.0 // no per-worker NIC cap by default
)
