package qpa

import (
	"testing"
	"time"

	"hta/internal/bind"
	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

type rig struct {
	eng  *simclock.Engine
	c    *kubesim.Cluster
	m    *wq.Master
	ws   *kubesim.WorkerSet
	ctrl *Controller
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := simclock.NewEngine(t0)
	c := kubesim.NewCluster(eng, kubesim.Config{InitialNodes: 25, MaxNodes: 30, Seed: 1})
	m := wq.NewMaster(eng, nil)
	binder := bind.Workers(c, m, map[string]string{"app": "wq-worker"})
	t.Cleanup(func() {
		if err := binder.Err(); err != nil {
			t.Errorf("binder: %v", err)
		}
	})
	template := kubesim.PodSpec{
		Image:     "wq-worker",
		Resources: resources.New(3, 12288, 10000),
		Labels:    map[string]string{"app": "wq-worker"},
	}
	ws := kubesim.NewWorkerSet(c, "workers", template, 1)
	ctrl := New(c, ws, m, cfg)
	t.Cleanup(func() { ctrl.Stop(); ws.Stop(); c.Stop() })
	return &rig{eng: eng, c: c, m: m, ws: ws, ctrl: ctrl}
}

func TestScalesToQueueLength(t *testing.T) {
	r := newRig(t, Config{TasksPerWorker: 3, MaxReplicas: 20})
	for i := 0; i < 30; i++ {
		r.m.Submit(wq.TaskSpec{
			Category:  "c",
			Resources: resources.New(1, 1024, 10),
			Profile:   wq.Profile{ExecDuration: time.Hour, UsedCPUMilli: 900},
		})
	}
	r.eng.RunFor(time.Minute)
	// 30 outstanding / 3 per worker = 10.
	if got := r.ws.Replicas(); got != 10 {
		t.Errorf("replicas = %d, want 10", got)
	}
	if r.ctrl.LastDesired != 10 {
		t.Errorf("LastDesired = %d", r.ctrl.LastDesired)
	}
}

func TestClampsToMax(t *testing.T) {
	r := newRig(t, Config{TasksPerWorker: 1, MaxReplicas: 5})
	for i := 0; i < 100; i++ {
		r.m.Submit(wq.TaskSpec{
			Resources: resources.New(1, 1024, 10),
			Profile:   wq.Profile{ExecDuration: time.Hour},
		})
	}
	r.eng.RunFor(time.Minute)
	if got := r.ws.Replicas(); got != 5 {
		t.Errorf("replicas = %d, want clamp 5", got)
	}
}

func TestStabilizationHoldsThenScalesToFloor(t *testing.T) {
	r := newRig(t, Config{TasksPerWorker: 3, MaxReplicas: 20, Stabilization: 5 * time.Minute})
	for i := 0; i < 9; i++ {
		r.m.Submit(wq.TaskSpec{
			Resources: resources.New(1, 1024, 10),
			Profile:   wq.Profile{ExecDuration: 2 * time.Minute, UsedCPUMilli: 900},
		})
	}
	r.eng.RunFor(time.Minute)
	if got := r.ws.Replicas(); got != 3 {
		t.Fatalf("replicas = %d, want 3", got)
	}
	// All tasks finish within a few minutes; the set must hold the
	// peak recommendation until the stabilization window passes.
	r.eng.RunFor(4 * time.Minute)
	if r.m.CompletedCount() != 9 {
		t.Fatalf("completed = %d", r.m.CompletedCount())
	}
	if got := r.ws.Replicas(); got != 3 {
		t.Errorf("replicas = %d inside stabilization window, want 3", got)
	}
	r.eng.RunFor(10 * time.Minute)
	if got := r.ws.Replicas(); got != 1 {
		t.Errorf("replicas = %d after window, want floor 1", got)
	}
}

func TestScaleDownFollowsQueueAfterWindow(t *testing.T) {
	r := newRig(t, Config{TasksPerWorker: 1, MaxReplicas: 20, Stabilization: time.Minute})
	for i := 0; i < 6; i++ {
		r.m.Submit(wq.TaskSpec{
			Resources: resources.New(1, 1024, 10),
			Profile:   wq.Profile{ExecDuration: 10 * time.Minute, UsedCPUMilli: 900},
		})
	}
	r.eng.RunFor(time.Minute)
	if got := r.ws.Replicas(); got != 6 {
		t.Fatalf("replicas = %d, want 6", got)
	}
	// With a short window, the set follows the queue down once tasks
	// complete.
	r.eng.RunFor(15 * time.Minute)
	if got := r.ws.Replicas(); got != 1 {
		t.Errorf("replicas = %d after drain, want floor", got)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	eng := simclock.NewEngine(t0)
	c := kubesim.NewCluster(eng, kubesim.Config{Seed: 1})
	defer c.Stop()
	m := wq.NewMaster(eng, nil)
	ws := kubesim.NewWorkerSet(c, "w", kubesim.PodSpec{Image: "i", Resources: resources.Cores(1)}, 0)
	defer ws.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for TasksPerWorker=0")
		}
	}()
	New(c, ws, m, Config{})
}
