// Package qpa implements a queue-proportional autoscaler — the
// KEDA-style event-driven baseline that post-dates the paper: it
// scales a WorkerSet to ceil(outstanding tasks / tasks-per-worker),
// knowing the queue length but neither the per-category resource
// consumption nor the cluster's resource-initialization time. The
// comparison against HTA isolates the value of the paper's two extra
// signals: without them the queue scaler over-provisions during
// provisioning cycles (the queue keeps "demanding" workers that are
// already on the way) unless it guesses a cooldown, and it packs
// tasks by a fixed per-worker slot count rather than measured sizes.
package qpa

import (
	"math"
	"time"

	"hta/internal/kubesim"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// Config tunes the controller.
type Config struct {
	// TasksPerWorker is the assumed worker slot count the operator
	// configures (KEDA's queueLength target). Required.
	TasksPerWorker int
	// MinReplicas / MaxReplicas bound the set (defaults 1 / 20).
	MinReplicas int
	MaxReplicas int
	// SyncInterval is the control-loop period (default 15 s).
	SyncInterval time.Duration
	// Stabilization is the scale-down stabilization window: the set
	// only shrinks to the highest recommendation of the window, the
	// behaviour KEDA inherits from the HPA it drives (default 5 min).
	Stabilization time.Duration
}

func (c Config) withDefaults() Config {
	if c.MinReplicas == 0 {
		c.MinReplicas = 1
	}
	if c.MaxReplicas == 0 {
		c.MaxReplicas = 20
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 15 * time.Second
	}
	if c.Stabilization == 0 {
		c.Stabilization = 5 * time.Minute
	}
	return c
}

type recommendation struct {
	at      time.Time
	desired int
}

// Controller scales a WorkerSet from the master's queue length.
type Controller struct {
	cluster *kubesim.Cluster
	set     *kubesim.WorkerSet
	master  *wq.Master
	cfg     Config
	ticker  *simclock.Ticker
	recs    []recommendation

	// LastDesired exposes the most recent pre-stabilization
	// recommendation.
	LastDesired int
}

// New attaches the controller and starts its loop. It panics if
// TasksPerWorker is not positive.
func New(cluster *kubesim.Cluster, set *kubesim.WorkerSet, master *wq.Master, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	if cfg.TasksPerWorker <= 0 {
		panic("qpa: TasksPerWorker must be positive")
	}
	c := &Controller{
		cluster: cluster,
		set:     set,
		master:  master,
		cfg:     cfg,
	}
	c.ticker = cluster.Engine().Every(cfg.SyncInterval, "qpa-sync", c.sync)
	return c
}

// Stop halts the control loop.
func (c *Controller) Stop() { c.ticker.Stop() }

func (c *Controller) sync() {
	s := c.master.Stats()
	outstanding := s.Waiting + s.Running
	now := c.cluster.Engine().Now()
	desired := int(math.Ceil(float64(outstanding) / float64(c.cfg.TasksPerWorker)))
	if desired < c.cfg.MinReplicas {
		desired = c.cfg.MinReplicas
	}
	if desired > c.cfg.MaxReplicas {
		desired = c.cfg.MaxReplicas
	}
	c.LastDesired = desired

	// Scale-down stabilization: the effective count is the highest
	// recommendation inside the window; scale-ups apply immediately.
	c.recs = append(c.recs, recommendation{at: now, desired: desired})
	cutoff := now.Add(-c.cfg.Stabilization)
	keep := c.recs[:0]
	for _, r := range c.recs {
		if !r.at.Before(cutoff) {
			keep = append(keep, r)
		}
	}
	c.recs = keep
	effective := desired
	for _, r := range c.recs {
		if r.desired > effective {
			effective = r.desired
		}
	}
	if effective != c.set.Replicas() {
		c.set.SetReplicas(effective)
	}
}
