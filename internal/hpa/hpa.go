// Package hpa implements the Kubernetes Horizontal Pod Autoscaler —
// the baseline the paper compares against. The controller
// periodically computes
//
//	desired = ceil(current × currentUtilization / targetUtilization)
//
// (equation (1) of the paper) over the pods of a WorkerSet, with the
// standard refinements of the real controller: a ±10 % tolerance
// band, conservative treatment of pods without metrics (they count
// their full request as zero usage on scale-up), and a scale-down
// stabilization window during which the highest recent recommendation
// wins — the five-minute default that, as the paper's Fig. 10 shows,
// keeps an HTC cluster pinned at its peak size long after the demand
// has fallen.
package hpa

import (
	"math"
	"time"

	"hta/internal/kubesim"
	"hta/internal/simclock"
)

// Config tunes the controller; zero values take the Kubernetes
// defaults noted on each field.
type Config struct {
	// TargetCPUUtilization is the desired usage/request ratio in
	// (0, 1]; e.g. 0.2 for the paper's HPA-20%. Required.
	TargetCPUUtilization float64
	// MinReplicas is the floor (default 1).
	MinReplicas int
	// MaxReplicas is the ceiling (default 20).
	MaxReplicas int
	// SyncInterval is the control-loop period (default 15 s).
	SyncInterval time.Duration
	// Tolerance suppresses resizes when |ratio−1| ≤ Tolerance
	// (default 0.1).
	Tolerance float64
	// ScaleDownStabilization is the window over which the highest
	// recommendation is kept before shrinking (default 5 min).
	ScaleDownStabilization time.Duration
}

func (c Config) withDefaults() Config {
	if c.MinReplicas == 0 {
		c.MinReplicas = 1
	}
	if c.MaxReplicas == 0 {
		c.MaxReplicas = 20
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 15 * time.Second
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.1
	}
	if c.ScaleDownStabilization == 0 {
		c.ScaleDownStabilization = 5 * time.Minute
	}
	return c
}

type recommendation struct {
	at      time.Time
	desired int
}

// Controller is a running HPA attached to a WorkerSet.
type Controller struct {
	cluster *kubesim.Cluster
	set     *kubesim.WorkerSet
	cfg     Config
	ticker  *simclock.Ticker
	recs    []recommendation
	// LastDesired is the most recent pre-stabilization
	// recommendation, for observability (Fig. 2 plots it).
	LastDesired int
	// LastUtilization is the most recent measured utilization.
	LastUtilization float64
	syncs           int
	actions         int
}

// New attaches an HPA to the given WorkerSet and starts its sync
// loop. It panics if the target utilization is not in (0, 1].
func New(cluster *kubesim.Cluster, set *kubesim.WorkerSet, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	if cfg.TargetCPUUtilization <= 0 || cfg.TargetCPUUtilization > 1 {
		panic("hpa: TargetCPUUtilization must be in (0, 1]")
	}
	h := &Controller{cluster: cluster, set: set, cfg: cfg, LastDesired: set.Replicas()}
	h.ticker = cluster.Engine().Every(cfg.SyncInterval, "hpa-sync", h.sync)
	return h
}

// Stop halts the control loop.
func (h *Controller) Stop() { h.ticker.Stop() }

// Syncs returns how many control iterations have run.
func (h *Controller) Syncs() int { return h.syncs }

// Actions returns how many replica changes the controller applied —
// the thrash count an experiment compares across autoscalers.
func (h *Controller) Actions() int { return h.actions }

func (h *Controller) sync() {
	h.syncs++
	live := h.set.LivePods()
	current := len(live)
	if current == 0 {
		// Nothing to measure; reconcile toward the floor.
		h.apply(h.cfg.MinReplicas)
		return
	}

	// Utilization: usage summed over running pods, requests summed
	// over all live pods — a pod without metrics (still Pending)
	// contributes its request with zero usage, the conservative
	// missing-metrics rule that damps scale-up overshoot.
	var usedMilli, reqMilli int64
	for _, p := range live {
		reqMilli += p.Resources.MilliCPU
		if p.Phase == kubesim.PodRunning {
			usedMilli += h.cluster.PodUsage(p.Name).MilliCPU
		}
	}
	if reqMilli == 0 {
		return
	}
	util := float64(usedMilli) / float64(reqMilli)
	h.LastUtilization = util

	ratio := util / h.cfg.TargetCPUUtilization
	desired := current
	if math.Abs(ratio-1) > h.cfg.Tolerance {
		desired = int(math.Ceil(float64(current) * ratio))
	}
	desired = h.clamp(desired)
	h.LastDesired = desired
	h.apply(desired)
}

func (h *Controller) clamp(n int) int {
	if n < h.cfg.MinReplicas {
		n = h.cfg.MinReplicas
	}
	if n > h.cfg.MaxReplicas {
		n = h.cfg.MaxReplicas
	}
	return n
}

// apply records the recommendation and sets the stabilized replica
// count: scale-ups take effect immediately, scale-downs only to the
// highest recommendation within the stabilization window.
func (h *Controller) apply(desired int) {
	now := h.cluster.Clock().Now()
	h.recs = append(h.recs, recommendation{at: now, desired: desired})
	// Trim history outside the window.
	cutoff := now.Add(-h.cfg.ScaleDownStabilization)
	keep := h.recs[:0]
	for _, r := range h.recs {
		if !r.at.Before(cutoff) {
			keep = append(keep, r)
		}
	}
	h.recs = keep

	effective := desired
	for _, r := range h.recs {
		if r.desired > effective {
			effective = r.desired
		}
	}
	if effective != h.set.Replicas() {
		h.actions++
		h.set.SetReplicas(effective)
	}
}
