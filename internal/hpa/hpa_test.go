package hpa

import (
	"testing"
	"time"

	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

// harness wires a cluster, a worker set whose pods all report the
// usage fraction held in *util (relative to a 1-core request), and an
// HPA.
type harness struct {
	eng  *simclock.Engine
	c    *kubesim.Cluster
	ws   *kubesim.WorkerSet
	h    *Controller
	util *float64
}

func newHarness(t *testing.T, cfg Config, initialReplicas int) *harness {
	t.Helper()
	eng := simclock.NewEngine(t0)
	c := kubesim.NewCluster(eng, kubesim.Config{
		InitialNodes: 25, MaxNodes: 30, Seed: 1,
	})
	util := new(float64)
	template := kubesim.PodSpec{
		Image:     "wq-worker",
		Resources: resources.New(1, 1024, 100),
		Usage: func() resources.Vector {
			return resources.Vector{MilliCPU: int64(*util * 1000)}
		},
	}
	ws := kubesim.NewWorkerSet(c, "workers", template, initialReplicas)
	h := New(c, ws, cfg)
	t.Cleanup(func() { h.Stop(); ws.Stop(); c.Stop() })
	return &harness{eng: eng, c: c, ws: ws, h: h, util: util}
}

func TestScaleUpOnHighUtilization(t *testing.T) {
	hs := newHarness(t, Config{TargetCPUUtilization: 0.3, MaxReplicas: 20}, 1)
	*hs.util = 0.9
	hs.eng.RunFor(60 * time.Second)
	// ratio = 0.9/0.3 = 3 → 1 pod becomes 3; pending pods then damp
	// further growth until they run, after which it grows again.
	if got := hs.ws.Replicas(); got < 3 {
		t.Errorf("replicas = %d, want >= 3", got)
	}
	hs.eng.RunFor(10 * time.Minute)
	if got := hs.ws.Replicas(); got != 20 {
		t.Errorf("replicas = %d, want to reach max 20", got)
	}
	if hs.h.Syncs() == 0 {
		t.Error("no syncs recorded")
	}
}

func TestToleranceSuppressesResize(t *testing.T) {
	hs := newHarness(t, Config{TargetCPUUtilization: 0.5}, 4)
	*hs.util = 0.52 // ratio 1.04, inside ±0.1
	hs.eng.RunFor(5 * time.Minute)
	if got := hs.ws.Replicas(); got != 4 {
		t.Errorf("replicas = %d, want unchanged 4", got)
	}
}

func TestHighTargetNeverScalesUp(t *testing.T) {
	// The paper's Config-99: jobs use ~87% CPU, target 99% — the
	// ratio stays below 1+tolerance and the cluster never grows.
	hs := newHarness(t, Config{TargetCPUUtilization: 0.99, MaxReplicas: 15}, 1)
	*hs.util = 0.87
	hs.eng.RunFor(20 * time.Minute)
	if got := hs.ws.Replicas(); got != 1 {
		t.Errorf("replicas = %d, want 1 (never scales)", got)
	}
}

func TestScaleDownWaitsForStabilization(t *testing.T) {
	hs := newHarness(t, Config{
		TargetCPUUtilization:   0.5,
		ScaleDownStabilization: 5 * time.Minute,
	}, 6)
	*hs.util = 0.5
	hs.eng.RunFor(time.Minute)
	if got := hs.ws.Replicas(); got != 6 {
		t.Fatalf("replicas = %d before drop", got)
	}
	// Load vanishes.
	*hs.util = 0.0
	hs.eng.RunFor(2 * time.Minute)
	if got := hs.ws.Replicas(); got != 6 {
		t.Errorf("replicas = %d during stabilization window, want 6", got)
	}
	hs.eng.RunFor(6 * time.Minute)
	if got := hs.ws.Replicas(); got != 1 {
		t.Errorf("replicas = %d after window, want floor 1", got)
	}
}

func TestPendingPodsDampScaleUp(t *testing.T) {
	// Cluster with a single 3-core node: only 3 one-core workers can
	// run; the rest stay Pending with zero usage and hold the
	// average down.
	eng := simclock.NewEngine(t0)
	c := kubesim.NewCluster(eng, kubesim.Config{InitialNodes: 1, MaxNodes: 1, Seed: 1})
	util := 0.95
	template := kubesim.PodSpec{
		Image:     "wq-worker",
		Resources: resources.New(1, 1024, 100),
		Usage: func() resources.Vector {
			return resources.Vector{MilliCPU: int64(util * 1000)}
		},
	}
	ws := kubesim.NewWorkerSet(c, "workers", template, 1)
	h := New(c, ws, Config{TargetCPUUtilization: 0.1, MaxReplicas: 50})
	defer func() { h.Stop(); ws.Stop(); c.Stop() }()
	eng.RunFor(10 * time.Minute)
	// Unbounded growth would hit 50; the conservative missing-metrics
	// rule caps the overshoot well below that: with 3 running pods at
	// 95%, requests R satisfy 2850/R ≥ 10% ⇒ R ≤ ~29 replicas.
	got := ws.Replicas()
	if got > 30 {
		t.Errorf("replicas = %d, want damped (≤30)", got)
	}
	if got < 10 {
		t.Errorf("replicas = %d, want clear scale-up pressure (≥10)", got)
	}
}

func TestZeroLivePodsReconcilesToFloor(t *testing.T) {
	hs := newHarness(t, Config{TargetCPUUtilization: 0.5, MinReplicas: 2}, 0)
	hs.eng.RunFor(time.Minute)
	if got := hs.ws.Replicas(); got != 2 {
		t.Errorf("replicas = %d, want MinReplicas 2", got)
	}
}

func TestMaxReplicasClamp(t *testing.T) {
	hs := newHarness(t, Config{TargetCPUUtilization: 0.1, MaxReplicas: 5}, 2)
	*hs.util = 1.0
	hs.eng.RunFor(10 * time.Minute)
	if got := hs.ws.Replicas(); got != 5 {
		t.Errorf("replicas = %d, want clamp at 5", got)
	}
}

func TestLastDesiredExposed(t *testing.T) {
	hs := newHarness(t, Config{TargetCPUUtilization: 0.3}, 1)
	*hs.util = 0.9
	hs.eng.RunFor(30 * time.Second)
	if hs.h.LastDesired < 3 {
		t.Errorf("LastDesired = %d, want ≥3", hs.h.LastDesired)
	}
	if hs.h.LastUtilization < 0.5 {
		t.Errorf("LastUtilization = %v", hs.h.LastUtilization)
	}
}

func TestInvalidTargetPanics(t *testing.T) {
	eng := simclock.NewEngine(t0)
	c := kubesim.NewCluster(eng, kubesim.Config{Seed: 1})
	defer c.Stop()
	ws := kubesim.NewWorkerSet(c, "w", kubesim.PodSpec{Image: "i", Resources: resources.Cores(1)}, 0)
	defer ws.Stop()
	for _, target := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("target %v: expected panic", target)
				}
			}()
			New(c, ws, Config{TargetCPUUtilization: target})
		}()
	}
}
