// Package bind glues the pod world to the Work Queue world for
// scenarios where something other than HTA owns the worker pods (the
// HPA and queue-proportional baselines, and tests).
package bind

import (
	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/wq"
)

// Workers connects a cluster's pods to a master: every matching pod that reaches Running joins
// the master as a worker with the pod's requested resources, reports
// its live usage to the metrics server, and is disconnected — with
// its running tasks requeued — when the pod is deleted.
func Workers(cluster *kubesim.Cluster, master *wq.Master, selector map[string]string) {
	connected := make(map[string]bool)
	cluster.OnPod(func(ev kubesim.PodWatchEvent) {
		name := ev.Pod.Name
		if !ev.Pod.MatchesSelector(selector) {
			return
		}
		switch {
		case ev.Type == kubesim.Modified && ev.Reason == kubesim.ReasonStarted:
			if connected[name] {
				return
			}
			if err := master.AddWorker(name, ev.Pod.Resources); err != nil {
				return
			}
			connected[name] = true
			_ = cluster.SetPodUsage(name, func() resources.Vector {
				return master.WorkerUsage(name)
			})
		case ev.Type == kubesim.Deleted:
			if connected[name] {
				delete(connected, name)
				_ = master.KillWorker(name)
			}
		}
	})
}
