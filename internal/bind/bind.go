// Package bind glues the pod world to the Work Queue world for
// scenarios where something other than HTA owns the worker pods (the
// HPA and queue-proportional baselines, and tests).
package bind

import (
	"fmt"

	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/wq"
)

// Binder is the handle Workers returns. It records binding failures —
// a duplicate worker identity, a pod death whose worker the master no
// longer knows — instead of discarding them; callers check Err once
// the run finishes. Like the components it binds, it is driven from
// the single simulation goroutine.
type Binder struct {
	errs []error
}

// Err returns the first recorded binding failure, or nil.
func (b *Binder) Err() error {
	if len(b.errs) == 0 {
		return nil
	}
	return b.errs[0]
}

// Errs returns every recorded binding failure.
func (b *Binder) Errs() []error {
	return append([]error(nil), b.errs...)
}

// Workers connects a cluster's pods to a master: every matching pod that reaches Running joins
// the master as a worker with the pod's requested resources, reports
// its live usage to the metrics server, and is disconnected — with
// its running tasks requeued — when the pod is deleted. Failures of
// either hand-off accumulate on the returned Binder: a pod roster and
// a worker roster that silently disagree would corrupt every
// requeue-accounting experiment built on this glue.
func Workers(cluster *kubesim.Cluster, master *wq.Master, selector map[string]string) *Binder {
	b := &Binder{}
	connected := make(map[string]bool)
	cluster.OnPod(func(ev kubesim.PodWatchEvent) {
		name := ev.Pod.Name
		if !ev.Pod.MatchesSelector(selector) {
			return
		}
		switch {
		case ev.Type == kubesim.Modified && ev.Reason == kubesim.ReasonStarted:
			if connected[name] {
				return
			}
			if err := master.AddWorker(name, ev.Pod.Resources); err != nil {
				b.errs = append(b.errs, fmt.Errorf("bind: add worker %s: %w", name, err))
				return
			}
			connected[name] = true
			_ = cluster.SetPodUsage(name, func() resources.Vector {
				return master.WorkerUsage(name)
			})
		case ev.Type == kubesim.Deleted:
			if connected[name] {
				delete(connected, name)
				if err := master.KillWorker(name); err != nil {
					b.errs = append(b.errs, fmt.Errorf("bind: kill worker %s: %w", name, err))
				}
			}
		}
	})
	return b
}
