package monitor

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hta/internal/resources"
	"hta/internal/wq"
)

func completed(cat string, usage resources.Vector, wall time.Duration) wq.Task {
	return wq.Task{
		TaskSpec: wq.TaskSpec{Category: cat},
		Measured: usage,
		ExecWall: wall,
	}
}

func TestUnknownCategory(t *testing.T) {
	m := New(Config{})
	if m.Known("x") {
		t.Error("Known on empty monitor")
	}
	if _, ok := m.EstimateResources("x"); ok {
		t.Error("estimate without observation")
	}
	if _, ok := m.EstimateExecTime("x"); ok {
		t.Error("exec estimate without observation")
	}
	if _, ok := m.Stats("x"); ok {
		t.Error("stats without observation")
	}
}

func TestSingleObservation(t *testing.T) {
	m := New(Config{})
	m.Observe(completed("align", resources.Vector{MilliCPU: 870, MemoryMB: 3800, DiskMB: 1500}, 80*time.Second))
	if !m.Known("align") {
		t.Fatal("category not known after observation")
	}
	v, ok := m.EstimateResources("align")
	if !ok {
		t.Fatal("no estimate")
	}
	// 870 millicores rounds up to one whole processor slot.
	if v.MilliCPU != 1000 {
		t.Errorf("cpu estimate = %d, want 1000", v.MilliCPU)
	}
	if v.MemoryMB != 3800 || v.DiskMB != 1500 {
		t.Errorf("estimate = %v", v)
	}
	d, ok := m.EstimateExecTime("align")
	if !ok || d != 80*time.Second {
		t.Errorf("exec estimate = %v ok=%v", d, ok)
	}
}

func TestMaxAcrossObservations(t *testing.T) {
	m := New(Config{})
	m.Observe(completed("c", resources.Vector{MilliCPU: 500, MemoryMB: 1000}, 10*time.Second))
	m.Observe(completed("c", resources.Vector{MilliCPU: 2400, MemoryMB: 800}, 30*time.Second))
	v, _ := m.EstimateResources("c")
	// max(500, 2400) = 2400 → rounds to 3000; memory max 1000.
	if v.MilliCPU != 3000 || v.MemoryMB != 1000 {
		t.Errorf("estimate = %v", v)
	}
	d, _ := m.EstimateExecTime("c")
	if d != 20*time.Second {
		t.Errorf("mean exec = %v, want 20s", d)
	}
	st, _ := m.Stats("c")
	if st.Count != 2 || st.MaxExec != 30*time.Second {
		t.Errorf("stats = %+v", st)
	}
}

func TestWholeCoreNotRounded(t *testing.T) {
	m := New(Config{})
	m.Observe(completed("c", resources.Vector{MilliCPU: 2000, MemoryMB: 1}, time.Second))
	v, _ := m.EstimateResources("c")
	if v.MilliCPU != 2000 {
		t.Errorf("exact 2 cores became %d", v.MilliCPU)
	}
}

func TestIOBoundTaskOccupiesFullSlot(t *testing.T) {
	// A dd-style task uses ~150 millicores of CPU but still occupies
	// a processor; the estimator must not let 6 of them share a core.
	m := New(Config{})
	m.Observe(completed("io", resources.Vector{MilliCPU: 150, MemoryMB: 256, DiskMB: 4000}, 60*time.Second))
	v, _ := m.EstimateResources("io")
	if v.MilliCPU != 1000 {
		t.Errorf("cpu estimate = %d, want full slot 1000", v.MilliCPU)
	}
}

func TestMargin(t *testing.T) {
	m := New(Config{Margin: 0.1})
	m.Observe(completed("c", resources.Vector{MilliCPU: 2000, MemoryMB: 1000, DiskMB: 100}, time.Second))
	v, _ := m.EstimateResources("c")
	// 2000×1.1 = 2200 → rounds to 3000; memory 1100; disk 110.
	if v.MilliCPU != 3000 || v.MemoryMB != 1100 || v.DiskMB != 110 {
		t.Errorf("estimate = %v", v)
	}
}

func TestCategoriesSorted(t *testing.T) {
	m := New(Config{})
	for _, c := range []string{"zeta", "alpha", "mid"} {
		m.Observe(completed(c, resources.Cores(1), time.Second))
	}
	got := m.Categories()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Categories = %v", got)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	m := New(Config{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Observe(completed(fmt.Sprintf("cat%d", i%2), resources.Cores(1), time.Second))
			}
		}(i)
	}
	wg.Wait()
	st0, _ := m.Stats("cat0")
	st1, _ := m.Stats("cat1")
	if st0.Count+st1.Count != 800 {
		t.Errorf("counts = %d + %d, want 800", st0.Count, st1.Count)
	}
}

// Property: the estimate always covers every observed usage (after
// slot rounding), and mean exec lies within [min, max].
func TestPropertyEstimateCovers(t *testing.T) {
	f := func(cpus []uint16, mems []uint16) bool {
		if len(cpus) == 0 {
			return true
		}
		m := New(Config{})
		var minD, maxD time.Duration
		for i, c := range cpus {
			mem := int64(0)
			if i < len(mems) {
				mem = int64(mems[i])
			}
			d := time.Duration(c%300+1) * time.Second
			if i == 0 || d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
			m.Observe(completed("p", resources.Vector{MilliCPU: int64(c), MemoryMB: mem}, d))
		}
		est, ok := m.EstimateResources("p")
		if !ok {
			return false
		}
		for i, c := range cpus {
			mem := int64(0)
			if i < len(mems) {
				mem = int64(mems[i])
			}
			if est.MilliCPU < int64(c) || est.MemoryMB < mem {
				return false
			}
		}
		if est.MilliCPU%1000 != 0 {
			return false
		}
		mean, _ := m.EstimateExecTime("p")
		return mean >= minD && mean <= maxD
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
