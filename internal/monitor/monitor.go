// Package monitor implements the resource monitor of the paper's
// §IV-A: it aggregates the measured resource consumption and
// execution time of completed tasks per category and predicts the
// requirements of waiting tasks of the same category — the feedback
// input of the HTA controller. HTC stages consist of copies of the
// same program over equally sized data, so the first completed task
// of a category is a good predictor for the rest.
package monitor

import (
	"slices"
	"sync"
	"time"

	"hta/internal/resources"
	"hta/internal/wq"
)

// Config tunes estimation.
type Config struct {
	// Margin inflates resource estimates by the given fraction
	// (0.1 = 10 % headroom). Default 0, the paper's behaviour of
	// applying measured consumption directly.
	Margin float64
	// MinCPUMilli floors the CPU estimate; a task always occupies at
	// least this many millicores of a worker (default 1000 — one
	// processor slot, what Work Queue's monitor reports for a
	// single-process task regardless of how busy it keeps the core).
	MinCPUMilli int64
}

func (c Config) withDefaults() Config {
	if c.MinCPUMilli == 0 {
		c.MinCPUMilli = 1000
	}
	return c
}

// CategoryStats summarizes completed tasks of one category.
type CategoryStats struct {
	Category string
	Count    int
	// MaxUsage is the component-wise maximum measured consumption.
	MaxUsage resources.Vector
	// MeanExec and MaxExec summarize measured wall times.
	MeanExec time.Duration
	MaxExec  time.Duration
}

// Monitor aggregates task measurements. It is safe for concurrent
// use so the TCP runtime can share it with the simulation.
type Monitor struct {
	mu    sync.Mutex
	cfg   Config
	cats  map[string]*catAgg
	stale bool
	// rev counts mutations that could change an estimate (observation
	// batches, state imports). Exposed via EstimateRev so the master's
	// per-category memo can skip the lock in steady state.
	rev uint64
}

type catAgg struct {
	count     int
	maxUsage  resources.Vector
	totalExec time.Duration
	maxExec   time.Duration
}

// New returns an empty monitor.
func New(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults(), cats: make(map[string]*catAgg)}
}

// SetStale freezes the monitor: while stale it drops new
// measurements and keeps serving the data it already has — the gray
// failure of a metrics pipeline that stopped ingesting without
// anybody noticing. The controller keeps planning on yesterday's
// estimates instead of failing loudly.
func (m *Monitor) SetStale(stale bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stale = stale
}

// Stale reports whether the monitor is currently frozen.
func (m *Monitor) Stale() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stale
}

// Observe records a completed task's measurements.
func (m *Monitor) Observe(t wq.Task) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stale {
		return
	}
	agg, ok := m.cats[t.Category]
	if !ok {
		agg = &catAgg{}
		m.cats[t.Category] = agg
	}
	agg.count++
	agg.maxUsage = agg.maxUsage.Max(t.Measured)
	agg.totalExec += t.ExecWall
	if t.ExecWall > agg.maxExec {
		agg.maxExec = t.ExecWall
	}
	m.rev++
}

// Known reports whether the category has at least one measurement.
func (m *Monitor) Known(category string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cats[category] != nil
}

// Stats returns the category summary.
func (m *Monitor) Stats(category string) (CategoryStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg, ok := m.cats[category]
	if !ok {
		return CategoryStats{}, false
	}
	return CategoryStats{
		Category: category,
		Count:    agg.count,
		MaxUsage: agg.maxUsage,
		MeanExec: agg.totalExec / time.Duration(agg.count),
		MaxExec:  agg.maxExec,
	}, true
}

// Categories returns the measured categories, sorted.
func (m *Monitor) Categories() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.cats))
	for c := range m.cats {
		out = append(out, c)
	}
	slices.Sort(out)
	return out
}

// EstimateResources implements wq.Estimator: the component-wise
// maximum consumption seen for the category, CPU rounded up to whole
// processor slots, inflated by the configured margin.
func (m *Monitor) EstimateResources(category string) (resources.Vector, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg, ok := m.cats[category]
	if !ok {
		return resources.Zero, false
	}
	v := agg.maxUsage
	if m.cfg.Margin > 0 {
		v = resources.Vector{
			MilliCPU: v.MilliCPU + int64(float64(v.MilliCPU)*m.cfg.Margin),
			MemoryMB: v.MemoryMB + int64(float64(v.MemoryMB)*m.cfg.Margin),
			DiskMB:   v.DiskMB + int64(float64(v.DiskMB)*m.cfg.Margin),
		}
	}
	// Round CPU up to whole processor slots: a running process
	// occupies a core even when it does not saturate it.
	if v.MilliCPU < m.cfg.MinCPUMilli {
		v.MilliCPU = m.cfg.MinCPUMilli
	} else if rem := v.MilliCPU % 1000; rem != 0 {
		v.MilliCPU += 1000 - rem
	}
	return v, true
}

// EstimateExecTime implements wq.Estimator: the mean measured wall
// time for the category.
func (m *Monitor) EstimateExecTime(category string) (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg, ok := m.cats[category]
	if !ok {
		return 0, false
	}
	return agg.totalExec / time.Duration(agg.count), true
}

// EstimateRev implements wq.RevEstimator: the revision changes on
// every mutation that could alter an estimate, so the master can
// memoize per-category predictions and skip the monitor's lock (and
// aggregation) on the dispatch hot path between observation batches.
func (m *Monitor) EstimateRev() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rev
}

var _ wq.Estimator = (*Monitor)(nil)
var _ wq.RevEstimator = (*Monitor)(nil)
