package monitor

import (
	"slices"
	"strings"
	"time"

	"hta/internal/resources"
)

// CategoryState is the serializable aggregate for one category —
// everything Observe has accumulated, so an importing monitor
// produces identical estimates.
type CategoryState struct {
	Category  string
	Count     int
	MaxUsage  resources.Vector
	TotalExec time.Duration
	MaxExec   time.Duration
}

// State is the monitor's full learned state, categories sorted by
// name. It is what an autoscaler checkpoints so a restarted control
// plane does not re-learn resource requirements from scratch.
type State struct {
	Categories []CategoryState
}

// ExportState returns a deep copy of the learned aggregates.
func (m *Monitor) ExportState() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := State{Categories: make([]CategoryState, 0, len(m.cats))}
	for cat, agg := range m.cats {
		st.Categories = append(st.Categories, CategoryState{
			Category:  cat,
			Count:     agg.count,
			MaxUsage:  agg.maxUsage,
			TotalExec: agg.totalExec,
			MaxExec:   agg.maxExec,
		})
	}
	slices.SortFunc(st.Categories, func(a, b CategoryState) int {
		return strings.Compare(a.Category, b.Category)
	})
	return st
}

// ImportState replaces the monitor's aggregates with the exported
// state. Categories with no completed tasks (Count ≤ 0) are skipped.
func (m *Monitor) ImportState(st State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cats = make(map[string]*catAgg, len(st.Categories))
	for _, cs := range st.Categories {
		if cs.Count <= 0 {
			continue
		}
		m.cats[cs.Category] = &catAgg{
			count:     cs.Count,
			maxUsage:  cs.MaxUsage,
			totalExec: cs.TotalExec,
			maxExec:   cs.MaxExec,
		}
	}
	m.rev++
}
