package chaos

import (
	"fmt"
	"testing"
	"time"

	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

// run executes a Poisson-preemption plan against a fresh cluster and
// returns the ordered preemption event log.
func runPreemptions(seed int64) (Stats, []string) {
	eng := simclock.NewEngine(t0)
	cluster := kubesim.NewCluster(eng, kubesim.Config{
		InitialNodes: 8, MinNodes: 1, MaxNodes: 10, Seed: 7,
	})
	inj := New(eng, Plan{
		Seed:       seed,
		Preemption: PreemptionPlan{MeanInterval: 5 * time.Minute, MinNodesSpared: 2},
	})
	inj.AttachCluster(cluster)
	inj.Start()
	eng.RunUntil(t0.Add(time.Hour))
	inj.Stop()
	cluster.Stop()
	var log []string
	for _, ev := range cluster.Events() {
		if ev.Reason == kubesim.ReasonPreempted {
			log = append(log, fmt.Sprintf("%s %s", ev.Time.Format("15:04:05"), ev.Object))
		}
	}
	return inj.Stats(), log
}

func TestChaosPreemptionDeterministic(t *testing.T) {
	s1, log1 := runPreemptions(42)
	s2, log2 := runPreemptions(42)
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	if s1.Preemptions == 0 {
		t.Fatalf("no preemptions injected in an hour at 5 min mean")
	}
	if fmt.Sprint(log1) != fmt.Sprint(log2) {
		t.Fatalf("same seed, different event logs:\n%v\n%v", log1, log2)
	}
	s3, _ := runPreemptions(43)
	if s3.Preemptions == s1.Preemptions {
		t.Logf("different seeds produced equal counts (possible, just unlikely): %d", s1.Preemptions)
	}
}

func TestChaosPreemptionSparesFloor(t *testing.T) {
	eng := simclock.NewEngine(t0)
	// MinNodes = 4 keeps the cloud controller's empty-node scale-down
	// out of the picture; only the injector removes nodes.
	cluster := kubesim.NewCluster(eng, kubesim.Config{
		InitialNodes: 4, MinNodes: 4, MaxNodes: 4, Seed: 7,
	})
	inj := New(eng, Plan{
		Seed:       1,
		Preemption: PreemptionPlan{MeanInterval: time.Minute, MinNodesSpared: 3},
	})
	inj.AttachCluster(cluster)
	inj.Start()
	eng.RunUntil(t0.Add(2 * time.Hour))
	if got := cluster.ReadyNodes(); got != 3 {
		t.Fatalf("ready nodes = %d, want floor of 3", got)
	}
	inj.Stop()
	cluster.Stop()
}

func TestChaosWorkerCrashKillsBusyWorker(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := wq.NewMaster(eng, nil)
	m.AddWorker("idle", resources.New(4, 16384, 1000))
	m.AddWorker("busy", resources.New(4, 16384, 1000))
	// Make exactly one worker busy, then crash: the idle one must
	// survive.
	m.Submit(wq.TaskSpec{
		Category:  "align",
		Resources: resources.New(4, 16384, 1000),
		Profile:   wq.Profile{ExecDuration: time.Hour, UsedCPUMilli: 900},
	})
	inj := New(eng, Plan{Seed: 5, WorkerCrash: WorkerCrashPlan{MeanInterval: time.Minute}})
	inj.AttachMaster(m)
	eng.RunUntil(t0.Add(time.Second)) // let the task dispatch first
	inj.Start()
	eng.RunUntil(t0.Add(30 * time.Minute))
	if inj.Stats().WorkerCrashes == 0 {
		t.Fatalf("no crashes in 30 min at 1 min mean")
	}
	if got := m.FailureStats().WorkerKills; got == 0 {
		t.Fatalf("master saw no kills")
	}
	inj.Stop()
}

// fakeControlPlane records delivered kills and can refuse a component.
type fakeControlPlane struct {
	eng    *simclock.Engine
	refuse map[Component]bool
	log    []string
}

func (f *fakeControlPlane) CrashComponent(c Component) bool {
	if f.refuse[c] {
		return false
	}
	f.log = append(f.log, fmt.Sprintf("%s %s", f.eng.Now().Format("15:04:05"), c))
	return true
}

func runControlPlaneKills(seed int64, refuse map[Component]bool) (Stats, []string) {
	eng := simclock.NewEngine(t0)
	cp := &fakeControlPlane{eng: eng, refuse: refuse}
	inj := New(eng, Plan{
		Seed: seed,
		ControlPlane: ControlPlanePlan{
			Makeflow: ControlPlaneKillPlan{MeanInterval: 10 * time.Minute, MaxKills: 2},
			Master:   ControlPlaneKillPlan{MeanInterval: 15 * time.Minute, MaxKills: 1},
			Operator: ControlPlaneKillPlan{MeanInterval: 5 * time.Minute, MaxKills: 3},
		},
	})
	inj.AttachControlPlane(cp)
	inj.Start()
	eng.RunUntil(t0.Add(6 * time.Hour))
	inj.Stop()
	return inj.Stats(), cp.log
}

func TestChaosControlPlaneKillsBoundedAndDeterministic(t *testing.T) {
	s1, log1 := runControlPlaneKills(42, nil)
	s2, log2 := runControlPlaneKills(42, nil)
	if s1 != s2 || fmt.Sprint(log1) != fmt.Sprint(log2) {
		t.Fatalf("same seed diverged:\n%+v %v\n%+v %v", s1, log1, s2, log2)
	}
	// Six hours at these means is far beyond every cap: each process
	// must deliver exactly MaxKills and then disarm.
	if s1.MakeflowKills != 2 || s1.MasterKills != 1 || s1.OperatorKills != 3 {
		t.Fatalf("kills = %+v, want caps 2/1/3 reached exactly", s1)
	}
	if len(log1) != 6 {
		t.Fatalf("delivered log has %d entries, want 6: %v", len(log1), log1)
	}
}

func TestChaosControlPlaneRefusedKillsDoNotCount(t *testing.T) {
	s, log := runControlPlaneKills(42, map[Component]bool{ComponentMaster: true})
	if s.MasterKills != 0 {
		t.Fatalf("refused kills counted: %+v", s)
	}
	// The other processes are unaffected by the refusals.
	if s.MakeflowKills != 2 || s.OperatorKills != 3 {
		t.Fatalf("kills = %+v, want 2 makeflow and 3 operator", s)
	}
	for _, line := range log {
		if line[len(line)-len("master"):] == "master" {
			t.Fatalf("refused master kill appeared in delivered log: %v", log)
		}
	}
}

func TestChaosControlPlanePlanEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	p := Plan{ControlPlane: ControlPlanePlan{Master: ControlPlaneKillPlan{MeanInterval: time.Minute}}}
	if !p.Enabled() {
		t.Fatal("control-plane-only plan reports disabled")
	}
}

type fakeLink struct{ factors []float64 }

func (f *fakeLink) SetDegradation(v float64) { f.factors = append(f.factors, v) }

func TestChaosEgressWindows(t *testing.T) {
	eng := simclock.NewEngine(t0)
	link := &fakeLink{}
	inj := New(eng, Plan{
		Seed: 1,
		Egress: EgressPlan{
			Factor: 0.25,
			Windows: []Window{
				{Start: 10 * time.Minute, Duration: 5 * time.Minute},
				{Start: 30 * time.Minute, Duration: time.Minute},
			},
		},
	})
	inj.AttachLink(link)
	inj.Start()
	eng.RunUntil(t0.Add(time.Hour))
	want := []float64{0.25, 1, 0.25, 1}
	if fmt.Sprint(link.factors) != fmt.Sprint(want) {
		t.Fatalf("degradation sequence = %v, want %v", link.factors, want)
	}
	if inj.Stats().EgressWindows != 2 {
		t.Fatalf("EgressWindows = %d", inj.Stats().EgressWindows)
	}
}

func TestChaosPullFaultCounts(t *testing.T) {
	eng := simclock.NewEngine(t0)
	cluster := kubesim.NewCluster(eng, kubesim.Config{InitialNodes: 2, MaxNodes: 2, Seed: 3})
	inj := New(eng, Plan{
		Seed:      9,
		ImagePull: ImagePullPlan{FailProb: 0.5, SlowProb: 0.5, SlowdownFactor: 4},
	})
	inj.AttachCluster(cluster)
	inj.Start()
	// Six 1-core pods fill two 3-core nodes exactly.
	for i := 0; i < 6; i++ {
		if _, err := cluster.CreatePod(kubesim.PodSpec{
			Name:      fmt.Sprintf("p%d", i),
			Image:     fmt.Sprintf("img%d", i), // distinct images force pulls
			Resources: resources.New(1, 1024, 100),
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(t0.Add(2 * time.Hour))
	st := inj.Stats()
	if st.PullFailures == 0 && st.PullSlowdowns == 0 {
		t.Fatalf("no pull faults delivered: %+v", st)
	}
	// Every pod must still come up: failures retry with backoff.
	for i := 0; i < 6; i++ {
		p, ok := cluster.GetPod(fmt.Sprintf("p%d", i))
		if !ok || p.Phase != kubesim.PodRunning {
			t.Fatalf("pod p%d = %+v, want Running", i, p)
		}
	}
	inj.Stop()
	cluster.Stop()
}
