package chaos

import (
	"fmt"
	"testing"
	"time"

	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

// run executes a Poisson-preemption plan against a fresh cluster and
// returns the ordered preemption event log.
func runPreemptions(seed int64) (Stats, []string) {
	eng := simclock.NewEngine(t0)
	cluster := kubesim.NewCluster(eng, kubesim.Config{
		InitialNodes: 8, MinNodes: 1, MaxNodes: 10, Seed: 7,
	})
	inj := New(eng, Plan{
		Seed:       seed,
		Preemption: PreemptionPlan{MeanInterval: 5 * time.Minute, MinNodesSpared: 2},
	})
	inj.AttachCluster(cluster)
	inj.Start()
	eng.RunUntil(t0.Add(time.Hour))
	inj.Stop()
	cluster.Stop()
	var log []string
	for _, ev := range cluster.Events() {
		if ev.Reason == kubesim.ReasonPreempted {
			log = append(log, fmt.Sprintf("%s %s", ev.Time.Format("15:04:05"), ev.Object))
		}
	}
	return inj.Stats(), log
}

func TestChaosPreemptionDeterministic(t *testing.T) {
	s1, log1 := runPreemptions(42)
	s2, log2 := runPreemptions(42)
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	if s1.Preemptions == 0 {
		t.Fatalf("no preemptions injected in an hour at 5 min mean")
	}
	if fmt.Sprint(log1) != fmt.Sprint(log2) {
		t.Fatalf("same seed, different event logs:\n%v\n%v", log1, log2)
	}
	s3, _ := runPreemptions(43)
	if s3.Preemptions == s1.Preemptions {
		t.Logf("different seeds produced equal counts (possible, just unlikely): %d", s1.Preemptions)
	}
}

func TestChaosPreemptionSparesFloor(t *testing.T) {
	eng := simclock.NewEngine(t0)
	// MinNodes = 4 keeps the cloud controller's empty-node scale-down
	// out of the picture; only the injector removes nodes.
	cluster := kubesim.NewCluster(eng, kubesim.Config{
		InitialNodes: 4, MinNodes: 4, MaxNodes: 4, Seed: 7,
	})
	inj := New(eng, Plan{
		Seed:       1,
		Preemption: PreemptionPlan{MeanInterval: time.Minute, MinNodesSpared: 3},
	})
	inj.AttachCluster(cluster)
	inj.Start()
	eng.RunUntil(t0.Add(2 * time.Hour))
	if got := cluster.ReadyNodes(); got != 3 {
		t.Fatalf("ready nodes = %d, want floor of 3", got)
	}
	inj.Stop()
	cluster.Stop()
}

func TestChaosWorkerCrashKillsBusyWorker(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := wq.NewMaster(eng, nil)
	m.AddWorker("idle", resources.New(4, 16384, 1000))
	m.AddWorker("busy", resources.New(4, 16384, 1000))
	// Make exactly one worker busy, then crash: the idle one must
	// survive.
	m.Submit(wq.TaskSpec{
		Category:  "align",
		Resources: resources.New(4, 16384, 1000),
		Profile:   wq.Profile{ExecDuration: time.Hour, UsedCPUMilli: 900},
	})
	inj := New(eng, Plan{Seed: 5, WorkerCrash: WorkerCrashPlan{MeanInterval: time.Minute}})
	inj.AttachMaster(m)
	eng.RunUntil(t0.Add(time.Second)) // let the task dispatch first
	inj.Start()
	eng.RunUntil(t0.Add(30 * time.Minute))
	if inj.Stats().WorkerCrashes == 0 {
		t.Fatalf("no crashes in 30 min at 1 min mean")
	}
	if got := m.FailureStats().WorkerKills; got == 0 {
		t.Fatalf("master saw no kills")
	}
	inj.Stop()
}

// fakeControlPlane records delivered kills and can refuse a component.
type fakeControlPlane struct {
	eng    *simclock.Engine
	refuse map[Component]bool
	log    []string
}

func (f *fakeControlPlane) CrashComponent(c Component) bool {
	if f.refuse[c] {
		return false
	}
	f.log = append(f.log, fmt.Sprintf("%s %s", f.eng.Now().Format("15:04:05"), c))
	return true
}

func runControlPlaneKills(seed int64, refuse map[Component]bool) (Stats, []string) {
	eng := simclock.NewEngine(t0)
	cp := &fakeControlPlane{eng: eng, refuse: refuse}
	inj := New(eng, Plan{
		Seed: seed,
		ControlPlane: ControlPlanePlan{
			Makeflow: ControlPlaneKillPlan{MeanInterval: 10 * time.Minute, MaxKills: 2},
			Master:   ControlPlaneKillPlan{MeanInterval: 15 * time.Minute, MaxKills: 1},
			Operator: ControlPlaneKillPlan{MeanInterval: 5 * time.Minute, MaxKills: 3},
		},
	})
	inj.AttachControlPlane(cp)
	inj.Start()
	eng.RunUntil(t0.Add(6 * time.Hour))
	inj.Stop()
	return inj.Stats(), cp.log
}

func TestChaosControlPlaneKillsBoundedAndDeterministic(t *testing.T) {
	s1, log1 := runControlPlaneKills(42, nil)
	s2, log2 := runControlPlaneKills(42, nil)
	if s1 != s2 || fmt.Sprint(log1) != fmt.Sprint(log2) {
		t.Fatalf("same seed diverged:\n%+v %v\n%+v %v", s1, log1, s2, log2)
	}
	// Six hours at these means is far beyond every cap: each process
	// must deliver exactly MaxKills and then disarm.
	if s1.MakeflowKills != 2 || s1.MasterKills != 1 || s1.OperatorKills != 3 {
		t.Fatalf("kills = %+v, want caps 2/1/3 reached exactly", s1)
	}
	if len(log1) != 6 {
		t.Fatalf("delivered log has %d entries, want 6: %v", len(log1), log1)
	}
}

func TestChaosControlPlaneRefusedKillsDoNotCount(t *testing.T) {
	s, log := runControlPlaneKills(42, map[Component]bool{ComponentMaster: true})
	if s.MasterKills != 0 {
		t.Fatalf("refused kills counted: %+v", s)
	}
	// The other processes are unaffected by the refusals.
	if s.MakeflowKills != 2 || s.OperatorKills != 3 {
		t.Fatalf("kills = %+v, want 2 makeflow and 3 operator", s)
	}
	for _, line := range log {
		if line[len(line)-len("master"):] == "master" {
			t.Fatalf("refused master kill appeared in delivered log: %v", log)
		}
	}
}

func TestChaosControlPlanePlanEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	p := Plan{ControlPlane: ControlPlanePlan{Master: ControlPlaneKillPlan{MeanInterval: time.Minute}}}
	if !p.Enabled() {
		t.Fatal("control-plane-only plan reports disabled")
	}
}

type fakeLink struct{ factors []float64 }

func (f *fakeLink) SetDegradation(v float64) { f.factors = append(f.factors, v) }

func TestChaosEgressWindows(t *testing.T) {
	eng := simclock.NewEngine(t0)
	link := &fakeLink{}
	inj := New(eng, Plan{
		Seed: 1,
		Egress: EgressPlan{
			Factor: 0.25,
			Windows: []Window{
				{Start: 10 * time.Minute, Duration: 5 * time.Minute},
				{Start: 30 * time.Minute, Duration: time.Minute},
			},
		},
	})
	inj.AttachLink(link)
	inj.Start()
	eng.RunUntil(t0.Add(time.Hour))
	want := []float64{0.25, 1, 0.25, 1}
	if fmt.Sprint(link.factors) != fmt.Sprint(want) {
		t.Fatalf("degradation sequence = %v, want %v", link.factors, want)
	}
	if inj.Stats().EgressWindows != 2 {
		t.Fatalf("EgressWindows = %d", inj.Stats().EgressWindows)
	}
}

func runStorm(seed int64) (Stats, []string) {
	eng := simclock.NewEngine(t0)
	var log []string
	inj := New(eng, Plan{
		Seed: seed,
		Storm: StormPlan{
			Windows: []Window{
				{Start: 10 * time.Minute, Duration: 5 * time.Minute},
				{Start: 40 * time.Minute, Duration: 10 * time.Minute},
			},
			MeanInterval: 30 * time.Second,
			BatchSize:    25,
		},
	})
	inj.AttachSubmitter(func(batch int) {
		log = append(log, fmt.Sprintf("%s x%d", eng.Now().Format("15:04:05"), batch))
	})
	inj.Start()
	eng.RunUntil(t0.Add(time.Hour))
	inj.Stop()
	return inj.Stats(), log
}

func TestChaosStormBurstsDeterministicAndWindowed(t *testing.T) {
	s1, log1 := runStorm(42)
	s2, log2 := runStorm(42)
	if s1 != s2 || fmt.Sprint(log1) != fmt.Sprint(log2) {
		t.Fatalf("same seed diverged:\n%+v %v\n%+v %v", s1, log1, s2, log2)
	}
	if s1.StormBursts == 0 {
		t.Fatal("no storm bursts in 15 min of windows at 30 s mean")
	}
	if s1.StormTasks != 25*s1.StormBursts {
		t.Fatalf("StormTasks = %d, want 25 per burst over %d bursts", s1.StormTasks, s1.StormBursts)
	}
	if len(log1) != s1.StormBursts {
		t.Fatalf("submitter saw %d bursts, stats say %d", len(log1), s1.StormBursts)
	}
	// Every burst falls inside a window.
	inWindow := func(at string) bool {
		return (at >= "00:10:00" && at < "00:15:00") || (at >= "00:40:00" && at < "00:50:00")
	}
	for _, line := range log1 {
		if !inWindow(line[:8]) {
			t.Fatalf("burst outside its windows: %q (log %v)", line, log1)
		}
	}
}

// fakeMetrics and fakeScheduler record the gray-process toggles.
type fakeMetrics struct{ stale []bool }

func (f *fakeMetrics) SetStale(s bool) { f.stale = append(f.stale, s) }

type fakeScheduler struct{ factors []float64 }

func (f *fakeScheduler) SetSchedulerSlowdown(v float64) { f.factors = append(f.factors, v) }

func TestChaosGrayWindows(t *testing.T) {
	eng := simclock.NewEngine(t0)
	met := &fakeMetrics{}
	sched := &fakeScheduler{}
	inj := New(eng, Plan{
		Seed: 1,
		Gray: GrayPlan{
			Windows: []Window{
				{Start: 5 * time.Minute, Duration: 10 * time.Minute},
				{Start: 30 * time.Minute, Duration: 5 * time.Minute},
			},
			StaleMetrics:        true,
			SchedulerSlowFactor: 8,
		},
	})
	inj.AttachMetrics(met)
	inj.AttachScheduler(sched)
	inj.Start()
	eng.RunUntil(t0.Add(time.Hour))
	if fmt.Sprint(met.stale) != fmt.Sprint([]bool{true, false, true, false}) {
		t.Fatalf("stale toggles = %v", met.stale)
	}
	if fmt.Sprint(sched.factors) != fmt.Sprint([]float64{8, 1, 8, 1}) {
		t.Fatalf("slowdown sequence = %v", sched.factors)
	}
	if inj.Stats().GrayWindows != 2 {
		t.Fatalf("GrayWindows = %d, want 2", inj.Stats().GrayWindows)
	}
	inj.Stop()
}

// TestChaosGrayStopHealsMidWindow: stopping inside a gray window
// restores fresh metrics and the configured scheduler cadence.
func TestChaosGrayStopHealsMidWindow(t *testing.T) {
	eng := simclock.NewEngine(t0)
	met := &fakeMetrics{}
	sched := &fakeScheduler{}
	inj := New(eng, Plan{
		Gray: GrayPlan{
			Windows:             []Window{{Start: time.Minute, Duration: time.Hour}},
			StaleMetrics:        true,
			SchedulerSlowFactor: 4,
		},
	})
	inj.AttachMetrics(met)
	inj.AttachScheduler(sched)
	inj.Start()
	eng.RunUntil(t0.Add(5 * time.Minute)) // inside the window
	inj.Stop()
	if fmt.Sprint(met.stale) != fmt.Sprint([]bool{true, false}) {
		t.Fatalf("stale toggles = %v, want heal on Stop", met.stale)
	}
	if fmt.Sprint(sched.factors) != fmt.Sprint([]float64{4, 1}) {
		t.Fatalf("slowdown sequence = %v, want heal on Stop", sched.factors)
	}
}

// TestChaosStopIdempotentAndRearm pins the Stop/Start lifecycle: Stop
// before Start is safe, double-Stop does not panic, and Start after
// Stop re-arms the plan with windows re-anchored at the new start.
func TestChaosStopIdempotentAndRearm(t *testing.T) {
	eng := simclock.NewEngine(t0)
	var bursts int
	inj := New(eng, Plan{
		Seed: 3,
		Storm: StormPlan{
			Windows:      []Window{{Start: time.Minute, Duration: 10 * time.Minute}},
			MeanInterval: 30 * time.Second,
			BatchSize:    5,
		},
	})
	inj.AttachSubmitter(func(int) { bursts++ })

	inj.Stop() // before Start: must be a safe no-op
	inj.Stop() // double-Stop: no panic
	inj.Start()
	eng.RunUntil(t0.Add(20 * time.Minute))
	first := bursts
	if first == 0 {
		t.Fatal("storm did not arm after a pre-Start Stop")
	}

	inj.Stop()
	inj.Stop() // double-Stop after a run: no panic
	eng.RunUntil(t0.Add(40 * time.Minute))
	if bursts != first {
		t.Fatalf("bursts fired while stopped: %d -> %d", first, bursts)
	}

	inj.Start() // re-arm: window re-anchored at +40 min
	eng.RunUntil(t0.Add(time.Hour))
	if bursts <= first {
		t.Fatalf("re-armed injector delivered no bursts (still %d)", bursts)
	}
	if got := inj.Stats().StormBursts; got != bursts {
		t.Fatalf("stats not cumulative across re-arm: %d vs %d delivered", got, bursts)
	}
	inj.Stop()
}

func TestChaosPullFaultCounts(t *testing.T) {
	eng := simclock.NewEngine(t0)
	cluster := kubesim.NewCluster(eng, kubesim.Config{InitialNodes: 2, MaxNodes: 2, Seed: 3})
	inj := New(eng, Plan{
		Seed:      9,
		ImagePull: ImagePullPlan{FailProb: 0.5, SlowProb: 0.5, SlowdownFactor: 4},
	})
	inj.AttachCluster(cluster)
	inj.Start()
	// Six 1-core pods fill two 3-core nodes exactly.
	for i := 0; i < 6; i++ {
		if _, err := cluster.CreatePod(kubesim.PodSpec{
			Name:      fmt.Sprintf("p%d", i),
			Image:     fmt.Sprintf("img%d", i), // distinct images force pulls
			Resources: resources.New(1, 1024, 100),
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(t0.Add(2 * time.Hour))
	st := inj.Stats()
	if st.PullFailures == 0 && st.PullSlowdowns == 0 {
		t.Fatalf("no pull faults delivered: %+v", st)
	}
	// Every pod must still come up: failures retry with backoff.
	for i := 0; i < 6; i++ {
		p, ok := cluster.GetPod(fmt.Sprintf("p%d", i))
		if !ok || p.Phase != kubesim.PodRunning {
			t.Fatalf("pod p%d = %+v, want Running", i, p)
		}
	}
	inj.Stop()
	cluster.Stop()
}

// fakeTenants is a scripted TenantControlPlane: it tracks a roster of
// tenant IDs, refuses kills on request, and logs every delivered
// event for determinism checks.
type fakeTenants struct {
	eng    *simclock.Engine
	ids    []string
	refuse map[string]bool
	log    []string
}

func (f *fakeTenants) TenantIDs() []string { return f.ids }

func (f *fakeTenants) CrashTenantMaster(id string) bool {
	if f.refuse[id] {
		return false
	}
	f.log = append(f.log, fmt.Sprintf("%s kill %s", f.eng.Now().Format("15:04:05"), id))
	return true
}

func (f *fakeTenants) JoinTenant(seq int) bool {
	id := fmt.Sprintf("j%02d", seq)
	f.ids = append(f.ids, id)
	f.log = append(f.log, fmt.Sprintf("%s join %s", f.eng.Now().Format("15:04:05"), id))
	return true
}

func (f *fakeTenants) LeaveTenant() bool {
	if len(f.ids) == 0 {
		return false
	}
	id := f.ids[0]
	f.ids = f.ids[1:]
	f.log = append(f.log, fmt.Sprintf("%s leave %s", f.eng.Now().Format("15:04:05"), id))
	return true
}

func runTenantChaos(seed int64, refuse map[string]bool) (Stats, []string) {
	eng := simclock.NewEngine(t0)
	tcp := &fakeTenants{eng: eng, ids: []string{"alpha", "beta", "gamma"}, refuse: refuse}
	inj := New(eng, Plan{
		Seed: seed,
		Tenant: TenantPlan{
			MasterKills: ControlPlaneKillPlan{MeanInterval: 10 * time.Minute, MaxKills: 4},
			JoinAt:      []time.Duration{15 * time.Minute, 45 * time.Minute},
			LeaveAt:     []time.Duration{30 * time.Minute},
		},
	})
	inj.AttachTenants(tcp)
	inj.Start()
	eng.RunUntil(t0.Add(6 * time.Hour))
	inj.Stop()
	return inj.Stats(), tcp.log
}

// TestChaosTenantPlanDeterministic pins the tenant fault processes:
// same seed replays the same kill victims and churn order, the
// delivered-kill cap is reached exactly, and scripted joins/leaves
// fire once each.
func TestChaosTenantPlanDeterministic(t *testing.T) {
	s1, log1 := runTenantChaos(42, nil)
	s2, log2 := runTenantChaos(42, nil)
	if s1 != s2 || fmt.Sprint(log1) != fmt.Sprint(log2) {
		t.Fatalf("same seed diverged:\n%+v %v\n%+v %v", s1, log1, s2, log2)
	}
	if s1.TenantMasterKills != 4 {
		t.Fatalf("tenant kills = %d, want cap of 4 reached", s1.TenantMasterKills)
	}
	if s1.TenantJoins != 2 || s1.TenantLeaves != 1 {
		t.Fatalf("churn = %d joins / %d leaves, want 2/1", s1.TenantJoins, s1.TenantLeaves)
	}
}

// TestChaosTenantRefusedKillsRearm pins the refusal contract: a
// refused tenant kill does not count against the cap, and the process
// keeps drawing until it delivers the full quota on other victims.
func TestChaosTenantRefusedKillsRearm(t *testing.T) {
	s, log := runTenantChaos(42, map[string]bool{"alpha": true})
	if s.TenantMasterKills != 4 {
		t.Fatalf("tenant kills = %d, want 4 delivered despite refusals", s.TenantMasterKills)
	}
	for _, line := range log {
		if len(line) > 5 && line[len(line)-5:] == "alpha" && line[9:13] == "kill" {
			t.Fatalf("refused alpha kill appeared in delivered log: %v", log)
		}
	}
}

// TestChaosArbiterKillTarget pins ComponentArbiter as a first-class
// control-plane kill target with its own Stats counter and
// refusal-re-arms semantics.
func TestChaosArbiterKillTarget(t *testing.T) {
	if ComponentArbiter.String() != "arbiter" {
		t.Fatalf("ComponentArbiter.String() = %q", ComponentArbiter.String())
	}
	p := Plan{ControlPlane: ControlPlanePlan{Arbiter: ControlPlaneKillPlan{MeanInterval: time.Minute}}}
	if !p.Enabled() {
		t.Fatal("arbiter-only control-plane plan reports disabled")
	}

	eng := simclock.NewEngine(t0)
	cp := &fakeControlPlane{eng: eng}
	inj := New(eng, Plan{
		Seed: 7,
		ControlPlane: ControlPlanePlan{
			Arbiter: ControlPlaneKillPlan{MeanInterval: 20 * time.Minute, MaxKills: 2},
		},
	})
	inj.AttachControlPlane(cp)
	inj.Start()
	eng.RunUntil(t0.Add(12 * time.Hour))
	inj.Stop()
	if got := inj.Stats().ArbiterKills; got != 2 {
		t.Fatalf("arbiter kills = %d, want cap of 2 reached", got)
	}
	for _, line := range cp.log {
		if line[len(line)-len("arbiter"):] != "arbiter" {
			t.Fatalf("non-arbiter kill delivered: %v", cp.log)
		}
	}

	// Refusals re-arm without counting.
	eng2 := simclock.NewEngine(t0)
	cp2 := &fakeControlPlane{eng: eng2, refuse: map[Component]bool{ComponentArbiter: true}}
	inj2 := New(eng2, Plan{
		Seed: 7,
		ControlPlane: ControlPlanePlan{
			Arbiter: ControlPlaneKillPlan{MeanInterval: 20 * time.Minute, MaxKills: 2},
		},
	})
	inj2.AttachControlPlane(cp2)
	inj2.Start()
	eng2.RunUntil(t0.Add(12 * time.Hour))
	inj2.Stop()
	if got := inj2.Stats().ArbiterKills; got != 0 {
		t.Fatalf("refused arbiter kills counted: %d", got)
	}
}

// TestChaosTenantPlanEnabled pins the Enabled cascade for TenantPlan.
func TestChaosTenantPlanEnabled(t *testing.T) {
	if (TenantPlan{}).Enabled() {
		t.Fatal("zero TenantPlan reports enabled")
	}
	if !(TenantPlan{MasterKills: ControlPlaneKillPlan{MeanInterval: time.Minute}}).Enabled() {
		t.Fatal("kill-only TenantPlan reports disabled")
	}
	if !(TenantPlan{JoinAt: []time.Duration{time.Minute}}).Enabled() {
		t.Fatal("join-only TenantPlan reports disabled")
	}
	if !(Plan{Tenant: TenantPlan{LeaveAt: []time.Duration{time.Minute}}}).Enabled() {
		t.Fatal("tenant-only Plan reports disabled")
	}
}
