// Package chaos is a deterministic, seed-driven fault injector for
// the simulated stack. An Injector composes independent fault
// processes — node preemption (Poisson or scheduled windows), worker
// crash mid-task, image-pull failure/slowdown, master-egress
// bandwidth degradation, submission storms (load chaos: bursts of
// arrivals through a harness-provided Submitter), and gray
// degradation (stale monitor metrics, a slowed scheduler binding
// loop) — each wired into the simulation through the
// small hooks the components expose (kubesim.PreemptNode and
// SetPullFault, wq.KillWorker, netsim.SetDegradation), so a fault
// plan is orthogonal to the scenario it runs against. Control-plane
// kill processes target the coordinators themselves — makeflow
// runner, wq master, operator, multi-tenant arbiter — through a
// harness-provided ControlPlane that crashes the component and
// restarts it from its durable state; tenant fault processes
// (TenantPlan) kill per-tenant masters and churn tenant membership
// through a harness-provided TenantControlPlane.
//
// Determinism: the injector draws from its own seeded RNG on the
// single-threaded event engine, so a fixed (plan, scenario, seed)
// triple replays the exact same fault sequence.
package chaos

import (
	"time"

	"hta/internal/kubesim"
	"hta/internal/simclock"
)

// Window is a time interval relative to Injector.Start.
type Window struct {
	Start    time.Duration
	Duration time.Duration
}

// PreemptionPlan describes node-preemption faults: a Poisson process
// (MeanInterval), scheduled reclaim windows with their own rate, or
// both.
type PreemptionPlan struct {
	// MeanInterval is the mean of the exponential inter-arrival time
	// of the always-on Poisson preemption process. 0 = off.
	MeanInterval time.Duration
	// Windows are reclaim storms: inside each window preemptions
	// arrive with mean interval WindowMeanInterval.
	Windows            []Window
	WindowMeanInterval time.Duration
	// MinNodesSpared stops preemption when at most this many ready
	// nodes remain, modelling the on-demand floor of a mixed
	// spot/on-demand pool.
	MinNodesSpared int
}

// WorkerCrashPlan describes worker-process crashes (OOM kill, segv):
// the worker disappears abruptly while its tasks run.
type WorkerCrashPlan struct {
	// MeanInterval is the Poisson mean between crashes. 0 = off.
	MeanInterval time.Duration
}

// ImagePullPlan degrades the image registry: each pull attempt fails
// with FailProb, and is slowed by SlowdownFactor with SlowProb.
type ImagePullPlan struct {
	FailProb       float64
	SlowProb       float64
	SlowdownFactor float64 // duration multiplier when slowed (> 1)
}

// EgressPlan degrades the master's egress link to Factor of its
// capacity inside each window.
type EgressPlan struct {
	Windows []Window
	Factor  float64 // capacity multiplier in (0, 1] while degraded
}

// StormPlan injects submission storms: inside each window, bursts of
// BatchSize workflow submissions arrive as a Poisson process with the
// given mean interval, delivered through the attached Submitter. This
// is load chaos rather than fault chaos — the facility is healthy,
// the users are not.
type StormPlan struct {
	Windows []Window
	// MeanInterval is the Poisson mean between bursts inside a window.
	MeanInterval time.Duration
	// BatchSize is how many submissions each burst delivers.
	BatchSize int
}

// Enabled reports whether the storm process is armed.
func (p StormPlan) Enabled() bool {
	return len(p.Windows) > 0 && p.MeanInterval > 0 && p.BatchSize > 0
}

// GrayPlan models gray degradation — the cluster is not down, just
// wrong: inside each window the metrics pipeline stops ingesting
// (the monitor keeps serving pre-window estimates) and the
// scheduler's binding loop is stretched by SchedulerSlowFactor.
// Nothing reports an error; the control loops simply act on stale,
// late information.
type GrayPlan struct {
	Windows []Window
	// StaleMetrics freezes the attached Metrics inside each window.
	StaleMetrics bool
	// SchedulerSlowFactor multiplies the attached Scheduler's binding
	// period inside each window (> 1 = slower; 0 or 1 = untouched).
	SchedulerSlowFactor float64
}

// Enabled reports whether the gray process is armed.
func (p GrayPlan) Enabled() bool {
	return len(p.Windows) > 0 && (p.StaleMetrics || p.SchedulerSlowFactor > 1)
}

// Component identifies one control-plane process the injector can
// kill. Unlike node or worker faults, a control-plane kill targets the
// coordinator itself — the makeflow runner, the wq master, or the
// autoscaling operator — and the harness is responsible for restarting
// the component from its durable state.
type Component int

const (
	ComponentMakeflow Component = iota
	ComponentMaster
	ComponentOperator
	ComponentArbiter
)

func (c Component) String() string {
	switch c {
	case ComponentMakeflow:
		return "makeflow"
	case ComponentMaster:
		return "master"
	case ComponentOperator:
		return "operator"
	case ComponentArbiter:
		return "arbiter"
	}
	return "unknown"
}

// ControlPlaneKillPlan is one component's kill process: a Poisson
// stream of crash-and-restart events, optionally capped.
type ControlPlaneKillPlan struct {
	// MeanInterval is the Poisson mean between kills. 0 = off.
	MeanInterval time.Duration
	// MaxKills stops the process after this many *delivered* kills
	// (0 = unlimited). Attempts the harness refuses — component already
	// down, workload finished — do not count against the cap.
	MaxKills int
}

// ControlPlanePlan selects which control-plane components get killed,
// each with an independent kill process.
type ControlPlanePlan struct {
	Makeflow ControlPlaneKillPlan
	Master   ControlPlaneKillPlan
	Operator ControlPlaneKillPlan
	Arbiter  ControlPlaneKillPlan
}

// Enabled reports whether any component kill process is armed.
func (p ControlPlanePlan) Enabled() bool {
	return p.Makeflow.MeanInterval > 0 ||
		p.Master.MeanInterval > 0 ||
		p.Operator.MeanInterval > 0 ||
		p.Arbiter.MeanInterval > 0
}

// TenantPlan is the multi-tenant fault process: Poisson kills of
// per-tenant masters (the victim is drawn uniformly from the tenants
// the harness currently lists) plus scripted membership churn —
// tenants joining and leaving the arbiter at fixed offsets from
// Start. Like control-plane kills, a refused tenant kill (victim
// already down, leaving, quarantined) re-arms without counting.
type TenantPlan struct {
	// MasterKills is the Poisson kill process over tenant masters.
	MasterKills ControlPlaneKillPlan
	// JoinAt schedules tenant joins: at each offset the harness's
	// JoinTenant is called with a monotonically increasing sequence
	// number (0, 1, 2, ...).
	JoinAt []time.Duration
	// LeaveAt schedules tenant departures: at each offset the
	// harness's LeaveTenant picks a victim and offboards it.
	LeaveAt []time.Duration
}

// Enabled reports whether any tenant fault process is armed.
func (p TenantPlan) Enabled() bool {
	return p.MasterKills.MeanInterval > 0 || len(p.JoinAt) > 0 || len(p.LeaveAt) > 0
}

// Plan is a full fault plan. Zero-valued processes are disabled, so
// the zero Plan injects nothing.
type Plan struct {
	// Seed drives the injector's private RNG.
	Seed int64

	Preemption   PreemptionPlan
	WorkerCrash  WorkerCrashPlan
	ImagePull    ImagePullPlan
	Egress       EgressPlan
	ControlPlane ControlPlanePlan
	Storm        StormPlan
	Gray         GrayPlan
	Tenant       TenantPlan
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return p.Preemption.MeanInterval > 0 ||
		(len(p.Preemption.Windows) > 0 && p.Preemption.WindowMeanInterval > 0) ||
		p.WorkerCrash.MeanInterval > 0 ||
		p.ImagePull.FailProb > 0 || p.ImagePull.SlowProb > 0 ||
		(len(p.Egress.Windows) > 0 && p.Egress.Factor > 0 && p.Egress.Factor < 1) ||
		p.ControlPlane.Enabled() ||
		p.Storm.Enabled() ||
		p.Gray.Enabled() ||
		p.Tenant.Enabled()
}

// Cluster is the slice of kubesim the injector drives.
type Cluster interface {
	ReadyNodeNames() []string
	PodsOnNode(name string) int
	PreemptNode(name string) error
	GetPod(name string) (kubesim.Pod, bool)
	DeletePod(name string) error
	SetPullFault(hook func(node, image string, attempt int) kubesim.PullFault)
}

// Master is the slice of the wq master the worker-crash process
// drives.
type Master interface {
	Workers() []string
	WorkerBusy(id string) bool
	KillWorker(id string) error
}

// EgressLink is the slice of netsim the egress process drives.
type EgressLink interface {
	SetDegradation(factor float64)
}

// Submitter is the harness-side submission path the storm process
// drives: each call delivers one burst of batch submissions into the
// workload (the harness decides what a submission is — a task, a
// whole workflow).
type Submitter func(batch int)

// Metrics is the slice of the monitoring pipeline the gray process
// freezes (monitor.Monitor satisfies it).
type Metrics interface {
	SetStale(stale bool)
}

// Scheduler is the slice of the control plane whose binding loop the
// gray process slows (kubesim.Cluster satisfies it).
type Scheduler interface {
	SetSchedulerSlowdown(factor float64)
}

// ControlPlane is the harness-side slice the control-plane kill
// process drives. CrashComponent must kill the component and arrange
// its restart from durable state; it reports whether the kill was
// actually delivered (false when the component is already down or the
// workload has finished — refused kills do not count).
type ControlPlane interface {
	CrashComponent(Component) bool
}

// TenantControlPlane is the harness-side slice the tenant fault
// processes drive. TenantIDs lists the tenants currently eligible as
// kill victims (the harness excludes leaving or already-down
// tenants as it sees fit — a kill the harness refuses re-arms
// without counting). JoinTenant admits a new scripted tenant (seq is
// the join's ordinal) and LeaveTenant offboards one; both report
// whether the churn event was actually delivered.
type TenantControlPlane interface {
	TenantIDs() []string
	CrashTenantMaster(id string) bool
	JoinTenant(seq int) bool
	LeaveTenant() bool
}

// Stats counts the faults an injector has delivered.
type Stats struct {
	Preemptions   int
	WorkerCrashes int
	PullFailures  int
	PullSlowdowns int
	EgressWindows int
	MakeflowKills int
	MasterKills   int
	OperatorKills int
	ArbiterKills  int
	StormBursts   int
	StormTasks    int
	GrayWindows   int

	TenantMasterKills int
	TenantJoins       int
	TenantLeaves      int
}

// Injector runs a Plan against attached components. All methods must
// be called from the simulation goroutine.
type Injector struct {
	eng  *simclock.Engine
	rng  *simclock.RNG
	plan Plan

	cluster Cluster
	master  Master
	link    EgressLink
	cp      ControlPlane
	tcp     TenantControlPlane
	submit  Submitter
	metrics Metrics
	sched   Scheduler

	started bool
	stopped bool
	startAt time.Time
	timers  []*loopTimer
	stats   Stats
}

// loopTimer is one self-rescheduling fault process; keeping the
// record lets Stop cancel whichever timer the loop currently holds.
type loopTimer struct {
	tmr simclock.Timer
}

// New builds an injector for the plan on the engine. Attach the
// components the plan targets, then call Start.
func New(eng *simclock.Engine, plan Plan) *Injector {
	return &Injector{
		eng:  eng,
		rng:  simclock.NewRNG(plan.Seed),
		plan: plan,
	}
}

// AttachCluster wires the preemption, worker-crash and image-pull
// processes to a cluster.
func (in *Injector) AttachCluster(c Cluster) { in.cluster = c }

// AttachMaster wires the worker-crash process to a wq master. With a
// cluster also attached, crashes delete the worker's pod (worker IDs
// are pod names), keeping every roster in sync; without one they
// disconnect the worker directly.
func (in *Injector) AttachMaster(m Master) { in.master = m }

// AttachLink wires the egress-degradation process to a link.
func (in *Injector) AttachLink(l EgressLink) { in.link = l }

// AttachControlPlane wires the control-plane kill processes to a
// harness that can crash and restart coordinator components.
func (in *Injector) AttachControlPlane(cp ControlPlane) { in.cp = cp }

// AttachTenants wires the tenant kill and churn processes to a
// harness that can crash tenant masters and admit/offboard tenants.
func (in *Injector) AttachTenants(tcp TenantControlPlane) { in.tcp = tcp }

// AttachSubmitter wires the storm process to the harness's
// submission path.
func (in *Injector) AttachSubmitter(s Submitter) { in.submit = s }

// AttachMetrics wires the gray process to a monitoring pipeline.
func (in *Injector) AttachMetrics(m Metrics) { in.metrics = m }

// AttachScheduler wires the gray process to a scheduler.
func (in *Injector) AttachScheduler(s Scheduler) { in.sched = s }

// Start arms every fault process the plan enables for the attached
// components. After a Stop, Start re-arms the whole plan with its
// windows re-anchored at the current time; fault counts accumulate
// across re-arms.
func (in *Injector) Start() {
	if in.started && !in.stopped {
		return
	}
	in.started, in.stopped = true, false
	in.startAt = in.eng.Now()

	if in.cluster != nil {
		p := in.plan.Preemption
		if p.MeanInterval > 0 {
			in.poissonLoop(p.MeanInterval, time.Time{}, in.preemptOne)
		}
		if p.WindowMeanInterval > 0 {
			for _, w := range p.Windows {
				w := w
				in.after(w.Start, func() {
					end := in.startAt.Add(w.Start + w.Duration)
					in.poissonLoop(p.WindowMeanInterval, end, in.preemptOne)
				})
			}
		}
		ip := in.plan.ImagePull
		if ip.FailProb > 0 || ip.SlowProb > 0 {
			in.cluster.SetPullFault(in.pullFault)
		}
	}
	if in.master != nil && in.plan.WorkerCrash.MeanInterval > 0 {
		in.poissonLoop(in.plan.WorkerCrash.MeanInterval, time.Time{}, in.crashOne)
	}
	if in.cp != nil {
		cp := in.plan.ControlPlane
		if cp.Makeflow.MeanInterval > 0 {
			in.killLoop(cp.Makeflow, ComponentMakeflow)
		}
		if cp.Master.MeanInterval > 0 {
			in.killLoop(cp.Master, ComponentMaster)
		}
		if cp.Operator.MeanInterval > 0 {
			in.killLoop(cp.Operator, ComponentOperator)
		}
		if cp.Arbiter.MeanInterval > 0 {
			in.killLoop(cp.Arbiter, ComponentArbiter)
		}
	}
	if in.tcp != nil && in.plan.Tenant.Enabled() {
		tp := in.plan.Tenant
		if tp.MasterKills.MeanInterval > 0 {
			in.tenantKillLoop(tp.MasterKills)
		}
		for i, at := range tp.JoinAt {
			seq := i
			in.after(at, func() {
				if in.tcp.JoinTenant(seq) {
					in.stats.TenantJoins++
				}
			})
		}
		for _, at := range tp.LeaveAt {
			in.after(at, func() {
				if in.tcp.LeaveTenant() {
					in.stats.TenantLeaves++
				}
			})
		}
	}
	if in.link != nil && in.plan.Egress.Factor > 0 && in.plan.Egress.Factor < 1 {
		for _, w := range in.plan.Egress.Windows {
			w := w
			in.after(w.Start, func() {
				in.stats.EgressWindows++
				in.link.SetDegradation(in.plan.Egress.Factor)
			})
			in.after(w.Start+w.Duration, func() {
				in.link.SetDegradation(1)
			})
		}
	}
	if in.submit != nil && in.plan.Storm.Enabled() {
		st := in.plan.Storm
		for _, w := range st.Windows {
			w := w
			in.after(w.Start, func() {
				end := in.startAt.Add(w.Start + w.Duration)
				in.poissonLoop(st.MeanInterval, end, func() {
					in.stats.StormBursts++
					in.stats.StormTasks += st.BatchSize
					in.submit(st.BatchSize)
				})
			})
		}
	}
	if in.plan.Gray.Enabled() && (in.metrics != nil || in.sched != nil) {
		g := in.plan.Gray
		for _, w := range g.Windows {
			w := w
			in.after(w.Start, func() {
				in.stats.GrayWindows++
				if g.StaleMetrics && in.metrics != nil {
					in.metrics.SetStale(true)
				}
				if g.SchedulerSlowFactor > 1 && in.sched != nil {
					in.sched.SetSchedulerSlowdown(g.SchedulerSlowFactor)
				}
			})
			in.after(w.Start+w.Duration, func() {
				if g.StaleMetrics && in.metrics != nil {
					in.metrics.SetStale(false)
				}
				if g.SchedulerSlowFactor > 1 && in.sched != nil {
					in.sched.SetSchedulerSlowdown(1)
				}
			})
		}
	}
}

// Stop cancels every armed fault process and removes installed hooks;
// an egress or gray window in progress is healed. Stop is idempotent
// and safe before Start; a later Start re-arms the plan.
func (in *Injector) Stop() {
	if in.stopped {
		return
	}
	in.stopped = true
	for _, lt := range in.timers {
		lt.tmr.Stop()
	}
	in.timers = nil
	if in.cluster != nil {
		in.cluster.SetPullFault(nil)
	}
	if in.link != nil {
		in.link.SetDegradation(1)
	}
	if in.metrics != nil && in.plan.Gray.StaleMetrics {
		in.metrics.SetStale(false)
	}
	if in.sched != nil && in.plan.Gray.SchedulerSlowFactor > 1 {
		in.sched.SetSchedulerSlowdown(1)
	}
}

// Stats returns the faults delivered so far.
func (in *Injector) Stats() Stats { return in.stats }

// after arms a one-shot timer tracked for Stop.
func (in *Injector) after(d time.Duration, fn func()) {
	lt := &loopTimer{}
	lt.tmr = in.eng.After(d, "chaos", func() {
		if in.stopped {
			return
		}
		fn()
	})
	in.timers = append(in.timers, lt)
}

// poissonLoop fires fn at exponentially distributed intervals until
// the injector stops or the deadline passes (zero deadline = never).
func (in *Injector) poissonLoop(mean time.Duration, until time.Time, fn func()) {
	lt := &loopTimer{}
	in.timers = append(in.timers, lt)
	var arm func()
	arm = func() {
		d := time.Duration(in.rng.Exp(float64(mean)))
		if !until.IsZero() && in.eng.Now().Add(d).After(until) {
			return
		}
		lt.tmr = in.eng.After(d, "chaos-poisson", func() {
			if in.stopped {
				return
			}
			fn()
			arm()
		})
	}
	arm()
}

// killLoop is the bounded Poisson kill process for one control-plane
// component: it keeps drawing inter-arrival times until MaxKills kills
// have been *delivered* (refused attempts re-arm without counting), so
// an experiment can ask for exactly N mid-run restarts.
func (in *Injector) killLoop(p ControlPlaneKillPlan, comp Component) {
	lt := &loopTimer{}
	in.timers = append(in.timers, lt)
	delivered := 0
	var arm func()
	arm = func() {
		d := time.Duration(in.rng.Exp(float64(p.MeanInterval)))
		lt.tmr = in.eng.After(d, "chaos-kill-"+comp.String(), func() {
			if in.stopped {
				return
			}
			if in.cp.CrashComponent(comp) {
				delivered++
				switch comp {
				case ComponentMakeflow:
					in.stats.MakeflowKills++
				case ComponentMaster:
					in.stats.MasterKills++
				case ComponentOperator:
					in.stats.OperatorKills++
				case ComponentArbiter:
					in.stats.ArbiterKills++
				}
			}
			if p.MaxKills > 0 && delivered >= p.MaxKills {
				return
			}
			arm()
		})
	}
	arm()
}

// tenantKillLoop is the bounded Poisson kill process over tenant
// masters: each firing draws a victim uniformly from the harness's
// current tenant list and crashes its master. An empty list or a
// refused kill (victim down, leaving, quarantined) re-arms without
// counting, mirroring killLoop's delivered-only cap.
func (in *Injector) tenantKillLoop(p ControlPlaneKillPlan) {
	lt := &loopTimer{}
	in.timers = append(in.timers, lt)
	delivered := 0
	var arm func()
	arm = func() {
		d := time.Duration(in.rng.Exp(float64(p.MeanInterval)))
		lt.tmr = in.eng.After(d, "chaos-kill-tenant", func() {
			if in.stopped {
				return
			}
			if ids := in.tcp.TenantIDs(); len(ids) > 0 {
				victim := ids[in.rng.Intn(len(ids))]
				if in.tcp.CrashTenantMaster(victim) {
					delivered++
					in.stats.TenantMasterKills++
				}
			}
			if p.MaxKills > 0 && delivered >= p.MaxKills {
				return
			}
			arm()
		})
	}
	arm()
}

// preemptOne reclaims one ready node, preferring occupied nodes (the
// cloud reclaims capacity regardless of what runs on it, but an
// injector that only ever hits empty nodes tests nothing), and
// sparing the plan's on-demand floor.
func (in *Injector) preemptOne() {
	names := in.cluster.ReadyNodeNames()
	if len(names) <= in.plan.Preemption.MinNodesSpared {
		return
	}
	occupied := names[:0:0]
	for _, n := range names {
		if in.cluster.PodsOnNode(n) > 0 {
			occupied = append(occupied, n)
		}
	}
	pool := names
	if len(occupied) > 0 {
		pool = occupied
	}
	victim := pool[in.rng.Intn(len(pool))]
	if in.cluster.PreemptNode(victim) == nil {
		in.stats.Preemptions++
	}
}

// crashOne kills one busy worker. With a cluster attached the crash
// is delivered as a pod deletion (worker IDs are pod names), so the
// autoscaler and binder observe it like any pod death; otherwise the
// worker is disconnected from the master directly.
func (in *Injector) crashOne() {
	var busy []string
	for _, id := range in.master.Workers() {
		if in.master.WorkerBusy(id) {
			busy = append(busy, id)
		}
	}
	if len(busy) == 0 {
		return
	}
	victim := busy[in.rng.Intn(len(busy))]
	if in.cluster != nil {
		if _, ok := in.cluster.GetPod(victim); ok {
			if in.cluster.DeletePod(victim) == nil {
				in.stats.WorkerCrashes++
			}
			return
		}
	}
	if in.master.KillWorker(victim) == nil {
		in.stats.WorkerCrashes++
	}
}

// pullFault is the per-attempt image-pull hook.
func (in *Injector) pullFault(node, image string, attempt int) kubesim.PullFault {
	var f kubesim.PullFault
	ip := in.plan.ImagePull
	if ip.FailProb > 0 && in.rng.Float64() < ip.FailProb {
		f.Fail = true
		in.stats.PullFailures++
	}
	if ip.SlowProb > 0 && ip.SlowdownFactor > 1 && in.rng.Float64() < ip.SlowProb {
		f.Slowdown = ip.SlowdownFactor
		in.stats.PullSlowdowns++
	}
	return f
}
