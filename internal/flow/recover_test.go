package flow

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hta/internal/dag"
	"hta/internal/makeflow"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// diamond builds the a→(b,c)→d test graph.
func diamond(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.NewGraph()
	g.Add(dag.Node{ID: "a", Outputs: []string{"a.out"}})
	g.Add(dag.Node{ID: "b", Inputs: []string{"a.out"}, Outputs: []string{"b.out"}})
	g.Add(dag.Node{ID: "c", Inputs: []string{"a.out"}, Outputs: []string{"c.out"}})
	g.Add(dag.Node{ID: "d", Inputs: []string{"b.out", "c.out"}})
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRecoverSkipsCompletedMarksInFlight(t *testing.T) {
	g := diamond(t)
	rep, err := makeflow.ReplayLog(strings.NewReader("submit a\ndone a\nsubmit b\nsubmit c\ndone c\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recover(g, rep, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedRules != 2 || res.InFlightRules != 1 {
		t.Fatalf("recover = %+v", res)
	}
	if g.State("a") != dag.Complete || g.State("c") != dag.Complete {
		t.Fatal("completed rules not skipped")
	}
	if g.State("b") != dag.Running {
		t.Fatalf("in-flight rule state = %v", g.State("b"))
	}
	if g.State("d") != dag.Pending {
		t.Fatalf("blocked child state = %v", g.State("d"))
	}
}

// TestRecoverExtraDoneCoversDowntimeCompletions folds the master's
// completion record into recovery: a task that finished while the
// engine was down is completed, not stalled on.
func TestRecoverExtraDoneCoversDowntimeCompletions(t *testing.T) {
	g := diamond(t)
	rep, err := makeflow.ReplayLog(strings.NewReader("submit a\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recover(g, rep, []string{"a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedRules != 1 {
		t.Fatalf("recover = %+v", res)
	}
	if g.State("a") != dag.Complete {
		t.Fatal("master-known completion not applied")
	}
	if got := len(g.Ready()); got != 2 {
		t.Fatalf("ready frontier = %d, want b and c", got)
	}
}

// TestRecoverTornParentLeavesChildPending: a child's submit record
// survived but the parent's done record was torn off — the child must
// stay Pending (it will resubmit when the parent completes) rather
// than corrupt the graph.
func TestRecoverTornParentLeavesChildPending(t *testing.T) {
	g := diamond(t)
	rep, err := makeflow.ReplayLog(strings.NewReader("submit a\nsubmit b\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recover(g, rep, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.InFlightRules != 1 {
		t.Fatalf("recover = %+v", res)
	}
	if g.State("a") != dag.Running || g.State("b") != dag.Pending {
		t.Fatalf("states a=%v b=%v", g.State("a"), g.State("b"))
	}
}

// TestRecoverFailedRuleFailsRestartedRun: a rule journalled as
// permanently failed fails the restarted workflow instead of being
// silently retried or stalling it.
func TestRecoverFailedRuleFailsRestartedRun(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := wq.NewMaster(eng, nil)
	g := diamond(t)
	rep, err := makeflow.ReplayLog(strings.NewReader("submit a\ndone a\nsubmit b\nfail b\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recover(g, rep, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRules != 1 {
		t.Fatalf("recover = %+v", res)
	}
	r := NewRunner(g, m, func(n dag.Node) wq.TaskSpec { return spec(time.Second) })
	fired := false
	r.OnAllDone(func() { fired = true })
	r.Start()
	eng.Run()
	if r.Err() == nil {
		t.Fatal("restarted run over a failed rule reported no error")
	}
	if !fired {
		t.Fatal("restarted run never finished")
	}
}

// TestRunnerJournalAndRestart runs the diamond halfway, crashes the
// engine (detach + rebuild from the journal), and finishes on the
// same master: every node completes exactly once and the journal's
// final state shows all four rules done.
func TestRunnerJournalAndRestart(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := wq.NewMaster(eng, nil)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	sink := makeflow.NewMemorySink()

	g1 := diamond(t)
	specFn := func(n dag.Node) wq.TaskSpec { return spec(10 * time.Second) }
	r1 := NewRunner(g1, m, specFn)
	r1.SetLog(sink)
	r1.Start()
	// Run past a's completion: b and c are submitted and running.
	eng.RunFor(15 * time.Second)
	if m.CompletedCount() != 1 {
		t.Fatalf("setup: completed = %d", m.CompletedCount())
	}

	// Engine crash: the old incarnation's subscriptions go quiet, a new
	// graph is rebuilt and recovered from the journal.
	r1.Detach()
	g2 := diamond(t)
	rep, err := makeflow.ReplayLog(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recover(g2, rep, completedTags(m), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedRules != 1 || res.InFlightRules != 2 {
		t.Fatalf("recover = %+v", res)
	}
	r2 := NewRunner(g2, m, specFn)
	r2.SetLog(sink)
	finished := false
	r2.OnAllDone(func() { finished = true })
	r2.Start()
	eng.Run()
	if !finished || r2.Err() != nil {
		t.Fatalf("restarted run: finished=%v err=%v", finished, r2.Err())
	}
	// No node ran twice: 4 submissions total across both incarnations.
	if m.SubmittedCount() != 4 || m.CompletedCount() != 4 {
		t.Fatalf("submitted=%d completed=%d, want 4/4", m.SubmittedCount(), m.CompletedCount())
	}
	final, err := makeflow.ReplayLog(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Done) != 4 || len(final.InFlight) != 0 {
		t.Fatalf("final journal: %+v", final)
	}
}

// completedTags collects the Tag of every completed task at the
// master — the extraDone input of Recover.
func completedTags(m *wq.Master) []string {
	var tags []string
	for id := 1; id <= m.SubmittedCount(); id++ {
		if task, ok := m.Task(id); ok && task.State == wq.TaskComplete {
			tags = append(tags, task.Tag)
		}
	}
	return tags
}
