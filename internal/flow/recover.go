package flow

// Crash recovery for the workflow engine: a Runner can journal every
// rule transition to a makeflow.LogSink, and a restarted engine calls
// Recover to rebuild its DAG progress from the replayed log before
// starting a fresh Runner on the same scheduler.
//
// Semantics are at-least-once: a rule is journalled after its Submit
// returns, so a crash between the two resubmits the rule on restart;
// the master runs the duplicate and the DAG ignores the second
// completion (onComplete fences on node state). In the simulation the
// two steps are atomic — crashes land between events — so duplicates
// only arise for the real binaries.

import (
	"fmt"

	"hta/internal/dag"
	"hta/internal/makeflow"
)

// RecoverResult summarizes what Recover reconstructed.
type RecoverResult struct {
	// CompletedRules were marked complete and will never resubmit.
	CompletedRules int
	// InFlightRules were marked running; their completions arrive from
	// the (surviving or restored) master.
	InFlightRules int
	// FailedRules were marked permanently failed.
	FailedRules int
	// ReplayedRecords is the count of journal records applied.
	ReplayedRecords int
}

// Recover applies a replayed transaction log to a freshly built graph
// — the restart path of the workflow engine. Rules recorded done (or
// known complete at the scheduler, extraDone) are completed without
// resubmission; rules recorded submitted are marked Running so the
// new Runner neither resubmits them nor stalls on them — their
// results are delivered by the master, which kept (or restored) the
// tasks. Rules whose submit record survived but whose parent's done
// record was torn off stay Pending and are resubmitted when the
// parent's completion arrives (at-least-once). extraDone/extraFailed
// let the caller fold in the master's own completion record, covering
// tasks that finished while the engine was down.
func Recover(g *dag.Graph, rep *makeflow.Replay, extraDone, extraFailed []string) (RecoverResult, error) {
	var res RecoverResult
	if rep != nil {
		res.ReplayedRecords = rep.Records
	}
	done := make(map[string]bool)
	failed := make(map[string]bool)
	inflight := make(map[string]bool)
	ordered := make(map[string]bool)
	var order []string // completion application order: log order, then extras
	add := func(id string, set map[string]bool) {
		if _, ok := g.Node(id); !ok {
			return // journal from another workflow or a renamed rule
		}
		if !ordered[id] {
			ordered[id] = true
			order = append(order, id)
		}
		set[id] = true
	}
	if rep != nil {
		for _, id := range rep.Done {
			add(id, done)
		}
		for _, id := range rep.Failed {
			add(id, failed)
		}
		for _, id := range rep.InFlight {
			add(id, inflight)
		}
	}
	for _, id := range extraDone {
		if inflight[id] {
			delete(inflight, id)
		}
		add(id, done)
	}
	for _, id := range extraFailed {
		if inflight[id] {
			delete(inflight, id)
		}
		add(id, failed)
	}
	// Completions respect dependency order in the journal (a child's
	// done record follows its parents'), but extras from the master are
	// unordered — iterate to a fixed point.
	for progressed := true; progressed; {
		progressed = false
		for _, id := range order {
			if !done[id] || g.State(id) != dag.Ready {
				continue
			}
			if err := g.Start(id); err != nil {
				return res, fmt.Errorf("flow: recover %s: %w", id, err)
			}
			if _, err := g.Complete(id); err != nil {
				return res, fmt.Errorf("flow: recover %s: %w", id, err)
			}
			res.CompletedRules++
			progressed = true
		}
	}
	for _, id := range order {
		switch {
		case failed[id]:
			if g.State(id) != dag.Ready {
				continue // parent progress torn off; cannot have run
			}
			if err := g.Start(id); err != nil {
				return res, fmt.Errorf("flow: recover %s: %w", id, err)
			}
			if err := g.Fail(id); err != nil {
				return res, fmt.Errorf("flow: recover %s: %w", id, err)
			}
			res.FailedRules++
		case inflight[id]:
			if g.State(id) != dag.Ready {
				continue // resubmitted later by the normal frontier walk
			}
			if err := g.Start(id); err != nil {
				return res, fmt.Errorf("flow: recover %s: %w", id, err)
			}
			res.InFlightRules++
		}
	}
	return res, nil
}
