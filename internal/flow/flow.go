// Package flow is the workflow-manager side of the stack: it walks a
// dag.Graph, submits ready tasks to a job scheduler (directly to a
// Work Queue master, or through the HTA middleware), and releases
// newly ready tasks as their dependencies complete — what Makeflow
// does once it has parsed a workflow description.
package flow

import (
	"fmt"
	"sync"

	"hta/internal/dag"
	"hta/internal/makeflow"
	"hta/internal/wq"
)

// Scheduler is the submission interface a runner drives. Both
// *wq.Master and *core.Autoscaler satisfy it.
type Scheduler interface {
	// Submit enqueues a task and returns its ID (0 when the
	// scheduler defers the task internally).
	Submit(spec wq.TaskSpec) int
	// OnComplete subscribes to task completions.
	OnComplete(fn func(wq.Result))
}

// FailureNotifier is implemented by schedulers that report permanent
// task failures (retry budget exhausted, task quarantined). Both
// *wq.Master and *core.Autoscaler satisfy it; a runner subscribes
// when its scheduler does.
type FailureNotifier interface {
	OnTaskFailed(fn func(wq.Task))
}

// SpecFunc converts a DAG node into a task spec. The runner sets the
// spec's Tag to the node ID regardless of what the function returns
// there.
type SpecFunc func(n dag.Node) wq.TaskSpec

// Runner executes one graph on one scheduler. It serializes its own
// state internally, so completions may arrive from any goroutine —
// the TCP master delivers them from per-connection readers, the
// simulated master from the event loop.
type Runner struct {
	mu       sync.Mutex
	g        *dag.Graph
	sched    Scheduler
	spec     SpecFunc
	log      makeflow.LogSink // nil = no journal
	onDone   []func()
	done     bool
	detached bool
	failed   error

	// frontier queues ready nodes awaiting submission: the initial
	// ready set at Start, then the newly-ready IDs each Complete
	// returns. Draining the queue instead of rescanning g.Ready()
	// keeps a completion O(dependents), not O(graph) — at the 400k-task
	// scale of E-H the rescan was the dominant cost of the whole run.
	frontier []string
	head     int
}

// NewRunner prepares a runner; Start submits the initial frontier.
func NewRunner(g *dag.Graph, sched Scheduler, spec SpecFunc) *Runner {
	r := &Runner{g: g, sched: sched, spec: spec}
	sched.OnComplete(r.onComplete)
	if fn, ok := sched.(FailureNotifier); ok {
		fn.OnTaskFailed(r.onTaskFailed)
	}
	return r
}

// SetLog journals every rule transition to the sink (the Makeflow
// transaction log). Install it before Start; a journal write failure
// fails the workflow (a crash-consistent engine must not run ahead of
// its log).
func (r *Runner) SetLog(sink makeflow.LogSink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = sink
}

// Detach permanently disconnects the runner from its scheduler
// subscriptions: completions and failures delivered after Detach are
// ignored. A restarted engine detaches the dead incarnation's runner
// (subscriptions on the master cannot be removed) before starting a
// new one on the same master.
func (r *Runner) Detach() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.detached = true
}

// journal appends one transition; the caller holds r.mu.
func (r *Runner) journal(state makeflow.TxnState, id string) {
	if r.log == nil {
		return
	}
	if err := r.log.Append(state, id); err != nil {
		r.fail(fmt.Errorf("transaction log: %w", err))
	}
}

// OnAllDone subscribes to workflow completion. The callback runs on
// whichever goroutine delivers the final completion.
func (r *Runner) OnAllDone(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onDone = append(r.onDone, fn)
}

// Done reports whether every node completed.
func (r *Runner) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// Err returns the first internal consistency error, if any.
func (r *Runner) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed
}

// Start submits the graph's ready frontier. A graph carrying failed
// nodes from recovery finishes with the failure recorded instead of
// stalling on them.
func (r *Runner) Start() {
	r.mu.Lock()
	if n := r.g.Counts()[dag.Failed]; n > 0 && r.failed == nil {
		r.fail(fmt.Errorf("%d node(s) recovered in failed state", n))
	}
	r.enqueue(r.g.Ready())
	fire := r.submitReady()
	r.mu.Unlock()
	for _, fn := range fire {
		fn()
	}
}

// enqueue appends newly ready nodes to the frontier; the caller holds
// r.mu.
func (r *Runner) enqueue(ids []string) {
	r.frontier = append(r.frontier, ids...)
}

// submitReady drains the frontier queue; the caller holds r.mu. It
// returns the completion callbacks to fire (outside the lock) when
// this call finished the workflow. After a permanent failure no new
// nodes are submitted; in-flight work drains and the runner finishes
// with its error set.
func (r *Runner) submitReady() []func() {
	for r.failed == nil && r.head < len(r.frontier) {
		id := r.frontier[r.head]
		r.head++
		if r.g.State(id) != dag.Ready {
			continue // stale entry (handled through another path)
		}
		n, _ := r.g.Node(id)
		if err := r.g.Start(id); err != nil {
			r.fail(err)
			return nil
		}
		if n.Local {
			// LOCAL rules run at the workflow manager itself
			// (instantaneous bookkeeping steps like renames);
			// they never reach the scheduler.
			newly, err := r.g.Complete(id)
			if err != nil {
				r.fail(err)
				return nil
			}
			r.journal(makeflow.TxnLocal, id)
			r.enqueue(newly)
			continue
		}
		spec := r.spec(n)
		spec.Tag = id
		r.sched.Submit(spec)
		r.journal(makeflow.TxnSubmit, id)
	}
	r.frontier = r.frontier[:0]
	r.head = 0
	return r.maybeFinish()
}

// maybeFinish returns the completion callbacks to fire when the
// workflow just finished: every node complete, or — after a permanent
// failure — every in-flight node drained. The caller holds r.mu.
func (r *Runner) maybeFinish() []func() {
	if r.done {
		return nil
	}
	if r.failed != nil {
		if r.g.Counts()[dag.Running] > 0 {
			return nil
		}
	} else if !r.g.Done() {
		return nil
	}
	r.done = true
	fire := make([]func(), len(r.onDone))
	copy(fire, r.onDone)
	return fire
}

func (r *Runner) onComplete(res wq.Result) {
	r.mu.Lock()
	if r.detached {
		r.mu.Unlock()
		return
	}
	id := res.Task.Tag
	if r.g.State(id) != dag.Running {
		r.mu.Unlock()
		return // not ours (shared master) or already handled
	}
	newly, err := r.g.Complete(id)
	if err != nil {
		r.fail(err)
		r.mu.Unlock()
		return
	}
	r.journal(makeflow.TxnDone, id)
	r.enqueue(newly)
	fire := r.submitReady()
	r.mu.Unlock()
	for _, fn := range fire {
		fn()
	}
}

// onTaskFailed marks a permanently failed (quarantined) task's node
// Failed: the workflow stops submitting new nodes, lets in-flight
// tasks drain, and finishes with Err set — the DAG-node failure
// semantics of a poison task.
func (r *Runner) onTaskFailed(t wq.Task) {
	r.mu.Lock()
	if r.detached {
		r.mu.Unlock()
		return
	}
	id := t.Tag
	if r.g.State(id) != dag.Running {
		r.mu.Unlock()
		return
	}
	if err := r.g.Fail(id); err != nil {
		r.fail(err)
		r.mu.Unlock()
		return
	}
	r.journal(makeflow.TxnFail, id)
	r.fail(fmt.Errorf("node %s failed permanently after %d attempts", id, t.Attempts))
	fire := r.maybeFinish()
	r.mu.Unlock()
	for _, fn := range fire {
		fn()
	}
}

func (r *Runner) fail(err error) {
	if r.failed == nil {
		r.failed = fmt.Errorf("flow: %w", err)
	}
}

// FromSpecs builds a trivial graph (no dependencies) from a list of
// task specs — the flat bag-of-tasks shape of the paper's Fig. 2,
// Fig. 4 and I/O-bound workloads — and returns it with its SpecFunc.
func FromSpecs(specs []wq.TaskSpec) (*dag.Graph, SpecFunc, error) {
	g := dag.NewGraph()
	byID := make(map[string]wq.TaskSpec, len(specs))
	for i, spec := range specs {
		id := fmt.Sprintf("task%d", i)
		byID[id] = spec
		if err := g.Add(dag.Node{ID: id, Category: spec.Category}); err != nil {
			return nil, nil, err
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, nil, err
	}
	return g, func(n dag.Node) wq.TaskSpec { return byID[n.ID] }, nil
}
