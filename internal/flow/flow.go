// Package flow is the workflow-manager side of the stack: it walks a
// dag.Graph, submits ready tasks to a job scheduler (directly to a
// Work Queue master, or through the HTA middleware), and releases
// newly ready tasks as their dependencies complete — what Makeflow
// does once it has parsed a workflow description.
package flow

import (
	"fmt"
	"sync"

	"hta/internal/dag"
	"hta/internal/wq"
)

// Scheduler is the submission interface a runner drives. Both
// *wq.Master and *core.Autoscaler satisfy it.
type Scheduler interface {
	// Submit enqueues a task and returns its ID (0 when the
	// scheduler defers the task internally).
	Submit(spec wq.TaskSpec) int
	// OnComplete subscribes to task completions.
	OnComplete(fn func(wq.Result))
}

// SpecFunc converts a DAG node into a task spec. The runner sets the
// spec's Tag to the node ID regardless of what the function returns
// there.
type SpecFunc func(n dag.Node) wq.TaskSpec

// Runner executes one graph on one scheduler. It serializes its own
// state internally, so completions may arrive from any goroutine —
// the TCP master delivers them from per-connection readers, the
// simulated master from the event loop.
type Runner struct {
	mu     sync.Mutex
	g      *dag.Graph
	sched  Scheduler
	spec   SpecFunc
	onDone []func()
	done   bool
	failed error
}

// NewRunner prepares a runner; Start submits the initial frontier.
func NewRunner(g *dag.Graph, sched Scheduler, spec SpecFunc) *Runner {
	r := &Runner{g: g, sched: sched, spec: spec}
	sched.OnComplete(r.onComplete)
	return r
}

// OnAllDone subscribes to workflow completion. The callback runs on
// whichever goroutine delivers the final completion.
func (r *Runner) OnAllDone(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onDone = append(r.onDone, fn)
}

// Done reports whether every node completed.
func (r *Runner) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// Err returns the first internal consistency error, if any.
func (r *Runner) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed
}

// Start submits the graph's ready frontier.
func (r *Runner) Start() {
	r.mu.Lock()
	fire := r.submitReady()
	r.mu.Unlock()
	for _, fn := range fire {
		fn()
	}
}

// submitReady drains the ready frontier; the caller holds r.mu. It
// returns the completion callbacks to fire (outside the lock) when
// this call finished the workflow.
func (r *Runner) submitReady() []func() {
	for {
		progressed := false
		for _, id := range r.g.Ready() {
			n, _ := r.g.Node(id)
			if err := r.g.Start(id); err != nil {
				r.fail(err)
				return nil
			}
			if n.Local {
				// LOCAL rules run at the workflow manager itself
				// (instantaneous bookkeeping steps like renames);
				// they never reach the scheduler.
				if _, err := r.g.Complete(id); err != nil {
					r.fail(err)
					return nil
				}
				progressed = true
				continue
			}
			spec := r.spec(n)
			spec.Tag = id
			r.sched.Submit(spec)
		}
		if !progressed {
			break
		}
	}
	if r.g.Done() && !r.done {
		r.done = true
		fire := make([]func(), len(r.onDone))
		copy(fire, r.onDone)
		return fire
	}
	return nil
}

func (r *Runner) onComplete(res wq.Result) {
	r.mu.Lock()
	id := res.Task.Tag
	if r.g.State(id) != dag.Running {
		r.mu.Unlock()
		return // not ours (shared master) or already handled
	}
	if _, err := r.g.Complete(id); err != nil {
		r.fail(err)
		r.mu.Unlock()
		return
	}
	fire := r.submitReady()
	r.mu.Unlock()
	for _, fn := range fire {
		fn()
	}
}

func (r *Runner) fail(err error) {
	if r.failed == nil {
		r.failed = fmt.Errorf("flow: %w", err)
	}
}

// FromSpecs builds a trivial graph (no dependencies) from a list of
// task specs — the flat bag-of-tasks shape of the paper's Fig. 2,
// Fig. 4 and I/O-bound workloads — and returns it with its SpecFunc.
func FromSpecs(specs []wq.TaskSpec) (*dag.Graph, SpecFunc, error) {
	g := dag.NewGraph()
	byID := make(map[string]wq.TaskSpec, len(specs))
	for i, spec := range specs {
		id := fmt.Sprintf("task%d", i)
		byID[id] = spec
		if err := g.Add(dag.Node{ID: id, Category: spec.Category}); err != nil {
			return nil, nil, err
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, nil, err
	}
	return g, func(n dag.Node) wq.TaskSpec { return byID[n.ID] }, nil
}
