package flow

import (
	"testing"
	"time"

	"hta/internal/dag"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func spec(d time.Duration) wq.TaskSpec {
	return wq.TaskSpec{
		Resources: resources.New(1, 1024, 10),
		Profile:   wq.Profile{ExecDuration: d, UsedCPUMilli: 900},
	}
}

func TestRunnerExecutesDiamond(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := wq.NewMaster(eng, nil)
	m.AddWorker("w1", resources.New(3, 12288, 1000))

	g := dag.NewGraph()
	g.Add(dag.Node{ID: "a", Outputs: []string{"a.out"}})
	g.Add(dag.Node{ID: "b", Inputs: []string{"a.out"}, Outputs: []string{"b.out"}})
	g.Add(dag.Node{ID: "c", Inputs: []string{"a.out"}, Outputs: []string{"c.out"}})
	g.Add(dag.Node{ID: "d", Inputs: []string{"b.out", "c.out"}})
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}

	r := NewRunner(g, m, func(n dag.Node) wq.TaskSpec { return spec(10 * time.Second) })
	doneAt := time.Duration(0)
	r.OnAllDone(func() { doneAt = eng.Elapsed() })
	r.Start()
	eng.Run()
	if !r.Done() {
		t.Fatal("runner not done")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	// a (10s) → b,c parallel (10s) → d (10s) = 30s.
	if doneAt != 30*time.Second {
		t.Errorf("done at %v, want 30s", doneAt)
	}
	if m.CompletedCount() != 4 {
		t.Errorf("completed = %d", m.CompletedCount())
	}
}

func TestRunnerSetsTagToNodeID(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := wq.NewMaster(eng, nil)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	g := dag.NewGraph()
	g.Add(dag.Node{ID: "only"})
	g.Finalize()
	var gotTag string
	m.OnComplete(func(r wq.Result) { gotTag = r.Task.Tag })
	r := NewRunner(g, m, func(n dag.Node) wq.TaskSpec {
		s := spec(time.Second)
		s.Tag = "should-be-overwritten"
		return s
	})
	r.Start()
	eng.Run()
	if gotTag != "only" {
		t.Errorf("tag = %q, want node ID", gotTag)
	}
}

func TestRunnerIgnoresForeignCompletions(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := wq.NewMaster(eng, nil)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	g := dag.NewGraph()
	g.Add(dag.Node{ID: "mine"})
	g.Finalize()
	r := NewRunner(g, m, func(n dag.Node) wq.TaskSpec { return spec(5 * time.Second) })
	r.Start()
	// A foreign task (submitted outside the runner) completes first.
	foreign := spec(time.Second)
	foreign.Tag = "foreign"
	m.Submit(foreign)
	eng.Run()
	if !r.Done() || r.Err() != nil {
		t.Fatalf("done=%v err=%v", r.Done(), r.Err())
	}
}

func TestFromSpecs(t *testing.T) {
	specs := []wq.TaskSpec{spec(time.Second), spec(2 * time.Second), spec(3 * time.Second)}
	specs[1].Category = "special"
	g, fn, err := FromSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := len(g.Ready()); got != 3 {
		t.Errorf("ready = %d, want all (no deps)", got)
	}
	n, _ := g.Node("task1")
	if n.Category != "special" {
		t.Errorf("category = %q", n.Category)
	}
	if got := fn(n); got.Profile.ExecDuration != 2*time.Second {
		t.Errorf("spec mapping wrong: %v", got.Profile.ExecDuration)
	}
}

func TestFromSpecsRunsFlat(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := wq.NewMaster(eng, nil)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	g, fn, _ := FromSpecs([]wq.TaskSpec{spec(10 * time.Second), spec(10 * time.Second), spec(10 * time.Second)})
	r := NewRunner(g, m, fn)
	r.Start()
	eng.Run()
	if !r.Done() {
		t.Fatal("not done")
	}
	if eng.Elapsed() != 10*time.Second {
		t.Errorf("elapsed = %v, want 10s (3 parallel)", eng.Elapsed())
	}
}

func TestLocalNodesRunAtManager(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := wq.NewMaster(eng, nil)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	g := dag.NewGraph()
	g.Add(dag.Node{ID: "gen", Outputs: []string{"a"}})
	g.Add(dag.Node{ID: "rename", Local: true, Inputs: []string{"a"}, Outputs: []string{"b"}})
	g.Add(dag.Node{ID: "use", Inputs: []string{"b"}})
	g.Finalize()
	submitted := make(map[string]bool)
	r := NewRunner(g, m, func(n dag.Node) wq.TaskSpec {
		submitted[n.ID] = true
		return spec(10 * time.Second)
	})
	done := false
	r.OnAllDone(func() { done = true })
	r.Start()
	eng.Run()
	if !done || r.Err() != nil {
		t.Fatalf("done=%v err=%v", done, r.Err())
	}
	if submitted["rename"] {
		t.Error("LOCAL node was submitted to the scheduler")
	}
	if m.CompletedCount() != 2 {
		t.Errorf("scheduler completed %d, want 2 (gen, use)", m.CompletedCount())
	}
	// gen (10s) → rename (instant) → use (10s).
	if eng.Elapsed() != 20*time.Second {
		t.Errorf("elapsed = %v, want 20s", eng.Elapsed())
	}
}

func TestAllLocalWorkflowCompletesWithoutWorkers(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := wq.NewMaster(eng, nil) // no workers at all
	g := dag.NewGraph()
	g.Add(dag.Node{ID: "a", Local: true, Outputs: []string{"a.out"}})
	g.Add(dag.Node{ID: "b", Local: true, Inputs: []string{"a.out"}})
	g.Finalize()
	r := NewRunner(g, m, func(n dag.Node) wq.TaskSpec { return spec(time.Second) })
	done := false
	r.OnAllDone(func() { done = true })
	r.Start()
	eng.Run()
	if !done {
		t.Fatal("all-local workflow did not complete")
	}
	if eng.Elapsed() != 0 {
		t.Errorf("elapsed = %v, want instant", eng.Elapsed())
	}
}

func TestChaosQuarantineFailsNode(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := wq.NewMaster(eng, nil)
	// One failure quarantines: MaxAttempts = 1.
	m.SetRetryPolicy(wq.RetryPolicy{MaxAttempts: 1})
	m.AddWorker("w1", resources.New(1, 4096, 100))
	m.AddWorker("w2", resources.New(1, 4096, 100))

	// a and b independent; c depends on a.
	g := dag.NewGraph()
	g.Add(dag.Node{ID: "a", Outputs: []string{"a.out"}})
	g.Add(dag.Node{ID: "b"})
	g.Add(dag.Node{ID: "c", Inputs: []string{"a.out"}})
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	durs := map[string]time.Duration{"a": time.Hour, "b": 30 * time.Second, "c": time.Second}
	r := NewRunner(g, m, func(n dag.Node) wq.TaskSpec { return spec(durs[n.ID]) })
	done := false
	r.OnAllDone(func() { done = true })
	r.Start()

	// Kill whichever worker runs node a mid-flight; the task
	// quarantines immediately and the node fails.
	eng.RunUntil(t0.Add(time.Second))
	var victim string
	for _, tk := range m.RunningTasks() {
		if tk.Tag == "a" {
			victim = tk.WorkerID
		}
	}
	if victim == "" {
		t.Fatal("node a not running")
	}
	if err := m.KillWorker(victim); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if !done || !r.Done() {
		t.Fatalf("runner did not finish after failure + drain (done=%v)", done)
	}
	if r.Err() == nil {
		t.Fatal("Err() = nil, want node-failure error")
	}
	if g.State("a") != dag.Failed {
		t.Errorf("a = %v, want Failed", g.State("a"))
	}
	if g.State("b") != dag.Complete {
		t.Errorf("b = %v, want Complete (in-flight work drains)", g.State("b"))
	}
	if g.State("c") == dag.Running || g.State("c") == dag.Complete {
		t.Errorf("c = %v, want never started", g.State("c"))
	}
}
