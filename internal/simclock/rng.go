package simclock

import "math/rand"

// RNG is a seeded deterministic random source for simulations.
// It wraps math/rand with the distributions the cluster model needs
// (truncated normal latencies, jittered durations).
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// TruncNormal returns a normal sample clamped to [min, max]. It is
// used for latencies that are approximately normal but can never be
// negative (e.g. node provisioning time).
func (g *RNG) TruncNormal(mean, stddev, min, max float64) float64 {
	v := g.Normal(mean, stddev)
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return v
}

// Jitter returns base scaled by a uniform factor in
// [1-frac, 1+frac]. frac is clamped to [0, 1].
func (g *RNG) Jitter(base, frac float64) float64 {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return base * (1 - frac + 2*frac*g.r.Float64())
}

// Exp returns an exponentially distributed value with the given mean
// — the inter-arrival time of a Poisson process (e.g. preemption
// events). A non-positive mean returns 0.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
