// Package simclock provides a deterministic discrete-event simulation
// engine: a virtual clock, an ordered event queue with stable
// tie-breaking, cancellable timers and periodic tickers.
//
// Every simulated component in this repository (the Kubernetes
// control plane, the Work Queue master, the autoscalers, the network
// model) schedules callbacks on a single Engine, so a complete
// multi-hour cluster run executes in milliseconds and is exactly
// reproducible for a given seed.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock exposes the current time. Both the simulation Engine and
// RealClock implement it, so components can run in either mode.
type Clock interface {
	Now() time.Time
}

// RealClock is a Clock backed by the wall clock.
type RealClock struct{}

// Now returns the current wall-clock time.
func (RealClock) Now() time.Time { return time.Now() }

// event is a scheduled callback.
type event struct {
	at       time.Time
	seq      uint64 // tie-breaker: FIFO among equal times
	fn       func()
	name     string
	canceled bool
	index    int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulation engine.
// It is not safe for concurrent use; all callbacks run on the
// goroutine that calls Run/RunUntil/Step.
type Engine struct {
	now       time.Time
	start     time.Time
	events    eventHeap
	seq       uint64
	processed uint64
}

// NewEngine returns an Engine whose clock starts at start.
func NewEngine(start time.Time) *Engine {
	return &Engine{now: start, start: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Elapsed returns the virtual time elapsed since the engine started.
func (e *Engine) Elapsed() time.Duration { return e.now.Sub(e.start) }

// Pending returns the number of scheduled, non-canceled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// Processed returns the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Timer is a handle to a scheduled event; Stop cancels it.
type Timer struct {
	e  *Engine
	ev *event
}

// Stop cancels the timer. It reports whether the event had not yet
// fired (and had not already been stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled {
		return false
	}
	if t.ev.index == -1 {
		// Already popped (fired or firing).
		return false
	}
	t.ev.canceled = true
	return true
}

// At schedules fn to run at time at. Times in the past are clamped to
// the current time, preserving FIFO order among same-time events. The
// name is used only for diagnostics.
func (e *Engine) At(at time.Time, name string, fn func()) *Timer {
	if fn == nil {
		panic("simclock: nil event callback")
	}
	if at.Before(e.now) {
		at = e.now
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fn: fn, name: name}
	heap.Push(&e.events, ev)
	return &Timer{e: e, ev: ev}
}

// After schedules fn to run d from now. Negative durations are
// clamped to zero.
func (e *Engine) After(d time.Duration, name string, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), name, fn)
}

// Ticker runs a callback periodically until stopped.
type Ticker struct {
	e       *Engine
	period  time.Duration
	name    string
	fn      func()
	timer   *Timer
	stopped bool
}

// Every schedules fn to run every period, with the first firing one
// period from now. It panics if period is not positive.
func (e *Engine) Every(period time.Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive ticker period %v", period))
	}
	t := &Ticker{e: e, period: period, name: name, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.timer = t.e.After(t.period, t.name, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels the ticker; no further firings occur.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Reset changes the ticker period and restarts the wait from now.
func (t *Ticker) Reset(period time.Duration) {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive ticker period %v", period))
	}
	if t.stopped {
		return
	}
	t.period = period
	if t.timer != nil {
		t.timer.Stop()
	}
	t.schedule()
}

// Step executes the single next event, advancing the clock to its
// scheduled time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		if ev.at.After(e.now) {
			e.now = ev.at
		}
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty. Most simulations end
// naturally when their workload completes and periodic controllers
// have been stopped; use RunUntil to bound runaway simulations.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with scheduled time <= deadline, then
// advances the clock to deadline. Events after the deadline remain
// queued.
func (e *Engine) RunUntil(deadline time.Time) {
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at.After(deadline) {
			break
		}
		e.Step()
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
}

// RunFor runs the simulation for d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}

// RunWhile executes events while cond returns true and events remain.
// cond is checked before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}
