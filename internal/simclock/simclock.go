// Package simclock provides a deterministic discrete-event simulation
// engine: a virtual clock, an ordered event queue with stable
// tie-breaking, cancellable timers, periodic tickers, and a batch
// scheduling API for the k-events-at-one-instant patterns the
// simulated components generate.
//
// Every simulated component in this repository (the Kubernetes
// control plane, the Work Queue master, the autoscalers, the network
// model) schedules callbacks on a single Engine, so a complete
// multi-hour cluster run executes in milliseconds and is exactly
// reproducible for a given seed.
//
// # Event core
//
// The engine keeps its timeline in int64 nanoseconds relative to the
// start time, so every ordering decision is one integer comparison —
// no time.Time wall/mono case analysis. Events live in a slab of
// packed records addressed by index: scheduling recycles records
// through a free list, cancellation invalidates through a generation
// counter, and the far-horizon queue is a hand-rolled 4-ary min-heap
// of indices keyed on (time, seq), halving sift depth and avoiding
// heap.Interface boxing.
//
// Near-horizon events — everything scheduled at the instant currently
// executing — live in per-lane calendar buckets instead of the heap.
// A lane is a stable small-integer tag a component reserves with
// NewLane (per link, per master, per control plane); events scheduled
// at the current instant append to their lane's bucket in O(1). When
// the clock advances, the engine drains every heap record bearing the
// new timestamp into its lane bucket (the epoch merge) and then
// consumes bucket heads in ascending seq order across lanes. Because
// each lane's bucket is appended in seq order and seq is a single
// global counter, the merged firing order is exactly (time, seq) —
// identical to the reference engine's heap order by construction,
// which the differential suite in differential_test.go pins down.
//
// Batches (AtBatch, AfterBatch, AfterBatchN) schedule k callbacks at
// one instant as a single record occupying a contiguous seq block, so
// the pattern "k completions fire now" costs one heap settle instead
// of k. Nothing can interleave a contiguous seq block, so executing
// the block front-to-back preserves the global order.
//
// The seed implementation — a serial container/heap of pointer events
// keyed by time.Time — is retained in reference.go and selected by
// NewReferenceEngine; it is the oracle for the differential and fuzz
// suites and the baseline the engine benchmarks measure against.
package simclock

import (
	"fmt"
	"time"
)

// Clock exposes the current time. Both the simulation Engine and
// RealClock implement it, so components can run in either mode.
type Clock interface {
	Now() time.Time
}

// RealClock is a Clock backed by the wall clock.
type RealClock struct{}

// Now returns the current wall-clock time.
func (RealClock) Now() time.Time { return time.Now() }

// Lane identifies a scheduling lane: a per-component calendar bucket
// for events at the executing instant. Lane tags shard storage, not
// ordering — firing order is (time, seq) regardless of lane. The zero
// Lane is the shared default lane.
type Lane int32

// DefaultLane is the lane used by At/After and any component that
// does not reserve its own.
const DefaultLane Lane = 0

// rec states held in heapIdx when the record is not in the far heap.
const (
	recFree = -1 // free, fired, or consumed
	recLane = -2 // resident in a lane bucket
)

// rec is a packed event record. Singles carry fn; a batch record
// carries n callbacks (fns slice, or fn repeated n times) occupying
// the contiguous seq block [seq, seq+n).
type rec struct {
	at      int64  // firing time, ns since engine base
	seq     uint64 // first sequence number of the record
	gen     uint64 // incremented on recycle; Timers validate it
	fn      func()
	fns     []func() // batch callbacks; nil for singles and AfterBatchN
	name    string
	n       int32 // callback count; 1 for singles
	cur     int32 // batch consume cursor
	lane    Lane
	heapIdx int32 // position in the far heap, or recFree/recLane
	stopped bool  // canceled while lane-resident; skipped on consume
}

// laneBucket is one lane's calendar bucket for the executing instant:
// record indices in ascending seq order, consumed from head.
type laneBucket struct {
	head int
	recs []int32
}

// Engine is a single-threaded discrete-event simulation engine.
// It is not safe for concurrent use; all callbacks run on the
// goroutine that calls Run/RunUntil/Step.
type Engine struct {
	base      time.Time // timeline origin; now/at are ns offsets from it
	now       int64
	seq       uint64
	processed uint64
	scheduled uint64
	pending   int

	recs []rec   // packed event slab
	free []int32 // recycled slab indices
	heap []int32 // 4-ary min-heap of far records keyed (at, seq)

	lanes   []laneBucket // per-lane buckets for the executing instant
	heads   []Lane       // binary min-heap of active lanes keyed by head seq
	fnsPool [][]func()   // recycled batch-callback slices

	ref      *refCore // non-nil: route through the retained reference core
	refLanes int32    // lanes handed out in reference mode (no storage)
}

// NewEngine returns an Engine whose clock starts at start.
func NewEngine(start time.Time) *Engine {
	return &Engine{base: start, lanes: make([]laneBucket, 1)}
}

// NewLane reserves a scheduling lane for a component. The name is
// only for diagnostics. Lanes are engine-scoped and never freed; a
// component creating unbounded lanes is a bug.
func (e *Engine) NewLane(name string) Lane {
	_ = name
	if e.ref != nil {
		// The reference core has no lane storage; hand out distinct
		// tags so callers behave identically.
		e.refLanes++
		return Lane(e.refLanes)
	}
	e.lanes = append(e.lanes, laneBucket{})
	return Lane(len(e.lanes) - 1)
}

// rel converts an absolute time to engine-relative nanoseconds.
func (e *Engine) rel(t time.Time) int64 { return int64(t.Sub(e.base)) }

// abs converts engine-relative nanoseconds back to an absolute time.
func (e *Engine) abs(ns int64) time.Time { return e.base.Add(time.Duration(ns)) }

// Now returns the current virtual time.
func (e *Engine) Now() time.Time {
	if e.ref != nil {
		return e.ref.now
	}
	return e.abs(e.now)
}

// Elapsed returns the virtual time elapsed since the engine started.
func (e *Engine) Elapsed() time.Duration {
	if e.ref != nil {
		return e.ref.now.Sub(e.ref.start)
	}
	return time.Duration(e.now)
}

// Pending returns the number of scheduled, non-canceled events in
// O(1) from a counter maintained at schedule/cancel/fire — a Pending
// probe inside a hot loop must not pay a queue walk.
func (e *Engine) Pending() int { return e.pending }

// Processed returns the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Scheduled returns the total number of events ever scheduled via
// At/After/Every and the batch calls, including ones later canceled.
// Tests use the delta across an operation to assert that read paths
// do not re-arm timers.
func (e *Engine) Scheduled() uint64 { return e.scheduled }

// Timer is a handle to a scheduled event; Stop cancels it. The zero
// Timer is valid and Stop on it is a no-op, so a Timer field needs no
// nil check. Timers are values — copying one is fine, and holding a
// Timer past its event's firing is safe (Stop just reports false).
type Timer struct {
	eng *Engine
	ev  *refEvent // reference mode
	idx int32
	gen uint64
}

// Stop cancels the timer. It reports whether the event had not yet
// fired (and had not already been stopped). A far-heap event is
// removed eagerly — components that re-arm a timer on every state
// change (the network model's completion timer) would otherwise bury
// the queue in canceled entries and pay their log factor on every
// pop. A lane-resident event (already due at the executing instant)
// is canceled in O(1) by marking; its slot drains with the bucket.
func (t Timer) Stop() bool {
	if t.ev != nil {
		return refStop(t.ev, t.gen)
	}
	e := t.eng
	if e == nil {
		return false
	}
	r := &e.recs[t.idx]
	if r.gen != t.gen || r.stopped {
		return false
	}
	switch {
	case r.heapIdx >= 0:
		e.heapRemove(int(r.heapIdx))
		e.pending--
		e.recycle(t.idx)
		return true
	case r.heapIdx == recLane:
		r.stopped = true
		e.pending--
		return true
	default:
		// Already fired or firing.
		return false
	}
}

// alloc takes a record from the free list, or extends the slab.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.recs = append(e.recs, rec{heapIdx: recFree})
	return int32(len(e.recs) - 1)
}

// recycle returns a consumed record to the free list; bumping gen
// invalidates any Timer still pointing at it.
func (e *Engine) recycle(idx int32) {
	r := &e.recs[idx]
	r.gen++
	r.fn = nil
	r.name = ""
	r.stopped = false
	r.heapIdx = recFree
	if r.fns != nil {
		fns := r.fns
		for i := range fns {
			fns[i] = nil
		}
		e.fnsPool = append(e.fnsPool, fns[:0])
		r.fns = nil
	}
	e.free = append(e.free, idx)
}

// takeFns pulls a recycled batch-callback slice from the pool.
func (e *Engine) takeFns() []func() {
	if n := len(e.fnsPool); n > 0 {
		fns := e.fnsPool[n-1]
		e.fnsPool = e.fnsPool[:n-1]
		return fns
	}
	return nil
}

// At schedules fn to run at time at. Times in the past are clamped to
// the current time, preserving FIFO order among same-time events. The
// name is used only for diagnostics.
func (e *Engine) At(at time.Time, name string, fn func()) Timer {
	if fn == nil {
		panic("simclock: nil event callback")
	}
	if e.ref != nil {
		return e.refAt(at, name, fn)
	}
	rel := e.rel(at)
	if rel < e.now {
		rel = e.now
	}
	e.seq++
	e.scheduled++
	e.pending++
	idx := e.alloc()
	r := &e.recs[idx]
	r.at, r.seq, r.fn, r.name = rel, e.seq, fn, name
	r.n, r.cur, r.lane = 1, 0, DefaultLane
	if rel == e.now {
		e.laneAppend(DefaultLane, idx)
	} else {
		e.heapPush(idx)
	}
	return Timer{eng: e, idx: idx, gen: r.gen}
}

// After schedules fn to run d from now. Negative durations are
// clamped to zero.
func (e *Engine) After(d time.Duration, name string, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	if e.ref != nil {
		return e.refAt(e.ref.now.Add(d), name, fn)
	}
	return e.atRel(e.now+int64(d), name, fn)
}

// atRel is At on the relative timeline, skipping the conversion.
func (e *Engine) atRel(rel int64, name string, fn func()) Timer {
	if fn == nil {
		panic("simclock: nil event callback")
	}
	if rel < e.now {
		rel = e.now
	}
	e.seq++
	e.scheduled++
	e.pending++
	idx := e.alloc()
	r := &e.recs[idx]
	r.at, r.seq, r.fn, r.name = rel, e.seq, fn, name
	r.n, r.cur, r.lane = 1, 0, DefaultLane
	if rel == e.now {
		e.laneAppend(DefaultLane, idx)
	} else {
		e.heapPush(idx)
	}
	return Timer{eng: e, idx: idx, gen: r.gen}
}

// AtBatch schedules len(fns) callbacks to fire at time at, in slice
// order, on the given lane. The batch occupies one record and one
// contiguous seq block, so it costs a single heap settle (or a single
// lane append when at is the executing instant) regardless of size —
// the k-events-at-one-instant pattern of dispatch cascades,
// completion batches, and provisioning waves. Batch entries are not
// individually cancellable; callers that need cancellation use At.
// The engine copies fns, so the caller may reuse the slice.
func (e *Engine) AtBatch(at time.Time, lane Lane, name string, fns []func()) {
	n := len(fns)
	if n == 0 {
		return
	}
	for _, fn := range fns {
		if fn == nil {
			panic("simclock: nil event callback in batch")
		}
	}
	if e.ref != nil {
		for _, fn := range fns {
			e.refAt(at, name, fn)
		}
		return
	}
	rel := e.rel(at)
	e.batchRel(rel, lane, name, fns, nil, n)
}

// AfterBatch schedules len(fns) callbacks to fire d from now; see
// AtBatch. Negative durations are clamped to zero.
func (e *Engine) AfterBatch(d time.Duration, lane Lane, name string, fns []func()) {
	if d < 0 {
		d = 0
	}
	n := len(fns)
	if n == 0 {
		return
	}
	for _, fn := range fns {
		if fn == nil {
			panic("simclock: nil event callback in batch")
		}
	}
	if e.ref != nil {
		at := e.ref.now.Add(d)
		for _, fn := range fns {
			e.refAt(at, name, fn)
		}
		return
	}
	e.batchRel(e.now+int64(d), lane, name, fns, nil, n)
}

// AfterBatchN schedules n firings of the same callback d from now on
// the given lane — a batch without the callback slice, for waves of
// identical work such as a provisioning round. See AtBatch for batch
// semantics.
func (e *Engine) AfterBatchN(d time.Duration, lane Lane, name string, n int, fn func()) {
	if fn == nil {
		panic("simclock: nil event callback")
	}
	if n <= 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	if e.ref != nil {
		at := e.ref.now.Add(d)
		for i := 0; i < n; i++ {
			e.refAt(at, name, fn)
		}
		return
	}
	e.batchRel(e.now+int64(d), lane, name, nil, fn, n)
}

// batchRel installs a batch record at relative time rel. Exactly one
// of fns (copied) or fn (repeated) carries the callbacks.
func (e *Engine) batchRel(rel int64, lane Lane, name string, fns []func(), fn func(), n int) {
	if lane < 0 || int(lane) >= len(e.lanes) {
		panic(fmt.Sprintf("simclock: unknown lane %d", lane))
	}
	if rel < e.now {
		rel = e.now
	}
	first := e.seq + 1
	e.seq += uint64(n)
	e.scheduled += uint64(n)
	e.pending += n
	idx := e.alloc()
	r := &e.recs[idx]
	r.at, r.seq, r.name, r.lane = rel, first, name, lane
	r.n, r.cur = int32(n), 0
	if fns != nil {
		r.fns = append(e.takeFns(), fns...)
	} else {
		r.fn = fn
	}
	if rel == e.now {
		e.laneAppend(lane, idx)
	} else {
		e.heapPush(idx)
	}
}

// --- lane buckets and the head merge ---

// laneAppend places a record at the tail of its lane's bucket for the
// executing instant. Appends always arrive in ascending seq order —
// direct schedules use the monotone global counter and epoch drains
// pop the far heap in (time, seq) order — so the bucket stays sorted
// without comparisons.
func (e *Engine) laneAppend(lane Lane, idx int32) {
	b := &e.lanes[lane]
	e.recs[idx].heapIdx = recLane
	wasEmpty := b.head == len(b.recs)
	b.recs = append(b.recs, idx)
	if wasEmpty {
		e.headsPush(lane)
	}
}

// headKey is the seq of the lane's next unconsumed callback. A batch
// record advances its key by one per firing; the key cannot overtake
// another lane's because seq blocks are contiguous and disjoint.
func (e *Engine) headKey(lane Lane) uint64 {
	b := &e.lanes[lane]
	r := &e.recs[b.recs[b.head]]
	return r.seq + uint64(r.cur)
}

// headsPush adds a newly active lane to the head-merge heap.
func (e *Engine) headsPush(lane Lane) {
	e.heads = append(e.heads, lane)
	i := len(e.heads) - 1
	key := e.headKey(lane)
	for i > 0 {
		p := (i - 1) / 2
		if key >= e.headKey(e.heads[p]) {
			break
		}
		e.heads[i] = e.heads[p]
		i = p
	}
	e.heads[i] = lane
}

// headsFix restores the heap after the root lane's key advanced.
func (e *Engine) headsFix() {
	h := e.heads
	n := len(h)
	i := 0
	lane := h[0]
	key := e.headKey(lane)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		ck := e.headKey(h[c])
		if r := c + 1; r < n {
			if rk := e.headKey(h[r]); rk < ck {
				c, ck = r, rk
			}
		}
		if key <= ck {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = lane
}

// headsPop removes the root lane (its bucket is exhausted).
func (e *Engine) headsPop() {
	n := len(e.heads) - 1
	e.heads[0] = e.heads[n]
	e.heads = e.heads[:n]
	if n > 0 {
		e.headsFix()
	}
}

// consumeHead retires the root lane's head record and rebalances the
// merge heap.
func (e *Engine) consumeHead() {
	lane := e.heads[0]
	b := &e.lanes[lane]
	idx := b.recs[b.head]
	b.head++
	e.recycle(idx)
	if b.head == len(b.recs) {
		b.head = 0
		b.recs = b.recs[:0]
		e.headsPop()
	} else {
		e.headsFix()
	}
}

// advance moves the clock to the next scheduled instant and performs
// the epoch merge: every far-heap record bearing the new timestamp
// drains into its lane bucket, after which the instant executes as
// bucket-head pops in ascending seq order. The far heap holds only
// records strictly after the executing instant, so schedules landing
// at the current time never touch it.
func (e *Engine) advance() bool {
	if len(e.heap) == 0 {
		return false
	}
	t := e.recs[e.heap[0]].at
	e.now = t
	for len(e.heap) > 0 {
		idx := e.heap[0]
		if e.recs[idx].at != t {
			break
		}
		e.heapPopMin()
		e.laneAppend(e.recs[idx].lane, idx)
	}
	return true
}

// Step executes the single next event, advancing the clock to its
// scheduled time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.ref != nil {
		return e.refStep()
	}
	for {
		if len(e.heads) == 0 && !e.advance() {
			return false
		}
		b := &e.lanes[e.heads[0]]
		r := &e.recs[b.recs[b.head]]
		if r.stopped {
			e.consumeHead()
			continue
		}
		var fn func()
		if r.fns != nil {
			fn = r.fns[r.cur]
		} else {
			fn = r.fn
		}
		r.cur++
		if r.cur >= r.n {
			e.consumeHead()
		}
		e.processed++
		e.pending--
		fn()
		return true
	}
}

// nextAt reports the relative time of the next non-canceled event,
// discarding canceled lane heads as it scans.
func (e *Engine) nextAt() (int64, bool) {
	for len(e.heads) > 0 {
		b := &e.lanes[e.heads[0]]
		if e.recs[b.recs[b.head]].stopped {
			e.consumeHead()
			continue
		}
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.recs[e.heap[0]].at, true
	}
	return 0, false
}

// Run executes events until the queue is empty. Most simulations end
// naturally when their workload completes and periodic controllers
// have been stopped; use RunUntil to bound runaway simulations.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with scheduled time <= deadline, then
// advances the clock to deadline. Events after the deadline remain
// queued.
func (e *Engine) RunUntil(deadline time.Time) {
	if e.ref != nil {
		e.refRunUntil(deadline)
		return
	}
	relD := e.rel(deadline)
	for {
		at, ok := e.nextAt()
		if !ok || at > relD {
			break
		}
		e.Step()
	}
	if e.now < relD {
		e.now = relD
	}
}

// refRunUntil is RunUntil on the reference core.
func (e *Engine) refRunUntil(deadline time.Time) {
	c := e.ref
	for {
		at, ok := e.refNextAt()
		if !ok || at.After(deadline) {
			break
		}
		e.refStep()
	}
	if c.now.Before(deadline) {
		c.now = deadline
	}
}

// RunFor runs the simulation for d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.Now().Add(d))
}

// RunWhile executes events while cond returns true and events remain.
// cond is checked before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// --- far-horizon 4-ary heap ---

// recLess orders records by (time, seq): the engine's single total
// order. Both fields are plain integers, so the comparison compiles
// to two compares — the reason the timeline is int64 nanoseconds.
func (e *Engine) recLess(a, b int32) bool {
	ra, rb := &e.recs[a], &e.recs[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	return ra.seq < rb.seq
}

// The heap is 4-ary: sift depth halves versus binary, and the wider
// node still fits a cache line of int32 indices. Hand-rolled (like
// netsim's finishHeap) to avoid heap.Interface boxing on the hot
// path.

func (e *Engine) heapPush(idx int32) {
	e.heap = append(e.heap, idx)
	e.recs[idx].heapIdx = int32(len(e.heap) - 1)
	e.heapUp(len(e.heap) - 1)
}

func (e *Engine) heapUp(i int) {
	h := e.heap
	idx := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !e.recLess(idx, h[p]) {
			break
		}
		h[i] = h[p]
		e.recs[h[i]].heapIdx = int32(i)
		i = p
	}
	h[i] = idx
	e.recs[idx].heapIdx = int32(i)
}

func (e *Engine) heapDown(i int) {
	h := e.heap
	n := len(h)
	idx := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.recLess(h[c], h[m]) {
				m = c
			}
		}
		if !e.recLess(h[m], idx) {
			break
		}
		h[i] = h[m]
		e.recs[h[i]].heapIdx = int32(i)
		i = m
	}
	h[i] = idx
	e.recs[idx].heapIdx = int32(i)
}

// heapPopMin removes and returns the minimum record index.
func (e *Engine) heapPopMin() int32 {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	if n > 0 {
		e.recs[h[0]].heapIdx = 0
		e.heapDown(0)
	}
	e.recs[top].heapIdx = recFree
	return top
}

// heapRemove removes the record at heap position i (eager cancel).
func (e *Engine) heapRemove(i int) {
	h := e.heap
	idx := h[i]
	n := len(h) - 1
	h[i] = h[n]
	e.heap = h[:n]
	if i < n {
		e.recs[h[i]].heapIdx = int32(i)
		e.heapDown(i)
		e.heapUp(i)
	}
	e.recs[idx].heapIdx = recFree
}

// --- tickers ---

// Ticker runs a callback periodically until stopped. The re-arm
// closure is bound once at construction and reused for every firing,
// so a steady ticker allocates nothing after Every returns.
type Ticker struct {
	e       *Engine
	period  time.Duration
	name    string
	fn      func()
	run     func() // persistent firing closure; see Every
	timer   Timer
	stopped bool
}

// Every schedules fn to run every period, with the first firing one
// period from now. It panics if period is not positive.
func (e *Engine) Every(period time.Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive ticker period %v", period))
	}
	t := &Ticker{e: e, period: period, name: name, fn: fn}
	t.run = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.timer = t.e.After(t.period, t.name, t.run)
		}
	}
	t.timer = e.After(period, name, t.run)
	return t
}

// Stop cancels the ticker; no further firings occur.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Reset changes the ticker period and restarts the wait from now.
func (t *Ticker) Reset(period time.Duration) {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive ticker period %v", period))
	}
	if t.stopped {
		return
	}
	t.period = period
	t.timer.Stop()
	t.timer = t.e.After(t.period, t.name, t.run)
}
