// Package simclock provides a deterministic discrete-event simulation
// engine: a virtual clock, an ordered event queue with stable
// tie-breaking, cancellable timers, periodic tickers, and a batch
// scheduling API for the k-events-at-one-instant patterns the
// simulated components generate.
//
// Every simulated component in this repository (the Kubernetes
// control plane, the Work Queue master, the autoscalers, the network
// model) schedules callbacks on a single Engine, so a complete
// multi-hour cluster run executes in milliseconds and is exactly
// reproducible for a given seed.
//
// # Event core
//
// The engine keeps its timeline in int64 nanoseconds relative to the
// start time, so every ordering decision is one integer comparison —
// no time.Time wall/mono case analysis. Events live in a slab of
// packed records addressed by index: scheduling recycles records
// through a free list, cancellation invalidates through a generation
// counter, and the far-horizon queue is a hierarchical timing wheel:
// O(1) insert, bitmap slot scans, and a per-instant seq sort at drain
// time, so no comparison heap sits on the hot path at all.
//
// Near-horizon events — everything scheduled at the instant currently
// executing — live in per-lane calendar buckets instead of the wheel.
// A lane is a stable small-integer tag a component reserves with
// NewLane (per link, per master, per control plane); events scheduled
// at the current instant append to their lane's bucket in O(1). When
// the clock advances, the engine drains every wheel record bearing the
// new timestamp into its lane bucket (the epoch merge) and then
// consumes bucket heads in ascending seq order across lanes. Because
// the drained set is sorted by seq before the merge and seq is a
// single global counter, the merged firing order is exactly (time,
// seq) — identical to the reference engine's heap order by
// construction, which the differential suite in differential_test.go
// pins down.
//
// Batches (AtBatch, AfterBatch, AfterBatchN) schedule k callbacks at
// one instant as a single record occupying a contiguous seq block, so
// the pattern "k completions fire now" costs one heap settle instead
// of k. Nothing can interleave a contiguous seq block, so executing
// the block front-to-back preserves the global order.
//
// The seed implementation — a serial container/heap of pointer events
// keyed by time.Time — is retained in reference.go and selected by
// NewReferenceEngine; it is the oracle for the differential and fuzz
// suites and the baseline the engine benchmarks measure against.
package simclock

import (
	"cmp"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"time"
)

// Clock exposes the current time. Both the simulation Engine and
// RealClock implement it, so components can run in either mode.
type Clock interface {
	Now() time.Time
}

// RealClock is a Clock backed by the wall clock.
type RealClock struct{}

// Now returns the current wall-clock time.
func (RealClock) Now() time.Time { return time.Now() }

// Lane identifies a scheduling lane: a per-component calendar bucket
// for events at the executing instant. Lane tags shard storage, not
// ordering — firing order is (time, seq) regardless of lane. The zero
// Lane is the shared default lane.
type Lane int32

// DefaultLane is the lane used by At/After and any component that
// does not reserve its own.
const DefaultLane Lane = 0

// rec states held in heapIdx when the record is not in the far wheel.
const (
	recFree  = -1 // free, fired, or consumed
	recLane  = -2 // resident in a lane bucket
	recWheel = -3 // resident in a timing-wheel slot
)

// rec is a packed event record. Singles carry fn; a batch record
// carries n callbacks (fns slice, or fn repeated n times) occupying
// the contiguous seq block [seq, seq+n).
type rec struct {
	at      int64  // firing time, ns since engine base
	seq     uint64 // first sequence number of the record
	gen     uint64 // incremented on recycle; Timers validate it
	fn      func()
	fns     []func() // batch callbacks; nil for singles and AfterBatchN
	name    string
	n       int32 // callback count; 1 for singles
	cur     int32 // batch consume cursor
	lane    Lane
	heapIdx int32 // recFree/recLane/recWheel residency state
	next    int32 // intrusive wheel-slot list link; -1 terminates
	stopped bool  // canceled while lane- or wheel-resident; never fires
}

// laneBucket is one lane's calendar bucket for the executing instant:
// record indices in ascending seq order, consumed from head.
type laneBucket struct {
	head int
	recs []int32
}

// Engine is a single-threaded discrete-event simulation engine.
// It is not safe for concurrent use; all callbacks run on the
// goroutine that calls Run/RunUntil/Step.
type Engine struct {
	base      time.Time // timeline origin; now/at are ns offsets from it
	now       int64
	seq       uint64
	processed uint64
	scheduled uint64
	pending   int

	recs []rec   // packed event slab
	free []int32 // recycled slab indices

	// Far-horizon hierarchical timing wheel; see the "far-horizon
	// timing wheel" section. wheelCnt counts resident records,
	// including lazily canceled ones awaiting cleanup.
	wheel    [wheelLevels]wheelLevel
	wheelCnt int
	fires    []int32 // advance scratch: records firing at the new instant

	lanes   []laneBucket // per-lane buckets for the executing instant
	heads   []Lane       // binary min-heap of active lanes keyed by head seq
	fnsPool [][]func()   // recycled batch-callback slices

	ref      *refCore // non-nil: route through the retained reference core
	refLanes int32    // lanes handed out in reference mode (no storage)
}

// NewEngine returns an Engine whose clock starts at start.
func NewEngine(start time.Time) *Engine {
	e := &Engine{base: start, lanes: make([]laneBucket, 1)}
	for level := range e.wheel {
		for b := range e.wheel[level].head {
			e.wheel[level].head[b] = -1
		}
	}
	return e
}

// NewLane reserves a scheduling lane for a component. The name is
// only for diagnostics. Lanes are engine-scoped and never freed; a
// component creating unbounded lanes is a bug.
func (e *Engine) NewLane(name string) Lane {
	_ = name
	if e.ref != nil {
		// The reference core has no lane storage; hand out distinct
		// tags so callers behave identically.
		e.refLanes++
		return Lane(e.refLanes)
	}
	e.lanes = append(e.lanes, laneBucket{})
	return Lane(len(e.lanes) - 1)
}

// rel converts an absolute time to engine-relative nanoseconds.
func (e *Engine) rel(t time.Time) int64 { return int64(t.Sub(e.base)) }

// abs converts engine-relative nanoseconds back to an absolute time.
func (e *Engine) abs(ns int64) time.Time { return e.base.Add(time.Duration(ns)) }

// Now returns the current virtual time.
func (e *Engine) Now() time.Time {
	if e.ref != nil {
		return e.ref.now
	}
	return e.abs(e.now)
}

// Elapsed returns the virtual time elapsed since the engine started.
func (e *Engine) Elapsed() time.Duration {
	if e.ref != nil {
		return e.ref.now.Sub(e.ref.start)
	}
	return time.Duration(e.now)
}

// Pending returns the number of scheduled, non-canceled events in
// O(1) from a counter maintained at schedule/cancel/fire — a Pending
// probe inside a hot loop must not pay a queue walk.
func (e *Engine) Pending() int { return e.pending }

// Processed returns the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Scheduled returns the total number of events ever scheduled via
// At/After/Every and the batch calls, including ones later canceled.
// Tests use the delta across an operation to assert that read paths
// do not re-arm timers.
func (e *Engine) Scheduled() uint64 { return e.scheduled }

// Timer is a handle to a scheduled event; Stop cancels it. The zero
// Timer is valid and Stop on it is a no-op, so a Timer field needs no
// nil check. Timers are values — copying one is fine, and holding a
// Timer past its event's firing is safe (Stop just reports false).
type Timer struct {
	eng *Engine
	ev  *refEvent // reference mode
	idx int32
	gen uint64
}

// Stop cancels the timer. It reports whether the event had not yet
// fired (and had not already been stopped). Cancellation is O(1) and
// lazy everywhere: the record is marked stopped and skipped — a
// wheel-resident record is recycled when its slot next drains or a
// minimum scan walks it, a lane-resident one (already due at the
// executing instant) when its bucket is consumed.
func (t Timer) Stop() bool {
	if t.ev != nil {
		return refStop(t.ev, t.gen)
	}
	e := t.eng
	if e == nil {
		return false
	}
	r := &e.recs[t.idx]
	if r.gen != t.gen || r.stopped {
		return false
	}
	switch r.heapIdx {
	case recWheel, recLane:
		r.stopped = true
		e.pending--
		return true
	default:
		// Already fired or firing.
		return false
	}
}

// alloc takes a record from the free list, or extends the slab.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	if len(e.recs) == cap(e.recs) {
		// Double explicitly: the slab reaches hundreds of thousands
		// of records in a dispatch storm, and growslice's 1.25× policy
		// for large slices would copy (and zero) the ~100-byte records
		// several extra times on the way up.
		nc := cap(e.recs) * 2
		if nc < 1024 {
			nc = 1024
		}
		ns := make([]rec, len(e.recs), nc)
		copy(ns, e.recs)
		e.recs = ns
	}
	// Extend into already-zeroed slab capacity rather than appending a
	// composite literal: the latter re-writes the whole ~100-byte
	// record per fresh slot.
	n := len(e.recs)
	e.recs = e.recs[:n+1]
	e.recs[n].heapIdx = recFree
	return int32(n)
}

// recycle returns a consumed record to the free list; bumping gen
// invalidates any Timer still pointing at it.
func (e *Engine) recycle(idx int32) {
	r := &e.recs[idx]
	r.gen++
	r.fn = nil
	r.name = ""
	r.stopped = false
	r.heapIdx = recFree
	if r.fns != nil {
		fns := r.fns
		for i := range fns {
			fns[i] = nil
		}
		e.fnsPool = append(e.fnsPool, fns[:0])
		r.fns = nil
	}
	e.free = append(e.free, idx)
}

// takeFns pulls a recycled batch-callback slice from the pool.
func (e *Engine) takeFns() []func() {
	if n := len(e.fnsPool); n > 0 {
		fns := e.fnsPool[n-1]
		e.fnsPool = e.fnsPool[:n-1]
		return fns
	}
	return nil
}

// At schedules fn to run at time at. Times in the past are clamped to
// the current time, preserving FIFO order among same-time events. The
// name is used only for diagnostics.
func (e *Engine) At(at time.Time, name string, fn func()) Timer {
	if fn == nil {
		panic("simclock: nil event callback")
	}
	if e.ref != nil {
		return e.refAt(at, name, fn)
	}
	rel := e.rel(at)
	if rel < e.now {
		rel = e.now
	}
	e.seq++
	e.scheduled++
	e.pending++
	idx := e.alloc()
	r := &e.recs[idx]
	r.at, r.seq, r.fn, r.name = rel, e.seq, fn, name
	r.n, r.cur, r.lane = 1, 0, DefaultLane
	if rel == e.now {
		e.laneAppend(DefaultLane, idx)
	} else {
		e.wheelInsert(idx)
	}
	return Timer{eng: e, idx: idx, gen: r.gen}
}

// After schedules fn to run d from now. Negative durations are
// clamped to zero.
func (e *Engine) After(d time.Duration, name string, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	if e.ref != nil {
		return e.refAt(e.ref.now.Add(d), name, fn)
	}
	return e.atRel(e.now+int64(d), name, fn)
}

// atRel is At on the relative timeline, skipping the conversion.
func (e *Engine) atRel(rel int64, name string, fn func()) Timer {
	if fn == nil {
		panic("simclock: nil event callback")
	}
	if rel < e.now {
		rel = e.now
	}
	e.seq++
	e.scheduled++
	e.pending++
	idx := e.alloc()
	r := &e.recs[idx]
	r.at, r.seq, r.fn, r.name = rel, e.seq, fn, name
	r.n, r.cur, r.lane = 1, 0, DefaultLane
	if rel == e.now {
		e.laneAppend(DefaultLane, idx)
	} else {
		e.wheelInsert(idx)
	}
	return Timer{eng: e, idx: idx, gen: r.gen}
}

// AtBatch schedules len(fns) callbacks to fire at time at, in slice
// order, on the given lane. The batch occupies one record and one
// contiguous seq block, so it costs a single heap settle (or a single
// lane append when at is the executing instant) regardless of size —
// the k-events-at-one-instant pattern of dispatch cascades,
// completion batches, and provisioning waves. Batch entries are not
// individually cancellable; callers that need cancellation use At.
// The engine copies fns, so the caller may reuse the slice.
func (e *Engine) AtBatch(at time.Time, lane Lane, name string, fns []func()) {
	n := len(fns)
	if n == 0 {
		return
	}
	for _, fn := range fns {
		if fn == nil {
			panic("simclock: nil event callback in batch")
		}
	}
	if e.ref != nil {
		for _, fn := range fns {
			e.refAt(at, name, fn)
		}
		return
	}
	rel := e.rel(at)
	e.batchRel(rel, lane, name, fns, nil, n)
}

// AfterBatch schedules len(fns) callbacks to fire d from now; see
// AtBatch. Negative durations are clamped to zero.
func (e *Engine) AfterBatch(d time.Duration, lane Lane, name string, fns []func()) {
	if d < 0 {
		d = 0
	}
	n := len(fns)
	if n == 0 {
		return
	}
	for _, fn := range fns {
		if fn == nil {
			panic("simclock: nil event callback in batch")
		}
	}
	if e.ref != nil {
		at := e.ref.now.Add(d)
		for _, fn := range fns {
			e.refAt(at, name, fn)
		}
		return
	}
	e.batchRel(e.now+int64(d), lane, name, fns, nil, n)
}

// AfterBatchN schedules n firings of the same callback d from now on
// the given lane — a batch without the callback slice, for waves of
// identical work such as a provisioning round. See AtBatch for batch
// semantics.
func (e *Engine) AfterBatchN(d time.Duration, lane Lane, name string, n int, fn func()) {
	if fn == nil {
		panic("simclock: nil event callback")
	}
	if n <= 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	if e.ref != nil {
		at := e.ref.now.Add(d)
		for i := 0; i < n; i++ {
			e.refAt(at, name, fn)
		}
		return
	}
	e.batchRel(e.now+int64(d), lane, name, nil, fn, n)
}

// batchRel installs a batch record at relative time rel. Exactly one
// of fns (copied) or fn (repeated) carries the callbacks.
func (e *Engine) batchRel(rel int64, lane Lane, name string, fns []func(), fn func(), n int) {
	if lane < 0 || int(lane) >= len(e.lanes) {
		panic(fmt.Sprintf("simclock: unknown lane %d", lane))
	}
	if rel < e.now {
		rel = e.now
	}
	first := e.seq + 1
	e.seq += uint64(n)
	e.scheduled += uint64(n)
	e.pending += n
	idx := e.alloc()
	r := &e.recs[idx]
	r.at, r.seq, r.name, r.lane = rel, first, name, lane
	r.n, r.cur = int32(n), 0
	if fns != nil {
		r.fns = append(e.takeFns(), fns...)
	} else {
		r.fn = fn
	}
	if rel == e.now {
		e.laneAppend(lane, idx)
	} else {
		e.wheelInsert(idx)
	}
}

// --- lane buckets and the head merge ---

// laneAppend places a record at the tail of its lane's bucket for the
// executing instant. Appends always arrive in ascending seq order —
// direct schedules use the monotone global counter and epoch drains
// pop the far heap in (time, seq) order — so the bucket stays sorted
// without comparisons.
func (e *Engine) laneAppend(lane Lane, idx int32) {
	b := &e.lanes[lane]
	e.recs[idx].heapIdx = recLane
	wasEmpty := b.head == len(b.recs)
	b.recs = append(b.recs, idx)
	if wasEmpty {
		e.headsPush(lane)
	}
}

// headKey is the seq of the lane's next unconsumed callback. A batch
// record advances its key by one per firing; the key cannot overtake
// another lane's because seq blocks are contiguous and disjoint.
func (e *Engine) headKey(lane Lane) uint64 {
	b := &e.lanes[lane]
	r := &e.recs[b.recs[b.head]]
	return r.seq + uint64(r.cur)
}

// headsPush adds a newly active lane to the head-merge heap.
func (e *Engine) headsPush(lane Lane) {
	e.heads = append(e.heads, lane)
	i := len(e.heads) - 1
	key := e.headKey(lane)
	for i > 0 {
		p := (i - 1) / 2
		if key >= e.headKey(e.heads[p]) {
			break
		}
		e.heads[i] = e.heads[p]
		i = p
	}
	e.heads[i] = lane
}

// headsFix restores the heap after the root lane's key advanced.
func (e *Engine) headsFix() {
	h := e.heads
	n := len(h)
	i := 0
	lane := h[0]
	key := e.headKey(lane)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		ck := e.headKey(h[c])
		if r := c + 1; r < n {
			if rk := e.headKey(h[r]); rk < ck {
				c, ck = r, rk
			}
		}
		if key <= ck {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = lane
}

// headsPop removes the root lane (its bucket is exhausted).
func (e *Engine) headsPop() {
	n := len(e.heads) - 1
	e.heads[0] = e.heads[n]
	e.heads = e.heads[:n]
	if n > 0 {
		e.headsFix()
	}
}

// consumeHead retires the root lane's head record and rebalances the
// merge heap.
func (e *Engine) consumeHead() {
	lane := e.heads[0]
	b := &e.lanes[lane]
	idx := b.recs[b.head]
	b.head++
	e.recycle(idx)
	if b.head == len(b.recs) {
		b.head = 0
		b.recs = b.recs[:0]
		e.headsPop()
	} else {
		e.headsFix()
	}
}

// Step executes the single next event, advancing the clock to its
// scheduled time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.ref != nil {
		return e.refStep()
	}
	return e.step(math.MaxInt64)
}

// step executes the single next event whose scheduled time is at most
// limit. Phantom advances (canceled records holding a slot's cached
// minimum) fire nothing and loop.
func (e *Engine) step(limit int64) bool {
	for {
		if len(e.heads) == 0 {
			if !e.advance(limit) {
				return false
			}
			continue
		}
		if e.now > limit {
			return false
		}
		b := &e.lanes[e.heads[0]]
		r := &e.recs[b.recs[b.head]]
		if r.stopped {
			e.consumeHead()
			continue
		}
		var fn func()
		if r.fns != nil {
			fn = r.fns[r.cur]
		} else {
			fn = r.fn
		}
		r.cur++
		if r.cur >= r.n {
			e.consumeHead()
		}
		e.processed++
		e.pending--
		fn()
		return true
	}
}

// Run executes events until the queue is empty. Most simulations end
// naturally when their workload completes and periodic controllers
// have been stopped; use RunUntil to bound runaway simulations.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with scheduled time <= deadline, then
// advances the clock to deadline. Events after the deadline remain
// queued.
func (e *Engine) RunUntil(deadline time.Time) {
	if e.ref != nil {
		e.refRunUntil(deadline)
		return
	}
	relD := e.rel(deadline)
	for e.step(relD) {
	}
	if e.now < relD {
		e.now = relD
	}
}

// refRunUntil is RunUntil on the reference core.
func (e *Engine) refRunUntil(deadline time.Time) {
	c := e.ref
	for {
		at, ok := e.refNextAt()
		if !ok || at.After(deadline) {
			break
		}
		e.refStep()
	}
	if c.now.Before(deadline) {
		c.now = deadline
	}
}

// RunFor runs the simulation for d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.Now().Add(d))
}

// RunWhile executes events while cond returns true and events remain.
// cond is checked before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// --- far-horizon timing wheel ---

// The far queue is a hierarchical timing wheel rather than a heap: a
// heap pays O(log n) cache-missing sifts per event, and a dispatch
// storm holds hundreds of thousands of pending completions. The wheel
// inserts in O(1) — pick the lowest level whose 256-slot window
// covers the event, append to the slot's bucket — and finds the next
// instant by scanning six 256-bit occupancy bitmaps.
//
// Level L slots are 2^(20+8L) ns wide (≈1.05 ms at level 0), so six
// levels cover any int64 horizon. A slot's bucket holds records in
// arbitrary order; exact firing order is restored at drain time:
// advance collects the records bearing the new instant and sorts them
// by seq — the engine's authoritative total order — before handing
// them to the lane buckets. The observable schedule is therefore
// byte-identical to the heap's (time, seq) order; the differential
// suite pins this.
//
// A slot index is the absolute slot number masked to the level width.
// The insert rule (absolute slot within 256 of the clock's current
// slot) makes the mapping bijective, and a bucket can never mix
// events from different window laps: the clock only advances to the
// minimum pending instant, so a cursor never passes an occupied slot
// — it lands on it, and the slot is drained (level 0) or cascaded to
// lower levels (levels 1+) before the window moves on.
//
// Cancellation is lazy: Timer.Stop marks the record stopped and the
// wheel recycles it when its slot drains, or opportunistically when a
// minimum scan walks over it. The eager removal a heap needs to keep
// re-armed timers from burying the queue is unnecessary here — a
// canceled record costs its slot nothing until its instant arrives.

const (
	wheelShift0 = 20 // level-0 slot width 2^20 ns ≈ 1.05 ms
	wheelBits   = 8  // slots per level = 256
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 6 // level 5 slots are ~36 years; covers any horizon
)

func wheelShift(level int) uint { return uint(wheelShift0 + wheelBits*level) }

// wheelLevel is one wheel: 256 slots plus an occupancy bitmap so the
// minimum scan touches only four words when the level is idle. Each
// slot heads an intrusive singly linked list threaded through
// rec.next, so insertion never allocates — the pointer lives in slab
// padding the record already paid for.
type wheelLevel struct {
	occ  [wheelSlots / 64]uint64
	head [wheelSlots]int32 // slab index of first record; -1 = empty
	// min caches the earliest at in each occupied slot (valid only
	// while the occupancy bit is set), so the minimum scan reads one
	// word per level instead of walking slot lists that can hold
	// hundreds of thousands of pending completions. Lazily canceled
	// records may leave the cache below the true live minimum; advance
	// tolerates that by firing nothing at the phantom instant and
	// letting the drain recycle them.
	min [wheelSlots]int64
}

func (lv *wheelLevel) empty() bool {
	return lv.occ[0]|lv.occ[1]|lv.occ[2]|lv.occ[3] == 0
}

// firstSlot returns the absolute slot number and bucket index of the
// first occupied slot in the window [cur, cur+256), scanning the
// bitmap circularly from the cursor.
func (lv *wheelLevel) firstSlot(cur int64) (int64, int, bool) {
	c := int(cur & wheelMask)
	w := c >> 6
	m := lv.occ[w] &^ ((1 << uint(c&63)) - 1)
	for i := 0; ; i++ {
		if m != 0 {
			b := w<<6 + bits.TrailingZeros64(m)
			return cur + int64((b-c)&wheelMask), b, true
		}
		if i == wheelSlots/64 {
			return 0, 0, false
		}
		w = (w + 1) & (wheelSlots/64 - 1)
		m = lv.occ[w]
		if i == wheelSlots/64-1 {
			// Wrapped back to the cursor word: only the low bits
			// (absolute slots cur+192..cur+255) remain unseen.
			m &= (1 << uint(c&63)) - 1
		}
	}
}

// wheelInsert places a record (at > now) into the lowest level whose
// window covers its instant.
func (e *Engine) wheelInsert(idx int32) {
	r := &e.recs[idx]
	for level := 0; ; level++ {
		sh := wheelShift(level)
		s := r.at >> sh
		if s-(e.now>>sh) >= wheelSlots {
			continue
		}
		b := int(s & wheelMask)
		lv := &e.wheel[level]
		if lv.head[b] == -1 {
			lv.min[b] = r.at
		} else if r.at < lv.min[b] {
			lv.min[b] = r.at
		}
		r.next = lv.head[b]
		lv.head[b] = idx
		lv.occ[b>>6] |= 1 << uint(b&63)
		r.heapIdx = recWheel
		e.wheelCnt++
		return
	}
}

// cleanSlot unlinks lazily canceled records from a slot's list,
// recycling them, recomputes the slot's cached minimum, and clears
// the occupancy bit if the slot empties. Returns the head of the
// compacted list.
func (e *Engine) cleanSlot(lv *wheelLevel, b int) int32 {
	h := lv.head[b]
	prev := int32(-1)
	min := int64(math.MaxInt64)
	for idx := h; idx != -1; {
		next := e.recs[idx].next
		if e.recs[idx].stopped {
			e.wheelCnt--
			e.recycle(idx)
			if prev == -1 {
				h = next
			} else {
				e.recs[prev].next = next
			}
		} else {
			prev = idx
			if e.recs[idx].at < min {
				min = e.recs[idx].at
			}
		}
		idx = next
	}
	lv.head[b] = h
	if h == -1 {
		lv.occ[b>>6] &^= 1 << uint(b&63)
	} else {
		lv.min[b] = min
	}
	return h
}

// wheelMin returns the earliest pending instant across all levels.
// Each level's first occupied slot necessarily holds that level's
// earliest record (slot order is coarse time order), so the global
// minimum is the min over at most six cached slot minimums — no list
// walk on the common path. A cached minimum below the clock can only
// come from records canceled and then lapped by the cursor; such a
// slot holds no live work earlier than the clock, so it is cleaned
// (walked once, canceled records recycled) and the level rescanned.
// The result may still be a canceled record's instant (a phantom);
// advance fires nothing there and the drain recycles the record.
func (e *Engine) wheelMin() (int64, bool) {
	if e.wheelCnt == 0 {
		return 0, false
	}
	best := int64(math.MaxInt64)
	found := false
	for level := 0; level < wheelLevels; level++ {
		lv := &e.wheel[level]
		cur := e.now >> wheelShift(level)
		for !lv.empty() {
			_, b, ok := lv.firstSlot(cur)
			if !ok {
				break
			}
			if lv.min[b] < e.now {
				if e.cleanSlot(lv, b) == -1 {
					continue // slot was all canceled; rescan the level
				}
			}
			if lv.min[b] < best {
				best = lv.min[b]
			}
			found = true
			break
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// advance moves the clock to the next scheduled instant and performs
// the epoch merge: cascade every higher-level slot the cursor landed
// on down the hierarchy, then drain the level-0 slot's records
// bearing the new timestamp into their lane buckets in ascending seq
// order. Records in the level-0 slot scheduled later in the same
// ~1 ms slot stay put for a later advance. Candidate instants may be
// phantoms (lazily canceled records holding a slot's cached minimum);
// advance hops through them, recycling as it goes, until a real event
// fires. Returns false when nothing fires at or before limit; if the
// wheel emptied, the clock is restored so canceled far-future events
// never stretch a run's elapsed time (a phantom hop below limit can
// persist — RunUntil clamps the clock to its deadline afterwards).
func (e *Engine) advance(limit int64) bool {
	entry := e.now
	for {
		t, ok := e.wheelMin()
		if !ok {
			// Everything left was canceled and has now been recycled.
			// Phantom hops may have moved the clock; no event fired, so
			// restore it (the wheel is empty — no window to disturb).
			e.now = entry
			return false
		}
		if t > limit {
			return false
		}
		if e.advanceTo(t) {
			return true
		}
	}
}

// advanceTo moves the clock to t, cascades, and drains; it reports
// whether any record fired (false means t was a phantom and the
// canceled records bearing it were recycled).
func (e *Engine) advanceTo(t int64) bool {
	e.now = t
	for level := wheelLevels - 1; level >= 1; level-- {
		lv := &e.wheel[level]
		cur := e.now >> wheelShift(level)
		b := int(cur & wheelMask)
		if lv.occ[b>>6]&(1<<uint(b&63)) == 0 {
			continue
		}
		h := lv.head[b]
		lv.head[b] = -1
		lv.occ[b>>6] &^= 1 << uint(b&63)
		for idx := h; idx != -1; {
			next := e.recs[idx].next
			e.wheelCnt--
			if e.recs[idx].stopped {
				e.recycle(idx)
			} else {
				// Re-lands at a lower level: the record shares this
				// level's slot with now, so its next-level slot is
				// within that window.
				e.wheelInsert(idx)
			}
			idx = next
		}
	}
	lv := &e.wheel[0]
	cur := e.now >> wheelShift(0)
	b := int(cur & wheelMask)
	e.fires = e.fires[:0]
	if lv.occ[b>>6]&(1<<uint(b&63)) != 0 {
		keep := int32(-1)
		keepMin := int64(math.MaxInt64)
		for idx := lv.head[b]; idx != -1; {
			r := &e.recs[idx]
			next := r.next
			if r.stopped {
				e.wheelCnt--
				e.recycle(idx)
			} else if r.at == t {
				e.fires = append(e.fires, idx)
			} else {
				r.next = keep
				keep = idx
				if r.at < keepMin {
					keepMin = r.at
				}
			}
			idx = next
		}
		lv.head[b] = keep
		if keep == -1 {
			lv.occ[b>>6] &^= 1 << uint(b&63)
		} else {
			lv.min[b] = keepMin
		}
		e.wheelCnt -= len(e.fires)
	}
	if len(e.fires) == 0 {
		return false
	}
	if len(e.fires) > 1 {
		e.sortBySeq(e.fires)
	}
	for _, idx := range e.fires {
		e.laneAppend(e.recs[idx].lane, idx)
	}
	return true
}

// sortBySeq orders drained record indices by seq: insertion sort for
// the common handful, falling back to slices.SortFunc when an instant
// carries an unusually wide unbatched fan-in.
func (e *Engine) sortBySeq(s []int32) {
	if len(s) > 32 {
		slices.SortFunc(s, func(a, b int32) int {
			return cmp.Compare(e.recs[a].seq, e.recs[b].seq)
		})
		return
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		key := e.recs[v].seq
		j := i - 1
		for j >= 0 && e.recs[s[j]].seq > key {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// --- tickers ---

// Ticker runs a callback periodically until stopped. The re-arm
// closure is bound once at construction and reused for every firing,
// so a steady ticker allocates nothing after Every returns.
type Ticker struct {
	e       *Engine
	period  time.Duration
	name    string
	fn      func()
	run     func() // persistent firing closure; see Every
	timer   Timer
	stopped bool
}

// Every schedules fn to run every period, with the first firing one
// period from now. It panics if period is not positive.
func (e *Engine) Every(period time.Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive ticker period %v", period))
	}
	t := &Ticker{e: e, period: period, name: name, fn: fn}
	t.run = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.timer = t.e.After(t.period, t.name, t.run)
		}
	}
	t.timer = e.After(period, name, t.run)
	return t
}

// Stop cancels the ticker; no further firings occur.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Reset changes the ticker period and restarts the wait from now.
func (t *Ticker) Reset(period time.Duration) {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive ticker period %v", period))
	}
	if t.stopped {
		return
	}
	t.period = period
	t.timer.Stop()
	t.timer = t.e.After(t.period, t.name, t.run)
}
