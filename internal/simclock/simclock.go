// Package simclock provides a deterministic discrete-event simulation
// engine: a virtual clock, an ordered event queue with stable
// tie-breaking, cancellable timers and periodic tickers.
//
// Every simulated component in this repository (the Kubernetes
// control plane, the Work Queue master, the autoscalers, the network
// model) schedules callbacks on a single Engine, so a complete
// multi-hour cluster run executes in milliseconds and is exactly
// reproducible for a given seed.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock exposes the current time. Both the simulation Engine and
// RealClock implement it, so components can run in either mode.
type Clock interface {
	Now() time.Time
}

// RealClock is a Clock backed by the wall clock.
type RealClock struct{}

// Now returns the current wall-clock time.
func (RealClock) Now() time.Time { return time.Now() }

// event is a scheduled callback. Fired and canceled events return to
// the engine's free list, so a steady event stream allocates nothing;
// gen distinguishes a recycled event from the one a Timer was issued
// for.
type event struct {
	at       time.Time
	seq      uint64 // tie-breaker: FIFO among equal times
	gen      uint64 // incremented on recycle; Timers validate it
	fn       func()
	name     string
	eng      *Engine
	canceled bool
	index    int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulation engine.
// It is not safe for concurrent use; all callbacks run on the
// goroutine that calls Run/RunUntil/Step.
type Engine struct {
	now       time.Time
	start     time.Time
	events    eventHeap
	free      []*event // recycled events
	seq       uint64
	processed uint64
	scheduled uint64
}

// NewEngine returns an Engine whose clock starts at start.
func NewEngine(start time.Time) *Engine {
	return &Engine{now: start, start: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Elapsed returns the virtual time elapsed since the engine started.
func (e *Engine) Elapsed() time.Duration { return e.now.Sub(e.start) }

// Pending returns the number of scheduled, non-canceled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// Processed returns the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Scheduled returns the total number of events ever scheduled via
// At/After/Every, including ones later canceled. Tests use the delta
// across an operation to assert that read paths do not re-arm timers.
func (e *Engine) Scheduled() uint64 { return e.scheduled }

// Timer is a handle to a scheduled event; Stop cancels it. The zero
// Timer is valid and Stop on it is a no-op, so a Timer field needs no
// nil check. Timers are values — copying one is fine, and holding a
// Timer past its event's firing is safe (Stop just reports false).
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the timer. It reports whether the event had not yet
// fired (and had not already been stopped). The event is removed from
// the queue eagerly — components that re-arm a timer on every state
// change (the network model's completion timer) would otherwise bury
// the queue in canceled entries and pay their log factor on every
// pop.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.canceled {
		return false
	}
	if ev.index == -1 {
		// Already popped (fired or firing).
		return false
	}
	ev.canceled = true
	heap.Remove(&ev.eng.events, ev.index)
	ev.eng.recycle(ev)
	return true
}

// alloc takes an event from the free list, or makes one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a popped event to the free list; bumping gen
// invalidates any Timer still pointing at it.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.name = ""
	ev.canceled = false
	e.free = append(e.free, ev)
}

// At schedules fn to run at time at. Times in the past are clamped to
// the current time, preserving FIFO order among same-time events. The
// name is used only for diagnostics.
func (e *Engine) At(at time.Time, name string, fn func()) Timer {
	if fn == nil {
		panic("simclock: nil event callback")
	}
	if at.Before(e.now) {
		at = e.now
	}
	e.seq++
	e.scheduled++
	ev := e.alloc()
	ev.at, ev.seq, ev.fn, ev.name, ev.eng = at, e.seq, fn, name, e
	heap.Push(&e.events, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now. Negative durations are
// clamped to zero.
func (e *Engine) After(d time.Duration, name string, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), name, fn)
}

// Ticker runs a callback periodically until stopped.
type Ticker struct {
	e       *Engine
	period  time.Duration
	name    string
	fn      func()
	timer   Timer
	stopped bool
}

// Every schedules fn to run every period, with the first firing one
// period from now. It panics if period is not positive.
func (e *Engine) Every(period time.Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive ticker period %v", period))
	}
	t := &Ticker{e: e, period: period, name: name, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.timer = t.e.After(t.period, t.name, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels the ticker; no further firings occur.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Reset changes the ticker period and restarts the wait from now.
func (t *Ticker) Reset(period time.Duration) {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive ticker period %v", period))
	}
	if t.stopped {
		return
	}
	t.period = period
	t.timer.Stop()
	t.schedule()
}

// Step executes the single next event, advancing the clock to its
// scheduled time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		if ev.at.After(e.now) {
			e.now = ev.at
		}
		e.processed++
		fn := ev.fn
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty. Most simulations end
// naturally when their workload completes and periodic controllers
// have been stopped; use RunUntil to bound runaway simulations.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with scheduled time <= deadline, then
// advances the clock to deadline. Events after the deadline remain
// queued.
func (e *Engine) RunUntil(deadline time.Time) {
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.canceled {
			e.recycle(heap.Pop(&e.events).(*event))
			continue
		}
		if next.at.After(deadline) {
			break
		}
		e.Step()
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
}

// RunFor runs the simulation for d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}

// RunWhile executes events while cond returns true and events remain.
// cond is checked before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}
