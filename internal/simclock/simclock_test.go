package simclock

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func TestAtRunsInTimeOrder(t *testing.T) {
	e := NewEngine(t0)
	var got []int
	e.At(t0.Add(3*time.Second), "c", func() { got = append(got, 3) })
	e.At(t0.Add(1*time.Second), "a", func() { got = append(got, 1) })
	e.At(t0.Add(2*time.Second), "b", func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Elapsed() != 3*time.Second {
		t.Errorf("Elapsed = %v, want 3s", e.Elapsed())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine(t0)
	var got []int
	at := t0.Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		e.At(at, "x", func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestPastEventClampedToNow(t *testing.T) {
	e := NewEngine(t0)
	e.At(t0.Add(10*time.Second), "advance", func() {
		fired := false
		e.At(t0.Add(5*time.Second), "past", func() { fired = true })
		// The past event must run at the current time, not rewind.
		e.Step()
		if !fired {
			t.Error("past event did not fire")
		}
		if !e.Now().Equal(t0.Add(10 * time.Second)) {
			t.Errorf("clock rewound to %v", e.Now())
		}
	})
	e.Run()
}

func TestNegativeAfterClamped(t *testing.T) {
	e := NewEngine(t0)
	fired := false
	e.After(-time.Hour, "neg", func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
	if !e.Now().Equal(t0) {
		t.Errorf("clock moved to %v", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(t0)
	fired := false
	tm := e.After(time.Second, "x", func() { fired = true })
	if !tm.Stop() {
		t.Error("first Stop should report true")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	e.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after Run", e.Pending())
	}
}

func TestStopAfterFireReportsFalse(t *testing.T) {
	e := NewEngine(t0)
	tm := e.After(time.Second, "x", func() {})
	e.Run()
	if tm.Stop() {
		t.Error("Stop after firing should report false")
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := NewEngine(t0)
	var times []time.Duration
	tk := e.Every(10*time.Second, "tick", func() {
		times = append(times, e.Elapsed())
	})
	e.RunFor(35 * time.Second)
	tk.Stop()
	e.Run()
	want := []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second}
	if len(times) != len(want) {
		t.Fatalf("ticker fired %d times (%v), want %d", len(times), times, len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("firing %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine(t0)
	n := 0
	var tk *Ticker
	tk = e.Every(time.Second, "tick", func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3", n)
	}
}

func TestTickerReset(t *testing.T) {
	e := NewEngine(t0)
	var times []time.Duration
	tk := e.Every(10*time.Second, "tick", func() {
		times = append(times, e.Elapsed())
	})
	e.RunFor(10 * time.Second) // first firing at 10s
	tk.Reset(5 * time.Second)  // next at 15s, 20s, ...
	e.RunFor(11 * time.Second) // until t=21s
	tk.Stop()
	e.Run()
	want := []time.Duration{10 * time.Second, 15 * time.Second, 20 * time.Second}
	if len(times) != len(want) {
		t.Fatalf("firings %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("firing %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine(t0)
	fired := 0
	e.After(time.Second, "a", func() { fired++ })
	e.After(time.Hour, "b", func() { fired++ })
	e.RunUntil(t0.Add(time.Minute))
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if !e.Now().Equal(t0.Add(time.Minute)) {
		t.Errorf("Now = %v, want deadline", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Errorf("fired = %d after Run, want 2", fired)
	}
}

func TestRunWhile(t *testing.T) {
	e := NewEngine(t0)
	n := 0
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*time.Second, "x", func() { n++ })
	}
	e.RunWhile(func() bool { return n < 4 })
	if n != 4 {
		t.Errorf("n = %d, want 4", n)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(t0)
	var order []string
	e.After(time.Second, "outer", func() {
		order = append(order, "outer")
		e.After(time.Second, "inner", func() { order = append(order, "inner") })
	})
	e.Run()
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
	if e.Elapsed() != 2*time.Second {
		t.Errorf("Elapsed = %v, want 2s", e.Elapsed())
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil callback")
		}
	}()
	NewEngine(t0).After(time.Second, "nil", nil)
}

func TestNonPositiveTickerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero period")
		}
	}()
	NewEngine(t0).Every(0, "bad", func() {})
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine(t0)
	for i := 0; i < 5; i++ {
		e.After(time.Duration(i)*time.Second, "x", func() {})
	}
	e.Run()
	if e.Processed() != 5 {
		t.Errorf("Processed = %d, want 5", e.Processed())
	}
}

// Property: for any set of offsets, events fire in non-decreasing
// time order and the clock never moves backwards.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine(t0)
		var fireTimes []time.Time
		for _, off := range offsets {
			d := time.Duration(off) * time.Millisecond
			e.After(d, "p", func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		if len(fireTimes) != len(offsets) {
			return false
		}
		return sort.SliceIsSorted(fireTimes, func(i, j int) bool {
			return fireTimes[i].Before(fireTimes[j])
		}) || isNonDecreasing(fireTimes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func isNonDecreasing(ts []time.Time) bool {
	for i := 1; i < len(ts); i++ {
		if ts[i].Before(ts[i-1]) {
			return false
		}
	}
	return true
}

// Property: every scheduled event fires exactly once unless stopped.
func TestPropertyExactlyOnce(t *testing.T) {
	f := func(offsets []uint8, stopMask []bool) bool {
		e := NewEngine(t0)
		fired := make([]int, len(offsets))
		timers := make([]Timer, len(offsets))
		for i, off := range offsets {
			i := i
			timers[i] = e.After(time.Duration(off)*time.Second, "p", func() { fired[i]++ })
		}
		stopped := make([]bool, len(offsets))
		for i := range timers {
			if i < len(stopMask) && stopMask[i] {
				stopped[i] = timers[i].Stop()
			}
		}
		e.Run()
		for i := range fired {
			want := 1
			if stopped[i] {
				want = 0
			}
			if fired[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestTruncNormalBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := g.TruncNormal(157.4, 4.2, 100, 200)
		if v < 100 || v > 200 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestTruncNormalMoments(t *testing.T) {
	g := NewRNG(7)
	n := 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := g.TruncNormal(157.4, 4.2, 0, 1000)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean-157.4) > 0.5 {
		t.Errorf("mean = %.2f, want ≈157.4", mean)
	}
	if math.Abs(std-4.2) > 0.5 {
		t.Errorf("std = %.2f, want ≈4.2", std)
	}
}

func TestJitterBounds(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := g.Jitter(100, 0.2)
		if v < 80 || v > 120 {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
	}
	if g.Jitter(50, 0) != 50 {
		t.Error("zero-fraction jitter must be identity")
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = RealClock{}
	before := time.Now()
	now := c.Now()
	after := time.Now()
	if now.Before(before) || now.After(after) {
		t.Errorf("RealClock.Now out of range")
	}
}

// --- batch scheduling ---

func TestAtBatchFiresInSliceOrder(t *testing.T) {
	e := NewEngine(t0)
	lane := e.NewLane("test")
	var got []int
	before := e.After(time.Second, "before", func() { got = append(got, -1) })
	_ = before
	fns := make([]func(), 5)
	for i := range fns {
		i := i
		fns[i] = func() { got = append(got, i) }
	}
	e.AtBatch(t0.Add(time.Second), lane, "batch", fns)
	e.After(time.Second, "after", func() { got = append(got, 99) })
	e.Run()
	want := []int{-1, 0, 1, 2, 3, 4, 99}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if e.Processed() != 7 {
		t.Errorf("Processed = %d, want 7", e.Processed())
	}
}

func TestAfterBatchNRepeatsCallback(t *testing.T) {
	e := NewEngine(t0)
	n := 0
	e.AfterBatchN(time.Second, DefaultLane, "batchN", 4, func() { n++ })
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", e.Pending())
	}
	e.Run()
	if n != 4 {
		t.Fatalf("callback ran %d times, want 4", n)
	}
	if !e.Now().Equal(t0.Add(time.Second)) {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestBatchAtCurrentInstant(t *testing.T) {
	e := NewEngine(t0)
	lane := e.NewLane("test")
	var got []int
	e.After(time.Second, "outer", func() {
		fns := []func(){
			func() { got = append(got, 1) },
			func() { got = append(got, 2) },
		}
		e.AfterBatch(0, lane, "inner", fns)
		e.After(0, "single-after", func() { got = append(got, 3) })
	})
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
	if e.Elapsed() != time.Second {
		t.Errorf("Elapsed = %v, want 1s", e.Elapsed())
	}
}

// Lanes shard storage, not ordering: same-instant events fire in
// global schedule order regardless of which lane they land in.
func TestLanesPreserveGlobalOrder(t *testing.T) {
	e := NewEngine(t0)
	a, b := e.NewLane("a"), e.NewLane("b")
	var got []int
	at := t0.Add(time.Second)
	e.AtBatch(at, b, "b1", []func(){func() { got = append(got, 0) }, func() { got = append(got, 1) }})
	e.At(at, "plain", func() { got = append(got, 2) })
	e.AtBatch(at, a, "a1", []func(){func() { got = append(got, 3) }})
	e.AtBatch(at, b, "b2", []func(){func() { got = append(got, 4) }})
	e.Run()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("order = %v, want [0 1 2 3 4]", got)
		}
	}
}

func TestBatchRunWhileStopsMidBatch(t *testing.T) {
	e := NewEngine(t0)
	n := 0
	e.AfterBatchN(time.Second, DefaultLane, "batchN", 10, func() { n++ })
	e.RunWhile(func() bool { return n < 3 })
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", e.Pending())
	}
	e.Run()
	if n != 10 {
		t.Fatalf("n = %d after Run, want 10", n)
	}
}

// --- Pending counter ---

// Pending must stay exact through schedule/cancel/fire churn,
// including cancels of events already due at the executing instant
// (lane residents drain lazily but are uncounted immediately).
func TestPendingExactUnderChurn(t *testing.T) {
	e := NewEngine(t0)
	rng := NewRNG(11)
	var live []Timer
	fired, stopped := 0, 0
	for i := 0; i < 5000; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			live = append(live, e.After(time.Duration(rng.Intn(50))*time.Millisecond, "x", func() { fired++ }))
		case 2:
			if len(live) > 0 {
				k := rng.Intn(len(live))
				if live[k].Stop() {
					stopped++
				}
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		case 3:
			e.RunFor(time.Duration(rng.Intn(20)) * time.Millisecond)
		}
		// Invariant after every operation: everything scheduled has
		// either fired, been stopped, or is still pending.
		if want := int(e.Scheduled()) - fired - stopped; e.Pending() != want {
			t.Fatalf("op %d: Pending = %d, want scheduled(%d) - fired(%d) - stopped(%d) = %d",
				i, e.Pending(), e.Scheduled(), fired, stopped, want)
		}
	}
	if fired == 0 || stopped == 0 || e.Pending() == 0 {
		t.Fatalf("scenario degenerate: fired=%d stopped=%d pending=%d", fired, stopped, e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", e.Pending())
	}
}

// Pending is a counter read, not a queue walk: 200k probes against a
// 100k-event queue must complete almost instantly. A linear scan
// would cost ~2e10 record visits and trip the bound by orders of
// magnitude.
func TestPendingConstantTime(t *testing.T) {
	e := NewEngine(t0)
	for i := 0; i < 100000; i++ {
		e.After(time.Duration(i)*time.Millisecond, "x", func() {})
	}
	start := time.Now()
	sum := 0
	for i := 0; i < 200000; i++ {
		sum += e.Pending()
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("200k Pending probes took %v (linear scan?)", d)
	}
	if sum != 200000*100000 {
		t.Fatalf("Pending drifted: sum = %d", sum)
	}
	e.Run()
}

// --- ticker allocation ---

// A steady ticker reuses one bound closure for every firing; the
// per-firing allocation profile must be zero.
func TestTickerFiringAllocs(t *testing.T) {
	e := NewEngine(t0)
	n := 0
	tk := e.Every(time.Second, "tick", func() { n++ })
	e.RunFor(10 * time.Second) // warm the slab and free list
	avg := testing.AllocsPerRun(100, func() {
		e.RunFor(time.Second)
	})
	tk.Stop()
	if avg != 0 {
		t.Fatalf("ticker firing allocates %.1f objects/firing, want 0", avg)
	}
	if n < 100 {
		t.Fatalf("ticker fired %d times", n)
	}
}

// --- reference engine API parity ---

func TestReferenceEngineBasics(t *testing.T) {
	e := NewReferenceEngine(t0)
	if !e.Reference() {
		t.Fatal("Reference() = false")
	}
	var got []int
	lane := e.NewLane("x")
	e.AfterBatch(time.Second, lane, "b", []func(){func() { got = append(got, 1) }, func() { got = append(got, 2) }})
	e.AfterBatchN(time.Second, lane, "bn", 2, func() { got = append(got, 3) })
	tm := e.After(2*time.Second, "never", func() { got = append(got, 9) })
	if !tm.Stop() {
		t.Fatal("Stop = false")
	}
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", e.Pending())
	}
	e.Run()
	if len(got) != 4 || got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 3 {
		t.Fatalf("got %v", got)
	}
	if e.Elapsed() != time.Second {
		t.Errorf("Elapsed = %v", e.Elapsed())
	}
}
