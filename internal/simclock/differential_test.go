package simclock

import (
	"fmt"
	"testing"
	"time"
)

// The differential suite pins the lane-sharded int64 engine to the
// retained reference core (reference.go): both run an identical
// seeded multi-component scenario — dispatch-style zero-delay
// cascades, batch completions on per-component lanes, timer churn
// with cancellation, periodic controllers with Reset/Stop — and the
// firing logs must match event for event: same callback, same virtual
// time, same order, same Stop results, same Processed/Pending
// accounting. This is the house discipline from the kubesim and
// netsim rewrites; the scenario shapes mirror the real components'
// scheduling patterns.

// fireEntry is one observed firing: which logical callback ran and at
// what elapsed virtual time.
type fireEntry struct {
	id int64
	at time.Duration
}

// scenarioResult captures everything the comparison asserts on.
type scenarioResult struct {
	fires     []fireEntry
	stops     []bool // Timer.Stop return values, in stop order
	processed uint64
	pending   int
	elapsed   time.Duration
}

// runScenario drives a seeded multi-component workload on the given
// engine. The RNG is consumed inside callbacks as well as outside, so
// any ordering divergence between engines desynchronizes the streams
// and shows up as a log mismatch within a few events.
func runScenario(e *Engine, seed int64, rounds int) scenarioResult {
	rng := NewRNG(seed)
	var res scenarioResult
	var nextID int64

	// Component lanes: a master, a link, a control plane. DefaultLane
	// stands in for everything unlaned.
	lanes := []Lane{DefaultLane, e.NewLane("wq"), e.NewLane("netsim"), e.NewLane("kubesim")}

	record := func() (int64, func()) {
		nextID++
		id := nextID
		return id, func() {
			res.fires = append(res.fires, fireEntry{id: id, at: e.Elapsed()})
		}
	}

	// live holds cancellable timers; a fraction get stopped later —
	// some before firing, some after (Stop must report false then).
	var live []Timer

	dur := func() time.Duration {
		// Heavy mass at zero and small offsets: the clamped-past and
		// same-instant cases are where the lane buckets do their work.
		switch rng.Intn(5) {
		case 0:
			return 0
		case 1:
			return time.Duration(rng.Intn(3)) * time.Nanosecond
		default:
			return time.Duration(rng.Intn(5000)) * time.Millisecond
		}
	}

	// spawn schedules one random unit of work; callbacks re-enter it
	// (bounded by depth) to model dispatch cascades that schedule
	// more work from inside events.
	var spawn func(depth int)
	spawn = func(depth int) {
		switch rng.Intn(10) {
		case 0, 1, 2:
			_, fn := record()
			e.After(dur(), "single", fn)
		case 3, 4:
			id, fn := record()
			_ = id
			inner := fn
			d := dur()
			e.After(d, "cascade", func() {
				inner()
				if depth < 3 {
					spawn(depth + 1)
				}
			})
		case 5:
			// Batch of distinct callbacks on a component lane.
			lane := lanes[rng.Intn(len(lanes))]
			k := 1 + rng.Intn(6)
			fns := make([]func(), k)
			for i := range fns {
				_, fns[i] = record()
			}
			e.AfterBatch(dur(), lane, "batch", fns)
		case 6:
			// Homogeneous batch (AfterBatchN), provisioning-wave style.
			lane := lanes[rng.Intn(len(lanes))]
			k := 1 + rng.Intn(6)
			_, fn := record()
			// The shared callback fires k times; account each firing.
			e.AfterBatchN(dur(), lane, "batchN", k, fn)
		case 7:
			// Schedule then immediately cancel: must never fire.
			_, fn := record()
			t := e.After(dur(), "stopped", fn)
			res.stops = append(res.stops, t.Stop())
		case 8:
			_, fn := record()
			live = append(live, e.After(dur(), "maybe-stop", fn))
		case 9:
			// Zero-delay burst at the current instant.
			k := 1 + rng.Intn(4)
			for i := 0; i < k; i++ {
				_, fn := record()
				e.After(0, "burst", fn)
			}
		}
	}

	// Periodic controllers: one ticker self-stops, one resets its
	// period mid-run, one runs to the end and is stopped outside.
	tick1Fires := 0
	_, t1fn := record()
	var tk1 *Ticker
	tk1 = e.Every(700*time.Millisecond, "tick-selfstop", func() {
		t1fn()
		tick1Fires++
		if tick1Fires == 5 {
			tk1.Stop()
		}
	})
	_, t2fn := record()
	tk2 := e.Every(1100*time.Millisecond, "tick-reset", t2fn)
	_, t3fn := record()
	tk3 := e.Every(1900*time.Millisecond, "tick-outer", t3fn)

	for i := 0; i < rounds; i++ {
		spawn(0)
		if i%5 == 2 && len(live) > 0 {
			pick := rng.Intn(len(live))
			res.stops = append(res.stops, live[pick].Stop())
			live[pick] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if i%7 == 3 {
			e.RunFor(time.Duration(rng.Intn(2000)) * time.Millisecond)
		}
		if i == rounds/2 {
			tk2.Reset(400 * time.Millisecond)
		}
	}
	e.RunFor(20 * time.Second)
	tk2.Stop()
	tk3.Stop()
	// Stop the remaining live timers; most have fired (Stop false).
	for _, t := range live {
		res.stops = append(res.stops, t.Stop())
	}
	e.Run()

	res.processed = e.Processed()
	res.pending = e.Pending()
	res.elapsed = e.Elapsed()
	return res
}

// diffScenario runs the scenario on both engines and returns a
// description of the first divergence, or "" when identical.
func diffScenario(seed int64, rounds int) string {
	t0 := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	fast := runScenario(NewEngine(t0), seed, rounds)
	ref := runScenario(NewReferenceEngine(t0), seed, rounds)

	if len(fast.fires) != len(ref.fires) {
		return fmt.Sprintf("fired %d events, reference fired %d", len(fast.fires), len(ref.fires))
	}
	for i := range fast.fires {
		if fast.fires[i] != ref.fires[i] {
			return fmt.Sprintf("firing %d: engine %+v, reference %+v", i, fast.fires[i], ref.fires[i])
		}
	}
	if len(fast.stops) != len(ref.stops) {
		return fmt.Sprintf("recorded %d stops, reference %d", len(fast.stops), len(ref.stops))
	}
	for i := range fast.stops {
		if fast.stops[i] != ref.stops[i] {
			return fmt.Sprintf("stop %d: engine %v, reference %v", i, fast.stops[i], ref.stops[i])
		}
	}
	if fast.processed != ref.processed {
		return fmt.Sprintf("processed %d, reference %d", fast.processed, ref.processed)
	}
	if fast.pending != ref.pending {
		return fmt.Sprintf("pending %d, reference %d", fast.pending, ref.pending)
	}
	if fast.elapsed != ref.elapsed {
		return fmt.Sprintf("elapsed %v, reference %v", fast.elapsed, ref.elapsed)
	}
	return ""
}

// TestEngineDifferential pins the lane-sharded engine to the
// reference core over seeded multi-component runs.
func TestEngineDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			if d := diffScenario(seed, 400); d != "" {
				t.Fatalf("engines diverged: %s", d)
			}
		})
	}
}

// TestEngineDifferentialDeep runs fewer seeds for longer, pushing
// bucket reuse, slab recycling, and ticker churn through many epochs.
func TestEngineDifferentialDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep differential skipped in -short")
	}
	for _, seed := range []int64{42, 1905} {
		if d := diffScenario(seed, 3000); d != "" {
			t.Fatalf("seed %d: engines diverged: %s", seed, d)
		}
	}
}

// FuzzEngineDifferential fuzzes the scenario seed and size. The
// committed corpus (testdata/fuzz/FuzzEngineDifferential) holds the
// calibration seeds; CI runs a bounded pass with the corpus as seeds.
func FuzzEngineDifferential(f *testing.F) {
	f.Add(int64(1), uint16(50))
	f.Add(int64(7), uint16(200))
	f.Add(int64(42), uint16(400))
	f.Add(int64(1905), uint16(123))
	f.Add(int64(-3), uint16(31))
	f.Fuzz(func(t *testing.T, seed int64, rounds uint16) {
		r := int(rounds)%500 + 1
		if d := diffScenario(seed, r); d != "" {
			t.Fatalf("seed %d rounds %d: engines diverged: %s", seed, r, d)
		}
	})
}
