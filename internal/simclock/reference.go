package simclock

import (
	"container/heap"
	"time"
)

// This file retains the seed event core — a serial container/heap of
// pointer events keyed by time.Time — as a differential-testing oracle
// for the int64 lane-sharded core in simclock.go, the same discipline
// kubesim (reference.go, SetNaiveScheduling) and netsim
// (NewReferenceLink) use for their risky rewrites. NewReferenceEngine
// returns an *Engine whose scheduling routes through this core, so
// every component runs unmodified on either implementation and the
// differential suite can assert exact firing-order equality.

// refEvent is a scheduled callback in the reference core. Fired and
// canceled events return to the core's free list; gen distinguishes a
// recycled event from the one a Timer was issued for.
type refEvent struct {
	at       time.Time
	seq      uint64 // tie-breaker: FIFO among equal times
	gen      uint64 // incremented on recycle; Timers validate it
	fn       func()
	name     string
	eng      *Engine
	canceled bool
	index    int // heap index, -1 once popped
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }

func (h refHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// refCore is the retained serial event queue.
type refCore struct {
	now    time.Time
	start  time.Time
	events refHeap
	free   []*refEvent // recycled events
}

// NewReferenceEngine returns an Engine backed by the retained seed
// implementation: time.Time keys, container/heap boxing, pointer
// events. It is the oracle for the differential suite and the baseline
// for the engine benchmarks; behaviour is identical to NewEngine by
// construction.
func NewReferenceEngine(start time.Time) *Engine {
	return &Engine{base: start, ref: &refCore{now: start, start: start}}
}

// Reference reports whether the engine routes through the retained
// reference core.
func (e *Engine) Reference() bool { return e.ref != nil }

// refAlloc takes an event from the free list, or makes one.
func (c *refCore) refAlloc() *refEvent {
	if n := len(c.free); n > 0 {
		ev := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return ev
	}
	return &refEvent{}
}

// refRecycle returns a popped event to the free list; bumping gen
// invalidates any Timer still pointing at it.
func (c *refCore) refRecycle(ev *refEvent) {
	ev.gen++
	ev.fn = nil
	ev.name = ""
	ev.canceled = false
	c.free = append(c.free, ev)
}

// refAt is the reference-mode At: times in the past are clamped to the
// current time, preserving FIFO order among same-time events.
func (e *Engine) refAt(at time.Time, name string, fn func()) Timer {
	c := e.ref
	if at.Before(c.now) {
		at = c.now
	}
	e.seq++
	e.scheduled++
	e.pending++
	ev := c.refAlloc()
	ev.at, ev.seq, ev.fn, ev.name, ev.eng = at, e.seq, fn, name, e
	heap.Push(&c.events, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// refStop cancels a reference-mode timer. The event is removed from
// the queue eagerly — components that re-arm a timer on every state
// change (the network model's completion timer) would otherwise bury
// the queue in canceled entries and pay their log factor on every
// pop.
func refStop(ev *refEvent, gen uint64) bool {
	if ev == nil || ev.gen != gen || ev.canceled {
		return false
	}
	if ev.index == -1 {
		// Already popped (fired or firing).
		return false
	}
	ev.canceled = true
	eng := ev.eng
	heap.Remove(&eng.ref.events, ev.index)
	eng.pending--
	eng.ref.refRecycle(ev)
	return true
}

// refStep executes the single next event, advancing the clock to its
// scheduled time.
func (e *Engine) refStep() bool {
	c := e.ref
	for len(c.events) > 0 {
		ev := heap.Pop(&c.events).(*refEvent)
		if ev.canceled {
			c.refRecycle(ev)
			continue
		}
		if ev.at.After(c.now) {
			c.now = ev.at
		}
		e.processed++
		e.pending--
		fn := ev.fn
		c.refRecycle(ev)
		fn()
		return true
	}
	return false
}

// refNextAt reports the scheduled time of the next event, if any.
func (e *Engine) refNextAt() (time.Time, bool) {
	c := e.ref
	for len(c.events) > 0 {
		next := c.events[0]
		if next.canceled {
			c.refRecycle(heap.Pop(&c.events).(*refEvent))
			continue
		}
		return next.at, true
	}
	return time.Time{}, false
}
