package simclock

import (
	"testing"
	"time"
)

// BenchmarkEngineEventThroughput measures raw event scheduling and
// dispatch: the floor under every simulated experiment.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine(t0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Millisecond, "bench", func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkTimerStop measures cancellation cost.
func BenchmarkTimerStop(b *testing.B) {
	e := NewEngine(t0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := e.After(time.Hour, "bench", func() {})
		t.Stop()
		if i%4096 == 4095 {
			e.Run() // drain canceled events
		}
	}
}

// BenchmarkTickerChurn measures periodic-controller overhead.
func BenchmarkTickerChurn(b *testing.B) {
	e := NewEngine(t0)
	n := 0
	tk := e.Every(time.Second, "bench", func() { n++ })
	b.ResetTimer()
	e.RunUntil(t0.Add(time.Duration(b.N) * time.Second))
	b.StopTimer()
	tk.Stop()
	if n == 0 && b.N > 1 {
		b.Fatal("ticker never fired")
	}
}
