package simclock

import (
	"testing"
	"time"
)

// benchThroughput is the raw schedule+dispatch loop shared by the
// engine and reference variants: the floor under every simulated
// experiment.
func benchThroughput(b *testing.B, e *Engine) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Millisecond, "bench", func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineEventThroughput measures the lane-sharded int64 core.
func BenchmarkEngineEventThroughput(b *testing.B) {
	benchThroughput(b, NewEngine(t0))
}

// BenchmarkEngineEventThroughputReference measures the retained seed
// core (container/heap of pointer events keyed by time.Time) for the
// speedup comparison.
func BenchmarkEngineEventThroughputReference(b *testing.B) {
	benchThroughput(b, NewReferenceEngine(t0))
}

// benchBatch schedules waves of 64 same-instant events through the
// batch API: the k-events-one-settle pattern wq, netsim, and kubesim
// lean on.
func benchBatch(b *testing.B, e *Engine) {
	lane := e.NewLane("bench")
	const width = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i += width {
		e.AfterBatchN(time.Duration(i%1000)*time.Millisecond, lane, "bench", width, func() {})
		if i%(16*width) == 15*width {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineBatchThroughput measures per-event cost when events
// arrive through AfterBatchN (one heap settle per 64 events).
func BenchmarkEngineBatchThroughput(b *testing.B) {
	benchBatch(b, NewEngine(t0))
}

// BenchmarkEngineBatchThroughputReference: the reference core expands
// batches into individual heap pushes, so this shows the settle cost
// the batch API removes.
func BenchmarkEngineBatchThroughputReference(b *testing.B) {
	benchBatch(b, NewReferenceEngine(t0))
}

// BenchmarkTimerStop measures cancellation cost.
func BenchmarkTimerStop(b *testing.B) {
	e := NewEngine(t0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := e.After(time.Hour, "bench", func() {})
		t.Stop()
		if i%4096 == 4095 {
			e.Run() // drain canceled events
		}
	}
}

// BenchmarkTickerChurn measures periodic-controller overhead. A
// steady ticker must not allocate per firing: the callback closure is
// bound once in Every and reused, which the AllocsPerRun probe pins.
func BenchmarkTickerChurn(b *testing.B) {
	e := NewEngine(t0)
	n := 0
	tk := e.Every(time.Second, "bench", func() { n++ })
	e.RunFor(10 * time.Second) // warm the slab and free list
	if avg := testing.AllocsPerRun(100, func() { e.RunFor(time.Second) }); avg != 0 {
		b.Fatalf("ticker firing allocates %.1f objects, want 0", avg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.RunUntil(e.Now().Add(time.Duration(b.N) * time.Second))
	b.StopTimer()
	tk.Stop()
	if n == 0 && b.N > 1 {
		b.Fatal("ticker never fired")
	}
}
