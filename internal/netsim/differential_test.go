package netsim

import (
	"math"
	"testing"
	"time"

	"hta/internal/simclock"
)

// This file proves the virtual-time link equivalent to the retained
// reference implementation: random interleavings of Start, Cancel,
// SetDegradation, SetContention and reads are replayed against both,
// and the completion callbacks (order and times), cancel results and
// accumulated stats must agree. Callback order must match exactly;
// completion times get a drift budget with two terms. The fixed term
// is one nanosecond per completion: the reference accumulates
// remaining-MB incrementally, so its eta carries sub-nanosecond float
// drift, and when the true eta sits within that drift of an exact
// nanosecond boundary the ceil-to-ns rounding can flip by one — every
// downstream event then shifts with it. The relative term is 1e-12 of
// the completion instant: at adversarially low rates (1 % degradation
// compounded with contention across many streams) an ulp of error in
// remaining-MB divides by the tiny rate into tens of nanoseconds of
// eta, so absolute drift scales with elapsed virtual time — a
// fuzz-found 18-simulated-hour run diverged by 40 ns, about 6e-13 of
// its runtime. 1e-12 (≈4500 ulp) bounds that mechanism with margin
// while still asserting sub-microsecond agreement per simulated
// fortnight.

const (
	opStart = iota
	opCancel
	opSetDegradation
	opSetContention
	opRead
)

type linkOp struct {
	gap    time.Duration // delay after the previous op
	kind   int
	size   float64 // opStart
	target int     // opCancel: index into transfers started so far
	factor float64 // opSetDegradation / opSetContention
}

type completionRec struct {
	transfer int // start-order index
	at       time.Duration
}

type linkTrace struct {
	completions  []completionRec
	cancels      []bool
	reads        []float64 // Remaining samples
	stats        Stats
	end          time.Duration
	capacity     float64
	sumCompleted float64
	active       int
}

// driveLink replays ops against a fresh engine and link and records
// everything observable.
func driveLink(mk func(*simclock.Engine, float64, float64) *Link, capacity, perTransfer float64, ops []linkOp) linkTrace {
	e := simclock.NewEngine(t0)
	l := mk(e, capacity, perTransfer)
	tr := linkTrace{capacity: capacity}
	var started []*Transfer
	at := time.Duration(0)
	for i := range ops {
		op := ops[i]
		at += op.gap
		idx := len(tr.cancels) // stable slot for this op's cancel result
		if op.kind == opCancel {
			tr.cancels = append(tr.cancels, false)
		}
		e.At(t0.Add(at), "op", func() {
			switch op.kind {
			case opStart:
				n := len(started)
				t := l.Start(op.size, func() {
					tr.completions = append(tr.completions, completionRec{transfer: n, at: e.Elapsed()})
					tr.sumCompleted += op.size
				})
				started = append(started, t)
			case opCancel:
				if len(started) > 0 {
					tr.cancels[idx] = started[op.target%len(started)].Cancel()
				}
			case opSetDegradation:
				l.SetDegradation(op.factor)
			case opSetContention:
				l.SetContention(op.factor)
			case opRead:
				if len(started) > 0 {
					tr.reads = append(tr.reads, started[len(started)/2].Remaining())
				}
				l.Stats()
			}
		})
	}
	e.Run()
	tr.stats = l.Stats()
	tr.end = e.Elapsed()
	tr.active = l.Active()
	return tr
}

func randomOps(seed int64, n int) []linkOp {
	rng := simclock.NewRNG(seed)
	ops := make([]linkOp, n)
	for i := range ops {
		op := &ops[i]
		// Continuous gaps and sizes land on "messy" (non-representable)
		// reals, keeping etas away from exact nanosecond boundaries so
		// both implementations round identically.
		op.gap = time.Duration(rng.Float64() * float64(500*time.Millisecond))
		switch k := rng.Intn(100); {
		case k < 55:
			op.kind = opStart
			op.size = rng.Float64()*400 + 0.001
			if rng.Intn(12) == 0 {
				op.size = 0
			}
		case k < 70:
			op.kind = opCancel
			op.target = rng.Intn(1 << 20)
		case k < 78:
			op.kind = opSetDegradation
			op.factor = 0.25 + 0.75*rng.Float64()
		case k < 86:
			op.kind = opSetContention
			op.factor = 0.9 + 0.1*rng.Float64()
		default:
			op.kind = opRead
		}
	}
	return ops
}

func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// compareTraces asserts the two traces agree: identical callback
// order, completion times within a drift budget (a fixed
// nanosecond-per-completion allowance for ceil-boundary flips plus
// 1e-12 of the completion instant for low-rate float amplification —
// see the file comment), and stats within float tolerance.
func compareTraces(t *testing.T, indexed, reference linkTrace, timeTol time.Duration) {
	t.Helper()
	if len(indexed.completions) != len(reference.completions) {
		t.Fatalf("completions: indexed %d, reference %d", len(indexed.completions), len(reference.completions))
	}
	fixed := timeTol * time.Duration(len(indexed.completions)+1)
	budgetAt := func(at time.Duration) time.Duration {
		return fixed + time.Duration(float64(at)*1e-12)
	}
	for i := range indexed.completions {
		ic, rc := indexed.completions[i], reference.completions[i]
		if ic.transfer != rc.transfer {
			t.Fatalf("completion %d order: indexed transfer %d, reference transfer %d", i, ic.transfer, rc.transfer)
		}
		budget := budgetAt(ic.at)
		if d := ic.at - rc.at; d < -budget || d > budget {
			t.Fatalf("completion %d (transfer %d): indexed %v, reference %v (budget %v)", i, ic.transfer, ic.at, rc.at, budget)
		}
	}
	if len(indexed.cancels) != len(reference.cancels) {
		t.Fatalf("cancel count: indexed %d, reference %d", len(indexed.cancels), len(reference.cancels))
	}
	for i := range indexed.cancels {
		if indexed.cancels[i] != reference.cancels[i] {
			t.Fatalf("cancel %d: indexed %v, reference %v", i, indexed.cancels[i], reference.cancels[i])
		}
	}
	if len(indexed.reads) != len(reference.reads) {
		t.Fatalf("read count: indexed %d, reference %d", len(indexed.reads), len(reference.reads))
	}
	for i := range indexed.reads {
		if !relClose(indexed.reads[i], reference.reads[i], 1e-6) {
			t.Fatalf("read %d: indexed %v, reference %v", i, indexed.reads[i], reference.reads[i])
		}
	}
	is, rs := indexed.stats, reference.stats
	if is.Started != rs.Started || is.Completed != rs.Completed {
		t.Fatalf("counters: indexed %+v, reference %+v", is, rs)
	}
	if !relClose(is.DeliveredMB, rs.DeliveredMB, 1e-6) {
		t.Fatalf("delivered: indexed %v, reference %v", is.DeliveredMB, rs.DeliveredMB)
	}
	busyTol := budgetAt(indexed.end) + 1
	if d := is.BusyTime - rs.BusyTime; d < -busyTol || d > busyTol {
		t.Fatalf("busy: indexed %v, reference %v", is.BusyTime, rs.BusyTime)
	}
	if !relClose(is.AvgBandwidth, rs.AvgBandwidth, 1e-6) {
		t.Fatalf("bandwidth: indexed %v, reference %v", is.AvgBandwidth, rs.AvgBandwidth)
	}
}

// checkInvariants asserts physical soundness regardless of oracle
// agreement: delivered data never exceeds the capacity × busy-time
// envelope (degradation and contention only shrink it), completed
// transfers account for their full size, and the books balance.
func checkInvariants(t *testing.T, tr linkTrace) {
	t.Helper()
	envelope := tr.capacity*tr.stats.BusyTime.Seconds() + 1e-6
	if tr.stats.DeliveredMB > envelope {
		t.Fatalf("delivered %v MB exceeds capacity envelope %v MB", tr.stats.DeliveredMB, envelope)
	}
	slack := float64(tr.stats.Completed)*completionEpsilonMB + 1e-6
	if tr.sumCompleted > tr.stats.DeliveredMB+slack {
		t.Fatalf("completed sizes %v MB exceed delivered %v MB", tr.sumCompleted, tr.stats.DeliveredMB)
	}
	canceled := 0
	for _, ok := range tr.cancels {
		if ok {
			canceled++
		}
	}
	if tr.stats.Started != tr.stats.Completed+canceled+tr.active {
		t.Fatalf("books: started %d != completed %d + canceled %d + active %d",
			tr.stats.Started, tr.stats.Completed, canceled, tr.active)
	}
}

func TestLinkDifferentialSeeds(t *testing.T) {
	configs := []struct {
		capacity, perTransfer float64
	}{
		{600, 0},
		{600, 45},
		{10000, 100},
	}
	for seed := int64(1); seed <= 10; seed++ {
		ops := randomOps(seed, 300)
		for _, cfg := range configs {
			indexed := driveLink(NewLink, cfg.capacity, cfg.perTransfer, ops)
			reference := driveLink(NewReferenceLink, cfg.capacity, cfg.perTransfer, ops)
			compareTraces(t, indexed, reference, 1)
			checkInvariants(t, indexed)
			checkInvariants(t, reference)
			if len(indexed.completions) == 0 {
				t.Fatalf("seed %d produced no completions; op mix too weak", seed)
			}
		}
	}
}

// decodeOps turns fuzz bytes into an op sequence. Sizes and gaps are
// deliberately quantized — the adversarial regime where etas land on
// exact nanosecond boundaries and rounding may flip.
func decodeOps(data []byte) []linkOp {
	var ops []linkOp
	for len(data) >= 4 && len(ops) < 256 {
		b0, b1, b2, b3 := data[0], data[1], data[2], data[3]
		data = data[4:]
		op := linkOp{gap: time.Duration(b1) * 7_770_001} // messy prime ns
		switch b0 % 8 {
		case 0, 1, 2, 3:
			op.kind = opStart
			op.size = float64(uint(b2)<<8|uint(b3)) / 16
		case 4:
			op.kind = opCancel
			op.target = int(b2)<<8 | int(b3)
		case 5:
			op.kind = opSetDegradation
			op.factor = float64(b2%100+1) / 100
		case 6:
			op.kind = opSetContention
			op.factor = float64(b2%25+76) / 100
		default:
			op.kind = opRead
		}
		ops = append(ops, op)
	}
	return ops
}

func FuzzLinkDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 2, 2, 3, 4, 1, 0, 0})
	f.Add([]byte{1, 0, 0, 16, 1, 0, 0, 16, 5, 3, 50, 0, 6, 9, 10, 0, 7, 1, 0, 0})
	f.Add([]byte{3, 5, 15, 255, 4, 2, 0, 1, 0, 0, 0, 0, 2, 200, 1, 1})
	for seed := int64(1); seed <= 4; seed++ {
		rng := simclock.NewRNG(seed)
		buf := make([]byte, 64)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeOps(data)
		if len(ops) == 0 {
			t.Skip()
		}
		indexed := driveLink(NewLink, 100, 7, ops)
		reference := driveLink(NewReferenceLink, 100, 7, ops)
		compareTraces(t, indexed, reference, 1)
		checkInvariants(t, indexed)
		checkInvariants(t, reference)
	})
}

// TestPropertyDeliveredWithinEnvelope re-checks the capacity envelope
// under aggressive degradation/contention churn on both
// implementations.
func TestPropertyDeliveredWithinEnvelope(t *testing.T) {
	for seed := int64(100); seed < 116; seed++ {
		ops := randomOps(seed, 200)
		for _, mk := range []func(*simclock.Engine, float64, float64) *Link{NewLink, NewReferenceLink} {
			tr := driveLink(mk, 250, 20, ops)
			checkInvariants(t, tr)
		}
	}
}
