// This file retains the pre-virtual-time link implementation: on
// every start, cancel, completion and capacity change it walks all
// in-flight transfers to apply progress and re-derive rates — O(n)
// per event, O(n²) per run. It is kept, like kubesim/reference.go and
// core/reference.go, as the differential-testing oracle for the
// indexed implementation in netsim.go: NewReferenceLink builds a link
// routed through these methods, and the differential and fuzz suites
// assert both produce the same completions, callback order and stats.
//
// Two deliberate deviations from the historical code, shared with the
// indexed path so the oracle stays comparable: transfers iterate in
// ascending-id order (map iteration made float accumulation
// nondeterministic) and reads (Remaining/Stats) only advance
// accounting instead of stopping and re-arming the completion timer.
package netsim

import (
	"math"
	"time"

	"hta/internal/simclock"
)

// NewReferenceLink creates a link backed by the retained
// walk-everything implementation. Semantics match NewLink; only the
// algorithmic complexity differs.
func NewReferenceLink(eng *simclock.Engine, capacityMBps, perTransferMBps float64) *Link {
	return newLink(eng, capacityMBps, perTransferMBps, true)
}

// refAdvance applies progress for the time since the last update by
// walking every in-flight transfer.
func (l *Link) refAdvance() {
	now := l.eng.Now()
	dt := now.Sub(l.last).Seconds()
	l.last = now
	if dt <= 0 || len(l.order) == 0 {
		return
	}
	l.busy += time.Duration(dt * float64(time.Second))
	for _, tr := range l.order {
		moved := tr.rate * dt
		if moved > tr.remaining {
			moved = tr.remaining
		}
		tr.remaining -= moved
		l.deliveredMB += moved
	}
}

// refAllocate computes the max-min fair rate for every active
// transfer: each transfer is entitled to an equal share of the
// remaining capacity, transfers capped below their share keep their
// cap and the freed capacity is redistributed among the rest.
func (l *Link) refAllocate() {
	n := len(l.order)
	if n == 0 {
		return
	}
	cap := l.effectiveCapacity(n)
	if l.perTransfer == 0 {
		share := cap / float64(n)
		for _, tr := range l.order {
			tr.rate = share
		}
		return
	}
	remainingCap := cap
	unset := make([]*Transfer, 0, n)
	unset = append(unset, l.order...)
	for len(unset) > 0 {
		share := remainingCap / float64(len(unset))
		if l.perTransfer >= share {
			// Nobody is capped below the equal share.
			for _, tr := range unset {
				tr.rate = share
			}
			return
		}
		// Every remaining transfer is capped (uniform cap), so they
		// all take the cap.
		for _, tr := range unset {
			tr.rate = l.perTransfer
		}
		return
	}
}

// refReschedule completes finished transfers, re-rates the rest and
// arms the timer for the soonest completion, walking the full active
// set.
func (l *Link) refReschedule() {
	l.timer.Stop()
	finished := l.finished[:0]
	keep := l.order[:0]
	for _, tr := range l.order {
		if tr.remaining <= completionEpsilonMB {
			delete(l.transfers, tr.id)
			l.completed++
			finished = append(finished, tr)
		} else {
			keep = append(keep, tr)
		}
	}
	for i := len(keep); i < len(l.order); i++ {
		l.order[i] = nil
	}
	l.order = keep
	l.completeBatch(finished)
	for i := range finished {
		finished[i] = nil
	}
	l.finished = finished[:0]
	if len(l.order) == 0 {
		return
	}
	l.refAllocate()
	soonest := math.Inf(1)
	for _, tr := range l.order {
		if tr.rate <= 0 {
			continue
		}
		eta := tr.remaining / tr.rate
		if eta < soonest {
			soonest = eta
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	d, ok := etaDuration(soonest)
	if !ok {
		return
	}
	l.timer = l.eng.After(d, "netsim-completion", func() {
		l.advance()
		l.reschedule()
	})
}

// refRemove drops a canceled transfer from the ordered active set.
func (l *Link) refRemove(tr *Transfer) {
	for i, o := range l.order {
		if o == tr {
			copy(l.order[i:], l.order[i+1:])
			l.order[len(l.order)-1] = nil
			l.order = l.order[:len(l.order)-1]
			return
		}
	}
}
