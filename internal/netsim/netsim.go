// Package netsim models the data-transfer behaviour of a
// master-worker HTC deployment: a shared egress link at the master
// whose bandwidth is divided max-min fairly among concurrent
// transfers, optionally limited per transfer by the receiver's NIC.
//
// This reproduces the trade-off of the paper's §III-A/§IV-A: a
// fine-grained configuration with many workers moves more copies of
// the shared input across the same egress link, lowering per-transfer
// bandwidth and stretching the workload, while a coarse-grained
// configuration with few node-sized workers transfers fewer copies at
// higher per-transfer rates.
//
// The link is simulated in processor-sharing virtual time: because
// every active transfer always receives the same rate (the fair share
// and the per-transfer cap are both uniform), a single cumulative
// service counter tracks per-transfer progress for all of them.
// A transfer that starts at credit s and moves S megabytes completes
// when the counter reaches s+S, so a min-heap keyed on that finish
// credit yields the next completion in O(log n) while advancing the
// clock is O(1) regardless of how many transfers are in flight. The
// original walk-everything implementation is retained in reference.go
// (NewReferenceLink) as a differential-testing oracle.
package netsim

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"time"

	"hta/internal/simclock"
)

// Link is a shared egress link simulated on a discrete-event engine.
// All methods must be called from engine callbacks (single-threaded).
type Link struct {
	eng         *simclock.Engine
	capacity    float64 // MB/s
	perTransfer float64 // MB/s cap per transfer; 0 = unlimited
	contention  float64 // per-extra-stream efficiency factor; 1 = none
	degradation float64 // capacity multiplier in (0, 1]; 1 = healthy

	reference bool // route through the retained O(n)-per-event model

	lane simclock.Lane // engine lane for this link's completion batches

	transfers map[int]*Transfer // active transfers by id (reference mode)
	nextID    int
	timer     simclock.Timer
	last      time.Time

	// Virtual-time state (indexed mode). vt is the cumulative
	// per-transfer service credit in MB: every active transfer has
	// moved vt − tr.start megabytes. vtRate is the credit growth rate,
	// recomputed only when the active set or the capacity model
	// changes.
	vt       float64
	vtRate   float64
	byFinish finishHeap

	// Reference-mode state: active transfers in ascending-id order so
	// float accumulation is deterministic (map iteration is not).
	order []*Transfer

	finished []*Transfer // scratch for completion batches
	doneFns  []func()    // scratch for the batch-schedule call

	// statistics
	deliveredMB float64
	busy        time.Duration
	started     int
	completed   int
}

// Transfer is one in-flight data movement.
type Transfer struct {
	link      *Link
	id        int
	remaining float64 // MB; live in reference mode, materialized on exit in indexed mode
	size      float64
	rate      float64 // MB/s; live in reference mode, stamped on exit in indexed mode
	begun     time.Time
	done      func()
	canceled  bool

	start  float64 // vt when the transfer started (indexed mode)
	finish float64 // start + size: vt at which the transfer completes
	pos    int     // index in byFinish, -1 when not enqueued
}

// finishHeap is a 4-ary min-heap of active transfers keyed on
// (finish, id); the id tie-break pops simultaneous completions
// deterministically. It is hand-rolled rather than container/heap
// because popping from a 10k-wide heap is the hot path of the scale
// benchmark: the 4-ary layout halves the sift-down depth and the
// direct methods avoid interface dispatch.
type finishHeap []*Transfer

func transferLess(a, b *Transfer) bool {
	if a.finish != b.finish {
		return a.finish < b.finish
	}
	return a.id < b.id
}

func (h finishHeap) siftUp(i int) {
	tr := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !transferLess(tr, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].pos = i
		i = p
	}
	h[i] = tr
	tr.pos = i
}

func (h finishHeap) siftDown(i int) {
	n := len(h)
	tr := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if transferLess(h[c], h[m]) {
				m = c
			}
		}
		if !transferLess(h[m], tr) {
			break
		}
		h[i] = h[m]
		h[i].pos = i
		i = m
	}
	h[i] = tr
	tr.pos = i
}

func (h *finishHeap) push(tr *Transfer) {
	*h = append(*h, tr)
	tr.pos = len(*h) - 1
	h.siftUp(tr.pos)
}

func (h *finishHeap) popMin() *Transfer {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		(*h).siftDown(0)
	}
	top.pos = -1
	return top
}

func (h *finishHeap) removeAt(i int) {
	old := *h
	tr := old[i]
	n := len(old) - 1
	old[i] = old[n]
	old[n] = nil
	*h = old[:n]
	if i < n {
		(*h).siftDown(i)
		(*h).siftUp(i)
	}
	tr.pos = -1
}

const completionEpsilonMB = 1e-9

// NewLink creates a link with the given capacity in MB/s and an
// optional per-transfer rate cap (0 disables the cap).
func NewLink(eng *simclock.Engine, capacityMBps, perTransferMBps float64) *Link {
	return newLink(eng, capacityMBps, perTransferMBps, false)
}

func newLink(eng *simclock.Engine, capacityMBps, perTransferMBps float64, reference bool) *Link {
	if capacityMBps <= 0 {
		panic(fmt.Sprintf("netsim: non-positive link capacity %v", capacityMBps))
	}
	if perTransferMBps < 0 {
		panic(fmt.Sprintf("netsim: negative per-transfer cap %v", perTransferMBps))
	}
	return &Link{
		eng:         eng,
		lane:        eng.NewLane("netsim-link"),
		capacity:    capacityMBps,
		perTransfer: perTransferMBps,
		contention:  1,
		degradation: 1,
		reference:   reference,
		transfers:   make(map[int]*Transfer),
		last:        eng.Now(),
	}
}

// SetContention sets the per-extra-stream efficiency factor in
// (0, 1]: with n concurrent transfers the aggregate effective
// capacity is capacity × factor^(n−1), modelling the TCP contention
// and protocol overhead that makes many parallel streams deliver
// less total bandwidth than a few — the effect behind the paper's
// Fig. 4 fine- vs coarse-grained bandwidth gap. 1 disables the
// model.
func (l *Link) SetContention(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("netsim: contention factor %v outside (0, 1]", factor))
	}
	l.advance()
	l.contention = factor
	l.reschedule()
}

// SetDegradation scales the link's aggregate capacity by factor in
// (0, 1] — a fault injector's model of transient egress degradation
// (congested uplink, throttled NAT gateway). 1 restores full health.
// In-flight transfers re-pace immediately.
func (l *Link) SetDegradation(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("netsim: degradation factor %v outside (0, 1]", factor))
	}
	l.advance()
	l.degradation = factor
	l.reschedule()
}

// effectiveCapacity returns the aggregate capacity available to n
// concurrent transfers.
func (l *Link) effectiveCapacity(n int) float64 {
	cap := l.capacity * l.degradation
	if l.contention == 1 || n <= 1 {
		return cap
	}
	return cap * math.Pow(l.contention, float64(n-1))
}

// allocRate returns the uniform per-transfer rate with n transfers in
// flight. Because the fair share and the cap are both uniform, max-min
// fairness degenerates into a single regime switch at the crossover
// n* = effectiveCapacity(n)/perTransfer: below n* every transfer is
// cap-limited, above it everyone gets the equal share.
func (l *Link) allocRate(n int) float64 {
	share := l.effectiveCapacity(n) / float64(n)
	if l.perTransfer > 0 && l.perTransfer < share {
		return l.perTransfer
	}
	return share
}

// Capacity returns the link capacity in MB/s.
func (l *Link) Capacity() float64 { return l.capacity }

// Active returns the number of in-flight transfers.
func (l *Link) Active() int {
	if l.reference {
		return len(l.transfers)
	}
	return len(l.byFinish)
}

// Start begins a transfer of sizeMB and calls done (if non-nil) when
// it completes. Zero-size transfers complete on the next event.
func (l *Link) Start(sizeMB float64, done func()) *Transfer {
	if sizeMB < 0 || math.IsNaN(sizeMB) || math.IsInf(sizeMB, 0) {
		panic(fmt.Sprintf("netsim: invalid transfer size %v", sizeMB))
	}
	l.advance()
	l.nextID++
	tr := &Transfer{
		link:      l,
		id:        l.nextID,
		remaining: sizeMB,
		size:      sizeMB,
		begun:     l.eng.Now(),
		done:      done,
		pos:       -1,
	}
	l.started++
	if l.reference {
		// The membership map and ordered slice exist only in reference
		// mode; the indexed path tracks membership through tr.pos.
		l.transfers[tr.id] = tr
		l.order = append(l.order, tr) // ids ascend, so order stays sorted
	} else {
		tr.start = l.vt
		tr.finish = l.vt + sizeMB
		l.byFinish.push(tr)
	}
	l.reschedule()
	return tr
}

// Cancel aborts an in-flight transfer without invoking its callback.
// It reports whether the transfer was still active.
func (tr *Transfer) Cancel() bool {
	if tr.canceled {
		return false
	}
	l := tr.link
	if l.reference {
		if _, ok := l.transfers[tr.id]; !ok {
			return false
		}
	} else if tr.pos < 0 {
		return false
	}
	l.advance()
	tr.canceled = true
	if l.reference {
		delete(l.transfers, tr.id)
		l.refRemove(tr)
	} else {
		l.byFinish.removeAt(tr.pos)
		// Materialize progress. vt can overshoot finish by at most one
		// nanosecond's worth of credit (the completion timer rounds up
		// to whole nanoseconds); refund the overcharge.
		if l.vt > tr.finish {
			l.deliveredMB -= l.vt - tr.finish
			tr.remaining = 0
		} else {
			tr.remaining = tr.finish - l.vt
		}
		tr.rate = l.vtRate
	}
	l.reschedule()
	return true
}

// Remaining returns the megabytes left to move. It advances link
// accounting to the current time but never re-arms timers: reads are
// side-effect free with respect to scheduling.
func (tr *Transfer) Remaining() float64 {
	l := tr.link
	l.advance()
	if l.reference || tr.pos < 0 {
		return tr.remaining
	}
	if rem := tr.finish - l.vt; rem > 0 {
		return rem
	}
	return 0
}

// Rate returns the transfer's current bandwidth allocation in MB/s.
func (tr *Transfer) Rate() float64 {
	l := tr.link
	if !l.reference && tr.pos >= 0 {
		return l.vtRate
	}
	return tr.rate
}

// Size returns the total transfer size in MB.
func (tr *Transfer) Size() float64 { return tr.size }

// advance applies progress for the time since the last update: O(1).
// Every active transfer moves vtRate×dt megabytes of credit, so the
// aggregate delivery is n times that.
func (l *Link) advance() {
	if l.reference {
		l.refAdvance()
		return
	}
	now := l.eng.Now()
	dt := now.Sub(l.last).Seconds()
	l.last = now
	n := len(l.byFinish)
	if dt <= 0 || n == 0 {
		return
	}
	l.busy += time.Duration(dt * float64(time.Second))
	credit := l.vtRate * dt
	l.vt += credit
	l.deliveredMB += float64(n) * credit
}

// reschedule pops completed transfers, recomputes the uniform rate and
// arms the timer for the next completion: O(log n) per completion,
// O(1) otherwise.
func (l *Link) reschedule() {
	if l.reference {
		l.refReschedule()
		return
	}
	l.timer.Stop()
	finished := l.finished[:0]
	for len(l.byFinish) > 0 {
		top := l.byFinish[0]
		if top.finish-l.vt > completionEpsilonMB {
			break
		}
		l.byFinish.popMin()
		if l.vt > top.finish {
			// Refund the sub-nanosecond overcharge past this
			// transfer's finish credit, keeping delivered == size.
			l.deliveredMB -= l.vt - top.finish
		}
		top.remaining = 0
		top.rate = l.vtRate
		l.completed++
		finished = append(finished, top)
	}
	l.completeBatch(finished)
	for i := range finished {
		finished[i] = nil
	}
	l.finished = finished[:0]
	n := len(l.byFinish)
	if n == 0 {
		l.vtRate = 0
		return
	}
	l.vtRate = l.allocRate(n)
	if l.vtRate <= 0 {
		return
	}
	d, ok := etaDuration((l.byFinish[0].finish - l.vt) / l.vtRate)
	if !ok {
		return
	}
	l.timer = l.eng.After(d, "netsim-completion", func() {
		l.advance()
		l.reschedule()
	})
}

// completeBatch schedules completion callbacks in deterministic
// ascending-id order, as one batch on the link's lane — one heap
// settle for the whole completion wave. Callbacks run on the next
// engine event, after bookkeeping, so they can start new transfers
// freely.
func (l *Link) completeBatch(finished []*Transfer) {
	if len(finished) == 0 {
		return
	}
	// slices.SortFunc instead of sort.Slice: the closure-over-slice
	// form boxed the slice header and allocated on every completion
	// wave; the generic sort runs allocation-free (asserted by
	// TestCompleteBatchAllocs).
	slices.SortFunc(finished, func(a, b *Transfer) int { return cmp.Compare(a.id, b.id) })
	fns := l.doneFns[:0]
	for _, tr := range finished {
		if tr.done != nil {
			fns = append(fns, tr.done)
		}
	}
	l.eng.AfterBatch(0, l.lane, "netsim-transfer-done", fns)
	for i := range fns {
		fns[i] = nil
	}
	l.doneFns = fns[:0]
}

// maxEta is the horizon beyond which a completion timer is not armed:
// the link is effectively stalled (nano-rates from compounded
// degradation and contention) and the next rate change will re-arm.
// The cap matters for accounting, not semantics — every experiment's
// transfers complete in seconds, but a fuzzed chain of centuries-long
// waits would overflow the link's int64-nanosecond busy counter.
const maxEta = 90 * 24 * time.Hour

// etaDuration converts an eta in seconds to a timer duration, rounding
// up to a whole nanosecond so the timer always makes progress; firing
// exactly at (or just after) completion leaves a remainder below the
// completion epsilon. Etas beyond maxEta report false: the link is
// effectively stalled and the timer stays unarmed until rates change.
func etaDuration(eta float64) (time.Duration, bool) {
	ns := math.Ceil(eta * float64(time.Second))
	if ns >= float64(maxEta) {
		return 0, false
	}
	d := time.Duration(ns)
	if d <= 0 {
		d = 1
	}
	return d, true
}

// Stats is a snapshot of link accounting.
type Stats struct {
	DeliveredMB  float64       // total megabytes moved
	BusyTime     time.Duration // time with >= 1 active transfer
	Started      int
	Completed    int
	AvgBandwidth float64 // MB/s averaged over busy time
}

// Stats returns accumulated statistics up to the current time. Like
// Remaining, it advances accounting but never touches timers.
func (l *Link) Stats() Stats {
	l.advance()
	s := Stats{
		DeliveredMB: l.deliveredMB,
		BusyTime:    l.busy,
		Started:     l.started,
		Completed:   l.completed,
	}
	if l.busy > 0 {
		s.AvgBandwidth = l.deliveredMB / l.busy.Seconds()
	}
	return s
}
