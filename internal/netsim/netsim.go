// Package netsim models the data-transfer behaviour of a
// master-worker HTC deployment: a shared egress link at the master
// whose bandwidth is divided max-min fairly among concurrent
// transfers, optionally limited per transfer by the receiver's NIC.
//
// This reproduces the trade-off of the paper's §III-A/§IV-A: a
// fine-grained configuration with many workers moves more copies of
// the shared input across the same egress link, lowering per-transfer
// bandwidth and stretching the workload, while a coarse-grained
// configuration with few node-sized workers transfers fewer copies at
// higher per-transfer rates.
package netsim

import (
	"fmt"
	"math"
	"time"

	"hta/internal/simclock"
)

// Link is a shared egress link simulated on a discrete-event engine.
// All methods must be called from engine callbacks (single-threaded).
type Link struct {
	eng         *simclock.Engine
	capacity    float64 // MB/s
	perTransfer float64 // MB/s cap per transfer; 0 = unlimited
	contention  float64 // per-extra-stream efficiency factor; 1 = none
	degradation float64 // capacity multiplier in (0, 1]; 1 = healthy

	transfers map[int]*Transfer
	nextID    int
	timer     simclock.Timer
	last      time.Time

	// statistics
	deliveredMB float64
	busy        time.Duration
	started     int
	completed   int
}

// Transfer is one in-flight data movement.
type Transfer struct {
	link      *Link
	id        int
	remaining float64 // MB
	size      float64
	rate      float64 // MB/s, current allocation
	begun     time.Time
	done      func()
	canceled  bool
}

const completionEpsilonMB = 1e-9

// NewLink creates a link with the given capacity in MB/s and an
// optional per-transfer rate cap (0 disables the cap).
func NewLink(eng *simclock.Engine, capacityMBps, perTransferMBps float64) *Link {
	if capacityMBps <= 0 {
		panic(fmt.Sprintf("netsim: non-positive link capacity %v", capacityMBps))
	}
	if perTransferMBps < 0 {
		panic(fmt.Sprintf("netsim: negative per-transfer cap %v", perTransferMBps))
	}
	return &Link{
		eng:         eng,
		capacity:    capacityMBps,
		perTransfer: perTransferMBps,
		contention:  1,
		degradation: 1,
		transfers:   make(map[int]*Transfer),
		last:        eng.Now(),
	}
}

// SetContention sets the per-extra-stream efficiency factor in
// (0, 1]: with n concurrent transfers the aggregate effective
// capacity is capacity × factor^(n−1), modelling the TCP contention
// and protocol overhead that makes many parallel streams deliver
// less total bandwidth than a few — the effect behind the paper's
// Fig. 4 fine- vs coarse-grained bandwidth gap. 1 disables the
// model.
func (l *Link) SetContention(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("netsim: contention factor %v outside (0, 1]", factor))
	}
	l.advance()
	l.contention = factor
	l.reschedule()
}

// SetDegradation scales the link's aggregate capacity by factor in
// (0, 1] — a fault injector's model of transient egress degradation
// (congested uplink, throttled NAT gateway). 1 restores full health.
// In-flight transfers re-pace immediately.
func (l *Link) SetDegradation(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("netsim: degradation factor %v outside (0, 1]", factor))
	}
	l.advance()
	l.degradation = factor
	l.reschedule()
}

// effectiveCapacity returns the aggregate capacity available to n
// concurrent transfers.
func (l *Link) effectiveCapacity(n int) float64 {
	cap := l.capacity * l.degradation
	if l.contention == 1 || n <= 1 {
		return cap
	}
	return cap * math.Pow(l.contention, float64(n-1))
}

// Capacity returns the link capacity in MB/s.
func (l *Link) Capacity() float64 { return l.capacity }

// Active returns the number of in-flight transfers.
func (l *Link) Active() int { return len(l.transfers) }

// Start begins a transfer of sizeMB and calls done (if non-nil) when
// it completes. Zero-size transfers complete on the next event.
func (l *Link) Start(sizeMB float64, done func()) *Transfer {
	if sizeMB < 0 || math.IsNaN(sizeMB) || math.IsInf(sizeMB, 0) {
		panic(fmt.Sprintf("netsim: invalid transfer size %v", sizeMB))
	}
	l.advance()
	l.nextID++
	tr := &Transfer{
		link:      l,
		id:        l.nextID,
		remaining: sizeMB,
		size:      sizeMB,
		begun:     l.eng.Now(),
		done:      done,
	}
	l.transfers[tr.id] = tr
	l.started++
	l.reschedule()
	return tr
}

// Cancel aborts an in-flight transfer without invoking its callback.
// It reports whether the transfer was still active.
func (tr *Transfer) Cancel() bool {
	if tr.canceled {
		return false
	}
	if _, ok := tr.link.transfers[tr.id]; !ok {
		return false
	}
	tr.link.advance()
	tr.canceled = true
	delete(tr.link.transfers, tr.id)
	tr.link.reschedule()
	return true
}

// Remaining returns the megabytes left to move.
func (tr *Transfer) Remaining() float64 {
	tr.link.advance()
	tr.link.reschedule()
	return tr.remaining
}

// Rate returns the transfer's current bandwidth allocation in MB/s.
func (tr *Transfer) Rate() float64 { return tr.rate }

// Size returns the total transfer size in MB.
func (tr *Transfer) Size() float64 { return tr.size }

// allocate computes the max-min fair rate for every active transfer:
// each transfer is entitled to an equal share of the remaining
// capacity, transfers capped below their share keep their cap and the
// freed capacity is redistributed among the rest.
func (l *Link) allocate() {
	n := len(l.transfers)
	if n == 0 {
		return
	}
	cap := l.effectiveCapacity(n)
	if l.perTransfer == 0 {
		share := cap / float64(n)
		for _, tr := range l.transfers {
			tr.rate = share
		}
		return
	}
	remainingCap := cap
	unset := make([]*Transfer, 0, n)
	for _, tr := range l.transfers {
		unset = append(unset, tr)
	}
	for len(unset) > 0 {
		share := remainingCap / float64(len(unset))
		if l.perTransfer >= share {
			// Nobody is capped below the equal share.
			for _, tr := range unset {
				tr.rate = share
			}
			return
		}
		// Every remaining transfer is capped (uniform cap), so they
		// all take the cap.
		for _, tr := range unset {
			tr.rate = l.perTransfer
		}
		return
	}
}

// advance applies progress for the time since the last update.
func (l *Link) advance() {
	now := l.eng.Now()
	dt := now.Sub(l.last).Seconds()
	l.last = now
	if dt <= 0 || len(l.transfers) == 0 {
		return
	}
	l.busy += time.Duration(dt * float64(time.Second))
	for _, tr := range l.transfers {
		moved := tr.rate * dt
		if moved > tr.remaining {
			moved = tr.remaining
		}
		tr.remaining -= moved
		l.deliveredMB += moved
	}
}

// reschedule recomputes rates and arms the timer for the next
// completion.
func (l *Link) reschedule() {
	l.timer.Stop()
	// Complete anything already finished.
	var finished []*Transfer
	for _, tr := range l.transfers {
		if tr.remaining <= completionEpsilonMB {
			finished = append(finished, tr)
		}
	}
	for _, tr := range finished {
		delete(l.transfers, tr.id)
		l.completed++
	}
	if len(finished) > 0 {
		// Run callbacks after bookkeeping so callbacks can start new
		// transfers; deterministic order by id.
		for i := 0; i < len(finished); i++ {
			for j := i + 1; j < len(finished); j++ {
				if finished[j].id < finished[i].id {
					finished[i], finished[j] = finished[j], finished[i]
				}
			}
		}
		for _, tr := range finished {
			if tr.done != nil {
				done := tr.done
				l.eng.After(0, "netsim-transfer-done", done)
			}
		}
	}
	if len(l.transfers) == 0 {
		return
	}
	l.allocate()
	soonest := math.Inf(1)
	for _, tr := range l.transfers {
		if tr.rate <= 0 {
			continue
		}
		eta := tr.remaining / tr.rate
		if eta < soonest {
			soonest = eta
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	// Round up to a whole nanosecond so the timer always makes
	// progress; firing exactly at (or just after) completion leaves a
	// remainder below the completion epsilon.
	d := time.Duration(math.Ceil(soonest * float64(time.Second)))
	if d <= 0 {
		d = 1
	}
	l.timer = l.eng.After(d, "netsim-completion", func() {
		l.advance()
		l.reschedule()
	})
}

// Stats is a snapshot of link accounting.
type Stats struct {
	DeliveredMB  float64       // total megabytes moved
	BusyTime     time.Duration // time with >= 1 active transfer
	Started      int
	Completed    int
	AvgBandwidth float64 // MB/s averaged over busy time
}

// Stats returns accumulated statistics up to the current time.
func (l *Link) Stats() Stats {
	l.advance()
	l.reschedule()
	s := Stats{
		DeliveredMB: l.deliveredMB,
		BusyTime:    l.busy,
		Started:     l.started,
		Completed:   l.completed,
	}
	if l.busy > 0 {
		s.AvgBandwidth = l.deliveredMB / l.busy.Seconds()
	}
	return s
}
