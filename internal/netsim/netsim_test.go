package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"hta/internal/simclock"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleTransferDuration(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 100, 0) // 100 MB/s
	var doneAt time.Duration
	l.Start(1400, func() { doneAt = e.Elapsed() }) // 1.4 GB
	e.Run()
	if want := 14 * time.Second; doneAt != want {
		t.Errorf("transfer finished at %v, want %v", doneAt, want)
	}
	s := l.Stats()
	if !almost(s.DeliveredMB, 1400, 1e-6) {
		t.Errorf("delivered = %v", s.DeliveredMB)
	}
	if !almost(s.AvgBandwidth, 100, 1e-6) {
		t.Errorf("avg bandwidth = %v", s.AvgBandwidth)
	}
}

func TestFairShareTwoTransfers(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 100, 0)
	var d1, d2 time.Duration
	l.Start(100, func() { d1 = e.Elapsed() })
	l.Start(100, func() { d2 = e.Elapsed() })
	e.Run()
	// Equal sizes started together share the link: each gets 50 MB/s,
	// both finish at 2 s.
	if d1 != 2*time.Second || d2 != 2*time.Second {
		t.Errorf("finish times %v %v, want 2s both", d1, d2)
	}
}

func TestProgressiveFilling(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 100, 0)
	var small, big time.Duration
	l.Start(50, func() { small = e.Elapsed() })
	l.Start(150, func() { big = e.Elapsed() })
	e.Run()
	// Both at 50 MB/s: small done at 1 s (50 MB). Big has 100 MB left,
	// now alone at 100 MB/s: +1 s => 2 s total.
	if small != time.Second {
		t.Errorf("small finished at %v, want 1s", small)
	}
	if big != 2*time.Second {
		t.Errorf("big finished at %v, want 2s", big)
	}
}

func TestLateJoinerSlowsExisting(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 100, 0)
	var first time.Duration
	l.Start(100, func() { first = e.Elapsed() })
	e.After(500*time.Millisecond, "join", func() {
		l.Start(1000, nil)
	})
	e.RunUntil(t0.Add(10 * time.Second))
	// First moves 50 MB in 0.5 s, then shares: 50 MB at 50 MB/s = 1 s
	// more => 1.5 s.
	if first != 1500*time.Millisecond {
		t.Errorf("first finished at %v, want 1.5s", first)
	}
}

func TestPerTransferCap(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 1000, 100) // huge link, 100 MB/s per-transfer cap
	var d time.Duration
	l.Start(200, func() { d = e.Elapsed() })
	e.Run()
	if d != 2*time.Second {
		t.Errorf("capped transfer finished at %v, want 2s", d)
	}
}

func TestCapDoesNotExceedFairShare(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 100, 80)
	var d1, d2 time.Duration
	l.Start(100, func() { d1 = e.Elapsed() })
	l.Start(100, func() { d2 = e.Elapsed() })
	e.Run()
	// Fair share 50 < cap 80, so both run at 50 MB/s.
	if d1 != 2*time.Second || d2 != 2*time.Second {
		t.Errorf("finish times %v %v, want 2s", d1, d2)
	}
}

func TestZeroSizeTransferCompletes(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 100, 0)
	done := false
	l.Start(0, func() { done = true })
	e.Run()
	if !done {
		t.Error("zero-size transfer never completed")
	}
	if e.Elapsed() != 0 {
		t.Errorf("elapsed = %v, want 0", e.Elapsed())
	}
}

func TestCancel(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 100, 0)
	done := false
	tr := l.Start(100, func() { done = true })
	var other time.Duration
	l.Start(100, func() { other = e.Elapsed() })
	e.After(time.Second, "cancel", func() {
		if !tr.Cancel() {
			t.Error("Cancel reported inactive")
		}
		if tr.Cancel() {
			t.Error("second Cancel reported active")
		}
	})
	e.Run()
	if done {
		t.Error("canceled transfer invoked callback")
	}
	// Other: 50 MB in first second (shared), then alone at 100 MB/s
	// for remaining 50 MB => 1.5 s.
	if other != 1500*time.Millisecond {
		t.Errorf("other finished at %v, want 1.5s", other)
	}
}

func TestRemainingAndRate(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 100, 0)
	tr := l.Start(100, nil)
	e.After(500*time.Millisecond, "check", func() {
		if got := tr.Remaining(); !almost(got, 50, 1e-6) {
			t.Errorf("Remaining = %v, want 50", got)
		}
		if got := tr.Rate(); !almost(got, 100, 1e-6) {
			t.Errorf("Rate = %v, want 100", got)
		}
	})
	e.Run()
}

func TestStatsBusyTime(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 100, 0)
	l.Start(100, nil) // 1 s
	e.After(10*time.Second, "second", func() {
		l.Start(200, nil) // 2 s
	})
	e.Run()
	s := l.Stats()
	if want := 3 * time.Second; s.BusyTime != want {
		t.Errorf("BusyTime = %v, want %v", s.BusyTime, want)
	}
	if !almost(s.AvgBandwidth, 100, 1e-6) {
		t.Errorf("AvgBandwidth = %v, want 100", s.AvgBandwidth)
	}
	if s.Started != 2 || s.Completed != 2 {
		t.Errorf("Started/Completed = %d/%d", s.Started, s.Completed)
	}
}

func TestManySimultaneousEqualTransfers(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 150, 0)
	n := 15
	finished := 0
	for i := 0; i < n; i++ {
		l.Start(10, func() { finished++ })
	}
	e.Run()
	if finished != n {
		t.Fatalf("finished = %d, want %d", finished, n)
	}
	// 15 transfers × 10 MB at 10 MB/s each => 1 s.
	if e.Elapsed() != time.Second {
		t.Errorf("elapsed = %v, want 1s", e.Elapsed())
	}
}

func TestInvalidConstruction(t *testing.T) {
	e := simclock.NewEngine(t0)
	for _, f := range []func(){
		func() { NewLink(e, 0, 0) },
		func() { NewLink(e, -1, 0) },
		func() { NewLink(e, 1, -1) },
		func() { NewLink(e, 100, 0).Start(-1, nil) },
		func() { NewLink(e, 100, 0).Start(math.NaN(), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: conservation — total delivered equals the sum of
// completed transfer sizes, and total time >= sum(sizes)/capacity
// (the link can never beat its capacity).
func TestPropertyConservation(t *testing.T) {
	f := func(sizes []uint16, gaps []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 50 {
			sizes = sizes[:50]
		}
		e := simclock.NewEngine(t0)
		l := NewLink(e, 100, 0)
		var total float64
		at := t0
		for i, sz := range sizes {
			szMB := float64(sz%2000) + 1
			total += szMB
			gap := time.Duration(0)
			if i < len(gaps) {
				gap = time.Duration(gaps[i]) * time.Millisecond
			}
			at = at.Add(gap)
			sz := szMB
			e.At(at, "start", func() { l.Start(sz, nil) })
		}
		e.Run()
		s := l.Stats()
		if !almost(s.DeliveredMB, total, 1e-3) {
			return false
		}
		minBusy := total / 100 // seconds at full capacity
		if s.BusyTime.Seconds() < minBusy-1e-6 {
			return false
		}
		// Average bandwidth can never exceed capacity.
		return s.AvgBandwidth <= 100+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with a per-transfer cap, a lone transfer of size S takes
// exactly S/min(cap, capacity) seconds.
func TestPropertyCapExactDuration(t *testing.T) {
	f := func(szRaw, capRaw uint16) bool {
		size := float64(szRaw%5000) + 1
		cap := float64(capRaw%500) + 1
		e := simclock.NewEngine(t0)
		l := NewLink(e, 250, cap)
		var doneAt time.Duration
		l.Start(size, func() { doneAt = e.Elapsed() })
		e.Run()
		eff := math.Min(cap, 250)
		want := size / eff
		return almost(doneAt.Seconds(), want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestContentionReducesAggregate(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 100, 0)
	l.SetContention(0.9)
	// Two concurrent transfers: aggregate = 100 × 0.9 = 90 MB/s,
	// 45 MB/s each; 90 MB each finishes in 2 s.
	var d1, d2 time.Duration
	l.Start(90, func() { d1 = e.Elapsed() })
	l.Start(90, func() { d2 = e.Elapsed() })
	e.Run()
	if d1 != 2*time.Second || d2 != 2*time.Second {
		t.Errorf("finish times %v %v, want 2s both", d1, d2)
	}
	// A single transfer still gets full capacity (starts at the
	// current virtual time, 2 s).
	var d3 time.Duration
	l.Start(100, func() { d3 = e.Elapsed() })
	e.Run()
	if d3 != 3*time.Second {
		t.Errorf("lone transfer finished at %v, want 3s (1s duration)", d3)
	}
}

func TestContentionMoreStreamsLowerBandwidth(t *testing.T) {
	run := func(n int) float64 {
		e := simclock.NewEngine(t0)
		l := NewLink(e, 600, 0)
		l.SetContention(0.96)
		for i := 0; i < n; i++ {
			l.Start(1400, nil)
		}
		e.Run()
		return l.Stats().AvgBandwidth
	}
	few, many := run(5), run(15)
	if many >= few {
		t.Errorf("bandwidth with 15 streams (%v) should be below 5 streams (%v)", many, few)
	}
}

func TestSetContentionValidation(t *testing.T) {
	e := simclock.NewEngine(t0)
	for _, f := range []float64{0, -1, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("factor %v: expected panic", f)
				}
			}()
			NewLink(e, 100, 0).SetContention(f)
		}()
	}
}

// forBothImpls runs a test against the indexed and the retained
// reference implementation.
func forBothImpls(t *testing.T, fn func(t *testing.T, mk func(*simclock.Engine, float64, float64) *Link)) {
	t.Run("indexed", func(t *testing.T) { fn(t, NewLink) })
	t.Run("reference", func(t *testing.T) { fn(t, NewReferenceLink) })
}

// TestReadsDoNotChurnTimers is the regression test for the read-path
// fix: Remaining and Stats used to stop and re-arm the completion
// timer (and re-rate every transfer) on a pure read. Reads must not
// schedule anything, and completions must still fire correctly after
// a burst of reads.
func TestReadsDoNotChurnTimers(t *testing.T) {
	forBothImpls(t, func(t *testing.T, mk func(*simclock.Engine, float64, float64) *Link) {
		e := simclock.NewEngine(t0)
		l := mk(e, 90, 0)
		var done []int
		trs := []*Transfer{
			l.Start(100, func() { done = append(done, 0) }),
			l.Start(200, func() { done = append(done, 1) }),
			l.Start(300, func() { done = append(done, 2) }),
		}
		e.RunFor(time.Second)
		before := e.Scheduled()
		for i := 0; i < 100; i++ {
			for _, tr := range trs {
				tr.Remaining()
				tr.Rate()
			}
			l.Stats()
		}
		if after := e.Scheduled(); after != before {
			t.Fatalf("reads scheduled %d events", after-before)
		}
		if l.Active() != 3 {
			t.Fatalf("reads changed active set: %d", l.Active())
		}
		// Advance partway and read again mid-flight.
		e.RunFor(2 * time.Second)
		mid := e.Scheduled()
		s := l.Stats()
		if !almost(s.DeliveredMB, 90*3, 1e-6) {
			t.Fatalf("delivered after 3s = %v, want 270", s.DeliveredMB)
		}
		if e.Scheduled() != mid {
			t.Fatalf("Stats scheduled events")
		}
		e.Run()
		if want := []int{0, 1, 2}; len(done) != 3 || done[0] != want[0] || done[1] != want[1] || done[2] != want[2] {
			t.Fatalf("completions after read burst = %v, want %v", done, want)
		}
		if got := l.Stats().Completed; got != 3 {
			t.Fatalf("completed = %d", got)
		}
	})
}

// TestCompletionBatchOrderedByID pins the deterministic by-id
// callback order for batches of simultaneous completions (now
// produced by sort.Slice rather than an O(k²) bubble sort).
func TestCompletionBatchOrderedByID(t *testing.T) {
	forBothImpls(t, func(t *testing.T, mk func(*simclock.Engine, float64, float64) *Link) {
		e := simclock.NewEngine(t0)
		l := mk(e, 640, 0)
		var order []int
		const n = 64
		for i := 0; i < n; i++ {
			i := i
			l.Start(10, func() { order = append(order, i) })
		}
		e.Run()
		if len(order) != n {
			t.Fatalf("completions = %d, want %d", len(order), n)
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("completion %d was transfer %d; want ascending start order", i, got)
			}
		}
	})
}

// TestReferenceBasics exercises the retained implementation's core
// behaviours directly (the differential suite covers the rest).
func TestReferenceBasics(t *testing.T) {
	e := simclock.NewEngine(t0)
	l := NewReferenceLink(e, 100, 0)
	var d1, d2 time.Duration
	l.Start(100, func() { d1 = e.Elapsed() })
	l.Start(100, func() { d2 = e.Elapsed() })
	e.Run()
	if d1 != d2 || d1 != 2*time.Second {
		t.Errorf("fair-share durations %v, %v; want both 2s", d1, d2)
	}

	e = simclock.NewEngine(t0)
	l = NewReferenceLink(e, 100, 10) // cap binds: 10 MB/s each
	var capped time.Duration
	l.Start(50, func() { capped = e.Elapsed() })
	l.Start(50, nil)
	e.Run()
	if capped != 5*time.Second {
		t.Errorf("capped duration %v, want 5s", capped)
	}

	e = simclock.NewEngine(t0)
	l = NewReferenceLink(e, 100, 0)
	fired := false
	tr := l.Start(100, func() { fired = true })
	other := l.Start(100, nil)
	e.RunFor(time.Second)
	if !tr.Cancel() {
		t.Fatal("cancel reported inactive")
	}
	if tr.Cancel() {
		t.Fatal("second cancel succeeded")
	}
	e.Run()
	if fired {
		t.Error("canceled transfer ran its callback")
	}
	if rem := other.Remaining(); rem != 0 {
		t.Errorf("surviving transfer remaining = %v", rem)
	}
	if got := l.Stats().Completed; got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
}

// TestCompleteBatchAllocs pins the sort.Slice → slices.SortFunc
// conversion in the completion hot path: sorting a completion wave and
// recycling the batch scratch must not allocate. (Transfers without a
// done callback short-circuit the engine batch-schedule, whose
// callback-slice copy is the one intentional allocation in the full
// path.) The closure-over-slice sort.Slice form boxed the slice header
// and interface value, costing two allocations per wave.
func TestCompleteBatchAllocs(t *testing.T) {
	eng := simclock.NewEngine(t0)
	l := NewLink(eng, 1000, 0)
	const wave = 256
	tmpl := make([]*Transfer, wave)
	for i := range tmpl {
		// Adversarial order: descending ids force real sort work.
		tmpl[i] = &Transfer{link: l, id: wave - i}
	}
	batch := make([]*Transfer, wave)
	copy(batch, tmpl)
	l.completeBatch(batch) // warm the doneFns scratch
	allocs := testing.AllocsPerRun(100, func() {
		copy(batch, tmpl)
		l.completeBatch(batch)
	})
	if allocs != 0 {
		t.Fatalf("completeBatch allocates %.1f times per wave, want 0", allocs)
	}
	for i := 1; i < wave; i++ {
		if batch[i-1].id >= batch[i].id {
			t.Fatalf("batch not sorted ascending by id at %d: %d, %d", i, batch[i-1].id, batch[i].id)
		}
	}
}
