package netsim

import (
	"testing"

	"hta/internal/simclock"
)

// BenchmarkConcurrentTransfers measures the progressive-filling
// simulation with a steady churn of overlapping transfers.
func BenchmarkConcurrentTransfers(b *testing.B) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 1000, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Start(float64(i%100)+1, nil)
		if i%64 == 63 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkContendedTransfers includes the contention model.
func BenchmarkContendedTransfers(b *testing.B) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 1000, 50)
	l.SetContention(0.96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Start(float64(i%100)+1, nil)
		if i%64 == 63 {
			e.Run()
		}
	}
	e.Run()
}
