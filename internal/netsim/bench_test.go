package netsim

import (
	"testing"

	"hta/internal/simclock"
)

// BenchmarkConcurrentTransfers measures the progressive-filling
// simulation with a steady churn of overlapping transfers.
func BenchmarkConcurrentTransfers(b *testing.B) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 1000, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Start(float64(i%100)+1, nil)
		if i%64 == 63 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkContendedTransfers includes the contention model.
func BenchmarkContendedTransfers(b *testing.B) {
	e := simclock.NewEngine(t0)
	l := NewLink(e, 1000, 50)
	l.SetContention(0.96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Start(float64(i%100)+1, nil)
		if i%64 == 63 {
			e.Run()
		}
	}
	e.Run()
}

// runLinkScale ramps up to width concurrent transfers and then churns:
// every completion starts a replacement until total transfers have
// been started, holding the active set near width throughout. This is
// the regime the reference implementation handles in O(n) per event
// and the virtual-time implementation in O(log n).
func runLinkScale(mk func(*simclock.Engine, float64, float64) *Link, width, total int) Stats {
	e := simclock.NewEngine(t0)
	l := mk(e, 1000, 0)
	started := 0
	var churn func()
	startOne := func() {
		started++
		l.Start(float64(started%97)*3.5+1, churn)
	}
	churn = func() {
		if started < total {
			startOne()
		}
	}
	for i := 0; i < width; i++ {
		startOne()
	}
	e.Run()
	return l.Stats()
}

// BenchmarkLinkScale is the headline data-plane benchmark: wide
// concurrent-transfer churn on the virtual-time link. The 10k cell is
// the CI smoke; the 100k-wide/1M-transfer cell is the headline scale
// target unlocked by the lane-sharded engine.
func BenchmarkLinkScale(b *testing.B) {
	b.Run("10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := runLinkScale(NewLink, 10_000, 20_000)
			if s.Completed != 20_000 {
				b.Fatalf("completed %d transfers, want 20000", s.Completed)
			}
		}
	})
	b.Run("100k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := runLinkScale(NewLink, 100_000, 1_000_000)
			if s.Completed != 1_000_000 {
				b.Fatalf("completed %d transfers, want 1000000", s.Completed)
			}
		}
	})
}

// BenchmarkLinkScaleReference runs the identical scenario on the
// retained reference implementation. Like the Naive control-plane
// baselines it is excluded from the CI bench smoke; htabench -runs io
// records the measured speedup in BENCH_5.json.
func BenchmarkLinkScaleReference(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := runLinkScale(NewReferenceLink, 10_000, 20_000)
		if s.Completed != 20_000 {
			b.Fatalf("completed %d transfers, want 20000", s.Completed)
		}
	}
}
