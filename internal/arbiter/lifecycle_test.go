package arbiter

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// newLiveFleet builds an arbiter over a live cluster with the given
// tenant configs, each submitting `tasks` uniform tasks.
func newLiveFleet(tb testing.TB, seed int64, totalWorkers, tasks int, cfgs []TenantConfig, cfg Config) (*simclock.Engine, *Arbiter) {
	tb.Helper()
	eng := simclock.NewEngine(simStart)
	cluster := kubesim.NewCluster(eng, kubesim.Config{
		InitialNodes:  totalWorkers,
		MinNodes:      1,
		MaxNodes:      totalWorkers * 2,
		ProvisionMean: 30 * time.Second,
		Seed:          seed,
	})
	if cfg.Cycle == 0 {
		cfg.Cycle = 20 * time.Second
	}
	cfg.TotalWorkers = totalWorkers
	a := New(eng, cluster, cfg)
	for _, tc := range cfgs {
		ten, err := a.AddTenant(tc)
		if err != nil {
			tb.Fatal(err)
		}
		for j := 0; j < tasks; j++ {
			ten.Master().Submit(wq.TaskSpec{
				Category:  "work",
				Resources: resources.Vector{MilliCPU: 870, MemoryMB: 1700},
				Profile:   wq.Profile{ExecDuration: 2 * time.Minute, UsedCPUMilli: 870, UsedMemoryMB: 1700},
			})
		}
	}
	return eng, a
}

// conserve asserts the per-tenant conservation invariant on a master.
func conserve(tb testing.TB, id string, m *wq.Master) {
	tb.Helper()
	if got := m.CompletedCount() + m.QuarantinedCount() + m.ShedCount(); got != m.SubmittedCount() {
		tb.Fatalf("tenant %s conservation: completed %d + quarantined %d + shed %d != submitted %d",
			id, m.CompletedCount(), m.QuarantinedCount(), m.ShedCount(), m.SubmittedCount())
	}
}

// checkBooks asserts the tri-state pod-book invariants for every
// tenant: counters match the map, and every booked pod is owned.
func checkBooks(tb testing.TB, a *Arbiter) {
	tb.Helper()
	owned := 0
	for _, ten := range a.Tenants() {
		var c, ac, d int
		for name, st := range ten.pods {
			switch st {
			case podCreating:
				c++
			case podActive:
				ac++
			case podDraining:
				d++
			}
			if a.podOwner[name] != ten {
				tb.Fatalf("pod %s booked by %s but owned by someone else", name, ten.ID())
			}
			owned++
		}
		if c != ten.creating || ac != ten.active || d != ten.draining {
			tb.Fatalf("tenant %s books: counted %d/%d/%d, cached %d/%d/%d",
				ten.ID(), c, ac, d, ten.creating, ten.active, ten.draining)
		}
	}
	if owned != len(a.podOwner) {
		tb.Fatalf("podOwner holds %d entries, tenants book %d", len(a.podOwner), owned)
	}
}

// TestOffboardHandback walks a graceful departure end to end: the
// leaving tenant's pending work is quarantined, its running tasks
// finish on draining pods, its capacity water-fills to the survivor
// on the next cycles, and once quiescent the tenant is removed from
// the allocation vectors with conservation intact.
func TestOffboardHandback(t *testing.T) {
	eng, a := newLiveFleet(t, 11, 4, 10, []TenantConfig{
		{ID: "alpha", Weight: 1},
		{ID: "beta", Weight: 1},
	}, Config{})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	alpha, _ := a.Tenant("alpha")
	beta, _ := a.Tenant("beta")
	am, bm := alpha.Master(), beta.Master()

	// Run until both tenants hold workers and work is in flight.
	eng.RunWhile(func() bool {
		return (alpha.WorkerPodCount() < 2 || beta.WorkerPodCount() < 2) &&
			eng.Now().Before(simStart.Add(time.Hour))
	})
	if alpha.WorkerPodCount() < 2 || beta.WorkerPodCount() < 2 {
		t.Fatalf("fleet never warmed: alpha=%d beta=%d pods", alpha.WorkerPodCount(), beta.WorkerPodCount())
	}
	if err := a.OffboardTenant("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := a.OffboardTenant("alpha"); err != nil {
		t.Fatalf("second offboard not idempotent: %v", err)
	}
	if !alpha.Leaving() {
		t.Fatal("alpha not marked leaving")
	}
	// Pending alpha work was settled immediately; running tasks stay.
	if st := am.Stats(); st.Waiting != 0 {
		t.Fatalf("alpha still has %d waiting tasks after offboard", st.Waiting)
	}
	// The survivor absorbs the freed capacity while alpha drains out.
	betaPeak := 0
	eng.RunWhile(func() bool {
		if n := beta.WorkerPodCount(); n > betaPeak {
			betaPeak = n
		}
		return bm.CompletedCount() < bm.SubmittedCount() && eng.Now().Before(simStart.Add(6*time.Hour))
	})
	if bm.CompletedCount() != 10 {
		t.Fatalf("beta completed %d/10 by %v", bm.CompletedCount(), eng.Now())
	}
	if betaPeak < 4 {
		t.Fatalf("beta never absorbed alpha's share: peak %d pods, want 4", betaPeak)
	}
	// Let alpha's last drains and the settle event land.
	eng.RunWhile(func() bool {
		_, live := a.Tenant("alpha")
		return live && eng.Now().Before(simStart.Add(12*time.Hour))
	})
	a.Stop()
	// Alpha is gone: removed from the vectors, no pods, books settled.
	if _, ok := a.Tenant("alpha"); ok {
		t.Fatal("alpha still registered after settling")
	}
	if !alpha.Removed() {
		t.Fatal("alpha struct not marked removed")
	}
	if n := len(a.cluster.ListPods(map[string]string{"tenant": "alpha"})); n != 0 {
		t.Fatalf("alpha leaked %d pods", n)
	}
	if got := a.Stats().TenantsRemoved; got != 1 {
		t.Fatalf("TenantsRemoved = %d, want 1", got)
	}
	if len(a.Tenants()) != 1 || a.Tenants()[0] != beta || beta.idx != 0 {
		t.Fatalf("survivor not reindexed: %d tenants, beta idx %d", len(a.Tenants()), beta.idx)
	}
	if len(a.al.weight) != 1 || len(a.demand) != 1 {
		t.Fatalf("allocation vectors not spliced: %d weights, %d demands", len(a.al.weight), len(a.demand))
	}
	// Conservation on both sides of the departure: alpha's completed +
	// quarantined covers everything it ever submitted.
	conserve(t, "alpha", am)
	conserve(t, "beta", bm)
	if am.QuarantinedCount() == 0 {
		t.Fatal("alpha quarantined nothing: offboard found no pending work to settle")
	}
	checkBooks(t, a)
}

// TestRemoveTenantQuiescence pins the immediate-removal guardrails:
// unknown tenants, live pods and in-flight work all refuse.
func TestRemoveTenantQuiescence(t *testing.T) {
	_, a := newLiveFleet(t, 3, 4, 0, []TenantConfig{
		{ID: "idle", Weight: 1},
		{ID: "busy", Weight: 1},
	}, Config{})
	busy, _ := a.Tenant("busy")
	busy.Master().Submit(wq.TaskSpec{
		Category:  "work",
		Resources: resources.Vector{MilliCPU: 870, MemoryMB: 1700},
		Profile:   wq.Profile{ExecDuration: time.Minute, UsedCPUMilli: 870},
	})
	if err := a.RemoveTenant("ghost"); err == nil {
		t.Fatal("removing unknown tenant succeeded")
	}
	if err := a.RemoveTenant("busy"); err == nil {
		t.Fatal("removing tenant with waiting work succeeded")
	}
	if err := a.RemoveTenant("idle"); err != nil {
		t.Fatalf("removing quiescent tenant: %v", err)
	}
	if _, ok := a.Tenant("idle"); ok {
		t.Fatal("idle tenant still registered")
	}
	if err := a.OffboardTenant("ghost"); err == nil {
		t.Fatal("offboarding unknown tenant succeeded")
	}
}

// TestTenantMasterCrashRestore contains a single tenant's master
// failure: while down its demand reads zero (the healthy tenant
// absorbs the share), its pods stay booked; on restore the workers
// reattach, in-flight attempts rescue, and the workload completes
// with conservation and recovery counters intact.
func TestTenantMasterCrashRestore(t *testing.T) {
	eng, a := newLiveFleet(t, 17, 4, 8, []TenantConfig{
		{ID: "alpha", Weight: 1},
		{ID: "beta", Weight: 1},
	}, Config{})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	alpha, _ := a.Tenant("alpha")
	beta, _ := a.Tenant("beta")

	eng.RunWhile(func() bool {
		return alpha.Master().Stats().Running == 0 && eng.Now().Before(simStart.Add(time.Hour))
	})
	if alpha.Master().Stats().Running == 0 {
		t.Fatal("alpha never started running tasks")
	}
	podsBefore := alpha.WorkerPodCount()
	if err := a.CrashTenantMaster("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := a.CrashTenantMaster("alpha"); err == nil {
		t.Fatal("double crash succeeded")
	}
	if !alpha.Master().Down() {
		t.Fatal("alpha master not down")
	}
	// Two cycles of downtime: alpha's demand reads zero, beta absorbs.
	betaBefore := beta.WorkerPodCount()
	eng.RunUntil(eng.Now().Add(50 * time.Second))
	if g := a.Grants(); g[alpha.idx] != 0 {
		t.Fatalf("crashed tenant granted %d workers", g[alpha.idx])
	}
	if beta.WorkerPodCount() < betaBefore {
		t.Fatalf("healthy tenant shrank during alpha's outage: %d -> %d", betaBefore, beta.WorkerPodCount())
	}
	// Alpha's pods stayed booked through the outage (drains never
	// target a down master's pods because demand zero drains via the
	// shrink path... which requires a live roster; the books hold).
	if alpha.WorkerPodCount()+alpha.draining == 0 {
		t.Fatal("alpha's pods vanished during the outage")
	}
	_ = podsBefore
	if err := a.RestoreTenantMaster("alpha", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := a.RestoreTenantMaster("alpha", time.Minute); err == nil {
		t.Fatal("double restore succeeded")
	}
	rec := alpha.Master().RecoveryStats()
	if rec.Downtime <= 0 {
		t.Fatalf("recovery counters after restore: %+v", rec)
	}
	if rec.RescuedTasks == 0 {
		t.Fatalf("no in-flight attempts rescued across the restart: %+v", rec)
	}
	// Everything completes; conservation holds tenant by tenant.
	total := func() int {
		return alpha.Master().CompletedCount() + alpha.Master().QuarantinedCount() +
			beta.Master().CompletedCount() + beta.Master().QuarantinedCount()
	}
	eng.RunWhile(func() bool { return total() < 16 && eng.Now().Before(simStart.Add(12*time.Hour)) })
	a.Stop()
	if total() != 16 {
		t.Fatalf("settled %d/16 tasks by %v", total(), eng.Now())
	}
	conserve(t, "alpha", alpha.Master())
	conserve(t, "beta", beta.Master())
	if a.Stats().TenantCrashes != 1 {
		t.Fatalf("TenantCrashes = %d, want 1", a.Stats().TenantCrashes)
	}
	checkBooks(t, a)
}

// TestCrashLoopQuarantine trips the breaker: repeated master crashes
// inside the window quarantine the tenant — demand zero, pods
// released, even the quota floor handed back — for an exponentially
// growing backoff.
func TestCrashLoopQuarantine(t *testing.T) {
	eng, a := newLiveFleet(t, 23, 4, 12, []TenantConfig{
		{ID: "flaky", Weight: 1, QuotaMin: 2},
		{ID: "steady", Weight: 1},
	}, Config{Quarantine: QuarantinePolicy{
		CrashThreshold: 2,
		Window:         10 * time.Minute,
		Backoff:        5 * time.Minute,
		BackoffMax:     8 * time.Minute,
	}})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	flaky, _ := a.Tenant("flaky")
	steady, _ := a.Tenant("steady")
	eng.RunUntil(simStart.Add(3 * time.Minute))

	crashRestoreTenant := func() {
		if err := a.CrashTenantMaster("flaky"); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(eng.Now().Add(10 * time.Second))
		if err := a.RestoreTenantMaster("flaky", 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	crashRestoreTenant()
	if a.Stats().QuarantineTrips != 0 {
		t.Fatal("breaker tripped below threshold")
	}
	crashRestoreTenant()
	if got := a.Stats().QuarantineTrips; got != 1 {
		t.Fatalf("QuarantineTrips = %d, want 1", got)
	}
	until1 := flaky.QuarantinedUntil()
	if d := until1.Sub(eng.Now()); d <= 4*time.Minute || d > 5*time.Minute {
		t.Fatalf("first backoff = %v, want ~5m", d)
	}
	// While quarantined: zero grants despite the quota floor, and the
	// held pods drain back to the pool.
	eng.RunUntil(eng.Now().Add(time.Minute))
	if g := a.Grants(); g[flaky.idx] != 0 {
		t.Fatalf("quarantined tenant granted %d (floor must release)", g[flaky.idx])
	}
	// After expiry the tenant is re-planned and regains capacity.
	eng.RunWhile(func() bool {
		return flaky.WorkerPodCount() == 0 && eng.Now().Before(until1.Add(30*time.Minute))
	})
	if flaky.WorkerPodCount() == 0 {
		t.Fatal("tenant never recovered after quarantine expiry")
	}
	if eng.Now().Before(until1) {
		t.Fatal("tenant regained pods while still quarantined")
	}
	// A second trip doubles the backoff, capped at BackoffMax (8m).
	crashRestoreTenant()
	crashRestoreTenant()
	if got := a.Stats().QuarantineTrips; got != 2 {
		t.Fatalf("QuarantineTrips = %d, want 2", got)
	}
	if d := flaky.QuarantinedUntil().Sub(eng.Now()); d <= 7*time.Minute || d > 8*time.Minute {
		t.Fatalf("second backoff = %v, want ~8m (doubled, capped)", d)
	}
	// The bystander is untouched throughout: it keeps completing.
	eng.RunWhile(func() bool {
		return steady.Master().CompletedCount() < 12 && eng.Now().Before(simStart.Add(12*time.Hour))
	})
	if steady.Master().CompletedCount() != 12 {
		t.Fatalf("steady completed %d/12", steady.Master().CompletedCount())
	}
	a.Stop()
	checkBooks(t, a)
}

// TestDrainStateMachine covers the tri-state transitions the cycle
// never exercises on the happy path: surplus still-creating pods are
// canceled outright (never drained), and a pod killed underneath the
// arbiter requeues its tasks through the Killing event.
func TestDrainStateMachine(t *testing.T) {
	eng := simclock.NewEngine(simStart)
	cluster := kubesim.NewCluster(eng, kubesim.Config{
		InitialNodes:  2,
		MinNodes:      1,
		MaxNodes:      8,
		ProvisionMean: 20 * time.Minute, // slow: created pods stay Pending
		Seed:          5,
	})
	a := New(eng, cluster, Config{Cycle: 15 * time.Second, TotalWorkers: 6})
	ten, err := a.AddTenant(TenantConfig{ID: "only"})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 0, 8)
	for j := 0; j < 8; j++ {
		ids = append(ids, ten.Master().Submit(wq.TaskSpec{
			Category:  "work",
			Resources: resources.Vector{MilliCPU: 870, MemoryMB: 1700},
			Profile:   wq.Profile{ExecDuration: 5 * time.Minute, UsedCPUMilli: 870, UsedMemoryMB: 1700},
		}))
	}
	a.RunCycle()
	if ten.creating == 0 {
		t.Fatal("no creating pods to cancel")
	}
	// Cancel most of the queue: demand collapses, surplus creating
	// pods must be canceled (deleted while Pending), not drained.
	for _, id := range ids[2:] {
		_ = ten.Master().Cancel(id)
	}
	drainedBefore := a.Stats().PodsDrained
	a.RunCycle()
	checkBooks(t, a)
	if a.Stats().PodsDrained != drainedBefore {
		t.Fatalf("creating pods were drained, not canceled: %d drains", a.Stats().PodsDrained-drainedBefore)
	}
	// Let the survivors start and run, then kill one pod underneath
	// the arbiter: the Killing event must requeue its tasks.
	eng.RunWhile(func() bool {
		return ten.Master().Stats().Running == 0 && eng.Now().Before(simStart.Add(2*time.Hour))
	})
	if ten.Master().Stats().Running == 0 {
		t.Fatal("no task ever ran")
	}
	var victim string
	for name, st := range ten.pods {
		if st == podActive && ten.Master().WorkerBusy(name) {
			victim = name
			break
		}
	}
	if victim == "" {
		t.Fatal("no busy active pod to kill")
	}
	requeuesBefore := ten.Master().FailureStats().Requeues
	if err := cluster.DeletePod(victim); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now().Add(time.Second))
	checkBooks(t, a)
	if _, booked := ten.pods[victim]; booked {
		t.Fatal("killed pod still booked")
	}
	if got := ten.Master().FailureStats().Requeues; got <= requeuesBefore {
		t.Fatal("pod kill requeued nothing")
	}
	// Drive to completion: every surviving task settles.
	for a.Stats().Cycles < 400 && ten.Master().CompletedCount()+ten.Master().QuarantinedCount() < 2 {
		eng.RunUntil(eng.Now().Add(15 * time.Second))
		a.RunCycle()
	}
	conserveLive(t, ten)
	checkBooks(t, a)
}

// conserveLive asserts conservation counting still-pending work.
func conserveLive(tb testing.TB, ten *Tenant) {
	tb.Helper()
	m := ten.Master()
	st := m.Stats()
	if got := m.CompletedCount() + m.QuarantinedCount() + m.ShedCount() + st.Waiting + st.Running; got != m.SubmittedCount()-canceledOf(m) {
		// Canceled tasks are terminal too; fold them in.
		tb.Fatalf("tenant %s live conservation: %d accounted of %d submitted", ten.ID(), got, m.SubmittedCount())
	}
}

// canceledOf counts canceled tasks (terminal but neither completed
// nor quarantined).
func canceledOf(m *wq.Master) int {
	n := 0
	for id := 1; id <= m.SubmittedCount(); id++ { // IDs start at 1
		if tk, ok := m.Task(id); ok && tk.State == wq.TaskCanceled {
			n++
		}
	}
	return n
}

// TestDrainChurnSeeded stresses the tri-state book-keeping under
// seeded churn: random submit bursts, cancels and pod kills, with the
// book invariants asserted after every step.
func TestDrainChurnSeeded(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			eng, a := newLiveFleet(t, seed, 6, 4, []TenantConfig{
				{ID: "a", Weight: 2},
				{ID: "b", Weight: 1},
				{ID: "c", Weight: 1, QuotaMax: 3},
			}, Config{Cycle: 15 * time.Second})
			if err := a.Start(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			for step := 0; step < 60; step++ {
				eng.RunUntil(eng.Now().Add(20 * time.Second))
				ten := a.Tenants()[rng.Intn(len(a.Tenants()))]
				switch rng.Intn(4) {
				case 0: // submit burst
					for j := 0; j < 1+rng.Intn(3); j++ {
						ten.Master().Submit(wq.TaskSpec{
							Category:  "work",
							Resources: resources.Vector{MilliCPU: 870, MemoryMB: 1700},
							Profile:   wq.Profile{ExecDuration: time.Duration(1+rng.Intn(4)) * time.Minute, UsedCPUMilli: 870, UsedMemoryMB: 1700},
						})
					}
				case 1: // kill a random booked pod
					for name := range ten.pods {
						_ = a.cluster.DeletePod(name)
						break
					}
				case 2: // cancel a random waiting task
					ten.Master().ForEachWaiting(func(tk *wq.Task) {})
				}
				checkBooks(t, a)
			}
			// Drain the system dry and check final conservation.
			deadline := eng.Now().Add(8 * time.Hour)
			eng.RunWhile(func() bool {
				pending := 0
				for _, ten := range a.Tenants() {
					st := ten.Master().Stats()
					pending += st.Waiting + st.Running
				}
				return pending > 0 && eng.Now().Before(deadline)
			})
			a.Stop()
			for _, ten := range a.Tenants() {
				st := ten.Master().Stats()
				if st.Waiting+st.Running != 0 {
					t.Fatalf("tenant %s never drained: %+v", ten.ID(), st)
				}
				conserve(t, ten.ID(), ten.Master())
			}
			checkBooks(t, a)
		})
	}
}
