package arbiter

import (
	"cmp"
	"slices"
)

// Allocation semantics (the spec both the packed allocator below and
// the naive referenceAllocate in reference.go implement — the
// differential suite holds them byte-identical):
//
//  1. Each tenant's effective demand is capped at its quota ceiling
//     (QuotaMax, 0 = unlimited): capᵢ = min(demandᵢ, ceilᵢ).
//  2. Floors first, class-blind: every tenant is owed
//     min(capᵢ, floorᵢ) before anyone gets discretionary capacity. If
//     the floors themselves oversubscribe the cluster they are
//     water-filled by weight like any other want.
//  3. Remaining capacity is granted by priority class, descending: a
//     lower class sees capacity only after every higher class's capped
//     demand is satisfied.
//  4. Within a class (and within the floor stage), capacity is divided
//     by integer weighted max-min water-filling: repeatedly give every
//     unsatisfied tenant weightᵢ·⌊R/ΣW⌋ (capped at its remaining
//     want) until the whole-quantum rounds are exhausted.
//  5. The sub-quantum remainder (R < ΣW) goes one worker at a time in
//     rounds over the unsatisfied tenants ordered by (virtual service
//     ascending, tenant index ascending). Virtual service is the
//     cumulative weighted grant vᵢ += grantᵢ·vsvcUnit/weightᵢ,
//     committed once per cycle — deficit-round-robin, so when tenants
//     outnumber workers the single workers rotate across cycles
//     instead of pinning to the lowest indices.
//  6. PolicyGreedy ignores weights, floors and classes: demands are
//     satisfied in tenant index order until capacity runs out (the
//     E-J single-shared-autoscaler baseline). Ceilings still apply.
//
// The allocator is deliberately a pure function of
// (config, vsvc, demand): plan passes never mutate tenant state, so
// the incremental and reference arbiters can be run side by side on
// identical inputs.
type allocator struct {
	policy Policy
	total  int64 // cluster-wide worker capacity C

	// Per-tenant configuration, packed into int64 vectors so the
	// allocation pass streams flat arrays instead of chasing tenant
	// structs.
	weight []int64
	floor  []int64
	ceil   []int64 // 0 = unlimited
	prio   []int32

	// vsvc is the cumulative weighted service counter (stage 5).
	vsvc []int64

	// classIdx holds tenant indices sorted by (priority descending,
	// index ascending); classDirty marks it for rebuild after
	// addTenant.
	classIdx   []int32
	classDirty bool

	// Pooled scratch: reused across cycles so a steady-state
	// allocation performs zero heap allocations (asserted by
	// TestArbiterCycleZeroAlloc).
	capi []int64
	want []int64
	act  []int32
}

// vsvcUnit scales the virtual-service counter so integer division by
// small weights keeps precision.
const vsvcUnit = 1 << 20

// maxWeight bounds tenant weights so weight sums and weight·quantum
// products stay far from int64 overflow.
const maxWeight = 1 << 20

func (al *allocator) addTenant(weight, floor, ceil int64, prio int32) {
	if weight < 1 {
		weight = 1
	}
	if weight > maxWeight {
		weight = maxWeight
	}
	if floor < 0 {
		floor = 0
	}
	if ceil < 0 {
		ceil = 0
	}
	al.weight = append(al.weight, weight)
	al.floor = append(al.floor, floor)
	al.ceil = append(al.ceil, ceil)
	al.prio = append(al.prio, prio)
	al.vsvc = append(al.vsvc, 0)
	al.capi = append(al.capi, 0)
	al.want = append(al.want, 0)
	al.classDirty = true
}

// removeTenant splices tenant i out of every packed vector. Callers
// must reindex their own tenant slots to match.
func (al *allocator) removeTenant(i int) {
	al.weight = slices.Delete(al.weight, i, i+1)
	al.floor = slices.Delete(al.floor, i, i+1)
	al.ceil = slices.Delete(al.ceil, i, i+1)
	al.prio = slices.Delete(al.prio, i, i+1)
	al.vsvc = slices.Delete(al.vsvc, i, i+1)
	al.capi = al.capi[:len(al.weight)]
	al.want = al.want[:len(al.weight)]
	al.classDirty = true
}

func (al *allocator) rebuildClasses() {
	al.classIdx = al.classIdx[:0]
	for i := range al.weight {
		al.classIdx = append(al.classIdx, int32(i))
	}
	slices.SortFunc(al.classIdx, func(a, b int32) int {
		if c := cmp.Compare(al.prio[b], al.prio[a]); c != 0 {
			return c // priority descending
		}
		return cmp.Compare(a, b) // index ascending within a class
	})
	al.classDirty = false
}

// allocate computes grants for the given demands. demand and grant
// must both have one entry per tenant; grant is overwritten.
func (al *allocator) allocate(demand, grant []int64) {
	if al.classDirty {
		al.rebuildClasses()
	}
	n := len(al.weight)
	R := al.total
	for i := 0; i < n; i++ {
		c := demand[i]
		if c < 0 {
			c = 0
		}
		if al.ceil[i] > 0 && c > al.ceil[i] {
			c = al.ceil[i]
		}
		al.capi[i] = c
		grant[i] = 0
	}
	if al.policy == PolicyGreedy {
		for i := 0; i < n && R > 0; i++ {
			g := al.capi[i]
			if g > R {
				g = R
			}
			grant[i] = g
			R -= g
		}
		return
	}
	// Stage 2: floors, class-blind.
	for i := 0; i < n; i++ {
		f := al.floor[i]
		if f > al.capi[i] {
			f = al.capi[i]
		}
		al.want[i] = f
	}
	R = al.fill(al.classIdx, R, grant)
	// Stage 3: priority classes, descending. classIdx is grouped by
	// priority, so each maximal run of equal priorities is one class.
	for lo := 0; lo < len(al.classIdx) && R > 0; {
		hi := lo + 1
		p := al.prio[al.classIdx[lo]]
		for hi < len(al.classIdx) && al.prio[al.classIdx[hi]] == p {
			hi++
		}
		span := al.classIdx[lo:hi]
		for _, i := range span {
			al.want[i] = al.capi[i] - grant[i]
		}
		R = al.fill(span, R, grant)
		lo = hi
	}
}

// fill water-fills R workers over the tenants in idxs according to
// al.want (stages 4–5 of the spec), adding into grant and returning
// the unallocated remainder.
func (al *allocator) fill(idxs []int32, R int64, grant []int64) int64 {
	act := al.act[:0]
	for _, i := range idxs {
		if al.want[i] > 0 {
			act = append(act, i)
		}
	}
	for R > 0 && len(act) > 0 {
		var W int64
		for _, i := range act {
			W += al.weight[i]
		}
		q := R / W
		if q == 0 {
			// Stage 5: sub-quantum remainder, one worker per round in
			// deficit order. act is sorted once; rounds preserve the
			// order while filtering satisfied tenants in place.
			slices.SortFunc(act, func(a, b int32) int {
				if c := cmp.Compare(al.vsvc[a], al.vsvc[b]); c != 0 {
					return c
				}
				return cmp.Compare(a, b)
			})
			for R > 0 && len(act) > 0 {
				out := act[:0]
				for _, i := range act {
					if R > 0 {
						grant[i]++
						al.want[i]--
						R--
					}
					if al.want[i] > 0 {
						out = append(out, i)
					}
				}
				act = out
			}
			break
		}
		out := act[:0]
		for _, i := range act {
			g := al.weight[i] * q
			if g > al.want[i] {
				g = al.want[i]
			}
			grant[i] += g
			al.want[i] -= g
			R -= g
			if al.want[i] > 0 {
				out = append(out, i)
			}
		}
		act = out
	}
	al.act = act[:0]
	return R
}

// commit folds one cycle's grants into the virtual-service counters.
// Called exactly once per cycle, after planning (incremental or
// reference — both plan against the same pre-commit counters).
func (al *allocator) commit(grant []int64) {
	for i := range al.vsvc {
		al.vsvc[i] += grant[i] * vsvcUnit / al.weight[i]
	}
}
