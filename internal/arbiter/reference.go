package arbiter

import (
	"cmp"
	"slices"
	"time"

	"hta/internal/core"
	"hta/internal/resources"
	"hta/internal/wq"
)

// This file retains the naive full-replan arbiter the incremental
// path replaced, as a differential-testing oracle (house style: see
// simclock/reference.go, wq's naive placement scan, netsim's
// reference link, core's ReferenceEstimateScale). It is deliberately
// written the obvious way — fresh snapshots, fresh planner, fresh
// allocations, no memoization, no dirty tracking, per-tenant maps and
// sorts — so its per-cycle cost is O(T × planner) and its code shares
// nothing with the packed hot path beyond the allocation spec in
// allocate.go. The differential suite and fuzz target hold the two
// byte-identical on every cycle.

// referencePlan computes one cycle's grants the naive way: every
// tenant is re-planned from a fresh snapshot, every cycle.
func (a *Arbiter) referencePlan(grant []int64) {
	demand := make([]int64, len(a.tenants))
	for i, t := range a.tenants {
		if a.inactive(t) {
			demand[i] = 0
			a.maybeSettle(t)
			continue
		}
		demand[i] = a.referenceDigest(t)
	}
	out := referenceAllocate(refInput{
		policy: a.cfg.Policy,
		total:  int64(a.cfg.TotalWorkers),
		weight: a.al.weight,
		floor:  a.al.floor,
		ceil:   a.al.ceil,
		prio:   a.al.prio,
		vsvc:   a.al.vsvc,
		demand: demand,
	})
	copy(grant, out)
}

// referenceDigest recomputes the tenant's demand from scratch:
// freshly allocated worker, running and waiting snapshots and a
// throwaway planner (core.EstimateScale allocates one per call). The
// inputs match estimateInput's exactly — same zero Now, same
// zero-length window, same dispatch-order waiting snapshot — so the
// digests must agree whenever the memo is sound.
func (a *Arbiter) referenceDigest(t *Tenant) int64 {
	var workers []core.WorkerInfo
	t.master.ForEachWorker(func(id string, capacity resources.Vector, draining bool) {
		if draining {
			return
		}
		workers = append(workers, core.WorkerInfo{ID: id, Capacity: capacity})
	})
	running := t.master.RunningTasks()
	var waiting []wq.Task
	t.master.ForEachWaiting(func(task *wq.Task) { waiting = append(waiting, *task) })
	dec := core.EstimateScale(core.EstimateInput{
		Now:            time.Time{},
		InitTime:       0,
		DefaultCycle:   a.cfg.Cycle,
		Running:        running,
		Waiting:        waiting,
		Estimator:      t.mon,
		Workers:        workers,
		WorkerTemplate: a.template,
	})
	d := int64(len(workers) + dec.ScaleChange)
	if d < 0 {
		d = 0
	}
	return d
}

// refInput carries one allocation's inputs; every slice is read-only.
type refInput struct {
	policy Policy
	total  int64
	weight []int64
	floor  []int64
	ceil   []int64
	prio   []int32
	vsvc   []int64
	demand []int64
}

// referenceAllocate implements the allocation spec (allocate.go, top
// comment) the straightforward way: tenant structs, fresh slices,
// repeated sums. It must produce exactly the packed allocator's
// grants.
func referenceAllocate(in refInput) []int64 {
	n := len(in.weight)
	grant := make([]int64, n)
	capi := make([]int64, n)
	for i := 0; i < n; i++ {
		c := in.demand[i]
		if c < 0 {
			c = 0
		}
		if in.ceil[i] > 0 && c > in.ceil[i] {
			c = in.ceil[i]
		}
		capi[i] = c
	}
	R := in.total
	if in.policy == PolicyGreedy {
		for i := 0; i < n && R > 0; i++ {
			g := min(capi[i], R)
			grant[i] = g
			R -= g
		}
		return grant
	}
	// Floors, class-blind.
	want := make([]int64, n)
	all := make([]int, 0, n)
	for i := 0; i < n; i++ {
		want[i] = min(capi[i], in.floor[i])
		all = append(all, i)
	}
	R = refFill(in, all, want, R, grant)
	// Priority classes, descending.
	classes := map[int32][]int{}
	var prios []int32
	for i := 0; i < n; i++ {
		p := in.prio[i]
		if _, seen := classes[p]; !seen {
			prios = append(prios, p)
		}
		classes[p] = append(classes[p], i)
	}
	slices.SortFunc(prios, func(a, b int32) int { return cmp.Compare(b, a) })
	for _, p := range prios {
		if R <= 0 {
			break
		}
		idxs := classes[p]
		for _, i := range idxs {
			want[i] = capi[i] - grant[i]
		}
		R = refFill(in, idxs, want, R, grant)
	}
	return grant
}

// refFill is the spec's stages 4–5 written plainly.
func refFill(in refInput, idxs []int, want []int64, R int64, grant []int64) int64 {
	var act []int
	for _, i := range idxs {
		if want[i] > 0 {
			act = append(act, i)
		}
	}
	for R > 0 && len(act) > 0 {
		var W int64
		for _, i := range act {
			W += in.weight[i]
		}
		q := R / W
		if q == 0 {
			// Sub-quantum remainder: one worker per round, deficit
			// order, sorted once.
			slices.SortFunc(act, func(a, b int) int {
				if c := cmp.Compare(in.vsvc[a], in.vsvc[b]); c != 0 {
					return c
				}
				return cmp.Compare(a, b)
			})
			for R > 0 && len(act) > 0 {
				var next []int
				for _, i := range act {
					if R > 0 {
						grant[i]++
						want[i]--
						R--
					}
					if want[i] > 0 {
						next = append(next, i)
					}
				}
				act = next
			}
			return R
		}
		var next []int
		for _, i := range act {
			g := min(in.weight[i]*q, want[i])
			grant[i] += g
			want[i] -= g
			R -= g
			if want[i] > 0 {
				next = append(next, i)
			}
		}
		act = next
	}
	return R
}
