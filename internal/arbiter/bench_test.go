package arbiter

import (
	"testing"
)

// BenchmarkArbiterCycle measures one arbitration planning pass at 1000
// tenants, steady state: every tenant holds a queue of declared tasks
// and nothing changes between cycles, so the incremental path serves
// every digest from the memo while the reference re-plans all 1000
// tenants from fresh snapshots. The issue's acceptance bar is a ≥50×
// gap (checked by htabench's E-J run, which records both).
func BenchmarkArbiterCycle(b *testing.B) {
	b.Run("incremental-1000", func(b *testing.B) {
		_, a := newTestFleet(b, 1000, 8, 4000)
		a.PlanOnly() // warm the digests
		before := a.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.PlanOnly()
		}
		b.StopTimer()
		if d := a.Stats().Replans - before.Replans; d != 0 {
			b.Fatalf("steady-state cycles re-planned %d digests, want 0", d)
		}
	})
	b.Run("reference-1000", func(b *testing.B) {
		_, a := newTestFleet(b, 1000, 8, 4000)
		a.SetNaiveArbitration(true)
		a.PlanOnly()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.PlanOnly()
		}
	})
	// Smaller points for scaling curves.
	b.Run("incremental-100", func(b *testing.B) {
		_, a := newTestFleet(b, 100, 8, 400)
		a.PlanOnly()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.PlanOnly()
		}
	})
	b.Run("reference-100", func(b *testing.B) {
		_, a := newTestFleet(b, 100, 8, 400)
		a.SetNaiveArbitration(true)
		a.PlanOnly()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.PlanOnly()
		}
	})
}

// BenchmarkArbiterRestore measures one full crash/restore round at
// 1000 tenants with live pod books: snapshot capture, state wipe,
// restore, per-tenant reconcile against the cluster and label-based
// re-adoption. This is the recovery-latency half of the robustness
// story (htabench's tenantchaos run records it as the restore probe).
func BenchmarkArbiterRestore(b *testing.B) {
	_, a := newTestFleet(b, 1000, 8, 4000)
	a.RunCycle() // create pods, warm digests
	a.RunCycle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, ok := a.Crash()
		if !ok {
			b.Fatal("crash refused")
		}
		a.Restore(snap)
	}
	b.StopTimer()
	if a.Stats().Restores != b.N {
		b.Fatalf("Restores = %d, want %d", a.Stats().Restores, b.N)
	}
}
