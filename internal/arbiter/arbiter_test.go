package arbiter

import (
	"fmt"
	"slices"
	"testing"
	"time"

	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

var simStart = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

// mkAlloc builds an allocator from per-tenant (weight, floor, ceil,
// prio) rows.
func mkAlloc(policy Policy, total int64, rows [][4]int64) *allocator {
	al := &allocator{policy: policy, total: total}
	for _, r := range rows {
		al.addTenant(r[0], r[1], r[2], int32(r[3]))
	}
	return al
}

func runAlloc(al *allocator, demand []int64) []int64 {
	grant := make([]int64, len(demand))
	al.allocate(demand, grant)
	return grant
}

// TestAllocateWaterFill pins the allocation spec on table-driven
// cases, including the degenerate ones: one tenant, zero demand,
// all-equal weights, ceiling-bound tenants, oversubscribed floors,
// priority classes and the greedy baseline.
func TestAllocateWaterFill(t *testing.T) {
	cases := []struct {
		name   string
		policy Policy
		total  int64
		rows   [][4]int64 // weight, floor, ceil, prio
		demand []int64
		want   []int64
	}{
		{
			name:  "one tenant under capacity",
			total: 10, rows: [][4]int64{{1, 0, 0, 0}},
			demand: []int64{4}, want: []int64{4},
		},
		{
			name:  "one tenant over capacity",
			total: 10, rows: [][4]int64{{1, 0, 0, 0}},
			demand: []int64{25}, want: []int64{10},
		},
		{
			name:  "zero demand",
			total: 10, rows: [][4]int64{{1, 0, 0, 0}, {4, 2, 0, 0}},
			demand: []int64{0, 0}, want: []int64{0, 0},
		},
		{
			name:  "negative demand clamped",
			total: 10, rows: [][4]int64{{1, 0, 0, 0}},
			demand: []int64{-3}, want: []int64{0},
		},
		{
			name:  "all-equal weights split evenly",
			total: 6, rows: [][4]int64{{1, 0, 0, 0}, {1, 0, 0, 0}, {1, 0, 0, 0}},
			demand: []int64{10, 10, 10}, want: []int64{2, 2, 2},
		},
		{
			name:  "weights are proportional",
			total: 6, rows: [][4]int64{{1, 0, 0, 0}, {2, 0, 0, 0}, {3, 0, 0, 0}},
			demand: []int64{10, 10, 10}, want: []int64{1, 2, 3},
		},
		{
			name:  "abundance satisfies everyone",
			total: 100, rows: [][4]int64{{1, 0, 0, 0}, {7, 0, 0, 0}, {2, 0, 0, 0}},
			demand: []int64{5, 9, 3}, want: []int64{5, 9, 3},
		},
		{
			name:  "ceiling-bound tenant releases surplus",
			total: 9, rows: [][4]int64{{1, 0, 2, 0}, {1, 0, 0, 0}, {1, 0, 0, 0}},
			demand: []int64{5, 5, 5}, want: []int64{2, 4, 3},
		},
		{
			name:  "ceiling below demand binds in abundance",
			total: 100, rows: [][4]int64{{1, 0, 3, 0}, {1, 0, 0, 0}},
			demand: []int64{10, 10}, want: []int64{3, 10},
		},
		{
			name:  "floor guaranteed before discretionary",
			total: 4, rows: [][4]int64{{1, 3, 0, 0}, {1, 0, 0, 0}},
			demand: []int64{5, 5}, want: []int64{4, 0},
		},
		{
			name:  "floor capped at demand",
			total: 6, rows: [][4]int64{{1, 4, 0, 0}, {1, 0, 0, 0}},
			demand: []int64{1, 10}, want: []int64{1, 5},
		},
		{
			name:  "oversubscribed floors water-fill by weight",
			total: 4, rows: [][4]int64{{1, 4, 0, 0}, {3, 4, 0, 0}},
			demand: []int64{9, 9}, want: []int64{1, 3},
		},
		{
			name:  "higher class drains first",
			total: 5, rows: [][4]int64{{1, 0, 0, 1}, {1, 0, 0, 0}},
			demand: []int64{4, 4}, want: []int64{4, 1},
		},
		{
			name:  "floors cross class boundaries",
			total: 4, rows: [][4]int64{{1, 0, 0, 1}, {1, 2, 0, 0}},
			demand: []int64{4, 4}, want: []int64{2, 2},
		},
		{
			name:   "greedy takes in index order",
			policy: PolicyGreedy,
			total:  5, rows: [][4]int64{{1, 0, 0, 0}, {9, 5, 0, 1}},
			demand: []int64{4, 4}, want: []int64{4, 1},
		},
		{
			name:   "greedy honors ceilings",
			policy: PolicyGreedy,
			total:  5, rows: [][4]int64{{1, 0, 2, 0}, {1, 0, 0, 0}},
			demand: []int64{4, 4}, want: []int64{2, 3},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			al := mkAlloc(c.policy, c.total, c.rows)
			got := runAlloc(al, c.demand)
			if !slices.Equal(got, c.want) {
				t.Fatalf("allocate(%v) = %v, want %v", c.demand, got, c.want)
			}
			// The reference must agree on every pinned case too.
			ref := referenceAllocate(refInput{
				policy: c.policy, total: c.total,
				weight: al.weight, floor: al.floor, ceil: al.ceil,
				prio: al.prio, vsvc: al.vsvc, demand: c.demand,
			})
			if !slices.Equal(ref, c.want) {
				t.Fatalf("referenceAllocate(%v) = %v, want %v", c.demand, ref, c.want)
			}
		})
	}
}

// TestAllocateDeficitRotation pins stage 5: with one worker and three
// equal tenants, the virtual-service counter rotates the grant across
// cycles instead of pinning it to tenant 0.
func TestAllocateDeficitRotation(t *testing.T) {
	al := mkAlloc(PolicyFairShare, 1, [][4]int64{{1, 0, 0, 0}, {1, 0, 0, 0}, {1, 0, 0, 0}})
	demand := []int64{5, 5, 5}
	var got [][]int64
	for cycle := 0; cycle < 3; cycle++ {
		g := runAlloc(al, demand)
		al.commit(g)
		got = append(got, g)
	}
	want := [][]int64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for i := range want {
		if !slices.Equal(got[i], want[i]) {
			t.Fatalf("cycle %d grant = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestAllocateWeightedRotation checks the deficit counter is weight-
// normalized: over many scarce cycles a weight-2 tenant accumulates
// twice the grants of a weight-1 tenant.
func TestAllocateWeightedRotation(t *testing.T) {
	al := mkAlloc(PolicyFairShare, 1, [][4]int64{{2, 0, 0, 0}, {1, 0, 0, 0}})
	demand := []int64{100, 100}
	totals := []int64{0, 0}
	for cycle := 0; cycle < 30; cycle++ {
		g := runAlloc(al, demand)
		al.commit(g)
		totals[0] += g[0]
		totals[1] += g[1]
	}
	if totals[0] != 20 || totals[1] != 10 {
		t.Fatalf("30 scarce cycles split %v, want [20 10]", totals)
	}
}

// newTestFleet builds an arbiter over n tenants on a cluster that is
// never run: every tenant holds tasksEach declared waiting tasks, so
// demand digests are non-trivial but the master state is frozen. The
// engine is returned for tests that do run it.
func newTestFleet(tb testing.TB, n, tasksEach, totalWorkers int) (*simclock.Engine, *Arbiter) {
	tb.Helper()
	eng := simclock.NewEngine(simStart)
	cluster := kubesim.NewCluster(eng, kubesim.Config{
		InitialNodes: 1,
		MinNodes:     1,
		MaxNodes:     4,
		Seed:         1,
	})
	a := New(eng, cluster, Config{Cycle: 30 * time.Second, TotalWorkers: totalWorkers})
	for i := 0; i < n; i++ {
		ten, err := a.AddTenant(TenantConfig{ID: fmt.Sprintf("t%04d", i), Weight: 1 + i%3})
		if err != nil {
			tb.Fatal(err)
		}
		for j := 0; j < tasksEach; j++ {
			ten.Master().Submit(wq.TaskSpec{
				Category:  fmt.Sprintf("cat%d", i%4),
				Resources: resources.Vector{MilliCPU: 870, MemoryMB: 1700},
				Profile:   wq.Profile{ExecDuration: time.Minute, UsedCPUMilli: 870, UsedMemoryMB: 1700},
			})
		}
	}
	return eng, a
}

// TestDirtyTracking checks the memoization contract: an untouched
// tenant is served from the memo, and every mutation class that can
// change the digest — submission, cancellation, worker connect,
// arbiter-initiated drain — forces exactly the dirty tenants to
// re-plan.
func TestDirtyTracking(t *testing.T) {
	_, a := newTestFleet(t, 8, 4, 0) // TotalWorkers 0: no pods, pure planning
	a.RunCycle()
	if got := a.Stats().Replans; got != 8 {
		t.Fatalf("first cycle replans = %d, want 8", got)
	}
	a.RunCycle()
	st := a.Stats()
	if st.Replans != 8 || st.Skipped != 8 {
		t.Fatalf("clean cycle: replans=%d skipped=%d, want 8/8", st.Replans, st.Skipped)
	}
	// One tenant submits: only it re-plans.
	a.tenants[3].Master().Submit(wq.TaskSpec{
		Category:  "extra",
		Resources: resources.Vector{MilliCPU: 870, MemoryMB: 1700},
		Profile:   wq.Profile{ExecDuration: time.Minute, UsedCPUMilli: 870},
	})
	before := a.Stats().Replans
	a.RunCycle()
	if got := a.Stats().Replans - before; got != 1 {
		t.Fatalf("after one submit, replans = %d, want 1", got)
	}
	// The memoized digest must equal a fresh full recompute for every
	// tenant — the soundness claim behind skipping.
	for _, ten := range a.tenants {
		if fresh := a.referenceDigest(ten); fresh != ten.demand {
			t.Fatalf("tenant %s memoized demand %d != fresh digest %d", ten.ID(), ten.demand, fresh)
		}
	}
}

// TestArbiterEndToEnd is the pod-glue smoke test: tenants with real
// workloads on a live cluster run to completion under the arbitration
// loop, workers are created and drained through the kubesim pod
// lifecycle, and the books balance.
func TestArbiterEndToEnd(t *testing.T) {
	eng := simclock.NewEngine(simStart)
	cluster := kubesim.NewCluster(eng, kubesim.Config{
		InitialNodes:  4,
		MinNodes:      1,
		MaxNodes:      8,
		ProvisionMean: 30 * time.Second,
		Seed:          7,
	})
	a := New(eng, cluster, Config{Cycle: 20 * time.Second, TotalWorkers: 8})
	cfgs := []TenantConfig{
		{ID: "alpha", Weight: 2},
		{ID: "beta", Weight: 1, QuotaMin: 1},
		{ID: "gamma", Weight: 1, QuotaMax: 2},
		{ID: "delta", Weight: 1, Priority: 1},
	}
	total := 0
	for _, cfg := range cfgs {
		ten, err := a.AddTenant(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 6; j++ {
			ten.Master().Submit(wq.TaskSpec{
				Category:  "work",
				Resources: resources.Vector{MilliCPU: 870, MemoryMB: 1700},
				Profile:   wq.Profile{ExecDuration: 90 * time.Second, UsedCPUMilli: 870, UsedMemoryMB: 1700},
			})
			total++
		}
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	done := func() int {
		n := 0
		for _, ten := range a.Tenants() {
			n += ten.Master().CompletedCount()
		}
		return n
	}
	deadline := simStart.Add(4 * time.Hour)
	eng.RunWhile(func() bool { return done() < total && eng.Now().Before(deadline) })
	a.Stop()
	if done() != total {
		t.Fatalf("completed %d/%d tasks by %v", done(), total, eng.Now())
	}
	st := a.Stats()
	if st.PodsCreated == 0 || st.Cycles == 0 {
		t.Fatalf("arbiter did no work: %+v", st)
	}
	if st.Replans+st.Skipped != st.Cycles*len(cfgs) {
		t.Fatalf("replans %d + skipped %d != cycles %d × tenants %d", st.Replans, st.Skipped, st.Cycles, len(cfgs))
	}
	// Quota ceiling held: gamma never exceeded 2 pods at once.
	gamma, _ := a.Tenant("gamma")
	if gamma.WorkerPodCount() > 2 {
		t.Fatalf("gamma holds %d pods past its ceiling", gamma.WorkerPodCount())
	}
}

// TestArbiterCycleZeroAlloc asserts the perf headline's allocation
// half: once grants stabilize, a full arbitration cycle (plan +
// commit + apply) performs zero heap allocations.
func TestArbiterCycleZeroAlloc(t *testing.T) {
	_, a := newTestFleet(t, 64, 6, 1000) // abundant capacity: grants = demand, stable
	a.RunCycle()                         // warm: digests all tenants, creates pods
	a.RunCycle()                         // steady
	allocs := testing.AllocsPerRun(100, func() { a.RunCycle() })
	if allocs != 0 {
		t.Fatalf("steady-state cycle allocates %.1f times, want 0", allocs)
	}
	if st := a.Stats(); st.Replans != 64 {
		t.Fatalf("steady-state cycles re-planned: %+v", st)
	}
}
