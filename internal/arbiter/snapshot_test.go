package arbiter

import (
	"fmt"
	"reflect"
	"slices"
	"testing"
	"time"

	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// restoreFleetCfgs is the tenant mix shared by the crash-consistency
// tests: weights, a floor, a ceiling and a priority class, so the
// restored virtual-service counters actually matter.
var restoreFleetCfgs = []TenantConfig{
	{ID: "a", Weight: 2},
	{ID: "b", Weight: 1, QuotaMin: 1},
	{ID: "c", Weight: 1, QuotaMax: 2},
	{ID: "d", Weight: 1, Priority: 1},
}

// TestArbiterRestoreDifferential is the house differential for
// crash-consistency: two identical fleets run in lockstep under
// manual cycles; fleet B crashes and restores mid-run at the same
// instant. Every post-restore cycle must grant exactly what the
// uninterrupted fleet grants, and the final books must match.
func TestArbiterRestoreDifferential(t *testing.T) {
	for _, crashAt := range []int{1, 5, 12} {
		t.Run(fmt.Sprintf("crashCycle%d", crashAt), func(t *testing.T) {
			engA, fa := newLiveFleet(t, 31, 6, 10, restoreFleetCfgs, Config{Cycle: 15 * time.Second})
			engB, fb := newLiveFleet(t, 31, 6, 10, restoreFleetCfgs, Config{Cycle: 15 * time.Second})
			for cycle := 1; cycle <= 40; cycle++ {
				at := simStart.Add(time.Duration(cycle) * 15 * time.Second)
				engA.RunUntil(at)
				engB.RunUntil(at)
				if cycle == crashAt {
					snap, ok := fb.Crash()
					if !ok {
						t.Fatal("crash refused")
					}
					if fb.RunCycle(); fb.Stats().Cycles != cycle-1 {
						t.Fatal("RunCycle ran while down")
					}
					// Round-trip through the wire codec: what a real
					// arbiter would read back from etcd.
					dec, err := DecodeSnapshot(snap.Encode())
					if err != nil {
						t.Fatal(err)
					}
					fb.Restore(dec)
				}
				fa.RunCycle()
				fb.RunCycle()
				if !slices.Equal(fa.Grants(), fb.Grants()) {
					t.Fatalf("cycle %d: restored grants %v != uninterrupted %v", cycle, fb.Grants(), fa.Grants())
				}
				if !slices.Equal(fa.al.vsvc, fb.al.vsvc) {
					t.Fatalf("cycle %d: vsvc diverged: %v != %v", cycle, fb.al.vsvc, fa.al.vsvc)
				}
			}
			if fb.Stats().Restores != 1 {
				t.Fatalf("Restores = %d, want 1", fb.Stats().Restores)
			}
			for i, ta := range fa.Tenants() {
				tb := fb.Tenants()[i]
				if ta.ID() != tb.ID() || ta.creating != tb.creating || ta.active != tb.active || ta.draining != tb.draining {
					t.Fatalf("tenant %s books diverged: %d/%d/%d != %d/%d/%d",
						ta.ID(), tb.creating, tb.active, tb.draining, ta.creating, ta.active, ta.draining)
				}
				if ta.Master().CompletedCount() != tb.Master().CompletedCount() {
					t.Fatalf("tenant %s completions diverged: %d != %d",
						ta.ID(), tb.Master().CompletedCount(), ta.Master().CompletedCount())
				}
			}
			checkBooks(t, fa)
			checkBooks(t, fb)
		})
	}
}

// TestArbiterCrashMidRun exercises a real outage: drains complete and
// pods change state while the arbiter is down. The fenced callbacks
// must not touch pods, the restore reconcile must release the
// finished drains and adopt the missed starts, no pod leaks, no
// capacity is double-granted, and the workload completes with
// conservation intact.
func TestArbiterCrashMidRun(t *testing.T) {
	eng, a := newLiveFleet(t, 41, 6, 8, restoreFleetCfgs, Config{Cycle: 15 * time.Second})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	busyPods := func() int {
		n := 0
		for _, ten := range a.Tenants() {
			n += ten.active
		}
		return n
	}
	eng.RunWhile(func() bool {
		return busyPods() < 4 && eng.Now().Before(simStart.Add(time.Hour))
	})
	if busyPods() < 4 {
		t.Fatal("fleet never warmed")
	}
	// Put drains in flight on busy workers (running tasks pin the
	// drains open), then crash.
	var victim *Tenant
	for _, ten := range a.Tenants() {
		if ten.active > 0 && ten.Master().Stats().Running > 0 {
			victim = ten
			break
		}
	}
	if victim == nil {
		t.Fatal("no tenant with busy active pods")
	}
	a.drainTenantPods(victim)
	genBefore := a.Generation()
	snap, ok := a.Crash()
	if !ok {
		t.Fatal("crash refused")
	}
	if !a.Down() || a.Generation() != genBefore+1 {
		t.Fatalf("down=%v gen=%d after crash", a.Down(), a.Generation())
	}
	if _, again := a.Crash(); again {
		t.Fatal("double crash succeeded")
	}
	// Outage: tasks finish, drains complete, their callbacks are
	// fenced, the pods they could not delete stay behind.
	eng.RunUntil(eng.Now().Add(4 * time.Minute))
	if a.Stats().FencedCallbacks == 0 {
		t.Fatal("no drain callback was fenced during the outage")
	}
	a.Restore(snap)
	if a.Down() {
		t.Fatal("still down after restore")
	}
	if a.Stats().ReconcileCorrections == 0 {
		t.Fatal("restore reconciled nothing despite completed drains")
	}
	// Books match the live cluster exactly after the reconcile.
	checkBooks(t, a)
	for _, ten := range a.Tenants() {
		for name := range ten.pods {
			if _, live := a.cluster.GetPod(name); !live {
				t.Fatalf("tenant %s books dead pod %s", ten.ID(), name)
			}
		}
	}
	// Run to completion under the re-armed ticker; capacity is never
	// double-granted.
	total := func() int {
		n := 0
		for _, ten := range a.Tenants() {
			n += ten.Master().CompletedCount() + ten.Master().QuarantinedCount()
		}
		return n
	}
	eng.RunWhile(func() bool {
		var granted int64
		for _, g := range a.Grants() {
			granted += g
		}
		if granted > int64(a.cfg.TotalWorkers) {
			t.Fatalf("grants sum %d over the %d-worker budget", granted, a.cfg.TotalWorkers)
		}
		return total() < 32 && eng.Now().Before(simStart.Add(12*time.Hour))
	})
	a.Stop()
	if total() != 32 {
		t.Fatalf("settled %d/32 tasks", total())
	}
	for _, ten := range a.Tenants() {
		conserve(t, ten.ID(), ten.Master())
	}
	// No leaked pods once everything drains out on later cycles.
	if a.Stats().Restores != 1 {
		t.Fatalf("Restores = %d, want 1", a.Stats().Restores)
	}
	checkBooks(t, a)
}

// TestArbiterRestoreStaleSnapshot restores from a snapshot older than
// the crash (the etcd-lag case): pods created after the snapshot are
// unknown to it and must be adopted back through their labels, with
// the pod-name sequence advanced past every adopted suffix.
func TestArbiterRestoreStaleSnapshot(t *testing.T) {
	eng, a := newLiveFleet(t, 47, 6, 10, restoreFleetCfgs, Config{Cycle: 15 * time.Second})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(simStart.Add(time.Minute))
	stale := a.Snapshot()
	createdAtSnap := a.Stats().PodsCreated
	// Keep running: more pods are created beyond the snapshot's view.
	eng.RunWhile(func() bool {
		return a.Stats().PodsCreated == createdAtSnap && eng.Now().Before(simStart.Add(time.Hour))
	})
	if a.Stats().PodsCreated == createdAtSnap {
		t.Fatal("no pods created after the snapshot")
	}
	if _, ok := a.Crash(); !ok {
		t.Fatal("crash refused")
	}
	a.Restore(stale)
	if a.Stats().ReconcileCorrections == 0 {
		t.Fatal("nothing adopted from a stale snapshot")
	}
	checkBooks(t, a)
	// Every live managed pod is booked again, and new names never
	// collide with adopted ones.
	for _, pod := range a.cluster.ListPods(map[string]string{"managed-by": "arbiter"}) {
		if pod.Phase == kubesim.PodSucceeded {
			continue
		}
		if _, booked := a.podOwner[pod.Name]; !booked {
			t.Fatalf("live pod %s not re-adopted", pod.Name)
		}
	}
	for _, ten := range a.Tenants() {
		if seq, ok := maxBookedSeq(ten); ok && ten.podSeq < seq {
			t.Fatalf("tenant %s podSeq %d below adopted suffix %d", ten.ID(), ten.podSeq, seq)
		}
	}
	total := func() int {
		n := 0
		for _, ten := range a.Tenants() {
			n += ten.Master().CompletedCount() + ten.Master().QuarantinedCount()
		}
		return n
	}
	eng.RunWhile(func() bool { return total() < 40 && eng.Now().Before(simStart.Add(12*time.Hour)) })
	a.Stop()
	if total() != 40 {
		t.Fatalf("settled %d/40 tasks", total())
	}
	checkBooks(t, a)
}

func maxBookedSeq(t *Tenant) (int, bool) {
	best, found := 0, false
	for name := range t.pods {
		if seq, ok := podSeqSuffix(t.cfg.ID, name); ok {
			found = true
			if seq > best {
				best = seq
			}
		}
	}
	return best, found
}

// TestArbiterRestoreZeroAlloc re-asserts the perf headline after a
// crash/restore: the restored arbiter's steady-state cycle still
// performs zero heap allocations.
func TestArbiterRestoreZeroAlloc(t *testing.T) {
	_, a := newTestFleet(t, 64, 6, 1000)
	a.RunCycle()
	a.RunCycle()
	snap, ok := a.Crash()
	if !ok {
		t.Fatal("crash refused")
	}
	a.Restore(snap)
	a.RunCycle() // warm: every tenant replans post-restore
	a.RunCycle()
	allocs := testing.AllocsPerRun(100, func() { a.RunCycle() })
	if allocs != 0 {
		t.Fatalf("post-restore steady-state cycle allocates %.1f times, want 0", allocs)
	}
}

// TestSnapshotCodec pins the wire format: round-trip identity on a
// live snapshot, and typed rejections for the malformed-input
// classes (bad magic, truncation, hostile counts, trailing bytes).
func TestSnapshotCodec(t *testing.T) {
	eng, a := newLiveFleet(t, 53, 4, 6, restoreFleetCfgs, Config{Cycle: 15 * time.Second})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	// Snapshot mid-flight (~3 cycles in), while pods are still booked.
	eng.RunUntil(simStart.Add(50 * time.Second))
	a.Stop()
	snap := a.Snapshot()
	if len(snap.Tenants) != 4 {
		t.Fatalf("snapshot holds %d tenants", len(snap.Tenants))
	}
	pods := 0
	for _, ts := range snap.Tenants {
		pods += len(ts.Pods)
	}
	if pods == 0 {
		t.Fatal("snapshot books no pods")
	}
	enc := snap.Encode()
	dec, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, dec) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", snap, dec)
	}
	// Malformed inputs are rejected, never panic or over-allocate.
	bad := [][]byte{
		nil,
		[]byte("XX"),
		[]byte("WRONG1\x00\x00"),
		enc[:len(enc)-3],             // truncated mid-record
		append(slices.Clone(enc), 0), // trailing byte
	}
	for i, b := range bad {
		if _, err := DecodeSnapshot(b); err == nil {
			t.Fatalf("malformed input %d decoded", i)
		}
	}
	// Hostile count: claims 2^31 tenants in a tiny buffer.
	h := []byte(snapMagic)
	h = append(h, make([]byte, 8)...)     // gen
	h = append(h, 0xff, 0xff, 0xff, 0x7f) // tenant count
	if _, err := DecodeSnapshot(h); err == nil {
		t.Fatal("hostile tenant count decoded")
	}
}

// TestDrainFenceAcrossRestore pins the generation fence end to end on
// a minimal fixture: a drain registered by incarnation g completes
// after the crash; its callback must not delete the pod, and the
// reconcile registered by incarnation g+1 must.
func TestDrainFenceAcrossRestore(t *testing.T) {
	eng := simclock.NewEngine(simStart)
	cluster := kubesim.NewCluster(eng, kubesim.Config{InitialNodes: 2, MinNodes: 1, MaxNodes: 4, Seed: 9})
	a := New(eng, cluster, Config{Cycle: 15 * time.Second, TotalWorkers: 2})
	ten, err := a.AddTenant(TenantConfig{ID: "solo"})
	if err != nil {
		t.Fatal(err)
	}
	ten.Master().Submit(wq.TaskSpec{
		Category:  "work",
		Resources: resources.Vector{MilliCPU: 870, MemoryMB: 1700},
		Profile:   wq.Profile{ExecDuration: 3 * time.Minute, UsedCPUMilli: 870, UsedMemoryMB: 1700},
	})
	a.RunCycle()
	eng.RunWhile(func() bool {
		return ten.Master().Stats().Running == 0 && eng.Now().Before(simStart.Add(time.Hour))
	})
	if ten.active != 1 || ten.Master().Stats().Running == 0 {
		t.Fatalf("task never ran: %d active pods, %d running", ten.active, ten.Master().Stats().Running)
	}
	a.drainTenantPods(ten) // busy worker: drain stays open until the task ends
	snap, _ := a.Crash()
	eng.RunUntil(eng.Now().Add(10 * time.Minute)) // task ends, drain completes, callback fenced
	if a.Stats().FencedCallbacks != 1 {
		t.Fatalf("FencedCallbacks = %d, want 1", a.Stats().FencedCallbacks)
	}
	if n := len(cluster.ListPods(map[string]string{"tenant": "solo"})); n != 1 {
		t.Fatalf("fenced callback changed the cluster: %d pods", n)
	}
	a.Restore(snap)
	eng.RunUntil(eng.Now().Add(time.Minute))
	// The new incarnation's reconcile released the finished drain.
	live := 0
	for _, pod := range cluster.ListPods(map[string]string{"tenant": "solo"}) {
		if pod.Phase != kubesim.PodSucceeded {
			live++
		}
	}
	if live != 0 || len(ten.pods) != 0 {
		t.Fatalf("finished drain not released: %d live pods, %d booked", live, len(ten.pods))
	}
	conserve(t, "solo", ten.Master())
}
