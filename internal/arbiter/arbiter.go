// Package arbiter multiplexes many wq masters — one per tenant, each
// with its own queue, monitor and HTA planner — onto a single kubesim
// cluster. A cluster-level arbiter divides the shared worker-pod
// capacity across tenants by weighted max-min fair share with
// per-tenant quota floors/ceilings and priority classes (see
// allocate.go for the exact allocation semantics).
//
// The control loop is built to stay cheap at thousands of tenants: a
// naive arbiter re-runs Algorithm 1 per tenant per cycle and collapses
// at O(T × planner). This one is amortized O(active tenants):
//
//   - Per-tenant demand digests. Each tenant owns a category-
//     compressed core.Planner whose scratch is memoized across
//     cycles; the digest — the number of node-sized workers that
//     would hold the tenant's current running + waiting set — is
//     cached between cycles.
//   - Dirty-tenant tracking. The digest is evaluated with a zero Now
//     and a zero-length window, which makes it a pure function of the
//     master state guarded by wq.(*Master).Rev(): queue contents,
//     non-draining roster, estimator state. A tenant is re-planned
//     only when its revision moved (or the arbiter itself drained one
//     of its workers, the one roster change Rev does not cover);
//     everything else is served from the memo.
//   - One allocation pass over packed int64 demand vectors with a
//     pooled scratch arena — zero heap allocations per steady-state
//     cycle (asserted by TestArbiterCycleZeroAlloc).
//
// The naive full-replan arbiter is retained in reference.go and
// pinned byte-identical by the differential suite and fuzz target, per
// the house style.
package arbiter

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"hta/internal/core"
	"hta/internal/kubesim"
	"hta/internal/monitor"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// Policy selects how the arbiter divides capacity.
type Policy int

const (
	// PolicyFairShare is weighted max-min water-filling with quota
	// floors/ceilings and priority classes.
	PolicyFairShare Policy = iota
	// PolicyGreedy models a single shared autoscaler with no notion
	// of tenancy: demands are satisfied in tenant index order until
	// capacity runs out (the E-J baseline). Ceilings still apply.
	PolicyGreedy
)

// Config tunes the arbiter.
type Config struct {
	// Cycle is the arbitration interval (default 30 s).
	Cycle time.Duration
	// TotalWorkers is the cluster-wide worker-pod budget the arbiter
	// divides (default: the cluster's MaxNodes quota — one node-sized
	// worker pod per node).
	TotalWorkers int
	// Policy selects the allocation policy (default PolicyFairShare).
	Policy Policy
	// WorkerImage is the worker-pod container image (default
	// "wq-worker").
	WorkerImage string
	// Naive routes every cycle through the retained full-replan
	// reference arbiter (reference.go) instead of the incremental
	// path.
	Naive bool
	// Quarantine configures the crash-looping-tenant breaker
	// (lifecycle.go). The zero value disables it.
	Quarantine QuarantinePolicy
}

// TenantConfig describes one tenant's share of the cluster.
type TenantConfig struct {
	// ID names the tenant; it must be unique and non-empty (it
	// prefixes the tenant's worker-pod names).
	ID string
	// Weight is the tenant's fair-share weight (default 1, clamped to
	// [1, 1<<20]).
	Weight int
	// Priority is the tenant's class: higher classes are allocated
	// before lower ones see any discretionary capacity.
	Priority int
	// QuotaMin is the floor: workers guaranteed (when demanded)
	// before any discretionary allocation.
	QuotaMin int
	// QuotaMax is the ceiling: the tenant is never granted more
	// workers than this (0 = unlimited).
	QuotaMax int
	// Monitor configures the tenant's per-category estimator.
	Monitor monitor.Config
}

// workerPodState tracks each worker pod the arbiter manages, same
// tri-state as the single-tenant autoscaler's.
type workerPodState int

const (
	podCreating workerPodState = iota // created, worker not yet connected
	podActive                         // worker connected to the tenant's master
	podDraining                       // drain requested
)

// Tenant is one tenant's control-plane state: its master, monitor,
// memoized demand digest and managed pods.
type Tenant struct {
	cfg    TenantConfig
	idx    int
	master *wq.Master
	mon    *monitor.Monitor

	// planner holds the tenant's Algorithm 1 scratch, reused across
	// cycles (the category-compressed digest engine).
	planner core.Planner
	// lastRev is the master revision the memoized demand was computed
	// at; dirty forces a re-plan for state changes Rev does not cover
	// (arbiter-initiated drains).
	lastRev uint64
	dirty   bool
	demand  int64

	pods                       map[string]workerPodState
	podSeq                     int
	creating, active, draining int

	// Lifecycle state (lifecycle.go): leaving marks an offboarding
	// tenant (demand forced to zero, pods draining, pending work
	// settled as quarantined); removed marks the tenant struct as
	// detached from the arbiter. The quarantine fields implement the
	// crash-loop breaker; masterSnap/reattach hold the PR-4 crash
	// state between CrashTenantMaster and RestoreTenantMaster.
	leaving     bool
	removed     bool
	settleArmed bool
	quarUntil   time.Time
	quarCount   int
	crashLog    []time.Time
	masterSnap  wq.Snapshot
	reattach    []wq.WorkerReattach

	// Digest snapshot scratch, reused across cycles.
	waitBuf []wq.Task
	runBuf  []wq.Task
	wiBuf   []core.WorkerInfo
}

// Master returns the tenant's work-queue master (submit tasks here).
func (t *Tenant) Master() *wq.Master { return t.master }

// Monitor returns the tenant's per-category estimator.
func (t *Tenant) Monitor() *monitor.Monitor { return t.mon }

// ID returns the tenant's identifier.
func (t *Tenant) ID() string { return t.cfg.ID }

// WorkerPodCount returns the tenant's live (creating + active) worker
// pods.
func (t *Tenant) WorkerPodCount() int { return t.creating + t.active }

// Stats counts the arbiter's work, exposing the incremental path's
// effectiveness: Replans is how many demand digests were recomputed,
// Skipped how many were served from the memo.
type Stats struct {
	Cycles      int
	Replans     int
	Skipped     int
	PodsCreated int
	PodsDrained int

	// Lifecycle and recovery counters.
	TenantsRemoved       int // tenants offboarded or removed
	TenantCrashes        int // tenant-master crashes delivered via CrashTenantMaster
	QuarantineTrips      int // crash-loop breaker trips
	Restores             int // arbiter Restore calls
	ReconcileCorrections int // divergences fixed by restore-time reconciles
	FencedCallbacks      int // stale drain callbacks dropped by the generation fence
}

// Arbiter divides one cluster's worker capacity across tenants.
type Arbiter struct {
	eng     *simclock.Engine
	cluster *kubesim.Cluster
	cfg     Config

	// template is the shared cluster-roster fact every tenant plans
	// against: the node-sized worker capacity, snapshotted once at
	// construction instead of per tenant per cycle.
	template resources.Vector

	tenants  []*Tenant
	byID     map[string]*Tenant
	podOwner map[string]*Tenant

	al allocator
	// demand/grant/refGrant are the packed per-tenant cycle vectors.
	demand   []int64
	grant    []int64
	refGrant []int64

	drainBuf []string // apply() scratch

	// gen is the arbiter's incarnation counter, bumped by Crash and
	// stamped into every drain callback (and created pod) so callbacks
	// registered by a dead incarnation are fenced after Restore. down
	// marks the window between Crash and Restore, during which pod
	// events are missed (Restore's reconcile recovers them).
	gen  int
	down bool

	ticker  *simclock.Ticker
	started bool
	stats   Stats
}

// New wires an arbiter to a cluster. Add tenants, then Start.
func New(eng *simclock.Engine, cluster *kubesim.Cluster, cfg Config) *Arbiter {
	if cfg.Cycle <= 0 {
		cfg.Cycle = 30 * time.Second
	}
	if cfg.TotalWorkers == 0 {
		cfg.TotalWorkers = cluster.Config().MaxNodes
	}
	if cfg.TotalWorkers < 0 {
		cfg.TotalWorkers = 0
	}
	if cfg.WorkerImage == "" {
		cfg.WorkerImage = "wq-worker"
	}
	a := &Arbiter{
		eng:      eng,
		cluster:  cluster,
		cfg:      cfg,
		template: cluster.Config().NodeAllocatable,
		byID:     make(map[string]*Tenant),
		podOwner: make(map[string]*Tenant),
	}
	a.al.policy = cfg.Policy
	a.al.total = int64(cfg.TotalWorkers)
	cluster.OnPod(a.onPodEvent)
	return a
}

// AddTenant creates a tenant: a fresh master on the shared engine, a
// per-tenant monitor wired as its estimator, and a slot in the packed
// allocation vectors.
func (a *Arbiter) AddTenant(cfg TenantConfig) (*Tenant, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("arbiter: tenant with empty ID")
	}
	if _, dup := a.byID[cfg.ID]; dup {
		return nil, fmt.Errorf("arbiter: tenant %q already added", cfg.ID)
	}
	if cfg.QuotaMax < 0 || cfg.QuotaMin < 0 {
		return nil, fmt.Errorf("arbiter: tenant %q with negative quota", cfg.ID)
	}
	if cfg.QuotaMax > 0 && cfg.QuotaMax < cfg.QuotaMin {
		return nil, fmt.Errorf("arbiter: tenant %q ceiling %d below floor %d", cfg.ID, cfg.QuotaMax, cfg.QuotaMin)
	}
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	master := wq.NewMaster(a.eng, nil)
	mon := monitor.New(cfg.Monitor)
	master.SetEstimator(mon)
	master.OnComplete(func(r wq.Result) { mon.Observe(r.Task) })
	t := &Tenant{
		cfg:     cfg,
		idx:     len(a.tenants),
		master:  master,
		mon:     mon,
		lastRev: ^uint64(0), // force the first digest
		pods:    make(map[string]workerPodState),
	}
	a.tenants = append(a.tenants, t)
	a.byID[cfg.ID] = t
	a.al.addTenant(int64(cfg.Weight), int64(cfg.QuotaMin), int64(cfg.QuotaMax), int32(cfg.Priority))
	a.demand = append(a.demand, 0)
	a.grant = append(a.grant, 0)
	a.refGrant = append(a.refGrant, 0)
	return t, nil
}

// Tenant returns a tenant by ID.
func (a *Arbiter) Tenant(id string) (*Tenant, bool) {
	t, ok := a.byID[id]
	return t, ok
}

// Tenants returns the tenants in add order.
func (a *Arbiter) Tenants() []*Tenant { return a.tenants }

// Stats returns the arbiter's work counters.
func (a *Arbiter) Stats() Stats { return a.stats }

// Grants returns the last cycle's per-tenant grants in add order. The
// returned slice is the arbiter's live scratch; callers must not
// retain or mutate it.
func (a *Arbiter) Grants() []int64 {
	if a.cfg.Naive {
		return a.refGrant
	}
	return a.grant
}

// SetNaiveArbitration routes subsequent cycles through the retained
// full-replan reference arbiter (reference.go).
func (a *Arbiter) SetNaiveArbitration(v bool) { a.cfg.Naive = v }

// Start begins the arbitration loop.
func (a *Arbiter) Start() error {
	if a.started {
		return fmt.Errorf("arbiter: Start called twice")
	}
	a.started = true
	a.ticker = a.eng.Every(a.cfg.Cycle, "arbiter-cycle", a.RunCycle)
	return nil
}

// Stop halts the arbitration loop. Managed pods are left as they are;
// call DrainAll to release them.
func (a *Arbiter) Stop() {
	if a.ticker != nil {
		a.ticker.Stop()
		a.ticker = nil
	}
}

// DrainAll drains every managed worker pod (idle or not — draining
// waits for running tasks, it never kills them).
func (a *Arbiter) DrainAll() {
	for _, t := range a.tenants {
		a.drainTenantPods(t)
	}
}

// drainTenantPods drains every live pod of one tenant, in name order.
func (a *Arbiter) drainTenantPods(t *Tenant) {
	names := make([]string, 0, len(t.pods))
	for name, st := range t.pods {
		if st != podDraining {
			names = append(names, name)
		}
	}
	slices.Sort(names)
	for _, name := range names {
		a.drainPod(t, name)
	}
}

// RunCycle performs one arbitration cycle: refresh demand digests
// (dirty tenants only on the incremental path), allocate, commit the
// virtual-service counters, and actuate pod deltas.
func (a *Arbiter) RunCycle() {
	if a.down {
		return
	}
	a.stats.Cycles++
	grant := a.grant
	if a.cfg.Naive {
		grant = a.refGrant
		a.referencePlan(grant)
	} else {
		a.plan(grant)
	}
	a.al.commit(grant)
	a.apply(grant)
}

// PlanOnly runs the planning half of a cycle — demand digests plus the
// allocation pass — without committing virtual-service counters or
// touching pods. It isolates the arbitration cost the perf headline is
// about (used by BenchmarkArbiterCycle and htabench's E-J cycle-cost
// probe). Returns the live grant scratch; callers must not retain it.
func (a *Arbiter) PlanOnly() []int64 {
	if a.cfg.Naive {
		a.referencePlan(a.refGrant)
		return a.refGrant
	}
	a.plan(a.grant)
	return a.grant
}

// plan is the incremental path: memoized digests for clean tenants,
// re-plans for dirty ones, one packed allocation pass.
func (a *Arbiter) plan(grant []int64) {
	for _, t := range a.tenants {
		if a.inactive(t) {
			// Offboarding, crashed or quarantined: demand is zero by
			// fiat until the tenant recovers, so the freed capacity
			// water-fills across the healthy tenants this very cycle.
			a.demand[t.idx] = 0
			a.stats.Skipped++
			a.maybeSettle(t)
			continue
		}
		rev := t.master.Rev()
		if !t.dirty && rev == t.lastRev {
			a.stats.Skipped++
		} else {
			t.demand = a.digest(t)
			t.lastRev = rev
			t.dirty = false
			a.stats.Replans++
		}
		a.demand[t.idx] = t.demand
	}
	a.al.allocate(a.demand, grant)
}

// inactive reports whether the tenant's demand is forced to zero:
// leaving (pods drain, pending work already settled), master down
// (blast-radius containment — its share flows to healthy tenants
// until RestoreTenantMaster), or crash-loop quarantined (breaker open
// until quarUntil). The transitions in and out all mark the tenant
// dirty, so the memoized demand is recomputed on recovery.
func (a *Arbiter) inactive(t *Tenant) bool {
	return t.leaving || t.master.Down() || t.quarantinedAt(a.eng.Now())
}

// digest evaluates the tenant's demand: how many node-sized workers
// would hold its current running + waiting set, per Algorithm 1.
//
// The estimate runs with a zero Now and a zero-length window. Against
// the zero time every running task's elapsed time is hugely negative,
// so its predicted remaining time exceeds any window and it holds its
// allocation; waiting tasks pack into the idle capacity and the
// shortage lands in node-sized bins. The result — active workers +
// ScaleChange — is therefore a pure function of the queue contents,
// the non-draining roster and the category estimates: exactly the
// state guarded by the master's revision counter, which is what makes
// the cross-cycle memo sound.
func (a *Arbiter) digest(t *Tenant) int64 {
	in := a.estimateInput(t)
	dec := t.planner.EstimateScale(in)
	d := int64(len(in.Workers) + dec.ScaleChange)
	if d < 0 {
		d = 0
	}
	return d
}

// estimateInput assembles the digest's planner input from reused
// per-tenant scratch buffers.
func (a *Arbiter) estimateInput(t *Tenant) core.EstimateInput {
	t.wiBuf = t.wiBuf[:0]
	t.master.ForEachWorker(func(id string, capacity resources.Vector, draining bool) {
		if draining {
			return
		}
		t.wiBuf = append(t.wiBuf, core.WorkerInfo{ID: id, Capacity: capacity})
	})
	t.runBuf = t.runBuf[:0]
	t.master.ForEachRunning(func(task *wq.Task) { t.runBuf = append(t.runBuf, *task) })
	slices.SortFunc(t.runBuf, func(x, y wq.Task) int { return cmp.Compare(x.ID, y.ID) })
	t.waitBuf = t.waitBuf[:0]
	t.master.ForEachWaiting(func(task *wq.Task) { t.waitBuf = append(t.waitBuf, *task) })
	return core.EstimateInput{
		Now:            time.Time{}, // time-free: see digest
		InitTime:       0,
		DefaultCycle:   a.cfg.Cycle,
		Running:        t.runBuf,
		Waiting:        t.waitBuf,
		Estimator:      t.mon,
		Workers:        t.wiBuf,
		WorkerTemplate: a.template,
	}
}

// apply actuates one cycle's grants: create worker pods up to each
// tenant's target, cancel surplus still-creating pods, and drain idle
// workers. Running tasks are never killed — a shrinking tenant keeps
// busy workers until their tasks finish, and the next cycles converge.
func (a *Arbiter) apply(grant []int64) {
	for _, t := range a.tenants {
		target := int(grant[t.idx])
		current := t.creating + t.active
		switch {
		case target > current:
			for i := current; i < target; i++ {
				a.createPod(t)
			}
		case target < current:
			a.shrink(t, current-target)
		}
	}
}

// shrink releases n workers from the tenant: surplus still-creating
// pods first (free to cancel), then idle workers in join order. If
// fewer than n are idle the rest stay until tasks complete.
func (a *Arbiter) shrink(t *Tenant, n int) {
	if t.creating > 0 {
		names := make([]string, 0, t.creating)
		for name, st := range t.pods {
			if st == podCreating {
				names = append(names, name)
			}
		}
		slices.Sort(names)
		for _, name := range names {
			if n == 0 {
				return
			}
			a.drainPod(t, name)
			n--
		}
	}
	a.drainBuf = a.drainBuf[:0]
	t.master.ForEachWorker(func(id string, _ resources.Vector, draining bool) {
		if !draining && !t.master.WorkerBusy(id) {
			a.drainBuf = append(a.drainBuf, id)
		}
	})
	for _, id := range a.drainBuf {
		if n == 0 {
			return
		}
		if t.pods[id] != podActive {
			continue
		}
		a.drainPod(t, id)
		n--
	}
}

// --- pod/worker glue (the per-tenant analogue of core.Autoscaler's) ---

func (a *Arbiter) createPod(t *Tenant) {
	t.podSeq++
	name := fmt.Sprintf("%s-w%d", t.cfg.ID, t.podSeq)
	spec := kubesim.PodSpec{
		Name:      name,
		Image:     a.cfg.WorkerImage,
		Resources: a.template,
		Labels: map[string]string{
			"app":        "wq-worker",
			"managed-by": "arbiter",
			"tenant":     t.cfg.ID,
		},
	}
	if _, err := a.cluster.CreatePod(spec); err != nil {
		t.podSeq--
		return
	}
	t.pods[name] = podCreating
	t.creating++
	a.podOwner[name] = t
	a.stats.PodsCreated++
}

func (a *Arbiter) drainPod(t *Tenant, name string) {
	switch t.pods[name] {
	case podCreating:
		// Never connected: delete outright.
		a.forgetPod(t, name)
		_ = a.cluster.DeletePod(name)
		return
	case podDraining:
		return
	}
	t.pods[name] = podDraining
	t.active--
	t.draining++
	// The drain changes the tenant's digest (its non-draining roster
	// shrank) without bumping the master revision; mark it dirty by
	// hand.
	t.dirty = true
	a.stats.PodsDrained++
	err := t.master.DrainWorker(name, a.drainDone(t, name))
	if err != nil {
		a.forgetPod(t, name)
		_ = a.cluster.DeletePod(name)
		a.maybeSettle(t)
	}
}

// drainDone builds the worker-drained callback, stamped with the
// current arbiter generation. A callback registered by a previous
// incarnation is fenced: after a crash the restored books may
// disagree with what the dead incarnation knew, so Restore's
// reconcile re-registers the drains it still wants and settles the
// rest — the stale callback must not delete pods underneath it.
func (a *Arbiter) drainDone(t *Tenant, name string) func() {
	gen := a.gen
	return func() {
		if a.down || gen != a.gen {
			a.stats.FencedCallbacks++
			return
		}
		if _, ok := t.pods[name]; !ok {
			return
		}
		a.forgetPod(t, name)
		_ = a.cluster.MarkPodSucceeded(name)
		_ = a.cluster.DeletePod(name)
		a.maybeSettle(t)
	}
}

// forgetPod removes a pod from the tenant's and the arbiter's books.
func (a *Arbiter) forgetPod(t *Tenant, name string) {
	switch t.pods[name] {
	case podCreating:
		t.creating--
	case podActive:
		t.active--
	case podDraining:
		t.draining--
	}
	delete(t.pods, name)
	delete(a.podOwner, name)
}

func (a *Arbiter) onPodEvent(ev kubesim.PodWatchEvent) {
	if a.down {
		// The crashed arbiter sees nothing; Restore's reconcile
		// recovers whatever changed during the outage.
		return
	}
	name := ev.Pod.Name
	t, mine := a.podOwner[name]
	if !mine {
		return
	}
	st := t.pods[name]
	switch {
	case ev.Type == kubesim.Modified && ev.Reason == kubesim.ReasonStarted:
		if st != podCreating {
			return
		}
		t.pods[name] = podActive
		t.creating--
		t.active++
		if t.master.Down() {
			// The tenant's master is crashed: book the pod active now,
			// connect the worker in RestoreTenantMaster's reconcile.
			return
		}
		if err := t.master.AddWorker(name, ev.Pod.Resources); err == nil {
			_ = a.cluster.SetPodUsage(name, func() resources.Vector {
				return t.master.WorkerUsage(name)
			})
		}
	case ev.Type == kubesim.Deleted:
		wasActive := st == podActive
		a.forgetPod(t, name)
		if wasActive && ev.Reason == kubesim.ReasonKilling && !t.master.Down() {
			// Pod killed underneath the arbiter (preemption, node
			// failure): requeue its tasks. A crashed master settles the
			// loss through its rescue window instead.
			_ = t.master.KillWorker(name)
		}
		a.maybeSettle(t)
	}
}
