package arbiter

import (
	"fmt"
	"slices"
	"time"

	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/wq"
)

// Tenant lifecycle: churn (offboarding, removal), per-tenant master
// crashes, and the crash-loop quarantine breaker. The design goal is
// blast-radius containment — whatever happens to one tenant, the
// other tenants' capacity math is affected only through the
// water-filling pool (they absorb the freed share next cycle) and
// never through dangling pods, leaked callbacks or broken books.

// QuarantinePolicy configures the crash-looping-tenant breaker: a
// tenant whose master crashes CrashThreshold times within Window has
// its demand forced to zero (and its pods drained) for an
// exponentially growing backoff, releasing even its quota floor to
// the healthy tenants until the breaker closes. The zero value
// disables the breaker.
type QuarantinePolicy struct {
	// CrashThreshold trips the breaker after this many crashes inside
	// Window (0 = disabled).
	CrashThreshold int
	// Window is the sliding window crashes are counted in (0 = count
	// every crash, forever).
	Window time.Duration
	// Backoff is the first quarantine duration; each subsequent trip
	// doubles it, capped at BackoffMax (0 = uncapped).
	Backoff    time.Duration
	BackoffMax time.Duration
}

// quarantinedAt reports whether the breaker is open at now.
func (t *Tenant) quarantinedAt(now time.Time) bool { return t.quarUntil.After(now) }

// Leaving reports whether the tenant is offboarding (demand zero,
// pods draining, pending work settled).
func (t *Tenant) Leaving() bool { return t.leaving }

// Removed reports whether the tenant has been detached from the
// arbiter (terminal: its master survives for final accounting, but it
// holds no pods and receives no grants).
func (t *Tenant) Removed() bool { return t.removed }

// QuarantinedUntil returns when the crash-loop breaker closes (zero
// time if it never tripped or has expired).
func (t *Tenant) QuarantinedUntil() time.Time { return t.quarUntil }

// OffboardTenant begins a graceful departure: the tenant's pending
// (never-started) work is settled as quarantined in its master — so
// the per-tenant conservation invariant submitted = completed +
// quarantined (+ shed) holds through the departure — its pods are
// drained (running tasks finish, they are never killed), and its
// demand is forced to zero so the freed capacity water-fills across
// the remaining tenants on the very next cycle. Once the last pod is
// gone and no work is in flight the tenant is removed from the
// allocation vectors entirely. Idempotent.
func (a *Arbiter) OffboardTenant(id string) error {
	t, ok := a.byID[id]
	if !ok {
		return fmt.Errorf("arbiter: offboard of unknown tenant %q", id)
	}
	if t.leaving {
		return nil
	}
	if t.master.Down() {
		return fmt.Errorf("arbiter: tenant %q master is down; restore it before offboarding", id)
	}
	t.leaving = true
	t.dirty = true
	t.master.FailAllPending()
	a.drainTenantPods(t)
	a.maybeSettle(t)
	return nil
}

// RemoveTenant detaches an already-quiescent tenant immediately: no
// pods, no waiting or running work, master up. Use OffboardTenant for
// the graceful path that drains its way to quiescence.
func (a *Arbiter) RemoveTenant(id string) error {
	t, ok := a.byID[id]
	if !ok {
		return fmt.Errorf("arbiter: remove of unknown tenant %q", id)
	}
	if t.master.Down() {
		return fmt.Errorf("arbiter: tenant %q master is down", id)
	}
	if len(t.pods) > 0 {
		return fmt.Errorf("arbiter: tenant %q still holds %d pods (use OffboardTenant)", id, len(t.pods))
	}
	if st := t.master.Stats(); st.Waiting > 0 || st.Running > 0 {
		return fmt.Errorf("arbiter: tenant %q still has %d waiting / %d running tasks (use OffboardTenant)",
			id, st.Waiting, st.Running)
	}
	a.removeTenantNow(t)
	return nil
}

// maybeSettle arms a zero-delay settlement check for an offboarding
// tenant whose last pod just disappeared. The check runs from its own
// event so settlement never happens re-entrantly inside a drain
// callback, pod event or plan loop.
func (a *Arbiter) maybeSettle(t *Tenant) {
	if !t.leaving || t.removed || t.settleArmed || len(t.pods) > 0 {
		return
	}
	t.settleArmed = true
	a.eng.After(0, "arbiter-offboard-"+t.cfg.ID, func() {
		t.settleArmed = false
		a.settle(t)
	})
}

// settle removes an offboarding tenant once it is quiescent. Work
// still running (on some other tenant's books it cannot be — drains
// never kill) defers to a later check; stragglers re-surfaced by a
// rescue window or a pod kill are settled with a second
// FailAllPending sweep.
func (a *Arbiter) settle(t *Tenant) {
	if !t.leaving || t.removed || len(t.pods) > 0 || a.down {
		return
	}
	st := t.master.Stats()
	if st.Running > 0 {
		return // a drain is still finishing; its callback re-arms us
	}
	if st.Waiting > 0 {
		// Stragglers requeued after the first sweep (pod killed under
		// a running task, retry backoffs). Rescue-window survivors are
		// not yet waiting-state and defer to the next cycle's check.
		t.master.FailAllPending()
		if st = t.master.Stats(); st.Waiting > 0 || st.Running > 0 {
			return
		}
	}
	a.removeTenantNow(t)
}

// removeTenantNow splices the tenant out of every arbiter structure.
// The tenant's master survives (callers keep final per-tenant
// accounting); the Tenant struct is marked removed and detached.
func (a *Arbiter) removeTenantNow(t *Tenant) {
	t.removed = true
	t.leaving = true
	i := t.idx
	a.tenants = slices.Delete(a.tenants, i, i+1)
	for j := i; j < len(a.tenants); j++ {
		a.tenants[j].idx = j
	}
	delete(a.byID, t.cfg.ID)
	for name := range t.pods {
		delete(a.podOwner, name)
	}
	a.al.removeTenant(i)
	a.demand = slices.Delete(a.demand, i, i+1)
	a.grant = slices.Delete(a.grant, i, i+1)
	a.refGrant = slices.Delete(a.refGrant, i, i+1)
	a.stats.TenantsRemoved++
}

// CrashTenantMaster fails one tenant's master in place (the PR-4
// crash model: scheduled work lost, workers detached, timers
// stopped). The arbiter holds the snapshot and the reattach records —
// the durable state a real deployment keeps outside the process —
// until RestoreTenantMaster. The blast radius is one tenant: its
// demand reads zero while down, so its share water-fills across the
// healthy tenants, and its pods stay booked (workers reconnect on
// restore).
func (a *Arbiter) CrashTenantMaster(id string) error {
	t, ok := a.byID[id]
	if !ok {
		return fmt.Errorf("arbiter: crash of unknown tenant %q", id)
	}
	if t.leaving {
		return fmt.Errorf("arbiter: tenant %q is offboarding", id)
	}
	if t.master.Down() {
		return fmt.Errorf("arbiter: tenant %q master already down", id)
	}
	t.masterSnap, t.reattach = t.master.Crash()
	t.dirty = true
	a.stats.TenantCrashes++
	a.noteTenantCrash(t)
	return nil
}

// RestoreTenantMaster restarts a crashed tenant master from the held
// snapshot, reattaches the workers whose pods are still alive and
// booked (their in-flight attempts rescue instead of rescheduling),
// and reconciles the tenant's pod books against the cluster — pods
// that started or died during the outage are adopted or released
// here.
func (a *Arbiter) RestoreTenantMaster(id string, rescueWindow time.Duration) error {
	t, ok := a.byID[id]
	if !ok {
		return fmt.Errorf("arbiter: restore of unknown tenant %q", id)
	}
	if !t.master.Down() {
		return fmt.Errorf("arbiter: tenant %q master is not down", id)
	}
	t.master.Restore(t.masterSnap, rescueWindow)
	t.masterSnap = wq.Snapshot{}
	for _, w := range t.reattach {
		st, booked := t.pods[w.ID]
		if !booked || st == podCreating {
			continue
		}
		if _, live := a.cluster.GetPod(w.ID); !live {
			// The pod died while the master was down; its attempts
			// expire through the rescue window.
			a.forgetPod(t, w.ID)
			a.stats.ReconcileCorrections++
			continue
		}
		if err := t.master.AttachWorker(w); err == nil {
			name := w.ID
			_ = a.cluster.SetPodUsage(name, func() resources.Vector {
				return t.master.WorkerUsage(name)
			})
		}
	}
	t.reattach = nil
	a.reconcileTenant(t, true)
	t.dirty = true
	return nil
}

// noteTenantCrash feeds the crash-loop breaker. On trip: demand stays
// zero (and the floor is released) for an exponentially growing
// backoff, and the tenant's pods are drained so even its held
// capacity returns to the pool — a tenant that keeps killing its
// master must not pin workers it cannot use.
func (a *Arbiter) noteTenantCrash(t *Tenant) {
	p := a.cfg.Quarantine
	if p.CrashThreshold <= 0 {
		return
	}
	now := a.eng.Now()
	if p.Window > 0 {
		cut := now.Add(-p.Window)
		keep := t.crashLog[:0]
		for _, at := range t.crashLog {
			if at.After(cut) {
				keep = append(keep, at)
			}
		}
		t.crashLog = keep
	}
	t.crashLog = append(t.crashLog, now)
	if len(t.crashLog) < p.CrashThreshold {
		return
	}
	t.crashLog = t.crashLog[:0]
	d := p.Backoff
	if d <= 0 {
		d = a.cfg.Cycle
	}
	for i := 0; i < t.quarCount; i++ {
		d *= 2
		if p.BackoffMax > 0 && d >= p.BackoffMax {
			d = p.BackoffMax
			break
		}
	}
	if p.BackoffMax > 0 && d > p.BackoffMax {
		d = p.BackoffMax
	}
	t.quarCount++
	t.quarUntil = now.Add(d)
	t.dirty = true
	a.stats.QuarantineTrips++
	a.drainTenantPods(t)
	a.eng.After(d, "arbiter-quarantine-expire-"+t.cfg.ID, func() {
		// Re-plan the tenant on the first cycle after the breaker
		// closes (quarantinedAt is already false by then).
		t.dirty = true
	})
}

// reconcileTenant repairs one tenant's pod books against the live
// cluster and master after a restore. adoptActive selects the policy
// for a pod booked active whose worker the master does not know:
// after a tenant-master restore the worker simply reconnects (adopt);
// after an arbiter restore the missing worker means the old
// incarnation had already drained it (its fenced callback never
// deleted the pod), so the pod is released. Every divergence fixed
// increments ReconcileCorrections.
func (a *Arbiter) reconcileTenant(t *Tenant, adoptActive bool) {
	names := make([]string, 0, len(t.pods))
	for name := range t.pods {
		names = append(names, name)
	}
	slices.Sort(names)
	masterUp := !t.master.Down()
	present := make(map[string]bool, len(names))
	draining := make(map[string]bool, len(names))
	if masterUp {
		t.master.ForEachWorker(func(id string, _ resources.Vector, dr bool) {
			present[id] = true
			if dr {
				draining[id] = true
			}
		})
	}
	for _, name := range names {
		st := t.pods[name]
		pod, live := a.cluster.GetPod(name)
		if !live || pod.Phase == kubesim.PodSucceeded {
			// The pod died (or finished) unseen: requeue its attempts
			// if the master still counts it, and drop the book.
			a.forgetPod(t, name)
			if masterUp && present[name] {
				_ = t.master.KillWorker(name)
			}
			a.stats.ReconcileCorrections++
			continue
		}
		if !masterUp {
			// Cannot consult the master; RestoreTenantMaster's own
			// reconcile finishes the job.
			continue
		}
		switch st {
		case podCreating:
			if pod.Phase == kubesim.PodRunning && !present[name] {
				// Started while we were down (the watch event was
				// dropped): promote and connect.
				t.pods[name] = podActive
				t.creating--
				t.active++
				if err := t.master.AddWorker(name, pod.Resources); err == nil {
					_ = a.cluster.SetPodUsage(name, func() resources.Vector {
						return t.master.WorkerUsage(name)
					})
				}
				a.stats.ReconcileCorrections++
			}
		case podActive:
			switch {
			case !present[name] && adoptActive:
				if err := t.master.AddWorker(name, pod.Resources); err == nil {
					_ = a.cluster.SetPodUsage(name, func() resources.Vector {
						return t.master.WorkerUsage(name)
					})
				}
				a.stats.ReconcileCorrections++
			case !present[name]:
				a.forgetPod(t, name)
				_ = a.cluster.MarkPodSucceeded(name)
				_ = a.cluster.DeletePod(name)
				a.stats.ReconcileCorrections++
			case draining[name]:
				// The dead incarnation started this drain; rebook it
				// and take over the callback (DrainWorker on a
				// draining worker replaces the fenced one with ours).
				t.pods[name] = podDraining
				t.active--
				t.draining++
				_ = t.master.DrainWorker(name, a.drainDone(t, name))
				a.stats.ReconcileCorrections++
			}
		case podDraining:
			if !present[name] {
				// The drain finished while we were down; the fenced
				// callback could not delete the pod. Do it now.
				a.forgetPod(t, name)
				_ = a.cluster.MarkPodSucceeded(name)
				_ = a.cluster.DeletePod(name)
				a.stats.ReconcileCorrections++
			} else {
				// Re-register our callback over the fenced one.
				if err := t.master.DrainWorker(name, a.drainDone(t, name)); err != nil {
					a.forgetPod(t, name)
					_ = a.cluster.DeletePod(name)
				}
				if !draining[name] {
					a.stats.ReconcileCorrections++
				}
			}
		}
	}
	t.dirty = true
	a.maybeSettle(t)
}
