package arbiter

import (
	"encoding/binary"
	"fmt"
	"slices"
	"strconv"
	"strings"

	"hta/internal/kubesim"
	"hta/internal/resources"
)

// Arbiter crash-consistency. The durable state a real control plane
// would keep in etcd is small: the fair-share configuration and
// virtual-service counters (the deficit-round-robin memory — losing
// it would silently re-bias sub-quantum rotation toward low indices),
// plus each tenant's pod books. Everything else — demand memos,
// dirty flags, the allocation scratch — is cache, rebuilt on restore.
// Crash wipes the caches and bumps the incarnation counter that
// fences callbacks registered by the dead arbiter; Restore loads the
// snapshot and reconciles it against the live cluster and masters, so
// pods that started, finished draining, or died during the outage are
// adopted, released, or requeued instead of leaking.

// Snapshot is the arbiter's durable state.
type Snapshot struct {
	// Gen is the incarnation that took the snapshot.
	Gen int
	// Tenants holds per-tenant durable state in add order.
	Tenants []TenantSnapshot
}

// TenantSnapshot is one tenant's slice of the durable state.
type TenantSnapshot struct {
	ID string
	// Fair-share configuration (mirrors TenantConfig after clamping).
	Weight int64
	Floor  int64
	Ceil   int64
	Prio   int32
	// Vsvc is the deficit-round-robin virtual-service counter.
	Vsvc int64
	// PodSeq is the worker-pod name sequence.
	PodSeq int
	// Pods are the tenant's booked worker pods, sorted by name.
	Pods []PodRecord
}

// PodRecord books one worker pod.
type PodRecord struct {
	Name  string
	State int32 // workerPodState
}

// Snapshot captures the arbiter's durable state without disturbing
// it.
func (a *Arbiter) Snapshot() Snapshot {
	snap := Snapshot{Gen: a.gen}
	if len(a.tenants) > 0 {
		snap.Tenants = make([]TenantSnapshot, 0, len(a.tenants))
	}
	for _, t := range a.tenants {
		ts := TenantSnapshot{
			ID:     t.cfg.ID,
			Weight: a.al.weight[t.idx],
			Floor:  a.al.floor[t.idx],
			Ceil:   a.al.ceil[t.idx],
			Prio:   a.al.prio[t.idx],
			Vsvc:   a.al.vsvc[t.idx],
			PodSeq: t.podSeq,
		}
		// nil when podless, matching the decoder (round-trip identity).
		for name, st := range t.pods {
			ts.Pods = append(ts.Pods, PodRecord{Name: name, State: int32(st)})
		}
		slices.SortFunc(ts.Pods, func(x, y PodRecord) int { return strings.Compare(x.Name, y.Name) })
		snap.Tenants = append(snap.Tenants, ts)
	}
	return snap
}

// Crash fails the arbiter in place: the returned snapshot is the
// durable state (what survived outside the process), everything else
// is wiped, the cycle ticker stops, and the incarnation counter
// advances so drain callbacks registered by this incarnation are
// fenced. Pod events during the outage are dropped (Restore's
// reconcile recovers them); the tenants' masters and workers keep
// running untouched — the blast radius of an arbiter crash is scaling
// decisions, not in-flight work. Returns ok=false if already down.
func (a *Arbiter) Crash() (Snapshot, bool) {
	if a.down {
		return Snapshot{}, false
	}
	snap := a.Snapshot()
	if a.ticker != nil {
		a.ticker.Stop()
		a.ticker = nil
	}
	for _, t := range a.tenants {
		clear(t.pods)
		t.creating, t.active, t.draining = 0, 0, 0
		t.podSeq = 0
		t.lastRev = ^uint64(0)
		t.dirty = false
		t.demand = 0
	}
	clear(a.podOwner)
	a.down = true
	a.gen++
	return snap, true
}

// Down reports whether the arbiter is crashed (between Crash and
// Restore).
func (a *Arbiter) Down() bool { return a.down }

// Generation returns the arbiter's incarnation counter (bumped by
// every Crash).
func (a *Arbiter) Generation() int { return a.gen }

// Restore restarts a crashed arbiter from a snapshot: per-tenant
// fair-share state and pod books are loaded (matched by tenant ID;
// snapshot tenants that no longer exist are dropped), then each
// tenant is reconciled against the live cluster and its master, and
// pods created by the dead incarnation after its snapshot are adopted
// back via their labels. If the arbitration loop was started it
// resumes, one full cycle after the restore.
func (a *Arbiter) Restore(snap Snapshot) {
	a.down = false
	a.stats.Restores++
	for _, ts := range snap.Tenants {
		t, ok := a.byID[ts.ID]
		if !ok {
			continue
		}
		i := t.idx
		a.al.weight[i] = ts.Weight
		a.al.floor[i] = ts.Floor
		a.al.ceil[i] = ts.Ceil
		a.al.prio[i] = ts.Prio
		a.al.vsvc[i] = ts.Vsvc
		a.al.classDirty = true
		t.podSeq = ts.PodSeq
		for _, pr := range ts.Pods {
			st := workerPodState(pr.State)
			if st < podCreating || st > podDraining {
				continue
			}
			t.pods[pr.Name] = st
			switch st {
			case podCreating:
				t.creating++
			case podActive:
				t.active++
			case podDraining:
				t.draining++
			}
			a.podOwner[pr.Name] = t
		}
	}
	for _, t := range a.tenants {
		a.reconcileTenant(t, false)
		a.adoptUnbooked(t)
		t.lastRev = ^uint64(0)
		t.dirty = true
	}
	if a.started && a.ticker == nil {
		a.ticker = a.eng.Every(a.cfg.Cycle, "arbiter-cycle", a.RunCycle)
	}
}

// adoptUnbooked finds the tenant's worker pods the snapshot does not
// know — created by the dead incarnation after its snapshot — via
// their labels, and books them by observed phase. Their names also
// advance the pod sequence past any adopted suffix so the restored
// arbiter never reuses a live name.
func (a *Arbiter) adoptUnbooked(t *Tenant) {
	pods := a.cluster.ListPods(map[string]string{
		"managed-by": "arbiter",
		"tenant":     t.cfg.ID,
	})
	for _, pod := range pods {
		if seq, ok := podSeqSuffix(t.cfg.ID, pod.Name); ok && seq > t.podSeq {
			t.podSeq = seq
		}
		if _, booked := t.pods[pod.Name]; booked {
			continue
		}
		switch pod.Phase {
		case kubesim.PodPending:
			t.pods[pod.Name] = podCreating
			t.creating++
		case kubesim.PodRunning:
			t.pods[pod.Name] = podActive
			t.active++
			if !t.master.Down() {
				name := pod.Name
				if err := t.master.AddWorker(name, pod.Resources); err == nil {
					_ = a.cluster.SetPodUsage(name, func() resources.Vector {
						return t.master.WorkerUsage(name)
					})
				}
			}
		default:
			continue
		}
		a.podOwner[pod.Name] = t
		a.stats.ReconcileCorrections++
	}
}

// podSeqSuffix parses the sequence from a worker-pod name of the form
// "<tenant>-w<seq>".
func podSeqSuffix(tenantID, name string) (int, bool) {
	prefix := tenantID + "-w"
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	seq, err := strconv.Atoi(name[len(prefix):])
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// --- binary codec ---
//
// The snapshot is what a real arbiter would persist to etcd on every
// mutation, so it gets the house treatment: a versioned, length-
// prefixed binary codec whose decoder is bounds-checked against the
// remaining input (a corrupt length cannot allocate unbounded memory)
// and fuzzed for decode-no-panic plus round-trip identity.

// snapMagic versions the codec.
const snapMagic = "ARBS1\x00"

// minTenantEnc is the smallest possible encoded tenant (empty ID, no
// pods); minPodEnc the smallest encoded pod record. Decoders cap
// counts at remaining/min so a hostile count cannot pre-allocate more
// than the input could possibly hold.
const (
	minTenantEnc = 4 + 8 + 8 + 8 + 4 + 8 + 4 + 4
	minPodEnc    = 4 + 4
)

// Encode serializes the snapshot.
func (s Snapshot) Encode() []byte {
	size := len(snapMagic) + 8 + 4
	for _, ts := range s.Tenants {
		size += minTenantEnc + len(ts.ID)
		for _, pr := range ts.Pods {
			size += minPodEnc + len(pr.Name)
		}
	}
	b := make([]byte, 0, size)
	b = append(b, snapMagic...)
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Gen))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Tenants)))
	for _, ts := range s.Tenants {
		b = appendString(b, ts.ID)
		b = binary.LittleEndian.AppendUint64(b, uint64(ts.Weight))
		b = binary.LittleEndian.AppendUint64(b, uint64(ts.Floor))
		b = binary.LittleEndian.AppendUint64(b, uint64(ts.Ceil))
		b = binary.LittleEndian.AppendUint32(b, uint32(ts.Prio))
		b = binary.LittleEndian.AppendUint64(b, uint64(ts.Vsvc))
		b = binary.LittleEndian.AppendUint32(b, uint32(ts.PodSeq))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(ts.Pods)))
		for _, pr := range ts.Pods {
			b = appendString(b, pr.Name)
			b = binary.LittleEndian.AppendUint32(b, uint32(pr.State))
		}
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// snapDecoder is a bounds-checked cursor over an encoded snapshot.
type snapDecoder struct {
	b   []byte
	off int
	err error
}

func (d *snapDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("arbiter: decode snapshot: "+format, args...)
	}
}

func (d *snapDecoder) remaining() int { return len(d.b) - d.off }

func (d *snapDecoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 4 {
		d.fail("truncated at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *snapDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *snapDecoder) str() string {
	n := int(d.u32())
	if d.err != nil {
		return ""
	}
	if n < 0 || n > d.remaining() {
		d.fail("string length %d exceeds %d remaining bytes", n, d.remaining())
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// count reads an element count and validates it against the remaining
// input given the per-element minimum encoding size.
func (d *snapDecoder) count(minSize int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n*minSize > d.remaining() {
		d.fail("count %d exceeds %d remaining bytes", n, d.remaining())
		return 0
	}
	return n
}

// DecodeSnapshot parses an encoded snapshot, rejecting malformed
// input instead of panicking or over-allocating.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	if len(b) < len(snapMagic) || string(b[:len(snapMagic)]) != snapMagic {
		return Snapshot{}, fmt.Errorf("arbiter: decode snapshot: bad magic")
	}
	d := &snapDecoder{b: b, off: len(snapMagic)}
	var s Snapshot
	s.Gen = int(int64(d.u64()))
	nt := d.count(minTenantEnc)
	if nt > 0 {
		s.Tenants = make([]TenantSnapshot, 0, nt)
	}
	for i := 0; i < nt && d.err == nil; i++ {
		var ts TenantSnapshot
		ts.ID = d.str()
		ts.Weight = int64(d.u64())
		ts.Floor = int64(d.u64())
		ts.Ceil = int64(d.u64())
		ts.Prio = int32(d.u32())
		ts.Vsvc = int64(d.u64())
		ts.PodSeq = int(int32(d.u32()))
		np := d.count(minPodEnc)
		if np > 0 {
			ts.Pods = make([]PodRecord, 0, np)
		}
		for j := 0; j < np && d.err == nil; j++ {
			var pr PodRecord
			pr.Name = d.str()
			pr.State = int32(d.u32())
			ts.Pods = append(ts.Pods, pr)
		}
		s.Tenants = append(s.Tenants, ts)
	}
	if d.err != nil {
		return Snapshot{}, d.err
	}
	if d.remaining() != 0 {
		return Snapshot{}, fmt.Errorf("arbiter: decode snapshot: %d trailing bytes", d.remaining())
	}
	return s, nil
}
