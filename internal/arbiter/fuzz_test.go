package arbiter

import (
	"reflect"
	"slices"
	"testing"
)

// FuzzArbiterAllocate decodes arbitrary bytes into a tenant mix plus a
// demand stream and holds the packed allocator byte-identical to the
// naive reference across three cycles of evolving virtual-service
// state. Run longer in CI's tenant-smoke job (-fuzztime 30s).
func FuzzArbiterAllocate(f *testing.F) {
	f.Add([]byte{1, 0, 10, 1, 0, 0, 0, 5, 5, 5})
	f.Add([]byte{0, 3, 7, 1, 2, 0, 0, 4, 0, 3, 9, 1, 16, 1, 8, 2, 0, 0, 0, 1})
	f.Add([]byte{0, 2, 0, 1, 0, 0, 0, 1, 0, 0, 1, 200, 200})
	f.Add([]byte{0, 5, 255, 8, 3, 4, 2, 1, 1, 1, 0, 9, 9, 9, 9, 9, 30, 0, 30, 0, 30})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		policy := PolicyFairShare
		if next()%2 == 1 {
			policy = PolicyGreedy
		}
		n := 1 + int(next()%64)
		total := int64(next()) + int64(next())
		al := &allocator{policy: policy, total: total}
		for i := 0; i < n; i++ {
			weight := int64(1 + next()%16)
			floor := int64(next() % 5)
			var ceil int64
			if b := next(); b%3 == 0 {
				ceil = int64(b % 8)
			}
			al.addTenant(weight, floor, ceil, int32(next()%3))
			al.vsvc[i] = int64(next()) * vsvcUnit / 4
		}
		demand := make([]int64, n)
		grant := make([]int64, n)
		for cycle := 0; cycle < 3; cycle++ {
			for i := range demand {
				demand[i] = int64(next()) - 1
			}
			al.allocate(demand, grant)
			ref := referenceAllocate(refInput{
				policy: al.policy, total: al.total,
				weight: al.weight, floor: al.floor, ceil: al.ceil,
				prio: al.prio, vsvc: al.vsvc, demand: demand,
			})
			if !slices.Equal(grant, ref) {
				t.Fatalf("cycle %d: packed %v != reference %v\ndemand %v weights %v floors %v ceils %v prios %v vsvc %v total %d policy %d",
					cycle, grant, ref, demand, al.weight, al.floor, al.ceil, al.prio, al.vsvc, al.total, al.policy)
			}
			var sum int64
			for _, g := range grant {
				sum += g
			}
			if sum > al.total {
				t.Fatalf("cycle %d: Σgrant %d > total %d", cycle, sum, al.total)
			}
			al.commit(grant)
		}
	})
}

// FuzzSnapshotCodec throws arbitrary bytes at the snapshot decoder:
// it must never panic or over-allocate, and anything it accepts must
// re-encode and re-decode to the identical value (round-trip
// identity — the property Restore's correctness rests on).
func FuzzSnapshotCodec(f *testing.F) {
	f.Add([]byte(snapMagic))
	f.Add(Snapshot{}.Encode())
	f.Add(Snapshot{Gen: 3, Tenants: []TenantSnapshot{{
		ID: "t1", Weight: 2, Floor: 1, Ceil: 4, Prio: 1, Vsvc: 1 << 21, PodSeq: 3,
		Pods: []PodRecord{{Name: "t1-w1", State: 1}, {Name: "t1-w3", State: 2}},
	}}}.Encode())
	f.Add([]byte("ARBS1\x00\x00\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff\x7f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		enc := snap.Encode()
		back, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v", err)
		}
		if !reflect.DeepEqual(snap, back) {
			t.Fatalf("round trip diverged:\n%+v\n%+v", snap, back)
		}
	})
}
