package arbiter

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"

	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// randMix builds one randomized tenant mix on a fresh allocator.
func randMix(rng *rand.Rand) (*allocator, int) {
	n := 1 + rng.Intn(64)
	policy := PolicyFairShare
	if rng.Intn(8) == 0 {
		policy = PolicyGreedy
	}
	al := &allocator{policy: policy, total: int64(rng.Intn(300))}
	for i := 0; i < n; i++ {
		weight := int64(1 + rng.Intn(16))
		floor := int64(rng.Intn(4))
		var ceil int64
		if rng.Intn(3) == 0 {
			ceil = floor + int64(rng.Intn(6))
		}
		al.addTenant(weight, floor, ceil, int32(rng.Intn(3)))
	}
	// Random virtual-service starting points: the remainder ordering
	// must agree from any counter state, not just all-zero.
	for i := range al.vsvc {
		al.vsvc[i] = int64(rng.Intn(50)) * vsvcUnit
	}
	return al, n
}

func diffOneMix(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	al, n := randMix(rng)
	demand := make([]int64, n)
	grant := make([]int64, n)
	// Several sequential cycles so the committed virtual-service
	// counters evolve — the rotation state is part of the contract.
	for cycle := 0; cycle < 5; cycle++ {
		for i := range demand {
			demand[i] = int64(rng.Intn(40)) - 2 // occasionally negative
		}
		al.allocate(demand, grant)
		ref := referenceAllocate(refInput{
			policy: al.policy, total: al.total,
			weight: al.weight, floor: al.floor, ceil: al.ceil,
			prio: al.prio, vsvc: al.vsvc, demand: demand,
		})
		if !slices.Equal(grant, ref) {
			t.Fatalf("seed %d cycle %d: packed %v != reference %v\ndemand %v\nweights %v floors %v ceils %v prios %v vsvc %v",
				seed, cycle, grant, ref, demand, al.weight, al.floor, al.ceil, al.prio, al.vsvc)
		}
		checkInvariants(t, al, demand, grant, seed, cycle)
		al.commit(grant)
	}
}

// checkInvariants asserts the allocation laws that hold regardless of
// the exact water-filling arithmetic.
func checkInvariants(t *testing.T, al *allocator, demand, grant []int64, seed int64, cycle int) {
	t.Helper()
	var sumGrant, sumCap, sumFloorWant int64
	for i := range grant {
		c := max(demand[i], 0)
		if al.ceil[i] > 0 {
			c = min(c, al.ceil[i])
		}
		if grant[i] < 0 || grant[i] > c {
			t.Fatalf("seed %d cycle %d: grant[%d]=%d outside [0, cap=%d]", seed, cycle, i, grant[i], c)
		}
		sumGrant += grant[i]
		sumCap += c
		sumFloorWant += min(c, al.floor[i])
	}
	if sumGrant > al.total {
		t.Fatalf("seed %d cycle %d: Σgrant %d > total %d", seed, cycle, sumGrant, al.total)
	}
	// Work-conserving: capacity is only left over when demand ran out.
	if sumGrant < min(sumCap, al.total) {
		t.Fatalf("seed %d cycle %d: Σgrant %d < min(Σcap %d, total %d) — capacity stranded",
			seed, cycle, sumGrant, sumCap, al.total)
	}
	// Floors honored whenever jointly feasible (fair-share only; the
	// greedy baseline ignores them by design).
	if al.policy == PolicyFairShare && sumFloorWant <= al.total {
		for i := range grant {
			c := max(demand[i], 0)
			if al.ceil[i] > 0 {
				c = min(c, al.ceil[i])
			}
			if owed := min(c, al.floor[i]); grant[i] < owed {
				t.Fatalf("seed %d cycle %d: grant[%d]=%d below feasible floor %d", seed, cycle, i, grant[i], owed)
			}
		}
	}
}

// TestAllocatorDifferential holds the packed allocator byte-identical
// to the naive reference across 1000 randomized tenant mixes × 5
// evolving cycles each.
func TestAllocatorDifferential(t *testing.T) {
	mixes := 1000
	if testing.Short() {
		mixes = 100
	}
	for seed := int64(0); seed < int64(mixes); seed++ {
		diffOneMix(t, seed)
	}
}

// TestArbiterControllerDifferential runs the incremental and reference
// arbiters side by side against one live cluster scenario: every cycle
// both plan from the same pre-commit state and must produce identical
// grants, while pods churn through creation, connection, task
// execution and drains underneath.
func TestArbiterControllerDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			eng := simclock.NewEngine(simStart)
			cluster := kubesim.NewCluster(eng, kubesim.Config{
				InitialNodes:  3,
				MinNodes:      1,
				MaxNodes:      6,
				ProvisionMean: 45 * time.Second,
				Seed:          seed,
			})
			a := New(eng, cluster, Config{Cycle: 15 * time.Second, TotalWorkers: 6})
			rng := rand.New(rand.NewSource(seed))
			cfgs := []TenantConfig{
				{ID: "a", Weight: 2},
				{ID: "b", Weight: 1, QuotaMin: 1},
				{ID: "c", Weight: 1, QuotaMax: 2},
				{ID: "d", Weight: 3, Priority: 1},
			}
			total := 0
			for _, cfg := range cfgs {
				ten, err := a.AddTenant(cfg)
				if err != nil {
					t.Fatal(err)
				}
				tasks := 4 + rng.Intn(5)
				for j := 0; j < tasks; j++ {
					spec := wq.TaskSpec{
						Category: fmt.Sprintf("cat%d", j%2),
						Profile: wq.Profile{
							ExecDuration: time.Duration(30+rng.Intn(90)) * time.Second,
							UsedCPUMilli: 870, UsedMemoryMB: 1700,
						},
					}
					if j%3 != 0 { // mix declared and undeclared tasks
						spec.Resources = resources.Vector{MilliCPU: 870, MemoryMB: 1700}
					}
					ten.Master().Submit(spec)
					total++
				}
			}
			cycles := 0
			eng.Every(a.cfg.Cycle, "diff-cycle", func() {
				a.plan(a.grant)
				a.referencePlan(a.refGrant)
				if !slices.Equal(a.grant, a.refGrant) {
					t.Fatalf("cycle %d at %v: incremental %v != reference %v",
						cycles, eng.Now(), a.grant, a.refGrant)
				}
				a.al.commit(a.grant)
				a.apply(a.grant)
				cycles++
			})
			done := func() int {
				n := 0
				for _, ten := range a.Tenants() {
					n += ten.Master().CompletedCount()
				}
				return n
			}
			deadline := simStart.Add(4 * time.Hour)
			eng.RunWhile(func() bool { return done() < total && eng.Now().Before(deadline) })
			if done() != total {
				t.Fatalf("completed %d/%d by %v", done(), total, eng.Now())
			}
			if cycles < 5 {
				t.Fatalf("only %d arbitration cycles ran", cycles)
			}
		})
	}
}
