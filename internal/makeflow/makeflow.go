// Package makeflow parses workflow descriptions written in the
// Makeflow language — the Make-like syntax of the workflow manager
// used by the paper — into a dag.Graph.
//
// The supported subset covers what HTC workloads use in practice:
//
//	# comment
//	SHELL=/bin/sh                # variable assignment
//	CATEGORY=align               # switch current task category
//	CORES=1                      # per-category resource declarations
//	MEMORY=4096
//	DISK=1800
//
//	out.1: in.1 blastall         # rule: targets ':' sources
//		./blastall -i in.1 -o out.1   # tab-indented command
//
// Variables are substituted with $(NAME) or ${NAME}. A trailing
// backslash continues a line. Rules inherit the resource declarations
// of the category that is current when the rule appears.
package makeflow

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hta/internal/dag"
	"hta/internal/resources"
)

// Result is a parsed workflow.
type Result struct {
	// Graph is the finalized workflow DAG.
	Graph *dag.Graph
	// CategoryResources maps category names to their declared
	// per-task resource requirements (zero vector if undeclared).
	CategoryResources map[string]resources.Vector
	// Variables holds the final values of all assigned variables.
	Variables map[string]string
	// Exports lists variables marked for export into task
	// environments, in declaration order.
	Exports []string
}

// ParseError is a syntax error with its source line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("makeflow: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// DefaultCategory is the category assigned to rules that appear
// before any CATEGORY declaration, matching Makeflow's behaviour.
const DefaultCategory = "default"

// reserved variable names that carry parser semantics rather than
// plain substitution values.
var reserved = map[string]bool{
	"CATEGORY": true, "CORES": true, "MEMORY": true, "DISK": true,
}

type parser struct {
	vars     map[string]string
	category string
	catRes   map[string]resources.Vector
	graph    *dag.Graph
	ruleN    int
	exports  []string
}

// Parse reads a Makeflow description and returns the workflow.
func Parse(r io.Reader) (*Result, error) {
	p := &parser{
		vars:     make(map[string]string),
		category: DefaultCategory,
		catRes:   make(map[string]resources.Vector),
		graph:    dag.NewGraph(),
	}
	lines, err := readLogicalLines(r)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(lines); i++ {
		ln := lines[i]
		text := ln.text
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "\t") || strings.HasPrefix(text, "    ") {
			return nil, errf(ln.num, "command without a preceding rule")
		}
		expanded, err := p.expand(text, ln.num)
		if err != nil {
			return nil, err
		}
		if rest, ok := strings.CutPrefix(strings.TrimSpace(expanded), "export "); ok {
			if err := p.export(rest, ln.num); err != nil {
				return nil, err
			}
			continue
		}
		if name, val, ok := splitAssignment(expanded); ok {
			if err := p.assign(name, val, ln.num); err != nil {
				return nil, err
			}
			continue
		}
		if strings.Contains(expanded, ":") {
			// Gather the tab-indented command block.
			var cmds []string
			j := i + 1
			for ; j < len(lines); j++ {
				ct := lines[j].text
				if !strings.HasPrefix(ct, "\t") && !strings.HasPrefix(ct, "    ") {
					break
				}
				cexp, err := p.expand(strings.TrimLeft(ct, " \t"), lines[j].num)
				if err != nil {
					return nil, err
				}
				if cexp != "" {
					cmds = append(cmds, cexp)
				}
			}
			if err := p.addRule(expanded, cmds, ln.num); err != nil {
				return nil, err
			}
			i = j - 1
			continue
		}
		return nil, errf(ln.num, "expected rule or assignment, got %q", strings.TrimSpace(text))
	}
	if err := p.graph.Finalize(); err != nil {
		return nil, err
	}
	return &Result{
		Graph:             p.graph,
		CategoryResources: p.catRes,
		Variables:         p.vars,
		Exports:           p.exports,
	}, nil
}

// ParseString is Parse on a string.
func ParseString(s string) (*Result, error) { return Parse(strings.NewReader(s)) }

type logicalLine struct {
	text string
	num  int
}

// readLogicalLines strips comments and joins backslash-continued
// lines, preserving the first physical line number of each logical
// line for error reporting.
func readLogicalLines(r io.Reader) ([]logicalLine, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []logicalLine
	num := 0
	for sc.Scan() {
		num++
		text := stripComment(sc.Text())
		start := num
		for strings.HasSuffix(text, "\\") && sc.Scan() {
			num++
			text = strings.TrimSuffix(text, "\\") + " " + strings.TrimSpace(stripComment(sc.Text()))
		}
		out = append(out, logicalLine{text: text, num: start})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("makeflow: read: %w", err)
	}
	return out, nil
}

func stripComment(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		return s[:i]
	}
	return s
}

// splitAssignment recognizes NAME=value lines (NAME must look like an
// identifier and the '=' must come before any whitespace gap that
// would indicate a rule).
func splitAssignment(s string) (name, val string, ok bool) {
	t := strings.TrimSpace(s)
	i := strings.IndexByte(t, '=')
	if i <= 0 {
		return "", "", false
	}
	name = strings.TrimSpace(t[:i])
	if !isIdent(name) {
		return "", "", false
	}
	val = strings.TrimSpace(t[i+1:])
	val = strings.Trim(val, `"`)
	return name, val, true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_', c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// export handles "export NAME" and "export NAME=value" lines.
func (p *parser) export(rest string, line int) error {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return errf(line, "export without a variable name")
	}
	if name, val, ok := splitAssignment(rest); ok {
		if err := p.assign(name, val, line); err != nil {
			return err
		}
		p.exports = append(p.exports, name)
		return nil
	}
	if !isIdent(rest) {
		return errf(line, "invalid export name %q", rest)
	}
	if _, defined := p.vars[rest]; !defined && !reserved[rest] {
		return errf(line, "export of undefined variable %q", rest)
	}
	p.exports = append(p.exports, rest)
	return nil
}

func (p *parser) assign(name, val string, line int) error {
	switch name {
	case "CATEGORY":
		if val == "" {
			return errf(line, "empty CATEGORY name")
		}
		p.category = val
		if _, ok := p.catRes[val]; !ok {
			p.catRes[val] = resources.Zero
		}
	case "CORES":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return errf(line, "bad CORES value %q", val)
		}
		v := p.catRes[p.category]
		v.MilliCPU = int64(f * 1000)
		p.catRes[p.category] = v
	case "MEMORY":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return errf(line, "bad MEMORY value %q (MB)", val)
		}
		v := p.catRes[p.category]
		v.MemoryMB = n
		p.catRes[p.category] = v
	case "DISK":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return errf(line, "bad DISK value %q (MB)", val)
		}
		v := p.catRes[p.category]
		v.DiskMB = n
		p.catRes[p.category] = v
	default:
		p.vars[name] = val
	}
	return nil
}

// expand substitutes $(NAME) and ${NAME} references.
func (p *parser) expand(s string, line int) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '$' || i+1 >= len(s) {
			b.WriteByte(c)
			continue
		}
		open := s[i+1]
		var close byte
		switch open {
		case '(':
			close = ')'
		case '{':
			close = '}'
		case '$': // "$$" escapes a literal dollar
			b.WriteByte('$')
			i++
			continue
		default:
			b.WriteByte(c)
			continue
		}
		end := strings.IndexByte(s[i+2:], close)
		if end < 0 {
			return "", errf(line, "unterminated variable reference %q", s[i:])
		}
		name := s[i+2 : i+2+end]
		if !isIdent(name) {
			return "", errf(line, "invalid variable name %q", name)
		}
		val, ok := p.vars[name]
		if !ok {
			if reserved[name] {
				val = p.reservedValue(name)
			} else {
				return "", errf(line, "undefined variable %q", name)
			}
		}
		b.WriteString(val)
		i += 2 + end
	}
	return b.String(), nil
}

func (p *parser) reservedValue(name string) string {
	v := p.catRes[p.category]
	switch name {
	case "CATEGORY":
		return p.category
	case "CORES":
		return strconv.FormatFloat(v.CoresValue(), 'f', -1, 64)
	case "MEMORY":
		return strconv.FormatInt(v.MemoryMB, 10)
	case "DISK":
		return strconv.FormatInt(v.DiskMB, 10)
	}
	return ""
}

func (p *parser) addRule(head string, cmds []string, line int) error {
	targets, sources, ok := strings.Cut(head, ":")
	if !ok {
		return errf(line, "rule without ':'")
	}
	outs := strings.Fields(targets)
	ins := strings.Fields(sources)
	if len(outs) == 0 {
		return errf(line, "rule with no targets")
	}
	if len(cmds) == 0 {
		return errf(line, "rule %q has no command", outs[0])
	}
	// A command starting with Makeflow's LOCAL keyword runs at the
	// workflow manager rather than on a worker.
	local := false
	for i, c := range cmds {
		if rest, ok := strings.CutPrefix(c, "LOCAL "); ok {
			local = true
			cmds[i] = strings.TrimSpace(rest)
		}
	}
	p.ruleN++
	node := dag.Node{
		ID:        fmt.Sprintf("rule%d:%s", p.ruleN, outs[0]),
		Command:   strings.Join(cmds, " && "),
		Category:  p.category,
		Inputs:    ins,
		Outputs:   outs,
		Resources: p.catRes[p.category],
		Local:     local,
	}
	if err := p.graph.Add(node); err != nil {
		return errf(line, "%v", err)
	}
	return nil
}
