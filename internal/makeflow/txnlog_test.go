package makeflow

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReplayRoundTrip(t *testing.T) {
	s := NewMemorySink()
	s.Append(TxnSubmit, "rule1:a")
	s.Append(TxnSubmit, "rule2:b")
	s.Append(TxnDone, "rule1:a")
	s.Append(TxnLocal, "rule3:c")
	s.Append(TxnSubmit, "rule4:d")
	s.Append(TxnFail, "rule4:d")
	rep, err := ReplayLog(bytes.NewReader(s.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(rep.Done, ","); got != "rule1:a,rule3:c" {
		t.Fatalf("Done = %q", got)
	}
	if got := strings.Join(rep.InFlight, ","); got != "rule2:b" {
		t.Fatalf("InFlight = %q", got)
	}
	if got := strings.Join(rep.Failed, ","); got != "rule4:d" {
		t.Fatalf("Failed = %q", got)
	}
	if rep.Records != 6 || rep.Truncated {
		t.Fatalf("Records=%d Truncated=%v", rep.Records, rep.Truncated)
	}
}

// TestReplayTornTail verifies that a crash mid-append — the final
// record has no newline — discards only the torn record.
func TestReplayTornTail(t *testing.T) {
	s := NewMemorySink()
	s.Append(TxnSubmit, "a")
	s.Append(TxnDone, "a")
	log := append(s.Bytes(), []byte("submit b-torn-midw")...) // no '\n'
	rep, err := ReplayLog(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("torn tail not flagged")
	}
	if len(rep.Done) != 1 || rep.Done[0] != "a" || len(rep.InFlight) != 0 {
		t.Fatalf("recovered state wrong: %+v", rep)
	}
}

// TestReplayCorruptMiddle verifies that a malformed record stops
// replay at the last consistent prefix rather than erroring or
// applying later records out of context.
func TestReplayCorruptMiddle(t *testing.T) {
	log := "submit a\ndone a\n\x00\x7fjunk\nsubmit c\n"
	rep, err := ReplayLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("corruption not flagged")
	}
	if len(rep.Done) != 1 || len(rep.InFlight) != 0 {
		t.Fatalf("prefix not consistent: %+v", rep)
	}
	if rep.Records != 2 {
		t.Fatalf("Records = %d, want 2", rep.Records)
	}
}

// TestReplayLastStateWins verifies a resubmitted rule (fail then
// submit again then done) lands in Done only.
func TestReplayLastStateWins(t *testing.T) {
	log := "submit a\nfail a\nsubmit a\ndone a\n"
	rep, err := ReplayLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Done) != 1 || len(rep.Failed) != 0 || len(rep.InFlight) != 0 {
		t.Fatalf("last state did not win: %+v", rep)
	}
}

func TestFileSinkAppendAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.txn")
	s, err := OpenFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Append(TxnSubmit, "a")
	s.Append(TxnDone, "a")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen appends after the existing records, no second header.
	s2, err := OpenFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	s2.Append(TxnSubmit, "b")
	s2.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), LogHeader); n != 1 {
		t.Fatalf("header written %d times", n)
	}
	rep, err := ReplayLog(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Done) != 1 || len(rep.InFlight) != 1 || rep.InFlight[0] != "b" {
		t.Fatalf("reopened log replay wrong: %+v", rep)
	}
}
