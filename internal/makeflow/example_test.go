package makeflow_test

import (
	"fmt"

	"hta/internal/makeflow"
)

func ExampleParseString() {
	res, err := makeflow.ParseString(`
CATEGORY=align
CORES=1
MEMORY=4096

out.0: query.0 nt.db
	blastall -i query.0 -o out.0
out.1: query.1 nt.db
	blastall -i query.1 -o out.1

CATEGORY=reduce
CORES=2
result: out.0 out.1
	cat out.0 out.1 > result
`)
	if err != nil {
		panic(err)
	}
	g := res.Graph
	fmt.Println("rules:", g.Len())
	fmt.Println("ready:", len(g.Ready()))
	fmt.Println("align resources:", res.CategoryResources["align"])
	// Output:
	// rules: 3
	// ready: 2
	// align resources: 1.000c 4096MB 0MB-disk
}
