package makeflow

import (
	"fmt"
	"strings"
	"testing"
)

// BenchmarkParseLargeWorkflow measures parsing a 2000-rule workflow
// with variables and categories.
func BenchmarkParseLargeWorkflow(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("DB=nt.db\nCATEGORY=align\nCORES=1\nMEMORY=4096\n")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "out.%d: query.%d $(DB)\n\tblastall -d $(DB) -i query.%d -o out.%d\n", i, i, i, i)
	}
	src := sb.String()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := ParseString(src)
		if err != nil {
			b.Fatal(err)
		}
		if res.Graph.Len() != 2000 {
			b.Fatal("wrong rule count")
		}
	}
}
