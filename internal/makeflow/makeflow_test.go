package makeflow

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"hta/internal/resources"
)

const blastExample = `
# A miniature BLAST workflow.
BLAST=./blastall
DB=nt.db

CATEGORY=split
CORES=1
MEMORY=1024
DISK=2000

query.0 query.1: input.fasta
	./split_fasta input.fasta 2

CATEGORY=align
CORES=1
MEMORY=4096
DISK=1800

out.0: query.0 $(DB)
	$(BLAST) -d $(DB) -i query.0 -o out.0

out.1: query.1 ${DB}
	$(BLAST) -d $(DB) -i query.1 -o out.1

CATEGORY=reduce
CORES=2
MEMORY=2048

result: out.0 out.1
	cat out.0 out.1 > result
`

func TestParseBlastExample(t *testing.T) {
	res, err := ParseString(blastExample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g := res.Graph
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	cats := g.CategoryCounts()
	if cats["split"] != 1 || cats["align"] != 2 || cats["reduce"] != 1 {
		t.Errorf("CategoryCounts = %v", cats)
	}
	// Levels correspond to the three stages.
	levels := g.Levels()
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	// Category resources.
	if got := res.CategoryResources["align"]; got != resources.New(1, 4096, 1800) {
		t.Errorf("align resources = %v", got)
	}
	if got := res.CategoryResources["reduce"]; got != resources.New(2, 2048, 0) {
		t.Errorf("reduce resources = %v", got)
	}
	// Variable substitution inside commands.
	ready := g.Ready()
	if len(ready) != 1 {
		t.Fatalf("ready = %v", ready)
	}
	n, _ := g.Node(ready[0])
	if n.Command != "./split_fasta input.fasta 2" {
		t.Errorf("command = %q", n.Command)
	}
	// $(DB) expanded in the dependency list.
	align, _ := g.Node("rule2:out.0")
	found := false
	for _, in := range align.Inputs {
		if in == "nt.db" {
			found = true
		}
	}
	if !found {
		t.Errorf("inputs = %v, want expansion of $(DB)", align.Inputs)
	}
	if !strings.Contains(align.Command, "./blastall -d nt.db") {
		t.Errorf("align command = %q", align.Command)
	}
	// External source files.
	srcs := g.SourceFiles()
	wantSrcs := map[string]bool{"input.fasta": true, "nt.db": true}
	for _, s := range srcs {
		if !wantSrcs[s] {
			t.Errorf("unexpected source %q", s)
		}
	}
}

func TestMultiCommandRule(t *testing.T) {
	res, err := ParseString("out: in\n\tstep1 in\n\tstep2 > out\n")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Graph.Node("rule1:out")
	if n.Command != "step1 in && step2 > out" {
		t.Errorf("command = %q", n.Command)
	}
}

func TestLineContinuation(t *testing.T) {
	res, err := ParseString("out: in \\\n  more.db\n\tcmd in more.db\n")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Graph.Node("rule1:out")
	if len(n.Inputs) != 2 {
		t.Errorf("inputs = %v", n.Inputs)
	}
}

func TestCommentsAndDollarEscape(t *testing.T) {
	res, err := ParseString("X=5 # trailing comment\nout: in\n\techo $$HOME $(X)\n")
	if err != nil {
		t.Fatal(err)
	}
	if res.Variables["X"] != "5" {
		t.Errorf("X = %q", res.Variables["X"])
	}
	n, _ := res.Graph.Node("rule1:out")
	if n.Command != "echo $HOME 5" {
		t.Errorf("command = %q", n.Command)
	}
}

func TestReservedVariableExpansion(t *testing.T) {
	src := "CATEGORY=align\nCORES=2\nout: in\n\trun --cores $(CORES) --cat $(CATEGORY)\n"
	res, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Graph.Node("rule1:out")
	if n.Command != "run --cores 2 --cat align" {
		t.Errorf("command = %q", n.Command)
	}
}

func TestDefaultCategory(t *testing.T) {
	res, err := ParseString("out: in\n\tcmd\n")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Graph.Node("rule1:out")
	if n.Category != DefaultCategory {
		t.Errorf("category = %q", n.Category)
	}
	if !n.Resources.IsZero() {
		t.Errorf("resources = %v, want unknown (zero)", n.Resources)
	}
}

func errLine(t *testing.T, err error) int {
	t.Helper()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a ParseError", err)
	}
	return pe.Line
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src string
		line      int
		contains  string
	}{
		{"command without rule", "\tcmd\n", 1, "command without a preceding rule"},
		{"rule missing command", "out: in\nX=1\n", 1, "no command"},
		{"rule no targets", ": in\n\tcmd\n", 1, "no targets"},
		{"undefined variable", "out: in\n\tcmd $(NOPE)\n", 2, "undefined variable"},
		{"unterminated reference", "out: in\n\tcmd $(NOPE\n", 2, "unterminated"},
		{"bad cores", "CORES=lots\n", 1, "bad CORES"},
		{"negative memory", "MEMORY=-4\n", 1, "bad MEMORY"},
		{"bad disk", "DISK=x\n", 1, "bad DISK"},
		{"empty category", "CATEGORY=\n", 1, "empty CATEGORY"},
		{"garbage line", "what even is this\n", 1, "expected rule or assignment"},
		{"duplicate producer", "out: a\n\tc1\nout: b\n\tc2\n", 3, "produced by both"},
		{"invalid var name", "out: in\n\tcmd $(9X)\n", 2, "invalid variable name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseString(c.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", c.src)
			}
			if !strings.Contains(err.Error(), c.contains) {
				t.Errorf("err = %v, want substring %q", err, c.contains)
			}
			if got := errLine(t, err); got != c.line {
				t.Errorf("line = %d, want %d", got, c.line)
			}
		})
	}
}

func TestCycleReported(t *testing.T) {
	_, err := ParseString("a: b.out\n\tcmd\nb.out: a\n\tcmd2\n")
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle", err)
	}
}

func TestResourcesPerCategoryIndependent(t *testing.T) {
	src := "CATEGORY=a\nCORES=1\nCATEGORY=b\nCORES=3\nCATEGORY=a\nMEMORY=512\nx: i\n\tc\n"
	res, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CategoryResources["a"]; got != resources.New(1, 512, 0) {
		t.Errorf("a = %v", got)
	}
	if got := res.CategoryResources["b"]; got != resources.New(3, 0, 0) {
		t.Errorf("b = %v", got)
	}
	// The rule appeared while category a was current.
	n, _ := res.Graph.Node("rule1:x")
	if n.Category != "a" {
		t.Errorf("category = %q", n.Category)
	}
}

func TestFractionalCores(t *testing.T) {
	res, err := ParseString("CATEGORY=c\nCORES=0.5\nx: i\n\tc\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CategoryResources["c"].MilliCPU; got != 500 {
		t.Errorf("millicores = %d", got)
	}
}

// Property: a generated fan workflow of any width parses back to a
// graph with the same structure.
func TestPropertyGeneratedFanRoundTrip(t *testing.T) {
	f := func(w uint8) bool {
		width := int(w%64) + 1
		var b strings.Builder
		b.WriteString("CATEGORY=map\nCORES=1\n")
		for i := 0; i < width; i++ {
			fmt.Fprintf(&b, "part.%d: input\n\tmap input %d\n", i, i)
		}
		b.WriteString("CATEGORY=reduce\nCORES=1\nresult:")
		for i := 0; i < width; i++ {
			fmt.Fprintf(&b, " part.%d", i)
		}
		b.WriteString("\n\treduce\n")
		res, err := ParseString(b.String())
		if err != nil {
			return false
		}
		g := res.Graph
		if g.Len() != width+1 {
			return false
		}
		if len(g.Ready()) != width {
			return false
		}
		levels := g.Levels()
		return len(levels) == 2 && len(levels[0]) == width && len(levels[1]) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpaceIndentedCommands(t *testing.T) {
	res, err := ParseString("out: in\n    cmd via spaces\n")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Graph.Node("rule1:out")
	if n.Command != "cmd via spaces" {
		t.Errorf("command = %q", n.Command)
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := ParseString("")
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Len() != 0 {
		t.Errorf("Len = %d", res.Graph.Len())
	}
}

func TestExportStatements(t *testing.T) {
	res, err := ParseString("PATH=/opt/bin\nexport PATH\nexport BLASTDB=/data/nt\nout: in\n\tcmd\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"PATH", "BLASTDB"}
	if len(res.Exports) != 2 || res.Exports[0] != want[0] || res.Exports[1] != want[1] {
		t.Errorf("Exports = %v, want %v", res.Exports, want)
	}
	if res.Variables["BLASTDB"] != "/data/nt" {
		t.Errorf("BLASTDB = %q", res.Variables["BLASTDB"])
	}
}

func TestExportErrors(t *testing.T) {
	for _, src := range []string{
		"export\n",
		"export NOPE\n",
		"export 9bad\n",
	} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestLocalRule(t *testing.T) {
	res, err := ParseString("out: in\n\tLOCAL gather in > out\nremote: out\n\tprocess out\n")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Graph.Node("rule1:out")
	if !n.Local {
		t.Error("LOCAL rule not flagged")
	}
	if n.Command != "gather in > out" {
		t.Errorf("command = %q (prefix must be stripped)", n.Command)
	}
	n2, _ := res.Graph.Node("rule2:remote")
	if n2.Local {
		t.Error("plain rule flagged local")
	}
}
