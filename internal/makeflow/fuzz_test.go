package makeflow

import "testing"

// FuzzParse exercises the parser with arbitrary input: it must never
// panic, and any accepted workflow must produce a well-formed,
// acyclic graph.
func FuzzParse(f *testing.F) {
	f.Add(blastExample)
	f.Add("out: in\n\tcmd $(X)\n")
	f.Add("X=1\nexport X\nout: in a b \\\n c\n\tLOCAL run $$X\n")
	f.Add("CATEGORY=c\nCORES=0.5\nMEMORY=10\nDISK=2\n")
	f.Add(": \n\t\n")
	f.Add("a:\n\tx\nb: a\n\ty\n")
	f.Fuzz(func(t *testing.T, src string) {
		res, err := ParseString(src)
		if err != nil {
			return
		}
		g := res.Graph
		// Accepted graphs must be executable to completion.
		steps := 0
		for !g.Done() {
			ready := g.Ready()
			if len(ready) == 0 {
				t.Fatalf("accepted workflow deadlocks: %q", src)
			}
			for _, id := range ready {
				if err := g.Start(id); err != nil {
					t.Fatal(err)
				}
				if _, err := g.Complete(id); err != nil {
					t.Fatal(err)
				}
			}
			steps++
			if steps > g.Len()+1 {
				t.Fatalf("no progress executing accepted workflow: %q", src)
			}
		}
	})
}
