package makeflow

import (
	"strings"
	"testing"
)

// FuzzParse exercises the parser with arbitrary input: it must never
// panic, and any accepted workflow must produce a well-formed,
// acyclic graph.
func FuzzParse(f *testing.F) {
	f.Add(blastExample)
	f.Add("out: in\n\tcmd $(X)\n")
	f.Add("X=1\nexport X\nout: in a b \\\n c\n\tLOCAL run $$X\n")
	f.Add("CATEGORY=c\nCORES=0.5\nMEMORY=10\nDISK=2\n")
	f.Add(": \n\t\n")
	f.Add("a:\n\tx\nb: a\n\ty\n")
	f.Fuzz(func(t *testing.T, src string) {
		res, err := ParseString(src)
		if err != nil {
			return
		}
		g := res.Graph
		// Accepted graphs must be executable to completion.
		steps := 0
		for !g.Done() {
			ready := g.Ready()
			if len(ready) == 0 {
				t.Fatalf("accepted workflow deadlocks: %q", src)
			}
			for _, id := range ready {
				if err := g.Start(id); err != nil {
					t.Fatal(err)
				}
				if _, err := g.Complete(id); err != nil {
					t.Fatal(err)
				}
			}
			steps++
			if steps > g.Len()+1 {
				t.Fatalf("no progress executing accepted workflow: %q", src)
			}
		}
	})
}

// FuzzReplay exercises the transaction-log replay parser with
// arbitrary bytes: corrupt, truncated or interleaved records must
// never panic, and whatever is recovered must be a consistent prefix
// — every reported rule in exactly one of Done/Failed/InFlight, and
// replaying the recovered prefix again must reproduce the result.
func FuzzReplay(f *testing.F) {
	f.Add([]byte(LogHeader + "\nsubmit rule1:a\ndone rule1:a\nsubmit rule2:b\n"))
	f.Add([]byte("submit a\nfail a\nsubmit a\ndone a\n"))
	f.Add([]byte("local x y with spaces\nsubmit x\n"))
	f.Add([]byte("done half-record"))            // torn tail
	f.Add([]byte("submit a\ngarbage\ndone a\n")) // corrupt middle
	f.Add([]byte("submit a\nsubmit b\ndone a\nfail b\n"))
	f.Add([]byte{0, 1, 2, '\n', 'd', 'o', 'n', 'e'})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ReplayLog(strings.NewReader(string(data)))
		if err != nil {
			t.Fatalf("ReplayLog returned error on in-memory input: %v", err)
		}
		seen := make(map[string]int)
		for _, id := range rep.Done {
			seen[id]++
		}
		for _, id := range rep.Failed {
			seen[id]++
		}
		for _, id := range rep.InFlight {
			seen[id]++
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("rule %q reported in %d buckets", id, n)
			}
		}
		if rep.Records < 0 || rep.Records > len(data) {
			t.Fatalf("implausible record count %d for %d bytes", rep.Records, len(data))
		}
		// Re-serializing the recovered state and replaying it must be a
		// fixed point: the prefix we recovered is itself a valid log.
		var b strings.Builder
		for _, id := range rep.InFlight {
			b.WriteString("submit " + id + "\n")
		}
		for _, id := range rep.Done {
			b.WriteString("done " + id + "\n")
		}
		for _, id := range rep.Failed {
			b.WriteString("fail " + id + "\n")
		}
		again, err := ReplayLog(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Done) != len(rep.Done) || len(again.Failed) != len(rep.Failed) ||
			len(again.InFlight) != len(rep.InFlight) || again.Truncated {
			t.Fatalf("recovered prefix is not a fixed point: %+v vs %+v", again, rep)
		}
	})
}
