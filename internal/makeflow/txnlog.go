package makeflow

// Transaction log: the crash-consistency journal of the workflow
// engine, modelled on real Makeflow's .makeflowlog. Every rule state
// transition is appended as one line; on restart the log is replayed
// to reconstruct DAG progress so completed rules are skipped. The
// format is deliberately line-oriented and append-only so a crash can
// at worst leave a torn final line, which replay discards (recovering
// to the last complete record).
//
// Record format, one per line:
//
//	<state> <rule-id>
//
// where <state> is one of submit|done|fail|local and <rule-id> is the
// DAG node ID (it may contain spaces; everything after the first
// space belongs to the ID). Lines starting with '#' are comments.

import (
	"bytes"
	"io"
	"os"
	"strings"
)

// TxnState is a rule state transition recorded in the log.
type TxnState string

// Rule transitions. A rule is waiting until its submit record; local
// rules complete at the engine without ever reaching a scheduler.
const (
	TxnSubmit TxnState = "submit"
	TxnDone   TxnState = "done"
	TxnFail   TxnState = "fail"
	TxnLocal  TxnState = "local"
)

// LogHeader is the first line of every transaction log.
const LogHeader = "# makeflow txn log v1"

// maxRecordLen bounds one record; a longer line means corruption (no
// rule ID is remotely this large) and replay stops at it.
const maxRecordLen = 1 << 20

// LogSink receives appended records. Implementations must preserve
// append order; they need not be durable (the simulation uses an
// in-memory sink, cmd/wqmaster a file).
type LogSink interface {
	Append(state TxnState, ruleID string) error
}

// MemorySink is an in-memory LogSink for the simulated stack; Bytes
// returns the log so far for replay.
type MemorySink struct {
	buf bytes.Buffer
}

// NewMemorySink returns an empty in-memory log with its header.
func NewMemorySink() *MemorySink {
	s := &MemorySink{}
	s.buf.WriteString(LogHeader + "\n")
	return s
}

// Append writes one record.
func (s *MemorySink) Append(state TxnState, ruleID string) error {
	s.buf.WriteString(string(state))
	s.buf.WriteByte(' ')
	s.buf.WriteString(ruleID)
	s.buf.WriteByte('\n')
	return nil
}

// Bytes returns the accumulated log.
func (s *MemorySink) Bytes() []byte { return s.buf.Bytes() }

// Len returns the accumulated log size in bytes.
func (s *MemorySink) Len() int { return s.buf.Len() }

// FileSink appends records to a real file — the durable sink the
// cmd/ binaries use. Appends are buffered by the OS only (no
// per-record fsync); a torn tail is tolerated by replay.
type FileSink struct {
	f *os.File
}

// OpenFileSink opens (creating if absent) the log file for appending,
// writing the header into a fresh file.
func OpenFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(LogHeader + "\n"); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &FileSink{f: f}, nil
}

// Append writes one record.
func (s *FileSink) Append(state TxnState, ruleID string) error {
	_, err := s.f.WriteString(string(state) + " " + ruleID + "\n")
	return err
}

// Close closes the underlying file.
func (s *FileSink) Close() error { return s.f.Close() }

// Replay is the reconstructed rule progress from a transaction log.
type Replay struct {
	// Done lists rules whose last record is done or local, in
	// first-completion order.
	Done []string
	// Failed lists rules whose last record is fail.
	Failed []string
	// InFlight lists rules submitted but neither done nor failed, in
	// first-submission order.
	InFlight []string
	// Records counts the complete records parsed.
	Records int
	// Truncated reports that a torn/corrupt tail was discarded.
	Truncated bool
}

// ReplayLog parses a transaction log, tolerating a torn tail:
// scanning stops at the first incomplete or malformed record and
// everything before it — the longest consistent prefix — is applied.
// Corruption never yields an error; the error return only reports a
// read failure from r.
func ReplayLog(r io.Reader) (*Replay, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	rep := &Replay{}
	type ruleState struct {
		state TxnState
		order int // first-seen order
	}
	states := make(map[string]*ruleState)
	var order []string // first-seen rule order
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Torn tail: the final record never got its newline.
			rep.Truncated = true
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(line) > maxRecordLen {
			rep.Truncated = true
			break
		}
		s := string(line)
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		st, id, ok := parseRecord(s)
		if !ok {
			// Corrupt record: recover to the consistent prefix before it.
			rep.Truncated = true
			break
		}
		rep.Records++
		rs := states[id]
		if rs == nil {
			rs = &ruleState{}
			states[id] = rs
			order = append(order, id)
		}
		rs.state = st
	}
	for _, id := range order {
		switch states[id].state {
		case TxnDone, TxnLocal:
			rep.Done = append(rep.Done, id)
		case TxnFail:
			rep.Failed = append(rep.Failed, id)
		case TxnSubmit:
			rep.InFlight = append(rep.InFlight, id)
		}
	}
	return rep, nil
}

// parseRecord splits one line into its state and rule ID.
func parseRecord(line string) (TxnState, string, bool) {
	sp := strings.IndexByte(line, ' ')
	if sp <= 0 || sp == len(line)-1 {
		return "", "", false
	}
	st := TxnState(line[:sp])
	switch st {
	case TxnSubmit, TxnDone, TxnFail, TxnLocal:
		return st, line[sp+1:], true
	}
	return "", "", false
}
