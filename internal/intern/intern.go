// Package intern maps strings to dense int32 ids. Identity-heavy hot
// paths (category names, worker ids, shared-file names, pod labels)
// pay a string hash on every map operation and keep a pointer-bearing
// map bucket per entry; interning pays the hash once at the API
// boundary and turns every subsequent lookup into a slice index. Ids
// are handed out contiguously from zero, so a Table's ids directly
// index parallel arrays sized by Len.
package intern

// None is the conventional "no id" sentinel. The Table itself never
// returns it; callers use it for absent/optional ids.
const None int32 = -1

// Table interns strings into dense ids: the i-th distinct string
// interned gets id i. The zero Table is ready to use. A Table is not
// safe for concurrent use.
type Table struct {
	ids  map[string]int32
	strs []string
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{} }

// Intern returns the id for s, assigning the next dense id on first
// sight.
func (t *Table) Intern(s string) int32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[string]int32)
	}
	id := int32(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Lookup returns the id for s without assigning one, and whether s
// has been interned.
func (t *Table) Lookup(s string) (int32, bool) {
	id, ok := t.ids[s]
	return id, ok
}

// Str returns the string for a previously assigned id. It panics on
// an id the table never handed out — looking up a foreign id is a
// bookkeeping bug, not a recoverable condition.
func (t *Table) Str(id int32) string { return t.strs[id] }

// Len returns the number of interned strings — also the exclusive
// upper bound of the assigned ids, so parallel arrays indexed by id
// are sized with it.
func (t *Table) Len() int { return len(t.strs) }

// Reset forgets every interned string, returning the table to its
// zero state. Previously returned ids become invalid.
func (t *Table) Reset() {
	t.ids = nil
	t.strs = nil
}
