package intern

import (
	"fmt"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	tb := NewTable()
	words := []string{"", "a", "b", "cat/worker-0", "a b", "\x00", "日本語"}
	ids := make([]int32, len(words))
	for i, w := range words {
		ids[i] = tb.Intern(w)
		if ids[i] != int32(i) {
			t.Fatalf("Intern(%q) = %d, want dense id %d", w, ids[i], i)
		}
	}
	if tb.Len() != len(words) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(words))
	}
	for i, w := range words {
		if got := tb.Str(ids[i]); got != w {
			t.Fatalf("Str(%d) = %q, want %q", ids[i], got, w)
		}
		if again := tb.Intern(w); again != ids[i] {
			t.Fatalf("re-Intern(%q) = %d, want stable id %d", w, again, ids[i])
		}
		if id, ok := tb.Lookup(w); !ok || id != ids[i] {
			t.Fatalf("Lookup(%q) = %d,%v, want %d,true", w, id, ok, ids[i])
		}
	}
	if _, ok := tb.Lookup("never-interned"); ok {
		t.Fatal("Lookup of un-interned string reported ok")
	}
}

func TestInternUniqueness(t *testing.T) {
	tb := NewTable()
	seen := make(map[int32]string)
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("w-%d", i)
		id := tb.Intern(s)
		if prev, dup := seen[id]; dup {
			t.Fatalf("id %d assigned to both %q and %q", id, prev, s)
		}
		seen[id] = s
	}
	if tb.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tb.Len())
	}
}

func TestInternReset(t *testing.T) {
	tb := NewTable()
	tb.Intern("x")
	tb.Intern("y")
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", tb.Len())
	}
	if id := tb.Intern("y"); id != 0 {
		t.Fatalf("first Intern after Reset = %d, want 0", id)
	}
}

func TestZeroTableReady(t *testing.T) {
	var tb Table
	if id := tb.Intern("zero"); id != 0 {
		t.Fatalf("zero Table Intern = %d, want 0", id)
	}
}

// TestInternSteadyStateZeroAlloc pins that re-interning known strings
// allocates nothing: hot paths intern per event and must not produce
// steady-state garbage.
func TestInternSteadyStateZeroAlloc(t *testing.T) {
	tb := NewTable()
	words := []string{"alpha", "beta", "gamma"}
	for _, w := range words {
		tb.Intern(w)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, w := range words {
			if tb.Intern(w) < 0 {
				t.Fatal("bad id")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Intern allocates %v per run, want 0", allocs)
	}
}

// FuzzInterner drives a Table from a byte script and checks the dense
// invariants hold: ids are 0..Len-1 in first-sight order, Str is the
// exact inverse of Intern, and a shadow map agrees with Lookup.
func FuzzInterner(f *testing.F) {
	f.Add([]byte("a\nb\na\nc"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("worker-1\nworker-2\nworker-1\nshared.db\nworker-2"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tb := NewTable()
		shadow := make(map[string]int32)
		var order []string
		start := 0
		for i := 0; i <= len(data); i++ {
			if i != len(data) && data[i] != '\n' {
				continue
			}
			s := string(data[start:i])
			start = i + 1
			id := tb.Intern(s)
			if want, ok := shadow[s]; ok {
				if id != want {
					t.Fatalf("Intern(%q) = %d, want stable %d", s, id, want)
				}
			} else {
				if int(id) != len(order) {
					t.Fatalf("Intern(%q) = %d, want next dense id %d", s, id, len(order))
				}
				shadow[s] = id
				order = append(order, s)
			}
			if got, ok := tb.Lookup(s); !ok || got != id {
				t.Fatalf("Lookup(%q) = %d,%v, want %d,true", s, got, ok, id)
			}
		}
		if tb.Len() != len(order) {
			t.Fatalf("Len = %d, want %d distinct", tb.Len(), len(order))
		}
		for id, s := range order {
			if got := tb.Str(int32(id)); got != s {
				t.Fatalf("Str(%d) = %q, want %q", id, got, s)
			}
		}
	})
}
