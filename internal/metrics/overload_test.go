package metrics

import (
	"math/rand"
	"testing"
	"time"
)

func TestDurationQuantiles(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	cases := []struct {
		name    string
		samples []time.Duration
		qs      []float64
		want    []time.Duration
	}{
		{
			name:    "empty samples yield zeros",
			samples: nil,
			qs:      []float64{0, 0.5, 1},
			want:    []time.Duration{0, 0, 0},
		},
		{
			name:    "single sample for every quantile",
			samples: []time.Duration{ms(7)},
			qs:      []float64{0, 0.25, 0.99, 1},
			want:    []time.Duration{ms(7), ms(7), ms(7), ms(7)},
		},
		{
			name:    "extremes clamp to min and max",
			samples: []time.Duration{ms(30), ms(10), ms(20)},
			qs:      []float64{-0.5, 0, 1, 1.5},
			want:    []time.Duration{ms(10), ms(10), ms(30), ms(30)},
		},
		{
			name:    "linear interpolation between order statistics",
			samples: []time.Duration{ms(40), ms(10), ms(30), ms(20)},
			qs:      []float64{0.5},
			// pos = 0.5*3 = 1.5 → halfway between 20ms and 30ms.
			want: []time.Duration{ms(25)},
		},
		{
			name:    "results follow argument order, not quantile order",
			samples: []time.Duration{ms(10), ms(20), ms(30), ms(40), ms(50)},
			qs:      []float64{0.99, 0.5, 0},
			want:    []time.Duration{ms(50) - 400*time.Microsecond, ms(30), ms(10)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := DurationQuantiles(tc.samples, tc.qs...)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d results, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("quantile %v: got %v, want %v", tc.qs[i], got[i], tc.want[i])
				}
			}
		})
	}
}

// TestDurationQuantilesMatchesSingle pins the batch API to the
// single-quantile one on random inputs so the two can never drift.
func TestDurationQuantilesMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		samples := make([]time.Duration, 1+rng.Intn(64))
		for i := range samples {
			samples[i] = time.Duration(rng.Intn(1e6)) * time.Microsecond
		}
		qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
		batch := DurationQuantiles(samples, qs...)
		for i, q := range qs {
			if single := DurationQuantile(samples, q); single != batch[i] {
				t.Fatalf("trial %d q=%v: batch %v != single %v", trial, q, batch[i], single)
			}
		}
	}
}

func TestDurationQuantilesLeavesInputUnsorted(t *testing.T) {
	samples := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	DurationQuantiles(samples, 0.5, 0.9)
	want := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	for i := range samples {
		if samples[i] != want[i] {
			t.Fatalf("input mutated: %v", samples)
		}
	}
}
