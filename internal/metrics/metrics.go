// Package metrics provides step time series and the supply/demand
// accounting the paper's evaluation reports: resource in-use (RIU),
// resource shortage (RSH), resource supply (RS), resource waste (RW),
// and their definite integrals over the workload runtime
// (core·seconds of accumulated waste and shortage).
package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Series is a right-continuous step function sampled at
// non-decreasing times: the value set at time t holds until the next
// sample.
type Series struct {
	Name   string
	times  []time.Time
	values []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample. Samples must be added in non-decreasing time
// order; a sample at an existing last timestamp overwrites it.
func (s *Series) Add(t time.Time, v float64) {
	if n := len(s.times); n > 0 {
		last := s.times[n-1]
		if t.Before(last) {
			panic(fmt.Sprintf("metrics: sample at %v before last %v in series %q", t, last, s.Name))
		}
		if t.Equal(last) {
			s.values[n-1] = v
			return
		}
	}
	s.times = append(s.times, t)
	s.values = append(s.values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.times) }

// At returns the i-th sample.
func (s *Series) At(i int) (time.Time, float64) { return s.times[i], s.values[i] }

// Last returns the final value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.values[len(s.values)-1]
}

// Max returns the maximum value, or 0 if empty.
func (s *Series) Max() float64 {
	m := 0.0
	for i, v := range s.values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Mean returns the time-weighted mean over [first, end]. end extends
// the final value; pass the workload end time.
func (s *Series) Mean(end time.Time) float64 {
	if len(s.times) == 0 {
		return 0
	}
	total := end.Sub(s.times[0]).Seconds()
	if total <= 0 {
		return s.values[0]
	}
	return s.IntegralUntil(end) / total
}

// Integral returns the step integral in value·seconds up to the last
// sample (the final value contributes nothing without an end time).
func (s *Series) Integral() float64 {
	if len(s.times) == 0 {
		return 0
	}
	return s.IntegralUntil(s.times[len(s.times)-1])
}

// IntegralUntil integrates the step function from the first sample to
// end, extending the final value to end.
func (s *Series) IntegralUntil(end time.Time) float64 {
	total := 0.0
	for i := range s.times {
		var until time.Time
		if i+1 < len(s.times) {
			until = s.times[i+1]
			if until.After(end) {
				until = end
			}
		} else {
			until = end
		}
		if until.After(s.times[i]) {
			total += s.values[i] * until.Sub(s.times[i]).Seconds()
		}
	}
	return total
}

// ValueAt returns the step-function value at time t (the most recent
// sample at or before t), or 0 before the first sample.
func (s *Series) ValueAt(t time.Time) float64 {
	v := 0.0
	for i := range s.times {
		if s.times[i].After(t) {
			break
		}
		v = s.values[i]
	}
	return v
}

// Downsample returns up to n evenly spaced (elapsed-seconds, value)
// points between the first sample and end, for compact printing.
func (s *Series) Downsample(end time.Time, n int) [][2]float64 {
	if len(s.times) == 0 || n <= 0 {
		return nil
	}
	start := s.times[0]
	span := end.Sub(start)
	if span <= 0 || n == 1 {
		return [][2]float64{{0, s.values[0]}}
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		t := start.Add(time.Duration(float64(span) * float64(i) / float64(n-1)))
		out = append(out, [2]float64{t.Sub(start).Seconds(), s.ValueAt(t)})
	}
	return out
}

// ASCII renders the series as a small horizontal bar chart, one row
// per downsampled point — enough to eyeball the shape of a
// supply/demand curve in terminal output.
func (s *Series) ASCII(end time.Time, rows, width int) string {
	pts := s.Downsample(end, rows)
	if len(pts) == 0 {
		return "(empty)\n"
	}
	maxV := 0.0
	for _, p := range pts {
		if p[1] > maxV {
			maxV = p[1]
		}
	}
	var b strings.Builder
	for _, p := range pts {
		bars := 0
		if maxV > 0 {
			bars = int(math.Round(p[1] / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%7.0fs |%-*s| %.1f\n", p[0], width, strings.Repeat("#", bars), p[1])
	}
	return b.String()
}
