package metrics

import (
	"slices"
	"time"
)

// OverloadCounters aggregates a master's admission-control activity
// over one run: how deep the waiting queue and admission buffer got,
// how much traffic was shed at the hard cap, and how long the master
// spent deflecting submissions. The wq master fills them; the
// experiment harness surfaces them through RunResult.
type OverloadCounters struct {
	// PeakWaiting is the maximum waiting-queue depth observed.
	PeakWaiting int
	// PeakBuffered is the maximum admission-buffer depth observed.
	PeakBuffered int
	// Buffered counts submissions that were parked in the admission
	// buffer instead of entering the queue directly (they are admitted
	// later, in arrival order, as the queue drains).
	Buffered int
	// Shed counts submissions rejected outright at the hard cap
	// (queue at MaxWaiting and buffer full). Shed tasks are recorded
	// with a Rejected outcome and never executed.
	Shed int
	// TimeInOverload is the total duration the master spent deflecting
	// submissions: from the first buffered/shed submission until the
	// buffer drained and the queue dropped back under the cap.
	TimeInOverload time.Duration
}

// Add accumulates o into c (peaks take the max, counters sum).
func (c *OverloadCounters) Add(o OverloadCounters) {
	if o.PeakWaiting > c.PeakWaiting {
		c.PeakWaiting = o.PeakWaiting
	}
	if o.PeakBuffered > c.PeakBuffered {
		c.PeakBuffered = o.PeakBuffered
	}
	c.Buffered += o.Buffered
	c.Shed += o.Shed
	c.TimeInOverload += o.TimeInOverload
}

// DurationQuantile returns the q-quantile (0 ≤ q ≤ 1) of the samples
// by linear interpolation between order statistics, or 0 for an empty
// set. The input slice is not modified. Callers extracting several
// quantiles from the same samples should use DurationQuantiles, which
// copies and sorts only once.
func DurationQuantile(samples []time.Duration, q float64) time.Duration {
	return DurationQuantiles(samples, q)[0]
}

// DurationQuantiles returns the requested quantiles of the samples,
// in the order given, from one shared copy-and-sort of the input. A
// quantile is computed by linear interpolation between order
// statistics; every result is 0 for an empty sample set. The input
// slice is not modified.
func DurationQuantiles(samples []time.Duration, qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	n := len(samples)
	if n == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), samples...)
	slices.Sort(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// quantileSorted reads the q-quantile from an already sorted,
// non-empty sample set.
func quantileSorted(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}
