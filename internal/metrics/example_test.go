package metrics_test

import (
	"fmt"
	"time"

	"hta/internal/metrics"
)

func ExampleSeries_IntegralUntil() {
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	supply := metrics.NewSeries("supply")
	supply.Add(start, 9)                       // 9 cores for 100 s
	supply.Add(start.Add(100*time.Second), 60) // then 60 cores
	coreSeconds := supply.IntegralUntil(start.Add(200 * time.Second))
	fmt.Printf("%.0f core-seconds\n", coreSeconds)
	// Output: 6900 core-seconds
}
