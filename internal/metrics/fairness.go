package metrics

// JainIndex returns Jain's fairness index over the per-tenant
// allocation (or outcome) samples:
//
//	J(x) = (Σx)² / (n · Σx²)
//
// J is 1 when every tenant gets the same amount and approaches 1/n as
// one tenant takes everything. The degenerate cases — no tenants, one
// tenant, all-zero samples — report perfect fairness (1): nothing was
// divided unevenly. Negative samples are treated as zero; fairness is
// defined over non-negative quantities.
func JainIndex(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// ClusterOverload merges per-master admission counters into one
// cluster-level view for runs where many masters share a cluster
// (experiment E-J). It is NOT Add repeated: Add was written for
// sequential runs of the same master, where summing TimeInOverload is
// exact and taking the max of peaks is the true peak. Across masters
// running concurrently the semantics differ:
//
//   - Buffered and Shed sum exactly — each submission is counted by
//     exactly one master.
//   - PeakWaiting and PeakBuffered sum: each master's peak bounds its
//     depth at every instant, so the sum is the tightest available
//     upper bound on cluster-wide simultaneous backlog (the true
//     cluster peak needs per-instant alignment the counters do not
//     retain).
//   - TimeInOverload takes the maximum single-master value: overload
//     windows overlap in wall time, so summing would double-count; the
//     max is a lower bound on the union of the windows.
func ClusterOverload(perMaster []OverloadCounters) OverloadCounters {
	var c OverloadCounters
	for _, o := range perMaster {
		c.PeakWaiting += o.PeakWaiting
		c.PeakBuffered += o.PeakBuffered
		c.Buffered += o.Buffered
		c.Shed += o.Shed
		if o.TimeInOverload > c.TimeInOverload {
			c.TimeInOverload = o.TimeInOverload
		}
	}
	return c
}
