package metrics

import (
	"testing"
	"time"
)

func TestClusterRecovery(t *testing.T) {
	per := []RecoveryCounters{
		{MasterRestarts: 2, RescuedTasks: 5, FencedAttempts: 1, Downtime: 3 * time.Minute},
		{MasterRestarts: 1, RequeuedUnrescued: 4, ReconcileCorrections: 2, Downtime: 7 * time.Minute},
		{OperatorRestarts: 1, RescuedTasks: 2, Downtime: time.Minute},
	}
	got := ClusterRecovery(per)
	want := RecoveryCounters{
		MasterRestarts:       3,
		OperatorRestarts:     1,
		RescuedTasks:         7,
		FencedAttempts:       1,
		RequeuedUnrescued:    4,
		ReconcileCorrections: 2,
		Downtime:             7 * time.Minute,
	}
	if got != want {
		t.Fatalf("ClusterRecovery = %+v, want %+v", got, want)
	}
}

func TestClusterRecoveryEmpty(t *testing.T) {
	if got := ClusterRecovery(nil); got != (RecoveryCounters{}) {
		t.Fatalf("ClusterRecovery(nil) = %+v, want zero", got)
	}
}

// TestClusterRecoveryVsAdd pins the semantic difference that motivated
// the merge: event counts sum either way, but Add sums Downtime (exact
// for sequential restarts of one component) while ClusterRecovery takes
// the per-master maximum (concurrent downtime windows overlap in wall
// time, so the sum double-counts).
func TestClusterRecoveryVsAdd(t *testing.T) {
	a := RecoveryCounters{MasterRestarts: 1, RescuedTasks: 3, Downtime: 4 * time.Minute}
	b := RecoveryCounters{MasterRestarts: 2, RescuedTasks: 1, Downtime: 6 * time.Minute}
	added := a
	added.Add(b)
	merged := ClusterRecovery([]RecoveryCounters{a, b})
	if added.Downtime != 10*time.Minute || merged.Downtime != 6*time.Minute {
		t.Fatalf("Downtime: Add=%v ClusterRecovery=%v, want 10m / 6m", added.Downtime, merged.Downtime)
	}
	if added.MasterRestarts != merged.MasterRestarts || added.RescuedTasks != merged.RescuedTasks {
		t.Fatalf("counts should sum identically: Add=%+v ClusterRecovery=%+v", added, merged)
	}
}
