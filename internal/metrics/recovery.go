package metrics

import "time"

// RecoveryCounters aggregates control-plane crash/recovery activity
// across one run: how often each component restarted and how much
// state the recovery machinery carried across the restarts. The wq
// master fills the task-level counters and Downtime; the experiment
// harness fills the restart and replay counters.
type RecoveryCounters struct {
	// MakeflowRestarts, MasterRestarts and OperatorRestarts count
	// crash/restart cycles delivered to each component.
	MakeflowRestarts int
	MasterRestarts   int
	OperatorRestarts int

	// RescuedTasks counts running tasks re-adopted from reattaching
	// workers after a master restart instead of being rescheduled.
	RescuedTasks int
	// FencedAttempts counts stale in-flight attempts rejected by the
	// generation fence (the task had been superseded while the worker
	// was away).
	FencedAttempts int
	// RequeuedUnrescued counts running tasks whose worker never
	// reattached within the rescue window; they are retried with
	// backoff, without consuming a retry-budget slot.
	RequeuedUnrescued int
	// ReplayedRecords counts transaction-log records applied by
	// makeflow restarts.
	ReplayedRecords int
	// SkippedRules counts DAG rules recovery completed from the journal
	// (work not redone).
	SkippedRules int
	// ReconcileCorrections counts divergences a restarted autoscaler or
	// operator fixed while reconciling its persisted state against the
	// live cluster (adopted pods, re-registered workers, reset drains).
	ReconcileCorrections int

	// Downtime is the total crash-to-restore time the component spent
	// down, accumulated across its restarts (the wq master fills it on
	// Restore).
	Downtime time.Duration
}

// Restarts returns the total restarts across all components.
func (c RecoveryCounters) Restarts() int {
	return c.MakeflowRestarts + c.MasterRestarts + c.OperatorRestarts
}

// Add accumulates o into c.
func (c *RecoveryCounters) Add(o RecoveryCounters) {
	c.MakeflowRestarts += o.MakeflowRestarts
	c.MasterRestarts += o.MasterRestarts
	c.OperatorRestarts += o.OperatorRestarts
	c.RescuedTasks += o.RescuedTasks
	c.FencedAttempts += o.FencedAttempts
	c.RequeuedUnrescued += o.RequeuedUnrescued
	c.ReplayedRecords += o.ReplayedRecords
	c.SkippedRules += o.SkippedRules
	c.ReconcileCorrections += o.ReconcileCorrections
	c.Downtime += o.Downtime
}

// ClusterRecovery merges per-tenant recovery counters into one
// cluster-level view for runs where many masters share a cluster
// (experiment E-K). Like ClusterOverload, it is NOT Add repeated: Add
// was written for sequential restarts of the same component, where
// summing Downtime is exact. Across masters running concurrently the
// event counts still sum exactly — each restart, rescue and fence
// belongs to exactly one master — but downtime windows overlap in
// wall time, so summing would double-count; the maximum single-master
// Downtime is the tightest lower bound on the union of the windows
// the counters can express.
func ClusterRecovery(perMaster []RecoveryCounters) RecoveryCounters {
	var c RecoveryCounters
	for _, o := range perMaster {
		c.MakeflowRestarts += o.MakeflowRestarts
		c.MasterRestarts += o.MasterRestarts
		c.OperatorRestarts += o.OperatorRestarts
		c.RescuedTasks += o.RescuedTasks
		c.FencedAttempts += o.FencedAttempts
		c.RequeuedUnrescued += o.RequeuedUnrescued
		c.ReplayedRecords += o.ReplayedRecords
		c.SkippedRules += o.SkippedRules
		c.ReconcileCorrections += o.ReconcileCorrections
		if o.Downtime > c.Downtime {
			c.Downtime = o.Downtime
		}
	}
	return c
}
