package metrics

// RecoveryCounters aggregates control-plane crash/recovery activity
// across one run: how often each component restarted and how much
// state the recovery machinery carried across the restarts. The wq
// master fills the task-level counters; the experiment harness fills
// the restart and replay counters.
type RecoveryCounters struct {
	// MakeflowRestarts, MasterRestarts and OperatorRestarts count
	// crash/restart cycles delivered to each component.
	MakeflowRestarts int
	MasterRestarts   int
	OperatorRestarts int

	// RescuedTasks counts running tasks re-adopted from reattaching
	// workers after a master restart instead of being rescheduled.
	RescuedTasks int
	// FencedAttempts counts stale in-flight attempts rejected by the
	// generation fence (the task had been superseded while the worker
	// was away).
	FencedAttempts int
	// RequeuedUnrescued counts running tasks whose worker never
	// reattached within the rescue window; they are retried with
	// backoff, without consuming a retry-budget slot.
	RequeuedUnrescued int
	// ReplayedRecords counts transaction-log records applied by
	// makeflow restarts.
	ReplayedRecords int
	// SkippedRules counts DAG rules recovery completed from the journal
	// (work not redone).
	SkippedRules int
	// ReconcileCorrections counts divergences a restarted autoscaler or
	// operator fixed while reconciling its persisted state against the
	// live cluster (adopted pods, re-registered workers, reset drains).
	ReconcileCorrections int
}

// Restarts returns the total restarts across all components.
func (c RecoveryCounters) Restarts() int {
	return c.MakeflowRestarts + c.MasterRestarts + c.OperatorRestarts
}

// Add accumulates o into c.
func (c *RecoveryCounters) Add(o RecoveryCounters) {
	c.MakeflowRestarts += o.MakeflowRestarts
	c.MasterRestarts += o.MasterRestarts
	c.OperatorRestarts += o.OperatorRestarts
	c.RescuedTasks += o.RescuedTasks
	c.FencedAttempts += o.FencedAttempts
	c.RequeuedUnrescued += o.RequeuedUnrescued
	c.ReplayedRecords += o.ReplayedRecords
	c.SkippedRules += o.SkippedRules
	c.ReconcileCorrections += o.ReconcileCorrections
}
