package metrics

import "time"

// Account tracks the four quantities of the paper's resource
// relationship (Fig. 5) as aligned step series, all in cores:
//
//	RS  (supply)   — cores provided by connected workers
//	RIU (in-use)   — cores allocated to running tasks
//	RSH (shortage) — cores desired by waiting tasks
//	RW  (waste)    — supply minus in-use
type Account struct {
	Supply   *Series
	InUse    *Series
	Shortage *Series
	Waste    *Series
}

// NewAccount returns an empty account.
func NewAccount() *Account {
	return &Account{
		Supply:   NewSeries("RS"),
		InUse:    NewSeries("RIU"),
		Shortage: NewSeries("RSH"),
		Waste:    NewSeries("RW"),
	}
}

// Sample records one observation; waste is derived as
// max(0, supply−inUse).
func (a *Account) Sample(t time.Time, supply, inUse, shortage float64) {
	a.Supply.Add(t, supply)
	a.InUse.Add(t, inUse)
	a.Shortage.Add(t, shortage)
	w := supply - inUse
	if w < 0 {
		w = 0
	}
	a.Waste.Add(t, w)
}

// AccumulatedWaste integrates RW over the run, in core·seconds.
func (a *Account) AccumulatedWaste(end time.Time) float64 {
	return a.Waste.IntegralUntil(end)
}

// AccumulatedShortage integrates RSH over the run, in core·seconds.
func (a *Account) AccumulatedShortage(end time.Time) float64 {
	return a.Shortage.IntegralUntil(end)
}
