package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"slices"
	"time"
)

// WriteCSV writes the series as two columns — elapsed seconds since
// start and value — one row per sample.
func (s *Series) WriteCSV(w io.Writer, start time.Time) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"elapsed_s", s.Name}); err != nil {
		return err
	}
	for i := range s.times {
		row := []string{
			fmt.Sprintf("%.1f", s.times[i].Sub(start).Seconds()),
			fmt.Sprintf("%g", s.values[i]),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVColumns writes multiple series as aligned columns sampled
// at the union of all their timestamps: elapsed seconds first, then
// one column per series holding its step-function value at that time.
// It is the format the paper-style supply/demand plots (Fig. 10b,
// Fig. 11b) are drawn from.
func WriteCSVColumns(w io.Writer, start time.Time, series ...*Series) error {
	stamps := make(map[time.Time]bool)
	for _, s := range series {
		for _, t := range s.times {
			stamps[t] = true
		}
	}
	times := make([]time.Time, 0, len(stamps))
	for t := range stamps {
		times = append(times, t)
	}
	slices.SortFunc(times, func(a, b time.Time) int { return a.Compare(b) })

	cw := csv.NewWriter(w)
	header := make([]string, 0, len(series)+1)
	header = append(header, "elapsed_s")
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, t := range times {
		row[0] = fmt.Sprintf("%.1f", t.Sub(start).Seconds())
		for i, s := range series {
			row[i+1] = fmt.Sprintf("%g", s.ValueAt(t))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
