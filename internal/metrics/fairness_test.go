package metrics

import (
	"math"
	"testing"
	"time"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 1},
		{"one tenant", []float64{42}, 1},
		{"all zero", []float64{0, 0, 0}, 1},
		{"all equal", []float64{5, 5, 5, 5}, 1},
		{"one takes everything", []float64{10, 0, 0, 0}, 0.25},
		{"two of four served", []float64{7, 7, 0, 0}, 0.5},
		{"mild skew", []float64{4, 6}, (10.0 * 10.0) / (2 * (16.0 + 36.0))},
		{"negative clamped to zero", []float64{5, -5}, 0.5},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: JainIndex(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
}

func TestJainIndexBounds(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100, 0.5, 7}
	j := JainIndex(xs)
	if j <= 1.0/float64(len(xs)) || j > 1 {
		t.Fatalf("JainIndex out of (1/n, 1] range: %v", j)
	}
}

func TestClusterOverload(t *testing.T) {
	per := []OverloadCounters{
		{PeakWaiting: 10, PeakBuffered: 3, Buffered: 7, Shed: 2, TimeInOverload: 40 * time.Second},
		{PeakWaiting: 5, PeakBuffered: 9, Buffered: 1, Shed: 0, TimeInOverload: 90 * time.Second},
		{}, // a master that never overloaded
	}
	got := ClusterOverload(per)
	want := OverloadCounters{
		PeakWaiting:    15, // sums: per-master peaks bound concurrent depth
		PeakBuffered:   12,
		Buffered:       8, // exact sums
		Shed:           2,
		TimeInOverload: 90 * time.Second, // max: windows overlap in wall time
	}
	if got != want {
		t.Fatalf("ClusterOverload = %+v, want %+v", got, want)
	}
}

func TestClusterOverloadEmpty(t *testing.T) {
	if got := ClusterOverload(nil); got != (OverloadCounters{}) {
		t.Fatalf("ClusterOverload(nil) = %+v, want zero", got)
	}
}

// TestClusterOverloadVsAdd pins the semantic difference that motivated
// the helper: Add sums TimeInOverload (double-counting overlapped wall
// time across concurrent masters) and maxes peaks (understating the
// cluster-wide backlog bound).
func TestClusterOverloadVsAdd(t *testing.T) {
	a := OverloadCounters{PeakWaiting: 10, TimeInOverload: time.Minute}
	b := OverloadCounters{PeakWaiting: 10, TimeInOverload: time.Minute}
	var added OverloadCounters
	added.Add(a)
	added.Add(b)
	merged := ClusterOverload([]OverloadCounters{a, b})
	if added.TimeInOverload != 2*time.Minute || merged.TimeInOverload != time.Minute {
		t.Fatalf("TimeInOverload: Add=%v ClusterOverload=%v", added.TimeInOverload, merged.TimeInOverload)
	}
	if added.PeakWaiting != 10 || merged.PeakWaiting != 20 {
		t.Fatalf("PeakWaiting: Add=%d ClusterOverload=%d", added.PeakWaiting, merged.PeakWaiting)
	}
}
