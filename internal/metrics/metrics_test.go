package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func at(s float64) time.Time { return t0.Add(time.Duration(s * float64(time.Second))) }

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("x")
	if s.Len() != 0 || s.Last() != 0 || s.Max() != 0 {
		t.Error("empty series accessors")
	}
	s.Add(at(0), 3)
	s.Add(at(10), 5)
	s.Add(at(20), 1)
	if s.Len() != 3 || s.Last() != 1 || s.Max() != 5 {
		t.Errorf("Len=%d Last=%v Max=%v", s.Len(), s.Last(), s.Max())
	}
	tm, v := s.At(1)
	if !tm.Equal(at(10)) || v != 5 {
		t.Errorf("At(1) = %v %v", tm, v)
	}
}

func TestAddSameTimestampOverwrites(t *testing.T) {
	s := NewSeries("x")
	s.Add(at(0), 1)
	s.Add(at(0), 2)
	if s.Len() != 1 || s.Last() != 2 {
		t.Errorf("Len=%d Last=%v", s.Len(), s.Last())
	}
}

func TestAddBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewSeries("x")
	s.Add(at(10), 1)
	s.Add(at(5), 2)
}

func TestIntegral(t *testing.T) {
	s := NewSeries("x")
	s.Add(at(0), 3)  // 3 for 10 s = 30
	s.Add(at(10), 5) // 5 for 10 s = 50
	s.Add(at(20), 0)
	if got := s.Integral(); !almost(got, 80) {
		t.Errorf("Integral = %v, want 80", got)
	}
	if got := s.IntegralUntil(at(30)); !almost(got, 80) {
		t.Errorf("IntegralUntil(30) = %v (final value 0)", got)
	}
	if got := s.IntegralUntil(at(15)); !almost(got, 55) {
		t.Errorf("IntegralUntil(15) = %v, want 55", got)
	}
	if got := s.IntegralUntil(at(5)); !almost(got, 15) {
		t.Errorf("IntegralUntil(5) = %v, want 15", got)
	}
}

func TestValueAt(t *testing.T) {
	s := NewSeries("x")
	s.Add(at(10), 2)
	s.Add(at(20), 7)
	cases := []struct {
		t    float64
		want float64
	}{{5, 0}, {10, 2}, {15, 2}, {20, 7}, {100, 7}}
	for _, c := range cases {
		if got := s.ValueAt(at(c.t)); got != c.want {
			t.Errorf("ValueAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestMean(t *testing.T) {
	s := NewSeries("x")
	s.Add(at(0), 4)
	s.Add(at(10), 0)
	if got := s.Mean(at(20)); !almost(got, 2) {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := s.Mean(at(0)); got != 4 {
		t.Errorf("zero-span Mean = %v", got)
	}
	if got := NewSeries("e").Mean(at(10)); got != 0 {
		t.Errorf("empty Mean = %v", got)
	}
}

func TestDownsample(t *testing.T) {
	s := NewSeries("x")
	s.Add(at(0), 1)
	s.Add(at(50), 9)
	pts := s.Downsample(at(100), 5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0] != [2]float64{0, 1} {
		t.Errorf("first = %v", pts[0])
	}
	if pts[4] != [2]float64{100, 9} {
		t.Errorf("last = %v", pts[4])
	}
	if pts[2] != [2]float64{50, 9} {
		t.Errorf("mid = %v", pts[2])
	}
	if got := NewSeries("e").Downsample(at(1), 3); got != nil {
		t.Errorf("empty downsample = %v", got)
	}
}

func TestASCII(t *testing.T) {
	s := NewSeries("x")
	s.Add(at(0), 10)
	s.Add(at(50), 5)
	out := s.ASCII(at(100), 3, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 20)) {
		t.Errorf("max row not full width: %q", lines[0])
	}
	if out := NewSeries("e").ASCII(at(1), 3, 10); !strings.Contains(out, "empty") {
		t.Errorf("empty ASCII = %q", out)
	}
}

func TestAccount(t *testing.T) {
	a := NewAccount()
	// supply 9, in-use 3, shortage 6 for 100 s, then balanced.
	a.Sample(at(0), 9, 3, 6)
	a.Sample(at(100), 9, 9, 0)
	end := at(200)
	if got := a.AccumulatedWaste(end); !almost(got, 600) {
		t.Errorf("waste = %v, want 600", got)
	}
	if got := a.AccumulatedShortage(end); !almost(got, 600) {
		t.Errorf("shortage = %v, want 600", got)
	}
	if got := a.Waste.Last(); got != 0 {
		t.Errorf("final waste = %v", got)
	}
}

func TestAccountWasteClampedNonNegative(t *testing.T) {
	a := NewAccount()
	a.Sample(at(0), 3, 5, 0) // oversubscribed: in-use > supply
	if got := a.Waste.Last(); got != 0 {
		t.Errorf("waste = %v, want clamp to 0", got)
	}
}

// Property: for any positive step series, IntegralUntil is monotone
// in the end time and equals the sum of rectangle areas.
func TestPropertyIntegralMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		s := NewSeries("p")
		for i, v := range vals {
			s.Add(at(float64(i*10)), float64(v))
		}
		prev := 0.0
		for e := 0.0; e <= float64(len(vals)*10); e += 7 {
			cur := s.IntegralUntil(at(e))
			if cur+1e-9 < prev {
				return false
			}
			prev = cur
		}
		// Exact value at the final grid point.
		want := 0.0
		for i := 0; i+1 < len(vals); i++ {
			want += float64(vals[i]) * 10
		}
		if len(vals) > 0 {
			got := s.IntegralUntil(at(float64((len(vals) - 1) * 10)))
			if !almost(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewSeries("supply")
	s.Add(at(0), 9)
	s.Add(at(10), 60)
	var b strings.Builder
	if err := s.WriteCSV(&b, t0); err != nil {
		t.Fatal(err)
	}
	want := "elapsed_s,supply\n0.0,9\n10.0,60\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestWriteCSVColumns(t *testing.T) {
	a := NewSeries("supply")
	a.Add(at(0), 9)
	a.Add(at(10), 60)
	b := NewSeries("in_use")
	b.Add(at(5), 3)
	var out strings.Builder
	if err := WriteCSVColumns(&out, t0, a, b); err != nil {
		t.Fatal(err)
	}
	want := "elapsed_s,supply,in_use\n0.0,9,0\n5.0,9,3\n10.0,60,3\n"
	if out.String() != want {
		t.Errorf("csv = %q, want %q", out.String(), want)
	}
}
