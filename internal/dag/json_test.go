package dag

import (
	"strings"
	"testing"
	"time"

	"hta/internal/resources"
)

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	var b strings.Builder
	if err := g.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), g.Len())
	}
	for _, id := range g.IDs() {
		orig, _ := g.Node(id)
		got, ok := back.Node(id)
		if !ok {
			t.Fatalf("node %q missing", id)
		}
		if got.EstimatedDuration != orig.EstimatedDuration {
			t.Errorf("%s estimate = %v, want %v", id, got.EstimatedDuration, orig.EstimatedDuration)
		}
		if len(got.Inputs) != len(orig.Inputs) || len(got.Outputs) != len(orig.Outputs) {
			t.Errorf("%s files differ", id)
		}
	}
	// Edges re-derived.
	if deps := back.Dependencies("d"); len(deps) != 2 {
		t.Errorf("deps(d) = %v", deps)
	}
	// Runtime state starts fresh.
	if got := back.Ready(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Ready = %v", got)
	}
}

func TestJSONResourcesAndLocal(t *testing.T) {
	g := NewGraph()
	g.Add(Node{
		ID:        "x",
		Command:   "do thing",
		Category:  "cat",
		Resources: resources.New(2, 4096, 100),
		Local:     true,
	})
	g.Finalize()
	var b strings.Builder
	g.WriteJSON(&b)
	back, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	n, _ := back.Node("x")
	if n.Resources != resources.New(2, 4096, 100) {
		t.Errorf("resources = %v", n.Resources)
	}
	if !n.Local || n.Command != "do thing" || n.Category != "cat" {
		t.Errorf("node = %+v", n)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"garbage", "{"},
		{"unknown field", `{"nodes":[{"id":"a","bogus":1}]}`},
		{"duplicate id", `{"nodes":[{"id":"a"},{"id":"a"}]}`},
		{"cycle", `{"nodes":[{"id":"a","inputs":["b.out"],"outputs":["a.out"]},{"id":"b","inputs":["a.out"],"outputs":["b.out"]}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(c.src)); err == nil {
				t.Errorf("ReadJSON(%q) should fail", c.src)
			}
		})
	}
}

func TestJSONFractionalEstimate(t *testing.T) {
	g := NewGraph()
	g.Add(Node{ID: "x", EstimatedDuration: 1500 * time.Millisecond})
	g.Finalize()
	var b strings.Builder
	g.WriteJSON(&b)
	back, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	n, _ := back.Node("x")
	if n.EstimatedDuration != 1500*time.Millisecond {
		t.Errorf("estimate = %v", n.EstimatedDuration)
	}
}
