package dag

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"hta/internal/resources"
)

// diamond builds a 4-node diamond: a -> (b, c) -> d.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	add := func(n Node) {
		if err := g.Add(n); err != nil {
			t.Fatalf("Add(%s): %v", n.ID, err)
		}
	}
	add(Node{ID: "a", Outputs: []string{"a.out"}, EstimatedDuration: time.Second})
	add(Node{ID: "b", Inputs: []string{"a.out"}, Outputs: []string{"b.out"}, EstimatedDuration: 2 * time.Second})
	add(Node{ID: "c", Inputs: []string{"a.out"}, Outputs: []string{"c.out"}, EstimatedDuration: 5 * time.Second})
	add(Node{ID: "d", Inputs: []string{"b.out", "c.out"}, Outputs: []string{"d.out"}, EstimatedDuration: time.Second})
	if err := g.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g
}

func TestDiamondStructure(t *testing.T) {
	g := diamond(t)
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	if deps := g.Dependencies("d"); len(deps) != 2 {
		t.Errorf("deps(d) = %v", deps)
	}
	if deps := g.Dependencies("a"); len(deps) != 0 {
		t.Errorf("deps(a) = %v", deps)
	}
	if dd := g.Dependents("a"); len(dd) != 2 {
		t.Errorf("dependents(a) = %v", dd)
	}
}

func TestReadyProgression(t *testing.T) {
	g := diamond(t)
	if got := g.Ready(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("initial Ready = %v", got)
	}
	if err := g.Start("a"); err != nil {
		t.Fatal(err)
	}
	if got := g.Ready(); got != nil {
		t.Fatalf("Ready while a running = %v", got)
	}
	newly, err := g.Complete("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(newly, []string{"b", "c"}) {
		t.Fatalf("newly ready = %v", newly)
	}
	for _, id := range []string{"b", "c"} {
		if err := g.Start(id); err != nil {
			t.Fatal(err)
		}
	}
	if newly, _ := g.Complete("b"); newly != nil {
		t.Fatalf("d ready too early: %v", newly)
	}
	newly, _ = g.Complete("c")
	if !reflect.DeepEqual(newly, []string{"d"}) {
		t.Fatalf("after c, newly = %v", newly)
	}
	if g.Done() {
		t.Fatal("Done before d")
	}
	g.Start("d")
	g.Complete("d")
	if !g.Done() {
		t.Fatal("not Done after all complete")
	}
	if g.Completed() != 4 {
		t.Fatalf("Completed = %d", g.Completed())
	}
}

func TestInvalidTransitions(t *testing.T) {
	g := diamond(t)
	if err := g.Start("d"); err == nil {
		t.Error("Start of pending node should fail")
	}
	if _, err := g.Complete("a"); err == nil {
		t.Error("Complete of ready node should fail")
	}
	if err := g.Start("nope"); err == nil {
		t.Error("Start of unknown node should fail")
	}
	g.Start("a")
	if err := g.Start("a"); err == nil {
		t.Error("double Start should fail")
	}
}

func TestFailRetry(t *testing.T) {
	g := diamond(t)
	g.Start("a")
	if err := g.Fail("a"); err != nil {
		t.Fatal(err)
	}
	if g.State("a") != Failed {
		t.Fatalf("state = %v", g.State("a"))
	}
	if err := g.Retry("a"); err != nil {
		t.Fatal(err)
	}
	if g.State("a") != Ready {
		t.Fatalf("state after retry = %v", g.State("a"))
	}
	g.Start("a")
	if g.Attempts("a") != 2 {
		t.Fatalf("attempts = %d", g.Attempts("a"))
	}
	if _, err := g.Complete("a"); err != nil {
		t.Fatal(err)
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewGraph()
	g.Add(Node{ID: "x", Inputs: []string{"y.out"}, Outputs: []string{"x.out"}})
	g.Add(Node{ID: "y", Inputs: []string{"x.out"}, Outputs: []string{"y.out"}})
	err := g.Finalize()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Finalize err = %v, want cycle error", err)
	}
}

func TestSelfInputIgnored(t *testing.T) {
	// A node both reading and writing the same file must not
	// create a self-edge.
	g := NewGraph()
	g.Add(Node{ID: "x", Inputs: []string{"x.out"}, Outputs: []string{"x.out"}})
	if err := g.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if len(g.Dependencies("x")) != 0 {
		t.Errorf("self-dependency created: %v", g.Dependencies("x"))
	}
}

func TestAddErrors(t *testing.T) {
	g := NewGraph()
	if err := g.Add(Node{ID: ""}); err == nil {
		t.Error("empty ID should fail")
	}
	g.Add(Node{ID: "a", Outputs: []string{"f"}})
	if err := g.Add(Node{ID: "a"}); err == nil {
		t.Error("duplicate ID should fail")
	}
	if err := g.Add(Node{ID: "b", Outputs: []string{"f"}}); err == nil {
		t.Error("duplicate output producer should fail")
	}
	g.Finalize()
	if err := g.Add(Node{ID: "c"}); err == nil {
		t.Error("Add after Finalize should fail")
	}
	if err := g.Finalize(); err == nil {
		t.Error("double Finalize should fail")
	}
}

func TestSourceFiles(t *testing.T) {
	g := NewGraph()
	g.Add(Node{ID: "a", Inputs: []string{"genome.db", "query.1"}, Outputs: []string{"out.1"}})
	g.Add(Node{ID: "b", Inputs: []string{"genome.db", "out.1"}, Outputs: []string{"out.2"}})
	g.Finalize()
	want := []string{"genome.db", "query.1"}
	if got := g.SourceFiles(); !reflect.DeepEqual(got, want) {
		t.Errorf("SourceFiles = %v, want %v", got, want)
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	g := diamond(t)
	order := g.TopoOrder()
	pos := make(map[string]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, id := range g.IDs() {
		for _, dep := range g.Dependencies(id) {
			if pos[dep] >= pos[id] {
				t.Errorf("dep %q after %q in topo order %v", dep, id, order)
			}
		}
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	levels := g.Levels()
	if len(levels) != 3 {
		t.Fatalf("levels = %v", levels)
	}
	if !reflect.DeepEqual(levels[0], []string{"a"}) ||
		!reflect.DeepEqual(levels[1], []string{"b", "c"}) ||
		!reflect.DeepEqual(levels[2], []string{"d"}) {
		t.Errorf("levels = %v", levels)
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamond(t)
	path, d := g.CriticalPath()
	if !reflect.DeepEqual(path, []string{"a", "c", "d"}) {
		t.Errorf("critical path = %v", path)
	}
	if d != 7*time.Second {
		t.Errorf("critical duration = %v, want 7s", d)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	g := NewGraph()
	g.Finalize()
	if path, d := g.CriticalPath(); path != nil || d != 0 {
		t.Errorf("empty graph critical path = %v, %v", path, d)
	}
}

func TestCategories(t *testing.T) {
	g := NewGraph()
	g.Add(Node{ID: "s1", Category: "split"})
	g.Add(Node{ID: "a1", Category: "align"})
	g.Add(Node{ID: "a2", Category: "align"})
	g.Finalize()
	if got := g.CategoryCounts(); got["align"] != 2 || got["split"] != 1 {
		t.Errorf("CategoryCounts = %v", got)
	}
	if got := g.Categories(); !reflect.DeepEqual(got, []string{"split", "align"}) {
		t.Errorf("Categories = %v", got)
	}
}

func TestReset(t *testing.T) {
	g := diamond(t)
	g.Start("a")
	g.Complete("a")
	g.Reset()
	if got := g.Ready(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("Ready after Reset = %v", got)
	}
	if g.Completed() != 0 || g.Attempts("a") != 0 {
		t.Error("Reset did not clear progress")
	}
	// Graph must be runnable again to completion.
	for !g.Done() {
		ready := g.Ready()
		if len(ready) == 0 {
			t.Fatal("stuck after Reset")
		}
		for _, id := range ready {
			g.Start(id)
			g.Complete(id)
		}
	}
}

func TestCounts(t *testing.T) {
	g := diamond(t)
	g.Start("a")
	c := g.Counts()
	if c[Running] != 1 || c[Pending] != 3 {
		t.Errorf("Counts = %v", c)
	}
}

func TestNodeCopySemantics(t *testing.T) {
	g := NewGraph()
	in := []string{"x"}
	n := Node{ID: "a", Inputs: in, Resources: resources.New(1, 2, 3)}
	g.Add(n)
	in[0] = "mutated"
	got, ok := g.Node("a")
	if !ok || got.Inputs[0] != "x" {
		t.Error("Add must copy slices")
	}
	if got.Resources != resources.New(1, 2, 3) {
		t.Errorf("Resources = %v", got.Resources)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Pending: "pending", Ready: "ready", Running: "running",
		Complete: "complete", Failed: "failed", State(99): "state(99)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s, want)
		}
	}
}

// randomLayeredGraph builds a random layered DAG: nodes in layer k
// consume outputs of random nodes in layer k-1.
func randomLayeredGraph(r *rand.Rand, layers, width int) *Graph {
	g := NewGraph()
	for l := 0; l < layers; l++ {
		n := 1 + r.Intn(width)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("n%d_%d", l, i)
			node := Node{ID: id, Outputs: []string{id + ".out"}, Category: fmt.Sprintf("stage%d", l)}
			if l > 0 {
				// Depend on 1..3 nodes of the previous layer.
				prevWidth := 0
				for {
					if _, ok := g.nodes[fmt.Sprintf("n%d_%d", l-1, prevWidth)]; !ok {
						break
					}
					prevWidth++
				}
				k := 1 + r.Intn(3)
				for j := 0; j < k; j++ {
					dep := fmt.Sprintf("n%d_%d.out", l-1, r.Intn(prevWidth))
					node.Inputs = append(node.Inputs, dep)
				}
			}
			g.Add(node)
		}
	}
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	return g
}

// Property: executing any random layered DAG by repeatedly draining
// the ready frontier always terminates with all nodes complete, and
// no node ever starts before its dependencies completed.
func TestPropertyExecutionTerminates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredGraph(r, 2+r.Intn(4), 6)
		completed := make(map[string]bool)
		steps := 0
		for !g.Done() {
			ready := g.Ready()
			if len(ready) == 0 {
				return false // deadlock
			}
			for _, id := range ready {
				for _, dep := range g.Dependencies(id) {
					if !completed[dep] {
						return false
					}
				}
				if err := g.Start(id); err != nil {
					return false
				}
				if _, err := g.Complete(id); err != nil {
					return false
				}
				completed[id] = true
			}
			steps++
			if steps > g.Len()+1 {
				return false
			}
		}
		return g.Completed() == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: TopoOrder is a permutation of IDs respecting dependencies.
func TestPropertyTopoOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredGraph(r, 2+r.Intn(4), 5)
		order := g.TopoOrder()
		if len(order) != g.Len() {
			return false
		}
		pos := make(map[string]int, len(order))
		for i, id := range order {
			if _, dup := pos[id]; dup {
				return false
			}
			pos[id] = i
		}
		for _, id := range g.IDs() {
			for _, dep := range g.Dependencies(id) {
				if pos[dep] >= pos[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
