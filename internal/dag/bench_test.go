package dag

import (
	"fmt"
	"testing"
)

func buildWide(n int) *Graph {
	g := NewGraph()
	g.Add(Node{ID: "root", Outputs: []string{"root.out"}})
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i)
		g.Add(Node{ID: id, Inputs: []string{"root.out"}, Outputs: []string{id + ".out"}})
	}
	g.Add(Node{ID: "sink", Inputs: inputsOf(n)})
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	return g
}

func inputsOf(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("n%d.out", i)
	}
	return out
}

// BenchmarkFinalize measures dependency resolution + cycle detection
// on a 10k-node fan.
func BenchmarkFinalize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		g.Add(Node{ID: "root", Outputs: []string{"root.out"}})
		for j := 0; j < 10000; j++ {
			id := fmt.Sprintf("n%d", j)
			g.Add(Node{ID: id, Inputs: []string{"root.out"}, Outputs: []string{id + ".out"}})
		}
		if err := g.Finalize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteGraph measures the ready/start/complete state
// machine over a 10k-node fan.
func BenchmarkExecuteGraph(b *testing.B) {
	g := buildWide(10000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Reset()
		for !g.Done() {
			for _, id := range g.Ready() {
				g.Start(id)
				g.Complete(id)
			}
		}
	}
}

// BenchmarkTopoOrder measures topological sorting.
func BenchmarkTopoOrder(b *testing.B) {
	g := buildWide(10000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := g.TopoOrder(); len(got) != g.Len() {
			b.Fatal("bad order")
		}
	}
}
