package dag

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonGraph is the serialized form: just the nodes — edges are
// derivable from the file dependencies, so the on-disk format stays
// stable and human-editable.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
}

type jsonNode struct {
	ID        string   `json:"id"`
	Command   string   `json:"command,omitempty"`
	Category  string   `json:"category,omitempty"`
	Inputs    []string `json:"inputs,omitempty"`
	Outputs   []string `json:"outputs,omitempty"`
	CoresM    int64    `json:"cores_milli,omitempty"`
	MemoryMB  int64    `json:"memory_mb,omitempty"`
	DiskMB    int64    `json:"disk_mb,omitempty"`
	EstimateS float64  `json:"estimate_s,omitempty"`
	Local     bool     `json:"local,omitempty"`
}

// WriteJSON serializes the graph's nodes (in insertion order). The
// runtime state is not serialized; a reloaded graph starts fresh.
func (g *Graph) WriteJSON(w io.Writer) error {
	out := jsonGraph{Nodes: make([]jsonNode, 0, len(g.order))}
	for _, id := range g.order {
		n := g.nodes[id]
		out.Nodes = append(out.Nodes, jsonNode{
			ID:        n.ID,
			Command:   n.Command,
			Category:  n.Category,
			Inputs:    n.Inputs,
			Outputs:   n.Outputs,
			CoresM:    n.Resources.MilliCPU,
			MemoryMB:  n.Resources.MemoryMB,
			DiskMB:    n.Resources.DiskMB,
			EstimateS: n.EstimatedDuration.Seconds(),
			Local:     n.Local,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a graph written by WriteJSON and finalizes
// it, re-deriving the dependency edges from the file lists.
func ReadJSON(r io.Reader) (*Graph, error) {
	var in jsonGraph
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("dag: decode: %w", err)
	}
	g := NewGraph()
	for _, jn := range in.Nodes {
		n := Node{
			ID:                jn.ID,
			Command:           jn.Command,
			Category:          jn.Category,
			Inputs:            jn.Inputs,
			Outputs:           jn.Outputs,
			EstimatedDuration: time.Duration(jn.EstimateS * float64(time.Second)),
			Local:             jn.Local,
		}
		n.Resources.MilliCPU = jn.CoresM
		n.Resources.MemoryMB = jn.MemoryMB
		n.Resources.DiskMB = jn.DiskMB
		if err := g.Add(n); err != nil {
			return nil, err
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}
