// Package dag models a high-throughput workload as a directed acyclic
// graph of tasks connected by file dependencies, the representation a
// workflow manager such as Makeflow builds from a workload
// description. The graph tracks runtime state (pending → ready →
// running → complete) and surfaces the ready frontier that the
// workflow manager dispatches to the job scheduler.
package dag

import (
	"fmt"
	"slices"
	"time"

	"hta/internal/resources"
)

// Node is one task of the workflow.
type Node struct {
	ID       string
	Command  string
	Category string // stage tag; tasks of a category are copies of the same program
	Inputs   []string
	Outputs  []string
	// Resources is the declared requirement; the zero vector means
	// "unknown", which makes schedulers fall back to conservative
	// one-task-per-worker placement (paper §III-A).
	Resources resources.Vector
	// EstimatedDuration, when non-zero, is used for critical-path
	// analysis and by simulated executors.
	EstimatedDuration time.Duration
	// Local marks a rule to run at the workflow manager itself
	// rather than on a remote worker (Makeflow's LOCAL prefix).
	Local bool
}

// State is the runtime state of a node.
type State int

// Node states, in normal order of progression.
const (
	Pending  State = iota // waiting on dependencies
	Ready                 // all dependencies complete, not yet dispatched
	Running               // dispatched to the scheduler
	Complete              // finished successfully
	Failed                // finished unsuccessfully; may be retried
)

// String returns the lower-case state name.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Complete:
		return "complete"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Graph is a workflow DAG. Build it with Add calls followed by
// Finalize; after Finalize the runtime methods (Ready, Start,
// Complete, Fail) drive execution state.
type Graph struct {
	nodes      map[string]*Node
	order      []string // insertion order, for deterministic iteration
	producer   map[string]string
	deps       map[string][]string // node -> dependency node IDs
	dependents map[string][]string
	state      map[string]State
	attempts   map[string]int
	remaining  map[string]int // unfinished dependency count
	nComplete  int
	finalized  bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes:      make(map[string]*Node),
		producer:   make(map[string]string),
		deps:       make(map[string][]string),
		dependents: make(map[string][]string),
		state:      make(map[string]State),
		attempts:   make(map[string]int),
		remaining:  make(map[string]int),
	}
}

// Add inserts a node. It fails on duplicate node IDs, on two nodes
// producing the same output file, or after Finalize.
func (g *Graph) Add(n Node) error {
	if g.finalized {
		return fmt.Errorf("dag: Add %q after Finalize", n.ID)
	}
	if n.ID == "" {
		return fmt.Errorf("dag: node with empty ID")
	}
	if _, dup := g.nodes[n.ID]; dup {
		return fmt.Errorf("dag: duplicate node ID %q", n.ID)
	}
	for _, out := range n.Outputs {
		if p, dup := g.producer[out]; dup {
			return fmt.Errorf("dag: output %q produced by both %q and %q", out, p, n.ID)
		}
	}
	cp := n
	cp.Inputs = append([]string(nil), n.Inputs...)
	cp.Outputs = append([]string(nil), n.Outputs...)
	g.nodes[n.ID] = &cp
	g.order = append(g.order, n.ID)
	for _, out := range cp.Outputs {
		g.producer[out] = n.ID
	}
	return nil
}

// Finalize resolves file dependencies into edges, verifies acyclicity
// and initializes runtime state. Inputs with no producer are treated
// as external source files.
func (g *Graph) Finalize() error {
	if g.finalized {
		return fmt.Errorf("dag: Finalize called twice")
	}
	for _, id := range g.order {
		n := g.nodes[id]
		seen := make(map[string]bool)
		for _, in := range n.Inputs {
			p, ok := g.producer[in]
			if !ok || p == id || seen[p] {
				continue
			}
			seen[p] = true
			g.deps[id] = append(g.deps[id], p)
			g.dependents[p] = append(g.dependents[p], id)
		}
	}
	if cycle := g.findCycle(); cycle != nil {
		return fmt.Errorf("dag: dependency cycle: %v", cycle)
	}
	for _, id := range g.order {
		g.remaining[id] = len(g.deps[id])
		if g.remaining[id] == 0 {
			g.state[id] = Ready
		} else {
			g.state[id] = Pending
		}
	}
	g.finalized = true
	return nil
}

func (g *Graph) findCycle() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(g.nodes))
	var stack []string
	var cycle []string
	var visit func(id string) bool
	visit = func(id string) bool {
		color[id] = gray
		stack = append(stack, id)
		for _, d := range g.deps[id] {
			switch color[d] {
			case gray:
				// Found a back edge; extract the cycle from the stack.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == d {
						break
					}
				}
				return true
			case white:
				if visit(d) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[id] = black
		return false
	}
	for _, id := range g.order {
		if color[id] == white && visit(id) {
			return cycle
		}
	}
	return nil
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.order) }

// Node returns a copy of the node with the given ID.
func (g *Graph) Node(id string) (Node, bool) {
	n, ok := g.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// IDs returns all node IDs in insertion order.
func (g *Graph) IDs() []string { return append([]string(nil), g.order...) }

// Dependencies returns the IDs of the nodes that must complete before id.
func (g *Graph) Dependencies(id string) []string {
	return append([]string(nil), g.deps[id]...)
}

// Dependents returns the IDs of the nodes that depend on id.
func (g *Graph) Dependents(id string) []string {
	return append([]string(nil), g.dependents[id]...)
}

// SourceFiles returns input files no node produces, sorted.
func (g *Graph) SourceFiles() []string {
	set := make(map[string]bool)
	for _, id := range g.order {
		for _, in := range g.nodes[id].Inputs {
			if _, ok := g.producer[in]; !ok {
				set[in] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	slices.Sort(out)
	return out
}

// State returns the runtime state of a node.
func (g *Graph) State(id string) State { return g.state[id] }

// Attempts returns how many times the node has been started.
func (g *Graph) Attempts(id string) int { return g.attempts[id] }

// Ready returns the IDs of all nodes currently in the Ready state, in
// insertion order.
func (g *Graph) Ready() []string {
	g.mustFinal("Ready")
	var out []string
	for _, id := range g.order {
		if g.state[id] == Ready {
			out = append(out, id)
		}
	}
	return out
}

// Start transitions a Ready node to Running.
func (g *Graph) Start(id string) error {
	g.mustFinal("Start")
	if err := g.requireState(id, Ready); err != nil {
		return err
	}
	g.state[id] = Running
	g.attempts[id]++
	return nil
}

// Complete marks a Running node complete and returns the IDs of nodes
// that became Ready as a result, in insertion order.
func (g *Graph) Complete(id string) ([]string, error) {
	g.mustFinal("Complete")
	if err := g.requireState(id, Running); err != nil {
		return nil, err
	}
	g.state[id] = Complete
	g.nComplete++
	var newly []string
	for _, dep := range g.dependents[id] {
		g.remaining[dep]--
		if g.remaining[dep] < 0 {
			panic(fmt.Sprintf("dag: dependency count underflow for %q", dep))
		}
		if g.remaining[dep] == 0 && g.state[dep] == Pending {
			g.state[dep] = Ready
			newly = append(newly, dep)
		}
	}
	return newly, nil
}

// Fail marks a Running node Failed.
func (g *Graph) Fail(id string) error {
	g.mustFinal("Fail")
	if err := g.requireState(id, Running); err != nil {
		return err
	}
	g.state[id] = Failed
	return nil
}

// Retry returns a Failed node to Ready so it can be dispatched again.
func (g *Graph) Retry(id string) error {
	g.mustFinal("Retry")
	if err := g.requireState(id, Failed); err != nil {
		return err
	}
	g.state[id] = Ready
	return nil
}

// Done reports whether every node is Complete.
func (g *Graph) Done() bool { return g.nComplete == len(g.order) }

// Completed returns the number of completed nodes.
func (g *Graph) Completed() int { return g.nComplete }

// Counts returns the number of nodes in each state.
func (g *Graph) Counts() map[State]int {
	out := make(map[State]int)
	for _, id := range g.order {
		out[g.state[id]]++
	}
	return out
}

func (g *Graph) requireState(id string, want State) error {
	s, ok := g.state[id]
	if !ok {
		return fmt.Errorf("dag: unknown node %q", id)
	}
	if s != want {
		return fmt.Errorf("dag: node %q is %v, want %v", id, s, want)
	}
	return nil
}

func (g *Graph) mustFinal(op string) {
	if !g.finalized {
		panic("dag: " + op + " before Finalize")
	}
}

// TopoOrder returns node IDs in a dependency-respecting order
// (dependencies before dependents), stable with respect to insertion
// order among independent nodes.
func (g *Graph) TopoOrder() []string {
	g.mustFinal("TopoOrder")
	indeg := make(map[string]int, len(g.nodes))
	for _, id := range g.order {
		indeg[id] = len(g.deps[id])
	}
	var frontier []string
	for _, id := range g.order {
		if indeg[id] == 0 {
			frontier = append(frontier, id)
		}
	}
	out := make([]string, 0, len(g.order))
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		out = append(out, id)
		for _, dep := range g.dependents[id] {
			indeg[dep]--
			if indeg[dep] == 0 {
				frontier = append(frontier, dep)
			}
		}
	}
	return out
}

// Levels partitions nodes by their depth: level 0 has no
// dependencies, level k depends only on levels < k with at least one
// dependency in level k-1. For stage-structured HTC workloads the
// levels correspond to stages.
func (g *Graph) Levels() [][]string {
	g.mustFinal("Levels")
	depth := make(map[string]int, len(g.nodes))
	maxDepth := 0
	for _, id := range g.TopoOrder() {
		d := 0
		for _, dep := range g.deps[id] {
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[id] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]string, maxDepth+1)
	for _, id := range g.order {
		levels[depth[id]] = append(levels[depth[id]], id)
	}
	return levels
}

// CriticalPath returns the longest dependency chain measured by
// EstimatedDuration (nodes with zero estimates count as zero) and its
// total duration.
func (g *Graph) CriticalPath() ([]string, time.Duration) {
	g.mustFinal("CriticalPath")
	dist := make(map[string]time.Duration, len(g.nodes))
	prev := make(map[string]string, len(g.nodes))
	var best string
	var bestDist time.Duration = -1
	for _, id := range g.TopoOrder() {
		d := g.nodes[id].EstimatedDuration
		var through time.Duration
		var from string
		for _, dep := range g.deps[id] {
			if dist[dep] > through || (dist[dep] == through && from == "") {
				through = dist[dep]
				from = dep
			}
		}
		dist[id] = through + d
		prev[id] = from
		if dist[id] > bestDist {
			bestDist = dist[id]
			best = id
		}
	}
	if best == "" {
		return nil, 0
	}
	var path []string
	for id := best; id != ""; id = prev[id] {
		path = append(path, id)
	}
	// Reverse into dependency order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, bestDist
}

// CategoryCounts returns the number of nodes per category.
func (g *Graph) CategoryCounts() map[string]int {
	out := make(map[string]int)
	for _, id := range g.order {
		out[g.nodes[id].Category]++
	}
	return out
}

// Categories returns the distinct categories in first-seen order.
func (g *Graph) Categories() []string {
	seen := make(map[string]bool)
	var out []string
	for _, id := range g.order {
		c := g.nodes[id].Category
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Reset returns every node to its initial runtime state so the same
// graph can be executed again.
func (g *Graph) Reset() {
	g.mustFinal("Reset")
	g.nComplete = 0
	for _, id := range g.order {
		g.remaining[id] = len(g.deps[id])
		g.attempts[id] = 0
		if g.remaining[id] == 0 {
			g.state[id] = Ready
		} else {
			g.state[id] = Pending
		}
	}
}
