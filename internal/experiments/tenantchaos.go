package experiments

// Experiment E-K: multi-tenant fault isolation. The E-J tenant mix
// (BLAST / I/O / stream triplets) runs under the arbiter while
// seeded fault processes attack the tenancy layer itself: Poisson
// kills of per-tenant wq masters, a crash of the arbiter restored
// from its snapshot, and scripted membership churn (tenants joining
// mid-run and being offboarded while holding work). The headline
// claim is blast-radius containment: tenants the chaos never touched
// finish within a tight tolerance of their chaos-free makespans,
// victims recover with per-tenant conservation (submitted =
// completed + quarantined + shed), and an arbiter restart neither
// loses pods nor double-grants capacity. A fixed seed reproduces
// every cell byte for byte.

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hta/internal/arbiter"
	"hta/internal/chaos"
	"hta/internal/kubesim"
	"hta/internal/metrics"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// TenantChaosEKConfig parameterizes E-K; tests shrink the workload.
type TenantChaosEKConfig struct {
	Seed    int64
	Tenants int
	// TotalWorkers is the cluster-wide budget the arbiter divides.
	TotalWorkers int
	Kube         kubesim.Config
	Cycle        time.Duration
	// Per-tenant task counts by workload kind (tenant i gets kind
	// i mod 3), as in E-J.
	BlastTasks, IOTasks, StreamTasks int
	StreamInterval                   time.Duration
	// MasterKills is how many tenant-master kills the kill cells
	// deliver; victims are drawn uniformly from the live tenants.
	MasterKills int
	// ArbiterKills is how many arbiter crash/restore cycles the
	// arbiter cells deliver.
	ArbiterKills int
	// Downtime is how long a killed component stays down.
	Downtime time.Duration
	// RescueWindow is the restored master's reattach grace.
	RescueWindow time.Duration
	// ChurnJoins/ChurnLeaves are the scripted membership events the
	// churn cells deliver; joiners submit JoinerTasks I/O tasks each
	// and leavers are offboarded oldest-joiner-first while their
	// work is still in flight.
	ChurnJoins, ChurnLeaves int
	JoinerTasks             int
	Timeout                 time.Duration
}

// DefaultTenantChaosEKConfig sizes E-K like a small E-J cell with
// every fault process armed.
func DefaultTenantChaosEKConfig(seed int64) TenantChaosEKConfig {
	c := 8
	return TenantChaosEKConfig{
		Seed:         seed,
		Tenants:      15,
		TotalWorkers: c,
		Kube: kubesim.Config{
			InitialNodes:  max(2, c/4),
			MinNodes:      1,
			MaxNodes:      c,
			ProvisionMean: 90 * time.Second,
			Seed:          seed,
		},
		Cycle:          30 * time.Second,
		BlastTasks:     12,
		IOTasks:        16,
		StreamTasks:    10,
		StreamInterval: 45 * time.Second,
		MasterKills:    3,
		ArbiterKills:   1,
		Downtime:       60 * time.Second,
		RescueWindow:   30 * time.Second,
		ChurnJoins:     2,
		ChurnLeaves:    1,
		JoinerTasks:    8,
		Timeout:        12 * time.Hour,
	}
}

// SmokeTenantChaosEKConfig is the compressed variant CI's
// arbiter-recovery job runs.
func SmokeTenantChaosEKConfig(seed int64) TenantChaosEKConfig {
	cfg := DefaultTenantChaosEKConfig(seed)
	cfg.Tenants = 9
	cfg.BlastTasks = 6
	cfg.IOTasks = 8
	cfg.StreamTasks = 4
	cfg.JoinerTasks = 6
	return cfg
}

// TenantChaosEKRow is one chaos cell's outcome.
type TenantChaosEKRow struct {
	Cell string
	// Delivered fault counts (refusals re-arm and do not count).
	MasterKills, ArbiterKills, Joins, Leaves int
	Runtime                                  time.Duration
	// MaxUntouchedDelta is the isolation headline: the worst absolute
	// makespan inflation over resident tenants the chaos never
	// touched, versus the chaos-free baseline. Zero when the
	// untouched tenants got no slower (freed victim capacity
	// water-fills their way).
	MaxUntouchedDelta time.Duration
	// MaxUntouchedDeltaPct is the same worst case relative to each
	// tenant's own baseline makespan — reported for eyeballing, not
	// bounded: a short-makespan tenant turns a one-cycle absolute
	// delay into a huge percentage.
	MaxUntouchedDeltaPct float64
	// IsolationSlack is the blast-radius bound the suite holds
	// MaxUntouchedDelta under: every delivered kill may hold dead
	// capacity for its downtime plus an arbitration cycle, joiner
	// work dilutes the pool by its share, and scheduling granularity
	// adds two cycles plus a node provisioning.
	IsolationSlack time.Duration
	Untouched      int
	Submitted      int
	Completed      int
	Quarantined    int
	Shed           int
	// Recovery merges per-tenant master counters with the
	// cluster-level semantics (counts sum, downtime is the
	// worst single master); the harness folds arbiter restarts into
	// OperatorRestarts and arbiter reconcile fixes into
	// ReconcileCorrections.
	Recovery metrics.RecoveryCounters
	// FencedDrains counts drain callbacks dropped by the arbiter's
	// generation fence across its restarts.
	FencedDrains   int
	TenantsRemoved int
}

// TenantChaosEKReport is experiment E-K.
type TenantChaosEKReport struct {
	Seed     int64
	Tenants  int
	Workers  int
	Baseline time.Duration
	Rows     []TenantChaosEKRow
}

// Isolated reports whether every chaos cell held the blast-radius
// bound: untouched tenants within IsolationSlack of chaos-free.
func (r *TenantChaosEKReport) Isolated() bool {
	for _, row := range r.Rows[1:] {
		if row.MaxUntouchedDelta > row.IsolationSlack {
			return false
		}
	}
	return true
}

// TenantChaosEK runs the full-size experiment.
func TenantChaosEK(seed int64) (*TenantChaosEKReport, error) {
	return TenantChaosEKWith(DefaultTenantChaosEKConfig(seed))
}

// TenantChaosEKWith runs E-K under an explicit configuration: first
// the chaos-free baseline (serial — its runtime calibrates every kill
// schedule and its per-tenant makespans anchor the isolation metric),
// then the four chaos cells concurrently.
func TenantChaosEKWith(cfg TenantChaosEKConfig) (*TenantChaosEKReport, error) {
	loads := buildTenantLoads(TenantsEJConfig{
		Seed: cfg.Seed, Tenants: cfg.Tenants,
		BlastTasks: cfg.BlastTasks, IOTasks: cfg.IOTasks, StreamTasks: cfg.StreamTasks,
		StreamInterval: cfg.StreamInterval,
	})
	joinLoads := buildJoinerLoads(cfg)

	base, baseMk, err := tenantChaosCell(cfg, loads, joinLoads, "baseline", chaos.Plan{}, nil, 0)
	if err != nil {
		return nil, err
	}
	rep := &TenantChaosEKReport{
		Seed: cfg.Seed, Tenants: cfg.Tenants, Workers: cfg.TotalWorkers,
		Baseline: base.Runtime,
		Rows:     []TenantChaosEKRow{base},
	}

	cells := []struct {
		name             string
		mk, ak, churnOut bool
	}{
		{"master-kills", true, false, false},
		{"arbiter-kill", false, true, false},
		{"churn", false, false, true},
		{"full", true, true, true},
	}
	rows := make([]TenantChaosEKRow, len(cells))
	err = Parallel(len(cells), func(i int) error {
		c := cells[i]
		plan := chaos.Plan{Seed: cfg.Seed}
		if c.mk && cfg.MasterKills > 0 {
			plan.Tenant.MasterKills = chaos.ControlPlaneKillPlan{
				MeanInterval: base.Runtime / time.Duration(2*(cfg.MasterKills+1)),
				MaxKills:     cfg.MasterKills,
			}
		}
		if c.ak && cfg.ArbiterKills > 0 {
			plan.ControlPlane.Arbiter = chaos.ControlPlaneKillPlan{
				MeanInterval: base.Runtime / time.Duration(2*(cfg.ArbiterKills+1)),
				MaxKills:     cfg.ArbiterKills,
			}
		}
		var lastChurn time.Duration
		if c.churnOut {
			// Joins in the first part of the expected run, leaves
			// after them, so every leaver exists before its exit.
			segs := time.Duration(cfg.ChurnJoins + cfg.ChurnLeaves + 2)
			for j := 0; j < cfg.ChurnJoins; j++ {
				at := base.Runtime * time.Duration(j+1) / segs
				plan.Tenant.JoinAt = append(plan.Tenant.JoinAt, at)
				lastChurn = max(lastChurn, at)
			}
			for j := 0; j < cfg.ChurnLeaves; j++ {
				at := base.Runtime * time.Duration(cfg.ChurnJoins+j+1) / segs
				plan.Tenant.LeaveAt = append(plan.Tenant.LeaveAt, at)
				lastChurn = max(lastChurn, at)
			}
		}
		var err error
		rows[i], _, err = tenantChaosCell(cfg, loads, joinLoads, c.name, plan, baseMk, lastChurn)
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, rows...)
	return rep, nil
}

// buildJoinerLoads builds every scripted joiner's workload once per
// report, from its own stream so resident loads replay identically
// with or without churn.
func buildJoinerLoads(cfg TenantChaosEKConfig) [][]wq.TaskSpec {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	loads := make([][]wq.TaskSpec, cfg.ChurnJoins)
	for i := range loads {
		for j := 0; j < cfg.JoinerTasks; j++ {
			loads[i] = append(loads[i], wq.TaskSpec{
				Category:  "io",
				Resources: resources.Vector{MilliCPU: 150, MemoryMB: 512},
				Profile: wq.Profile{
					ExecDuration: time.Duration(20+rng.Intn(21)) * time.Second,
					UsedCPUMilli: 150, UsedMemoryMB: 512,
				},
			})
		}
	}
	return loads
}

// tenantChaosHarness owns one E-K cell's stack and implements both
// chaos.ControlPlane (the arbiter as kill target) and
// chaos.TenantControlPlane (tenant-master kills and membership
// churn). All methods run on the simulation goroutine.
type tenantChaosHarness struct {
	eng          *simclock.Engine
	a            *arbiter.Arbiter
	downtime     time.Duration
	rescueWindow time.Duration

	// masters retains every tenant ever admitted — the arbiter
	// forgets offboarded tenants, the accounting must not.
	masters   map[string]*wq.Master
	order     []string
	joiners   []string // live joiners, oldest first
	joinLoads [][]wq.TaskSpec
	lastDone  map[string]time.Time
	victims   map[string]bool
	restarts  map[string]int
	// joinerWork sums the execution time of every task a delivered
	// join submitted; its share of the pool is legitimate dilution
	// the isolation bound must allow for.
	joinerWork time.Duration

	total, done int
	arbDown     bool
	arbRestarts int
	err         error
}

// CrashComponent delivers an arbiter kill: snapshot, crash, restore
// after the downtime. Refused while a previous outage is still open.
func (h *tenantChaosHarness) CrashComponent(c chaos.Component) bool {
	if c != chaos.ComponentArbiter || h.arbDown || h.err != nil {
		return false
	}
	snap, ok := h.a.Crash()
	if !ok {
		return false
	}
	h.arbDown = true
	h.arbRestarts++
	h.eng.After(h.downtime, "recover-arbiter", func() {
		h.a.Restore(snap)
		h.arbDown = false
	})
	return true
}

// TenantIDs lists the kill-eligible tenants: live, master up, not
// offboarding. While the arbiter is down the list is empty — the
// injector re-arms without counting, like any refused kill.
func (h *tenantChaosHarness) TenantIDs() []string {
	if h.arbDown {
		return nil
	}
	var ids []string
	for _, t := range h.a.Tenants() {
		if !t.Leaving() && !t.Master().Down() {
			ids = append(ids, t.ID())
		}
	}
	return ids
}

// CrashTenantMaster delivers one tenant-master kill and schedules the
// restore; the arbiter quarantine machinery sees the crash through
// its own CrashTenantMaster path.
func (h *tenantChaosHarness) CrashTenantMaster(id string) bool {
	if h.arbDown || h.err != nil {
		return false
	}
	if err := h.a.CrashTenantMaster(id); err != nil {
		return false
	}
	h.victims[id] = true
	h.restarts[id]++
	h.eng.After(h.downtime, "recover-tenant-master", func() {
		if err := h.a.RestoreTenantMaster(id, h.rescueWindow); err != nil {
			h.fail(err)
		}
	})
	return true
}

// JoinTenant admits scripted joiner seq and submits its workload.
func (h *tenantChaosHarness) JoinTenant(seq int) bool {
	if h.err != nil || seq >= len(h.joinLoads) {
		return false
	}
	id := fmt.Sprintf("j%03d", seq)
	ten, err := h.a.AddTenant(arbiter.TenantConfig{ID: id, Weight: 1})
	if err != nil {
		return false
	}
	h.track(id, ten)
	h.joiners = append(h.joiners, id)
	for _, spec := range h.joinLoads[seq] {
		h.total++
		h.joinerWork += spec.Profile.ExecDuration
		ten.Master().Submit(spec)
	}
	return true
}

// LeaveTenant offboards the oldest live joiner mid-flight: pending
// work is failed, running work settles, pods drain back to the pool.
func (h *tenantChaosHarness) LeaveTenant() bool {
	if h.arbDown || h.err != nil {
		return false
	}
	for i, id := range h.joiners {
		t, ok := h.a.Tenant(id)
		if !ok || t.Leaving() || t.Master().Down() {
			continue
		}
		if err := h.a.OffboardTenant(id); err != nil {
			continue
		}
		h.joiners = append(h.joiners[:i], h.joiners[i+1:]...)
		return true
	}
	return false
}

// track wires a tenant's terminal callbacks into the cell's
// completion accounting.
func (h *tenantChaosHarness) track(id string, ten *arbiter.Tenant) {
	h.masters[id] = ten.Master()
	h.order = append(h.order, id)
	terminal := func() { h.done++; h.lastDone[id] = h.eng.Now() }
	ten.Master().OnComplete(func(wq.Result) { terminal() })
	ten.Master().OnTaskFailed(func(wq.Task) { terminal() })
	ten.Master().OnRejected(func(wq.Task) { terminal() })
}

func (h *tenantChaosHarness) fail(err error) {
	if h.err == nil {
		h.err = fmt.Errorf("experiments: E-K harness: %w", err)
	}
}

// tenantChaosCell runs one E-K simulation and returns its row plus
// the per-resident makespans (the baseline cell's anchor the
// isolation metric for every chaos cell).
func tenantChaosCell(cfg TenantChaosEKConfig, loads []tenantLoad, joinLoads [][]wq.TaskSpec,
	name string, plan chaos.Plan, baseMk map[string]time.Duration, lastChurn time.Duration,
) (TenantChaosEKRow, map[string]time.Duration, error) {
	row := TenantChaosEKRow{Cell: name}
	eng := simclock.NewEngine(SimStart)
	cluster := kubesim.NewCluster(eng, cfg.Kube)
	defer cluster.Stop()
	a := arbiter.New(eng, cluster, arbiter.Config{
		Cycle:        cfg.Cycle,
		TotalWorkers: cfg.TotalWorkers,
		Policy:       arbiter.PolicyFairShare,
	})
	h := &tenantChaosHarness{
		eng: eng, a: a,
		downtime: cfg.Downtime, rescueWindow: cfg.RescueWindow,
		masters:   make(map[string]*wq.Master),
		lastDone:  make(map[string]time.Time),
		victims:   make(map[string]bool),
		restarts:  make(map[string]int),
		joinLoads: joinLoads,
	}

	residents := make([]string, cfg.Tenants)
	for i, ld := range loads {
		id := fmt.Sprintf("t%03d", i)
		residents[i] = id
		ten, err := a.AddTenant(arbiter.TenantConfig{ID: id, Weight: ld.weight})
		if err != nil {
			return row, nil, err
		}
		h.track(id, ten)
		for j, spec := range ld.specs {
			h.total++
			if at := ld.at[j]; at > 0 {
				spec := spec
				eng.At(SimStart.Add(at), "tenant-submit", func() { ten.Master().Submit(spec) })
			} else {
				ten.Master().Submit(spec)
			}
		}
	}
	if err := a.Start(); err != nil {
		return row, nil, err
	}

	var inj *chaos.Injector
	if plan.Enabled() {
		inj = chaos.New(eng, plan)
		inj.AttachControlPlane(h)
		inj.AttachTenants(h)
		inj.Start()
	}

	deadline := SimStart.Add(cfg.Timeout)
	churnDone := SimStart.Add(lastChurn)
	eng.RunWhile(func() bool {
		if h.err != nil || !eng.Now().Before(deadline) {
			return false
		}
		return h.done < h.total || eng.Now().Before(churnDone)
	})
	if inj != nil {
		inj.Stop()
	}
	a.Stop()
	if h.err != nil {
		return row, nil, h.err
	}
	if h.done != h.total {
		return row, nil, fmt.Errorf("experiments: E-K %s stalled: %d/%d terminal by %v", name, h.done, h.total, eng.Now())
	}
	row.Runtime = eng.Elapsed()

	// Per-tenant conservation: every master ever admitted — including
	// offboarded joiners the arbiter has already forgotten — must
	// balance its books.
	perTenant := make([]metrics.RecoveryCounters, 0, len(h.order))
	for _, id := range h.order {
		m := h.masters[id]
		sub, com := m.SubmittedCount(), m.CompletedCount()
		quar, shed := m.QuarantinedCount(), m.ShedCount()
		if com+quar+shed != sub {
			return row, nil, fmt.Errorf("experiments: E-K %s tenant %s leaks work: %d completed + %d quarantined + %d shed != %d submitted",
				name, id, com, quar, shed, sub)
		}
		row.Submitted += sub
		row.Completed += com
		row.Quarantined += quar
		row.Shed += shed
		rc := m.RecoveryStats()
		rc.MasterRestarts = h.restarts[id]
		perTenant = append(perTenant, rc)
	}
	row.Recovery = metrics.ClusterRecovery(perTenant)
	row.Recovery.OperatorRestarts += h.arbRestarts
	ast := a.Stats()
	row.Recovery.ReconcileCorrections += ast.ReconcileCorrections
	row.FencedDrains = ast.FencedCallbacks
	row.TenantsRemoved = ast.TenantsRemoved
	if inj != nil {
		cs := inj.Stats()
		row.MasterKills = cs.TenantMasterKills
		row.ArbiterKills = cs.ArbiterKills
		row.Joins = cs.TenantJoins
		row.Leaves = cs.TenantLeaves
	}

	// Isolation metric: the worst makespan inflation over residents
	// the chaos never crashed, against the chaos-free baseline.
	mks := make(map[string]time.Duration, len(residents))
	for _, id := range residents {
		mks[id] = h.lastDone[id].Sub(SimStart)
	}
	kills := row.MasterKills + row.ArbiterKills
	row.IsolationSlack = time.Duration(kills)*(cfg.Downtime+cfg.Cycle) +
		2*cfg.Cycle + cfg.Kube.ProvisionMean
	if cfg.TotalWorkers > 0 {
		row.IsolationSlack += h.joinerWork / time.Duration(cfg.TotalWorkers)
	}
	if baseMk != nil {
		for _, id := range residents {
			if h.victims[id] {
				continue
			}
			row.Untouched++
			base := baseMk[id]
			if base <= 0 {
				continue
			}
			if delta := mks[id] - base; delta > row.MaxUntouchedDelta {
				row.MaxUntouchedDelta = delta
			}
			if pct := (mks[id] - base).Seconds() / base.Seconds() * 100; pct > row.MaxUntouchedDeltaPct {
				row.MaxUntouchedDeltaPct = pct
			}
		}
	} else {
		row.Untouched = len(residents)
	}
	return row, mks, nil
}

// String renders the E-K table; with a fixed seed the output is
// byte-identical across runs.
func (r *TenantChaosEKReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-K — tenant fault isolation: %d tenants on %d workers (seed %d, baseline %.0fs)\n",
		r.Tenants, r.Workers, r.Seed, r.Baseline.Seconds())
	fmt.Fprintf(&b, "%-13s %5s %5s %5s %6s %9s %8s %8s %7s %7s %7s %6s %6s %6s %5s\n",
		"cell", "mkill", "akill", "churn", "unt", "runtime", "maxΔ", "slack", "done", "quar",
		"rescued", "requd", "recon", "fenced", "gone")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-13s %5d %5d %2d/%-2d %6d %8.0fs %7.0fs %7.0fs %7d %7d %7d %6d %6d %6d %5d\n",
			row.Cell, row.MasterKills, row.ArbiterKills, row.Joins, row.Leaves, row.Untouched,
			row.Runtime.Seconds(), row.MaxUntouchedDelta.Seconds(), row.IsolationSlack.Seconds(),
			row.Completed, row.Quarantined,
			row.Recovery.RescuedTasks, row.Recovery.RequeuedUnrescued,
			row.Recovery.ReconcileCorrections, row.FencedDrains, row.TenantsRemoved)
	}
	return b.String()
}
