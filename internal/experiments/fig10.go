package experiments

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/core"
	"hta/internal/hpa"
	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/workload"
)

// SummaryRow is one autoscaler's outcome on a workload — the rows of
// the paper's Fig. 10c and Fig. 11c tables.
type SummaryRow struct {
	Autoscaler string
	Runtime    time.Duration
	Waste      float64 // accumulated core·s
	Shortage   float64 // accumulated core·s
}

// Fig10Report reproduces Fig. 10: the multistage BLAST workflow
// (stages of 200/34/164 tasks) under HPA-20 %, HPA-50 % and HTA on a
// cluster capped at 20 nodes (60 cores). Paper table: runtimes
// 2656/2480/3060 s; accumulated waste 51324/39353/9146 core·s;
// accumulated shortage 34813/66611/40680 core·s.
type Fig10Report struct {
	Rows        []SummaryRow
	Runs        map[string]*RunResult
	StageCounts [3]int
}

var multistageCategories = []string{"stage1", "stage2", "stage3"}

const fig10Timeout = 12 * time.Hour

func fig10Kube(seed int64) kubesim.Config {
	return kubesim.Config{
		InitialNodes:   3,
		MinNodes:       1,
		MaxNodes:       20,
		ScaleDownDelay: 10 * time.Minute,
		Seed:           seed,
	}
}

// Fig10 runs the three autoscalers over the multistage workflow.
func Fig10(seed int64) (*Fig10Report, error) {
	rep := &Fig10Report{Runs: make(map[string]*RunResult)}
	p := workload.DefaultMultistage()
	p.Seed = seed
	rep.StageCounts = p.StageCounts

	// HPA runs declare task requirements (the comparison isolates the
	// autoscaler, not the estimator); pods are one-core with enough
	// memory for one alignment.
	podRes := resources.Vector{MilliCPU: 1000, MemoryMB: 4096, DiskMB: 20000}
	for _, target := range []float64{0.20, 0.50} {
		pd := p
		pd.Declared = true
		g, spec, err := pd.Build()
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("HPA(%d%% CPU)", int(target*100))
		res, err := RunHPA(name, Workload{Graph: g, Spec: spec}, HPAOptions{
			Kube:            fig10Kube(seed),
			PodResources:    podRes,
			InitialReplicas: 3,
			HPA: hpa.Config{
				TargetCPUUtilization: target,
				MinReplicas:          1,
				MaxReplicas:          60, // 20 nodes × 3 pods
			},
			Timeout:    fig10Timeout,
			Categories: multistageCategories,
		})
		if err != nil {
			return nil, err
		}
		rep.Runs[name] = res
		rep.Rows = append(rep.Rows, summaryRow(name, res))
	}

	g, spec, err := p.Build() // undeclared: HTA measures categories
	if err != nil {
		return nil, err
	}
	res, err := RunHTA("HTA", Workload{Graph: g, Spec: spec}, HTAOptions{
		Kube:       fig10Kube(seed),
		HTA:        core.Config{MaxWorkers: 20},
		Timeout:    fig10Timeout,
		Categories: multistageCategories,
	})
	if err != nil {
		return nil, err
	}
	rep.Runs["HTA"] = res
	rep.Rows = append(rep.Rows, summaryRow("HTA", res))
	return rep, nil
}

func summaryRow(name string, res *RunResult) SummaryRow {
	return SummaryRow{
		Autoscaler: name,
		Runtime:    res.Runtime,
		Waste:      res.AccumulatedWaste(),
		Shortage:   res.AccumulatedShortage(),
	}
}

func summaryTable(title string, rows []SummaryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %10s %18s %18s\n", "Autoscaler", "Runtime", "Accum. Waste", "Accum. Shortage")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-14s %9.0fs %12.0f core-s %12.0f core-s\n",
			row.Autoscaler, row.Runtime.Seconds(), row.Waste, row.Shortage)
	}
	return b.String()
}

// String renders the stage profile, the supply/demand series and the
// summary table.
func (r *Fig10Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10a — stage profile (tasks per stage: %d/%d/%d)\n",
		r.StageCounts[0], r.StageCounts[1], r.StageCounts[2])
	if hta := r.Runs["HTA"]; hta != nil && hta.CategoryOutstanding != nil {
		for _, cat := range multistageCategories {
			if s := hta.CategoryOutstanding[cat]; s != nil {
				fmt.Fprintf(&b, "\n%s outstanding tasks (HTA run):\n%s", cat, s.ASCII(hta.End, 8, 40))
			}
		}
	}
	fmt.Fprintf(&b, "\nFig. 10b — resource supply (RS) and in-use (RIU), cores:\n")
	for _, name := range []string{"HPA(20% CPU)", "HPA(50% CPU)", "HTA"} {
		run := r.Runs[name]
		if run == nil {
			continue
		}
		fmt.Fprintf(&b, "\n%s supply:\n%s", name, run.Account.Supply.ASCII(run.End, 10, 40))
		fmt.Fprintf(&b, "%s in-use:\n%s", name, run.Account.InUse.ASCII(run.End, 10, 40))
	}
	fmt.Fprintf(&b, "\n%s", summaryTable("Fig. 10c — Blast workflow performance summary", r.Rows))
	return b.String()
}
