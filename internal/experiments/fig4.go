package experiments

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/resources"
	"hta/internal/workload"
)

// Fig4Report reproduces Fig. 4: worker-pod sizing for 100 BLAST jobs
// with a 1.4 GB cacheable shared input on 5 three-core nodes.
// Paper results: (a) fine-grained 15×1-core pods: 411 s, 278 MB/s,
// 87 % CPU; (b) coarse 5 node-sized pods with unknown requirements:
// 632 s, 452 MB/s, 32 % CPU; (c) coarse with known requirements:
// 330 s, 466 MB/s, 86 % CPU.
type Fig4Report struct {
	Rows []Fig4Row
	Runs map[string]*RunResult
}

// Fig4Row is one configuration's outcome.
type Fig4Row struct {
	Config       string
	Runtime      time.Duration
	AvgBandwidth float64 // MB/s
	MeanCPUUtil  float64
}

// Fig4 runs the three configurations.
func Fig4(seed int64) (*Fig4Report, error) {
	rep := &Fig4Report{Runs: make(map[string]*RunResult)}
	nodeSized := resources.New(3, 12288, 100000)
	small := resources.New(1, 4096, 50000)

	configs := []struct {
		name     string
		workers  int
		capacity resources.Vector
		declared bool
	}{
		{"(a) fine-grained 15x1c", 15, small, false},
		{"(b) coarse 5x3c unknown", 5, nodeSized, false},
		{"(c) coarse 5x3c known", 5, nodeSized, true},
	}
	for _, cfg := range configs {
		p := workload.DefaultBlastFlat(100)
		p.Seed = seed
		p.Declared = cfg.declared
		wl, err := Flat(p.Specs())
		if err != nil {
			return nil, err
		}
		res, err := RunStatic(cfg.name, wl, StaticOptions{
			Workers:         cfg.workers,
			WorkerResources: cfg.capacity,
			LinkMBps:        workload.MasterEgressMBps,
			Contention:      workload.StreamContention,
		})
		if err != nil {
			return nil, err
		}
		rep.Runs[cfg.name] = res
		rep.Rows = append(rep.Rows, Fig4Row{
			Config:       cfg.name,
			Runtime:      res.Runtime,
			AvgBandwidth: res.AvgBandwidthMBps,
			MeanCPUUtil:  res.MeanCPUUtil,
		})
	}
	return rep, nil
}

// String renders the paper-style table.
func (r *Fig4Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — worker-pod sizing (100 BLAST jobs, 1.4GB shared input, 5 nodes)\n")
	fmt.Fprintf(&b, "%-26s %10s %14s %10s\n", "Config", "Runtime", "AvgBandwidth", "CPU-Util")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-26s %9.0fs %11.1fMB/s %9.1f%%\n",
			row.Config, row.Runtime.Seconds(), row.AvgBandwidth, row.MeanCPUUtil*100)
	}
	return b.String()
}
