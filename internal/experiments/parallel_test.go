package experiments

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelRunsEveryIndexOnce(t *testing.T) {
	const n = 37
	var seen [n]int32
	if err := Parallel(n, func(i int) error {
		atomic.AddInt32(&seen[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestParallelReturnsFirstErrorByIndex(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := Parallel(10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if err != errB {
		t.Fatalf("err = %v, want the lowest-index error %v", err, errB)
	}
}

func TestParallelRecoversPanicAsCellError(t *testing.T) {
	old := MaxParallel
	MaxParallel = 4 // force the pooled path regardless of GOMAXPROCS
	defer func() { MaxParallel = old }()
	var ran int32
	err := Parallel(8, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 2 {
			panic("scenario blew up")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "scenario 2 panicked: scenario blew up") {
		t.Fatalf("err = %v, want panic surfaced as scenario 2's error", err)
	}
	// The panic cost one cell, not the fan-out: every other index ran.
	if ran != 8 {
		t.Errorf("ran = %d of 8 scenarios", ran)
	}
}

func TestParallelRecoversPanicSerially(t *testing.T) {
	old := MaxParallel
	MaxParallel = 1
	defer func() { MaxParallel = old }()
	err := Parallel(3, func(i int) error {
		if i == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "scenario 1 panicked") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
}

func TestParallelSerialFallback(t *testing.T) {
	old := MaxParallel
	MaxParallel = 1
	defer func() { MaxParallel = old }()
	var order []int
	if err := Parallel(5, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

// TestParallelMatchesSerialReports is the harness determinism check:
// a figure routed through the parallel runner must render exactly the
// report a serial loop produces, because every scenario owns its own
// engine and results are assembled by configuration index.
func TestParallelMatchesSerialReports(t *testing.T) {
	serialSweep := func() string {
		old := MaxParallel
		MaxParallel = 1
		defer func() { MaxParallel = old }()
		rep, err := SweepInitLatency(3, 30*time.Second, 140*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	parallelSweep := func() string {
		rep, err := SweepInitLatency(3, 30*time.Second, 140*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	if s, p := serialSweep(), parallelSweep(); s != p {
		t.Errorf("sweep reports diverge:\n--- serial\n%s--- parallel\n%s", s, p)
	}

	serialPolicy := func() string {
		old := MaxParallel
		MaxParallel = 1
		defer func() { MaxParallel = old }()
		rep, err := AblationDispatchPolicy(3)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	parallelPolicy := func() string {
		rep, err := AblationDispatchPolicy(3)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	if s, p := serialPolicy(), parallelPolicy(); s != p {
		t.Errorf("policy reports diverge:\n--- serial\n%s--- parallel\n%s", s, p)
	}
}
