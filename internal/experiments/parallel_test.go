package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelRunsEveryIndexOnce(t *testing.T) {
	const n = 37
	var seen [n]int32
	if err := Parallel(n, func(i int) error {
		atomic.AddInt32(&seen[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestParallelReturnsFirstErrorByIndex(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := Parallel(10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if err != errB {
		t.Fatalf("err = %v, want the lowest-index error %v", err, errB)
	}
}

func TestParallelSerialFallback(t *testing.T) {
	old := MaxParallel
	MaxParallel = 1
	defer func() { MaxParallel = old }()
	var order []int
	if err := Parallel(5, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

// TestParallelMatchesSerialReports is the harness determinism check:
// a figure routed through the parallel runner must render exactly the
// report a serial loop produces, because every scenario owns its own
// engine and results are assembled by configuration index.
func TestParallelMatchesSerialReports(t *testing.T) {
	serialSweep := func() string {
		old := MaxParallel
		MaxParallel = 1
		defer func() { MaxParallel = old }()
		rep, err := SweepInitLatency(3, 30*time.Second, 140*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	parallelSweep := func() string {
		rep, err := SweepInitLatency(3, 30*time.Second, 140*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	if s, p := serialSweep(), parallelSweep(); s != p {
		t.Errorf("sweep reports diverge:\n--- serial\n%s--- parallel\n%s", s, p)
	}

	serialPolicy := func() string {
		old := MaxParallel
		MaxParallel = 1
		defer func() { MaxParallel = old }()
		rep, err := AblationDispatchPolicy(3)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	parallelPolicy := func() string {
		rep, err := AblationDispatchPolicy(3)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	if s, p := serialPolicy(), parallelPolicy(); s != p {
		t.Errorf("policy reports diverge:\n--- serial\n%s--- parallel\n%s", s, p)
	}
}
