package experiments

import (
	"testing"
	"time"
)

// smallChaosCfg shrinks E-F to test scale: a 40/8/32-task multistage
// workflow, baseline plus one aggressive preemption rate.
func smallChaosCfg(seed int64) ChaosEFConfig {
	cfg := DefaultChaosEFConfig(seed)
	cfg.Stages = [3]int{40, 8, 32}
	cfg.PreemptMeans = []time.Duration{0, 3 * time.Minute}
	return cfg
}

func TestChaosEFDeterministic(t *testing.T) {
	a, err := ChaosEFWith(smallChaosCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosEFWith(smallChaosCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	// The contract is byte-identical reports for a fixed seed, even
	// though every cell ran on its own goroutine.
	if a.String() != b.String() {
		t.Errorf("same seed produced different reports:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

func TestChaosEFAccountingAndShape(t *testing.T) {
	rep, err := ChaosEFWith(smallChaosCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 scalers × 2 rates)", len(rep.Rows))
	}
	total := 40 + 8 + 32
	for _, row := range rep.Rows {
		// Accounting invariant: every task the master accepted either
		// completed or was quarantined — none lost, dropped or
		// duplicated, no matter how many workers died under it.
		if row.Submitted != row.Completed+row.Quarantined {
			t.Errorf("%s @%v: submitted %d != completed %d + quarantined %d",
				row.Autoscaler, row.PreemptMean, row.Submitted, row.Completed, row.Quarantined)
		}
		// The workflow itself always finishes (HTA's probes may add
		// completions beyond the workflow's own task count).
		if row.Completed < total {
			t.Errorf("%s @%v: completed %d < workflow size %d",
				row.Autoscaler, row.PreemptMean, row.Completed, total)
		}
		// The generous budget (8 attempts) must absorb this fault rate.
		if row.Quarantined != 0 {
			t.Errorf("%s @%v: %d tasks quarantined under an adequate budget",
				row.Autoscaler, row.PreemptMean, row.Quarantined)
		}
		if row.PreemptMean == 0 {
			if row.Preemptions != 0 || row.LostCoreSec != 0 {
				t.Errorf("%s baseline: preemptions=%d lost=%.0f, want clean run",
					row.Autoscaler, row.Preemptions, row.LostCoreSec)
			}
		} else {
			if row.Preemptions == 0 {
				t.Errorf("%s @%v: injector delivered no preemptions", row.Autoscaler, row.PreemptMean)
			}
			if row.Goodput <= 0 || row.Goodput > 1 {
				t.Errorf("%s @%v: goodput = %.3f, want (0, 1]", row.Autoscaler, row.PreemptMean, row.Goodput)
			}
		}
	}
	// At least one faulted run actually lost in-flight work and had to
	// re-execute it (preemptions prefer occupied nodes).
	var lost float64
	requeues := 0
	for _, row := range rep.Rows {
		if row.PreemptMean > 0 {
			lost += row.LostCoreSec
			requeues += row.Requeues
		}
	}
	if lost == 0 || requeues == 0 {
		t.Errorf("faulted runs lost %.0f core·s over %d requeues; expected re-executed work", lost, requeues)
	}
}

func TestChaosEFQuarantineUnderTinyBudget(t *testing.T) {
	// With a one-attempt budget and relentless preemption, some task
	// eventually dies with its worker and is quarantined, which fails
	// its DAG node and surfaces as a run error — the bounded-blast-
	// radius semantics, exercised end to end through the harness.
	cfg := smallChaosCfg(2)
	cfg.PreemptMeans = []time.Duration{45 * time.Second}
	cfg.Retry.MaxAttempts = 1
	cfg.Retry.BackoffBase = 0
	_, err := ChaosEFWith(cfg)
	if err == nil {
		t.Fatal("expected a quarantine-induced workflow failure, got success")
	}
}

func BenchmarkChaosPreemptible(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := ChaosEF(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 9 {
			b.Fatalf("rows = %d, want 9", len(rep.Rows))
		}
	}
}
