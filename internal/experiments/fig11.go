package experiments

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/core"
	"hta/internal/hpa"
	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/workload"
)

// Fig11Report reproduces Fig. 11: 200 I/O-intensive dd tasks whose
// CPU load stays under 20 %. HPA never scales the cluster (usage is
// below every reasonable CPU target), while HTA — informed by the
// processors the tasks actually occupy — scales to the quota. Paper
// table: runtimes 6670/7230/1823 s; accumulated waste 159/82/2028
// core·s; accumulated shortage 337737/357640/31840 core·s.
type Fig11Report struct {
	Rows []SummaryRow
	Runs map[string]*RunResult
}

const fig11Timeout = 12 * time.Hour

// Fig11 runs the three autoscalers over the I/O-bound workload.
func Fig11(seed int64) (*Fig11Report, error) {
	rep := &Fig11Report{Runs: make(map[string]*RunResult)}
	kube := kubesim.Config{
		InitialNodes:   3,
		MinNodes:       1,
		MaxNodes:       20,
		ScaleDownDelay: 10 * time.Minute,
		Seed:           seed,
	}
	podRes := resources.Vector{MilliCPU: 1000, MemoryMB: 1024, DiskMB: 10000}

	for _, target := range []float64{0.20, 0.50} {
		p := workload.DefaultIOBound()
		p.Seed = seed
		p.Declared = true // HPA runs declare one processor per task
		wl, err := Flat(p.Specs())
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("HPA(%d%% CPU)", int(target*100))
		res, err := RunHPA(name, wl, HPAOptions{
			Kube:            kube,
			PodResources:    podRes,
			InitialReplicas: 3,
			HPA: hpa.Config{
				TargetCPUUtilization: target,
				MinReplicas:          3, // the paper's initial 3-node floor
				MaxReplicas:          60,
			},
			Timeout: fig11Timeout,
		})
		if err != nil {
			return nil, err
		}
		rep.Runs[name] = res
		rep.Rows = append(rep.Rows, summaryRow(name, res))
	}

	p := workload.DefaultIOBound()
	p.Seed = seed
	wl, err := Flat(p.Specs()) // undeclared: HTA measures the category
	if err != nil {
		return nil, err
	}
	res, err := RunHTA("HTA", wl, HTAOptions{
		Kube:    kube,
		HTA:     core.Config{MaxWorkers: 20},
		Timeout: fig11Timeout,
	})
	if err != nil {
		return nil, err
	}
	rep.Runs["HTA"] = res
	rep.Rows = append(rep.Rows, summaryRow("HTA", res))
	return rep, nil
}

// String renders the supply/demand series and the summary table.
func (r *Fig11Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11b — I/O-bound workload, resource supply (RS) and in-use (RIU), cores:\n")
	for _, name := range []string{"HPA(20% CPU)", "HPA(50% CPU)", "HTA"} {
		run := r.Runs[name]
		if run == nil {
			continue
		}
		fmt.Fprintf(&b, "\n%s supply:\n%s", name, run.Account.Supply.ASCII(run.End, 10, 40))
		fmt.Fprintf(&b, "%s shortage:\n%s", name, run.Account.Shortage.ASCII(run.End, 10, 40))
	}
	fmt.Fprintf(&b, "\n%s", summaryTable("Fig. 11c — I/O-bound workflow performance summary", r.Rows))
	return b.String()
}
