package experiments

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/flow"
	"hta/internal/netsim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// AblationDispatchPolicyReport (A5) compares the master's dispatch
// policies in the regime where placement matters: a fleet larger than
// the offered load, with a cacheable shared input. Consolidating
// policies (first-fit, best-fit) run the tasks on few workers — fewer
// copies of the shared database cross the master's egress and the
// remaining workers stay idle (drainable); worst-fit spreads the same
// tasks across the whole fleet, fetching a database copy onto every
// node. Under saturation all policies converge (every worker is full
// either way), which the saturated rows demonstrate.
type AblationDispatchPolicyReport struct {
	Rows []PolicyRow
}

// PolicyRow is one (policy, load) outcome.
type PolicyRow struct {
	Policy      wq.Policy
	Load        string // "partial" or "saturated"
	Runtime     time.Duration
	DeliveredMB float64 // bytes moved over the master egress
	IdleWorkers int     // workers that never ran a task
}

const (
	policyFleet     = 10
	policyDBSizeMB  = 700
	policyExecMean  = 4 * time.Minute
	policyPartialN  = 12  // 12 one-core tasks on 30 slots
	policySaturateN = 120 // 120 one-core tasks on 30 slots
)

func policyBag(n int, seed int64) []wq.TaskSpec {
	rng := simclock.NewRNG(seed)
	specs := make([]wq.TaskSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, wq.TaskSpec{
			Category:     "align",
			Resources:    resources.Vector{MilliCPU: 1000, MemoryMB: 2048},
			SharedInputs: []wq.File{{Name: "ref.db", SizeMB: policyDBSizeMB}},
			OutputMB:     0.6,
			Profile: wq.Profile{
				ExecDuration: time.Duration(rng.Jitter(float64(policyExecMean), 0.2)),
				UsedCPUMilli: 870,
				UsedMemoryMB: 1800,
			},
		})
	}
	return specs
}

// AblationDispatchPolicy runs A5; all six (policy, load) cases run
// concurrently, collected in the serial row order.
func AblationDispatchPolicy(seed int64) (*AblationDispatchPolicyReport, error) {
	loads := []struct {
		name string
		n    int
	}{{"partial", policyPartialN}, {"saturated", policySaturateN}}
	policies := []wq.Policy{wq.FirstFit, wq.BestFit, wq.WorstFit}
	rows := make([]PolicyRow, len(loads)*len(policies))
	err := Parallel(len(rows), func(i int) error {
		load := loads[i/len(policies)]
		policy := policies[i%len(policies)]
		row, err := runPolicyCase(policy, load.name, load.n, seed)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationDispatchPolicyReport{Rows: rows}, nil
}

func runPolicyCase(policy wq.Policy, load string, n int, seed int64) (PolicyRow, error) {
	eng := simclock.NewEngine(SimStart)
	link := netsim.NewLink(eng, 600, 0)
	link.SetContention(0.96)
	m := wq.NewMaster(eng, link)
	m.SetPolicy(policy)
	for i := 0; i < policyFleet; i++ {
		if err := m.AddWorker(fmt.Sprintf("w%d", i+1), resources.New(3, 12288, 100000)); err != nil {
			return PolicyRow{}, err
		}
	}
	used := make(map[string]bool)
	m.OnComplete(func(r wq.Result) { used[r.Task.WorkerID] = true })

	g, specFn, err := flow.FromSpecs(policyBag(n, seed))
	if err != nil {
		return PolicyRow{}, err
	}
	runner := flow.NewRunner(g, m, specFn)
	finished := false
	runner.OnAllDone(func() { finished = true })
	runner.Start()
	deadline := SimStart.Add(12 * time.Hour)
	eng.RunWhile(func() bool { return !finished && eng.Now().Before(deadline) })
	if !finished {
		return PolicyRow{}, &ErrTimeout{Name: "policy-" + policy.String(), Deadline: 12 * time.Hour, Stats: m.Stats()}
	}
	return PolicyRow{
		Policy:      policy,
		Load:        load,
		Runtime:     eng.Elapsed(),
		DeliveredMB: link.Stats().DeliveredMB,
		IdleWorkers: policyFleet - len(used),
	}, nil
}

// String renders the comparison.
func (r *AblationDispatchPolicyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A5 — dispatch policy (10×3-core workers, 700MB shared DB)\n")
	fmt.Fprintf(&b, "%-10s %-10s %10s %14s %12s\n", "Policy", "Load", "Runtime", "DataMoved", "IdleWorkers")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-10s %9.0fs %11.0f MB %12d\n",
			row.Policy, row.Load, row.Runtime.Seconds(), row.DeliveredMB, row.IdleWorkers)
	}
	return b.String()
}
