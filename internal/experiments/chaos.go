package experiments

// Experiment E-F: the multistage BLAST workflow on preemptible nodes.
// A seed-driven chaos injector reclaims nodes at several Poisson rates
// while HTA, the HPA baseline and the queue-proportional scaler run
// the same workflow under the same retry policy. The report shows what
// the paper's evaluation never measures: how much completed work each
// autoscaler loses to preemption (re-executed core·s, goodput), how
// the recovery machinery behaves (requeues, fast-aborts, quarantines),
// and what the faults cost in runtime.

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/chaos"
	"hta/internal/core"
	"hta/internal/hpa"
	"hta/internal/qpa"
	"hta/internal/resources"
	"hta/internal/workload"
	"hta/internal/wq"
)

// ChaosEFConfig parameterizes E-F; tests shrink the workload.
type ChaosEFConfig struct {
	Seed int64
	// PreemptMeans are the swept mean inter-preemption intervals; a 0
	// entry is the fault-free baseline.
	PreemptMeans []time.Duration
	// Stages overrides the multistage task counts (zero = paper-sized
	// 200/34/164).
	Stages [3]int
	// Retry is the masters' recovery policy.
	Retry wq.RetryPolicy
	// Timeout bounds each simulated run.
	Timeout time.Duration
}

// DefaultChaosEFConfig is the full-size experiment: paper-sized
// multistage BLAST, baseline plus two preemption rates, a retry
// budget generous enough that no task quarantines.
func DefaultChaosEFConfig(seed int64) ChaosEFConfig {
	return ChaosEFConfig{
		Seed:         seed,
		PreemptMeans: []time.Duration{0, 10 * time.Minute, 4 * time.Minute},
		Retry: wq.RetryPolicy{
			MaxAttempts:         8,
			BackoffBase:         5 * time.Second,
			BackoffMax:          60 * time.Second,
			FastAbortMultiplier: 3,
		},
	}
}

// ChaosRow is one (autoscaler, preemption rate) outcome.
type ChaosRow struct {
	Autoscaler  string
	PreemptMean time.Duration // 0 = fault-free baseline
	Runtime     time.Duration
	Preemptions int
	WorkerKills int
	Requeues    int
	FastAborts  int
	Quarantined int
	Submitted   int
	Completed   int
	LostCoreSec float64
	Goodput     float64
}

// ChaosEFReport is the E-F result table.
type ChaosEFReport struct {
	Rows []ChaosRow
	Runs map[string]*RunResult
}

var chaosScalers = []string{"HTA", "HPA(20% CPU)", "QPA(queue/3)"}

// ChaosEF runs the full-size experiment.
func ChaosEF(seed int64) (*ChaosEFReport, error) {
	return ChaosEFWith(DefaultChaosEFConfig(seed))
}

// ChaosEFWith runs E-F under an explicit configuration. All cells run
// concurrently; each is its own deterministic simulation.
func ChaosEFWith(cfg ChaosEFConfig) (*ChaosEFReport, error) {
	if len(cfg.PreemptMeans) == 0 {
		cfg.PreemptMeans = DefaultChaosEFConfig(cfg.Seed).PreemptMeans
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = fig10Timeout
	}
	type cell struct {
		scaler string
		mean   time.Duration
	}
	var cells []cell
	for _, mean := range cfg.PreemptMeans {
		for _, s := range chaosScalers {
			cells = append(cells, cell{s, mean})
		}
	}
	results := make([]*RunResult, len(cells))
	err := Parallel(len(cells), func(i int) error {
		var err error
		results[i], err = chaosCell(cells[i].scaler, cfg, cells[i].mean)
		return err
	})
	if err != nil {
		return nil, err
	}
	rep := &ChaosEFReport{Runs: make(map[string]*RunResult, len(cells))}
	for i, c := range cells {
		res := results[i]
		rep.Runs[res.Name] = res
		rep.Rows = append(rep.Rows, ChaosRow{
			Autoscaler:  c.scaler,
			PreemptMean: c.mean,
			Runtime:     res.Runtime,
			Preemptions: res.Chaos.Preemptions,
			WorkerKills: res.Failures.WorkerKills,
			Requeues:    res.Failures.Requeues,
			FastAborts:  res.Failures.FastAborts,
			Quarantined: res.Failures.Quarantined,
			Submitted:   res.Submitted,
			Completed:   res.Completed,
			LostCoreSec: res.Failures.LostCoreSeconds,
			Goodput:     res.Failures.Goodput(),
		})
	}
	return rep, nil
}

// chaosCell runs one (autoscaler, preemption rate) simulation.
func chaosCell(scaler string, cfg ChaosEFConfig, mean time.Duration) (*RunResult, error) {
	p := workload.DefaultMultistage()
	p.Seed = cfg.Seed
	if cfg.Stages != ([3]int{}) {
		p.StageCounts = cfg.Stages
	}
	var plan *chaos.Plan
	if mean > 0 {
		plan = &chaos.Plan{
			Seed: cfg.Seed,
			Preemption: chaos.PreemptionPlan{
				MeanInterval: mean,
				// Spare an on-demand floor of one node, like a mixed
				// spot/on-demand pool.
				MinNodesSpared: 1,
			},
		}
	}
	name := fmt.Sprintf("%s@%s", scaler, preemptLabel(mean))
	switch scaler {
	case "HTA":
		g, spec, err := p.Build() // undeclared: HTA measures categories
		if err != nil {
			return nil, err
		}
		return RunHTA(name, Workload{Graph: g, Spec: spec}, HTAOptions{
			Kube:    fig10Kube(cfg.Seed),
			HTA:     core.Config{MaxWorkers: 20},
			Timeout: cfg.Timeout,
			Retry:   cfg.Retry,
			Chaos:   plan,
		})
	case "HPA(20% CPU)":
		p.Declared = true
		g, spec, err := p.Build()
		if err != nil {
			return nil, err
		}
		return RunHPA(name, Workload{Graph: g, Spec: spec}, HPAOptions{
			Kube:            fig10Kube(cfg.Seed),
			PodResources:    fig10PodResources,
			InitialReplicas: 3,
			HPA: hpa.Config{
				TargetCPUUtilization: 0.20,
				MinReplicas:          1,
				MaxReplicas:          60, // 20 nodes × 3 pods
			},
			Timeout: cfg.Timeout,
			Retry:   cfg.Retry,
			Chaos:   plan,
		})
	case "QPA(queue/3)":
		p.Declared = true
		g, spec, err := p.Build()
		if err != nil {
			return nil, err
		}
		return RunQPA(name, Workload{Graph: g, Spec: spec}, QPAOptions{
			Kube:            fig10Kube(cfg.Seed),
			InitialReplicas: 3,
			QPA: qpa.Config{
				TasksPerWorker: 3, // node-sized workers hold 3 one-core tasks
				MaxReplicas:    20,
			},
			Timeout: cfg.Timeout,
			Retry:   cfg.Retry,
			Chaos:   plan,
		})
	}
	return nil, fmt.Errorf("experiments: unknown chaos scaler %q", scaler)
}

// fig10PodResources is the HPA worker-pod size used across the
// multistage comparisons.
var fig10PodResources = resources.Vector{MilliCPU: 1000, MemoryMB: 4096, DiskMB: 20000}

func preemptLabel(d time.Duration) string {
	if d == 0 {
		return "none"
	}
	return d.String()
}

// String renders the E-F table; with a fixed seed the output is
// byte-identical across runs (the determinism contract of the chaos
// subsystem).
func (r *ChaosEFReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-F — multistage BLAST on preemptible nodes (retry + fast-abort recovery)\n")
	fmt.Fprintf(&b, "%-14s %-8s %9s %8s %6s %9s %7s %5s %10s %12s %8s\n",
		"Autoscaler", "Preempt", "Runtime", "Reclaims", "Kills", "Requeues", "Aborts", "Quar", "Done", "Lost core-s", "Goodput")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %-8s %8.0fs %8d %6d %9d %7d %5d %5d/%-4d %12.0f %8.3f\n",
			row.Autoscaler, preemptLabel(row.PreemptMean), row.Runtime.Seconds(),
			row.Preemptions, row.WorkerKills, row.Requeues, row.FastAborts,
			row.Quarantined, row.Completed, row.Submitted, row.LostCoreSec, row.Goodput)
	}
	return b.String()
}
