package experiments

import (
	"fmt"
	"time"

	"hta/internal/report"
)

// PageAdder is implemented by reports that can render themselves into
// an HTML report page.
type PageAdder interface {
	AddToPage(p *report.Page)
}

func fmtSeconds(d time.Duration) string { return fmt.Sprintf("%.0f s", d.Seconds()) }
func fmtCoreS(v float64) string         { return fmt.Sprintf("%.0f core·s", v) }

func addSupplyCharts(s *report.Section, runs map[string]*RunResult, names ...string) {
	for _, name := range names {
		run := runs[name]
		if run == nil {
			continue
		}
		s.AddChart(name+" — supply vs in-use (cores)", "cores", run.End,
			run.Account.Supply, run.Account.InUse, run.Account.Shortage)
	}
}

// AddToPage renders Fig. 2.
func (r *Fig2Report) AddToPage(p *report.Page) {
	s := p.AddSection("Fig. 2 — HPA target-CPU sweep",
		"200 BLAST jobs with known requirements on a cluster capped at 15 nodes, under the Horizontal Pod Autoscaler at three target CPU loads, against an ideal fixed fleet.")
	s.AddRow("Config", "Runtime", "Max workers", "Mean CPU util")
	for _, row := range r.Rows {
		s.AddRow(row.Config, fmtSeconds(row.Runtime),
			fmt.Sprintf("%.0f", row.MaxWorkers), fmt.Sprintf("%.1f%%", row.MeanCPUUtil*100))
	}
	s.AddRow("Ideal", fmtSeconds(r.Ideal.Runtime), "45", fmt.Sprintf("%.1f%%", r.Ideal.MeanCPUUtil*100))
	for _, row := range r.Rows {
		run := r.Runs[row.Config]
		s.AddChart(row.Config+" — workers", "workers", run.End, run.Workers, run.Desired, run.Ideal)
	}
}

// AddToPage renders Fig. 4.
func (r *Fig4Report) AddToPage(p *report.Page) {
	s := p.AddSection("Fig. 4 — worker-pod sizing",
		"100 BLAST jobs sharing a 1.4 GB cacheable input on 5 three-core nodes: fine-grained one-core workers vs node-sized workers with unknown and known task requirements.")
	s.AddRow("Config", "Runtime", "Avg bandwidth", "Mean CPU util")
	for _, row := range r.Rows {
		s.AddRow(row.Config, fmtSeconds(row.Runtime),
			fmt.Sprintf("%.1f MB/s", row.AvgBandwidth), fmt.Sprintf("%.1f%%", row.MeanCPUUtil*100))
	}
	addSupplyCharts(s, r.Runs, "(a) fine-grained 15x1c", "(b) coarse 5x3c unknown", "(c) coarse 5x3c known")
}

// AddToPage renders Fig. 6.
func (r *Fig6Report) AddToPage(p *report.Page) {
	s := p.AddSection("Fig. 6 — resource-initialization latency",
		fmt.Sprintf("Ten cold-start probes; mean %.1f s, std %.1f s (paper: 157.4 s / 4.2 s).", r.MeanSec, r.StdSec))
	s.AddRow("Probe", "Initialization time")
	for i, d := range r.Samples {
		s.AddRow(fmt.Sprintf("run %d", i+1), fmtSeconds(d))
	}
}

func addSummarySection(p *report.Page, title, preamble string, rows []SummaryRow, runs map[string]*RunResult, names ...string) {
	s := p.AddSection(title, preamble)
	s.AddRow("Autoscaler", "Runtime", "Accum. waste", "Accum. shortage")
	for _, row := range rows {
		s.AddRow(row.Autoscaler, fmtSeconds(row.Runtime), fmtCoreS(row.Waste), fmtCoreS(row.Shortage))
	}
	addSupplyCharts(s, runs, names...)
}

// AddToPage renders Fig. 10.
func (r *Fig10Report) AddToPage(p *report.Page) {
	addSummarySection(p, "Fig. 10 — multistage BLAST workflow",
		"Three barrier-separated stages of 200/34/164 tasks on a 20-node (60-core) cluster. HPA pins the fleet at its peak; HTA follows the stage structure.",
		r.Rows, r.Runs, "HPA(20% CPU)", "HPA(50% CPU)", "HTA")
	if hta := r.Runs["HTA"]; hta != nil && hta.CategoryOutstanding != nil {
		s := p.Sections[len(p.Sections)-1]
		series := sortedCategorySeries(hta)
		if len(series) > 0 {
			s.AddChart("Fig. 10a — outstanding tasks per stage (HTA run)", "tasks", hta.End, series...)
		}
	}
}

// AddToPage renders Fig. 11.
func (r *Fig11Report) AddToPage(p *report.Page) {
	addSummarySection(p, "Fig. 11 — I/O-bound workload",
		"200 dd-style tasks at ≈15% CPU. The CPU-threshold autoscaler never scales; HTA counts the processors tasks occupy and scales to quota.",
		r.Rows, r.Runs, "HPA(20% CPU)", "HTA")
}

// AddToPage renders the S2 stream.
func (r *StreamReport) AddToPage(p *report.Page) {
	addSummarySection(p, "Stream S2 — diurnal arrival stream",
		fmt.Sprintf("%d tasks arriving over two hours at a sinusoidal 2-18 tasks/min rate. HTA tracks the wave; HPA holds the peak.", r.Tasks),
		r.Rows, r.Runs, "HPA(20% CPU)", "HTA")
}
