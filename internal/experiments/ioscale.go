package experiments

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/core"
	"hta/internal/hpa"
	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/workload"
)

// IOScaleConfig parameterizes experiment E-H: the Fig. 11 I/O-bound
// workload swept across fleet sizes far beyond the paper's 20-node
// cluster. Each fleet size W runs two cells — HTA with a W-worker
// quota, and an HPA baseline whose CPU target the workload never
// reaches — over TasksPerWorker×W tasks that each stream input from
// the master. The sweep exercises the data-plane scaling work: tens
// of thousands of concurrent transfers on one link and dispatch
// passes over a 40k-task queue.
type IOScaleConfig struct {
	// Workers are the fleet quotas to sweep (default 1000, 5000,
	// 10000).
	Workers []int
	// TasksPerWorker sizes each cell's bag at TasksPerWorker×W tasks
	// (default 4). HTA workers are node-sized (3 one-core slots), so
	// 4W tasks keep a W-worker fleet saturated for more than one wave.
	TasksPerWorker int
	// ExecMean and ExecJitter shape the dd task durations (defaults:
	// the Fig. 11 calibration, 100 s ± 10 %).
	ExecMean   time.Duration
	ExecJitter float64
	// InputMB and OutputMB are the per-task transfer sizes (defaults
	// 25 and 1).
	InputMB  float64
	OutputMB float64
	// LinkMBps and PerTransfer describe the master's egress: a fat
	// shared link with a per-stream cap (defaults 10000 and 100).
	// Multiplicative stream contention is deliberately off — the
	// 0.96^n model collapses at 10k streams; the per-transfer cap and
	// fair sharing carry the contention story at this scale.
	LinkMBps    float64
	PerTransfer float64
	// HPATarget is the baseline's CPU target (default 0.20; the tasks
	// run at ≈15 %, so the HPA never scales — the paper's point).
	HPATarget float64
	Seed      int64
	// Reference routes every cell's egress link through the retained
	// walk-everything netsim implementation, for differential runs.
	Reference bool
	// ReferenceEngine runs every cell on the retained container/heap
	// event core, for differential runs.
	ReferenceEngine bool
	// Timeout bounds each cell (0 = auto: generous for HTA, sized to
	// the pinned-fleet serial runtime for HPA). SampleEvery overrides
	// the sampler period (0 = auto-scaled to the cell's expected
	// runtime).
	Timeout     time.Duration
	SampleEvery time.Duration
}

// DefaultIOScale returns the E-H configuration: fleets of 1k/5k/10k
// workers, four tasks per worker, 25 MB in / 1 MB out per task over a
// 10 GB/s link capped at 100 MB/s per stream.
func DefaultIOScale() IOScaleConfig {
	return IOScaleConfig{
		Workers:        []int{1000, 5000, 10000},
		TasksPerWorker: 4,
		ExecMean:       workload.IOBoundExec,
		ExecJitter:     0.10,
		InputMB:        25,
		OutputMB:       1,
		LinkMBps:       10000,
		PerTransfer:    100,
		HPATarget:      0.20,
		Seed:           1,
	}
}

// IOScaleRow is one cell of the E-H sweep.
type IOScaleRow struct {
	Scaler      string // "HTA" or "HPA(20%)"
	Workers     int    // fleet quota, the sweep axis
	Tasks       int
	Runtime     time.Duration
	Completed   int
	Submitted   int
	PeakWorkers int     // maximum concurrently connected workers
	AvgMBps     float64 // link average bandwidth while busy
	Waste       float64 // accumulated core·s
	Shortage    float64 // accumulated core·s
}

// IOScaleReport is the E-H result: one row per (scaler, fleet) cell.
type IOScaleReport struct {
	Config IOScaleConfig
	Rows   []IOScaleRow
	Runs   map[string]*RunResult
}

// IOScaleEH runs E-H with the default configuration.
func IOScaleEH(seed int64) (*IOScaleReport, error) {
	cfg := DefaultIOScale()
	cfg.Seed = seed
	return IOScaleEHWith(cfg)
}

// IOScaleEHScale runs the E-H extension cells unlocked by the
// lane-sharded engine: W ∈ {50 000, 100 000} workers (up to 400k
// tasks). The HPA baselines at these fleets simulate months of
// virtual time, so the sweep lives behind `htabench -runs ioscale`
// rather than the default set.
func IOScaleEHScale(seed int64) (*IOScaleReport, error) {
	cfg := DefaultIOScale()
	cfg.Workers = []int{50000, 100000}
	cfg.Seed = seed
	return IOScaleEHWith(cfg)
}

// ioScaleCell is one (scaler, fleet-size) combination.
type ioScaleCell struct {
	name    string
	hta     bool
	workers int
}

func (c IOScaleConfig) withDefaults() IOScaleConfig {
	def := DefaultIOScale()
	if len(c.Workers) == 0 {
		c.Workers = def.Workers
	}
	if c.TasksPerWorker == 0 {
		c.TasksPerWorker = def.TasksPerWorker
	}
	if c.ExecMean == 0 {
		c.ExecMean = def.ExecMean
	}
	if c.InputMB == 0 {
		c.InputMB = def.InputMB
	}
	if c.OutputMB == 0 {
		c.OutputMB = def.OutputMB
	}
	if c.LinkMBps == 0 {
		c.LinkMBps = def.LinkMBps
	}
	if c.PerTransfer == 0 {
		c.PerTransfer = def.PerTransfer
	}
	if c.HPATarget == 0 {
		c.HPATarget = def.HPATarget
	}
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
	return c
}

// sampleEvery scales the sampler period to the expected cell runtime:
// every tick walks the waiting queue, so a month-long pinned-HPA cell
// must not tick every 5 s.
func (c IOScaleConfig) sampleEvery(expected time.Duration) time.Duration {
	if c.SampleEvery > 0 {
		return c.SampleEvery
	}
	every := expected / 1500
	if every < SampleInterval {
		every = SampleInterval
	}
	return every
}

// IOScaleEHWith runs the sweep with an explicit configuration; tests
// use shrunken fleets and durations.
func IOScaleEHWith(cfg IOScaleConfig) (*IOScaleReport, error) {
	cfg = cfg.withDefaults()
	var cells []ioScaleCell
	for _, w := range cfg.Workers {
		cells = append(cells,
			ioScaleCell{name: fmt.Sprintf("HTA/W=%d", w), hta: true, workers: w},
			ioScaleCell{name: fmt.Sprintf("HPA(%d%%)/W=%d", int(cfg.HPATarget*100), w), workers: w},
		)
	}
	results := make([]*RunResult, len(cells))
	err := Parallel(len(cells), func(i int) error {
		res, err := runIOScaleCell(cfg, cells[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := &IOScaleReport{Config: cfg, Runs: make(map[string]*RunResult, len(cells))}
	for i, cell := range cells {
		res := results[i]
		rep.Runs[cell.name] = res
		scaler := "HTA"
		if !cell.hta {
			scaler = fmt.Sprintf("HPA(%d%%)", int(cfg.HPATarget*100))
		}
		rep.Rows = append(rep.Rows, IOScaleRow{
			Scaler:      scaler,
			Workers:     cell.workers,
			Tasks:       cfg.TasksPerWorker * cell.workers,
			Runtime:     res.Runtime,
			Completed:   res.Completed,
			Submitted:   res.Submitted,
			PeakWorkers: int(res.Workers.Max()),
			AvgMBps:     res.AvgBandwidthMBps,
			Waste:       res.AccumulatedWaste(),
			Shortage:    res.AccumulatedShortage(),
		})
	}
	return rep, nil
}

func runIOScaleCell(cfg IOScaleConfig, cell ioScaleCell) (*RunResult, error) {
	n := cfg.TasksPerWorker * cell.workers
	p := workload.DefaultIOBound()
	p.N = n
	p.ExecMean = cfg.ExecMean
	p.ExecJitter = cfg.ExecJitter
	p.InputMB = cfg.InputMB
	p.OutputMB = cfg.OutputMB
	p.Seed = cfg.Seed
	p.Declared = !cell.hta // HTA measures the category; HPA declares a slot
	wl, err := Flat(p.Specs())
	if err != nil {
		return nil, err
	}
	kube := kubesim.Config{
		InitialNodes:   3,
		MinNodes:       1,
		MaxNodes:       cell.workers,
		ScaleDownDelay: 10 * time.Minute,
		Seed:           cfg.Seed,
	}
	if cell.hta {
		// Saturated waves of node-sized workers plus the autoscaler
		// ramp; the ×4 margin absorbs the transfer-bound tail.
		expected := time.Duration(cfg.TasksPerWorker/3+1)*cfg.ExecMean*4 + time.Hour
		timeout := cfg.Timeout
		if timeout == 0 {
			timeout = expected
		}
		return RunHTA(cell.name, wl, HTAOptions{
			Kube:            kube,
			HTA:             core.Config{MaxWorkers: cell.workers},
			LinkMBps:        cfg.LinkMBps,
			PerTransfer:     cfg.PerTransfer,
			Timeout:         timeout,
			ReferenceLink:   cfg.Reference,
			ReferenceEngine: cfg.ReferenceEngine,
			SampleEvery:     cfg.sampleEvery(expected),
		})
	}
	// The HPA stays pinned at MinReplicas: task CPU (≈15 %) never
	// crosses the target, so the fleet works the whole bag serially,
	// three tasks at a time — expected runtime N×ExecMean/3.
	expected := time.Duration(n/3+1) * cfg.ExecMean
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 2*expected + time.Hour
	}
	return RunHPA(cell.name, wl, HPAOptions{
		Kube:            kube,
		PodResources:    resources.Vector{MilliCPU: 1000, MemoryMB: 1024, DiskMB: 10000},
		InitialReplicas: 3,
		HPA: hpa.Config{
			TargetCPUUtilization: cfg.HPATarget,
			MinReplicas:          3,
			MaxReplicas:          cell.workers,
		},
		LinkMBps:        cfg.LinkMBps,
		PerTransfer:     cfg.PerTransfer,
		Timeout:         timeout,
		ReferenceLink:   cfg.Reference,
		ReferenceEngine: cfg.ReferenceEngine,
		SampleEvery:     cfg.sampleEvery(expected),
	})
}

// String renders the E-H summary table.
func (r *IOScaleReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-H — I/O-bound workload at fleet scale (%d MB in / %d MB out per task, %.0f MB/s link, %.0f MB/s per stream)\n",
		int(r.Config.InputMB), int(r.Config.OutputMB), r.Config.LinkMBps, r.Config.PerTransfer)
	fmt.Fprintf(&b, "%-10s %8s %8s %12s %12s %8s %10s %14s %16s\n",
		"Scaler", "Fleet", "Tasks", "Runtime", "Done", "Peak", "AvgMB/s", "Waste", "Shortage")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %8d %8d %11.0fs %6d/%-5d %8d %10.1f %10.0f core-s %10.0f core-s\n",
			row.Scaler, row.Workers, row.Tasks, row.Runtime.Seconds(),
			row.Completed, row.Submitted, row.PeakWorkers, row.AvgMBps, row.Waste, row.Shortage)
	}
	return b.String()
}
