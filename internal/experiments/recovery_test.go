package experiments

import (
	"strings"
	"testing"
	"time"
)

// smallRecoveryCfg shrinks E-G to test scale: a 40/8/32-task
// multistage workflow, one mid-run restart per component.
func smallRecoveryCfg(seed int64) RecoveryEGConfig {
	cfg := DefaultRecoveryEGConfig(seed)
	cfg.Stages = [3]int{40, 8, 32}
	cfg.KillCounts = []int{1}
	return cfg
}

func TestRecoveryEGDeterministic(t *testing.T) {
	a, err := RecoveryEGWith(smallRecoveryCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RecoveryEGWith(smallRecoveryCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	// The contract: a fixed seed reproduces the whole crash/restore
	// schedule and therefore the report, byte for byte, even though
	// the cells ran on their own goroutines.
	if a.String() != b.String() {
		t.Errorf("same seed produced different reports:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

func TestRecoveryEGInvariantsAndOverhead(t *testing.T) {
	rep, err := RecoveryEGWith(smallRecoveryCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (baseline + 3 components)", len(rep.Rows))
	}
	total := 40 + 8 + 32
	for _, row := range rep.Rows {
		// Accounting invariant: every task the master accepted either
		// completed or was quarantined — no task lost to a component
		// crash, none executed twice under two IDs.
		if row.Submitted != row.Completed+row.Quarantined {
			t.Errorf("%s: submitted %d != completed %d + quarantined %d",
				row.Component, row.Submitted, row.Completed, row.Quarantined)
		}
		// The full DAG completes despite the mid-run restart.
		if row.Completed < total {
			t.Errorf("%s: completed %d < workflow size %d", row.Component, row.Completed, total)
		}
		if row.Quarantined != 0 {
			t.Errorf("%s: %d tasks quarantined by a control-plane restart", row.Component, row.Quarantined)
		}
		if row.Component == "none" {
			if row.Kills != 0 || row.OverheadPct != 0 {
				t.Errorf("baseline row carries kills=%d overhead=%.1f%%", row.Kills, row.OverheadPct)
			}
			continue
		}
		if row.Kills != row.Planned {
			t.Errorf("%s: delivered %d of %d planned kills", row.Component, row.Kills, row.Planned)
		}
		// Acceptance bar: a single mid-run restart costs at most 15%
		// of the no-crash makespan.
		if row.Planned == 1 && row.OverheadPct > 15 {
			t.Errorf("%s: single-restart overhead %.1f%% > 15%%", row.Component, row.OverheadPct)
		}
		if row.Goodput <= 0 || row.Goodput > 1 {
			t.Errorf("%s: goodput = %.3f, want (0, 1]", row.Component, row.Goodput)
		}
	}
}

func TestRecoveryEGRecoveryMachineryExercised(t *testing.T) {
	rep, err := RecoveryEGWith(smallRecoveryCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string]RecoveryRow, len(rep.Rows))
	for _, row := range rep.Rows {
		rows[row.Component] = row
	}
	// A makeflow restart replays its journal and skips completed rules
	// instead of re-running them.
	mf := rows["makeflow"]
	if mf.Replayed == 0 {
		t.Errorf("makeflow restart replayed no journal records: %+v", mf)
	}
	if mf.Skipped == 0 {
		t.Errorf("makeflow restart re-ran every rule (skipped = 0): %+v", mf)
	}
	// A master restart with the whole fleet reattaching rescues the
	// in-flight attempts rather than redispatching them.
	ms := rows["master"]
	if ms.Rescued == 0 && ms.Requeued == 0 {
		t.Errorf("master restart neither rescued nor requeued anything: %+v", ms)
	}
	// Runtime report mentions every component.
	s := rep.String()
	for _, want := range []string{"none", "makeflow", "master", "operator"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q row:\n%s", want, s)
		}
	}
}

func TestRecoveryEGConfigDefaults(t *testing.T) {
	cfg := RecoveryEGConfig{Seed: 1}.withDefaults()
	if cfg.Downtime != 15*time.Second || cfg.RescueWindow != 30*time.Second {
		t.Errorf("defaults = %v/%v", cfg.Downtime, cfg.RescueWindow)
	}
	if len(cfg.KillCounts) == 0 || cfg.Timeout == 0 {
		t.Errorf("defaults missing kill counts or timeout: %+v", cfg)
	}
}

func BenchmarkRecoveryEG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := RecoveryEG(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 7 {
			b.Fatalf("rows = %d, want 7", len(rep.Rows))
		}
	}
}
