package experiments

import (
	"fmt"
	"testing"
	"time"

	"hta/internal/core"
	"hta/internal/kubesim"
	"hta/internal/workload"
)

// TestStreamEISmoke runs the compressed E-I twice and pins the
// acceptance properties: determinism under seed, the open-system
// accounting invariant (checked inside StreamEIWith), the admission
// cap bounding every cell's peak queue depth, and the panic cell
// beating plain HTA's sojourn tail without out-thrashing HPA.
func TestStreamEISmoke(t *testing.T) {
	cfg := SmokeStreamEIConfig(5)
	rep, err := StreamEIWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := StreamEIWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rep.Rows) != fmt.Sprint(again.Rows) {
		t.Fatalf("E-I not deterministic under seed:\n%v\n%v", rep.Rows, again.Rows)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rep.Rows))
	}

	rows := make(map[string]StreamEIRow, len(rep.Rows))
	for _, row := range rep.Rows {
		rows[row.Autoscaler] = row
	}
	hpaRow, hta, panicRow := rows["HPA"], rows["HTA"], rows["HTA-panic"]

	for name, run := range rep.Runs {
		if run.Overload.PeakWaiting > cfg.Admission.MaxWaiting {
			t.Errorf("%s peak waiting %d exceeds admission cap %d",
				name, run.Overload.PeakWaiting, cfg.Admission.MaxWaiting)
		}
	}
	if panicRow.Panics == 0 {
		t.Error("panic cell fired no panics on the spike trace")
	}
	if panicRow.P99 >= hta.P99 {
		t.Errorf("HTA-panic p99 %v not below plain HTA %v", panicRow.P99, hta.P99)
	}
	if panicRow.Actions > hpaRow.Actions {
		t.Errorf("HTA-panic actions %d exceed HPA's %d", panicRow.Actions, hpaRow.Actions)
	}
	if hta.Shed == 0 && panicRow.Shed == 0 && hpaRow.Shed == 0 {
		t.Error("no cell shed anything: the spike never hit the admission cap")
	}
	if got := rep.String(); len(got) == 0 {
		t.Error("empty report")
	}
}

// TestWorkflowStreamDriver: whole DAGs arriving over time at one
// long-lived master all run to completion, deterministically.
func TestWorkflowStreamDriver(t *testing.T) {
	p := workload.WorkflowStreamParams{
		Stream: workload.StreamParams{
			Window:     30 * time.Minute,
			BasePerMin: 0.5,
			Category:   "wf",
			Exec:       90 * time.Second,
			Jitter:     0.1,
			CPUMilli:   870,
			MemMB:      1024,
			Seed:       11,
		},
		TasksPerWorkflow: 10,
		SizeJitter:       0.2,
	}
	wfs := p.Workflows()
	if len(wfs) == 0 {
		t.Fatal("no workflows generated")
	}
	total := 0
	for _, wf := range wfs {
		total += len(wf.Tasks)
	}
	run := func() *RunResult {
		res, err := RunHTAWorkflowStream("wf-stream", wfs, HTAOptions{
			Kube:    kubesim.Config{InitialNodes: 2, MinNodes: 1, MaxNodes: 10, Seed: 11},
			HTA:     core.Config{MaxWorkers: 10},
			Timeout: 6 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Completed != total || res.Submitted != total {
		t.Fatalf("completed %d / submitted %d, want %d (all workflow tasks)", res.Completed, res.Submitted, total)
	}
	if res.Shed != 0 {
		t.Fatalf("workflow driver shed %d tasks without an admission policy", res.Shed)
	}
	if again := run(); again.Runtime != res.Runtime || again.Completed != res.Completed {
		t.Fatalf("workflow stream not deterministic: %v/%d vs %v/%d",
			res.Runtime, res.Completed, again.Runtime, again.Completed)
	}
}

// BenchmarkStreamEI runs the compressed open-system E-I — three
// autoscaler cells over the two-hour spike trace — per iteration, the
// wall-clock guard for the streaming stack.
func BenchmarkStreamEI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := StreamEIWith(SmokeStreamEIConfig(5))
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 3 {
			b.Fatalf("rows = %d, want 3", len(rep.Rows))
		}
	}
}
