package experiments

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/core"
	"hta/internal/kubesim"
	"hta/internal/simclock"
)

// Fig6Report reproduces Fig. 6: the resource-initialization latency
// of the cluster manager, measured by repeatedly creating a pod whose
// requirements no existing node can satisfy and timing creation →
// Running through the informer's lifecycle events. The paper measured
// mean 157.4 s with standard deviation 4.2 s over 10 runs on GKE.
type Fig6Report struct {
	Samples []time.Duration
	MeanSec float64
	StdSec  float64
}

// Fig6 runs the probe experiment.
func Fig6(runs int, seed int64) (*Fig6Report, error) {
	if runs <= 0 {
		runs = 10
	}
	eng := simclock.NewEngine(SimStart)
	cluster := kubesim.NewCluster(eng, kubesim.Config{
		InitialNodes: 1,
		MaxNodes:     runs + 2,
		Seed:         seed,
	})
	defer cluster.Stop()
	tracker := core.NewLifecycleTracker(cluster, nil, 0)

	nodeSized := cluster.Config().NodeAllocatable
	for i := 0; i < runs+1; i++ {
		name := fmt.Sprintf("probe-%d", i)
		if _, err := cluster.CreatePod(kubesim.PodSpec{
			Name:      name,
			Image:     "wq-worker",
			Resources: nodeSized,
		}); err != nil {
			return nil, err
		}
		// Each probe pins its node forever, so the next probe forces
		// fresh provisioning. Wait for it to start.
		started := false
		cluster.OnPod(func(ev kubesim.PodWatchEvent) {
			if ev.Pod.Name == name && ev.Reason == kubesim.ReasonStarted {
				started = true
			}
		})
		deadline := eng.Now().Add(10 * time.Minute)
		eng.RunWhile(func() bool { return !started && eng.Now().Before(deadline) })
		if !started {
			return nil, fmt.Errorf("experiments: probe %d never started", i)
		}
	}
	samples := tracker.Samples()
	if len(samples) != runs {
		return nil, fmt.Errorf("experiments: measured %d cold starts, want %d", len(samples), runs)
	}
	mean, std := tracker.MeanStd()
	return &Fig6Report{Samples: samples, MeanSec: mean, StdSec: std}, nil
}

// String renders the samples and summary statistics.
func (r *Fig6Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — resource initialization latency (%d probes)\n", len(r.Samples))
	for i, s := range r.Samples {
		fmt.Fprintf(&b, "  run %2d: %6.1fs\n", i+1, s.Seconds())
	}
	fmt.Fprintf(&b, "mean %.1fs  std %.1fs  (paper: 157.4s / 4.2s)\n", r.MeanSec, r.StdSec)
	return b.String()
}
