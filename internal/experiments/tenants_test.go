package experiments

import (
	"reflect"
	"testing"
)

// TestTenantsEJSmoke runs the compressed E-J twice at the same seed:
// the reports must be byte-identical (the CI determinism gate), the
// books must balance, and the headline ordering — fair share at least
// as fair as the single shared autoscaler — must hold.
func TestTenantsEJSmoke(t *testing.T) {
	rep1, err := TenantsEJWith(SmokeTenantsEJConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := TenantsEJWith(SmokeTenantsEJConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("E-J not deterministic at seed 42:\n%v\nvs\n%v", rep1, rep2)
	}
	byPolicy := map[string]TenantsEJRow{}
	for _, row := range rep1.Rows {
		byPolicy[row.Policy] = row
		if row.Completed+row.Shed != row.Submitted {
			t.Errorf("%s: completed %d + shed %d != submitted %d", row.Policy, row.Completed, row.Shed, row.Submitted)
		}
		if row.Jain <= 0 || row.Jain > 1 {
			t.Errorf("%s: Jain index %v out of (0, 1]", row.Policy, row.Jain)
		}
		if row.Utilization <= 0 || row.Utilization > 1 {
			t.Errorf("%s: utilization %v out of (0, 1]", row.Policy, row.Utilization)
		}
		if row.Cycles == 0 || row.PodsCreated == 0 {
			t.Errorf("%s: arbiter idle: %+v", row.Policy, row)
		}
	}
	fair, shared := byPolicy["fair-share"], byPolicy["shared"]
	if fair.Jain < shared.Jain {
		t.Errorf("fair-share Jain %v below shared-autoscaler baseline %v", fair.Jain, shared.Jain)
	}
	// The incremental arbiter's whole point: digest work per cycle is
	// far below T.
	if fair.ReplansPerCycle() >= float64(fair.Tenants) {
		t.Errorf("fair-share replans/cycle %v not amortized below T=%d", fair.ReplansPerCycle(), fair.Tenants)
	}
}

// TestTenantsEJSeedsDiffer guards against the report being constant.
func TestTenantsEJSeedsDiffer(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep1, err := TenantsEJWith(SmokeTenantsEJConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := TenantsEJWith(SmokeTenantsEJConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(rep1.Rows, rep2.Rows) {
		t.Fatal("different seeds produced identical E-J rows")
	}
}
