package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hta/internal/metrics"
)

// WriteRunCSV dumps one run's supply/demand series as an aligned-
// column CSV (the data behind a Fig. 10b/11b panel).
func WriteRunCSV(path string, run *RunResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	series := []*metrics.Series{
		run.Account.Supply, run.Account.InUse,
		run.Account.Shortage, run.Account.Waste,
		run.Workers, run.IdleWorkers, run.Ideal,
	}
	if run.Desired.Len() > 0 {
		series = append(series, run.Desired)
	}
	if run.Nodes.Len() > 0 {
		series = append(series, run.Nodes)
	}
	for _, s := range sortedCategorySeries(run) {
		series = append(series, s)
	}
	return metrics.WriteCSVColumns(f, run.Start, series...)
}

func sortedCategorySeries(run *RunResult) []*metrics.Series {
	if run.CategoryOutstanding == nil {
		return nil
	}
	names := make([]string, 0, len(run.CategoryOutstanding))
	for name := range run.CategoryOutstanding {
		names = append(names, name)
	}
	// Deterministic column order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	out := make([]*metrics.Series, 0, len(names))
	for _, n := range names {
		out = append(out, run.CategoryOutstanding[n])
	}
	return out
}

// csvName sanitizes a run name into a file stem.
func csvName(prefix, runName string) string {
	repl := strings.NewReplacer("(", "", ")", "", "%", "", " ", "_", "/", "-")
	return prefix + "_" + strings.ToLower(repl.Replace(runName)) + ".csv"
}

func writeRunsCSV(dir, prefix string, runs map[string]*RunResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, run := range runs {
		if err := WriteRunCSV(filepath.Join(dir, csvName(prefix, name)), run); err != nil {
			return fmt.Errorf("export %s/%s: %w", prefix, name, err)
		}
	}
	return nil
}

// WriteCSVs exports every run of the report into dir.
func (r *Fig2Report) WriteCSVs(dir string) error {
	runs := make(map[string]*RunResult, len(r.Runs)+1)
	for k, v := range r.Runs {
		runs[k] = v
	}
	runs["ideal"] = r.Ideal
	return writeRunsCSV(dir, "fig2", runs)
}

// WriteCSVs exports every run of the report into dir.
func (r *Fig4Report) WriteCSVs(dir string) error { return writeRunsCSV(dir, "fig4", r.Runs) }

// WriteCSVs exports every run of the report into dir.
func (r *Fig10Report) WriteCSVs(dir string) error { return writeRunsCSV(dir, "fig10", r.Runs) }

// WriteCSVs exports every run of the report into dir.
func (r *Fig11Report) WriteCSVs(dir string) error { return writeRunsCSV(dir, "fig11", r.Runs) }
