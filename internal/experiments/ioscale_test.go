package experiments

import (
	"testing"
	"time"
)

// ioScaleSmall is a shrunken E-H configuration: same cell structure
// (HTA and pinned-HPA per fleet size), fleets small enough that a
// cell runs in milliseconds.
func ioScaleSmall() IOScaleConfig {
	return IOScaleConfig{
		Workers:        []int{3, 6},
		TasksPerWorker: 2,
		ExecMean:       10 * time.Second,
		ExecJitter:     0.10,
		InputMB:        5,
		OutputMB:       1,
		LinkMBps:       200,
		PerTransfer:    50,
		Seed:           7,
	}
}

func TestIOScaleSmallDeterministic(t *testing.T) {
	first, err := IOScaleEHWith(ioScaleSmall())
	if err != nil {
		t.Fatalf("IOScaleEHWith: %v", err)
	}
	if len(first.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(first.Rows))
	}
	for _, row := range first.Rows {
		if row.Completed != row.Tasks || row.Submitted != row.Tasks {
			t.Errorf("%s/W=%d: completed %d submitted %d, want %d",
				row.Scaler, row.Workers, row.Completed, row.Submitted, row.Tasks)
		}
		if row.Runtime <= 0 {
			t.Errorf("%s/W=%d: runtime %v", row.Scaler, row.Workers, row.Runtime)
		}
		if row.AvgMBps <= 0 {
			t.Errorf("%s/W=%d: no link traffic recorded", row.Scaler, row.Workers)
		}
	}
	second, err := IOScaleEHWith(ioScaleSmall())
	if err != nil {
		t.Fatalf("IOScaleEHWith (second): %v", err)
	}
	if first.String() != second.String() {
		t.Errorf("E-H not deterministic:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestIOScaleReferenceLinkIdentical runs the small sweep through both
// netsim implementations. The rendered reports must be byte-identical
// and the raw rows must agree structurally; runtimes carry the same
// ±1 ns-per-completion budget as the netsim differential suite (the
// reference accumulates remaining bytes incrementally, so its
// ceil-to-ns completion instants can flip by one nanosecond — see
// internal/netsim/differential_test.go).
func TestIOScaleReferenceLinkIdentical(t *testing.T) {
	indexed, err := IOScaleEHWith(ioScaleSmall())
	if err != nil {
		t.Fatalf("indexed: %v", err)
	}
	refCfg := ioScaleSmall()
	refCfg.Reference = true
	reference, err := IOScaleEHWith(refCfg)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if got, want := reference.String(), indexed.String(); got != want {
		t.Errorf("reference diverges from indexed:\n--- indexed ---\n%s\n--- reference ---\n%s", want, got)
	}
	for i := range indexed.Rows {
		a, b := indexed.Rows[i], reference.Rows[i]
		if a.Completed != b.Completed || a.Submitted != b.Submitted || a.PeakWorkers != b.PeakWorkers {
			t.Errorf("row %d: indexed %+v, reference %+v", i, a, b)
		}
		budget := time.Duration(a.Completed + 1) // 1 ns per completion
		if diff := a.Runtime - b.Runtime; diff < -budget || diff > budget {
			t.Errorf("row %d: runtime indexed %v, reference %v (budget %v)", i, a.Runtime, b.Runtime, budget)
		}
		if a.AvgMBps != 0 && abs(a.AvgMBps-b.AvgMBps)/a.AvgMBps > 1e-6 {
			t.Errorf("row %d: bandwidth indexed %v, reference %v", i, a.AvgMBps, b.AvgMBps)
		}
	}
}

// TestIOScaleReferenceEngineIdentical runs the small sweep with every
// cell's event core swapped for the retained container/heap engine.
// Unlike the link differential there is no rounding budget: the two
// engines promise identical firing order, so the rendered reports
// must be byte-identical.
func TestIOScaleReferenceEngineIdentical(t *testing.T) {
	indexed, err := IOScaleEHWith(ioScaleSmall())
	if err != nil {
		t.Fatalf("indexed: %v", err)
	}
	refCfg := ioScaleSmall()
	refCfg.ReferenceEngine = true
	reference, err := IOScaleEHWith(refCfg)
	if err != nil {
		t.Fatalf("reference engine: %v", err)
	}
	if got, want := reference.String(), indexed.String(); got != want {
		t.Errorf("reference engine diverges from indexed:\n--- indexed ---\n%s\n--- reference ---\n%s", want, got)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
