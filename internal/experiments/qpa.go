package experiments

import (
	"fmt"
	"time"

	"hta/internal/bind"
	"hta/internal/chaos"
	"hta/internal/core"
	"hta/internal/flow"
	"hta/internal/kubesim"
	"hta/internal/qpa"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/workload"
	"hta/internal/wq"
)

// QPAOptions configures a queue-proportional (KEDA-style) baseline
// run: node-sized worker pods scaled to ceil(queue / TasksPerWorker).
type QPAOptions struct {
	Kube            kubesim.Config
	QPA             qpa.Config
	PodResources    resources.Vector // default: node-sized
	InitialReplicas int
	Timeout         time.Duration
	// Retry is the master's recovery policy.
	Retry wq.RetryPolicy
	// Chaos, when set and enabled, injects faults into the run.
	Chaos *chaos.Plan
}

// RunQPA executes the workload under the queue-proportional scaler.
func RunQPA(name string, wl Workload, opt QPAOptions) (*RunResult, error) {
	if opt.Timeout == 0 {
		opt.Timeout = 24 * time.Hour
	}
	eng := simclock.NewEngine(SimStart)
	if opt.Kube.Seed == 0 {
		opt.Kube.Seed = 1
	}
	cluster := kubesim.NewCluster(eng, opt.Kube)
	defer cluster.Stop()
	if opt.PodResources.IsZero() {
		opt.PodResources = cluster.Config().NodeAllocatable
	}
	master := wq.NewMaster(eng, nil)
	master.SetRetryPolicy(opt.Retry)
	binder := bind.Workers(cluster, master, map[string]string{"app": "wq-worker"})
	inj := attachChaos(eng, opt.Chaos, cluster, master, nil)

	template := kubesim.PodSpec{
		Image:     "wq-worker",
		Resources: opt.PodResources,
		Labels:    map[string]string{"app": "wq-worker"},
	}
	ws := kubesim.NewWorkerSet(cluster, "wq-workers", template, opt.InitialReplicas)
	defer ws.Stop()
	ctrl := qpa.New(cluster, ws, master, opt.QPA)
	defer ctrl.Stop()

	sm := newSampler(master, cluster, opt.QPA.MaxReplicas)
	sm.desiredFn = func() int { return ctrl.LastDesired }
	sm.quotaCores = float64(cluster.Config().MaxNodes) * cluster.Config().NodeAllocatable.CoresValue()
	ticker := eng.Every(SampleInterval, "sampler", func() { sm.sample(eng.Now()) })
	defer ticker.Stop()

	res := &RunResult{Name: name, Start: eng.Now()}
	countRequeues(master, res)
	runner := flow.NewRunner(wl.Graph, master, wl.Spec)
	finished := false
	runner.OnAllDone(func() {
		res.End = eng.Now()
		res.Runtime = eng.Elapsed()
		finished = true
	})
	sm.sample(eng.Now())
	runner.Start()
	deadline := SimStart.Add(opt.Timeout)
	eng.RunWhile(func() bool { return !finished && eng.Now().Before(deadline) })
	if !finished {
		return nil, &ErrTimeout{Name: name, Deadline: opt.Timeout, Stats: master.Stats()}
	}
	if err := runner.Err(); err != nil {
		return nil, err
	}
	if err := binder.Err(); err != nil {
		return nil, err
	}
	res.Completed = master.CompletedCount()
	captureFailures(res, master, inj)
	sm.finish(res)
	return res, nil
}

// AblationQueueScalerReport (A4) compares a KEDA-style
// queue-proportional scaler against HTA on the multistage workflow.
// The queue scaler knows the queue length (more than the HPA does)
// but neither per-category resource consumption nor the cluster's
// initialization time, and its scale-downs delete pods rather than
// draining them: it matches HTA's makespan by holding peak capacity
// through the stage dips, at the cost of HPA-like waste, and every
// WorkerSet shrink under load re-runs interrupted tasks.
type AblationQueueScalerReport struct {
	QPA  SummaryRow
	HTA  SummaryRow
	Runs map[string]*RunResult
	// QPARequeues counts task attempts beyond the first in the QPA
	// run — work lost to WorkerSet pod deletions.
	QPARequeues int
}

// AblationQueueScaler runs A4; the two scalers run concurrently.
func AblationQueueScaler(seed int64) (*AblationQueueScalerReport, error) {
	results := make([]*RunResult, 2)
	err := Parallel(len(results), func(i int) error {
		p := workload.DefaultMultistage()
		p.Seed = seed
		if i == 0 {
			p.Declared = true
			g, spec, err := p.Build()
			if err != nil {
				return err
			}
			results[i], err = RunQPA("QPA (queue/3)", Workload{Graph: g, Spec: spec}, QPAOptions{
				Kube:            fig10Kube(seed),
				InitialReplicas: 3,
				QPA: qpa.Config{
					TasksPerWorker: 3, // node-sized workers hold 3 one-core tasks
					MaxReplicas:    20,
				},
				Timeout: fig10Timeout,
			})
			return err
		}
		g, spec, err := p.Build()
		if err != nil {
			return err
		}
		results[i], err = RunHTA("HTA", Workload{Graph: g, Spec: spec}, HTAOptions{
			Kube:    fig10Kube(seed),
			HTA:     core.Config{MaxWorkers: 20},
			Timeout: fig10Timeout,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	rep := &AblationQueueScalerReport{Runs: make(map[string]*RunResult)}
	qpaRes, htaRes := results[0], results[1]
	rep.Runs[qpaRes.Name] = qpaRes
	rep.QPA = summaryRow(qpaRes.Name, qpaRes)
	rep.QPARequeues = qpaRes.Requeues
	rep.Runs["HTA"] = htaRes
	rep.HTA = summaryRow("HTA", htaRes)
	return rep, nil
}

// String renders the comparison.
func (r *AblationQueueScalerReport) String() string {
	s := summaryTable("Ablation A4 — queue-proportional (KEDA-style) scaler vs HTA (multistage BLAST)",
		[]SummaryRow{r.QPA, r.HTA})
	return s + fmt.Sprintf("QPA interrupted and re-ran %d task dispatches; HTA drains and re-ran %d.\n",
		r.QPARequeues, r.Runs["HTA"].Requeues)
}
