// Package experiments contains one runner per table and figure of the
// paper's evaluation, built on the simulated stack: Fig. 2 (HPA
// target-CPU sweep), Fig. 4 (worker-pod sizing), Fig. 6
// (resource-initialization latency), Fig. 10 (multistage BLAST
// supply/demand and summary table), Fig. 11 (I/O-bound workload), and
// the ablations called out in DESIGN.md. Each runner returns a report
// struct that prints the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"time"

	"hta/internal/bind"
	"hta/internal/chaos"
	"hta/internal/core"
	"hta/internal/dag"
	"hta/internal/flow"
	"hta/internal/hpa"
	"hta/internal/kubesim"
	"hta/internal/metrics"
	"hta/internal/netsim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// SimStart is the virtual epoch of every experiment.
var SimStart = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

// SampleInterval is the metrics sampling period.
const SampleInterval = 5 * time.Second

// Workload is a DAG plus its task-spec mapping.
type Workload struct {
	Graph *dag.Graph
	Spec  flow.SpecFunc
}

// Flat wraps a bag of independent tasks as a Workload.
func Flat(specs []wq.TaskSpec) (Workload, error) {
	g, fn, err := flow.FromSpecs(specs)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Graph: g, Spec: fn}, nil
}

// RunResult captures one scenario execution.
type RunResult struct {
	Name    string
	Runtime time.Duration
	Start   time.Time
	End     time.Time

	Account     *metrics.Account
	Workers     *metrics.Series // connected workers
	IdleWorkers *metrics.Series
	Desired     *metrics.Series // autoscaler's desired worker count
	Ideal       *metrics.Series // workers an omniscient autoscaler would hold
	Nodes       *metrics.Series // ready cluster nodes

	AvgBandwidthMBps float64
	MeanCPUUtil      float64 // time-weighted busy-CPU / capacity
	InitSamples      []time.Duration
	Completed        int
	// Submitted is the total number of tasks the master accepted
	// (accounting invariant: Submitted = Completed + Quarantined for
	// runs that finish).
	Submitted int
	// Requeues counts dispatch attempts beyond each task's first —
	// work lost to killed workers.
	Requeues int

	// Failures aggregates the master's failure/recovery counters
	// (kills, requeues, fast-aborts, quarantines, lost core·s).
	Failures wq.FailureStats
	// Chaos counts the faults the injector delivered (zero value when
	// the run had no fault plan).
	Chaos chaos.Stats
	// Recovery aggregates crash/recovery activity: the master's
	// task-level counters (rescues, fences, unrescued requeues) plus,
	// for runs with control-plane kills, the harness's restart and
	// replay counters.
	Recovery metrics.RecoveryCounters

	// Overload aggregates the master's admission-control counters
	// (zero when no admission policy was configured).
	Overload metrics.OverloadCounters
	// Shed counts submissions rejected at the admission hard cap.
	Shed int
	// SojournP50/P99 are quantiles of completed-task sojourn time
	// (master submission to completion), set by the stream runners.
	SojournP50 time.Duration
	SojournP99 time.Duration
	// ScalingActions counts applied fleet resizes: HTA decisions with
	// a nonzero change (panic decisions included), HPA replica
	// changes.
	ScalingActions int
	// Panics counts HTA panic-path scale-ups (zero for other
	// scalers and for HTA with the panic policy disabled).
	Panics int

	// CategoryOutstanding tracks waiting+running tasks per category
	// over time (Fig. 10a's stage profile), when requested.
	CategoryOutstanding map[string]*metrics.Series
}

// AccumulatedWaste returns ∫RW dt over the runtime in core·s.
func (r *RunResult) AccumulatedWaste() float64 { return r.Account.AccumulatedWaste(r.End) }

// AccumulatedShortage returns ∫RSH dt over the runtime in core·s.
func (r *RunResult) AccumulatedShortage() float64 { return r.Account.AccumulatedShortage(r.End) }

// sampler periodically records the supply/demand state of a run.
type sampler struct {
	acct      *metrics.Account
	workers   *metrics.Series
	idle      *metrics.Series
	desired   *metrics.Series
	ideal     *metrics.Series
	nodes     *metrics.Series
	busyCPU   *metrics.Series
	capCPU    *metrics.Series
	maxIdeal  int
	master    *wq.Master
	cluster   *kubesim.Cluster // may be nil (static runs)
	estimator wq.Estimator     // may be nil
	heldFn    func() int       // may be nil
	desiredFn func() int       // may be nil
	byCat     map[string]*metrics.Series
	catCounts map[string]int // reused across ticks
	// quotaCores bounds the reported shortage: RSH is the supply
	// deficit the cluster could still close, min(queue demand,
	// quota − supply). 0 = unbounded.
	quotaCores float64
}

func newSampler(master *wq.Master, cluster *kubesim.Cluster, maxIdeal int) *sampler {
	return &sampler{
		acct:     metrics.NewAccount(),
		workers:  metrics.NewSeries("workers"),
		idle:     metrics.NewSeries("idle"),
		desired:  metrics.NewSeries("desired"),
		ideal:    metrics.NewSeries("ideal"),
		nodes:    metrics.NewSeries("nodes"),
		busyCPU:  metrics.NewSeries("busy-cpu"),
		capCPU:   metrics.NewSeries("cap-cpu"),
		maxIdeal: maxIdeal,
		master:   master,
		cluster:  cluster,
	}
}

// trackCategories enables per-category outstanding-task series.
func (sm *sampler) trackCategories(cats []string) {
	sm.byCat = make(map[string]*metrics.Series, len(cats))
	sm.catCounts = make(map[string]int, len(cats))
	for _, c := range cats {
		sm.byCat[c] = metrics.NewSeries(c)
	}
}

func (sm *sampler) sample(now time.Time) {
	s := sm.master.Stats()
	supply := s.Capacity.CoresValue()
	inUse := s.InUse.CoresValue()
	shortage := sm.shortageCores()
	if sm.heldFn != nil {
		shortage += float64(sm.heldFn())
	}
	if sm.quotaCores > 0 {
		if gap := sm.quotaCores - supply; shortage > gap {
			shortage = gap
		}
		if shortage < 0 {
			shortage = 0
		}
	}
	sm.acct.Sample(now, supply, inUse, shortage)
	sm.workers.Add(now, float64(s.Workers))
	sm.idle.Add(now, float64(s.IdleWorkers))
	if sm.desiredFn != nil {
		sm.desired.Add(now, float64(sm.desiredFn()))
	}
	outstanding := s.Waiting + s.Running
	if sm.heldFn != nil {
		outstanding += sm.heldFn()
	}
	ideal := outstanding
	if sm.maxIdeal > 0 && ideal > sm.maxIdeal {
		ideal = sm.maxIdeal
	}
	sm.ideal.Add(now, float64(ideal))
	if sm.cluster != nil {
		sm.nodes.Add(now, float64(sm.cluster.ReadyNodes()))
	}
	sm.busyCPU.Add(now, float64(sm.master.BusyCPU())/1000)
	sm.capCPU.Add(now, supply)
	if sm.byCat != nil {
		counts := sm.catCounts
		for cat := range counts {
			delete(counts, cat)
		}
		sm.master.ForEachWaiting(func(t *wq.Task) { counts[t.Category]++ })
		sm.master.ForEachRunning(func(t *wq.Task) { counts[t.Category]++ })
		for cat, series := range sm.byCat {
			series.Add(now, float64(counts[cat]))
		}
	}
}

func (sm *sampler) finish(r *RunResult) {
	r.Account = sm.acct
	r.Workers = sm.workers
	r.IdleWorkers = sm.idle
	r.Desired = sm.desired
	r.Ideal = sm.ideal
	r.Nodes = sm.nodes
	capInt := sm.capCPU.IntegralUntil(r.End)
	if capInt > 0 {
		r.MeanCPUUtil = sm.busyCPU.IntegralUntil(r.End) / capInt
	}
	if sm.byCat != nil {
		r.CategoryOutstanding = sm.byCat
	}
}

// shortageCores estimates the cores desired by the waiting queue: the
// declared requirement, the category estimate, or one processor slot
// as the floor. It iterates the queue in place — the sum is an
// integer in millicores, so the visit order cannot perturb the
// result — instead of materializing a task-copy slice every tick.
func (sm *sampler) shortageCores() float64 {
	var milli int64
	sm.master.ForEachWaiting(func(t *wq.Task) {
		if !t.Resources.IsZero() {
			milli += t.Resources.MilliCPU
			return
		}
		if sm.estimator != nil {
			if v, ok := sm.estimator.EstimateResources(t.Category); ok && v.MilliCPU > 0 {
				milli += v.MilliCPU
				return
			}
		}
		milli += 1000
	})
	return float64(milli) / 1000
}

// newEngine builds a run's event engine. reference selects the
// retained container/heap core (simclock.NewReferenceEngine) for
// differential experiment runs, mirroring newLink's reference switch.
func newEngine(reference bool) *simclock.Engine {
	if reference {
		return simclock.NewReferenceEngine(SimStart)
	}
	return simclock.NewEngine(SimStart)
}

// newLink builds the master egress link, or nil when mbps is zero.
// reference selects the retained O(n)-per-event link implementation
// (netsim.NewReferenceLink) for differential experiment runs.
func newLink(eng *simclock.Engine, mbps, contention, perTransfer float64, reference bool) *netsim.Link {
	if mbps <= 0 {
		return nil
	}
	var l *netsim.Link
	if reference {
		l = netsim.NewReferenceLink(eng, mbps, perTransfer)
	} else {
		l = netsim.NewLink(eng, mbps, perTransfer)
	}
	if contention > 0 && contention < 1 {
		l.SetContention(contention)
	}
	return l
}

// samplePeriod returns the sampler tick for a run: the experiment's
// override, or the default SampleInterval. Long large-fleet runs
// override it because every tick walks the waiting queue.
func samplePeriod(every time.Duration) time.Duration {
	if every > 0 {
		return every
	}
	return SampleInterval
}

// ErrTimeout reports a scenario that did not finish within its
// simulated deadline.
type ErrTimeout struct {
	Name     string
	Deadline time.Duration
	Stats    wq.Stats
}

func (e *ErrTimeout) Error() string {
	return fmt.Sprintf("experiments: %s did not finish within %v (stats %+v)", e.Name, e.Deadline, e.Stats)
}

// attachChaos arms a fault plan against a run's components, returning
// nil when the plan is absent or injects nothing.
func attachChaos(eng *simclock.Engine, plan *chaos.Plan, cluster *kubesim.Cluster, master *wq.Master, link *netsim.Link) *chaos.Injector {
	if plan == nil || !plan.Enabled() {
		return nil
	}
	inj := chaos.New(eng, *plan)
	if cluster != nil {
		inj.AttachCluster(cluster)
	}
	inj.AttachMaster(master)
	if link != nil {
		inj.AttachLink(link)
	}
	inj.Start()
	return inj
}

// captureFailures copies the run's failure/recovery counters into res.
func captureFailures(res *RunResult, master *wq.Master, inj *chaos.Injector) {
	res.Failures = master.FailureStats()
	res.Submitted = master.SubmittedCount()
	res.Recovery = master.RecoveryStats()
	res.Overload = master.OverloadStats()
	res.Shed = master.ShedCount()
	if inj != nil {
		res.Chaos = inj.Stats()
	}
}

// scaleActions counts the HTA decisions that changed the fleet.
func scaleActions(decs []core.DecisionRecord) int {
	n := 0
	for _, d := range decs {
		if d.ScaleChange != 0 {
			n++
		}
	}
	return n
}

// countRequeues subscribes to the master and accumulates re-dispatch
// counts into res.
func countRequeues(master *wq.Master, res *RunResult) {
	master.OnComplete(func(r wq.Result) {
		if r.Task.Attempts > 1 {
			res.Requeues += r.Task.Attempts - 1
		}
	})
}

// --- HTA scenario ---

// HTAOptions configures an HTA run.
type HTAOptions struct {
	Kube        kubesim.Config
	HTA         core.Config
	LinkMBps    float64
	Contention  float64
	PerTransfer float64
	Timeout     time.Duration // simulated; default 24 h
	// Categories, when set, enables per-category outstanding series.
	Categories []string
	// Policy selects the master's dispatch policy (default FirstFit).
	Policy wq.Policy
	// Retry is the master's recovery policy (zero = infinite retries,
	// no backoff, no fast-abort — the pre-fault-tolerance behavior).
	Retry wq.RetryPolicy
	// Admission bounds the master's waiting queue (zero = unbounded,
	// the classic work queue).
	Admission wq.AdmissionPolicy
	// Chaos, when set and enabled, injects faults into the run.
	Chaos *chaos.Plan
	// ReferenceLink routes the egress link through the retained
	// walk-everything netsim implementation (differential runs).
	ReferenceLink bool
	// ReferenceEngine runs the whole scenario on the retained
	// container/heap event core (differential runs).
	ReferenceEngine bool
	// SampleEvery overrides the sampler period (0 = SampleInterval).
	SampleEvery time.Duration
}

// RunHTA executes the workload through the full HTA stack.
func RunHTA(name string, wl Workload, opt HTAOptions) (*RunResult, error) {
	if opt.Timeout == 0 {
		opt.Timeout = 24 * time.Hour
	}
	eng := newEngine(opt.ReferenceEngine)
	if opt.Kube.Seed == 0 {
		opt.Kube.Seed = 1
	}
	cluster := kubesim.NewCluster(eng, opt.Kube)
	defer cluster.Stop()
	link := newLink(eng, opt.LinkMBps, opt.Contention, opt.PerTransfer, opt.ReferenceLink)
	master := wq.NewMaster(eng, link)
	master.SetPolicy(opt.Policy)
	master.SetRetryPolicy(opt.Retry)
	master.SetAdmissionPolicy(opt.Admission)
	a := core.New(eng, cluster, master, opt.HTA)
	if err := a.Start(); err != nil {
		return nil, err
	}
	inj := attachChaos(eng, opt.Chaos, cluster, master, link)

	sm := newSampler(master, cluster, a.WorkerPodCount())
	sm.estimator = a.Monitor()
	sm.heldFn = a.HeldTasks
	sm.desiredFn = a.WorkerPodCount
	sm.maxIdeal = opt.Kube.MaxNodes
	sm.quotaCores = float64(cluster.Config().MaxNodes) * cluster.Config().NodeAllocatable.CoresValue()
	if len(opt.Categories) > 0 {
		sm.trackCategories(opt.Categories)
	}
	ticker := eng.Every(samplePeriod(opt.SampleEvery), "sampler", func() { sm.sample(eng.Now()) })
	defer ticker.Stop()

	res := &RunResult{Name: name, Start: eng.Now()}
	countRequeues(master, res)
	runner := flow.NewRunner(wl.Graph, a, wl.Spec)
	finished := false
	runner.OnAllDone(func() {
		res.End = eng.Now()
		res.Runtime = eng.Elapsed()
		a.Shutdown(func() { finished = true })
	})
	sm.sample(eng.Now())
	runner.Start()
	deadline := SimStart.Add(opt.Timeout)
	eng.RunWhile(func() bool { return !finished && eng.Now().Before(deadline) })
	if !finished {
		return nil, &ErrTimeout{Name: name, Deadline: opt.Timeout, Stats: master.Stats()}
	}
	if err := runner.Err(); err != nil {
		return nil, err
	}
	res.Completed = master.CompletedCount()
	res.InitSamples = a.Tracker().Samples()
	res.ScalingActions = scaleActions(a.Decisions)
	res.Panics = a.PanicCount()
	captureFailures(res, master, inj)
	sm.finish(res)
	if link != nil {
		res.AvgBandwidthMBps = link.Stats().AvgBandwidth
	}
	return res, nil
}

// --- HPA scenario ---

// HPAOptions configures a baseline run scaled by the Horizontal Pod
// Autoscaler over a WorkerSet of fixed-size worker pods.
type HPAOptions struct {
	Kube            kubesim.Config
	HPA             hpa.Config
	PodResources    resources.Vector
	InitialReplicas int
	LinkMBps        float64
	Contention      float64
	PerTransfer     float64
	Timeout         time.Duration
	Categories      []string
	// Retry is the master's recovery policy.
	Retry wq.RetryPolicy
	// Admission bounds the master's waiting queue (zero = unbounded).
	Admission wq.AdmissionPolicy
	// Chaos, when set and enabled, injects faults into the run.
	Chaos *chaos.Plan
	// ReferenceLink routes the egress link through the retained
	// walk-everything netsim implementation (differential runs).
	ReferenceLink bool
	// ReferenceEngine runs the whole scenario on the retained
	// container/heap event core (differential runs).
	ReferenceEngine bool
	// SampleEvery overrides the sampler period (0 = SampleInterval).
	SampleEvery time.Duration
}

// RunHPA executes the workload on an HPA-scaled worker fleet.
func RunHPA(name string, wl Workload, opt HPAOptions) (*RunResult, error) {
	if opt.Timeout == 0 {
		opt.Timeout = 24 * time.Hour
	}
	if opt.PodResources.IsZero() {
		opt.PodResources = resources.New(1, 4096, 10000)
	}
	if opt.InitialReplicas == 0 {
		opt.InitialReplicas = 3
	}
	eng := newEngine(opt.ReferenceEngine)
	if opt.Kube.Seed == 0 {
		opt.Kube.Seed = 1
	}
	cluster := kubesim.NewCluster(eng, opt.Kube)
	defer cluster.Stop()
	link := newLink(eng, opt.LinkMBps, opt.Contention, opt.PerTransfer, opt.ReferenceLink)
	master := wq.NewMaster(eng, link)
	master.SetRetryPolicy(opt.Retry)
	master.SetAdmissionPolicy(opt.Admission)
	binder := bind.Workers(cluster, master, map[string]string{"app": "wq-worker"})
	inj := attachChaos(eng, opt.Chaos, cluster, master, link)

	template := kubesim.PodSpec{
		Image:     "wq-worker",
		Resources: opt.PodResources,
		Labels:    map[string]string{"app": "wq-worker"},
	}
	ws := kubesim.NewWorkerSet(cluster, "wq-workers", template, opt.InitialReplicas)
	defer ws.Stop()
	h := hpa.New(cluster, ws, opt.HPA)
	defer h.Stop()

	sm := newSampler(master, cluster, opt.HPA.MaxReplicas)
	sm.desiredFn = func() int { return h.LastDesired }
	sm.quotaCores = float64(cluster.Config().MaxNodes) * cluster.Config().NodeAllocatable.CoresValue()
	if len(opt.Categories) > 0 {
		sm.trackCategories(opt.Categories)
	}
	ticker := eng.Every(samplePeriod(opt.SampleEvery), "sampler", func() { sm.sample(eng.Now()) })
	defer ticker.Stop()

	res := &RunResult{Name: name, Start: eng.Now()}
	countRequeues(master, res)
	runner := flow.NewRunner(wl.Graph, master, wl.Spec)
	finished := false
	runner.OnAllDone(func() {
		res.End = eng.Now()
		res.Runtime = eng.Elapsed()
		finished = true
	})
	sm.sample(eng.Now())
	runner.Start()
	deadline := SimStart.Add(opt.Timeout)
	eng.RunWhile(func() bool { return !finished && eng.Now().Before(deadline) })
	if !finished {
		return nil, &ErrTimeout{Name: name, Deadline: opt.Timeout, Stats: master.Stats()}
	}
	if err := runner.Err(); err != nil {
		return nil, err
	}
	if err := binder.Err(); err != nil {
		return nil, err
	}
	res.Completed = master.CompletedCount()
	res.ScalingActions = h.Actions()
	captureFailures(res, master, inj)
	sm.finish(res)
	if link != nil {
		res.AvgBandwidthMBps = link.Stats().AvgBandwidth
	}
	return res, nil
}

// --- static scenario ---

// StaticOptions configures a fixed worker fleet (no autoscaler, no
// cluster simulation) — the worker-sizing study of Fig. 4 and the
// ideal baseline of Fig. 2.
type StaticOptions struct {
	Workers         int
	WorkerResources resources.Vector
	LinkMBps        float64
	Contention      float64
	PerTransfer     float64
	Timeout         time.Duration
	// Retry is the master's recovery policy.
	Retry wq.RetryPolicy
	// Chaos, when set and enabled, injects worker-crash and egress
	// faults (no cluster exists in a static run).
	Chaos *chaos.Plan
	// ReferenceLink routes the egress link through the retained
	// walk-everything netsim implementation (differential runs).
	ReferenceLink bool
	// ReferenceEngine runs the whole scenario on the retained
	// container/heap event core (differential runs).
	ReferenceEngine bool
	// SampleEvery overrides the sampler period (0 = SampleInterval).
	SampleEvery time.Duration
}

// RunStatic executes the workload on a fixed fleet.
func RunStatic(name string, wl Workload, opt StaticOptions) (*RunResult, error) {
	if opt.Timeout == 0 {
		opt.Timeout = 24 * time.Hour
	}
	eng := newEngine(opt.ReferenceEngine)
	link := newLink(eng, opt.LinkMBps, opt.Contention, opt.PerTransfer, opt.ReferenceLink)
	master := wq.NewMaster(eng, link)
	master.SetRetryPolicy(opt.Retry)
	for i := 0; i < opt.Workers; i++ {
		if err := master.AddWorker(fmt.Sprintf("w%d", i+1), opt.WorkerResources); err != nil {
			return nil, err
		}
	}
	inj := attachChaos(eng, opt.Chaos, nil, master, link)
	sm := newSampler(master, nil, opt.Workers)
	ticker := eng.Every(samplePeriod(opt.SampleEvery), "sampler", func() { sm.sample(eng.Now()) })
	defer ticker.Stop()

	res := &RunResult{Name: name, Start: eng.Now()}
	countRequeues(master, res)
	runner := flow.NewRunner(wl.Graph, master, wl.Spec)
	finished := false
	runner.OnAllDone(func() {
		res.End = eng.Now()
		res.Runtime = eng.Elapsed()
		finished = true
	})
	sm.sample(eng.Now())
	runner.Start()
	deadline := SimStart.Add(opt.Timeout)
	eng.RunWhile(func() bool { return !finished && eng.Now().Before(deadline) })
	if !finished {
		return nil, &ErrTimeout{Name: name, Deadline: opt.Timeout, Stats: master.Stats()}
	}
	if err := runner.Err(); err != nil {
		return nil, err
	}
	res.Completed = master.CompletedCount()
	captureFailures(res, master, inj)
	sm.finish(res)
	if link != nil {
		res.AvgBandwidthMBps = link.Stats().AvgBandwidth
	}
	return res, nil
}
