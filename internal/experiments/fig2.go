package experiments

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/hpa"
	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/workload"
)

// Fig2Report reproduces Fig. 2: the BLAST workload of 200 jobs with
// known requirements under HPA at three target CPU loads, against an
// ideal fixed fleet. The paper's observations: Config-10 and
// Config-50 reach the cluster cap with similar runtimes (1294 s and
// 1304 s), Config-99 never scales up (4682 s), and the ideal
// completion is 240 s.
type Fig2Report struct {
	Rows  []Fig2Row
	Runs  map[string]*RunResult
	Ideal *RunResult
}

// Fig2Row is one HPA configuration's outcome.
type Fig2Row struct {
	Config      string
	Runtime     time.Duration
	MaxWorkers  float64
	MeanCPUUtil float64
}

// Fig2 runs the experiment. Paper setup: cluster scalable to 15
// nodes, 200 parallel BLAST jobs, requirements known in advance. The
// three HPA configurations and the ideal fleet are independent
// simulations and run through the parallel harness; results are
// collected by configuration index, so rows and the report text come
// out in the same order a serial loop produced.
func Fig2(seed int64) (*Fig2Report, error) {
	fig2Workload := func() (Workload, error) {
		p := workload.DefaultBlastFlat(200)
		p.Seed = seed
		// Fig. 2's jobs carry equally sized private inputs; the 1.4 GB
		// cacheable database is Fig. 4's setup.
		p.SharedDBMB = 0
		p.InputMB = 10
		return Flat(p.Specs())
	}
	podRes := resources.Vector{MilliCPU: 1000, MemoryMB: 4096, DiskMB: 20000}
	kube := kubesim.Config{
		InitialNodes:   3,
		MinNodes:       1,
		MaxNodes:       15,
		ScaleDownDelay: 10 * time.Minute,
		Seed:           seed,
	}
	targets := []float64{0.10, 0.50, 0.99}
	results := make([]*RunResult, len(targets)+1)
	err := Parallel(len(results), func(i int) error {
		wl, err := fig2Workload()
		if err != nil {
			return err
		}
		if i == len(targets) {
			// Ideal: all 45 workers present from the start.
			results[i], err = RunStatic("Ideal", wl, StaticOptions{
				Workers:         45,
				WorkerResources: podRes,
				LinkMBps:        workload.MasterEgressMBps,
				Contention:      workload.StreamContention,
			})
			return err
		}
		target := targets[i]
		name := fmt.Sprintf("Config-%d", int(target*100))
		results[i], err = RunHPA(name, wl, HPAOptions{
			Kube:            kube,
			PodResources:    podRes,
			InitialReplicas: 3,
			HPA: hpa.Config{
				TargetCPUUtilization: target,
				MinReplicas:          3,  // the initial fleet is never abandoned
				MaxReplicas:          45, // 15 nodes × 3 pods
			},
			LinkMBps:   workload.MasterEgressMBps,
			Contention: workload.StreamContention,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	rep := &Fig2Report{Runs: make(map[string]*RunResult)}
	for _, res := range results[:len(targets)] {
		rep.Runs[res.Name] = res
		rep.Rows = append(rep.Rows, Fig2Row{
			Config:      res.Name,
			Runtime:     res.Runtime,
			MaxWorkers:  res.Workers.Max(),
			MeanCPUUtil: res.MeanCPUUtil,
		})
	}
	rep.Ideal = results[len(targets)]
	return rep, nil
}

// String renders the paper-style summary plus worker-count series.
func (r *Fig2Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — BLAST under HPA target-CPU sweep (200 jobs, ≤15 nodes)\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %10s\n", "Config", "Runtime", "MaxWorkers", "CPU-Util")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %9.0fs %12.0f %9.1f%%\n",
			row.Config, row.Runtime.Seconds(), row.MaxWorkers, row.MeanCPUUtil*100)
	}
	fmt.Fprintf(&b, "%-12s %9.0fs %12d\n", "Ideal", r.Ideal.Runtime.Seconds(), 45)
	for _, row := range r.Rows {
		run := r.Runs[row.Config]
		fmt.Fprintf(&b, "\n%s — connected workers over time:\n%s", row.Config,
			run.Workers.ASCII(run.End, 10, 40))
	}
	return b.String()
}
