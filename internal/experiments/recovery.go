package experiments

// Experiment E-G: control-plane crash recovery. The multistage BLAST
// workflow runs on the full HTA stack while a seeded Poisson process
// kills one control-plane component — the makeflow engine, the wq
// master, or the autoscaling operator — a fixed number of times
// mid-run, restarting it from its durable state after a short
// downtime. The report measures what the crash-consistency machinery
// costs and saves: makespan overhead versus the no-crash baseline,
// goodput, rescued versus requeued attempts, journal replays, and
// reconcile corrections. The accounting invariant (submitted =
// completed + quarantined) must hold in every cell, and a fixed seed
// reproduces the table byte for byte.

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"hta/internal/chaos"
	"hta/internal/core"
	"hta/internal/flow"
	"hta/internal/kubesim"
	"hta/internal/makeflow"
	"hta/internal/metrics"
	"hta/internal/simclock"
	"hta/internal/workload"
	"hta/internal/wq"
)

// RecoveryEGConfig parameterizes E-G; tests shrink the workload.
type RecoveryEGConfig struct {
	Seed int64
	// Stages overrides the multistage task counts (zero = paper-sized
	// 200/34/164).
	Stages [3]int
	// Retry is the master's recovery policy.
	Retry wq.RetryPolicy
	// KillCounts are the swept mid-run restart counts per component.
	KillCounts []int
	// Downtime is how long a killed component stays down before its
	// restart (default 15 s simulated).
	Downtime time.Duration
	// RescueWindow is how long a restored master waits for workers to
	// reattach before requeueing their running tasks (default 30 s).
	RescueWindow time.Duration
	// Timeout bounds each simulated run.
	Timeout time.Duration
}

// DefaultRecoveryEGConfig is the full-size experiment: paper-sized
// multistage BLAST, one and three mid-run restarts per component.
func DefaultRecoveryEGConfig(seed int64) RecoveryEGConfig {
	return RecoveryEGConfig{
		Seed:       seed,
		KillCounts: []int{1, 3},
		Retry: wq.RetryPolicy{
			MaxAttempts:         8,
			BackoffBase:         5 * time.Second,
			BackoffMax:          60 * time.Second,
			FastAbortMultiplier: 3,
		},
	}
}

func (c RecoveryEGConfig) withDefaults() RecoveryEGConfig {
	if len(c.KillCounts) == 0 {
		c.KillCounts = []int{1, 3}
	}
	if c.Downtime == 0 {
		c.Downtime = 15 * time.Second
	}
	if c.RescueWindow == 0 {
		c.RescueWindow = 30 * time.Second
	}
	if c.Timeout == 0 {
		c.Timeout = fig10Timeout
	}
	return c
}

// RecoveryRow is one (component, kill count) outcome.
type RecoveryRow struct {
	Component   string // "none" = no-crash baseline
	Planned     int    // kills the plan asked for
	Kills       int    // kills actually delivered
	Runtime     time.Duration
	OverheadPct float64 // makespan overhead vs the baseline
	Rescued     int     // running tasks re-adopted from reattaching workers
	Fenced      int     // stale attempts rejected by the generation fence
	Requeued    int     // rescue-window expiries (retried without budget charge)
	Replayed    int     // journal records applied by makeflow restarts
	Skipped     int     // DAG rules recovery completed without re-running
	Corrections int     // reconcile fixes by restarted operator / master-restore
	Requeues    int     // all re-dispatches (includes worker faults)
	Quarantined int
	Submitted   int
	Completed   int
	Goodput     float64
}

// RecoveryEGReport is the E-G result table.
type RecoveryEGReport struct {
	Baseline time.Duration
	Rows     []RecoveryRow
	Runs     map[string]*RunResult
}

var recoveryComponents = []chaos.Component{
	chaos.ComponentMakeflow, chaos.ComponentMaster, chaos.ComponentOperator,
}

// RecoveryEG runs the full-size experiment.
func RecoveryEG(seed int64) (*RecoveryEGReport, error) {
	return RecoveryEGWith(DefaultRecoveryEGConfig(seed))
}

// RecoveryEGWith runs E-G under an explicit configuration: first the
// no-crash baseline (serial — its runtime calibrates every kill
// schedule), then all (component × kill count) cells concurrently.
func RecoveryEGWith(cfg RecoveryEGConfig) (*RecoveryEGReport, error) {
	cfg = cfg.withDefaults()
	baseline, err := recoveryCell("recovery-baseline", cfg, -1, 0, 0)
	if err != nil {
		return nil, err
	}
	rep := &RecoveryEGReport{
		Baseline: baseline.Runtime,
		Runs:     map[string]*RunResult{baseline.Name: baseline},
	}
	rep.Rows = append(rep.Rows, recoveryRowFrom("none", 0, baseline, baseline.Runtime))

	type cell struct {
		comp  chaos.Component
		kills int
	}
	var cells []cell
	for _, comp := range recoveryComponents {
		for _, n := range cfg.KillCounts {
			cells = append(cells, cell{comp, n})
		}
	}
	results := make([]*RunResult, len(cells))
	err = Parallel(len(cells), func(i int) error {
		c := cells[i]
		// Spread the planned kills across the expected run: with mean
		// baseline/(2·(n+1)), all n kills land comfortably mid-workload
		// in expectation rather than piling up at the start or never
		// firing.
		mean := baseline.Runtime / time.Duration(2*(c.kills+1))
		name := fmt.Sprintf("recovery-%s-x%d", c.comp, c.kills)
		var err error
		results[i], err = recoveryCell(name, cfg, c.comp, c.kills, mean)
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		res := results[i]
		rep.Runs[res.Name] = res
		rep.Rows = append(rep.Rows, recoveryRowFrom(c.comp.String(), c.kills, res, baseline.Runtime))
	}
	return rep, nil
}

func recoveryRowFrom(comp string, planned int, res *RunResult, baseline time.Duration) RecoveryRow {
	overhead := 0.0
	if baseline > 0 {
		overhead = (res.Runtime.Seconds() - baseline.Seconds()) / baseline.Seconds() * 100
	}
	return RecoveryRow{
		Component:   comp,
		Planned:     planned,
		Kills:       res.Chaos.MakeflowKills + res.Chaos.MasterKills + res.Chaos.OperatorKills,
		Runtime:     res.Runtime,
		OverheadPct: overhead,
		Rescued:     res.Recovery.RescuedTasks,
		Fenced:      res.Recovery.FencedAttempts,
		Requeued:    res.Recovery.RequeuedUnrescued,
		Replayed:    res.Recovery.ReplayedRecords,
		Skipped:     res.Recovery.SkippedRules,
		Corrections: res.Recovery.ReconcileCorrections,
		Requeues:    res.Failures.Requeues,
		Quarantined: res.Failures.Quarantined,
		Submitted:   res.Submitted,
		Completed:   res.Completed,
		Goodput:     res.Failures.Goodput(),
	}
}

// controlPlaneHarness owns one E-G cell's stack and implements
// chaos.ControlPlane: each delivered kill crashes the selected
// component and schedules its restart from durable state after the
// configured downtime. All methods run on the simulation goroutine.
type controlPlaneHarness struct {
	eng          *simclock.Engine
	master       *wq.Master
	auto         *core.Autoscaler
	runner       *flow.Runner
	sink         *makeflow.MemorySink
	build        func() (Workload, error) // deterministic graph rebuild
	downtime     time.Duration
	rescueWindow time.Duration

	rec          metrics.RecoveryCounters
	finished     bool
	makeflowDown bool
	err          error
}

// CrashComponent delivers one kill. A kill is refused (not counted,
// the injector re-arms) when the workload already finished or the
// component is still down from a previous kill.
func (h *controlPlaneHarness) CrashComponent(c chaos.Component) bool {
	if h.finished || h.err != nil {
		return false
	}
	switch c {
	case chaos.ComponentMaster:
		if h.master.Down() {
			return false
		}
		snap, reattaches := h.master.Crash()
		h.rec.MasterRestarts++
		h.eng.After(h.downtime, "recover-master", func() {
			h.master.Restore(snap, h.rescueWindow)
			// The worker fleet survived the master: every worker
			// reconnects, reporting its in-flight attempt for rescue.
			for _, w := range reattaches {
				if err := h.master.AttachWorker(w); err != nil {
					h.fail(err)
					return
				}
			}
			h.rec.ReconcileCorrections += h.auto.OnMasterRestored()
		})
		return true
	case chaos.ComponentOperator:
		if h.auto.Down() {
			return false
		}
		st := h.auto.Crash()
		h.rec.OperatorRestarts++
		h.eng.After(h.downtime, "recover-operator", func() {
			h.rec.ReconcileCorrections += h.auto.Restore(st)
		})
		return true
	case chaos.ComponentMakeflow:
		if h.makeflowDown {
			return false
		}
		h.makeflowDown = true
		h.runner.Detach()
		h.rec.MakeflowRestarts++
		h.eng.After(h.downtime, "recover-makeflow", func() {
			h.restartMakeflow()
		})
		return true
	}
	return false
}

// restartMakeflow is the workflow engine's restart path: rebuild the
// graph from the (deterministic) workflow description, replay the
// transaction log to reconstruct progress, fold in the master's own
// completion record for tasks that finished during the downtime, and
// start a fresh runner on the same scheduler and journal.
func (h *controlPlaneHarness) restartMakeflow() {
	wl, err := h.build()
	if err != nil {
		h.fail(err)
		return
	}
	rep, err := makeflow.ReplayLog(bytes.NewReader(h.sink.Bytes()))
	if err != nil {
		h.fail(err)
		return
	}
	rr, err := flow.Recover(wl.Graph, rep, h.master.CompletedTags(), h.master.QuarantinedTags())
	if err != nil {
		h.fail(err)
		return
	}
	h.rec.ReplayedRecords += rr.ReplayedRecords
	h.rec.SkippedRules += rr.CompletedRules
	r := flow.NewRunner(wl.Graph, h.auto, wl.Spec)
	r.SetLog(h.sink) // keep appending to the same journal
	r.OnAllDone(h.allDone)
	h.runner = r
	h.makeflowDown = false
	r.Start()
}

func (h *controlPlaneHarness) allDone() {
	if !h.finished {
		h.finished = true
	}
}

func (h *controlPlaneHarness) fail(err error) {
	if h.err == nil {
		h.err = fmt.Errorf("experiments: recovery harness: %w", err)
	}
}

// recoveryCell runs one E-G simulation. comp < 0 is the no-crash
// baseline.
func recoveryCell(name string, cfg RecoveryEGConfig, comp chaos.Component, kills int, mean time.Duration) (*RunResult, error) {
	p := workload.DefaultMultistage()
	p.Seed = cfg.Seed
	if cfg.Stages != ([3]int{}) {
		p.StageCounts = cfg.Stages
	}
	build := func() (Workload, error) {
		g, spec, err := p.Build()
		if err != nil {
			return Workload{}, err
		}
		return Workload{Graph: g, Spec: spec}, nil
	}
	wl, err := build()
	if err != nil {
		return nil, err
	}

	eng := simclock.NewEngine(SimStart)
	cluster := kubesim.NewCluster(eng, fig10Kube(cfg.Seed))
	defer cluster.Stop()
	master := wq.NewMaster(eng, nil)
	master.SetRetryPolicy(cfg.Retry)
	a := core.New(eng, cluster, master, core.Config{MaxWorkers: 20})
	if err := a.Start(); err != nil {
		return nil, err
	}

	h := &controlPlaneHarness{
		eng: eng, master: master, auto: a,
		sink: makeflow.NewMemorySink(), build: build,
		downtime: cfg.Downtime, rescueWindow: cfg.RescueWindow,
	}
	var inj *chaos.Injector
	if comp >= 0 && kills > 0 {
		plan := chaos.Plan{Seed: cfg.Seed}
		kp := chaos.ControlPlaneKillPlan{MeanInterval: mean, MaxKills: kills}
		switch comp {
		case chaos.ComponentMakeflow:
			plan.ControlPlane.Makeflow = kp
		case chaos.ComponentMaster:
			plan.ControlPlane.Master = kp
		case chaos.ComponentOperator:
			plan.ControlPlane.Operator = kp
		}
		inj = chaos.New(eng, plan)
		inj.AttachControlPlane(h)
		inj.Start()
	}

	sm := newSampler(master, cluster, a.WorkerPodCount())
	sm.estimator = a.Monitor()
	sm.heldFn = a.HeldTasks
	sm.desiredFn = a.WorkerPodCount
	sm.quotaCores = float64(cluster.Config().MaxNodes) * cluster.Config().NodeAllocatable.CoresValue()
	ticker := eng.Every(SampleInterval, "sampler", func() { sm.sample(eng.Now()) })
	defer ticker.Stop()

	res := &RunResult{Name: name, Start: eng.Now()}
	countRequeues(master, res)
	runner := flow.NewRunner(wl.Graph, a, wl.Spec)
	runner.SetLog(h.sink)
	runner.OnAllDone(h.allDone)
	h.runner = runner

	done := false
	sm.sample(eng.Now())
	runner.Start()
	deadline := SimStart.Add(cfg.Timeout)
	eng.RunWhile(func() bool {
		if h.finished && !done {
			// Shut down once, after the workflow completes; the engine
			// keeps running until the autoscaler's drain finishes.
			res.End = eng.Now()
			res.Runtime = eng.Elapsed()
			if inj != nil {
				inj.Stop()
			}
			a.Shutdown(func() { done = true })
		}
		return !done && h.err == nil && eng.Now().Before(deadline)
	})
	if h.err != nil {
		return nil, h.err
	}
	if !done {
		return nil, &ErrTimeout{Name: name, Deadline: cfg.Timeout, Stats: master.Stats()}
	}
	if err := h.runner.Err(); err != nil {
		return nil, err
	}
	res.Completed = master.CompletedCount()
	res.InitSamples = a.Tracker().Samples()
	captureFailures(res, master, inj)
	res.Recovery.Add(h.rec)
	sm.finish(res)
	return res, nil
}

// String renders the E-G table; with a fixed seed the output is
// byte-identical across runs.
func (r *RecoveryEGReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-G — control-plane crash recovery (baseline %0.fs)\n", r.Baseline.Seconds())
	fmt.Fprintf(&b, "%-10s %5s %9s %9s %7s %6s %8s %8s %7s %8s %8s %4s %10s %8s\n",
		"Component", "Kills", "Runtime", "Overhead", "Rescued", "Fenced", "Requeued",
		"Replayed", "Skipped", "Reconc", "Requeues", "Quar", "Done", "Goodput")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %2d/%-2d %8.0fs %8.1f%% %7d %6d %8d %8d %7d %8d %8d %4d %5d/%-4d %8.3f\n",
			row.Component, row.Kills, row.Planned, row.Runtime.Seconds(), row.OverheadPct,
			row.Rescued, row.Fenced, row.Requeued, row.Replayed, row.Skipped, row.Corrections,
			row.Requeues, row.Quarantined, row.Completed, row.Submitted, row.Goodput)
	}
	return b.String()
}
