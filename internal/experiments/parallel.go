package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// MaxParallel caps the number of scenarios Parallel executes
// concurrently. 0 (the default) means GOMAXPROCS; 1 forces serial
// execution, which is useful for debugging and for asserting that
// parallel and serial runs produce identical reports.
var MaxParallel = 0

// Parallel runs fn(0), …, fn(n−1) across a bounded pool of
// goroutines and waits for all of them. Every scenario owns its own
// simulation Engine, cluster, and master, so runs of a figure's
// configurations are independent and embarrassingly parallel; the
// caller indexes results by i, which keeps output ordering identical
// to a serial loop. The first error in index order is returned after
// all scenarios finish (no cancellation: scenarios are finite and a
// partial fan-out would complicate determinism for no gain).
func Parallel(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	limit := MaxParallel
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit > n {
		limit = n
	}
	if limit == 1 {
		for i := 0; i < n; i++ {
			if err := runScenario(fn, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = runScenario(fn, i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runScenario invokes fn(i), converting a panic into that cell's
// error: a panicking scenario on a pool goroutine would otherwise
// crash the whole process, taking the other cells' results with it.
func runScenario(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: scenario %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}
