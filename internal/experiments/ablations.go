package experiments

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/core"
	"hta/internal/hpa"
	"hta/internal/resources"
	"hta/internal/workload"
)

// AblationFixedCycleReport (A1) isolates the initialization-time
// feedback: full HTA plans each cycle with the live-measured
// provisioning latency; the ablated variant assumes a fixed (too
// short) cycle, so it keeps re-planning before requested resources
// arrive.
type AblationFixedCycleReport struct {
	Full      SummaryRow
	FixedFast SummaryRow // assumes 30 s provisioning (optimistic)
	FixedSlow SummaryRow // assumes 600 s provisioning (pessimistic)
	Runs      map[string]*RunResult
}

// AblationFixedCycle runs A1 on the multistage workflow. The three
// HTA variants run concurrently through the parallel harness.
func AblationFixedCycle(seed int64) (*AblationFixedCycleReport, error) {
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"HTA (measured init time)", core.Config{MaxWorkers: 20}},
		{"HTA (fixed 30s cycle)", core.Config{
			MaxWorkers:          20,
			DisableInitFeedback: true,
			InitTimeFallback:    30 * time.Second,
		}},
		{"HTA (fixed 600s cycle)", core.Config{
			MaxWorkers:          20,
			DisableInitFeedback: true,
			InitTimeFallback:    600 * time.Second,
		}},
	}
	results := make([]*RunResult, len(variants))
	err := Parallel(len(variants), func(i int) error {
		p := workload.DefaultMultistage()
		p.Seed = seed
		g, spec, err := p.Build()
		if err != nil {
			return err
		}
		results[i], err = RunHTA(variants[i].name, Workload{Graph: g, Spec: spec}, HTAOptions{
			Kube:    fig10Kube(seed),
			HTA:     variants[i].cfg,
			Timeout: fig10Timeout,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	rep := &AblationFixedCycleReport{Runs: make(map[string]*RunResult)}
	for i, res := range results {
		rep.Runs[variants[i].name] = res
	}
	rep.Full = summaryRow(variants[0].name, results[0])
	rep.FixedFast = summaryRow(variants[1].name, results[1])
	rep.FixedSlow = summaryRow(variants[2].name, results[2])
	return rep, nil
}

// String renders the comparison.
func (r *AblationFixedCycleReport) String() string {
	return summaryTable("Ablation A1 — initialization-time feedback (multistage BLAST)",
		[]SummaryRow{r.Full, r.FixedFast, r.FixedSlow})
}

// AblationNoCategoriesReport (A2) isolates category-based resource
// estimation: without it, every unknown task runs exclusively on a
// whole node-sized worker for the entire run.
type AblationNoCategoriesReport struct {
	Full     SummaryRow
	Disabled SummaryRow
	FullUtil float64
	DisUtil  float64
	Runs     map[string]*RunResult
}

// AblationNoCategories runs A2 on a flat BLAST bag with unknown
// requirements; the two variants run concurrently.
func AblationNoCategories(seed int64) (*AblationNoCategoriesReport, error) {
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"HTA (category estimation)", core.Config{MaxWorkers: 20}},
		{"HTA (no estimation)", core.Config{
			MaxWorkers:       20,
			DisableEstimator: true,
		}},
	}
	results := make([]*RunResult, len(variants))
	err := Parallel(len(variants), func(i int) error {
		p := workload.DefaultBlastFlat(120)
		p.Seed = seed
		p.Declared = false
		wl, err := Flat(p.Specs())
		if err != nil {
			return err
		}
		results[i], err = RunHTA(variants[i].name, wl, HTAOptions{
			Kube:    fig10Kube(seed),
			HTA:     variants[i].cfg,
			Timeout: fig10Timeout,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	rep := &AblationNoCategoriesReport{Runs: make(map[string]*RunResult)}
	for i, res := range results {
		rep.Runs[variants[i].name] = res
	}
	rep.Full, rep.FullUtil = summaryRow(variants[0].name, results[0]), results[0].MeanCPUUtil
	rep.Disabled, rep.DisUtil = summaryRow(variants[1].name, results[1]), results[1].MeanCPUUtil
	return rep, nil
}

// String renders the comparison.
func (r *AblationNoCategoriesReport) String() string {
	var b strings.Builder
	b.WriteString(summaryTable("Ablation A2 — category resource estimation (flat BLAST, unknown reqs)",
		[]SummaryRow{r.Full, r.Disabled}))
	fmt.Fprintf(&b, "CPU utilization: with estimation %.1f%%, without %.1f%%\n",
		r.FullUtil*100, r.DisUtil*100)
	return b.String()
}

// AblationHPAStabilizationReport (A3) sweeps the HPA scale-down
// stabilization window on the multistage workflow — the knob the
// paper identifies as impossible to tune without re-running the
// workload.
type AblationHPAStabilizationReport struct {
	Rows []SummaryRow
	Runs map[string]*RunResult
}

// AblationHPAStabilization runs A3; the three stabilization windows
// run concurrently.
func AblationHPAStabilization(seed int64) (*AblationHPAStabilizationReport, error) {
	podRes := resources.Vector{MilliCPU: 1000, MemoryMB: 4096, DiskMB: 20000}
	windows := []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute}
	results := make([]*RunResult, len(windows))
	err := Parallel(len(windows), func(i int) error {
		p := workload.DefaultMultistage()
		p.Seed = seed
		p.Declared = true
		g, spec, err := p.Build()
		if err != nil {
			return err
		}
		name := fmt.Sprintf("HPA-20%% (stab %v)", windows[i])
		results[i], err = RunHPA(name, Workload{Graph: g, Spec: spec}, HPAOptions{
			Kube:            fig10Kube(seed),
			PodResources:    podRes,
			InitialReplicas: 3,
			HPA: hpa.Config{
				TargetCPUUtilization:   0.20,
				MinReplicas:            1,
				MaxReplicas:            60,
				ScaleDownStabilization: windows[i],
			},
			Timeout: fig10Timeout,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	rep := &AblationHPAStabilizationReport{Runs: make(map[string]*RunResult)}
	for _, res := range results {
		rep.Runs[res.Name] = res
		rep.Rows = append(rep.Rows, summaryRow(res.Name, res))
	}
	return rep, nil
}

// String renders the sweep.
func (r *AblationHPAStabilizationReport) String() string {
	return summaryTable("Ablation A3 — HPA scale-down stabilization window (multistage BLAST)", r.Rows)
}
