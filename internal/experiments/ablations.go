package experiments

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/core"
	"hta/internal/hpa"
	"hta/internal/resources"
	"hta/internal/workload"
)

// AblationFixedCycleReport (A1) isolates the initialization-time
// feedback: full HTA plans each cycle with the live-measured
// provisioning latency; the ablated variant assumes a fixed (too
// short) cycle, so it keeps re-planning before requested resources
// arrive.
type AblationFixedCycleReport struct {
	Full      SummaryRow
	FixedFast SummaryRow // assumes 30 s provisioning (optimistic)
	FixedSlow SummaryRow // assumes 600 s provisioning (pessimistic)
	Runs      map[string]*RunResult
}

// AblationFixedCycle runs A1 on the multistage workflow.
func AblationFixedCycle(seed int64) (*AblationFixedCycleReport, error) {
	rep := &AblationFixedCycleReport{Runs: make(map[string]*RunResult)}
	run := func(name string, cfg core.Config) (SummaryRow, error) {
		p := workload.DefaultMultistage()
		p.Seed = seed
		g, spec, err := p.Build()
		if err != nil {
			return SummaryRow{}, err
		}
		res, err := RunHTA(name, Workload{Graph: g, Spec: spec}, HTAOptions{
			Kube:    fig10Kube(seed),
			HTA:     cfg,
			Timeout: fig10Timeout,
		})
		if err != nil {
			return SummaryRow{}, err
		}
		rep.Runs[name] = res
		return summaryRow(name, res), nil
	}
	var err error
	if rep.Full, err = run("HTA (measured init time)", core.Config{MaxWorkers: 20}); err != nil {
		return nil, err
	}
	rep.FixedFast, err = run("HTA (fixed 30s cycle)", core.Config{
		MaxWorkers:          20,
		DisableInitFeedback: true,
		InitTimeFallback:    30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	rep.FixedSlow, err = run("HTA (fixed 600s cycle)", core.Config{
		MaxWorkers:          20,
		DisableInitFeedback: true,
		InitTimeFallback:    600 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// String renders the comparison.
func (r *AblationFixedCycleReport) String() string {
	return summaryTable("Ablation A1 — initialization-time feedback (multistage BLAST)",
		[]SummaryRow{r.Full, r.FixedFast, r.FixedSlow})
}

// AblationNoCategoriesReport (A2) isolates category-based resource
// estimation: without it, every unknown task runs exclusively on a
// whole node-sized worker for the entire run.
type AblationNoCategoriesReport struct {
	Full     SummaryRow
	Disabled SummaryRow
	FullUtil float64
	DisUtil  float64
	Runs     map[string]*RunResult
}

// AblationNoCategories runs A2 on a flat BLAST bag with unknown
// requirements.
func AblationNoCategories(seed int64) (*AblationNoCategoriesReport, error) {
	rep := &AblationNoCategoriesReport{Runs: make(map[string]*RunResult)}
	run := func(name string, cfg core.Config) (SummaryRow, float64, error) {
		p := workload.DefaultBlastFlat(120)
		p.Seed = seed
		p.Declared = false
		wl, err := Flat(p.Specs())
		if err != nil {
			return SummaryRow{}, 0, err
		}
		res, err := RunHTA(name, wl, HTAOptions{
			Kube:    fig10Kube(seed),
			HTA:     cfg,
			Timeout: fig10Timeout,
		})
		if err != nil {
			return SummaryRow{}, 0, err
		}
		rep.Runs[name] = res
		return summaryRow(name, res), res.MeanCPUUtil, nil
	}
	var err error
	if rep.Full, rep.FullUtil, err = run("HTA (category estimation)", core.Config{MaxWorkers: 20}); err != nil {
		return nil, err
	}
	rep.Disabled, rep.DisUtil, err = run("HTA (no estimation)", core.Config{
		MaxWorkers:       20,
		DisableEstimator: true,
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// String renders the comparison.
func (r *AblationNoCategoriesReport) String() string {
	var b strings.Builder
	b.WriteString(summaryTable("Ablation A2 — category resource estimation (flat BLAST, unknown reqs)",
		[]SummaryRow{r.Full, r.Disabled}))
	fmt.Fprintf(&b, "CPU utilization: with estimation %.1f%%, without %.1f%%\n",
		r.FullUtil*100, r.DisUtil*100)
	return b.String()
}

// AblationHPAStabilizationReport (A3) sweeps the HPA scale-down
// stabilization window on the multistage workflow — the knob the
// paper identifies as impossible to tune without re-running the
// workload.
type AblationHPAStabilizationReport struct {
	Rows []SummaryRow
	Runs map[string]*RunResult
}

// AblationHPAStabilization runs A3.
func AblationHPAStabilization(seed int64) (*AblationHPAStabilizationReport, error) {
	rep := &AblationHPAStabilizationReport{Runs: make(map[string]*RunResult)}
	podRes := resources.Vector{MilliCPU: 1000, MemoryMB: 4096, DiskMB: 20000}
	for _, window := range []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute} {
		p := workload.DefaultMultistage()
		p.Seed = seed
		p.Declared = true
		g, spec, err := p.Build()
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("HPA-20%% (stab %v)", window)
		res, err := RunHPA(name, Workload{Graph: g, Spec: spec}, HPAOptions{
			Kube:            fig10Kube(seed),
			PodResources:    podRes,
			InitialReplicas: 3,
			HPA: hpa.Config{
				TargetCPUUtilization:   0.20,
				MinReplicas:            1,
				MaxReplicas:            60,
				ScaleDownStabilization: window,
			},
			Timeout: fig10Timeout,
		})
		if err != nil {
			return nil, err
		}
		rep.Runs[name] = res
		rep.Rows = append(rep.Rows, summaryRow(name, res))
	}
	return rep, nil
}

// String renders the sweep.
func (r *AblationHPAStabilizationReport) String() string {
	return summaryTable("Ablation A3 — HPA scale-down stabilization window (multistage BLAST)", r.Rows)
}
