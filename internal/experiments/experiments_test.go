package experiments

// These tests assert the *shape* of each reproduced figure and table
// — who wins, by roughly what factor, where the crossovers fall —
// rather than absolute numbers, which depend on the simulator
// calibration documented in EXPERIMENTS.md.

import (
	"testing"
	"time"
)

func TestFig2Shapes(t *testing.T) {
	rep, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) Fig2Row {
		for _, row := range rep.Rows {
			if row.Config == name {
				return row
			}
		}
		t.Fatalf("row %q missing", name)
		return Fig2Row{}
	}
	c10, c50, c99 := get("Config-10"), get("Config-50"), get("Config-99")

	// Config-10 and Config-50 both reach the cluster cap.
	if c10.MaxWorkers < 40 || c50.MaxWorkers < 40 {
		t.Errorf("max workers = %.0f / %.0f, want both ≥ 40", c10.MaxWorkers, c50.MaxWorkers)
	}
	// Config-99 never scales beyond its initial fleet.
	if c99.MaxWorkers > 3 {
		t.Errorf("Config-99 max workers = %.0f, want 3", c99.MaxWorkers)
	}
	// Config-99 is several times slower than the scaling configs.
	if c99.Runtime < 3*c10.Runtime {
		t.Errorf("Config-99 %v not ≫ Config-10 %v", c99.Runtime, c10.Runtime)
	}
	// Both scaling configs are well above the ideal.
	if c10.Runtime <= rep.Ideal.Runtime || c50.Runtime <= rep.Ideal.Runtime {
		t.Errorf("HPA runs (%v, %v) should exceed ideal %v", c10.Runtime, c50.Runtime, rep.Ideal.Runtime)
	}
	// The ideal run lands in the paper's ~240 s regime.
	if rep.Ideal.Runtime < 200*time.Second || rep.Ideal.Runtime > 400*time.Second {
		t.Errorf("ideal runtime = %v, want ≈240-300s", rep.Ideal.Runtime)
	}
	for _, row := range rep.Rows {
		if run := rep.Runs[row.Config]; run.Completed != 200 {
			t.Errorf("%s completed %d/200", row.Config, run.Completed)
		}
	}
}

func TestFig4Shapes(t *testing.T) {
	rep, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := rep.Rows[0], rep.Rows[1], rep.Rows[2]
	// Paper ordering: coarse-with-knowledge < fine-grained < coarse-unknown.
	if !(c.Runtime < a.Runtime && a.Runtime < b.Runtime) {
		t.Errorf("runtime order = %v / %v / %v, want (c) < (a) < (b)",
			a.Runtime, b.Runtime, c.Runtime)
	}
	// Fine-grained moves more copies over more streams: lower average
	// bandwidth than either coarse configuration.
	if !(a.AvgBandwidth < b.AvgBandwidth && a.AvgBandwidth < c.AvgBandwidth) {
		t.Errorf("bandwidth = %v / %v / %v, want (a) lowest",
			a.AvgBandwidth, b.AvgBandwidth, c.AvgBandwidth)
	}
	// Coarse-unknown wastes CPU (one job per 3-core worker).
	if b.MeanCPUUtil > 0.5 {
		t.Errorf("(b) CPU util = %v, want low (<0.5)", b.MeanCPUUtil)
	}
	if a.MeanCPUUtil < 2*b.MeanCPUUtil || c.MeanCPUUtil < 2*b.MeanCPUUtil {
		t.Errorf("CPU util = %v / %v / %v, want (a),(c) ≫ (b)",
			a.MeanCPUUtil, b.MeanCPUUtil, c.MeanCPUUtil)
	}
}

func TestFig6Shapes(t *testing.T) {
	rep, err := Fig6(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Samples) != 10 {
		t.Fatalf("samples = %d", len(rep.Samples))
	}
	// Paper: mean 157.4 s, std 4.2 s.
	if rep.MeanSec < 147 || rep.MeanSec > 168 {
		t.Errorf("mean = %.1f, want ≈157", rep.MeanSec)
	}
	if rep.StdSec <= 0 || rep.StdSec > 12 {
		t.Errorf("std = %.1f, want small (≈4)", rep.StdSec)
	}
}

func TestFig10Shapes(t *testing.T) {
	rep, err := Fig10(1)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]SummaryRow)
	for _, row := range rep.Rows {
		byName[row.Autoscaler] = row
	}
	hpa20, hpa50, hta := byName["HPA(20% CPU)"], byName["HPA(50% CPU)"], byName["HTA"]

	// Headline claim: HTA cuts accumulated waste substantially, at the
	// cost of a modest runtime increase.
	if hta.Waste >= hpa20.Waste || hta.Waste >= hpa50.Waste {
		t.Errorf("HTA waste %.0f should be below HPA (%.0f, %.0f)",
			hta.Waste, hpa20.Waste, hpa50.Waste)
	}
	if hta.Runtime <= hpa20.Runtime {
		t.Errorf("HTA runtime %v unexpectedly beat HPA-20 %v (paper: ≈15%% slower)",
			hta.Runtime, hpa20.Runtime)
	}
	if hta.Runtime > 2*hpa20.Runtime {
		t.Errorf("HTA runtime %v more than 2× HPA-20 %v — penalty too large", hta.Runtime, hpa20.Runtime)
	}
	// All tasks complete in every run.
	total := rep.StageCounts[0] + rep.StageCounts[1] + rep.StageCounts[2]
	for name, run := range rep.Runs {
		if run.Completed != total {
			t.Errorf("%s completed %d/%d", name, run.Completed, total)
		}
	}
	// The HTA supply curve dips in the middle (stage 2) and rises
	// again — the profile HPA cannot follow.
	htaRun := rep.Runs["HTA"]
	peak := htaRun.Account.Supply.Max()
	mid := htaRun.Account.Supply.ValueAt(htaRun.Start.Add(htaRun.Runtime * 3 / 5))
	if mid >= peak {
		t.Errorf("HTA mid-run supply %.0f shows no dip below peak %.0f", mid, peak)
	}
	// HPA-20 holds the peak through the stage-2 dip.
	hpaRun := rep.Runs["HPA(20% CPU)"]
	hpaMid := hpaRun.Account.Supply.ValueAt(hpaRun.Start.Add(hpaRun.Runtime * 3 / 5))
	if hpaMid < hpaRun.Account.Supply.Max()*0.9 {
		t.Errorf("HPA-20 mid-run supply %.0f fell from peak %.0f — stabilization should hold it",
			hpaMid, hpaRun.Account.Supply.Max())
	}
}

func TestFig11Shapes(t *testing.T) {
	rep, err := Fig11(1)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]SummaryRow)
	for _, row := range rep.Rows {
		byName[row.Autoscaler] = row
	}
	hpa20, hta := byName["HPA(20% CPU)"], byName["HTA"]
	// Headline claim: HTA shortens the I/O-bound workload severalfold
	// (paper: 3.66×; our simulation scales further).
	if hta.Runtime*3 > hpa20.Runtime {
		t.Errorf("HTA %v not ≥3× faster than HPA-20 %v", hta.Runtime, hpa20.Runtime)
	}
	// HPA never scales: its worker count stays at the floor.
	if got := rep.Runs["HPA(20% CPU)"].Workers.Max(); got > 3 {
		t.Errorf("HPA-20 workers peaked at %.0f, want pinned at 3", got)
	}
	// HPA accumulates massive shortage; HTA a small amount of waste.
	if hpa20.Shortage < 10*hta.Shortage {
		t.Errorf("HPA shortage %.0f not ≫ HTA shortage %.0f", hpa20.Shortage, hta.Shortage)
	}
	if hta.Waste <= hpa20.Waste {
		t.Errorf("HTA waste %.0f should exceed HPA's %.0f (paper shows the same trade)",
			hta.Waste, hpa20.Waste)
	}
	for name, run := range rep.Runs {
		if run.Completed != 200 {
			t.Errorf("%s completed %d/200", name, run.Completed)
		}
	}
}

func TestAblationFixedCycleShapes(t *testing.T) {
	rep, err := AblationFixedCycle(1)
	if err != nil {
		t.Fatal(err)
	}
	// Overestimating the init time slows reactions and inflates waste.
	if rep.FixedSlow.Waste < rep.Full.Waste*1.3 {
		t.Errorf("fixed-600s waste %.0f not clearly above measured %.0f",
			rep.FixedSlow.Waste, rep.Full.Waste)
	}
}

func TestAblationNoCategoriesShapes(t *testing.T) {
	rep, err := AblationNoCategories(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Disabled.Runtime <= rep.Full.Runtime {
		t.Errorf("no-estimation runtime %v should exceed estimation %v",
			rep.Disabled.Runtime, rep.Full.Runtime)
	}
	if rep.DisUtil >= rep.FullUtil/2 {
		t.Errorf("utilization without estimation %.2f not ≪ with %.2f",
			rep.DisUtil, rep.FullUtil)
	}
}

func TestAblationHPAStabilizationRuns(t *testing.T) {
	rep, err := AblationHPAStabilization(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// At a 20% target the workload keeps utilization above target
	// until the very end, so the window barely matters — itself a
	// finding: the paper's "tune the stabilization window" advice
	// cannot help when the down-signal never fires.
	for _, row := range rep.Rows {
		if row.Runtime <= 0 {
			t.Errorf("row %s has no runtime", row.Autoscaler)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := Fig11(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Errorf("same seed diverged: %+v vs %+v", a.Rows[i], b.Rows[i])
		}
	}
	c, err := Fig11(8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Rows {
		if a.Rows[i].Runtime != c.Rows[i].Runtime {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical runtimes")
	}
}

func TestAblationQueueScalerShapes(t *testing.T) {
	rep, err := AblationQueueScaler(1)
	if err != nil {
		t.Fatal(err)
	}
	// HTA never interrupts running tasks; the queue scaler does
	// whenever its WorkerSet shrinks under load.
	if rep.Runs["HTA"].Requeues != 0 {
		t.Errorf("HTA requeues = %d, want 0 (drain discipline)", rep.Runs["HTA"].Requeues)
	}
	if rep.QPARequeues == 0 {
		t.Error("QPA requeues = 0; expected interrupted dispatches")
	}
	// With its HPA-style stabilization window the queue scaler holds
	// peak capacity through stage dips, so it finishes quickly but —
	// like the HPA — wastes far more than HTA.
	if rep.QPA.Waste <= rep.HTA.Waste {
		t.Errorf("QPA waste %.0f should exceed HTA's %.0f", rep.QPA.Waste, rep.HTA.Waste)
	}
}

func TestAblationDispatchPolicyShapes(t *testing.T) {
	rep, err := AblationDispatchPolicy(1)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]PolicyRow)
	for _, row := range rep.Rows {
		byKey[row.Policy.String()+"/"+row.Load] = row
	}
	ffP, wfP := byKey["first-fit/partial"], byKey["worst-fit/partial"]
	// Partial load: consolidating policies leave workers untouched and
	// move fewer database copies.
	if ffP.IdleWorkers == 0 {
		t.Error("first-fit/partial used every worker; expected consolidation")
	}
	if wfP.IdleWorkers != 0 {
		t.Errorf("worst-fit/partial left %d workers idle; expected full spread", wfP.IdleWorkers)
	}
	if wfP.DeliveredMB <= ffP.DeliveredMB {
		t.Errorf("worst-fit moved %.0f MB, first-fit %.0f MB; spread must move more",
			wfP.DeliveredMB, ffP.DeliveredMB)
	}
	// Saturation: policies converge.
	ffS, wfS := byKey["first-fit/saturated"], byKey["worst-fit/saturated"]
	if ffS.Runtime != wfS.Runtime {
		t.Errorf("saturated runtimes differ: %v vs %v", ffS.Runtime, wfS.Runtime)
	}
}

func TestSweepInitLatencyShapes(t *testing.T) {
	rep, err := SweepInitLatency(1, 30*time.Second, 400*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// HTA's waste advantage holds at every latency point.
	for i := 0; i < len(rep.Rows); i += 2 {
		hpaRow, htaRow := rep.Rows[i], rep.Rows[i+1]
		if htaRow.Waste >= hpaRow.Waste {
			t.Errorf("at %v HTA waste %.0f not below HPA %.0f",
				hpaRow.ProvisionMean, htaRow.Waste, hpaRow.Waste)
		}
	}
	// Slower clouds stretch both runtimes.
	if rep.Rows[2].Runtime <= rep.Rows[0].Runtime {
		t.Errorf("HPA runtime at 400s (%v) not above 30s (%v)", rep.Rows[2].Runtime, rep.Rows[0].Runtime)
	}
}

func TestStreamShapes(t *testing.T) {
	rep, err := Stream(1)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]SummaryRow)
	for _, row := range rep.Rows {
		byName[row.Autoscaler] = row
	}
	hpaRow, htaRow := byName["HPA(20% CPU)"], byName["HTA"]
	// HTA follows the wave; HPA pins at peak. The waste gap should be
	// large (≈10× at seed 1).
	if htaRow.Waste*3 > hpaRow.Waste {
		t.Errorf("HTA waste %.0f not ≪ HPA waste %.0f", htaRow.Waste, hpaRow.Waste)
	}
	// Makespans stay comparable (within 15%).
	ratio := htaRow.Runtime.Seconds() / hpaRow.Runtime.Seconds()
	if ratio > 1.15 {
		t.Errorf("HTA runtime ratio %.2f, want ≤1.15", ratio)
	}
	// All tasks complete in both runs.
	for name, run := range rep.Runs {
		if run.Completed != rep.Tasks {
			t.Errorf("%s completed %d/%d", name, run.Completed, rep.Tasks)
		}
	}
	// HTA's supply actually dips between crests: its minimum after
	// the first crest is well below its peak.
	hta := rep.Runs["HTA"]
	peak := hta.Account.Supply.Max()
	minAfter := peak
	for i := 0; i < hta.Account.Supply.Len(); i++ {
		ts, v := hta.Account.Supply.At(i)
		if ts.Sub(hta.Start) > time.Hour/2 && v < minAfter {
			minAfter = v
		}
	}
	if minAfter > peak/2 {
		t.Errorf("HTA supply never dipped (min %.0f of peak %.0f)", minAfter, peak)
	}
}
