package experiments

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/core"
	"hta/internal/hpa"
	"hta/internal/resources"
	"hta/internal/workload"
)

// SweepInitLatencyReport (S1) sweeps the cloud's node-provisioning
// latency and runs the multistage workflow under HPA-20% and HTA at
// each point. The init time is HTA's third signal: as provisioning
// gets slower, a scaler that plans around the measured latency keeps
// its efficiency edge, while both scalers' runtimes stretch with the
// cloud. (On a hypothetical instant cloud the signal is worthless —
// the sweep quantifies when it starts paying.)
type SweepInitLatencyReport struct {
	Rows []SweepRow
}

// SweepRow is one (latency, autoscaler) outcome.
type SweepRow struct {
	ProvisionMean time.Duration
	Autoscaler    string
	Runtime       time.Duration
	Waste         float64
	Shortage      float64
}

// SweepInitLatency runs S1 over the given provisioning means
// (defaults: 30 s, 140 s, 400 s). Every (latency, autoscaler) cell is
// an independent simulation; the sweep fans all of them out through
// the parallel harness and assembles rows by index, preserving the
// serial ordering (per mean: HPA row, then HTA row).
func SweepInitLatency(seed int64, means ...time.Duration) (*SweepInitLatencyReport, error) {
	if len(means) == 0 {
		means = []time.Duration{30 * time.Second, 140 * time.Second, 400 * time.Second}
	}
	podRes := resources.Vector{MilliCPU: 1000, MemoryMB: 4096, DiskMB: 20000}
	rows := make([]SweepRow, 2*len(means))
	err := Parallel(len(rows), func(i int) error {
		mean := means[i/2]
		kube := fig10Kube(seed)
		kube.ProvisionMean = mean
		kube.ProvisionStdDev = time.Duration(float64(mean) * 0.03)
		kube.ProvisionMin = mean / 4

		p := workload.DefaultMultistage()
		p.Seed = seed
		if i%2 == 0 {
			p.Declared = true
			g, spec, err := p.Build()
			if err != nil {
				return err
			}
			hpaRes, err := RunHPA("HPA", Workload{Graph: g, Spec: spec}, HPAOptions{
				Kube:            kube,
				PodResources:    podRes,
				InitialReplicas: 3,
				HPA: hpa.Config{
					TargetCPUUtilization: 0.20,
					MaxReplicas:          60,
				},
				Timeout: fig10Timeout,
			})
			if err != nil {
				return err
			}
			rows[i] = SweepRow{
				ProvisionMean: mean, Autoscaler: "HPA-20%",
				Runtime: hpaRes.Runtime, Waste: hpaRes.AccumulatedWaste(), Shortage: hpaRes.AccumulatedShortage(),
			}
			return nil
		}
		g, spec, err := p.Build()
		if err != nil {
			return err
		}
		htaRes, err := RunHTA("HTA", Workload{Graph: g, Spec: spec}, HTAOptions{
			Kube:    kube,
			HTA:     core.Config{MaxWorkers: 20},
			Timeout: fig10Timeout,
		})
		if err != nil {
			return err
		}
		rows[i] = SweepRow{
			ProvisionMean: mean, Autoscaler: "HTA",
			Runtime: htaRes.Runtime, Waste: htaRes.AccumulatedWaste(), Shortage: htaRes.AccumulatedShortage(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SweepInitLatencyReport{Rows: rows}, nil
}

// String renders the sweep table.
func (r *SweepInitLatencyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep S1 — node-provisioning latency (multistage BLAST)\n")
	fmt.Fprintf(&b, "%-12s %-10s %10s %16s %16s\n", "Provision", "Autoscaler", "Runtime", "Waste", "Shortage")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-10s %9.0fs %11.0f core-s %11.0f core-s\n",
			row.ProvisionMean, row.Autoscaler, row.Runtime.Seconds(), row.Waste, row.Shortage)
	}
	return b.String()
}
