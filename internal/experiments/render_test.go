package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hta/internal/report"
)

// TestRenderersAndExports exercises every report's String, CSV and
// HTML paths on real (small-seed) runs.
func TestRenderersAndExports(t *testing.T) {
	dir := t.TempDir()
	page := report.NewPage("test")

	fig2, err := Fig2(2)
	if err != nil {
		t.Fatal(err)
	}
	if out := fig2.String(); !strings.Contains(out, "Config-99") || !strings.Contains(out, "Ideal") {
		t.Errorf("fig2 render:\n%s", out)
	}
	if err := fig2.WriteCSVs(dir); err != nil {
		t.Fatal(err)
	}
	fig2.AddToPage(page)

	fig4, err := Fig4(2)
	if err != nil {
		t.Fatal(err)
	}
	if out := fig4.String(); !strings.Contains(out, "coarse 5x3c known") {
		t.Errorf("fig4 render:\n%s", out)
	}
	if err := fig4.WriteCSVs(dir); err != nil {
		t.Fatal(err)
	}
	fig4.AddToPage(page)

	fig6, err := Fig6(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out := fig6.String(); !strings.Contains(out, "mean") {
		t.Errorf("fig6 render:\n%s", out)
	}
	fig6.AddToPage(page)

	fig10, err := Fig10(2)
	if err != nil {
		t.Fatal(err)
	}
	if out := fig10.String(); !strings.Contains(out, "Fig. 10c") || !strings.Contains(out, "stage2") {
		t.Errorf("fig10 render:\n%s", out)
	}
	if err := fig10.WriteCSVs(dir); err != nil {
		t.Fatal(err)
	}
	fig10.AddToPage(page)

	fig11, err := Fig11(2)
	if err != nil {
		t.Fatal(err)
	}
	if out := fig11.String(); !strings.Contains(out, "Fig. 11c") {
		t.Errorf("fig11 render:\n%s", out)
	}
	if err := fig11.WriteCSVs(dir); err != nil {
		t.Fatal(err)
	}
	fig11.AddToPage(page)

	stream, err := Stream(2)
	if err != nil {
		t.Fatal(err)
	}
	if out := stream.String(); !strings.Contains(out, "Stream summary") {
		t.Errorf("stream render:\n%s", out)
	}
	stream.AddToPage(page)

	// CSV files exist and carry the header.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 8 {
		t.Fatalf("csv files = %d, want several", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "elapsed_s,") {
		t.Errorf("csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}

	// The HTML page renders with every section.
	var b strings.Builder
	if err := page.Render(&b); err != nil {
		t.Fatal(err)
	}
	html := b.String()
	for _, want := range []string{"Fig. 2", "Fig. 4", "Fig. 6", "Fig. 10", "Fig. 11", "Stream S2", "<svg"} {
		if !strings.Contains(html, want) {
			t.Errorf("html missing %q", want)
		}
	}
}

func TestAblationRenderers(t *testing.T) {
	a1, err := AblationFixedCycle(2)
	if err != nil {
		t.Fatal(err)
	}
	if out := a1.String(); !strings.Contains(out, "fixed 600s") {
		t.Errorf("a1 render:\n%s", out)
	}
	a2, err := AblationNoCategories(2)
	if err != nil {
		t.Fatal(err)
	}
	if out := a2.String(); !strings.Contains(out, "CPU utilization") {
		t.Errorf("a2 render:\n%s", out)
	}
	a3, err := AblationHPAStabilization(2)
	if err != nil {
		t.Fatal(err)
	}
	if out := a3.String(); !strings.Contains(out, "stab") {
		t.Errorf("a3 render:\n%s", out)
	}
	a4, err := AblationQueueScaler(2)
	if err != nil {
		t.Fatal(err)
	}
	if out := a4.String(); !strings.Contains(out, "interrupted") {
		t.Errorf("a4 render:\n%s", out)
	}
	a5, err := AblationDispatchPolicy(2)
	if err != nil {
		t.Fatal(err)
	}
	if out := a5.String(); !strings.Contains(out, "worst-fit") {
		t.Errorf("a5 render:\n%s", out)
	}
	s1, err := SweepInitLatency(2, 60e9)
	if err != nil {
		t.Fatal(err)
	}
	if out := s1.String(); !strings.Contains(out, "Provision") {
		t.Errorf("s1 render:\n%s", out)
	}
}
