package experiments

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/bind"
	"hta/internal/core"
	"hta/internal/dag"
	"hta/internal/flow"
	"hta/internal/hpa"
	"hta/internal/kubesim"
	"hta/internal/metrics"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/workload"
	"hta/internal/wq"
)

// StreamReport (S2) runs an open-loop diurnal arrival stream — tasks
// arriving over two hours with a sinusoidal rate — under HTA and
// HPA-20%. Batch workflows end; a stream never stops demanding, so
// this scenario exercises both directions of scaling repeatedly: the
// autoscaler must grow into each wave crest and release capacity in
// each trough.
type StreamReport struct {
	Rows  []SummaryRow
	Runs  map[string]*RunResult
	Tasks int
}

// submitter abstracts HTA vs raw-master submission for timed arrivals.
type submitter interface {
	Submit(spec wq.TaskSpec) int
}

// runStreamCommon drives timed submissions and waits until every
// arrival reaches a terminal outcome — completed, quarantined, or
// shed at the admission cap. It records completed-task sojourn
// quantiles and the master's overload counters; a closed run without
// admission or retries degenerates to "wait for all completions".
func runStreamCommon(name string, eng *simclock.Engine, master *wq.Master,
	sub submitter, tasks []workload.TimedTask, sm *sampler, timeout time.Duration) (*RunResult, error) {

	res := &RunResult{Name: name, Start: eng.Now()}
	countRequeues(master, res)
	terminal := 0
	var sojourns []time.Duration
	master.OnComplete(func(r wq.Result) {
		terminal++
		sojourns = append(sojourns, r.Task.FinishedAt.Sub(r.Task.SubmittedAt))
	})
	master.OnTaskFailed(func(wq.Task) { terminal++ })
	master.OnRejected(func(wq.Task) { terminal++ })
	for _, tt := range tasks {
		spec := tt.Spec
		eng.At(eng.Now().Add(tt.At), "stream-arrival", func() { sub.Submit(spec) })
	}
	sm.sample(eng.Now())
	deadline := eng.Now().Add(timeout)
	eng.RunWhile(func() bool { return terminal < len(tasks) && eng.Now().Before(deadline) })
	if terminal < len(tasks) {
		return nil, &ErrTimeout{Name: name, Deadline: timeout, Stats: master.Stats()}
	}
	res.End = eng.Now()
	res.Runtime = eng.Elapsed()
	res.Completed = master.CompletedCount()
	sq := metrics.DurationQuantiles(sojourns, 0.50, 0.99)
	res.SojournP50, res.SojournP99 = sq[0], sq[1]
	captureFailures(res, master, nil)
	sm.finish(res)
	return res, nil
}

// RunHTAStream executes a timed arrival stream through HTA.
func RunHTAStream(name string, tasks []workload.TimedTask, opt HTAOptions) (*RunResult, error) {
	if opt.Timeout == 0 {
		opt.Timeout = 24 * time.Hour
	}
	eng := simclock.NewEngine(SimStart)
	if opt.Kube.Seed == 0 {
		opt.Kube.Seed = 1
	}
	cluster := kubesim.NewCluster(eng, opt.Kube)
	defer cluster.Stop()
	master := wq.NewMaster(eng, nil)
	master.SetAdmissionPolicy(opt.Admission)
	a := core.New(eng, cluster, master, opt.HTA)
	if err := a.Start(); err != nil {
		return nil, err
	}
	sm := newSampler(master, cluster, opt.Kube.MaxNodes)
	sm.estimator = a.Monitor()
	sm.heldFn = a.HeldTasks
	sm.desiredFn = a.WorkerPodCount
	sm.quotaCores = float64(cluster.Config().MaxNodes) * cluster.Config().NodeAllocatable.CoresValue()
	ticker := eng.Every(SampleInterval, "sampler", func() { sm.sample(eng.Now()) })
	defer ticker.Stop()
	res, err := runStreamCommon(name, eng, master, a, tasks, sm, opt.Timeout)
	if err != nil {
		return nil, err
	}
	res.ScalingActions = scaleActions(a.Decisions)
	res.Panics = a.PanicCount()
	return res, nil
}

// RunHPAStream executes a timed arrival stream on an HPA-scaled fleet.
func RunHPAStream(name string, tasks []workload.TimedTask, opt HPAOptions) (*RunResult, error) {
	if opt.Timeout == 0 {
		opt.Timeout = 24 * time.Hour
	}
	if opt.PodResources.IsZero() {
		opt.PodResources = resources.New(1, 4096, 10000)
	}
	if opt.InitialReplicas == 0 {
		opt.InitialReplicas = 3
	}
	eng := simclock.NewEngine(SimStart)
	if opt.Kube.Seed == 0 {
		opt.Kube.Seed = 1
	}
	cluster := kubesim.NewCluster(eng, opt.Kube)
	defer cluster.Stop()
	master := wq.NewMaster(eng, nil)
	master.SetAdmissionPolicy(opt.Admission)
	binder := bind.Workers(cluster, master, map[string]string{"app": "wq-worker"})
	ws := kubesim.NewWorkerSet(cluster, "wq-workers", kubesim.PodSpec{
		Image:     "wq-worker",
		Resources: opt.PodResources,
		Labels:    map[string]string{"app": "wq-worker"},
	}, opt.InitialReplicas)
	defer ws.Stop()
	h := hpa.New(cluster, ws, opt.HPA)
	defer h.Stop()
	sm := newSampler(master, cluster, opt.HPA.MaxReplicas)
	sm.desiredFn = func() int { return h.LastDesired }
	sm.quotaCores = float64(cluster.Config().MaxNodes) * cluster.Config().NodeAllocatable.CoresValue()
	ticker := eng.Every(SampleInterval, "sampler", func() { sm.sample(eng.Now()) })
	defer ticker.Stop()
	res, err := runStreamCommon(name, eng, master, master, tasks, sm, opt.Timeout)
	if err != nil {
		return nil, err
	}
	if err := binder.Err(); err != nil {
		return nil, err
	}
	res.ScalingActions = h.Actions()
	return res, nil
}

// RunHTAWorkflowStream executes timed workflow submissions — whole
// DAGs arriving over time at a long-lived master — through HTA. Each
// arrival becomes its own flow.Runner sharing the scheduler; node IDs
// are the globally unique task tags, so concurrent workflows cannot
// claim each other's completions. The run finishes when every
// workflow's DAG is done (admission shedding is incompatible with DAG
// semantics — a shed node would never complete — so opt.Admission is
// ignored here).
func RunHTAWorkflowStream(name string, wfs []workload.TimedWorkflow, opt HTAOptions) (*RunResult, error) {
	if opt.Timeout == 0 {
		opt.Timeout = 24 * time.Hour
	}
	eng := simclock.NewEngine(SimStart)
	if opt.Kube.Seed == 0 {
		opt.Kube.Seed = 1
	}
	cluster := kubesim.NewCluster(eng, opt.Kube)
	defer cluster.Stop()
	master := wq.NewMaster(eng, nil)
	a := core.New(eng, cluster, master, opt.HTA)
	if err := a.Start(); err != nil {
		return nil, err
	}
	sm := newSampler(master, cluster, opt.Kube.MaxNodes)
	sm.estimator = a.Monitor()
	sm.heldFn = a.HeldTasks
	sm.desiredFn = a.WorkerPodCount
	sm.quotaCores = float64(cluster.Config().MaxNodes) * cluster.Config().NodeAllocatable.CoresValue()
	ticker := eng.Every(SampleInterval, "sampler", func() { sm.sample(eng.Now()) })
	defer ticker.Stop()

	res := &RunResult{Name: name, Start: eng.Now()}
	countRequeues(master, res)
	done := 0
	runners := make([]*flow.Runner, 0, len(wfs))
	var buildErr error
	for _, wf := range wfs {
		wf := wf
		eng.At(eng.Now().Add(wf.At), "workflow-arrival", func() {
			if buildErr != nil {
				return
			}
			g, spec, err := workflowGraph(wf)
			if err != nil {
				buildErr = err
				return
			}
			r := flow.NewRunner(g, a, spec)
			r.OnAllDone(func() { done++ })
			runners = append(runners, r)
			r.Start()
		})
	}
	sm.sample(eng.Now())
	deadline := eng.Now().Add(opt.Timeout)
	eng.RunWhile(func() bool {
		return done < len(wfs) && buildErr == nil && eng.Now().Before(deadline)
	})
	if buildErr != nil {
		return nil, buildErr
	}
	if done < len(wfs) {
		return nil, &ErrTimeout{Name: name, Deadline: opt.Timeout, Stats: master.Stats()}
	}
	for _, r := range runners {
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	res.End = eng.Now()
	res.Runtime = eng.Elapsed()
	res.Completed = master.CompletedCount()
	res.ScalingActions = scaleActions(a.Decisions)
	res.Panics = a.PanicCount()
	captureFailures(res, master, nil)
	sm.finish(res)
	return res, nil
}

// workflowGraph builds a dependency-free DAG for one workflow whose
// node IDs are the task tags — unique across workflows, which a
// shared master requires (flow matches completions by tag).
func workflowGraph(wf workload.TimedWorkflow) (*dag.Graph, flow.SpecFunc, error) {
	g := dag.NewGraph()
	byID := make(map[string]wq.TaskSpec, len(wf.Tasks))
	for i, spec := range wf.Tasks {
		id := spec.Tag
		if id == "" {
			id = fmt.Sprintf("%s/t%d", wf.Name, i)
		}
		if _, dup := byID[id]; dup {
			return nil, nil, fmt.Errorf("experiments: workflow %s has duplicate task id %s", wf.Name, id)
		}
		byID[id] = spec
		if err := g.Add(dag.Node{ID: id, Category: spec.Category}); err != nil {
			return nil, nil, err
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, nil, err
	}
	return g, func(n dag.Node) wq.TaskSpec { return byID[n.ID] }, nil
}

// Stream runs S2.
func Stream(seed int64) (*StreamReport, error) {
	rep := &StreamReport{Runs: make(map[string]*RunResult)}
	kube := kubesim.Config{
		InitialNodes:   3,
		MinNodes:       1,
		MaxNodes:       20,
		ScaleDownDelay: 10 * time.Minute,
		Seed:           seed,
	}

	ps := workload.DefaultStream()
	ps.Seed = seed
	ps.Declared = true
	tasks := ps.Tasks()
	rep.Tasks = len(tasks)
	hpaRes, err := RunHPAStream("HPA(20% CPU)", tasks, HPAOptions{
		Kube: kube,
		HPA: hpa.Config{
			TargetCPUUtilization: 0.20,
			MinReplicas:          3,
			MaxReplicas:          60,
		},
	})
	if err != nil {
		return nil, err
	}
	rep.Runs[hpaRes.Name] = hpaRes
	rep.Rows = append(rep.Rows, summaryRow(hpaRes.Name, hpaRes))

	pu := workload.DefaultStream()
	pu.Seed = seed // undeclared: HTA measures the category
	htaRes, err := RunHTAStream("HTA", pu.Tasks(), HTAOptions{
		Kube: kube,
		HTA:  core.Config{MaxWorkers: 20},
	})
	if err != nil {
		return nil, err
	}
	rep.Runs["HTA"] = htaRes
	rep.Rows = append(rep.Rows, summaryRow("HTA", htaRes))
	return rep, nil
}

// String renders supply series plus the summary table.
func (r *StreamReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stream S2 — diurnal arrival stream (%d tasks over 2h, rate 2-18/min)\n", r.Tasks)
	for _, name := range []string{"HPA(20% CPU)", "HTA"} {
		run := r.Runs[name]
		if run == nil {
			continue
		}
		fmt.Fprintf(&b, "\n%s supply (cores):\n%s", name, run.Account.Supply.ASCII(run.End, 12, 40))
	}
	fmt.Fprintf(&b, "\n%s", summaryTable("Stream summary", r.Rows))
	return b.String()
}
