package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hta/internal/arbiter"
	"hta/internal/kubesim"
	"hta/internal/metrics"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// TenantsEJConfig parameterizes experiment E-J: T tenants with mixed
// BLAST / I/O / stream workloads multiplexed onto one cluster by the
// arbiter, compared across allocation policies.
type TenantsEJConfig struct {
	Seed    int64
	Tenants int
	// TotalWorkers is the cluster-wide worker budget C the arbiter
	// divides (and the cluster's node quota — one node-sized worker
	// per node).
	TotalWorkers int
	Kube         kubesim.Config
	// Cycle is the arbitration interval.
	Cycle time.Duration
	// Per-tenant task counts by workload kind (tenant i gets kind
	// i mod 3).
	BlastTasks, IOTasks, StreamTasks int
	// StreamInterval staggers a stream tenant's submissions.
	StreamInterval time.Duration
	// Admission bounds every tenant's waiting queue (zero value:
	// unbounded). BLAST bursts exceed typical caps, exercising the
	// overload counters the cluster-level merge aggregates.
	Admission wq.AdmissionPolicy
	Timeout   time.Duration
}

// DefaultTenantsEJConfig sizes E-J for a tenant count: C scales as
// T/5 so capacity is scarce (a few node-sized workers per tenant-
// triplet) and the allocation policy, not raw capacity, decides who
// runs when.
func DefaultTenantsEJConfig(seed int64, tenants int) TenantsEJConfig {
	c := max(8, tenants/5)
	return TenantsEJConfig{
		Seed:         seed,
		Tenants:      tenants,
		TotalWorkers: c,
		Kube: kubesim.Config{
			InitialNodes:  max(2, c/4),
			MinNodes:      1,
			MaxNodes:      c,
			ProvisionMean: 90 * time.Second,
			Seed:          seed,
		},
		Cycle:          30 * time.Second,
		BlastTasks:     18,
		IOTasks:        24,
		StreamTasks:    16,
		StreamInterval: 45 * time.Second,
		Admission:      wq.AdmissionPolicy{MaxWaiting: 12, BufferDepth: 64},
		Timeout:        12 * time.Hour,
	}
}

// SmokeTenantsEJConfig is the T=100 variant CI's determinism job runs.
func SmokeTenantsEJConfig(seed int64) TenantsEJConfig {
	cfg := DefaultTenantsEJConfig(seed, 100)
	cfg.BlastTasks = 9
	cfg.IOTasks = 12
	cfg.StreamTasks = 6
	return cfg
}

// tenantLoad is one tenant's reproducible workload: specs plus submit
// offsets, built once per report so every policy cell replays the
// identical mix.
type tenantLoad struct {
	kind   string
	weight int
	specs  []wq.TaskSpec
	at     []time.Duration
}

func buildTenantLoads(cfg TenantsEJConfig) []tenantLoad {
	rng := rand.New(rand.NewSource(cfg.Seed))
	loads := make([]tenantLoad, cfg.Tenants)
	for i := range loads {
		ld := &loads[i]
		switch i % 3 {
		case 0:
			// BLAST: an undeclared burst of node-heavy tasks — the
			// monitor learns the category, the whole queue lands at
			// once (overload-counter fodder under bounded admission).
			ld.kind = "blast"
			ld.weight = 1
			for j := 0; j < cfg.BlastTasks; j++ {
				ld.specs = append(ld.specs, wq.TaskSpec{
					Category: "blast",
					Profile: wq.Profile{
						ExecDuration: time.Duration(45+rng.Intn(31)) * time.Second,
						UsedCPUMilli: 870, UsedMemoryMB: 1700,
					},
				})
				ld.at = append(ld.at, 0)
			}
		case 1:
			// I/O: many small declared tasks, ~20 per worker.
			ld.kind = "io"
			ld.weight = 1
			for j := 0; j < cfg.IOTasks; j++ {
				ld.specs = append(ld.specs, wq.TaskSpec{
					Category:  "io",
					Resources: resources.Vector{MilliCPU: 150, MemoryMB: 512},
					Profile: wq.Profile{
						ExecDuration: time.Duration(20+rng.Intn(21)) * time.Second,
						UsedCPUMilli: 150, UsedMemoryMB: 512,
					},
				})
				ld.at = append(ld.at, 0)
			}
		case 2:
			// Stream: declared long tasks trickling in — the tenant
			// whose demand digest changes every interval.
			ld.kind = "stream"
			ld.weight = 2
			for j := 0; j < cfg.StreamTasks; j++ {
				jitter := time.Duration(rng.Intn(int(cfg.StreamInterval / 4)))
				ld.specs = append(ld.specs, wq.TaskSpec{
					Category:  "stream",
					Resources: resources.Vector{MilliCPU: 870, MemoryMB: 1700},
					Profile: wq.Profile{
						ExecDuration: time.Duration(100+rng.Intn(41)) * time.Second,
						UsedCPUMilli: 870, UsedMemoryMB: 1700,
					},
				})
				ld.at = append(ld.at, time.Duration(j)*cfg.StreamInterval+jitter)
			}
		}
	}
	return loads
}

// TenantsEJRow is one policy cell of the E-J table.
type TenantsEJRow struct {
	Policy      string
	Tenants     int
	Workers     int
	Submitted   int
	Completed   int
	Shed        int
	MakespanP50 time.Duration
	MakespanP99 time.Duration
	MakespanMax time.Duration
	// Jain is the fairness index over per-tenant makespans: 1 when
	// every tenant finishes together, 1/T when one tenant's completion
	// time dwarfs the rest.
	Jain float64
	// Utilization is useful core-seconds over the C × nodeCores × span
	// capacity envelope.
	Utilization float64
	Cycles      int
	Replans     int
	Skipped     int
	PodsCreated int
	// Overload aggregates per-master admission counters with the
	// cluster-level merge semantics (metrics.ClusterOverload).
	Overload metrics.OverloadCounters
}

// ReplansPerCycle is the amortized digest work: T for the naive
// arbiter, the dirty-tenant count for the incremental one.
func (r TenantsEJRow) ReplansPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Replans) / float64(r.Cycles)
}

// TenantsEJReport is experiment E-J.
type TenantsEJReport struct {
	Rows    []TenantsEJRow
	Tenants int
	Workers int
	Seed    int64
}

// TenantsEJ runs E-J at the given tenant count.
func TenantsEJ(seed int64, tenants int) (*TenantsEJReport, error) {
	return TenantsEJWith(DefaultTenantsEJConfig(seed, tenants))
}

// TenantsEJWith runs E-J under an explicit configuration: the same
// tenant mix under weighted fair share, fair share with quota
// floors/ceilings, and the single-shared-autoscaler greedy baseline.
func TenantsEJWith(cfg TenantsEJConfig) (*TenantsEJReport, error) {
	loads := buildTenantLoads(cfg)
	rep := &TenantsEJReport{Tenants: cfg.Tenants, Workers: cfg.TotalWorkers, Seed: cfg.Seed}
	cells := []struct {
		name   string
		policy arbiter.Policy
		quota  bool
	}{
		{"fair-share", arbiter.PolicyFairShare, false},
		{"quota", arbiter.PolicyFairShare, true},
		{"shared", arbiter.PolicyGreedy, false},
	}
	for _, cell := range cells {
		row, err := runTenantsCell(cfg, loads, cell.name, cell.policy, cell.quota)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func runTenantsCell(cfg TenantsEJConfig, loads []tenantLoad, name string, policy arbiter.Policy, quota bool) (TenantsEJRow, error) {
	row := TenantsEJRow{Policy: name, Tenants: cfg.Tenants, Workers: cfg.TotalWorkers}
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	eng := simclock.NewEngine(start)
	cluster := kubesim.NewCluster(eng, cfg.Kube)
	a := arbiter.New(eng, cluster, arbiter.Config{
		Cycle:        cfg.Cycle,
		TotalWorkers: cfg.TotalWorkers,
		Policy:       policy,
	})

	total := 0
	done := 0
	lastDone := make([]time.Time, cfg.Tenants)
	for i, ld := range loads {
		tc := arbiter.TenantConfig{ID: fmt.Sprintf("t%05d", i), Weight: ld.weight}
		if quota {
			// Floors for the latency-sensitive stream tenants,
			// ceilings on the bursty BLAST tenants.
			switch ld.kind {
			case "stream":
				tc.QuotaMin = 1
			case "blast":
				tc.QuotaMax = max(1, 2*cfg.TotalWorkers/cfg.Tenants)
			}
		}
		ten, err := a.AddTenant(tc)
		if err != nil {
			return row, err
		}
		ten.Master().SetAdmissionPolicy(cfg.Admission)
		i := i
		terminal := func() { done++; lastDone[i] = eng.Now() }
		ten.Master().OnComplete(func(wq.Result) { terminal() })
		ten.Master().OnTaskFailed(func(wq.Task) { terminal() })
		ten.Master().OnRejected(func(wq.Task) { terminal() })
		for j, spec := range ld.specs {
			total++
			if at := ld.at[j]; at > 0 {
				spec := spec
				eng.At(start.Add(at), "tenant-submit", func() { ten.Master().Submit(spec) })
			} else {
				ten.Master().Submit(spec)
			}
		}
	}
	if err := a.Start(); err != nil {
		return row, err
	}
	deadline := start.Add(cfg.Timeout)
	eng.RunWhile(func() bool { return done < total && eng.Now().Before(deadline) })
	a.Stop()
	if done != total {
		return row, fmt.Errorf("experiments: E-J %s stalled: %d/%d terminal by %v", name, done, total, eng.Now())
	}

	makespans := make([]time.Duration, cfg.Tenants)
	xs := make([]float64, cfg.Tenants)
	var span time.Duration
	var useful float64
	overload := make([]metrics.OverloadCounters, 0, cfg.Tenants)
	for i, ten := range a.Tenants() {
		m := lastDone[i].Sub(start)
		makespans[i] = m
		xs[i] = m.Seconds()
		span = max(span, m)
		fs := ten.Master().FailureStats()
		useful += fs.UsefulCoreSeconds
		row.Completed += ten.Master().CompletedCount()
		row.Shed += ten.Master().OverloadStats().Shed
		overload = append(overload, ten.Master().OverloadStats())
	}
	row.Submitted = total
	mq := metrics.DurationQuantiles(makespans, 0.50, 0.99)
	row.MakespanP50, row.MakespanP99 = mq[0], mq[1]
	row.MakespanMax = span
	row.Jain = metrics.JainIndex(xs)
	nodeCores := float64(cluster.Config().NodeAllocatable.MilliCPU) / 1000
	if env := float64(cfg.TotalWorkers) * nodeCores * span.Seconds(); env > 0 {
		row.Utilization = useful / env
	}
	row.Overload = metrics.ClusterOverload(overload)
	st := a.Stats()
	row.Cycles = st.Cycles
	row.Replans = st.Replans
	row.Skipped = st.Skipped
	row.PodsCreated = st.PodsCreated
	return row, nil
}

// String renders the E-J table.
func (r *TenantsEJReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tenants E-J — %d tenants on %d shared workers (seed %d)\n", r.Tenants, r.Workers, r.Seed)
	fmt.Fprintf(&b, "%-10s %9s %5s %10s %10s %10s %6s %6s %7s %9s %8s\n",
		"policy", "completed", "shed", "mk p50", "mk p99", "mk max", "jain", "util", "cycles", "replan/cy", "pods")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9d %5d %10s %10s %10s %6.3f %6.3f %7d %9.1f %8d\n",
			row.Policy, row.Completed, row.Shed,
			row.MakespanP50.Round(time.Second), row.MakespanP99.Round(time.Second), row.MakespanMax.Round(time.Second),
			row.Jain, row.Utilization, row.Cycles, row.ReplansPerCycle(), row.PodsCreated)
	}
	return b.String()
}
